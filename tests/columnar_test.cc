// Columnar binding-table property lane (DESIGN.md §5.13).
//
// Randomized pipelines over ColumnarTable must preserve the chunk invariants
// the executor's batched kernels rely on: selection vectors strictly
// increasing and in-bounds, every column of a chunk the same length, arena
// lifetime spanning chunk handoff (AppendTable, copies, cache-style sharing),
// and the row-view adapter round-tripping with row order intact. The
// vectorized kernels are checked against scalar references, and the §5.13
// arena-sharing semantics behind the `stale_arena_reuse` planted mutation are
// pinned deterministically.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/engine/columnar.h"

namespace wukongs {
namespace {

using RowVec = std::vector<std::vector<VertexId>>;

// Active rows in table order, via the same walk the executor uses.
RowVec Flatten(const ColumnarTable& t) {
  RowVec out;
  t.ForEachActiveRow([&](const ColumnarChunk& ch, size_t r) {
    std::vector<VertexId> row;
    row.reserve(ch.cols.size());
    for (const VertexId* col : ch.cols) {
      row.push_back(col[r]);
    }
    out.push_back(std::move(row));
  });
  return out;
}

RowVec Flatten(const BindingTable& t) {
  RowVec out;
  for (size_t r = 0; r < t.num_rows(); ++r) {
    out.emplace_back(t.Row(r), t.Row(r) + t.num_cols());
  }
  return out;
}

// The §5.13 chunk invariants. Row *content* is checked separately against a
// reference model; this validates the structure every kernel assumes.
::testing::AssertionResult ChunkInvariantsHold(const ColumnarTable& t) {
  size_t chunk_no = 0;
  for (const ColumnarChunk& ch : t.chunks()) {
    if (ch.cols.size() != t.num_cols()) {
      return ::testing::AssertionFailure()
             << "chunk " << chunk_no << ": " << ch.cols.size()
             << " columns, table declares " << t.num_cols();
    }
    for (const VertexId* col : ch.cols) {
      if (ch.size > 0 && col == nullptr) {
        return ::testing::AssertionFailure()
               << "chunk " << chunk_no << ": null column of length " << ch.size;
      }
    }
    if (!ch.dense) {
      if (ch.sel.size() > ch.size) {
        return ::testing::AssertionFailure()
               << "chunk " << chunk_no << ": selection larger than the chunk ("
               << ch.sel.size() << " > " << ch.size << ")";
      }
      for (size_t i = 0; i < ch.sel.size(); ++i) {
        if (ch.sel[i] >= ch.size) {
          return ::testing::AssertionFailure()
                 << "chunk " << chunk_no << ": sel[" << i << "]=" << ch.sel[i]
                 << " out of bounds (size " << ch.size << ")";
        }
        if (i > 0 && ch.sel[i] <= ch.sel[i - 1]) {
          return ::testing::AssertionFailure()
                 << "chunk " << chunk_no << ": selection not strictly "
                 << "increasing at " << i << " (" << ch.sel[i - 1] << " then "
                 << ch.sel[i] << ")";
        }
      }
    }
    ++chunk_no;
  }
  return ::testing::AssertionSuccess();
}

// Builds ~`nrows` random rows through a mix of the row-at-a-time writer and
// caller-filled batch chunks (the two write paths the executor uses).
void BuildRandom(Rng* rng, size_t ncols, size_t nrows, ColumnarTable* t,
                 RowVec* model) {
  size_t made = 0;
  while (made < nrows) {
    if (rng->Bernoulli(0.5)) {
      std::vector<VertexId> row(ncols);
      for (VertexId& v : row) {
        v = static_cast<VertexId>(rng->Uniform(1, 60));
      }
      t->AppendRow(row.data());
      model->push_back(row);
      ++made;
    } else {
      size_t n = std::min(nrows - made, rng->Uniform(1, 64));
      ColumnarChunk* ch = t->StartChunk(n);
      for (size_t r = 0; r < n; ++r) {
        std::vector<VertexId> row(ncols);
        for (size_t c = 0; c < ncols; ++c) {
          row[c] = static_cast<VertexId>(rng->Uniform(1, 60));
          ch->cols[c][r] = row[c];
        }
        model->push_back(std::move(row));
      }
      ch->size = n;
      made += n;
    }
  }
}

// Applies the same value predicate to the table (per-chunk selection vectors,
// exactly like columnar ApplyFilters) and to the reference model.
void FilterBoth(ColumnarTable* t, RowVec* model, VertexId mod) {
  for (ColumnarChunk& ch : t->chunks()) {
    std::vector<uint32_t> keep;
    auto test = [&](size_t r) {
      if (ch.cols[0][r] % mod != 0) {
        keep.push_back(static_cast<uint32_t>(r));
      }
    };
    if (ch.dense) {
      for (size_t r = 0; r < ch.size; ++r) {
        test(r);
      }
    } else {
      for (uint32_t r : ch.sel) {
        test(r);
      }
    }
    if (keep.size() != ch.active()) {
      ch.sel = std::move(keep);
      ch.dense = false;
    }
  }
  model->erase(std::remove_if(model->begin(), model->end(),
                              [mod](const std::vector<VertexId>& row) {
                                return row[0] % mod == 0;
                              }),
               model->end());
}

TEST(ColumnarChunkTest, RandomizedPipelinesKeepChunkInvariants) {
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Rng rng(seed);
    const size_t ncols = rng.Uniform(1, 4);
    ColumnarTable t;
    for (size_t c = 0; c < ncols; ++c) {
      t.AddColumn(static_cast<int>(c));
    }
    RowVec model;
    BuildRandom(&rng, ncols, rng.Uniform(0, 200), &t, &model);
    ASSERT_TRUE(ChunkInvariantsHold(t)) << "seed " << seed;
    ASSERT_EQ(Flatten(t), model) << "seed " << seed << " after build";

    // Filter -> (maybe) compact -> bag-union a second random table, checking
    // structure and content after every step. This is the executor pipeline
    // in miniature: ApplyFilters, Compact at the cache boundary, delta union.
    FilterBoth(&t, &model, static_cast<VertexId>(rng.Uniform(2, 5)));
    ASSERT_TRUE(ChunkInvariantsHold(t)) << "seed " << seed;
    ASSERT_EQ(Flatten(t), model) << "seed " << seed << " after filter";
    ASSERT_EQ(t.num_rows(), model.size()) << "seed " << seed;

    if (rng.Bernoulli(0.5)) {
      t.Compact();
      for (const ColumnarChunk& ch : t.chunks()) {
        EXPECT_TRUE(ch.dense) << "seed " << seed << ": Compact left a "
                              << "selection vector behind";
      }
      ASSERT_TRUE(ChunkInvariantsHold(t)) << "seed " << seed;
      ASSERT_EQ(Flatten(t), model) << "seed " << seed << " after compact";
    }

    ColumnarTable other;
    for (size_t c = 0; c < ncols; ++c) {
      other.AddColumn(static_cast<int>(c));
    }
    RowVec other_model;
    BuildRandom(&rng, ncols, rng.Uniform(0, 80), &other, &other_model);
    t.AppendTable(other);
    model.insert(model.end(), other_model.begin(), other_model.end());
    ASSERT_TRUE(ChunkInvariantsHold(t)) << "seed " << seed;
    ASSERT_EQ(Flatten(t), model) << "seed " << seed << " after union";

    // Copies share chunks without disturbing either side's content.
    ColumnarTable copy = t;
    ASSERT_TRUE(ChunkInvariantsHold(copy)) << "seed " << seed;
    ASSERT_EQ(Flatten(copy), model) << "seed " << seed << " copy diverged";
  }
}

TEST(ColumnarChunkTest, RowViewRoundTripPreservesOrder) {
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Rng rng(seed * 977);
    const size_t ncols = rng.Uniform(1, 4);
    ColumnarTable t;
    for (size_t c = 0; c < ncols; ++c) {
      t.AddColumn(static_cast<int>(c) + 2);  // Non-trivial var slots.
    }
    RowVec model;
    BuildRandom(&rng, ncols, rng.Uniform(0, 120), &t, &model);
    if (rng.Bernoulli(0.6)) {
      FilterBoth(&t, &model, static_cast<VertexId>(rng.Uniform(2, 4)));
    }

    BindingTable rows = t.ToRows();
    ASSERT_EQ(rows.vars(), t.vars()) << "seed " << seed;
    ASSERT_EQ(Flatten(rows), model) << "seed " << seed << ": row view lost "
                                    << "content or order";
    ColumnarTable back = ColumnarTable::FromRows(rows);
    ASSERT_TRUE(ChunkInvariantsHold(back)) << "seed " << seed;
    ASSERT_EQ(back.vars(), t.vars()) << "seed " << seed;
    ASSERT_EQ(Flatten(back), model) << "seed " << seed << ": round trip "
                                    << "diverged";
  }
}

TEST(ColumnarChunkTest, RowViewKeepsUnitTableSemantics) {
  // A zero-column table is one implicit row until failed, exactly like
  // BindingTable — and the adapter must carry that bit both ways.
  ColumnarTable unit;
  EXPECT_EQ(unit.num_rows(), 1u);
  EXPECT_EQ(unit.ToRows().num_rows(), 1u);
  unit.FailUnit();
  EXPECT_EQ(unit.num_rows(), 0u);
  EXPECT_EQ(unit.ToRows().num_rows(), 0u);

  BindingTable alive;
  EXPECT_EQ(ColumnarTable::FromRows(alive).num_rows(), 1u);
  BindingTable dead;
  dead.FailUnit();
  EXPECT_EQ(ColumnarTable::FromRows(dead).num_rows(), 0u);
}

TEST(ColumnarChunkTest, AdoptedChunksOutliveTheBuilder) {
  // Arena lifetime across handoff: a table that adopted chunks (delta union,
  // cache Get) must keep the column data alive after the building table — the
  // original shared_ptr holder — is destroyed.
  ColumnarTable dest;
  dest.AddColumn(0);
  dest.AddColumn(1);
  RowVec model;
  {
    ColumnarTable src;
    src.AddColumn(0);
    src.AddColumn(1);
    Rng rng(7);
    BuildRandom(&rng, 2, 150, &src, &model);
    dest.AppendTable(src);
  }  // `src` (and its shared_ptr to the arena) is gone.
  ASSERT_TRUE(ChunkInvariantsHold(dest));
  EXPECT_EQ(Flatten(dest), model);

  // Same through the copy path (what DeltaCache Get/Put do).
  std::unique_ptr<ColumnarTable> original;
  {
    auto t = std::make_unique<ColumnarTable>();
    t->AddColumn(0);
    VertexId row[1] = {42};
    t->AppendRow(row);
    original = std::make_unique<ColumnarTable>(*t);
  }
  EXPECT_EQ(original->num_rows(), 1u);
  EXPECT_EQ(original->chunks()[0].cols[0][0], 42u);
}

TEST(ColumnarChunkTest, ScribbledArenaCorruptsEveryShareHolder) {
  // Deterministic spot-check of the mechanism behind the stale_arena_reuse
  // planted mutation: because copies share arenas rather than copying column
  // data, recycling the builder's arena is visible through a cached copy.
  // This is the lifetime rule §5.13 states; the differential twin lane proves
  // the executor-level mutation is caught end to end.
  ColumnarTable t;
  t.AddColumn(0);
  VertexId row[1] = {5};
  t.AppendRow(row);
  ColumnarTable cached = t;  // Cache-style handoff: shares the chunk + arena.
  ASSERT_EQ(cached.chunks()[0].cols[0][0], 5u);
  t.ScribbleArenasForTesting(static_cast<VertexId>(0xDEAD));
  EXPECT_EQ(cached.chunks()[0].cols[0][0], 0xDEADu)
      << "copies no longer share arenas; the planted mutation would be inert";
}

TEST(ColumnarKernelTest, CountEqualMatchesScalarReference) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 31);
    std::vector<VertexId> data(rng.Uniform(0, 300));
    for (VertexId& v : data) {
      v = static_cast<VertexId>(rng.Uniform(0, 8));
    }
    for (VertexId v = 0; v <= 8; ++v) {
      size_t want = static_cast<size_t>(
          std::count(data.begin(), data.end(), v));
      EXPECT_EQ(CountEqual(data.data(), data.size(), v), want)
          << "seed " << seed << " value " << v;
    }
  }
}

TEST(ColumnarKernelTest, GatherColumnMatchesScalarReference) {
  for (uint64_t seed = 1; seed <= 30; ++seed) {
    Rng rng(seed * 131);
    std::vector<VertexId> src(1 + rng.Uniform(0, 200));
    for (VertexId& v : src) {
      v = static_cast<VertexId>(rng.Uniform(0, 1000));
    }
    std::vector<uint32_t> idx(rng.Uniform(0, 300));
    for (uint32_t& i : idx) {
      i = static_cast<uint32_t>(rng.Uniform(0, src.size() - 1));
    }
    std::vector<VertexId> dst(idx.size(), 0);
    GatherColumn(src.data(), idx.data(), idx.size(), dst.data());
    for (size_t i = 0; i < idx.size(); ++i) {
      ASSERT_EQ(dst[i], src[idx[i]]) << "seed " << seed << " at " << i;
    }
  }
}

TEST(ColumnarKernelTest, SpanCacheHitsAfterInsertAndMissesUnknownKeys) {
  SpanCache cache;
  std::vector<VertexId> a = {1, 2, 3};
  std::vector<VertexId> empty;
  cache.Insert(10, a.data(), a.size());
  cache.Insert(11, empty.data(), 0);  // Empty adjacency is a cacheable fact.

  const VertexId* nbrs = nullptr;
  size_t n = 0;
  ASSERT_TRUE(cache.Lookup(10, &nbrs, &n));
  EXPECT_EQ(nbrs, a.data()) << "Insert caches by reference, no copy";
  EXPECT_EQ(n, 3u);
  ASSERT_TRUE(cache.Lookup(11, &nbrs, &n));
  EXPECT_EQ(n, 0u);
  EXPECT_FALSE(cache.Lookup(12, &nbrs, &n));
}

TEST(ColumnarKernelTest, SpanCacheNeverReturnsWrongSpanUnderCollisions) {
  // 2 slots, probe limit 8: nearly every insert collides, so the cache is
  // exercised in permanent-eviction mode. A cache may forget (miss), but a
  // hit must always return exactly the span last inserted for that key.
  SpanCache cache(/*log2_slots=*/1);
  Rng rng(99);
  std::vector<std::vector<VertexId>> spans;
  std::vector<std::pair<VertexId, size_t>> inserted;  // key -> span index.
  for (int i = 0; i < 200; ++i) {
    VertexId key = static_cast<VertexId>(rng.Uniform(1, 12));
    spans.emplace_back(rng.Uniform(0, 5), static_cast<VertexId>(key * 100));
    cache.Insert(key, spans.back().data(), spans.back().size());
    std::erase_if(inserted, [&](const auto& e) { return e.first == key; });
    inserted.emplace_back(key, spans.size() - 1);

    for (const auto& [k, si] : inserted) {
      const VertexId* nbrs = nullptr;
      size_t n = 0;
      if (cache.Lookup(k, &nbrs, &n)) {
        EXPECT_EQ(nbrs, spans[si].data()) << "stale span for key " << k;
        EXPECT_EQ(n, spans[si].size());
      }
    }
  }
}

TEST(ColumnarKernelTest, SpanCacheInsertCopyOutlivesScratchAndEviction) {
  SpanCache cache(/*log2_slots=*/1);  // Tiny: guarantees eviction below.
  std::vector<const VertexId*> stable;
  std::vector<std::vector<VertexId>> want;
  {
    std::vector<VertexId> scratch;
    for (VertexId key = 1; key <= 32; ++key) {
      scratch.assign(3, key * 7);  // Reused buffer, as in the executor.
      stable.push_back(cache.InsertCopy(key, scratch.data(), scratch.size()));
      want.emplace_back(scratch);
      scratch.assign(scratch.size(), 0xFFFF);  // Clobber the transient copy.
    }
  }
  // Every returned pointer stays valid for the cache's lifetime even though
  // the 2-slot table evicted almost all of them and the scratch is gone.
  for (size_t i = 0; i < stable.size(); ++i) {
    EXPECT_TRUE(std::equal(want[i].begin(), want[i].end(), stable[i]))
        << "copied span " << i << " clobbered by eviction or scratch reuse";
  }
}

}  // namespace
}  // namespace wukongs
