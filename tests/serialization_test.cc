// Tests for dataset Turtle-style abbreviations and the W3C SPARQL JSON
// results serializer.

#include <gtest/gtest.h>

#include "src/cluster/cluster.h"
#include "src/rdf/dataset.h"
#include "src/sparql/results_json.h"

namespace wukongs {
namespace {

// --- Turtle-style dataset parsing ---

TEST(TurtleTest, PredicateListsShareSubject) {
  StringServer s;
  auto triples = ParseTriples("Logan fo Erik ; po T-13 ; li T-12 .\n", &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 3u);
  EXPECT_EQ((*triples)[0].subject, (*triples)[1].subject);
  EXPECT_EQ((*triples)[1].subject, (*triples)[2].subject);
  EXPECT_NE((*triples)[0].predicate, (*triples)[1].predicate);
}

TEST(TurtleTest, ObjectListsSharePredicate) {
  StringServer s;
  auto triples = ParseTriples("Logan po T-13 , T-14 , T-15 .\n", &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 3u);
  EXPECT_EQ((*triples)[0].predicate, (*triples)[2].predicate);
  EXPECT_NE((*triples)[0].object, (*triples)[2].object);
}

TEST(TurtleTest, TrailingPunctuationOnTerm) {
  StringServer s;
  auto triples = ParseTriples("Logan po T-13, T-14; fo Erik.\n", &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  EXPECT_EQ(triples->size(), 3u);
}

TEST(TurtleTest, PrefixExpansion) {
  StringServer s;
  auto triples = ParseTriples(
      "@prefix ex: <http://example.org/> .\n"
      "ex:Logan ex:fo ex:Erik .\n",
      &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 1u);
  EXPECT_EQ(*s.VertexString((*triples)[0].subject), "http://example.org/Logan");
  EXPECT_EQ(*s.PredicateString((*triples)[0].predicate), "http://example.org/fo");
}

TEST(TurtleTest, AIsRdfType) {
  StringServer s;
  auto triples = ParseTriples("Logan a Person .\n", &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 1u);
  EXPECT_EQ(*s.PredicateString((*triples)[0].predicate),
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(TurtleTest, MultiLineStatement) {
  StringServer s;
  auto triples = ParseTriples(
      "Logan po T-13 ,\n"
      "         T-14 ;\n"
      "      fo Erik .\n",
      &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  EXPECT_EQ(triples->size(), 3u);
}

TEST(TurtleTest, AngleBracketIrisStripped) {
  StringServer s;
  auto triples = ParseTriples("<http://a> <http://p> <http://b> .\n", &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  EXPECT_EQ(*s.VertexString((*triples)[0].subject), "http://a");
}

TEST(TurtleTest, CoordinatesKeepInternalCommas) {
  StringServer s;
  auto triples = ParseTriples("T-15 ga 31,121 .\n", &s);
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 1u);
  EXPECT_EQ(*s.VertexString((*triples)[0].object), "31,121");
}

TEST(TurtleTest, UnterminatedStatementRejected) {
  StringServer s;
  EXPECT_FALSE(ParseTriples("Logan po\n", &s).ok());
  EXPECT_FALSE(ParseTriples("Logan po T-13 ;\n", &s).ok());
}

// --- SPARQL JSON results ---

TEST(ResultsJsonTest, BindingsSerialize) {
  StringServer s;
  QueryResult r;
  r.columns = {"X", "COUNT(Y)"};
  r.rows.push_back(
      {ResultValue::Vertex(s.InternVertex("Logan")), ResultValue::Number(3)});
  auto json = ResultsToJson(r, s);
  ASSERT_TRUE(json.ok()) << json.status().ToString();
  EXPECT_NE(json->find("\"vars\":[\"X\",\"COUNTY\"]"), std::string::npos);
  EXPECT_NE(json->find("\"type\":\"uri\",\"value\":\"Logan\""), std::string::npos);
  EXPECT_NE(json->find("XMLSchema#integer\",\"value\":\"3\""), std::string::npos);
}

TEST(ResultsJsonTest, UnboundOptionalOmitted) {
  StringServer s;
  QueryResult r;
  r.columns = {"X", "E"};
  r.rows.push_back({ResultValue::Vertex(s.InternVertex("carol")),
                    ResultValue::Vertex(kUnboundBinding)});
  auto json = ResultsToJson(r, s);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("\"X\":"), std::string::npos);
  EXPECT_EQ(json->find("\"E\":"), std::string::npos);
}

TEST(ResultsJsonTest, EscapesSpecialCharacters) {
  StringServer s;
  QueryResult r;
  r.columns = {"X"};
  r.rows.push_back({ResultValue::Vertex(s.InternVertex("say \"hi\"\\now"))});
  auto json = ResultsToJson(r, s);
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("say \\\"hi\\\"\\\\now"), std::string::npos);
}

TEST(ResultsJsonTest, EmptyResult) {
  StringServer s;
  QueryResult r;
  r.columns = {"X"};
  auto json = ResultsToJson(r, s);
  ASSERT_TRUE(json.ok());
  EXPECT_EQ(*json, R"({"head":{"vars":["X"]},"results":{"bindings":[]}})");
}

TEST(ResultsJsonTest, EndToEndFromCluster) {
  ClusterConfig config;
  config.nodes = 1;
  Cluster cluster(config);
  StringServer* s = cluster.strings();
  cluster.LoadBase(std::vector<Triple>{
      {s->InternVertex("Logan"), s->InternPredicate("po"),
       s->InternVertex("T-13")}});
  auto exec = cluster.OneShot("SELECT ?P WHERE { Logan po ?P }");
  ASSERT_TRUE(exec.ok());
  auto json = ResultsToJson(exec->result, *cluster.strings());
  ASSERT_TRUE(json.ok());
  EXPECT_NE(json->find("T-13"), std::string::npos);
}

}  // namespace
}  // namespace wukongs
