// Delta-cache tests (DESIGN.md §5.9).
//
// Covers the cache mechanics in isolation, the cluster integration (delta
// triggers must be bag-identical to cold full-window re-execution), the
// planner's per-window cardinality fix and cache-friendly ordering hint, a
// planted invalidation bug the parity oracle must catch, a randomized
// append/expire/GC interleaving property, and a threaded race of concurrent
// triggers against maintenance GC (run under TSan in CI).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/maintenance_daemon.h"
#include "src/cluster/worker_pool.h"
#include "src/common/rng.h"
#include "src/common/test_hooks.h"
#include "src/engine/delta_cache.h"
#include "src/sparql/plan_pin.h"
#include "src/store/planner.h"
#include "src/testkit/schedule_controller.h"

namespace wukongs {
namespace {

constexpr uint64_t kIntervalMs = 100;

// Bag canonicalization: delta and cold executions must agree as multisets —
// the delta union is batch-major while the cold scan interleaves, so row
// order is not part of the contract. Rows are encoded as strings to get a
// total order without teaching ResultValue to compare.
std::multiset<std::string> Canon(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) {
    std::string key;
    for (const ResultValue& v : row) {
      key += v.is_number ? "n" + std::to_string(v.number)
                         : "v" + std::to_string(v.vid);
      key += "|";
    }
    out.insert(key);
  }
  return out;
}

// ---------------------------------------------------------------------------
// DeltaCacheTest: the cache data structure in isolation.
// ---------------------------------------------------------------------------

ColumnarTable OneRowTable(VertexId v) {
  ColumnarTable t;
  t.AddColumn(0);
  t.AppendRow(&v);
  return t;
}

TEST(DeltaCacheTest, MissThenHitAccounting) {
  DeltaCache cache;
  cache.BeginTrigger(/*epoch=*/1, /*lo=*/0, /*hi=*/4);
  ColumnarTable out;
  EXPECT_FALSE(cache.GetContribution(2, &out));
  cache.PutContribution(2, OneRowTable(7));
  ASSERT_TRUE(cache.GetContribution(2, &out));
  EXPECT_EQ(out.num_rows(), 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.EntryCount(), 1u);
  EXPECT_GT(cache.MemoryBytes(), 0u);
}

TEST(DeltaCacheTest, EpochChangeFlushesEverything) {
  DeltaCache cache;
  cache.BeginTrigger(1, 0, 4);
  cache.PutPrefix(OneRowTable(1));
  cache.PutContribution(0, OneRowTable(2));
  cache.PutContribution(1, OneRowTable(3));
  EXPECT_EQ(cache.EntryCount(), 2u);

  cache.BeginTrigger(2, 0, 4);  // Stored graph moved.
  ColumnarTable out;
  EXPECT_EQ(cache.EntryCount(), 0u);
  EXPECT_FALSE(cache.GetPrefix(&out));
  EXPECT_GE(cache.stats().epoch_flushes, 1u);
}

TEST(DeltaCacheTest, WindowSlideRetiresOutOfWindowEntries) {
  DeltaCache cache;
  cache.BeginTrigger(1, 0, 9);
  for (BatchSeq b = 0; b <= 9; ++b) {
    cache.PutContribution(b, OneRowTable(b));
  }
  cache.PutPrefix(OneRowTable(99));
  EXPECT_EQ(cache.EntryCount(), 10u);

  cache.BeginTrigger(1, 3, 12);  // Window slid by three slices.
  EXPECT_EQ(cache.EntryCount(), 7u);  // 3..9 survive, 0..2 retired.
  ColumnarTable out;
  EXPECT_TRUE(cache.GetPrefix(&out));  // The prefix never slides out.
  EXPECT_GE(cache.stats().invalidations, 3u);
  // Size stays bounded by the window span no matter how long it runs.
  EXPECT_LE(cache.EntryCount(), 10u);
}

TEST(DeltaCacheTest, InvalidateBelowAndAll) {
  DeltaCache cache;
  cache.BeginTrigger(1, 0, 4);
  for (BatchSeq b = 0; b <= 4; ++b) {
    cache.PutContribution(b, OneRowTable(b));
  }
  EXPECT_EQ(cache.InvalidateBelow(2), 2u);  // Retires 0 and 1.
  EXPECT_EQ(cache.EntryCount(), 3u);
  cache.PutPrefix(OneRowTable(99));
  EXPECT_EQ(cache.InvalidateAll(), 4u);  // 3 contributions + prefix.
  EXPECT_EQ(cache.EntryCount(), 0u);
}

// ---------------------------------------------------------------------------
// DeltaClusterTest: delta triggers through the full cluster.
// ---------------------------------------------------------------------------

constexpr char kDeltaQuery[] = R"(
    REGISTER QUERY D AS
    SELECT ?y ?w
    FROM STREAM <S> [RANGE 1s STEP 100ms]
    FROM <Base>
    WHERE {
      GRAPH <Base> { Logan fo ?y }
      GRAPH <S>    { ?y at ?w }
    })";

class DeltaClusterTest : public ::testing::Test {
 protected:
  void Init(uint32_t nodes, bool delta_enabled = true, bool columnar = true) {
    ClusterConfig config;
    config.nodes = nodes;
    config.batch_interval_ms = kIntervalMs;
    config.delta_cache_enabled = delta_enabled;
    config.columnar_executor = columnar;
    cluster_ = std::make_unique<Cluster>(config);
    // `at` is a timing predicate: its tuples live only in transient slices,
    // so feeding the stream never moves the stored-graph epoch and delta
    // contributions stay reusable across triggers.
    stream_ = *cluster_->DefineStream("S", {"at"});

    StringServer* s = cluster_->strings();
    auto triple = [&](const char* su, const char* p, const char* o) {
      return Triple{s->InternVertex(su), s->InternPredicate(p),
                    s->InternVertex(o)};
    };
    TripleVec base = {triple("Logan", "fo", "Erik"),
                      triple("Logan", "fo", "Tony"),
                      triple("Erik", "fo", "Logan")};
    cluster_->LoadBase(base);
  }

  // One timing tuple per 100ms slice: person k%2 pings location "L<k>".
  StreamTuple PingAt(StreamTime ts) {
    StringServer* s = cluster_->strings();
    const char* who = (ts / kIntervalMs) % 2 == 0 ? "Erik" : "Tony";
    return StreamTuple{{s->InternVertex(who), s->InternPredicate("at"),
                        s->InternVertex("L" + std::to_string(ts))},
                       ts,
                       TupleKind::kTiming};
  }

  // Runs the trigger at `end` and checks the §5.9 contract: the delivered
  // result is bag-identical to a cold full-window re-execution.
  QueryExecution TriggerWithParity(Cluster::ContinuousHandle h, StreamTime end) {
    auto exec = cluster_->ExecuteContinuousAt(h, end);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    auto cold = cluster_->ExecuteContinuousColdAt(h, end);
    EXPECT_TRUE(cold.ok()) << cold.status().ToString();
    if (exec.ok() && cold.ok()) {
      EXPECT_EQ(Canon(exec->result), Canon(cold->result))
          << "delta/cold divergence at end=" << end;
      EXPECT_FALSE(cold->delta);
    }
    return exec.ok() ? *exec : QueryExecution{};
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId stream_ = 0;
};

TEST_F(DeltaClusterTest, SlidingTriggersServeCachedSlices) {
  Init(2);
  auto h = cluster_->RegisterContinuous(kDeltaQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  EXPECT_TRUE(cluster_->HasDeltaCache(*h));

  size_t nonempty = 0;
  for (StreamTime end = 1000; end <= 3000; end += kIntervalMs) {
    ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(end - 50)}).ok());
    cluster_->AdvanceStreams(end);
    ASSERT_TRUE(cluster_->WindowReady(*h, end));
    QueryExecution exec = TriggerWithParity(*h, end);
    EXPECT_TRUE(exec.delta) << "end=" << end;
    if (end > 1000) {
      // The window slid by one slice: at most one batch is fresh.
      EXPECT_GE(exec.delta_slices_cached, 9u) << "end=" << end;
      EXPECT_LE(exec.delta_slices_fresh, 1u) << "end=" << end;
    }
    nonempty += exec.result.rows.empty() ? 0 : 1;
    // Size bounded by the window span (10 slices of 100ms in 1s).
    EXPECT_LE(cluster_->DeltaEntryCountOf(*h), 10u);
  }
  EXPECT_GT(nonempty, 0u);  // The workload actually produces bindings.

  DeltaCache::Stats stats = cluster_->DeltaStatsOf(*h);
  EXPECT_GT(stats.hits, stats.misses);
  EXPECT_GT(stats.invalidations, 0u);  // Window-slide retirements.
}

TEST_F(DeltaClusterTest, ColumnarDeltaUnionsStayBagIdenticalToColdRecompute) {
  // §5.13 parity regression: the DeltaCache now stores ColumnarTable
  // contributions whose chunks the trigger-time union *adopts* (no row
  // copies), and the row pipeline reaches the same cache through the
  // row-view adapter. Both executor modes must keep every delta trigger
  // bag-identical to a cold full-window recompute, and — because cached
  // BatchSeq keys and row order are part of the adapter contract — the two
  // modes must agree with each other window for window.
  std::vector<std::multiset<std::string>> per_mode;
  for (bool columnar : {true, false}) {
    Init(2, /*delta_enabled=*/true, columnar);
    auto h = cluster_->RegisterContinuous(kDeltaQuery);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(cluster_->HasDeltaCache(*h));
    std::multiset<std::string> all;
    for (StreamTime end = 1000; end <= 2500; end += kIntervalMs) {
      ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(end - 50)}).ok());
      cluster_->AdvanceStreams(end);
      ASSERT_TRUE(cluster_->WindowReady(*h, end));
      QueryExecution exec = TriggerWithParity(*h, end);  // Delta == cold.
      if (end > 1000) {
        EXPECT_TRUE(exec.delta) << "columnar=" << columnar << " end=" << end;
        EXPECT_GE(exec.delta_slices_cached, 9u)
            << "columnar=" << columnar << " end=" << end;
      }
      for (const std::string& row : Canon(exec.result)) {
        all.insert(std::to_string(end) + "#" + row);
      }
    }
    DeltaCache::Stats stats = cluster_->DeltaStatsOf(*h);
    EXPECT_GT(stats.hits, stats.misses) << "columnar=" << columnar;
    per_mode.push_back(std::move(all));
  }
  EXPECT_EQ(per_mode[0], per_mode[1])
      << "columnar and row delta pipelines delivered different windows";
}

TEST_F(DeltaClusterTest, ColdReExecutionDoesNotTouchTheCache) {
  Init(1);
  auto h = cluster_->RegisterContinuous(kDeltaQuery);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(150), PingAt(250)}).ok());
  cluster_->AdvanceStreams(1000);
  ASSERT_TRUE(cluster_->ExecuteContinuousAt(*h, 1000).ok());

  DeltaCache::Stats before = cluster_->DeltaStatsOf(*h);
  auto cold = cluster_->ExecuteContinuousColdAt(*h, 1000);
  ASSERT_TRUE(cold.ok());
  DeltaCache::Stats after = cluster_->DeltaStatsOf(*h);
  EXPECT_EQ(before.hits, after.hits);
  EXPECT_EQ(before.misses, after.misses);
  EXPECT_EQ(before.invalidations, after.invalidations);
}

TEST_F(DeltaClusterTest, IneligibleShapesGetNoCache) {
  Init(1);
  // Two window-scoped patterns: contributions are not per-slice decomposable.
  auto two = cluster_->RegisterContinuous(R"(
      REGISTER QUERY T AS
      SELECT ?y ?w ?v
      FROM STREAM <S> [RANGE 1s STEP 100ms]
      FROM <Base>
      WHERE {
        GRAPH <Base> { Logan fo ?y }
        GRAPH <S>    { ?y at ?w }
        GRAPH <S>    { ?y at ?v }
      })");
  ASSERT_TRUE(two.ok()) << two.status().ToString();
  EXPECT_FALSE(cluster_->HasDeltaCache(*two));
  EXPECT_EQ(cluster_->DeltaStatsOf(*two).hits, 0u);
  EXPECT_EQ(cluster_->DeltaEntryCountOf(*two), 0u);

  // LIMIT makes row identity order-dependent; the batch-major union must
  // not be allowed to pick a different surviving subset than the cold scan.
  auto limited = cluster_->RegisterContinuous(R"(
      REGISTER QUERY L AS
      SELECT ?y ?w
      FROM STREAM <S> [RANGE 1s STEP 100ms]
      FROM <Base>
      WHERE {
        GRAPH <Base> { Logan fo ?y }
        GRAPH <S>    { ?y at ?w }
      } LIMIT 1)");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  EXPECT_FALSE(cluster_->HasDeltaCache(*limited));

  ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(150)}).ok());
  cluster_->AdvanceStreams(1000);
  auto exec = cluster_->ExecuteContinuousAt(*two, 1000);
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec->delta);
}

TEST_F(DeltaClusterTest, ConfigKnobDisablesDelta) {
  Init(1, /*delta_enabled=*/false);
  auto h = cluster_->RegisterContinuous(kDeltaQuery);
  ASSERT_TRUE(h.ok());
  EXPECT_FALSE(cluster_->HasDeltaCache(*h));
  ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(150)}).ok());
  cluster_->AdvanceStreams(1000);
  auto exec = cluster_->ExecuteContinuousAt(*h, 1000);
  ASSERT_TRUE(exec.ok());
  EXPECT_FALSE(exec->delta);
  EXPECT_FALSE(exec->result.rows.empty());
}

TEST_F(DeltaClusterTest, StoredGraphChangeFlushesTheEpoch) {
  Init(1);
  auto h = cluster_->RegisterContinuous(kDeltaQuery);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(150), PingAt(250)}).ok());
  cluster_->AdvanceStreams(1000);
  TriggerWithParity(*h, 1000);
  uint64_t flushes_before = cluster_->DeltaStatsOf(*h).epoch_flushes;

  // Any stored-graph mutation — here a base load — must flush the cache:
  // cached contributions joined against the old prefix are stale.
  StringServer* s = cluster_->strings();
  TripleVec extra = {Triple{s->InternVertex("Logan"), s->InternPredicate("fo"),
                            s->InternVertex("Bruce")}};
  cluster_->LoadBase(extra);
  ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(1050)}).ok());
  cluster_->AdvanceStreams(1100);
  QueryExecution exec = TriggerWithParity(*h, 1100);
  EXPECT_TRUE(exec.delta);
  EXPECT_GT(cluster_->DeltaStatsOf(*h).epoch_flushes, flushes_before);
}

TEST_F(DeltaClusterTest, NodeCrashInvalidatesAndFallsBackCold) {
  Init(2);
  auto h = cluster_->RegisterContinuous(kDeltaQuery);
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(cluster_->FeedStream(stream_, {PingAt(150), PingAt(250)}).ok());
  cluster_->AdvanceStreams(1000);
  TriggerWithParity(*h, 1000);

  ASSERT_TRUE(cluster_->CrashNode(1).ok());
  EXPECT_EQ(cluster_->DeltaEntryCountOf(*h), 0u);  // Wholesale flush.
  // A degraded cluster bypasses the delta path (partial reads must not be
  // memoized); the trigger still runs, cold.
  auto exec = cluster_->ExecuteContinuousAt(*h, 1000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->delta);
}

// ---------------------------------------------------------------------------
// DeltaPlannerTest: per-window cardinality + the cache-friendly hint.
// ---------------------------------------------------------------------------

// Fixed-cardinality source: every estimate answers `n`.
class StubSource : public NeighborSource {
 public:
  explicit StubSource(size_t n) : n_(n) {}
  void GetNeighbors(Key, std::vector<VertexId>*) const override {}
  size_t EstimateCount(Key) const override { return n_; }

 private:
  size_t n_;
};

TEST(DeltaPlannerTest, BoundExpansionRanksByThePatternsOwnWindow) {
  // Regression: EstimatePatternCost used a shared constant for bound-variable
  // expansion, so with two windows of very different density the planner
  // could not order the sparse window's pattern first.
  StubSource stored(50), dense(40), sparse(2);
  ExecContext ctx;
  ctx.sources = {&stored, &dense, &sparse};

  Query q;
  q.var_names = {"x", "y", "z"};
  TriplePattern seed;  // Logan fo ?x — selective stored seed binds ?x.
  seed.subject = Term::Constant(7);
  seed.predicate = 1;
  seed.object = Term::Variable(0);
  seed.graph = kGraphStored;
  TriplePattern from_dense;  // ?x li ?y scoped to the dense window.
  from_dense.subject = Term::Variable(0);
  from_dense.predicate = 2;
  from_dense.object = Term::Variable(1);
  from_dense.graph = 0;
  TriplePattern from_sparse;  // ?x ht ?z scoped to the sparse window.
  from_sparse.subject = Term::Variable(0);
  from_sparse.predicate = 3;
  from_sparse.object = Term::Variable(2);
  from_sparse.graph = 1;
  q.patterns = {seed, from_dense, from_sparse};

  std::vector<bool> bound = {true, false, false};
  EXPECT_LT(EstimatePatternCost(from_sparse, bound, ctx),
            EstimatePatternCost(from_dense, bound, ctx));

  std::vector<int> plan = PlanQuery(q, ctx);
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0], 0);  // Constant seed first.
  EXPECT_EQ(plan[1], 2);  // Sparse window before dense.
  EXPECT_EQ(plan[2], 1);
}

TEST(DeltaPlannerTest, ChunkCardinalityPinsFig13RecomputeOrder) {
  // Regression for the §5.13 estimate fix: the columnar executor expands
  // bound variables with per-chunk batched gathers, so its cost must count
  // chunk cardinality (seeds / chunk_rows), not raw row counts. On the fig13
  // L6 recompute shape — a window index scan seeding ?U, then a dense stored
  // expansion racing a mid-sized window expansion — the legacy row estimate
  // saturates both candidates at the same cap and ties break to the dense
  // stored pattern, while the chunked estimate keeps them apart and orders
  // the cheaper window pattern first. The expected order is pinned in the
  // plan corpus (§5.14) rather than re-derived from estimator internals.
  StubSource stored(10000), seed_win(8), mid_win(600);
  ExecContext ctx;
  ctx.sources = {&stored, &seed_win, &mid_win};

  Query q;
  q.var_names = {"U", "P", "F", "L"};
  TriplePattern seed;  // ?U po ?P — cheap window index scan binds ?U.
  seed.subject = Term::Variable(0);
  seed.predicate = 1;
  seed.object = Term::Variable(1);
  seed.graph = 0;
  TriplePattern dense_stored;  // ?U fo ?F — 10000 stored seeds.
  dense_stored.subject = Term::Variable(0);
  dense_stored.predicate = 2;
  dense_stored.object = Term::Variable(2);
  dense_stored.graph = kGraphStored;
  TriplePattern mid;  // ?U phl ?L — 600 seeds in the second window.
  mid.subject = Term::Variable(0);
  mid.predicate = 3;
  mid.object = Term::Variable(3);
  mid.graph = 1;
  q.patterns = {seed, dense_stored, mid};

  auto pin = LoadPlanPinFile(std::string(WUKONGS_TEST_CORPUS_DIR) +
                             "/plans/fig13_delta_cache.pin");
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();

  std::vector<int> chunked = PlanQuery(q, ctx);  // Default hints = columnar.
  EXPECT_EQ(chunked, pin->order)
      << "fig13 recompute order drifted from the pinned plan";

  // The legacy row estimate saturates: the pinned order is exactly what the
  // chunked estimate buys, so the row-hint plan must differ.
  PlanHints legacy;
  legacy.chunk_rows = 0;
  std::vector<int> row_plan = PlanQuery(q, ctx, legacy);
  ASSERT_EQ(row_plan.size(), 3u);
  EXPECT_NE(row_plan, pin->order);  // The saturated tie breaks dense-first.
}

TEST(DeltaPlannerTest, CacheHintDefersWindowPatterns) {
  // Without the hint the cheap window pattern would run before the stored
  // one; with a cache attached the stored prefix must come first so it can
  // be memoized across triggers.
  StubSource stored(5), window(2);
  ExecContext ctx;
  ctx.sources = {&stored, &window};

  Query q;
  q.var_names = {"x", "y"};
  TriplePattern win;  // C pw ?x, cheap (2 edges) but window-scoped.
  win.subject = Term::Constant(1);
  win.predicate = 1;
  win.object = Term::Variable(0);
  win.graph = 0;
  TriplePattern st;  // C ps ?y, stored, 5 edges.
  st.subject = Term::Constant(2);
  st.predicate = 2;
  st.object = Term::Variable(1);
  st.graph = kGraphStored;
  q.patterns = {win, st};

  std::vector<int> cold_plan = PlanQuery(q, ctx);
  ASSERT_EQ(cold_plan.size(), 2u);
  EXPECT_EQ(cold_plan[0], 0);  // Cheapest first without a cache.

  PlanHints hints;
  hints.delta_cache = true;
  std::vector<int> delta_plan = PlanQuery(q, ctx, hints);
  ASSERT_EQ(delta_plan.size(), 2u);
  EXPECT_EQ(delta_plan[0], 1);  // Stored prefix first when caching.
  EXPECT_EQ(delta_plan[1], 0);
}

// ---------------------------------------------------------------------------
// DeltaMutationTest: the planted skip-invalidation bug must be caught.
// ---------------------------------------------------------------------------

class DeltaMutationTest : public DeltaClusterTest {};

TEST_F(DeltaMutationTest, GcWithoutInvalidationDivergesFromCold) {
  // Scenario: GC reclaims slices that a registered window still covers (an
  // aggressive horizon — legal for the store, catastrophic for a cache that
  // ignores the eviction). With the invalidation hook intact, delta and cold
  // agree (both see the post-GC world). With the planted bug — GC skips the
  // delta-cache hooks — the cache serves rows sourced from evicted slices
  // and the delta/cold parity oracle fires. This is the exact comparison the
  // differential lane runs on every continuous trigger.
  for (bool plant : {false, true}) {
    Init(1);
    auto h = cluster_->RegisterContinuous(kDeltaQuery);
    ASSERT_TRUE(h.ok());
    StreamTupleVec pings;
    for (StreamTime ts = 50; ts < 1000; ts += kIntervalMs) {
      pings.push_back(PingAt(ts));
    }
    ASSERT_TRUE(cluster_->FeedStream(stream_, pings).ok());
    cluster_->AdvanceStreams(1000);

    auto warm = cluster_->ExecuteContinuousAt(*h, 1000);
    ASSERT_TRUE(warm.ok());
    ASSERT_TRUE(warm->delta);
    ASSERT_FALSE(warm->result.rows.empty());

    {
      // GC every slice of the still-live window, with or without the bug.
      std::unique_ptr<test_hooks::ScopedMutation> bug;
      if (plant) {
        bug = std::make_unique<test_hooks::ScopedMutation>(
            &test_hooks::skip_delta_invalidation);
      }
      cluster_->RunMaintenance(1000);
    }

    auto delta = cluster_->ExecuteContinuousAt(*h, 1000);
    auto cold = cluster_->ExecuteContinuousColdAt(*h, 1000);
    ASSERT_TRUE(delta.ok()) << delta.status().ToString();
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_TRUE(cold->result.rows.empty());  // The slices are gone.
    if (plant) {
      EXPECT_NE(Canon(delta->result), Canon(cold->result))
          << "planted mutation was not observable — the parity oracle "
             "would miss a real invalidation bug";
    } else {
      EXPECT_EQ(Canon(delta->result), Canon(cold->result));
    }
  }
}

// ---------------------------------------------------------------------------
// DeltaInvalidationTest: randomized append / expire / GC interleavings.
// ---------------------------------------------------------------------------

TEST(DeltaInvalidationTest, RandomInterleavingsNeverServeExpiredSlices) {
  // For random interleavings of feeding, clock advancement, triggers and GC
  // (including aggressive horizons that reclaim live-window slices), every
  // delta trigger must match cold re-execution — cold physically cannot read
  // an expired slice, so parity proves no cached row outlives its slice —
  // and the cache never holds more entries than the window spans.
  constexpr uint64_t kSeeds = 25;
  constexpr uint64_t kRangeMs = 1000;
  constexpr size_t kSpan = kRangeMs / kIntervalMs;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed);
    testkit::ScheduleController sched(seed);
    ClusterConfig config;
    config.nodes = 1 + static_cast<uint32_t>(rng.Uniform(0, 2));
    config.batch_interval_ms = kIntervalMs;
    config.schedule = &sched;
    Cluster cluster(config);
    StreamId s = *cluster.DefineStream("S", {"at"});
    // Second stream so the controller has cross-stream orders to permute.
    StreamId noise = *cluster.DefineStream("N", {"at"});

    StringServer* strings = cluster.strings();
    auto vid = [&](const std::string& name) {
      return strings->InternVertex(name);
    };
    PredicateId fo = strings->InternPredicate("fo");
    PredicateId at = strings->InternPredicate("at");
    std::vector<VertexId> people = {vid("Logan"), vid("Erik"), vid("Tony"),
                                    vid("Bruce")};
    TripleVec base;
    for (VertexId p : people) {
      base.push_back(Triple{vid("Logan"), fo, p});
    }
    cluster.LoadBase(base);

    auto h = cluster.RegisterContinuous(kDeltaQuery);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(cluster.HasDeltaCache(*h));

    StreamTime now = 0;
    uint64_t triggers = 0;
    for (int step = 0; step < 40; ++step) {
      now += kIntervalMs;
      size_t feeds = rng.Uniform(0, 3);
      StreamTupleVec tuples;
      for (size_t i = 0; i < feeds; ++i) {
        VertexId who = people[rng.Uniform(0, people.size() - 1)];
        tuples.push_back(StreamTuple{
            {who, at, vid("L" + std::to_string(now) + "_" + std::to_string(i))},
            now - kIntervalMs + 10 * (i + 1),
            TupleKind::kTiming});
      }
      ASSERT_TRUE(cluster.FeedStream(s, tuples).ok());
      if (rng.Bernoulli(0.5)) {
        ASSERT_TRUE(cluster
                        .FeedStream(noise, {StreamTuple{{people[0], at, vid("n")},
                                                        now - 1,
                                                        TupleKind::kTiming}})
                        .ok());
      }
      cluster.AdvanceStreams(now);

      if (rng.Bernoulli(0.25)) {
        // GC at a random horizon — sometimes beyond live-window starts, the
        // adversarial case the eviction hooks exist for.
        StreamTime horizon = rng.Uniform(0, now);
        cluster.RunMaintenance(horizon);
      }

      if (now >= kRangeMs && rng.Bernoulli(0.6) &&
          cluster.WindowReady(*h, now)) {
        auto exec = cluster.ExecuteContinuousAt(*h, now);
        auto cold = cluster.ExecuteContinuousColdAt(*h, now);
        ASSERT_TRUE(exec.ok()) << "seed " << seed << ": "
                               << exec.status().ToString();
        ASSERT_TRUE(cold.ok()) << "seed " << seed << ": "
                               << cold.status().ToString();
        ASSERT_EQ(Canon(exec->result), Canon(cold->result))
            << "seed " << seed << " @" << now;
        EXPECT_LE(cluster.DeltaEntryCountOf(*h), kSpan) << "seed " << seed;
        ++triggers;
      }
    }
    EXPECT_GT(triggers, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// DeltaThreadedTest: concurrent triggers race maintenance GC (TSan lane).
// ---------------------------------------------------------------------------

TEST(DeltaThreadedTest, ConcurrentTriggersRaceMaintenanceGc) {
  testkit::ScheduleController sched(4242);
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = kIntervalMs;
  config.schedule = &sched;
  Cluster cluster(config);
  StreamId s = *cluster.DefineStream("S", {"at"});

  StringServer* strings = cluster.strings();
  auto vid = [&](const std::string& name) { return strings->InternVertex(name); };
  PredicateId fo = strings->InternPredicate("fo");
  PredicateId at = strings->InternPredicate("at");
  TripleVec base = {Triple{vid("Logan"), fo, vid("Erik")},
                    Triple{vid("Logan"), fo, vid("Tony")}};
  cluster.LoadBase(base);

  auto h = cluster.RegisterContinuous(kDeltaQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  ASSERT_TRUE(cluster.HasDeltaCache(*h));

  constexpr StreamTime kEnd = 5000;
  std::atomic<StreamTime> now{0};
  std::vector<std::future<StatusOr<QueryExecution>>> futures;
  {
    // The daemon GCs up to one window-range behind the clock while workers
    // drain triggers in fuzzed order: cache fills, slides, and invalidations
    // all race. TSan verifies the locking; the final parity below verifies
    // no stale contribution survived.
    MaintenanceDaemon daemon(
        &cluster,
        [&now] {
          StreamTime n = now.load(std::memory_order_relaxed);
          return n > 1000 ? n - 1000 : 0;
        },
        std::chrono::milliseconds(2), &sched);
    WorkerPool pool(&cluster, 3, &sched);
    for (StreamTime end = 1000; end <= kEnd; end += kIntervalMs) {
      VertexId who = (end / kIntervalMs) % 2 == 0 ? vid("Erik") : vid("Tony");
      ASSERT_TRUE(
          cluster
              .FeedStream(s, {StreamTuple{{who, at, vid("L" + std::to_string(end))},
                                          end - 50,
                                          TupleKind::kTiming}})
              .ok());
      cluster.AdvanceStreams(end);
      now.store(end, std::memory_order_relaxed);
      futures.push_back(pool.SubmitContinuous(*h, end));
      daemon.Kick();
    }
    pool.Drain();
  }

  size_t delta_executions = 0;
  for (auto& f : futures) {
    auto exec = f.get();
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    delta_executions += exec->delta ? 1 : 0;
  }
  EXPECT_GT(delta_executions, 0u);

  // Post-race parity on the final (still fully live) window.
  auto delta = cluster.ExecuteContinuousAt(*h, kEnd);
  auto cold = cluster.ExecuteContinuousColdAt(*h, kEnd);
  ASSERT_TRUE(delta.ok()) << delta.status().ToString();
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_EQ(Canon(delta->result), Canon(cold->result));
  EXPECT_FALSE(cold->result.rows.empty());
}

}  // namespace
}  // namespace wukongs
