// Observability layer tests (DESIGN.md §5.8).
//
// The golden-trace property: trace timestamps come from SimCost, not the
// wall clock, so running the same seeded workload twice must produce
// byte-identical Chrome trace JSON and metrics dumps. Each run executes in a
// fresh std::thread so the thread-local SimCost accumulator starts at zero —
// the same baseline the second run gets. The planted mutation
// (test_hooks::reorder_trace_spans) proves the digest comparison has teeth.
//
// Also: unit coverage for the Tracer event format and the MetricsRegistry
// (Prometheus-style exposition, labels, cluster-wide merge, JSON export).

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/test_hooks.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace wukongs {
namespace {

constexpr char kContinuous[] = R"(
    REGISTER QUERY QC AS
    SELECT ?X ?Y ?Z
    FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
    FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
    FROM <X-Lab>
    WHERE {
      GRAPH <Tweet_Stream> { ?X po ?Z }
      GRAPH <X-Lab>        { ?X fo ?Y }
      GRAPH <Like_Stream>  { ?Y li ?Z }
    })";

constexpr char kOneShot[] =
    "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }";

struct WorkloadOutput {
  std::string trace_json;
  uint32_t digest = 0;
  size_t trace_events = 0;
  std::string metrics_dump;
  // Query results, serialized as interned ids (interning order is fixed by
  // the workload, so these are comparable across runs).
  std::vector<std::vector<uint64_t>> continuous_rows;
  std::vector<std::vector<uint64_t>> oneshot_rows;
};

std::vector<std::vector<uint64_t>> RowIds(const QueryResult& result) {
  std::vector<std::vector<uint64_t>> out;
  for (const auto& row : result.rows) {
    std::vector<uint64_t> ids;
    ids.reserve(row.size());
    for (const ResultValue& v : row) {
      ids.push_back(v.vid);
    }
    out.push_back(std::move(ids));
  }
  return out;
}

// The paper's Fig. 1-2 running example, driven to completion with the
// observability layer attached (or not). Runs on a dedicated thread so
// SimCost starts from the same zero baseline every time.
WorkloadOutput RunSeededWorkload(bool with_obs) {
  WorkloadOutput out;
  std::thread runner([&out, with_obs] {
    obs::MetricsRegistry registry;
    obs::Tracer tracer;

    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = 1000;
    if (with_obs) {
      config.metrics = &registry;
      config.tracer = &tracer;
    }
    Cluster cluster(config);

    StreamId tweet = *cluster.DefineStream("Tweet_Stream", {"ga"});
    StreamId like = *cluster.DefineStream("Like_Stream");

    StringServer* s = cluster.strings();
    auto triple = [&](const char* su, const char* p, const char* o) {
      return Triple{s->InternVertex(su), s->InternPredicate(p),
                    s->InternVertex(o)};
    };
    std::vector<Triple> base = {
        triple("Logan", "fo", "Erik"),   triple("Erik", "fo", "Logan"),
        triple("Logan", "po", "T-13"),   triple("Erik", "po", "T-12"),
        triple("T-12", "ht", "#sosp17"), triple("T-13", "ht", "#sosp17"),
        triple("Erik", "li", "T-13"),    triple("Logan", "li", "T-12"),
    };
    cluster.LoadBase(base);

    auto handle = cluster.RegisterContinuous(kContinuous);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();

    auto tuple = [&](const char* su, const char* p, const char* o,
                     StreamTime ts) {
      return StreamTuple{{s->InternVertex(su), s->InternPredicate(p),
                          s->InternVertex(o)},
                         ts,
                         TupleKind::kTimeless};
    };
    ASSERT_TRUE(cluster
                    .FeedStream(tweet, {tuple("Logan", "po", "T-15", 2000),
                                        tuple("T-15", "ga", "31,121", 2000),
                                        tuple("T-15", "ht", "#sosp17", 2000),
                                        tuple("Erik", "po", "T-16", 5000),
                                        tuple("Logan", "po", "T-17", 8000)})
                    .ok());
    ASSERT_TRUE(cluster
                    .FeedStream(like, {tuple("Erik", "li", "T-15", 6000),
                                       tuple("Tony", "li", "T-15", 6000),
                                       tuple("Bruce", "li", "T-15", 6000)})
                    .ok());
    cluster.AdvanceStreams(10000);

    auto cont = cluster.ExecuteContinuousAt(*handle, 10000);
    ASSERT_TRUE(cont.ok()) << cont.status().ToString();
    out.continuous_rows = RowIds(cont->result);

    auto one = cluster.OneShot(kOneShot);
    ASSERT_TRUE(one.ok()) << one.status().ToString();
    out.oneshot_rows = RowIds(one->result);

    cluster.RunMaintenance(0);

    out.metrics_dump = cluster.DumpMetrics();
    out.trace_json = tracer.ToChromeJson();
    out.digest = tracer.Digest();
    out.trace_events = tracer.size();
  });
  runner.join();
  return out;
}

TEST(ObsDeterminismTest, SameWorkloadYieldsByteIdenticalTraceAndMetrics) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DWUKONGS_OBS=OFF)";
  }
  WorkloadOutput first = RunSeededWorkload(/*with_obs=*/true);
  WorkloadOutput second = RunSeededWorkload(/*with_obs=*/true);

  ASSERT_GT(first.trace_events, 0u);
  EXPECT_EQ(first.trace_events, second.trace_events);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.metrics_dump, second.metrics_dump);

  // The trace covers both lifecycles the design names: the query path and
  // the ingest path, down to executor stages.
  for (const char* span :
       {"query/parse", "query/plan", "query/execute", "query/merge",
        "ingest/adaptor", "ingest/dispatch", "ingest/index_publish",
        "exec/patterns"}) {
    EXPECT_NE(first.trace_json.find(span), std::string::npos)
        << "missing span " << span;
  }
  // And the dump carries the absorbed counters, not just ad-hoc stats.
  for (const char* metric :
       {"wukongs_batches_injected_total", "wukongs_tuples_injected_total",
        "wukongs_queries_oneshot_total", "wukongs_queries_continuous_total",
        "wukongs_stream_index_lookups_total", "wukongs_stable_sn"}) {
    EXPECT_NE(first.metrics_dump.find(metric), std::string::npos)
        << "missing metric " << metric;
  }
}

TEST(ObsDeterminismTest, PlantedSpanReorderIsCaughtByDigest) {
  if (!obs::kCompiledIn) {
    GTEST_SKIP() << "observability compiled out (-DWUKONGS_OBS=OFF)";
  }
  WorkloadOutput clean = RunSeededWorkload(/*with_obs=*/true);
  WorkloadOutput mutated;
  {
    test_hooks::ScopedMutation plant(&test_hooks::reorder_trace_spans);
    mutated = RunSeededWorkload(/*with_obs=*/true);
  }
  // Same workload, same event count — but the emission order was perturbed,
  // and the digest must notice.
  EXPECT_EQ(clean.trace_events, mutated.trace_events);
  EXPECT_NE(clean.digest, mutated.digest);
  EXPECT_NE(clean.trace_json, mutated.trace_json);
}

TEST(ObsDeterminismTest, RuntimeKillSwitchPreservesResults) {
  WorkloadOutput on = RunSeededWorkload(/*with_obs=*/true);
  WorkloadOutput off = RunSeededWorkload(/*with_obs=*/false);

  // Observability must be a pure observer: identical query results with the
  // layer detached, and nothing recorded anywhere.
  EXPECT_EQ(on.continuous_rows, off.continuous_rows);
  EXPECT_EQ(on.oneshot_rows, off.oneshot_rows);
  EXPECT_EQ(off.trace_events, 0u);
  EXPECT_TRUE(off.metrics_dump.empty());
}

TEST(TracerTest, EmitsChromeTraceEventsWithArgsAndSequence) {
  obs::Tracer tracer;
  {
    obs::Tracer::Span span = tracer.StartSpan("query", "query/execute", 3);
    span.Arg("rows", static_cast<uint64_t>(42));
    span.Arg("plan", std::string("fork-join"));
  }
  tracer.Instant("query", "query/deliver", 1);
  ASSERT_EQ(tracer.size(), 2u);

  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"query/execute\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"query\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"rows\":42"), std::string::npos);
  EXPECT_NE(json.find("\"plan\":\"fork-join\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":0"), std::string::npos);
  EXPECT_NE(json.find("\"seq\":1"), std::string::npos);

  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_NE(tracer.Digest(), 0u);  // Digest of the empty envelope, not 0.
}

TEST(TracerTest, DefaultSpanAndNullGuardsAreInert) {
  // A default-constructed Span (the disabled path at wiring sites) must not
  // crash on Arg/End and must not emit anywhere.
  obs::Tracer::Span span;
  span.Arg("rows", static_cast<uint64_t>(1));
  span.End();
  span.End();  // Idempotent.
}

TEST(MetricsRegistryTest, TextDumpUsesPrometheusExposition) {
  obs::MetricsRegistry registry;
  registry.GetCounter("wukongs_batches_injected_total")->Add(7);
  registry.GetGauge("wukongs_vts_lag_batches")->Set(2.0);
  obs::HistogramMetric* h = registry.GetHistogram("wukongs_latency_ms");
  h->Observe(1.0);
  h->Observe(2.0);
  h->Observe(4.0);

  std::string dump = registry.TextDump();
  EXPECT_NE(dump.find("# TYPE wukongs_batches_injected_total counter\n"
                      "wukongs_batches_injected_total 7\n"),
            std::string::npos);
  EXPECT_NE(dump.find("# TYPE wukongs_vts_lag_batches gauge\n"
                      "wukongs_vts_lag_batches 2\n"),
            std::string::npos);
  EXPECT_NE(dump.find("# TYPE wukongs_latency_ms summary\n"),
            std::string::npos);
  EXPECT_NE(dump.find("wukongs_latency_ms_count 3\n"), std::string::npos);
  EXPECT_NE(dump.find("wukongs_latency_ms_sum 7\n"), std::string::npos);
  EXPECT_NE(dump.find("wukongs_latency_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(dump.find("wukongs_latency_ms_max"), std::string::npos);

  // Filtering narrows the dump to matching families only.
  std::string filtered = registry.TextDump("vts_lag");
  EXPECT_NE(filtered.find("wukongs_vts_lag_batches"), std::string::npos);
  EXPECT_EQ(filtered.find("wukongs_batches_injected_total"),
            std::string::npos);
  EXPECT_EQ(filtered.find("wukongs_latency_ms"), std::string::npos);
}

TEST(MetricsRegistryTest, LabeledBuildsPrometheusLabelBlocks) {
  EXPECT_EQ(obs::MetricsRegistry::Labeled("m", {}), "m");
  EXPECT_EQ(obs::MetricsRegistry::Labeled("m", {{"stream", "S0"}}),
            "m{stream=\"S0\"}");
  EXPECT_EQ(obs::MetricsRegistry::Labeled(
                "m", {{"stream", "S0"}, {"result", "hit"}}),
            "m{stream=\"S0\",result=\"hit\"}");
  // Labeled names round-trip through the registry as distinct series.
  obs::MetricsRegistry registry;
  registry.GetCounter(obs::MetricsRegistry::Labeled(
      "wukongs_stream_index_lookups_total", {{"result", "hit"}}))->Add(3);
  registry.GetCounter(obs::MetricsRegistry::Labeled(
      "wukongs_stream_index_lookups_total", {{"result", "miss"}}))->Add(1);
  std::string dump = registry.TextDump();
  EXPECT_NE(dump.find("wukongs_stream_index_lookups_total{result=\"hit\"} 3"),
            std::string::npos);
  EXPECT_NE(dump.find("wukongs_stream_index_lookups_total{result=\"miss\"} 1"),
            std::string::npos);
  // One # TYPE line covers both series of the family.
  size_t first = dump.find("# TYPE wukongs_stream_index_lookups_total");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(dump.find("# TYPE wukongs_stream_index_lookups_total", first + 1),
            std::string::npos);
}

TEST(MetricsRegistryTest, MergeFromFoldsClusterWideCounters) {
  // Cluster-wide merge semantics: counters sum, gauges take the max (the
  // worst node wins for lag-style gauges), histograms merge exactly.
  obs::MetricsRegistry node0;
  obs::MetricsRegistry node1;
  node0.GetCounter("wukongs_tuples_injected_total")->Add(10);
  node1.GetCounter("wukongs_tuples_injected_total")->Add(32);
  node1.GetCounter("wukongs_door_shed_tuples_total")->Add(5);
  node0.GetGauge("wukongs_vts_lag_batches")->Set(1.0);
  node1.GetGauge("wukongs_vts_lag_batches")->Set(4.0);
  node0.GetHistogram("wukongs_latency_ms")->Observe(1.0);
  node0.GetHistogram("wukongs_latency_ms")->Observe(3.0);
  node1.GetHistogram("wukongs_latency_ms")->Observe(2.0);

  obs::MetricsRegistry merged;
  merged.MergeFrom(node0);
  merged.MergeFrom(node1);
  EXPECT_EQ(merged.GetCounter("wukongs_tuples_injected_total")->value(), 42u);
  EXPECT_EQ(merged.GetCounter("wukongs_door_shed_tuples_total")->value(), 5u);
  EXPECT_DOUBLE_EQ(merged.GetGauge("wukongs_vts_lag_batches")->value(), 4.0);
  BucketHistogram snap = merged.GetHistogram("wukongs_latency_ms")->Snapshot();
  EXPECT_EQ(snap.count(), 3u);
  EXPECT_DOUBLE_EQ(snap.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(snap.Max(), 3.0);

  // Merge order must not matter for the dump (the property tests cover the
  // histogram algebra; this pins the registry-level composition).
  obs::MetricsRegistry reversed;
  reversed.MergeFrom(node1);
  reversed.MergeFrom(node0);
  EXPECT_EQ(merged.TextDump(), reversed.TextDump());
}

TEST(MetricsRegistryTest, ToJsonExportsAllFamilies) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c_total")->Add(3);
  registry.GetGauge("g")->Set(1.5);
  registry.GetHistogram("h_ms")->Observe(10.0);

  std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c_total\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":{\"g\":1.5}"), std::string::npos);
  EXPECT_NE(json.find("\"h_ms\":{\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"overflow\":0"), std::string::npos);
}

}  // namespace
}  // namespace wukongs
