// Unit tests for src/common: packed keys, status, histogram, latency model.

#include <gtest/gtest.h>

#include <thread>

#include "src/common/histogram.h"
#include "src/common/ids.h"
#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/table_printer.h"

namespace wukongs {
namespace {

TEST(KeyTest, PackUnpackRoundTrip) {
  Key k(12345, 678, Dir::kOut);
  EXPECT_EQ(k.vid(), 12345u);
  EXPECT_EQ(k.pid(), 678u);
  EXPECT_EQ(k.dir(), Dir::kOut);
  EXPECT_FALSE(k.is_index());

  Key in(1, 1, Dir::kIn);
  EXPECT_EQ(in.dir(), Dir::kIn);
}

TEST(KeyTest, MaxValuesRoundTrip) {
  Key k(kMaxVertexId, kMaxPredicateId, Dir::kIn);
  EXPECT_EQ(k.vid(), kMaxVertexId);
  EXPECT_EQ(k.pid(), kMaxPredicateId);
  EXPECT_EQ(k.dir(), Dir::kIn);
}

TEST(KeyTest, IndexVertexDetected) {
  Key k(kIndexVertex, 4, Dir::kOut);
  EXPECT_TRUE(k.is_index());
}

TEST(KeyTest, DistinctKeysDiffer) {
  EXPECT_NE(Key(1, 2, Dir::kOut), Key(1, 2, Dir::kIn));
  EXPECT_NE(Key(1, 2, Dir::kOut), Key(2, 2, Dir::kOut));
  EXPECT_NE(Key(1, 2, Dir::kOut), Key(1, 3, Dir::kOut));
}

TEST(KeyTest, HashSpreads) {
  KeyHash h;
  EXPECT_NE(h(Key(1, 1, Dir::kOut)), h(Key(2, 1, Dir::kOut)));
  EXPECT_NE(h(Key(1, 1, Dir::kOut)), h(Key(1, 1, Dir::kIn)));
}

TEST(KeyTest, DebugStringMatchesPaperNotation) {
  EXPECT_EQ(Key(1, 4, Dir::kOut).DebugString(), "[1|4|1]");
  EXPECT_EQ(Key(7, 4, Dir::kIn).DebugString(), "[7|4|0]");
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing thing");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::InvalidArgument("bad"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(HistogramTest, PercentilesOnKnownData) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) {
    h.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(h.Min(), 1.0);
  EXPECT_DOUBLE_EQ(h.Max(), 100.0);
  EXPECT_NEAR(h.Median(), 50.5, 0.01);
  EXPECT_NEAR(h.Percentile(99), 99.01, 0.1);
  EXPECT_NEAR(h.Mean(), 50.5, 1e-9);
}

TEST(HistogramTest, SingleSample) {
  Histogram h;
  h.Add(7.0);
  EXPECT_DOUBLE_EQ(h.Median(), 7.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 7.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a;
  Histogram b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, GeometricMean) {
  Histogram h;
  h.Add(1.0);
  h.Add(100.0);
  EXPECT_NEAR(h.GeometricMean(), 10.0, 1e-9);
  EXPECT_NEAR(GeometricMeanOf({2.0, 8.0}), 4.0, 1e-9);
}

TEST(HistogramTest, CdfIsMonotone) {
  Histogram h;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    h.Add(rng.UniformReal(0.0, 10.0));
  }
  auto cdf = h.Cdf(10);
  ASSERT_EQ(cdf.size(), 10u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GT(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(SimCostTest, AccumulatesPerThread) {
  SimCost::Reset();
  SimCost::Add(100.0);
  SimCost::Add(50.0);
  EXPECT_DOUBLE_EQ(SimCost::TotalNs(), 150.0);

  std::thread other([] {
    SimCost::Reset();
    SimCost::Add(1.0);
    EXPECT_DOUBLE_EQ(SimCost::TotalNs(), 1.0);
  });
  other.join();
  EXPECT_DOUBLE_EQ(SimCost::TotalNs(), 150.0);
}

TEST(SimCostTest, ScopeIsolatesAndRestores) {
  SimCost::Reset();
  SimCost::Add(10.0);
  {
    SimCost::Scope scope;
    SimCost::Add(5.0);
    EXPECT_DOUBLE_EQ(scope.AccruedNs(), 5.0);
  }
  EXPECT_DOUBLE_EQ(SimCost::TotalNs(), 15.0);
}

TEST(LatencyProbeTest, IncludesSimCost) {
  SimCost::Reset();
  LatencyProbe probe;
  SimCost::Add(1e6);  // 1 ms modeled.
  EXPECT_GE(probe.FinishMs(), 1.0);
  EXPECT_LT(probe.FinishMs(), 100.0);
}

TEST(RngTest, DeterministicWithSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
  }
}

TEST(RngTest, UniformInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(5, 10);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 10u);
  }
}

TEST(RngTest, ZipfSkewsLow) {
  Rng rng(1);
  size_t low = 0;
  constexpr int kSamples = 10000;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.Zipf(1000) < 100) {
      ++low;
    }
  }
  // With skew, the lowest decile should receive far more than 10% of mass.
  EXPECT_GT(low, kSamples / 5);
}

TEST(TablePrinterTest, FormatsAlignedTable) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", TablePrinter::Num(1.234, 2)});
  t.AddRow({"long-name", TablePrinter::Num(-1, 2)});
  std::string s = t.ToString();
  EXPECT_NE(s.find("| name "), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("| -"), std::string::npos);  // Negative renders as "-".
}

TEST(NetworkModelTest, RdmaCheaperThanTcp) {
  NetworkModel m;
  EXPECT_LT(m.rdma_read_base_ns, m.tcp_msg_base_ns);
  EXPECT_LT(m.rdma_msg_per_byte_ns, m.tcp_msg_per_byte_ns);
}

}  // namespace
}  // namespace wukongs
