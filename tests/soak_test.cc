// Soak test: sustained streaming with periodic maintenance must keep the
// window-scoped state (stream index, transient slices, snapshot metadata)
// bounded — the property that separates Wukong+S from Wukong/Ext, whose
// footprint grows monotonically (paper §4.1-§4.2, §6.7).

#include <gtest/gtest.h>

#include <filesystem>

#include "src/cluster/cluster.h"
#include "src/cluster/reconfig.h"
#include "src/common/rng.h"
#include "src/fault/fault_injector.h"
#include "src/fault/recovery_manager.h"
#include "src/fault/upstream_buffer.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace {

TEST(SoakTest, WindowStateStaysBoundedUnderSustainedStreaming) {
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = 10;
  Cluster cluster(config);
  StreamId facts = *cluster.DefineStream("Facts");
  StreamId sensors = *cluster.DefineStream("Sensors", {"reading"});

  StringServer* s = cluster.strings();
  PredicateId po = s->InternPredicate("po");
  PredicateId reading = s->InternPredicate("reading");
  std::vector<VertexId> users;
  for (int u = 0; u < 50; ++u) {
    users.push_back(s->InternVertex("u" + std::to_string(u)));
  }
  std::vector<VertexId> values;
  for (int v = 0; v < 100; ++v) {
    values.push_back(s->InternVertex(std::to_string(v)));
  }

  auto handle = cluster.RegisterContinuous(R"(
      REGISTER QUERY q AS
      SELECT ?U ?P ?R
      FROM STREAM <Facts> [RANGE 100ms STEP 10ms]
      FROM STREAM <Sensors> [RANGE 100ms STEP 10ms]
      WHERE { GRAPH <Facts> { ?U po ?P }
              GRAPH <Sensors> { ?U reading ?R } })");
  ASSERT_TRUE(handle.ok());

  constexpr StreamTime kChunkMs = 200;
  constexpr int kChunks = 50;  // 10 simulated seconds, 1000 batches/stream.
  constexpr uint64_t kRangeMs = 100;

  size_t peak_window_bytes = 0;
  size_t window_bytes_at_20pct = 0;
  size_t post_id = 0;
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    StreamTime from = static_cast<StreamTime>(chunk) * kChunkMs;
    StreamTupleVec fact_tuples;
    StreamTupleVec sensor_tuples;
    for (StreamTime t = from; t < from + kChunkMs; t += 2) {
      fact_tuples.push_back(
          StreamTuple{{users[post_id % users.size()], po,
                       s->InternVertex("post" + std::to_string(post_id))},
                      t,
                      TupleKind::kTimeless});
      ++post_id;
      sensor_tuples.push_back(
          StreamTuple{{users[t % users.size()], reading, values[t % values.size()]},
                      t,
                      TupleKind::kTimeless});
    }
    ASSERT_TRUE(cluster.FeedStream(facts, fact_tuples).ok());
    ASSERT_TRUE(cluster.FeedStream(sensors, sensor_tuples).ok());
    StreamTime now = from + kChunkMs;
    cluster.AdvanceStreams(now);

    // The GC thread runs continuously in production; here, every chunk.
    cluster.RunMaintenance(now > kRangeMs ? now - kRangeMs : 0);

    auto exec = cluster.ExecuteContinuousAt(*handle, now);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    // Every user posts and reads continuously; the join is never empty.
    EXPECT_FALSE(exec->result.rows.empty()) << "chunk " << chunk;

    size_t window_bytes =
        cluster.StreamIndexBytes(facts) + cluster.StreamIndexBytes(sensors) +
        cluster.TransientBytes(facts) + cluster.TransientBytes(sensors);
    peak_window_bytes = std::max(peak_window_bytes, window_bytes);
    if (chunk == kChunks / 5) {
      window_bytes_at_20pct = window_bytes;
    }
  }

  // Bounded: after warm-up, window state never exceeds a small multiple of
  // its steady-state size, despite 50x more data having streamed through.
  EXPECT_LE(peak_window_bytes, window_bytes_at_20pct * 3)
      << "peak " << peak_window_bytes << " vs steady " << window_bytes_at_20pct;

  // Snapshot metadata stays bounded too (markers collapse behind Stable_SN).
  auto mem = cluster.Memory();
  // Two reserved snapshots over all keys: metadata is a sliver of the store.
  EXPECT_LT(mem.snapshot_meta_bytes, mem.store_bytes / 4);

  // The persistent store did absorb everything (it is *supposed* to grow).
  auto count = cluster.OneShot("SELECT COUNT(?P) WHERE { ?U po ?P }");
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->result.rows[0][0].number, static_cast<double>(post_id));
}

TEST(SoakTest, SurvivesRepeatedCrashRestoreCyclesUnderLossyFabric) {
  // Sustained streaming through a lossy fabric (drops, duplicates, delays,
  // failed reads) with a node crash + in-place restore every few intervals.
  // The system must stay live (windows keep triggering, queries keep
  // answering) and every restore must bring the node fully back.
  std::string log_path =
      (std::filesystem::temp_directory_path() /
       ("wukongs_soak_" + std::to_string(::getpid()) + ".log"))
          .string();

  FaultSchedule schedule;
  schedule.seed = 2026;
  schedule.read_failure_rate = 0.02;
  schedule.message_failure_rate = 0.02;
  schedule.batch_drop_rate = 0.1;
  schedule.batch_duplicate_rate = 0.1;
  schedule.batch_delay_rate = 0.1;
  FaultInjector injector(schedule);
  UpstreamBuffer upstream;

  ClusterConfig config;
  config.nodes = 3;
  config.batch_interval_ms = 10;
  config.fault_injector = &injector;
  Cluster cluster(config);
  StreamId facts = *cluster.DefineStream("Facts");

  StringServer* s = cluster.strings();
  PredicateId po = s->InternPredicate("po");
  std::vector<Triple> base;
  for (int u = 0; u < 30; ++u) {
    base.push_back({s->InternVertex("u" + std::to_string(u)),
                    s->InternPredicate("fo"),
                    s->InternVertex("u" + std::to_string((u + 1) % 30))});
  }
  cluster.LoadBase(base);

  auto handle = cluster.RegisterContinuous(R"(
      REGISTER QUERY soak AS
      SELECT ?U ?P
      FROM STREAM <Facts> [RANGE 50ms STEP 10ms]
      WHERE { GRAPH <Facts> { ?U po ?P } })");
  ASSERT_TRUE(handle.ok());

  auto log = CheckpointLog::Create(log_path);
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });
  cluster.SetUpstreamBuffer(&upstream);

  RecoveryManager manager(log_path);
  Rng rng(11);
  constexpr StreamTime kIntervalMs = 50;
  constexpr int kIntervals = 40;
  size_t restores = 0;
  size_t executed = 0;
  size_t post = 0;
  for (int i = 1; i <= kIntervals; ++i) {
    StreamTime now = static_cast<StreamTime>(i) * kIntervalMs;
    StreamTupleVec tuples;
    for (StreamTime t = now - kIntervalMs; t < now; t += 2) {
      tuples.push_back(StreamTuple{{s->InternVertex("u" + std::to_string(post % 30)),
                                    po,
                                    s->InternVertex("p" + std::to_string(post))},
                                   t,
                                   TupleKind::kTimeless});
      ++post;
    }
    ASSERT_TRUE(cluster.FeedStream(facts, tuples).ok());
    cluster.AdvanceStreams(now);

    if (i % 8 == 3) {
      // Crash a random non-last-survivor node...
      NodeId victim = static_cast<NodeId>(rng.Uniform(0, 2));
      ASSERT_TRUE(cluster.CrashNode(victim).ok()) << "interval " << i;
      // ...ride degraded for one interval's worth of queries...
      auto degraded = cluster.ExecuteContinuousAt(*handle, now);
      ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
      // ...then restore it in place from the log + upstream tail.
      ASSERT_TRUE(log->Sync().ok());
      auto report = manager.RestoreNode(&cluster, victim, base, &upstream);
      ASSERT_TRUE(report.ok()) << "interval " << i << ": "
                               << report.status().ToString();
      ++restores;
      ASSERT_EQ(cluster.UpNodeCount(), 3u);
    }

    auto exec = cluster.ExecuteContinuousAt(*handle, now);
    ASSERT_TRUE(exec.ok()) << "interval " << i << ": " << exec.status().ToString();
    EXPECT_FALSE(exec->result.rows.empty()) << "interval " << i;
    EXPECT_FALSE(exec->partial) << "interval " << i;  // All nodes are up again.
    ++executed;
  }

  EXPECT_EQ(restores, 5u);
  EXPECT_EQ(executed, static_cast<size_t>(kIntervals));
  EXPECT_EQ(cluster.fault_stats().crashes, restores);
  // The lossy fabric actually bit: some fates fired at these rates.
  const auto& istats = injector.stats();
  EXPECT_GT(istats.dropped_batches + istats.duplicated_batches +
                istats.delayed_batches,
            0u);

  std::filesystem::remove(log_path);
}

TEST(SoakTest, SurvivesMigrationChurnUnderSustainedStreaming) {
  // Sustained streaming with a live shard move every few intervals, a node
  // added mid-run, and a full drain near the end (DESIGN.md §5.10). The
  // system must stay live — every window fires complete and non-empty — no
  // move may abort, and window-scoped state stays bounded despite the churn
  // (dual-apply copies and stale-tenure data must not accrete).
  std::string log_path =
      (std::filesystem::temp_directory_path() /
       ("wukongs_soak_mig_" + std::to_string(::getpid()) + ".log"))
          .string();
  std::filesystem::remove(log_path);

  ClusterConfig config;
  config.nodes = 3;
  config.batch_interval_ms = 10;
  Cluster cluster(config);
  StreamId facts = *cluster.DefineStream("Facts");

  StringServer* s = cluster.strings();
  PredicateId po = s->InternPredicate("po");
  std::vector<Triple> base;
  for (int u = 0; u < 30; ++u) {
    base.push_back({s->InternVertex("u" + std::to_string(u)),
                    s->InternPredicate("fo"),
                    s->InternVertex("u" + std::to_string((u + 1) % 30))});
  }
  cluster.LoadBase(base);

  auto handle = cluster.RegisterContinuous(R"(
      REGISTER QUERY churn AS
      SELECT ?U ?P
      FROM STREAM <Facts> [RANGE 50ms STEP 10ms]
      WHERE { GRAPH <Facts> { ?U po ?P } })");
  ASSERT_TRUE(handle.ok());

  auto log = CheckpointLog::Create(log_path);
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  ReconfigManager mgr(log_path);
  Rng rng(17);
  constexpr StreamTime kIntervalMs = 50;
  constexpr uint64_t kRangeMs = 50;
  constexpr int kIntervals = 40;
  size_t moves = 0;
  size_t post = 0;
  size_t peak_window_bytes = 0;
  size_t window_bytes_at_20pct = 0;
  for (int i = 1; i <= kIntervals; ++i) {
    StreamTime now = static_cast<StreamTime>(i) * kIntervalMs;
    StreamTupleVec tuples;
    for (StreamTime t = now - kIntervalMs; t < now; t += 2) {
      tuples.push_back(StreamTuple{{s->InternVertex("u" + std::to_string(post % 30)),
                                    po,
                                    s->InternVertex("p" + std::to_string(post))},
                                   t,
                                   TupleKind::kTimeless});
      ++post;
    }
    ASSERT_TRUE(cluster.FeedStream(facts, tuples).ok());
    cluster.AdvanceStreams(now);

    if (i % 5 == 0) {
      // Live handoff of a random shard to a random eligible peer — over the
      // run shards revisit former owners, exercising the Begin-time purge.
      ASSERT_TRUE(log->Sync().ok());
      uint32_t shard =
          static_cast<uint32_t>(rng.Uniform(0, cluster.ShardCount() - 1));
      NodeId source = cluster.ShardOwner(shard);
      std::vector<NodeId> cands;
      for (NodeId n = 0; n < cluster.node_count(); ++n) {
        if (n != source && cluster.NodeUp(n) && cluster.NodeServing(n) &&
            !cluster.IsDraining(n)) {
          cands.push_back(n);
        }
      }
      ASSERT_FALSE(cands.empty()) << "interval " << i;
      NodeId target = cands[rng.Uniform(0, cands.size() - 1)];
      auto rep = mgr.MoveShard(&cluster, shard, target, base);
      ASSERT_TRUE(rep.ok()) << "interval " << i << ": "
                            << rep.status().ToString();
      EXPECT_FALSE(rep->commit_pending) << "interval " << i;
      ++moves;
    }
    if (i == 18) {
      // Elastic growth mid-run: the new node joins empty and picks up shards
      // from subsequent random moves and the drain below.
      auto added = cluster.AddNode();
      ASSERT_TRUE(added.ok()) << added.status().ToString();
    }
    if (i == 32) {
      // Elastic shrink: empty node 0 — the query's home — so its shards
      // re-scatter and the registration re-homes.
      ASSERT_TRUE(log->Sync().ok());
      auto rep = mgr.DrainNode(&cluster, 0, base);
      ASSERT_TRUE(rep.ok()) << rep.status().ToString();
      EXPECT_EQ(rep->shards_remaining, 0u);
    }

    cluster.RunMaintenance(now > kRangeMs ? now - kRangeMs : 0);

    auto exec = cluster.ExecuteContinuousAt(*handle, now);
    ASSERT_TRUE(exec.ok()) << "interval " << i << ": "
                           << exec.status().ToString();
    EXPECT_FALSE(exec->result.rows.empty()) << "interval " << i;
    EXPECT_FALSE(exec->partial) << "interval " << i;

    size_t window_bytes =
        cluster.StreamIndexBytes(facts) + cluster.TransientBytes(facts);
    peak_window_bytes = std::max(peak_window_bytes, window_bytes);
    if (i == kIntervals / 5) {
      window_bytes_at_20pct = window_bytes;
    }
  }

  const auto& rs = cluster.reconfig_stats();
  EXPECT_EQ(moves, 8u);
  EXPECT_EQ(rs.moves_aborted, 0u);
  // 8 random moves plus one move per shard the drain emptied off node 0.
  EXPECT_GE(rs.moves_committed, moves + 1);
  EXPECT_EQ(rs.nodes_added, 1u);
  EXPECT_EQ(rs.drains_started, 1u);
  EXPECT_GE(rs.rehomed_registrations, 1u);

  // Bounded despite churn: dual-apply copies and stale-tenure entries ride
  // inside per-batch structures, so GC reclaims them with their batches (a
  // little extra headroom over the churn-free bound).
  EXPECT_LE(peak_window_bytes, window_bytes_at_20pct * 4)
      << "peak " << peak_window_bytes << " vs steady " << window_bytes_at_20pct;

  std::filesystem::remove(log_path);
}

}  // namespace
}  // namespace wukongs
