// Unit tests for the string server and dataset parsing.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/rdf/dataset.h"
#include "src/rdf/string_server.h"

namespace wukongs {
namespace {

TEST(StringServerTest, InternIsIdempotent) {
  StringServer s;
  VertexId a = s.InternVertex("Logan");
  VertexId b = s.InternVertex("Logan");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, kIndexVertex);
}

TEST(StringServerTest, VertexZeroIsReservedForIndex) {
  StringServer s;
  EXPECT_EQ(s.InternVertex("first"), 1u);
}

TEST(StringServerTest, SeparateIdSpaces) {
  StringServer s;
  VertexId v = s.InternVertex("same");
  PredicateId p = s.InternPredicate("same");
  EXPECT_EQ(v, 1u);
  EXPECT_EQ(p, 1u);  // Independent counters.
}

TEST(StringServerTest, ReverseLookup) {
  StringServer s;
  VertexId v = s.InternVertex("Erik");
  auto str = s.VertexString(v);
  ASSERT_TRUE(str.ok());
  EXPECT_EQ(*str, "Erik");
  EXPECT_FALSE(s.VertexString(9999).ok());
}

TEST(StringServerTest, FindWithoutInterning) {
  StringServer s;
  EXPECT_FALSE(s.FindVertex("ghost").has_value());
  s.InternVertex("ghost");
  EXPECT_TRUE(s.FindVertex("ghost").has_value());
  EXPECT_FALSE(s.FindPredicate("ghost").has_value());
}

TEST(StringServerTest, ConcurrentInterningIsConsistent) {
  StringServer s;
  constexpr int kThreads = 4;
  constexpr int kStrings = 500;
  std::vector<std::thread> threads;
  std::vector<std::vector<VertexId>> ids(kThreads, std::vector<VertexId>(kStrings));
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&s, &ids, t] {
      for (int i = 0; i < kStrings; ++i) {
        ids[static_cast<size_t>(t)][static_cast<size_t>(i)] =
            s.InternVertex("v" + std::to_string(i));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[0], ids[static_cast<size_t>(t)]);
  }
  EXPECT_EQ(s.vertex_count(), kStrings + 1u);  // +1 for the index vertex.
}

TEST(DatasetTest, ParsesTriples) {
  StringServer s;
  auto triples = ParseTriples("Logan fo Erik .\nErik fo Logan .\n", &s);
  ASSERT_TRUE(triples.ok());
  ASSERT_EQ(triples->size(), 2u);
  EXPECT_EQ((*triples)[0].subject, (*triples)[1].object);
  EXPECT_EQ((*triples)[0].predicate, (*triples)[1].predicate);
}

TEST(DatasetTest, SkipsCommentsAndBlanks) {
  StringServer s;
  auto triples = ParseTriples("# comment\n\nLogan po T-13 .\n  # another\n", &s);
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 1u);
}

TEST(DatasetTest, TrailingDotOptional) {
  StringServer s;
  auto triples = ParseTriples("a p b\nc p d .\n", &s);
  ASSERT_TRUE(triples.ok());
  EXPECT_EQ(triples->size(), 2u);
}

TEST(DatasetTest, RejectsMalformedLine) {
  StringServer s;
  auto triples = ParseTriples("only two\n", &s);
  EXPECT_FALSE(triples.ok());
  EXPECT_EQ(triples.status().code(), StatusCode::kInvalidArgument);
}

TEST(DatasetTest, SerializeRoundTrip) {
  StringServer s;
  auto triples = ParseTriples("Logan po T-15 .\nT-15 ht #sosp17 .\n", &s);
  ASSERT_TRUE(triples.ok());
  auto text = SerializeTriples(*triples, s);
  ASSERT_TRUE(text.ok());
  auto again = ParseTriples(*text, &s);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*triples, *again);
}

}  // namespace
}  // namespace wukongs
