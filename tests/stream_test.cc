// Unit tests for the streaming substrate: vector timestamps, adaptor,
// transient store, stream index, coordinator.

#include <gtest/gtest.h>

#include "src/stream/adaptor.h"
#include "src/stream/coordinator.h"
#include "src/stream/stream_index.h"
#include "src/stream/transient_store.h"
#include "src/stream/vts.h"

namespace wukongs {
namespace {

// --- VectorTimestamp ---

TEST(VtsTest, CoversElementWise) {
  VectorTimestamp a(2);
  VectorTimestamp b(2);
  a.Set(0, 5);
  a.Set(1, 11);
  b.Set(0, 4);
  b.Set(1, 11);
  EXPECT_TRUE(a.Covers(b));
  EXPECT_FALSE(b.Covers(a));
  EXPECT_TRUE(a.Covers(a));
}

TEST(VtsTest, NoBatchIsBottom) {
  VectorTimestamp a(1);
  VectorTimestamp b(1);
  b.Set(0, 0);
  EXPECT_TRUE(b.Covers(a));
  EXPECT_FALSE(a.Covers(b));
}

TEST(VtsTest, MinIsElementWise) {
  VectorTimestamp a(2);
  VectorTimestamp b(2);
  a.Set(0, 5);
  a.Set(1, 12);
  b.Set(0, 4);
  b.Set(1, 12);
  VectorTimestamp m = VectorTimestamp::Min(a, b);
  EXPECT_EQ(m.Get(0), 4u);
  EXPECT_EQ(m.Get(1), 12u);
}

TEST(VtsTest, MinWithNoBatch) {
  VectorTimestamp a(1);
  VectorTimestamp b(1);
  b.Set(0, 3);
  VectorTimestamp m = VectorTimestamp::Min(a, b);
  EXPECT_EQ(m.Get(0), kNoBatch);
}

// --- WindowBatches ---

TEST(WindowBatchesTest, AlignedWindow) {
  // Window (900, 1000] with 100ms batches: batches 9..9 for range 100.
  BatchRange r = WindowBatches(1000, 100, 100);
  EXPECT_FALSE(r.empty);
  EXPECT_EQ(r.lo, 9u);
  EXPECT_EQ(r.hi, 9u);
}

TEST(WindowBatchesTest, MultiBatchWindow) {
  // Window (0, 1000] with range 1000: batches 0..9.
  BatchRange r = WindowBatches(1000, 1000, 100);
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 9u);
}

TEST(WindowBatchesTest, RangeLargerThanHistoryClamps) {
  BatchRange r = WindowBatches(500, 10000, 100);
  EXPECT_EQ(r.lo, 0u);
  EXPECT_EQ(r.hi, 4u);
}

// --- StreamAdaptor ---

StreamTuple MakeTuple(VertexId s, PredicateId p, VertexId o, StreamTime ts) {
  return StreamTuple{{s, p, o}, ts, TupleKind::kTimeless};
}

TEST(AdaptorTest, GroupsByInterval) {
  StreamAdaptor adaptor(0, 100, {});
  std::vector<StreamBatch> out;
  ASSERT_TRUE(adaptor
                  .Ingest({MakeTuple(1, 1, 2, 10), MakeTuple(1, 1, 3, 90),
                           MakeTuple(1, 1, 4, 150)},
                          &out)
                  .ok());
  // Tuple at 150 closes batch 0.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 0u);
  EXPECT_EQ(out[0].tuples.size(), 2u);
  EXPECT_EQ(adaptor.next_seq(), 1u);
}

TEST(AdaptorTest, AdvanceEmitsEmptyBatches) {
  StreamAdaptor adaptor(0, 100, {});
  std::vector<StreamBatch> out;
  adaptor.AdvanceTo(350, &out);
  ASSERT_EQ(out.size(), 3u);  // Batches 0,1,2 complete at t=350.
  for (const StreamBatch& b : out) {
    EXPECT_TRUE(b.tuples.empty());
  }
  EXPECT_EQ(adaptor.next_seq(), 3u);
}

TEST(AdaptorTest, ClassifiesTimingTuples) {
  StreamAdaptor adaptor(0, 100, /*timing_predicates=*/{7});
  std::vector<StreamBatch> out;
  StreamTuple gps = MakeTuple(1, 7, 2, 10);
  StreamTuple post = MakeTuple(1, 4, 2, 20);
  ASSERT_TRUE(adaptor.Ingest({gps, post}, &out).ok());
  adaptor.AdvanceTo(100, &out);
  ASSERT_EQ(out.size(), 1u);
  ASSERT_EQ(out[0].tuples.size(), 2u);
  EXPECT_EQ(out[0].tuples[0].kind, TupleKind::kTiming);
  EXPECT_EQ(out[0].tuples[1].kind, TupleKind::kTimeless);
}

TEST(AdaptorTest, DiscardsIrrelevantPredicates) {
  StreamAdaptor adaptor(0, 100, {}, /*relevant_predicates=*/{4});
  std::vector<StreamBatch> out;
  ASSERT_TRUE(
      adaptor.Ingest({MakeTuple(1, 4, 2, 10), MakeTuple(1, 9, 2, 20)}, &out).ok());
  adaptor.AdvanceTo(100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].tuples.size(), 1u);
}

TEST(AdaptorTest, RejectsTimeRegression) {
  StreamAdaptor adaptor(0, 100, {});
  std::vector<StreamBatch> out;
  ASSERT_TRUE(adaptor.Ingest({MakeTuple(1, 1, 2, 500)}, &out).ok());
  EXPECT_FALSE(adaptor.Ingest({MakeTuple(1, 1, 2, 400)}, &out).ok());
}

TEST(AdaptorTest, FastForwardSkipsBatches) {
  StreamAdaptor adaptor(0, 100, {});
  adaptor.FastForward(10);
  EXPECT_EQ(adaptor.next_seq(), 10u);
  std::vector<StreamBatch> out;
  adaptor.AdvanceTo(1100, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 10u);
}

// --- TransientStore ---

TEST(TransientStoreTest, SliceLookup) {
  TransientStore ts;
  StreamTuple t{{1, 7, 2}, 10, TupleKind::kTiming};
  ASSERT_TRUE(ts.AppendSlice(0, StreamTupleVec{t}));
  std::vector<VertexId> out;
  ts.GetNeighbors(0, Key(1, 7, Dir::kOut), &out);
  EXPECT_EQ(out, (std::vector<VertexId>{2}));
  out.clear();
  ts.GetNeighbors(0, Key(2, 7, Dir::kIn), &out);
  EXPECT_EQ(out, (std::vector<VertexId>{1}));
}

TEST(TransientStoreTest, SliceIndexVertex) {
  TransientStore ts;
  StreamTuple t{{1, 7, 2}, 10, TupleKind::kTiming};
  ASSERT_TRUE(ts.AppendSlice(0, StreamTupleVec{t}));
  std::vector<VertexId> out;
  ts.GetNeighbors(0, Key(kIndexVertex, 7, Dir::kOut), &out);
  EXPECT_EQ(out, (std::vector<VertexId>{1}));
}

TEST(TransientStoreTest, MissingSliceIsEmpty) {
  TransientStore ts;
  std::vector<VertexId> out;
  ts.GetNeighbors(42, Key(1, 7, Dir::kOut), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(ts.EdgeCount(42, Key(1, 7, Dir::kOut)), 0u);
}

TEST(TransientStoreTest, GcEvictsExpiredSlices) {
  TransientStore ts;
  for (BatchSeq b = 0; b < 10; ++b) {
    ts.AppendSlice(b, StreamTupleVec{{{b + 1, 7, 2}, b * 100, TupleKind::kTiming}});
  }
  EXPECT_EQ(ts.SliceCount(), 10u);
  ts.SetGcHorizon(5);
  EXPECT_EQ(ts.RunGc(), 5u);
  EXPECT_EQ(ts.SliceCount(), 5u);
  EXPECT_EQ(ts.OldestSeq(), 5u);
  std::vector<VertexId> out;
  ts.GetNeighbors(3, Key(4, 7, Dir::kOut), &out);
  EXPECT_TRUE(out.empty());  // Evicted.
  ts.GetNeighbors(7, Key(8, 7, Dir::kOut), &out);
  EXPECT_EQ(out.size(), 1u);  // Still live.
}

TEST(TransientStoreTest, BudgetTriggersGcOrBackpressure) {
  TransientStore ts(/*memory_budget_bytes=*/4096);
  BatchSeq b = 0;
  // Fill until the budget would overflow without GC.
  bool accepted = true;
  while (accepted && b < 1000) {
    accepted = ts.AppendSlice(
        b, StreamTupleVec{{{b + 1, 7, b + 2}, b * 100, TupleKind::kTiming}});
    ++b;
  }
  if (!accepted) {
    // Back-pressure: freeing the horizon lets new slices in.
    ts.SetGcHorizon(b);
    ts.RunGc();
    EXPECT_TRUE(ts.AppendSlice(
        b, StreamTupleVec{{{b + 1, 7, b + 2}, b * 100, TupleKind::kTiming}}));
  }
  EXPECT_LE(ts.MemoryBytes(), 4096u + 512u);
}

TEST(TransientStoreTest, AppendSlicePrefixEmptyBatchStaysDense) {
  TransientStore ts(/*memory_budget_bytes=*/4096);
  ASSERT_TRUE(ts.AppendSlice(0, StreamTupleVec{{{1, 7, 2}, 5, TupleKind::kTiming}}));
  // An empty batch must still create its slice so FindSlice stays dense.
  EXPECT_EQ(ts.AppendSlicePrefix(1, {}), 0u);
  ASSERT_TRUE(ts.AppendSlice(2, StreamTupleVec{{{3, 7, 4}, 205, TupleKind::kTiming}}));
  EXPECT_EQ(ts.SliceCount(), 3u);
  std::vector<VertexId> out;
  ts.GetNeighbors(1, Key(1, 7, Dir::kOut), &out);
  EXPECT_TRUE(out.empty());
  ts.GetNeighbors(2, Key(3, 7, Dir::kOut), &out);
  EXPECT_EQ(out, (std::vector<VertexId>{4}));
}

TEST(TransientStoreTest, AppendSlicePrefixExhaustedBudgetKeepsZero) {
  TransientStore ts(/*memory_budget_bytes=*/1);  // Nothing ever fits.
  std::vector<std::pair<Key, VertexId>> edges;
  for (VertexId v = 1; v <= 8; ++v) {
    edges.emplace_back(Key(v, 7, Dir::kOut), v + 100);
  }
  EXPECT_EQ(ts.AppendSlicePrefix(0, edges), 0u);
  // The empty slice still exists — the batch is not a gap.
  EXPECT_EQ(ts.SliceCount(), 1u);
  EXPECT_EQ(ts.EdgeCount(0, Key(1, 7, Dir::kOut)), 0u);
}

TEST(TransientStoreTest, AppendSlicePrefixUnboundedKeepsWholeBatch) {
  TransientStore ts;  // Budget 0 = unbounded.
  std::vector<std::pair<Key, VertexId>> edges;
  for (VertexId v = 1; v <= 8; ++v) {
    edges.emplace_back(Key(v, 7, Dir::kOut), v + 100);
  }
  EXPECT_EQ(ts.AppendSlicePrefix(0, edges), edges.size());
  for (VertexId v = 1; v <= 8; ++v) {
    std::vector<VertexId> out;
    ts.GetNeighbors(0, Key(v, 7, Dir::kOut), &out);
    EXPECT_EQ(out, (std::vector<VertexId>{v + 100}));
  }
}

TEST(TransientStoreTest, BudgetWithMovingHorizonNeverBlocks) {
  TransientStore ts(/*memory_budget_bytes=*/8192);
  for (BatchSeq b = 0; b < 500; ++b) {
    ts.SetGcHorizon(b > 5 ? b - 5 : 0);
    ASSERT_TRUE(ts.AppendSlice(
        b, StreamTupleVec{{{b + 1, 7, b + 2}, b * 100, TupleKind::kTiming}}))
        << "blocked at batch " << b;
  }
  EXPECT_LE(ts.SliceCount(), 500u);
}

// --- StreamIndex ---

TEST(StreamIndexTest, SpansRoundTrip) {
  StreamIndex idx;
  Key k(1, 4, Dir::kOut);
  idx.AddBatch(0, {{k, 0, 2}});
  idx.AddBatch(1, {{k, 2, 3}});
  std::vector<IndexSpan> spans;
  EXPECT_TRUE(idx.GetSpans(0, k, &spans));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].start, 0u);
  EXPECT_EQ(spans[0].count, 2u);
  EXPECT_EQ(idx.SpanEdgeCount(1, k), 3u);
}

TEST(StreamIndexTest, CoalescesContiguousSpans) {
  StreamIndex idx;
  Key k(1, 4, Dir::kOut);
  idx.AddBatch(0, {{k, 0, 1}, {k, 1, 1}, {k, 5, 1}});
  std::vector<IndexSpan> spans;
  EXPECT_TRUE(idx.GetSpans(0, k, &spans));
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].count, 2u);
  EXPECT_EQ(spans[1].start, 5u);
}

TEST(StreamIndexTest, UnindexedBatchReturnsFalse) {
  StreamIndex idx;
  idx.AddBatch(5, {});
  std::vector<IndexSpan> spans;
  EXPECT_FALSE(idx.GetSpans(4, Key(1, 4, Dir::kOut), &spans));
  EXPECT_TRUE(idx.GetSpans(5, Key(1, 4, Dir::kOut), &spans));
  EXPECT_TRUE(spans.empty());
}

TEST(StreamIndexTest, EvictionDropsOldBatches) {
  StreamIndex idx;
  Key k(1, 4, Dir::kOut);
  for (BatchSeq b = 0; b < 10; ++b) {
    idx.AddBatch(b, {{k, static_cast<uint32_t>(b), 1}});
  }
  size_t bytes_before = idx.MemoryBytes();
  EXPECT_EQ(idx.EvictBefore(7), 7u);
  EXPECT_EQ(idx.BatchCount(), 3u);
  EXPECT_EQ(idx.OldestSeq(), 7u);
  EXPECT_LT(idx.MemoryBytes(), bytes_before);
  std::vector<IndexSpan> spans;
  EXPECT_FALSE(idx.GetSpans(2, k, &spans));
}

// --- Coordinator ---

TEST(CoordinatorTest, StableVtsIsMinAcrossNodes) {
  Coordinator coord(2);
  coord.RegisterStream(0);
  coord.RegisterStream(1);
  coord.ReportInjected(0, 0, 0);
  coord.ReportInjected(0, 1, 0);
  coord.ReportInjected(1, 0, 0);
  // Stream 1 not injected on node 1 yet.
  VectorTimestamp stable = coord.StableVts();
  EXPECT_EQ(stable.Get(0), 0u);
  EXPECT_EQ(stable.Get(1), kNoBatch);
  coord.ReportInjected(1, 1, 0);
  EXPECT_EQ(coord.StableVts().Get(1), 0u);
}

TEST(CoordinatorTest, SnAssignmentFollowsPlan) {
  Coordinator coord(1, 2, /*batches_per_sn=*/2);
  coord.RegisterStream(0);
  EXPECT_EQ(coord.PlanSnFor(0, 0), 1u);
  EXPECT_EQ(coord.PlanSnFor(0, 1), 1u);
  EXPECT_EQ(coord.PlanSnFor(0, 2), 2u);
  EXPECT_EQ(coord.PlanSnFor(0, 5), 3u);
}

TEST(CoordinatorTest, StableSnAdvancesWhenAllNodesReachTarget) {
  Coordinator coord(2, 2, 1);
  coord.RegisterStream(0);
  EXPECT_EQ(coord.PlanSnFor(0, 0), 1u);
  EXPECT_EQ(coord.StableSn(), 0u);
  coord.ReportInjected(0, 0, 0);
  EXPECT_EQ(coord.StableSn(), 0u);  // Node 1 behind.
  coord.ReportInjected(1, 0, 0);
  EXPECT_EQ(coord.StableSn(), 1u);
  EXPECT_EQ(coord.LocalSn(0), 1u);
}

TEST(CoordinatorTest, MultiStreamSnNeedsAllStreams) {
  Coordinator coord(1, 2, 1);
  coord.RegisterStream(0);
  coord.RegisterStream(1);
  EXPECT_EQ(coord.PlanSnFor(0, 0), 1u);
  coord.ReportInjected(0, 0, 0);
  EXPECT_EQ(coord.StableSn(), 0u);  // Stream 1 batch 0 outstanding.
  coord.ReportInjected(0, 1, 0);
  EXPECT_EQ(coord.StableSn(), 1u);
}

TEST(CoordinatorTest, CollapseFloorLagsByReservedSnapshots) {
  Coordinator coord(1, /*reserved_snapshots=*/2, 1);
  coord.RegisterStream(0);
  for (BatchSeq b = 0; b < 5; ++b) {
    coord.PlanSnFor(0, b);
    coord.ReportInjected(0, 0, b);
  }
  EXPECT_EQ(coord.StableSn(), 5u);
  EXPECT_EQ(coord.CollapseFloor(), 4u);  // Keep SN 5 (using) and 4 behind it.
}

TEST(CoordinatorTest, DynamicStreamAdditionExtendsPlans) {
  Coordinator coord(1, 2, 1);
  coord.RegisterStream(0);
  EXPECT_EQ(coord.PlanSnFor(0, 0), 1u);
  coord.RegisterStream(1);
  // New stream appears in plans created after registration.
  SnapshotNum sn = coord.PlanSnFor(1, 0);
  EXPECT_GE(sn, 1u);
  coord.ReportInjected(0, 0, 0);
  coord.ReportInjected(0, 1, 0);
  EXPECT_GE(coord.StableSn(), 1u);
}

}  // namespace
}  // namespace wukongs
