// Concurrency tests: queries run while streams inject (the paper's whole
// premise — §6.9 measures exactly this co-existence). One thread feeds, many
// threads execute continuous and one-shot queries; results must stay
// consistent: snapshot reads are prefixes, window results at a ready end are
// stable, and nothing crashes or tears.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <utility>

#include "src/cluster/cluster.h"

namespace wukongs {
namespace {

class ConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = 10;  // Small batches -> many injections.
    cluster_ = std::make_unique<Cluster>(config);
    stream_ = *cluster_->DefineStream("S", {"ga"});
    StringServer* s = cluster_->strings();
    po_ = s->InternPredicate("po");
    // Pre-intern every string the feeder will use, so worker threads never
    // race the feeder inside the string server's insert path with the
    // cluster lock-free read path (interning itself is thread-safe; this
    // just makes IDs deterministic).
    users_.reserve(16);
    for (int u = 0; u < 16; ++u) {
      users_.push_back(s->InternVertex("user" + std::to_string(u)));
    }
    posts_.reserve(kTotalPosts);
    for (size_t p = 0; p < kTotalPosts; ++p) {
      posts_.push_back(s->InternVertex("post" + std::to_string(p)));
    }
    TripleVec base;
    PredicateId fo = s->InternPredicate("fo");
    for (int u = 0; u < 16; ++u) {
      base.push_back({users_[static_cast<size_t>(u)], fo,
                      users_[static_cast<size_t>((u + 1) % 16)]});
    }
    cluster_->LoadBase(base);
  }

  static constexpr size_t kTotalPosts = 3000;

  std::unique_ptr<Cluster> cluster_;
  StreamId stream_ = 0;
  PredicateId po_ = 0;
  std::vector<VertexId> users_;
  std::vector<VertexId> posts_;
};

TEST_F(ConcurrencyTest, QueriesRunSafelyDuringInjection) {
  auto handle = cluster_->RegisterContinuous(R"(
      REGISTER QUERY q AS
      SELECT ?U ?P
      FROM STREAM <S> [RANGE 100ms STEP 10ms]
      WHERE { GRAPH <S> { ?U po ?P } })");
  ASSERT_TRUE(handle.ok());

  std::atomic<StreamTime> fed_to{0};
  std::atomic<bool> failed{false};

  std::thread feeder([&] {
    StreamTupleVec tuples;
    for (size_t p = 0; p < kTotalPosts; ++p) {
      tuples.push_back(StreamTuple{{users_[p % users_.size()], po_, posts_[p]},
                                   static_cast<StreamTime>(p),
                                   TupleKind::kTimeless});
    }
    // Feed in small chunks, advancing time as we go.
    for (size_t start = 0; start < kTotalPosts; start += 100) {
      size_t end = std::min(start + 100, kTotalPosts);
      StreamTupleVec chunk(tuples.begin() + static_cast<long>(start),
                           tuples.begin() + static_cast<long>(end));
      if (!cluster_->FeedStream(stream_, chunk).ok()) {
        failed.store(true);
        return;
      }
      cluster_->AdvanceStreams(end);
      fed_to.store(end, std::memory_order_release);
    }
  });

  std::vector<std::thread> workers;
  std::atomic<size_t> executed{0};
  for (int w = 0; w < 3; ++w) {
    workers.emplace_back([&, w] {
      size_t last_oneshot_count = 0;
      // At least one iteration even if the feeder wins the race and finishes
      // first — otherwise `executed` can legitimately end up 0.
      bool first = true;
      while (std::exchange(first, false) ||
             fed_to.load(std::memory_order_acquire) < kTotalPosts) {
        StreamTime safe_end = fed_to.load(std::memory_order_acquire);
        safe_end -= safe_end % 10;
        if (safe_end >= 200) {
          // Continuous execution on a window that is certainly ready.
          auto exec = cluster_->ExecuteContinuousAt(*handle, safe_end);
          if (!exec.ok()) {
            failed.store(true);
            return;
          }
          // A full 100ms window over a 1-post-per-ms stream must contain
          // exactly 100 posts (batches are dense and complete).
          if (exec->result.rows.size() != 100) {
            ADD_FAILURE() << "window at " << safe_end << " had "
                          << exec->result.rows.size() << " rows (worker " << w
                          << ")";
            failed.store(true);
            return;
          }
        }
        // One-shot: absorbed posts grow monotonically across snapshots.
        auto oneshot = cluster_->OneShot("SELECT COUNT(?P) WHERE { ?U po ?P }");
        if (!oneshot.ok()) {
          failed.store(true);
          return;
        }
        size_t count = oneshot->result.rows.empty()
                           ? 0
                           : static_cast<size_t>(oneshot->result.rows[0][0].number);
        if (count < last_oneshot_count) {
          ADD_FAILURE() << "snapshot count regressed: " << count << " < "
                        << last_oneshot_count;
          failed.store(true);
          return;
        }
        last_oneshot_count = count;
        executed.fetch_add(1);
      }
    });
  }

  feeder.join();
  for (auto& t : workers) {
    t.join();
  }
  ASSERT_FALSE(failed.load());
  EXPECT_GT(executed.load(), 0u);

  // Quiesced: the final snapshot sees every timeless post.
  auto final_count = cluster_->OneShot("SELECT COUNT(?P) WHERE { ?U po ?P }");
  ASSERT_TRUE(final_count.ok());
  EXPECT_DOUBLE_EQ(final_count->result.rows[0][0].number,
                   static_cast<double>(kTotalPosts));
}

TEST_F(ConcurrencyTest, MaintenanceRunsSafelyDuringQueries) {
  auto handle = cluster_->RegisterContinuous(R"(
      REGISTER QUERY q AS
      SELECT ?U ?P
      FROM STREAM <S> [RANGE 50ms STEP 10ms]
      WHERE { GRAPH <S> { ?U po ?P } })");
  ASSERT_TRUE(handle.ok());

  StreamTupleVec tuples;
  for (size_t p = 0; p < 2000; ++p) {
    tuples.push_back(StreamTuple{{users_[p % users_.size()], po_, posts_[p]},
                                 static_cast<StreamTime>(p),
                                 TupleKind::kTimeless});
  }
  ASSERT_TRUE(cluster_->FeedStream(stream_, tuples).ok());
  cluster_->AdvanceStreams(2000);

  std::atomic<bool> stop{false};
  std::atomic<bool> failed{false};
  std::thread maintenance([&] {
    while (!stop.load()) {
      cluster_->RunMaintenance(/*live_horizon_ms=*/1500);
    }
  });
  // Queries over live (non-GC'd) windows keep working during maintenance.
  for (int i = 0; i < 200; ++i) {
    auto exec = cluster_->ExecuteContinuousAt(*handle, 2000);
    if (!exec.ok() || exec->result.rows.size() != 50) {
      failed.store(true);
      break;
    }
  }
  stop.store(true);
  maintenance.join();
  EXPECT_FALSE(failed.load());
}

}  // namespace
}  // namespace wukongs
