// Adaptive re-planning tests (DESIGN.md §5.14).
//
// Covers the live-statistics collector against brute-force mirrors, the
// fire-iff-drift property of the re-plan trigger predicate over randomized
// rate histories, the chunk/row estimate reconciliation (including the
// composite-baseline row path), cluster-level parity-gated cutovers with
// fallback on budget overrun, manual plan pinning, the plan-pin golden
// corpus, and both planted mutations (stale_stats_snapshot must suppress a
// genuine drift trigger; skip_parity_gate must produce an observable
// delta/cold divergence — the exact comparison the differential lane runs).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/test_hooks.h"
#include "src/sparql/plan_pin.h"
#include "src/store/planner.h"
#include "src/store/stream_stats.h"

namespace wukongs {
namespace {

constexpr uint64_t kIntervalMs = 100;

// ---------------------------------------------------------------------------
// PlannerStatsTest: collector + drift predicate against brute-force mirrors.
// ---------------------------------------------------------------------------

TEST(PlannerStatsTest, CollectorRatesMatchBruteForceOverRandomHistories) {
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    Rng rng(seed);
    const StreamTime window = kIntervalMs * (1 + rng.Uniform(0, 9));
    StreamStatsCollector collector(window);
    const size_t streams = 1 + rng.Uniform(0, 2);
    std::vector<std::vector<std::pair<StreamTime, uint64_t>>> history(streams);

    StreamTime now = 0;
    for (int step = 0; step < 30; ++step) {
      now += kIntervalMs;
      for (StreamId s = 0; s < streams; ++s) {
        const uint64_t tuples = rng.Uniform(0, 6);  // Empty batches included.
        collector.ObserveBatch(s, now, tuples);
        history[s].push_back({now, tuples});
      }
    }

    StreamStatsSnapshot snap = collector.Snapshot();
    EXPECT_EQ(snap.as_of_ms, now) << "seed " << seed;
    for (StreamId s = 0; s < streams; ++s) {
      // Trailing window is (now - window, now]: sum what did not age out.
      uint64_t in_window = 0;
      for (const auto& [end, tuples] : history[s]) {
        if (now <= window || end > now - window) {
          in_window += tuples;
        }
      }
      const double expect = static_cast<double>(in_window) * 1000.0 /
                            static_cast<double>(window);
      EXPECT_NEAR(snap.RateOf(s), expect, 1e-9) << "seed " << seed;
    }
  }
}

TEST(PlannerStatsTest, FanoutEwmaMatchesBruteForceOverRandomHistories) {
  constexpr double kAlpha = 0.3;  // Must track kFanoutAlpha in stream_stats.cc.
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    StreamStatsCollector collector(1000);
    // A handful of (scope, predicate) keys, including the stored scope.
    const std::vector<std::pair<int32_t, PredicateId>> keys = {
        {kStoredScope, 1}, {kStoredScope, 2}, {0, 1}, {1, 3}};
    std::vector<double> mirror(keys.size(), -1.0);
    for (int step = 0; step < 40; ++step) {
      const size_t k = rng.Uniform(0, keys.size() - 1);
      const size_t rows_in = rng.Uniform(0, 10);  // 0 exercises the clamp.
      const size_t rows_out = rng.Uniform(0, 50);
      collector.ObserveExpansion(keys[k].first, keys[k].second, rows_in,
                                 rows_out);
      const double x = static_cast<double>(rows_out) /
                       static_cast<double>(std::max<size_t>(rows_in, 1));
      mirror[k] = mirror[k] < 0.0 ? x : (1.0 - kAlpha) * mirror[k] + kAlpha * x;
    }
    StreamStatsSnapshot snap = collector.Snapshot();
    for (size_t k = 0; k < keys.size(); ++k) {
      const double got = snap.FanoutOf(keys[k].first, keys[k].second);
      if (mirror[k] < 0.0) {
        EXPECT_LT(got, 0.0) << "seed " << seed << " key " << k;
      } else {
        EXPECT_NEAR(got, mirror[k], 1e-9) << "seed " << seed << " key " << k;
      }
    }
  }
}

// The fire-iff-drift lane: over randomized rate histories, DriftExceeds —
// the exact predicate MaybeReplan gates on — fires iff the brute-force
// max symmetric rate ratio reaches the policy factor. No tolerance band, no
// second code path: a detector that went stale (see the planted mutation
// below) or overeager shows up here as a fire/no-fire mismatch.
TEST(PlannerStatsTest, ReplanTriggerFiresIffDriftExceedsThreshold) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    Rng rng(seed);
    ReplanPolicy policy;
    policy.drift_factor = 1.0 + static_cast<double>(rng.Uniform(2, 40)) / 10.0;
    policy.rate_floor = static_cast<double>(rng.Uniform(1, 20)) / 10.0;

    const size_t n = 1 + rng.Uniform(0, 3);
    StreamStatsSnapshot then_, now;
    for (size_t s = 0; s < n; ++s) {
      // Zero rates included: silence vs. trickle must hit the floor clamp.
      then_.rates.push_back(static_cast<double>(rng.Uniform(0, 120)) / 2.0);
      now.rates.push_back(static_cast<double>(rng.Uniform(0, 120)) / 2.0);
    }
    // Sometimes restrict to an explicit stream subset (a registration's
    // stream_ids), sometimes pass empty = every stream.
    std::vector<StreamId> subset;
    if (rng.Bernoulli(0.5)) {
      for (StreamId s = 0; s < n; ++s) {
        if (rng.Bernoulli(0.6)) {
          subset.push_back(s);
        }
      }
    }

    double worst = 1.0;
    std::vector<StreamId> scan = subset;
    if (scan.empty()) {  // Empty subset = every stream, same as the API.
      for (StreamId s = 0; s < n; ++s) {
        scan.push_back(s);
      }
    }
    for (StreamId s : scan) {
      const double a = std::max(then_.RateOf(s), policy.rate_floor);
      const double b = std::max(now.RateOf(s), policy.rate_floor);
      worst = std::max(worst, std::max(a / b, b / a));
    }
    const bool expect_fire = worst >= policy.drift_factor;

    EXPECT_EQ(DriftExceeds(then_, now, subset, policy), expect_fire)
        << "seed " << seed << " worst=" << worst
        << " factor=" << policy.drift_factor;
    EXPECT_NEAR(RateDriftFactor(then_, now, subset, policy.rate_floor), worst,
                1e-9)
        << "seed " << seed;
  }
}

TEST(PlannerStatsTest, IdenticalSnapshotsNeverDrift) {
  StreamStatsSnapshot snap;
  snap.rates = {10.0, 0.0, 500.0};
  ReplanPolicy policy;  // Factor 2.0.
  EXPECT_FALSE(DriftExceeds(snap, snap, {}, policy));
  EXPECT_NEAR(RateDriftFactor(snap, snap, {}, policy.rate_floor), 1.0, 1e-12);
}

// ---------------------------------------------------------------------------
// PlannerStatsTest: chunk/row estimate reconciliation (the PlanHints fix).
// ---------------------------------------------------------------------------

// Fixed-cardinality source: every estimate answers `n`.
class StubSource : public NeighborSource {
 public:
  explicit StubSource(size_t n) : n_(n) {}
  void GetNeighbors(Key, std::vector<VertexId>*) const override {}
  size_t EstimateCount(Key) const override { return n_; }

 private:
  size_t n_;
};

TriplePattern BoundExpansion(int graph) {
  TriplePattern p;  // ?x pred ?y with ?x bound: the estimate under test.
  p.subject = Term::Variable(0);
  p.predicate = 1;
  p.object = Term::Variable(1);
  p.graph = graph;
  return p;
}

TEST(PlannerStatsTest, ChunkAndRowEstimatesReconcile) {
  // The per-window bound-expansion estimate and the chunk_rows estimate must
  // never disagree silently: whatever the chunk size, the chunked estimate
  // is capped at the row estimate (debug builds assert; release reconciles
  // via min). The chunk_rows=0 path is the composite-baseline row estimate
  // and must stay untouched by the reconcile.
  const std::vector<bool> bound = {true, false};
  for (size_t seeds : {size_t{0}, size_t{1}, size_t{5}, size_t{100},
                       size_t{600}, size_t{10000}, size_t{1000000}}) {
    StubSource src(seeds);
    ExecContext ctx;
    ctx.sources = {&src};
    const TriplePattern p = BoundExpansion(kGraphStored);

    PlanHints row_hints;
    row_hints.chunk_rows = 0;  // Composite-baseline row-estimate path.
    const double row_est = EstimatePatternCost(p, bound, ctx, row_hints);
    EXPECT_NEAR(row_est, std::min(16.0, 1.0 + static_cast<double>(seeds)),
                1e-12)
        << "seeds=" << seeds;

    for (size_t chunk : {size_t{1}, size_t{64}, size_t{1024}, size_t{100000}}) {
      PlanHints hints;
      hints.chunk_rows = chunk;
      const double chunked = EstimatePatternCost(p, bound, ctx, hints);
      EXPECT_LE(chunked, row_est + 1e-9)
          << "seeds=" << seeds << " chunk_rows=" << chunk
          << ": chunked estimate exceeds the row estimate";
      EXPECT_GE(chunked, 1.0) << "seeds=" << seeds << " chunk_rows=" << chunk;
    }
  }
}

TEST(PlannerStatsTest, ObservedFanoutOverridesSeedHeuristic) {
  StubSource stored(10000), window(10000);
  ExecContext ctx;
  ctx.sources = {&stored, &window};
  const std::vector<bool> bound = {true, false};

  StreamStatsSnapshot snap;
  snap.fanouts[StreamStatsSnapshot::FanoutKey(kStoredScope, 1)] = 2.5;
  snap.fanouts[StreamStatsSnapshot::FanoutKey(/*stream=*/7, 1)] = 40.0;
  PlanHints hints;
  hints.stats = &snap;
  hints.window_scope = {7};  // Window graph 0 is fed by stream 7.

  // Both sources would answer 10000 seeds (estimate saturates at 16); the
  // observed fan-outs give the real per-row expansion instead.
  EXPECT_NEAR(EstimatePatternCost(BoundExpansion(kGraphStored), bound, ctx,
                                  hints),
              3.5, 1e-12);
  EXPECT_NEAR(EstimatePatternCost(BoundExpansion(0), bound, ctx, hints), 41.0,
              1e-12);

  // Unknown predicate falls back to the static heuristic.
  TriplePattern other = BoundExpansion(kGraphStored);
  other.predicate = 9;
  const double fallback = EstimatePatternCost(other, bound, ctx, hints);
  PlanHints no_stats;
  EXPECT_NEAR(fallback, EstimatePatternCost(other, bound, ctx, no_stats),
              1e-12);

  // A window graph beyond window_scope also falls back (no key to look up).
  PlanHints short_scope;
  short_scope.stats = &snap;
  EXPECT_NEAR(EstimatePatternCost(BoundExpansion(0), bound, ctx, short_scope),
              EstimatePatternCost(BoundExpansion(0), bound, ctx, no_stats),
              1e-12);
}

// ---------------------------------------------------------------------------
// PlannerStatsClusterTest: adaptive cutover through the full cluster.
// ---------------------------------------------------------------------------

// Pattern 0 seeds ?y from the stored graph, then two stored expansions whose
// relative order flips once observed fan-outs exist (li: 2 subjects with 8
// edges each; ht: 20 subjects with 1 edge each — the seed heuristic ranks li
// cheaper, the observed fan-out ranks ht cheaper), and one window pattern
// that the delta-cache bias keeps last. Initial plan [0 2 3 1]; after
// training and a rate step the adaptive plan is [0 3 2 1].
constexpr char kAdaptiveQuery[] = R"(
    REGISTER QUERY A AS
    SELECT ?y ?z ?v ?w
    FROM STREAM <S> [RANGE 1s STEP 100ms]
    FROM <Base>
    WHERE {
      GRAPH <Base> { Logan fo ?y }
      GRAPH <S>    { ?y at ?w }
      GRAPH <Base> { ?y li ?z }
      GRAPH <Base> { ?y ht ?v }
    })";

// Same joins with a never-binding LIMIT: ineligible for the delta cache, so
// every trigger runs the cold pipeline and trains the fan-out EWMA (delta
// triggers bypass the per-pattern loop and observe nothing).
constexpr char kTrainerQuery[] = R"(
    REGISTER QUERY T AS
    SELECT ?y ?z ?v ?w
    FROM STREAM <S> [RANGE 1s STEP 100ms]
    FROM <Base>
    WHERE {
      GRAPH <Base> { Logan fo ?y }
      GRAPH <S>    { ?y at ?w }
      GRAPH <Base> { ?y li ?z }
      GRAPH <Base> { ?y ht ?v }
    } LIMIT 1000000)";

const std::vector<int> kSeedHeuristicPlan = {0, 2, 3, 1};
const std::vector<int> kObservedFanoutPlan = {0, 3, 2, 1};

std::multiset<std::string> Canon(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) {
    std::string key;
    for (const ResultValue& v : row) {
      key += v.is_number ? "n" + std::to_string(v.number)
                         : "v" + std::to_string(v.vid);
      key += "|";
    }
    out.insert(key);
  }
  return out;
}

class PlannerStatsClusterTest : public ::testing::Test {
 protected:
  void Init(const ReplanPolicy& replan) {
    ClusterConfig config;
    config.nodes = 1;
    config.batch_interval_ms = kIntervalMs;
    config.replan = replan;
    cluster_ = std::make_unique<Cluster>(config);
    stream_ = *cluster_->DefineStream("S", {"at"});

    StringServer* s = cluster_->strings();
    auto triple = [&](const std::string& su, const char* p,
                      const std::string& o) {
      return Triple{s->InternVertex(su), s->InternPredicate(p),
                    s->InternVertex(o)};
    };
    TripleVec base = {triple("Logan", "fo", "Erik"),
                      triple("Logan", "fo", "Tony")};
    // li: 2 subjects, 8 edges each (few seeds, high fan-out).
    for (int i = 0; i < 8; ++i) {
      base.push_back(triple("Erik", "li", "A" + std::to_string(i)));
      base.push_back(triple("Tony", "li", "B" + std::to_string(i)));
    }
    // ht: 20 subjects, 1 edge each (many seeds, fan-out 1).
    base.push_back(triple("Erik", "ht", "HE"));
    base.push_back(triple("Tony", "ht", "HT"));
    for (int i = 0; i < 18; ++i) {
      base.push_back(
          triple("X" + std::to_string(i), "ht", "HX" + std::to_string(i)));
    }
    cluster_->LoadBase(base);
  }

  ReplanPolicy AdaptivePolicy() const {
    ReplanPolicy p;
    p.enabled = true;
    p.min_triggers_between = 1;  // Check drift on every trigger.
    p.rate_window_ms = 500;      // Converge to a stepped rate within 5 slices.
    return p;
  }

  // Feeds `per_slice` timing tuples into every 100ms slice of [from, to) and
  // advances the stream clock slice by slice.
  void Feed(StreamTime from, StreamTime to, size_t per_slice) {
    for (StreamTime t = from; t < to; t += kIntervalMs) {
      StreamTupleVec tuples;
      StringServer* s = cluster_->strings();
      for (size_t i = 0; i < per_slice; ++i) {
        const char* who = (t / kIntervalMs + i) % 2 == 0 ? "Erik" : "Tony";
        tuples.push_back(StreamTuple{
            {s->InternVertex(who), s->InternPredicate("at"),
             s->InternVertex("L" + std::to_string(t) + "_" + std::to_string(i))},
            t + 10 + i,
            TupleKind::kTiming});
      }
      ASSERT_TRUE(cluster_->FeedStream(stream_, tuples).ok());
      cluster_->AdvanceStreams(t + kIntervalMs);
    }
  }

  // Triggers the adaptive query then the trainer, returning whether the
  // adaptive trigger matched its cold full-window oracle. The adaptive query
  // goes first: at the very first trigger its plan must come from the seed
  // heuristic, before the trainer's cold execution populates the fan-out
  // EWMA (EnsurePlanned attaches live statistics to first plans too).
  bool TriggerBoth(Cluster::ContinuousHandle trainer,
                   Cluster::ContinuousHandle h, StreamTime end) {
    auto exec = cluster_->ExecuteContinuousAt(h, end);
    auto cold = cluster_->ExecuteContinuousColdAt(h, end);
    EXPECT_TRUE(cluster_->ExecuteContinuousAt(trainer, end).ok());
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_TRUE(cold.ok()) << cold.status().ToString();
    if (!exec.ok() || !cold.ok()) {
      return false;
    }
    return Canon(exec->result) == Canon(cold->result);
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId stream_ = 0;
};

TEST_F(PlannerStatsClusterTest, RateStepTriggersParityGatedCutover) {
  Init(AdaptivePolicy());
  auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  ASSERT_TRUE(cluster_->HasDeltaCache(*h));
  auto trainer = cluster_->RegisterContinuous(kTrainerQuery);
  ASSERT_TRUE(trainer.ok()) << trainer.status().ToString();
  ASSERT_FALSE(cluster_->HasDeltaCache(*trainer));  // LIMIT: always cold.

  // Phase 1: steady 1 tuple/slice. The first trigger plans from the seed
  // heuristic; later steady triggers check drift but never fire.
  Feed(0, 1000, 1);
  for (StreamTime end = 1000; end <= 1500; end += kIntervalMs) {
    EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
    Feed(end, end + kIntervalMs, 1);
  }
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), kSeedHeuristicPlan);
  EXPECT_EQ(cluster_->PlanVersionOf(*h), 1u);
  Cluster::ReplanStats steady = cluster_->replan_stats();
  EXPECT_GT(steady.checks, 0u);
  EXPECT_EQ(steady.drift_triggers, 0u);  // Fire iff drift: no drift yet.
  EXPECT_EQ(steady.cutovers, 0u);

  // Phase 2: step to 5 tuples/slice. Ingest rate drifts 5x past the 2x
  // factor; the candidate planned from observed fan-outs flips the stored
  // expansions; the shadow parity gate passes and the cutover installs.
  // (Slice [1500,1600) was already fed by the steady loop above.)
  for (StreamTime end = 1700; end <= 2500; end += kIntervalMs) {
    Feed(end - kIntervalMs, end, 5);
    EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
  }
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), kObservedFanoutPlan);
  EXPECT_EQ(cluster_->PlanVersionOf(*h), 2u);
  Cluster::ReplanStats stepped = cluster_->replan_stats();
  EXPECT_GE(stepped.drift_triggers, 1u);
  EXPECT_GE(stepped.cutovers, 1u);
  EXPECT_EQ(stepped.parity_failures, 0u);
  EXPECT_EQ(stepped.budget_overruns, 0u);
}

TEST_F(PlannerStatsClusterTest, DisabledPolicyKeepsPlanOnceLifecycle) {
  Init(ReplanPolicy{});  // Default: disabled.
  auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  auto trainer = cluster_->RegisterContinuous(kTrainerQuery);
  ASSERT_TRUE(trainer.ok());

  Feed(0, 1000, 1);
  for (StreamTime end = 1000; end <= 1500; end += kIntervalMs) {
    EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
    Feed(end, end + kIntervalMs, 5);  // Rates step; nobody is watching.
  }
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), kSeedHeuristicPlan);
  EXPECT_EQ(cluster_->PlanVersionOf(*h), 1u);
  Cluster::ReplanStats stats = cluster_->replan_stats();
  EXPECT_EQ(stats.checks, 0u);
  EXPECT_EQ(stats.cutovers, 0u);
  // The collector itself is off: no rates accumulate.
  EXPECT_TRUE(cluster_->CurrentStreamStats().rates.empty());
}

TEST_F(PlannerStatsClusterTest, ShadowBudgetOverrunFallsBackToProvenPlan) {
  ReplanPolicy policy = AdaptivePolicy();
  policy.shadow_budget_rows = 1;  // Any real shadow execution overruns.
  Init(policy);
  auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  auto trainer = cluster_->RegisterContinuous(kTrainerQuery);
  ASSERT_TRUE(trainer.ok());

  Feed(0, 1000, 1);
  for (StreamTime end = 1000; end <= 1400; end += kIntervalMs) {
    EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
    Feed(end, end + kIntervalMs, 1);
  }
  for (StreamTime end = 1600; end <= 2400; end += kIntervalMs) {
    Feed(end - kIntervalMs, end, 5);
    EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
  }
  // Drift fired and a different candidate was synthesized, but the shadow
  // check blew its row budget: the proven plan stays, results stay correct.
  Cluster::ReplanStats stats = cluster_->replan_stats();
  EXPECT_GE(stats.drift_triggers, 1u);
  EXPECT_GE(stats.budget_overruns, 1u);
  EXPECT_EQ(stats.cutovers, 0u);
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), kSeedHeuristicPlan);
  EXPECT_EQ(cluster_->PlanVersionOf(*h), 1u);
}

TEST_F(PlannerStatsClusterTest, PinnedPlanSticksThroughDrift) {
  Init(AdaptivePolicy());
  auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();
  auto trainer = cluster_->RegisterContinuous(kTrainerQuery);
  ASSERT_TRUE(trainer.ok());

  Feed(0, 1000, 1);
  EXPECT_TRUE(TriggerBoth(*trainer, *h, 1000));
  ASSERT_EQ(cluster_->PlanVersionOf(*h), 1u);

  PlanPin pin;
  pin.order = {0, 3, 2, 1};
  ASSERT_TRUE(cluster_->PinContinuousPlan(*h, pin).ok());
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), pin.order);
  EXPECT_EQ(cluster_->PlanVersionOf(*h), 2u);
  EXPECT_EQ(cluster_->replan_stats().pins, 1u);

  // A 5x rate step that would normally cut over: the pin wins — the plan and
  // version never move again, and results under the pinned order stay
  // bag-identical to the cold oracle. (The unpinned trainer may still cut
  // over, so only this handle's plan state is asserted.)
  for (StreamTime end = 1100; end <= 2200; end += kIntervalMs) {
    Feed(end - kIntervalMs, end, 5);
    EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
  }
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), pin.order);
  EXPECT_EQ(cluster_->PlanVersionOf(*h), 2u);
}

TEST_F(PlannerStatsClusterTest, PinValidationRejectsBadOrders) {
  Init(AdaptivePolicy());
  auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
  ASSERT_TRUE(h.ok()) << h.status().ToString();

  PlanPin wrong_size;
  wrong_size.order = {0, 1, 2};
  EXPECT_EQ(cluster_->PinContinuousPlan(*h, wrong_size).code(),
            StatusCode::kInvalidArgument);

  PlanPin duplicate;
  duplicate.order = {0, 1, 1, 2};
  EXPECT_EQ(cluster_->PinContinuousPlan(*h, duplicate).code(),
            StatusCode::kInvalidArgument);

  PlanPin out_of_range;
  out_of_range.order = {0, 1, 2, 4};
  EXPECT_EQ(cluster_->PinContinuousPlan(*h, out_of_range).code(),
            StatusCode::kInvalidArgument);

  PlanPin fine;
  fine.order = {3, 2, 1, 0};
  EXPECT_EQ(cluster_->PinContinuousPlan(static_cast<Cluster::ContinuousHandle>(
                                            999),
                                        fine)
                .code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(cluster_->PinContinuousPlan(*h, fine).ok());
  EXPECT_EQ(cluster_->ContinuousPlanOf(*h), fine.order);
}

// ---------------------------------------------------------------------------
// PlannerStatsMutationTest: both planted defects must be observable.
// ---------------------------------------------------------------------------

class PlannerStatsMutationTest : public PlannerStatsClusterTest {};

TEST_F(PlannerStatsMutationTest, StaleStatsSnapshotSuppressesGenuineDrift) {
  // Planted defect: the drift detector reads the plan's frozen snapshot as
  // the "fresh" side, so a genuine 5x rate step never registers and the
  // re-planner never fires. The fire-iff-drift contract makes it observable:
  // the same workload must fire without the plant and must not with it.
  for (bool plant : {false, true}) {
    Init(AdaptivePolicy());
    auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    auto trainer = cluster_->RegisterContinuous(kTrainerQuery);
    ASSERT_TRUE(trainer.ok());

    std::unique_ptr<test_hooks::ScopedMutation> bug;
    if (plant) {
      bug = std::make_unique<test_hooks::ScopedMutation>(
          &test_hooks::stale_stats_snapshot);
    }
    Feed(0, 1000, 1);
    for (StreamTime end = 1000; end <= 1400; end += kIntervalMs) {
      EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
      Feed(end, end + kIntervalMs, 1);
    }
    for (StreamTime end = 1600; end <= 2400; end += kIntervalMs) {
      Feed(end - kIntervalMs, end, 5);
      EXPECT_TRUE(TriggerBoth(*trainer, *h, end)) << "end=" << end;
    }

    Cluster::ReplanStats stats = cluster_->replan_stats();
    EXPECT_GT(stats.checks, 0u) << "plant=" << plant;
    if (plant) {
      EXPECT_EQ(stats.drift_triggers, 0u)
          << "stale snapshot still detected drift — the mutation is dead";
      EXPECT_EQ(cluster_->PlanVersionOf(*h), 1u);
    } else {
      EXPECT_GE(stats.drift_triggers, 1u);
      EXPECT_EQ(cluster_->PlanVersionOf(*h), 2u);
    }
  }
}

TEST_F(PlannerStatsMutationTest, SkipParityGateIsCaughtByTheCutoverAudit) {
  // Planted defect: a drift trigger hot-swaps the candidate plan with neither
  // the shadow parity check nor the coherent delta-cache/MQO re-keying of the
  // gated path. The catch is the cutover audit this lane runs after every
  // version bump of a delta-cached registration:
  //
  //   version advanced  =>  the cache was re-keyed (plan_flushes >= 1) and
  //                         the install went through a gate (cutovers+pins).
  //
  // The delta path deliberately never re-checks the plan version at read
  // time, so only this owner-side audit proves re-keying happened. (Results
  // do not silently corrupt today — fresh contributions are derived from the
  // cached prefix, so they inherit its column order — but that coherence is
  // an implementation accident of prefix anchoring, not a contract; the
  // audit, not luck, is what guards the cutover.)
  for (bool plant : {false, true}) {
    Init(AdaptivePolicy());
    auto h = cluster_->RegisterContinuous(kAdaptiveQuery);
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(cluster_->HasDeltaCache(*h));
    auto trainer = cluster_->RegisterContinuous(kTrainerQuery);
    ASSERT_TRUE(trainer.ok());

    std::unique_ptr<test_hooks::ScopedMutation> bug;
    if (plant) {
      bug = std::make_unique<test_hooks::ScopedMutation>(
          &test_hooks::skip_parity_gate);
    }
    Feed(0, 1000, 1);
    size_t divergences = 0;
    for (StreamTime end = 1000; end <= 1400; end += kIntervalMs) {
      divergences += TriggerBoth(*trainer, *h, end) ? 0 : 1;
      Feed(end, end + kIntervalMs, 1);
    }
    EXPECT_EQ(divergences, 0u) << "plant=" << plant
                               << ": diverged before any cutover";
    for (StreamTime end = 1600; end <= 2400; end += kIntervalMs) {
      Feed(end - kIntervalMs, end, 5);
      const bool parity = TriggerBoth(*trainer, *h, end);
      if (!plant) {
        EXPECT_TRUE(parity) << "end=" << end;
      }
    }

    // The install happened either way (same drift, same candidate).
    ASSERT_EQ(cluster_->PlanVersionOf(*h), 2u) << "plant=" << plant;
    const Cluster::ReplanStats stats = cluster_->replan_stats();
    const DeltaCache::Stats cache = cluster_->DeltaStatsOf(*h);
    const bool audit_clean =
        cache.plan_flushes >= 1 && stats.cutovers + stats.pins >= 1;
    if (plant) {
      EXPECT_FALSE(audit_clean)
          << "ungated cutover passed the audit — the mutation is dead";
      EXPECT_EQ(cache.plan_flushes, 0u);  // Cache never re-keyed.
      EXPECT_EQ(stats.cutovers, 0u);      // No install went through the gate.
    } else {
      EXPECT_TRUE(audit_clean);
      EXPECT_GE(cache.plan_flushes, 1u);
      EXPECT_GE(stats.cutovers, 1u);
    }
  }
}

// ---------------------------------------------------------------------------
// PlanPinTest: the manual plan-pin format and its golden corpus.
// ---------------------------------------------------------------------------

std::vector<std::pair<std::string, std::string>> PinCorpus() {
  std::vector<std::pair<std::string, std::string>> out;
  const std::string dir = std::string(WUKONGS_TEST_CORPUS_DIR) + "/plans";
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".pin") {
      out.push_back({entry.path().filename().string(), entry.path().string()});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(PlanPinTest, CorpusRoundTripsAndRejectsMalformedWithReasons) {
  auto corpus = PinCorpus();
  ASSERT_FALSE(corpus.empty()) << "plan-pin corpus missing";
  size_t valid = 0;
  size_t invalid = 0;
  for (const auto& [name, path] : corpus) {
    auto pin = LoadPlanPinFile(path);
    if (name.rfind("invalid_", 0) == 0) {
      EXPECT_FALSE(pin.ok()) << name << " parsed but should be rejected";
      EXPECT_EQ(pin.status().code(), StatusCode::kInvalidArgument) << name;
      // Rejections carry a reason, not just a flag.
      EXPECT_NE(pin.status().message().find("plan pin"), std::string::npos)
          << name << ": " << pin.status().ToString();
      ++invalid;
      continue;
    }
    ASSERT_TRUE(pin.ok()) << name << ": " << pin.status().ToString();
    // Round trip: serialize -> parse -> identical pin.
    auto again = ParsePlanPin(SerializePlanPin(*pin));
    ASSERT_TRUE(again.ok()) << name << ": " << again.status().ToString();
    EXPECT_EQ(again->order, pin->order) << name;
    EXPECT_EQ(again->selective, pin->selective) << name;
    ++valid;
  }
  EXPECT_GE(valid, 4u);
  EXPECT_GE(invalid, 7u);
}

TEST(PlanPinTest, FigThirteenPinMatchesTheDeltaFriendlyOrder) {
  auto pin = LoadPlanPinFile(std::string(WUKONGS_TEST_CORPUS_DIR) +
                             "/plans/fig13_delta_cache.pin");
  ASSERT_TRUE(pin.ok()) << pin.status().ToString();
  EXPECT_EQ(pin->order, (std::vector<int>{0, 2, 1}));
  ASSERT_TRUE(pin->selective.has_value());
  EXPECT_TRUE(*pin->selective);
}

TEST(PlanPinTest, ParserReportsLineAndReason) {
  struct Case {
    const char* text;
    const char* why;
  };
  const std::vector<Case> cases = {
      {"", "empty input"},
      {"plan v2\norder 0\n", "expected header 'plan v1'"},
      {"plan v1\n", "missing 'order'"},
      {"plan v1\norder\n", "at least one index"},
      {"plan v1\norder 0 2\n", "not a permutation"},
      {"plan v1\norder 0 -1\n", "negative pattern index"},
      {"plan v1\norder 0 1x\n", "not an index"},
      {"plan v1\norder 0\norder 0\n", "duplicate 'order'"},
      {"plan v1\norder 0\nselective maybe\n", "'selective' takes exactly"},
      {"plan v1\norder 0\nselective true\nselective false\n",
       "duplicate 'selective'"},
      {"plan v1\norder 0\ncost 42\n", "unknown directive"},
  };
  for (const Case& c : cases) {
    auto pin = ParsePlanPin(c.text);
    ASSERT_FALSE(pin.ok()) << "accepted: " << c.text;
    EXPECT_EQ(pin.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(pin.status().message().find(c.why), std::string::npos)
        << "for input <" << c.text << "> got: " << pin.status().ToString();
  }
}

TEST(PlanPinTest, SerializeIsCanonical) {
  PlanPin pin;
  pin.order = {2, 0, 1};
  pin.selective = false;
  EXPECT_EQ(SerializePlanPin(pin), "plan v1\norder 2 0 1\nselective false\n");

  PlanPin bare;
  bare.order = {0};
  EXPECT_EQ(SerializePlanPin(bare), "plan v1\norder 0\n");

  // Comments and whitespace normalize away through a round trip.
  auto noisy = ParsePlanPin(
      "# c\n\nplan v1  # h\n\torder  1   0\t# t\nselective true\n");
  ASSERT_TRUE(noisy.ok()) << noisy.status().ToString();
  EXPECT_EQ(SerializePlanPin(*noisy), "plan v1\norder 1 0\nselective true\n");
}

}  // namespace
}  // namespace wukongs
