// Parser robustness: random garbage, random token soups, and mutated valid
// queries must never crash or hang — they either parse or return a clean
// InvalidArgument. Parameterized over seeds.
//
// A checked-in seed corpus (tests/corpus/*.rq) is loaded deterministically
// (sorted by filename) before any random generation: `valid_*` files pin the
// accepted grammar, `invalid_*` files pin rejections that once needed a
// dedicated check, and every corpus entry also seeds the mutation fuzzer so
// regressions reproduce from a file, not a seed hunt.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/sparql/parser.h"

namespace wukongs {
namespace {

struct CorpusEntry {
  std::string name;  // Filename, e.g. "valid_union_filter.rq".
  std::string text;
};

// Deterministic load order: sorted by filename, independent of directory
// iteration order, so fuzz runs are reproducible across machines.
const std::vector<CorpusEntry>& Corpus() {
  static const std::vector<CorpusEntry>* corpus = [] {
    auto* out = new std::vector<CorpusEntry>();
    for (const auto& entry :
         std::filesystem::directory_iterator(WUKONGS_TEST_CORPUS_DIR)) {
      if (entry.path().extension() != ".rq") {
        continue;
      }
      std::ifstream in(entry.path());
      std::ostringstream text;
      text << in.rdbuf();
      out->push_back({entry.path().filename().string(), text.str()});
    }
    std::sort(out->begin(), out->end(),
              [](const CorpusEntry& a, const CorpusEntry& b) {
                return a.name < b.name;
              });
    return out;
  }();
  return *corpus;
}

TEST(ParserCorpusTest, ValidSeedsParseAndInvalidSeedsFailCleanly) {
  ASSERT_FALSE(Corpus().empty()) << "corpus dir missing: " << WUKONGS_TEST_CORPUS_DIR;
  size_t valid = 0;
  size_t invalid = 0;
  for (const CorpusEntry& e : Corpus()) {
    StringServer strings;
    auto q = ParseQuery(e.text, &strings);
    if (e.name.rfind("valid_", 0) == 0) {
      EXPECT_TRUE(q.ok()) << e.name << ": " << q.status().ToString();
      ++valid;
    } else if (e.name.rfind("invalid_", 0) == 0) {
      EXPECT_FALSE(q.ok()) << e.name << " parsed but is a pinned rejection";
      if (!q.ok()) {
        EXPECT_EQ(q.status().code(), StatusCode::kInvalidArgument) << e.name;
      }
      ++invalid;
    } else {
      ADD_FAILURE() << "corpus file " << e.name
                    << " must be named valid_* or invalid_*";
    }
  }
  EXPECT_GE(valid, 5u);
  EXPECT_GE(invalid, 5u);
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, CorpusSeededMutantsNeverCrash) {
  // Corpus entries are mutated *before* (and independently of) the random
  // generators below — a crash found here reproduces from the named file.
  Rng rng(GetParam() + 3000);
  StringServer strings;
  for (const CorpusEntry& e : Corpus()) {
    for (int i = 0; i < 60; ++i) {
      std::string text = e.text;
      int mutations = static_cast<int>(rng.Uniform(1, 4));
      for (int m = 0; m < mutations && !text.empty(); ++m) {
        size_t pos = rng.Uniform(0, text.size() - 1);
        switch (rng.Uniform(0, 2)) {
          case 0:
            text.erase(pos, rng.Uniform(1, 5));
            break;
          case 1:
            text.insert(pos,
                        std::string(1, static_cast<char>(rng.Uniform(32, 126))));
            break;
          default:
            text[pos] = static_cast<char>(rng.Uniform(32, 126));
            break;
        }
      }
      auto q = ParseQuery(text, &strings);  // Must return, never crash.
      (void)q;
    }
  }
}

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  StringServer strings;
  const std::string charset =
      "abcXYZ019 ?{}()[]<>.#:=!\t\n*+-/,SELECTWHEREFROMregisterquery";
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.Uniform(0, 120);
    std::string text;
    text.reserve(len);
    for (size_t c = 0; c < len; ++c) {
      text.push_back(charset[rng.Uniform(0, charset.size() - 1)]);
    }
    auto q = ParseQuery(text, &strings);  // Must return, never crash.
    (void)q;
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam() + 1000);
  StringServer strings;
  const std::vector<std::string> tokens = {
      "SELECT",  "WHERE",  "FROM",    "STREAM", "REGISTER", "QUERY",  "AS",
      "GRAPH",   "FILTER", "GROUP",   "BY",     "ORDER",    "LIMIT",  "DISTINCT",
      "RANGE",   "STEP",   "TO",      "COUNT",  "AVG",      "?x",     "?y",
      "Logan",   "po",     "#tag",    "10s",    "100ms",    "42",     "3.5",
      "{",       "}",      "(",       ")",      "[",        "]",      ".",
      "<",       ">",      "=",       "!=",     ">=",       "DESC"};
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.Uniform(1, 30);
    std::string text;
    for (size_t t = 0; t < len; ++t) {
      text += tokens[rng.Uniform(0, tokens.size() - 1)];
      text += " ";
    }
    auto q = ParseQuery(text, &strings);
    (void)q;
  }
}

TEST_P(ParserFuzzTest, MutatedValidQueryParsesOrFailsCleanly) {
  Rng rng(GetParam() + 2000);
  StringServer strings;
  const std::string base = R"(
      REGISTER QUERY QC AS
      SELECT ?X ?Y ?Z
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
      FROM <X-Lab>
      WHERE {
        GRAPH <Tweet_Stream> { ?X po ?Z }
        GRAPH <X-Lab>        { ?X fo ?Y }
        GRAPH <Like_Stream>  { ?Y li ?Z }
      })";
  // The unmutated form must parse.
  ASSERT_TRUE(ParseQuery(base, &strings).ok());
  for (int i = 0; i < 300; ++i) {
    std::string text = base;
    int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(0, text.size() - 1);
      switch (rng.Uniform(0, 2)) {
        case 0:
          text.erase(pos, rng.Uniform(1, 5));
          break;
        case 1:
          text.insert(pos, std::string(1, static_cast<char>(rng.Uniform(32, 126))));
          break;
        default:
          text[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
      }
    }
    auto q = ParseQuery(text, &strings);
    if (q.ok()) {
      // A successfully parsed mutant must still be internally consistent.
      for (const TriplePattern& p : q->patterns) {
        if (p.subject.is_var()) {
          EXPECT_LT(static_cast<size_t>(p.subject.var), q->var_names.size());
        }
        if (p.object.is_var()) {
          EXPECT_LT(static_cast<size_t>(p.object.var), q->var_names.size());
        }
        if (p.graph != kGraphStored) {
          EXPECT_LT(static_cast<size_t>(p.graph), q->windows.size());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace wukongs
