// Parser robustness: random garbage, random token soups, and mutated valid
// queries must never crash or hang — they either parse or return a clean
// InvalidArgument. Parameterized over seeds.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/sparql/parser.h"

namespace wukongs {
namespace {

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, RandomBytesNeverCrash) {
  Rng rng(GetParam());
  StringServer strings;
  const std::string charset =
      "abcXYZ019 ?{}()[]<>.#:=!\t\n*+-/,SELECTWHEREFROMregisterquery";
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.Uniform(0, 120);
    std::string text;
    text.reserve(len);
    for (size_t c = 0; c < len; ++c) {
      text.push_back(charset[rng.Uniform(0, charset.size() - 1)]);
    }
    auto q = ParseQuery(text, &strings);  // Must return, never crash.
    (void)q;
  }
}

TEST_P(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(GetParam() + 1000);
  StringServer strings;
  const std::vector<std::string> tokens = {
      "SELECT",  "WHERE",  "FROM",    "STREAM", "REGISTER", "QUERY",  "AS",
      "GRAPH",   "FILTER", "GROUP",   "BY",     "ORDER",    "LIMIT",  "DISTINCT",
      "RANGE",   "STEP",   "TO",      "COUNT",  "AVG",      "?x",     "?y",
      "Logan",   "po",     "#tag",    "10s",    "100ms",    "42",     "3.5",
      "{",       "}",      "(",       ")",      "[",        "]",      ".",
      "<",       ">",      "=",       "!=",     ">=",       "DESC"};
  for (int i = 0; i < 300; ++i) {
    size_t len = rng.Uniform(1, 30);
    std::string text;
    for (size_t t = 0; t < len; ++t) {
      text += tokens[rng.Uniform(0, tokens.size() - 1)];
      text += " ";
    }
    auto q = ParseQuery(text, &strings);
    (void)q;
  }
}

TEST_P(ParserFuzzTest, MutatedValidQueryParsesOrFailsCleanly) {
  Rng rng(GetParam() + 2000);
  StringServer strings;
  const std::string base = R"(
      REGISTER QUERY QC AS
      SELECT ?X ?Y ?Z
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
      FROM <X-Lab>
      WHERE {
        GRAPH <Tweet_Stream> { ?X po ?Z }
        GRAPH <X-Lab>        { ?X fo ?Y }
        GRAPH <Like_Stream>  { ?Y li ?Z }
      })";
  // The unmutated form must parse.
  ASSERT_TRUE(ParseQuery(base, &strings).ok());
  for (int i = 0; i < 300; ++i) {
    std::string text = base;
    int mutations = static_cast<int>(rng.Uniform(1, 4));
    for (int m = 0; m < mutations; ++m) {
      size_t pos = rng.Uniform(0, text.size() - 1);
      switch (rng.Uniform(0, 2)) {
        case 0:
          text.erase(pos, rng.Uniform(1, 5));
          break;
        case 1:
          text.insert(pos, std::string(1, static_cast<char>(rng.Uniform(32, 126))));
          break;
        default:
          text[pos] = static_cast<char>(rng.Uniform(32, 126));
          break;
      }
    }
    auto q = ParseQuery(text, &strings);
    if (q.ok()) {
      // A successfully parsed mutant must still be internally consistent.
      for (const TriplePattern& p : q->patterns) {
        if (p.subject.is_var()) {
          EXPECT_LT(static_cast<size_t>(p.subject.var), q->var_names.size());
        }
        if (p.object.is_var()) {
          EXPECT_LT(static_cast<size_t>(p.object.var), q->var_names.size());
        }
        if (p.graph != kGraphStored) {
          EXPECT_LT(static_cast<size_t>(p.graph), q->windows.size());
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace wukongs
