// Deterministic differential test harness (DESIGN.md §5.7).
//
// Every seed expands into an explicit event trace — feeds, clock advances,
// registrations, executions, maintenance passes — which one RunTrace() call
// replays against the production Cluster while a ReferenceOracle (naive flat
// interpreter sharing only the parser/AST) evaluates the same queries over
// the same visibility frontier. A SnapshotChecker audits the engine's
// consistency claims independently of result content. Failures are therefore
// a (config, trace) pair: greedy minimization shrinks the trace while it
// still fails, and replays are byte-identical.
//
// Two planted mutations (src/common/test_hooks.h) prove the harness has
// teeth: an off-by-one window boundary and a stale Stable_SN read must both
// be detected within a handful of seeds.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <numeric>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/maintenance_daemon.h"
#include "src/cluster/reconfig.h"
#include "src/cluster/worker_pool.h"
#include "src/common/test_hooks.h"
#include "src/fault/recovery_manager.h"
#include "src/sparql/parser.h"
#include "src/stream/checkpoint.h"
#include "src/testkit/query_gen.h"
#include "src/testkit/reference_oracle.h"
#include "src/testkit/schedule_controller.h"
#include "src/testkit/snapshot_checker.h"

namespace wukongs::testkit {
namespace {

constexpr uint64_t kInterval = 100;  // Batch interval (ms) for all lanes.
// Maintenance never GC's the most recent 1.2s of stream history, so live
// windows (range <= 400ms) and generated absolute windows stay intact.
constexpr StreamTime kGcLagMs = 1200;

struct TupleDesc {
  std::string s, p, o;
  StreamTime ts = 0;
};

struct Event {
  enum class Kind { kFeed, kAdvance, kRegister, kContinuousExec, kOneShot, kMaintenance };
  Kind kind = Kind::kAdvance;
  size_t stream = 0;             // kFeed.
  std::vector<TupleDesc> tuples; // kFeed.
  StreamTime time_ms = 0;        // kAdvance / kContinuousExec end / kMaintenance.
  size_t handle = 0;             // kContinuousExec: index among kRegister events.
  std::string text;              // kRegister / kOneShot.
};

struct RunConfig {
  uint64_t seed = 0;
  uint32_t nodes = 1;
  uint64_t batches_per_sn = 1;
  bool fuzz_schedule = true;
  // Migration lane (§5.10): drive live reconfiguration (staged shard moves
  // with real dual-apply, node adds, drains, target crashes with rollback)
  // from the advance path while the differential contract keeps holding.
  bool migrate = false;
  // Columnar lane (§5.13): replay the same trace against a second cluster
  // running the legacy row pipeline and require every projected result to be
  // byte-identical — same rows, same order, same values — to the columnar
  // primary. Not combined with `migrate` (the twin carries no shard-map).
  bool row_twin = false;
  // Adaptive lane (§5.14): the primary runs with cost-based re-planning
  // enabled while a statically-planned twin replays the same events. Plans
  // may differ after a parity-gated cutover — row enumeration order with
  // them — so the twin contract is bag equality, not byte identity. The
  // trace carries a deterministic mid-run rate step (MakeAdaptiveTrace) so
  // drift genuinely fires. Composable with `migrate` (the twin is
  // ownership-agnostic and never migrates) but not with `row_twin`.
  bool adaptive = false;
  // Adaptive lane: accumulates the primary's replan counters across seeds so
  // the test can prove the machinery was exercised, not just survived.
  Cluster::ReplanStats* replan_out = nullptr;
};

RunConfig ConfigForSeed(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  RunConfig cfg;
  cfg.seed = seed;
  cfg.nodes = static_cast<uint32_t>(1 + rng.Uniform(0, 2));
  cfg.batches_per_sn = 1 + rng.Uniform(0, 1);
  return cfg;
}

GenVocab MakeVocab() {
  GenVocab v;
  for (int i = 0; i < 8; ++i) {
    v.entities.push_back("e" + std::to_string(i));
  }
  for (int i = 0; i <= 12; ++i) {
    v.values.push_back(std::to_string(i));
  }
  v.edge_predicates = {"p0", "p1", "fo"};
  v.value_predicates = {"q0", "tg"};  // tg is declared timing (window-only).
  v.streams = {"S0", "S1"};
  return v;
}

std::vector<Triple> MakeBase(uint64_t seed, StringServer* s, const GenVocab& v) {
  Rng rng(seed ^ 0xbadc0ffeull);
  auto ent = [&] { return s->InternVertex(v.entities[rng.Uniform(0, v.entities.size() - 1)]); };
  std::vector<Triple> base;
  for (int i = 0; i < 24; ++i) {
    base.push_back({ent(),
                    s->InternPredicate(
                        v.edge_predicates[rng.Uniform(0, v.edge_predicates.size() - 1)]),
                    ent()});
  }
  for (int i = 0; i < 12; ++i) {
    base.push_back({ent(), s->InternPredicate("q0"),
                    s->InternVertex(v.values[rng.Uniform(0, v.values.size() - 1)])});
  }
  return base;
}

// Expands a seed into the full event trace. Pure function of the seed: two
// calls with the same seed produce byte-identical traces.
std::vector<Event> MakeTrace(uint64_t seed) {
  Rng rng(seed);
  GenVocab vocab = MakeVocab();
  QueryGenerator gen(vocab, kInterval);
  // Scratch interner: generation only needs window STEPs out of the parse.
  StringServer scratch;

  std::vector<Event> trace;
  std::vector<uint64_t> exec_align;  // Per registration: lcm of window steps.
  const size_t nregs = rng.Uniform(1, 2);
  for (size_t i = 0; i < nregs; ++i) {
    std::string text = gen.Continuous(&rng, "q" + std::to_string(i));
    auto q = ParseQuery(text, &scratch);
    if (!q.ok()) {
      continue;  // Defensive; the generator is supposed to emit valid text.
    }
    uint64_t align = 1;
    for (const WindowSpec& w : q->windows) {
      align = std::lcm(align, w.step_ms);
    }
    Event e;
    e.kind = Event::Kind::kRegister;
    e.text = std::move(text);
    trace.push_back(std::move(e));
    exec_align.push_back(align);
  }

  const size_t rounds = 8 + rng.Uniform(0, 6);
  StreamTime now = 0;
  for (size_t r = 0; r < rounds; ++r) {
    for (size_t s = 0; s < vocab.streams.size(); ++s) {
      const size_t n = rng.Uniform(0, 3);
      if (n == 0) {
        continue;
      }
      Event e;
      e.kind = Event::Kind::kFeed;
      e.stream = s;
      for (size_t i = 0; i < n; ++i) {
        TupleDesc t;
        t.s = vocab.entities[rng.Uniform(0, vocab.entities.size() - 1)];
        const uint64_t kind = rng.Uniform(0, 3);
        if (kind == 0) {
          t.p = "q0";
          t.o = vocab.values[rng.Uniform(0, vocab.values.size() - 1)];
        } else if (kind == 1) {
          t.p = "tg";  // Timing: transient-only, visible in windows.
          t.o = vocab.values[rng.Uniform(0, vocab.values.size() - 1)];
        } else {
          t.p = vocab.edge_predicates[rng.Uniform(0, vocab.edge_predicates.size() - 1)];
          t.o = vocab.entities[rng.Uniform(0, vocab.entities.size() - 1)];
        }
        t.ts = now + rng.Uniform(0, kInterval - 1);
        e.tuples.push_back(std::move(t));
      }
      std::sort(e.tuples.begin(), e.tuples.end(),
                [](const TupleDesc& a, const TupleDesc& b) { return a.ts < b.ts; });
      trace.push_back(std::move(e));
    }
    now = (r + 1) * kInterval;
    trace.push_back({Event::Kind::kAdvance, 0, {}, now, 0, ""});
    if (rng.Bernoulli(0.15)) {
      trace.push_back({Event::Kind::kMaintenance, 0, {}, now, 0, ""});
    }
    for (size_t h = 0; h < exec_align.size(); ++h) {
      const StreamTime end = now - now % exec_align[h];
      if (end > 0) {
        trace.push_back({Event::Kind::kContinuousExec, 0, {}, end, h, ""});
      }
    }
    if (rng.Bernoulli(0.5)) {
      const StreamTime min_ms = now > kGcLagMs ? now - kGcLagMs : 0;
      Event e;
      e.kind = Event::Kind::kOneShot;
      e.text = gen.OneShot(&rng, min_ms, now);
      trace.push_back(std::move(e));
    }
  }
  return trace;
}

// Deterministic mid-run rate step for the adaptive lane (§5.14): every feed
// in the second half of the trace carries 4 extra tuples per original one, a
// ~5x per-stream ingest-rate step — far past the drift factor — while staying
// a pure function of the seed. Built on top of MakeTrace so every other
// lane's trace remains byte-identical to what it replayed before this lane
// existed.
std::vector<Event> MakeAdaptiveTrace(uint64_t seed) {
  std::vector<Event> trace = MakeTrace(seed);
  size_t rounds = 0;
  for (const Event& e : trace) {
    rounds += e.kind == Event::Kind::kAdvance ? 1 : 0;
  }
  Rng rng(seed ^ 0xada9717e57e9ull);
  GenVocab vocab = MakeVocab();
  size_t round = 0;
  for (Event& e : trace) {
    if (e.kind == Event::Kind::kAdvance) {
      ++round;
      continue;
    }
    if (e.kind != Event::Kind::kFeed || round < rounds / 2 ||
        e.tuples.empty()) {
      continue;
    }
    std::vector<TupleDesc> extra;
    for (int copy = 0; copy < 4; ++copy) {
      for (const TupleDesc& orig : e.tuples) {
        TupleDesc t;
        t.s = vocab.entities[rng.Uniform(0, vocab.entities.size() - 1)];
        const uint64_t kind = rng.Uniform(0, 3);
        if (kind == 0) {
          t.p = "q0";
          t.o = vocab.values[rng.Uniform(0, vocab.values.size() - 1)];
        } else if (kind == 1) {
          t.p = "tg";
          t.o = vocab.values[rng.Uniform(0, vocab.values.size() - 1)];
        } else {
          t.p = vocab.edge_predicates[rng.Uniform(0, vocab.edge_predicates.size() - 1)];
          t.o = vocab.entities[rng.Uniform(0, vocab.entities.size() - 1)];
        }
        t.ts = orig.ts;  // Stay inside the original tuple's batch slice.
        extra.push_back(std::move(t));
      }
    }
    e.tuples.insert(e.tuples.end(), extra.begin(), extra.end());
    std::sort(e.tuples.begin(), e.tuples.end(),
              [](const TupleDesc& a, const TupleDesc& b) { return a.ts < b.ts; });
  }
  return trace;
}

std::string SerializeTrace(const std::vector<Event>& trace) {
  std::string out;
  for (const Event& e : trace) {
    switch (e.kind) {
      case Event::Kind::kFeed:
        out += "feed " + std::to_string(e.stream);
        for (const TupleDesc& t : e.tuples) {
          out += " [" + t.s + " " + t.p + " " + t.o + " @" + std::to_string(t.ts) + "]";
        }
        out += "\n";
        break;
      case Event::Kind::kAdvance:
        out += "advance " + std::to_string(e.time_ms) + "\n";
        break;
      case Event::Kind::kMaintenance:
        out += "maintenance " + std::to_string(e.time_ms) + "\n";
        break;
      case Event::Kind::kRegister:
        out += "register " + e.text + "\n";
        break;
      case Event::Kind::kContinuousExec:
        out += "exec " + std::to_string(e.handle) + " @" + std::to_string(e.time_ms) + "\n";
        break;
      case Event::Kind::kOneShot:
        out += "oneshot " + e.text + "\n";
        break;
    }
  }
  return out;
}

// Replays one trace against a fresh cluster + oracle pair. Ok() means every
// execution matched the oracle, every consistency audit passed, and the
// metrics registry's live-site counters agree with the harness's own
// accounting (the observability layer is cross-checked on every seed, so
// counter drift fails the lane like any other defect).
Status RunTrace(const RunConfig& cfg, const std::vector<Event>& trace) {
  GenVocab vocab = MakeVocab();
  ClusterConfig config;
  config.nodes = cfg.nodes;
  config.batch_interval_ms = kInterval;
  config.batches_per_sn = cfg.batches_per_sn;
  // The twin lane pins in-place execution on both clusters: the generated
  // continuous queries are mostly non-selective, and non-selective triggers
  // take fork-join — which bypasses the delta path entirely. Columnar-vs-row
  // contribution caching is exactly where the stale_arena_reuse defect class
  // lives, so the lane forces the route the delta gate requires.
  config.force_in_place = cfg.row_twin;
  if (cfg.adaptive) {
    // Same knobs the planner lane uses: check every trigger, judge rates over
    // a window short enough that the trace's mid-run step is visible before
    // the trace ends.
    config.replan.enabled = true;
    config.replan.drift_factor = 2.0;
    config.replan.min_triggers_between = 1;
    config.replan.rate_window_ms = 500;
  }
  ScheduleController schedule(cfg.seed);
  if (cfg.fuzz_schedule) {
    config.schedule = &schedule;
  }
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  Cluster cluster(config);
  StringServer* strings = cluster.strings();

  std::vector<StreamId> sids;
  ReferenceOracle oracle(strings, kInterval, cfg.batches_per_sn);
  for (const std::string& name : vocab.streams) {
    auto sid = cluster.DefineStream(name, {"tg"});
    if (!sid.ok()) {
      return sid.status();
    }
    sids.push_back(*sid);
    oracle.DefineStream(name);
  }
  // Migration lane: every delivered batch also lands in a checkpoint log so
  // live shard moves (and warm restores after a planted target crash) can
  // replay history exactly as production reconfiguration does.
  std::string mig_log_path;
  std::optional<CheckpointLog> mig_log;
  bool mig_log_failed = false;
  if (cfg.migrate) {
    mig_log_path = (std::filesystem::temp_directory_path() /
                    ("wukongs_diff_mig_" + std::to_string(::getpid()) + "_" +
                     std::to_string(cfg.seed) + ".log"))
                       .string();
    std::filesystem::remove(mig_log_path);
    auto log = CheckpointLog::Create(mig_log_path);
    if (!log.ok()) {
      return log.status();
    }
    mig_log.emplace(std::move(*log));
  }
  // The logger is the oracle's feed *and* the harness's independent ingest
  // count: every batch the engine injects must show up in the registry too.
  uint64_t logged_batches = 0;
  uint64_t logged_tuples = 0;
  cluster.SetBatchLogger([&](const StreamBatch& b) {
    ++logged_batches;
    logged_tuples += b.tuples.size();
    oracle.AddBatch(b.stream, b.seq, b.tuples);
    if (mig_log && !mig_log->Append(b).ok()) {
      mig_log_failed = true;
    }
  });
  std::vector<Triple> base = MakeBase(cfg.seed, strings, vocab);
  cluster.LoadBase(base);
  oracle.LoadBase(base);
  SnapshotChecker checker(cfg.batches_per_sn);

  // Columnar-vs-row twin (§5.13): a second cluster, identical except for the
  // executor pipeline, replays the same events. Both clusters intern the same
  // names in the same order (streams, base, then trace order), so vertex ids
  // line up and results can be compared byte-for-byte: the columnar executor
  // promises the exact row enumeration order of the row pipeline, not just
  // the same bag.
  std::unique_ptr<ScheduleController> twin_sched;
  std::unique_ptr<Cluster> twin;
  std::vector<StreamId> twin_sids;
  std::vector<Cluster::ContinuousHandle> twin_handles;
  if (cfg.row_twin || cfg.adaptive) {
    ClusterConfig twin_config;
    twin_config.nodes = cfg.nodes;
    twin_config.batch_interval_ms = kInterval;
    twin_config.batches_per_sn = cfg.batches_per_sn;
    // Adaptive lane (§5.14): the twin differs from the primary only in that
    // re-planning stays off — it keeps each registration's first plan for the
    // whole trace, the oracle for "cutovers must not change what is
    // delivered".
    twin_config.columnar_executor = !cfg.row_twin;
    twin_config.force_in_place = cfg.row_twin;
    if (cfg.fuzz_schedule) {
      twin_sched = std::make_unique<ScheduleController>(cfg.seed);
      twin_config.schedule = twin_sched.get();
    }
    twin = std::make_unique<Cluster>(twin_config);
    for (const std::string& name : vocab.streams) {
      auto sid = twin->DefineStream(name, {"tg"});
      if (!sid.ok()) {
        return sid.status();
      }
      twin_sids.push_back(*sid);
    }
    twin->LoadBase(MakeBase(cfg.seed, twin->strings(), vocab));
  }

  auto same_bytes = [](const QueryResult& a, const QueryResult& b) {
    if (a.rows.size() != b.rows.size()) {
      return false;
    }
    for (size_t i = 0; i < a.rows.size(); ++i) {
      if (a.rows[i].size() != b.rows[i].size()) {
        return false;
      }
      for (size_t j = 0; j < a.rows[i].size(); ++j) {
        const ResultValue& x = a.rows[i][j];
        const ResultValue& y = b.rows[i][j];
        if (x.is_number != y.is_number ||
            (x.is_number ? x.number != y.number : x.vid != y.vid)) {
          return false;
        }
      }
    }
    return true;
  };
  // Row twin: both pipelines share the planner and raise identical errors at
  // identical points, so even failures must agree — a status divergence is a
  // defect and results must match byte for byte. Adaptive twin: the primary
  // may serve a different (parity-gated) plan, so the contract weakens to bag
  // equality, and a status split is legal only in the one plan-order-sensitive
  // case the oracle comparison also tolerates: the early-exit empty-join
  // rejection (kInvalidArgument) on one side against an *empty* result on the
  // other. An empty join under one order is empty under every order, so a
  // non-empty result opposite a rejection is a real divergence.
  auto twin_check = [&](const StatusOr<QueryExecution>& col,
                        const StatusOr<QueryExecution>& row,
                        const std::string& what) -> Status {
    if (col.ok() != row.ok()) {
      if (cfg.adaptive) {
        const StatusOr<QueryExecution>& bad = col.ok() ? row : col;
        const StatusOr<QueryExecution>& good = col.ok() ? col : row;
        if (bad.status().code() == StatusCode::kInvalidArgument &&
            good->result.rows.empty()) {
          return Status::Ok();
        }
      }
      return Status::Internal(
          what + ": twin status divergence: primary " +
          (col.ok() ? "ok" : col.status().ToString()) + " vs twin " +
          (row.ok() ? "ok" : row.status().ToString()));
    }
    if (!col.ok()) {
      if (col.status().code() != row.status().code()) {
        return Status::Internal(what + ": twin failure codes differ: " +
                                col.status().ToString() + " vs " +
                                row.status().ToString());
      }
      return Status::Ok();
    }
    if (cfg.adaptive
            ? CanonicalBag(col->result) != CanonicalBag(row->result)
            : !same_bytes(col->result, row->result)) {
      return Status::Internal(
          what + ": twin result divergence: primary " +
          std::to_string(col->result.rows.size()) + " rows vs twin " +
          std::to_string(row->result.rows.size()));
    }
    return Status::Ok();
  };

  struct Reg {
    Cluster::ContinuousHandle handle = 0;
    Query q;
    std::vector<StreamId> stream_ids;
    StreamTime last_end = 0;
  };
  std::vector<Reg> regs;
  StreamTime frontier = 0;
  const size_t nstreams = vocab.streams.size();
  uint64_t ok_oneshots = 0;    // Successful OneShotParsed calls.
  uint64_t ok_continuous = 0;  // Successful (audited) ExecuteContinuousAt.

  auto compare = [&](const Query& q, const QueryExecution& exec, SnapshotNum sn,
                     const VectorTimestamp& stable, StreamTime end,
                     const std::string& what) -> Status {
    auto want = oracle.Evaluate(q, sn, stable, end);
    if (!want.ok()) {
      return Status::Internal(what + ": oracle failed: " + want.status().ToString());
    }
    std::vector<std::string> got = CanonicalBag(exec.result);
    std::vector<std::string> expect = CanonicalBag(*want);
    if (got != expect) {
      std::string msg = what + ": engine/oracle mismatch: engine " +
                        std::to_string(got.size()) + " rows vs oracle " +
                        std::to_string(expect.size());
      for (size_t i = 0; i < std::max(got.size(), expect.size()) && i < 6; ++i) {
        msg += "\n  engine=" + (i < got.size() ? got[i] : std::string("<none>")) +
               " oracle=" + (i < expect.size() ? expect[i] : std::string("<none>"));
      }
      return Status::Internal(msg);
    }
    return Status::Ok();
  };

  // Migration driver (§5.10). A plan of live reconfiguration actions runs
  // from the advance path: a "staged" move begins (Begin + base copy) on one
  // advance and finishes (history replay + Finish) on the next, so dual-apply
  // mirrors real deliveries in between; some staged moves instead crash the
  // target mid-transfer and must roll back without an epoch bump. WindowDedup
  // records every delivered window so the post-cutover audit can prove zero
  // lost, duplicated, or diverged results.
  WindowDedup dedup;
  Rng mig_rng(cfg.seed ^ 0x5eedd1ce5eedd1ceull);
  std::vector<int> mig_plan;  // 0 = staged move, 1 = add-node, 2 = drain.
  if (cfg.migrate) {
    mig_plan.push_back(0);  // Always at least one live move per seed.
    if (mig_rng.Bernoulli(0.7)) {
      mig_plan.push_back(static_cast<int>(mig_rng.Uniform(0, 2)));
    }
  }
  bool staged_active = false;
  bool staged_crash = false;  // Crash the target instead of finishing.
  NodeId staged_target = 0;
  uint64_t rechecked_epoch = cluster.OwnershipEpoch();
  StreamTime gc_floor = 0;  // Highest maintenance horizon passed so far.

  auto pick_target = [&](NodeId source) -> int {
    std::vector<NodeId> cands;
    for (NodeId n = 0; n < cluster.node_count(); ++n) {
      if (n != source && cluster.NodeUp(n) && cluster.NodeServing(n) &&
          !cluster.IsDraining(n)) {
        cands.push_back(n);
      }
    }
    if (cands.empty()) {
      return -1;
    }
    return static_cast<int>(cands[mig_rng.Uniform(0, cands.size() - 1)]);
  };

  auto sync_log = [&]() -> Status {
    return mig_log ? mig_log->Sync() : Status::Ok();
  };

  auto start_staged = [&]() -> Status {
    uint32_t shard =
        static_cast<uint32_t>(mig_rng.Uniform(0, cluster.ShardCount() - 1));
    NodeId source = cluster.ShardOwner(shard);
    int target = pick_target(source);
    if (target < 0) {
      return Status::Ok();  // No eligible target this round; retry later.
    }
    Status st = cluster.BeginShardMove(shard, static_cast<NodeId>(target));
    if (!st.ok()) {
      return Status::Internal("BeginShardMove failed: " + st.ToString());
    }
    st = cluster.LoadBaseForShard(base);
    if (!st.ok()) {
      return Status::Internal("LoadBaseForShard failed: " + st.ToString());
    }
    staged_active = true;
    staged_target = static_cast<NodeId>(target);
    staged_crash = mig_rng.Bernoulli(0.3);
    mig_plan.erase(mig_plan.begin());
    return Status::Ok();
  };

  auto finish_staged = [&]() -> Status {
    staged_active = false;
    if (staged_crash) {
      // Planted fault: the target dies mid-transfer. The move must roll back
      // without bumping the epoch; an immediate warm restore readmits the
      // node before the next event can execute a window against it.
      const uint64_t epoch_before = cluster.OwnershipEpoch();
      Status st = cluster.CrashNode(staged_target);
      if (!st.ok()) {
        return Status::Internal("CrashNode(target) failed: " + st.ToString());
      }
      if (cluster.MigrationPending()) {
        return Status::Internal("target crash left the migration pending");
      }
      if (cluster.OwnershipEpoch() != epoch_before) {
        return Status::Internal("rollback bumped the ownership epoch");
      }
      Status sync = sync_log();
      if (!sync.ok()) {
        return sync;
      }
      RecoveryManager rm(mig_log_path);
      auto report = rm.RestoreNode(&cluster, staged_target, base);
      if (!report.ok()) {
        return Status::Internal("restore after rollback failed: " +
                                report.status().ToString());
      }
      return Status::Ok();
    }
    Status sync = sync_log();
    if (!sync.ok()) {
      return sync;
    }
    auto history = ReadCheckpointLog(mig_log_path);
    if (!history.ok()) {
      return history.status();
    }
    for (const StreamBatch& b : *history) {
      Status st = cluster.ReplayBatchForShard(b);
      if (!st.ok()) {
        return Status::Internal("shard history replay failed: " + st.ToString());
      }
    }
    Status st = cluster.FinishShardTransfer();
    if (!st.ok()) {
      return Status::Internal("FinishShardTransfer failed: " + st.ToString());
    }
    return Status::Ok();
  };

  auto add_node_action = [&]() -> Status {
    auto added = cluster.AddNode();
    if (!added.ok()) {
      return Status::Internal("AddNode failed: " + added.status().ToString());
    }
    Status sync = sync_log();
    if (!sync.ok()) {
      return sync;
    }
    ReconfigManager mgr(mig_log_path);
    uint32_t shard =
        static_cast<uint32_t>(mig_rng.Uniform(0, cluster.ShardCount() - 1));
    auto report = mgr.MoveShard(&cluster, shard, *added, base);
    if (!report.ok()) {
      return Status::Internal("MoveShard onto the new node failed: " +
                              report.status().ToString());
    }
    mig_plan.erase(mig_plan.begin());
    return Status::Ok();
  };

  auto drain_action = [&]() -> Status {
    NodeId victim =
        static_cast<NodeId>(mig_rng.Uniform(0, cluster.node_count() - 1));
    if (!cluster.NodeUp(victim) || !cluster.NodeServing(victim) ||
        cluster.IsDraining(victim) || pick_target(victim) < 0) {
      return Status::Ok();  // No legal drain this round; retry later.
    }
    Status sync = sync_log();
    if (!sync.ok()) {
      return sync;
    }
    ReconfigManager mgr(mig_log_path);
    auto report = mgr.DrainNode(&cluster, victim, base);
    if (!report.ok()) {
      return Status::Internal("DrainNode failed: " + report.status().ToString());
    }
    mig_plan.erase(mig_plan.begin());
    return Status::Ok();
  };

  // Zero-result-loss audit: after every ownership-epoch bump, re-execute each
  // registration's most recent window under the new assignment. Every
  // re-execution must succeed, match the ownership-agnostic oracle at the
  // current stable frontier (a shard copy that lost or duplicated edges shows
  // up here), and be suppressed by WindowDedup as a duplicate. The digest
  // itself is not required to be byte-stable: non-GRAPH patterns read the
  // persistent store at the *current* stable SN, so a window legitimately
  // grows as later timeless batches become visible.
  auto recheck_after_cutover = [&]() -> Status {
    const uint64_t epoch = cluster.OwnershipEpoch();
    if (!cfg.migrate || epoch == rechecked_epoch) {
      return Status::Ok();
    }
    rechecked_epoch = epoch;
    for (Reg& r : regs) {
      if (r.last_end == 0) {
        continue;
      }
      // A window reaching below the maintenance horizon may have lost slices
      // to GC since it was delivered — skip it: the digest comparison is only
      // meaningful over history that is still fully live.
      bool gc_safe = true;
      for (const WindowSpec& w : r.q.windows) {
        if (r.last_end < gc_floor + w.range_ms + kInterval) {
          gc_safe = false;
        }
      }
      if (!gc_safe) {
        continue;
      }
      VectorTimestamp stable = cluster.coordinator()->StableVts();
      auto exec = cluster.ExecuteContinuousAt(r.handle, r.last_end);
      if (!exec.ok()) {
        if (exec.status().code() == StatusCode::kInvalidArgument) {
          continue;  // Same matched empty-join rejection as pre-cutover.
        }
        return Status::Internal("post-cutover re-execution failed: " +
                                exec.status().ToString());
      }
      ++ok_continuous;  // The registry counts every successful execution.
      const std::string* before = dedup.Find(r.handle, r.last_end);
      if (before == nullptr) {
        continue;  // The pre-cutover trigger was a matched rejection.
      }
      SnapshotNum sn = checker.RecomputeStableSn(stable, nstreams);
      Status cmp = compare(r.q, *exec, sn, stable, r.last_end,
                           "post-cutover (epoch " + std::to_string(epoch) +
                               ") window @" + std::to_string(r.last_end));
      if (!cmp.ok()) {
        return cmp;
      }
      if (dedup.Accept(r.handle, r.last_end, exec->partial,
                       ResultDigest(exec->result))) {
        return Status::Internal(
            "post-cutover duplicate window was not suppressed @" +
            std::to_string(r.last_end));
      }
    }
    return Status::Ok();
  };

  for (const Event& e : trace) {
    switch (e.kind) {
      case Event::Kind::kFeed: {
        StreamTupleVec tuples;
        for (const TupleDesc& t : e.tuples) {
          tuples.push_back({{strings->InternVertex(t.s), strings->InternPredicate(t.p),
                             strings->InternVertex(t.o)},
                            t.ts,
                            TupleKind::kTimeless});
        }
        Status st = cluster.FeedStream(sids[e.stream], tuples);
        if (!st.ok()) {
          return Status::Internal("feed failed: " + st.ToString());
        }
        if (twin) {
          StringServer* ts = twin->strings();
          StreamTupleVec twin_tuples;
          for (const TupleDesc& t : e.tuples) {
            twin_tuples.push_back({{ts->InternVertex(t.s),
                                    ts->InternPredicate(t.p),
                                    ts->InternVertex(t.o)},
                                   t.ts,
                                   TupleKind::kTimeless});
          }
          st = twin->FeedStream(twin_sids[e.stream], twin_tuples);
          if (!st.ok()) {
            return Status::Internal("twin feed failed: " + st.ToString());
          }
        }
        break;
      }
      case Event::Kind::kAdvance: {
        cluster.AdvanceStreams(e.time_ms);
        if (twin) {
          twin->AdvanceStreams(e.time_ms);
        }
        frontier = std::max(frontier, e.time_ms);
        if (cfg.migrate) {
          Status st = Status::Ok();
          if (staged_active) {
            st = finish_staged();
          } else if (!mig_plan.empty() && !cluster.MigrationPending()) {
            switch (mig_plan.front()) {
              case 0: st = start_staged(); break;
              case 1: st = add_node_action(); break;
              default: st = drain_action(); break;
            }
          }
          if (!st.ok()) {
            return st;
          }
        }
        break;
      }
      case Event::Kind::kMaintenance:
        // Clamped against the *replayed* frontier so a minimized trace (with
        // advances removed) can never GC history its windows still need.
        gc_floor = frontier > kGcLagMs ? frontier - kGcLagMs : 0;
        cluster.RunMaintenance(gc_floor);
        if (twin) {
          twin->RunMaintenance(gc_floor);
        }
        break;
      case Event::Kind::kRegister: {
        auto h = cluster.RegisterContinuous(e.text);
        if (!h.ok()) {
          return Status::Internal("register failed: " + h.status().ToString() +
                                  "\n  text: " + e.text);
        }
        if (twin) {
          auto th = twin->RegisterContinuous(e.text);
          if (!th.ok()) {
            return Status::Internal("twin register failed where primary "
                                    "succeeded: " + th.status().ToString());
          }
          twin_handles.push_back(*th);
        }
        Reg r;
        r.handle = *h;
        r.q = cluster.ContinuousQueryOf(*h);
        for (const WindowSpec& w : r.q.windows) {
          auto sid = cluster.FindStream(w.stream_name);
          if (!sid.ok()) {
            return sid.status();
          }
          r.stream_ids.push_back(*sid);
        }
        regs.push_back(std::move(r));
        break;
      }
      case Event::Kind::kOneShot: {
        auto q = ParseQuery(e.text, strings);
        if (!q.ok()) {
          return Status::Internal("generated one-shot did not parse: " +
                                  q.status().ToString() + "\n  text: " + e.text);
        }
        VectorTimestamp stable = cluster.coordinator()->StableVts();
        SnapshotNum presn = checker.RecomputeStableSn(stable, nstreams);
        auto exec = cluster.OneShotParsed(*q);
        if (twin) {
          auto tq = ParseQuery(e.text, twin->strings());
          if (!tq.ok()) {
            return Status::Internal("twin parse failed: " +
                                    tq.status().ToString());
          }
          Status tc = twin_check(exec, twin->OneShotParsed(*tq), "one-shot");
          if (!tc.ok()) {
            return Status::Internal(tc.message() + "\n  text: " + e.text);
          }
        }
        if (!exec.ok()) {
          // The engine exits its pattern loop early on an empty intermediate
          // join and then rejects FILTERs over the still-unbound variables;
          // that is legitimate iff the oracle agrees the join is empty (or
          // rejects the query itself).
          if (exec.status().code() == StatusCode::kInvalidArgument) {
            if (!oracle.Evaluate(*q, presn, stable, 0).ok()) {
              break;
            }
            auto empty = oracle.HasEmptyJoin(*q, presn, stable, 0);
            if (empty.ok() && *empty) {
              break;
            }
          }
          return Status::Internal("one-shot failed: " + exec.status().ToString() +
                                  "\n  text: " + e.text);
        }
        ++ok_oneshots;
        Status audit = checker.CheckOneShot(*exec, stable, nstreams);
        if (!audit.ok()) {
          return audit;
        }
        SnapshotNum sn = checker.RecomputeStableSn(stable, nstreams);
        Status cmp = compare(*q, *exec, sn, stable, 0, "one-shot");
        if (!cmp.ok()) {
          return Status::Internal(cmp.message() + "\n  text: " + e.text);
        }
        break;
      }
      case Event::Kind::kContinuousExec: {
        if (e.handle >= regs.size()) {
          break;  // Its registration was minimized away.
        }
        Reg& r = regs[e.handle];
        const StreamTime end = e.time_ms;
        if (end <= r.last_end) {
          break;
        }
        // Independent readiness model: AdvanceStreams(frontier) delivered
        // batches 0 .. frontier/interval - 1 on every stream, so a window
        // ending at `end` (last batch (end-1)/interval) must be ready.
        const bool expect_ready =
            frontier >= kInterval && (end - 1) / kInterval <= frontier / kInterval - 1;
        const bool ready = cluster.WindowReady(r.handle, end);
        if (expect_ready && !ready) {
          return Status::Internal(
              "trigger refused a ready window: end=" + std::to_string(end) +
              " frontier=" + std::to_string(frontier));
        }
        if (!ready) {
          break;
        }
        VectorTimestamp stable = cluster.coordinator()->StableVts();
        auto exec = cluster.ExecuteContinuousAt(r.handle, end);
        if (twin) {
          Status tc = twin_check(
              exec, twin->ExecuteContinuousAt(twin_handles[e.handle], end),
              "continuous q" + std::to_string(e.handle) + " @" +
                  std::to_string(end));
          if (!tc.ok()) {
            return tc;
          }
        }
        if (!exec.ok()) {
          if (exec.status().code() == StatusCode::kInvalidArgument) {
            SnapshotNum sn = checker.RecomputeStableSn(stable, nstreams);
            auto empty = oracle.HasEmptyJoin(r.q, sn, stable, end);
            if (!oracle.Evaluate(r.q, sn, stable, end).ok() ||
                (empty.ok() && *empty)) {
              r.last_end = end;  // Matched rejection still advances the prefix.
              break;
            }
          }
          return Status::Internal("continuous exec failed: " + exec.status().ToString());
        }
        ++ok_continuous;
        Status audit =
            checker.CheckContinuous(e.handle, r.q, r.stream_ids, *exec, stable, kInterval);
        if (!audit.ok()) {
          return audit;
        }
        SnapshotNum sn = checker.RecomputeStableSn(stable, nstreams);
        Status cmp = compare(r.q, *exec, sn, stable, end,
                             "continuous q" + std::to_string(e.handle));
        if (!cmp.ok()) {
          return cmp;
        }
        // Delta parity (§5.9): the delivered result — delta-cached or not —
        // must be bag-identical to a cold full-window re-execution on the
        // same cached plan. This is the check that catches a GC that forgets
        // to invalidate delta-cache entries (stale contributions survive in
        // the cache but not in a cold read).
        auto cold = cluster.ExecuteContinuousColdAt(r.handle, end);
        if (!cold.ok()) {
          return Status::Internal("cold re-execution failed where the trigger "
                                  "succeeded: " + cold.status().ToString());
        }
        if (CanonicalBag(exec->result) != CanonicalBag(cold->result)) {
          return Status::Internal(
              "delta/cold divergence on continuous q" + std::to_string(e.handle) +
              " @" + std::to_string(end) + ": delta " +
              std::to_string(exec->result.rows.size()) + " rows vs cold " +
              std::to_string(cold->result.rows.size()));
        }
        // Zero-dup: a fresh window is never suppressed — in the adaptive lane
        // this holds across plan cutovers too (a cutover must not replay or
        // swallow a delivery).
        if ((cfg.migrate || cfg.adaptive) &&
            !dedup.Accept(r.handle, end, exec->partial,
                          ResultDigest(exec->result))) {
          return Status::Internal("fresh window @" + std::to_string(end) +
                                  " was suppressed as a duplicate");
        }
        r.last_end = end;
        break;
      }
    }
    // Deferred commits land from the feed path, so the epoch can bump on any
    // event — audit the cutover as soon as it happens.
    if (cfg.migrate) {
      Status rc = recheck_after_cutover();
      if (!rc.ok()) {
        return rc;
      }
    }
  }

  if (cfg.adaptive) {
    // Cutover audit (§5.14), the same invariant the planner lane pins: a
    // plan-version bump on a delta-cached registration implies the cache was
    // re-keyed and the install went through the parity gate (or a pin).
    const Cluster::ReplanStats rs = cluster.replan_stats();
    for (const Reg& r : regs) {
      if (cluster.PlanVersionOf(r.handle) < 2) {
        continue;
      }
      if (rs.cutovers + rs.pins == 0) {
        return Status::Internal("plan version advanced without a gated "
                                "cutover or pin");
      }
      if (cluster.HasDeltaCache(r.handle) &&
          cluster.DeltaStatsOf(r.handle).plan_flushes == 0) {
        return Status::Internal(
            "plan cutover left the delta cache keyed to the old plan");
      }
    }
    if (cfg.replan_out != nullptr) {
      cfg.replan_out->checks += rs.checks;
      cfg.replan_out->drift_triggers += rs.drift_triggers;
      cfg.replan_out->cutovers += rs.cutovers;
      cfg.replan_out->parity_failures += rs.parity_failures;
      cfg.replan_out->budget_overruns += rs.budget_overruns;
      cfg.replan_out->pins += rs.pins;
    }
  }

  if (cfg.migrate) {
    if (staged_active) {
      // The trace ended mid-transfer: drive the handoff to its conclusion
      // (commit or crash-rollback) and audit the final cutover.
      Status st = finish_staged();
      if (!st.ok()) {
        return st;
      }
      st = recheck_after_cutover();
      if (!st.ok()) {
        return st;
      }
    }
    if (mig_log_failed) {
      return Status::Internal("checkpoint-log append failed in the migration lane");
    }
    const Cluster::ReconfigStats& rs = cluster.reconfig_stats();
    if (rs.moves_started + rs.nodes_added + rs.drains_started == 0) {
      return Status::Internal("migration lane ran no live reconfiguration");
    }
    mig_log.reset();
    std::filesystem::remove(mig_log_path);
  }

  // Metrics-consistency sweep: the registry counters are incremented at the
  // event sites, independently of the logger, the oracle, and OverloadStats —
  // so these equalities are real cross-checks, not tautologies. Moot in a
  // -DWUKONGS_OBS=OFF build, where no event site can bump anything.
  if (!obs::kCompiledIn) {
    return Status::Ok();
  }
  auto counter = [&](const char* name) {
    return registry.GetCounter(name)->value();
  };
  auto expect_eq = [](uint64_t got, uint64_t want,
                      const char* what) -> Status {
    if (got != want) {
      return Status::Internal(std::string("metrics drift: ") + what +
                              ": registry " + std::to_string(got) +
                              " vs harness " + std::to_string(want));
    }
    return Status::Ok();
  };
  Status ms;
  ms = expect_eq(counter("wukongs_batches_injected_total"), logged_batches,
                 "injected batches vs batch-logger count");
  if (!ms.ok()) return ms;
  ms = expect_eq(counter("wukongs_tuples_injected_total"), logged_tuples,
                 "injected tuples vs oracle-fed fact count");
  if (!ms.ok()) return ms;
  ms = expect_eq(counter("wukongs_queries_oneshot_total"), ok_oneshots,
                 "one-shot query count");
  if (!ms.ok()) return ms;
  ms = expect_eq(counter("wukongs_queries_continuous_total"), ok_continuous,
                 "triggered continuous-execution count vs audited count");
  if (!ms.ok()) return ms;
  const OverloadStats os = cluster.overload_stats();
  ms = expect_eq(counter("wukongs_door_shed_tuples_total"), os.door_shed_tuples,
                 "door shed vs OverloadStats");
  if (!ms.ok()) return ms;
  ms = expect_eq(counter("wukongs_injector_shed_edges_total"),
                 os.injector_shed_edges, "injector shed vs OverloadStats");
  if (!ms.ok()) return ms;
  ms = expect_eq(counter("wukongs_timing_edges_lost_total"),
                 os.timing_edges_lost, "timing edges lost vs OverloadStats");
  if (!ms.ok()) return ms;
  ms = expect_eq(counter("wukongs_feed_rejections_total"), os.feed_rejections,
                 "feed rejections vs OverloadStats");
  if (!ms.ok()) return ms;
  return Status::Ok();
}

Status RunSeed(uint64_t seed) {
  return RunTrace(ConfigForSeed(seed), MakeTrace(seed));
}

// Greedy ddmin-style minimization: repeatedly drop any single event whose
// removal keeps the trace failing.
std::vector<Event> MinimizeTrace(const RunConfig& cfg, std::vector<Event> trace) {
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t i = 0; i < trace.size(); ++i) {
      std::vector<Event> candidate = trace;
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(i));
      if (!RunTrace(cfg, candidate).ok()) {
        trace = std::move(candidate);
        progress = true;
        break;
      }
    }
  }
  return trace;
}

// --- The main differential lane. ---

TEST(DifferentialTest, SeedsMatchOracle) {
  uint64_t seeds = 200;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    Status st = RunSeed(seed);
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\ntrace:\n" << SerializeTrace(MakeTrace(seed));
  }
}

// --- The migration lane (§5.10): live reconfiguration under fuzzing. ---
//
// Same differential contract as SeedsMatchOracle, plus: every seed performs
// at least one live reconfiguration (a staged shard move with real
// dual-apply, a node addition, a drain, or a migration-target crash with
// rollback) while the trace runs, and WindowDedup proves the epoch cutover
// neither loses, duplicates, nor changes any window result.
TEST(DifferentialTest, MigrationSeedsMatchOracle) {
  uint64_t seeds = 200;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RunConfig cfg = ConfigForSeed(seed);
    cfg.nodes = 3;  // Moves/drains need somewhere to go.
    cfg.migrate = true;
    Status st = RunTrace(cfg, MakeTrace(seed));
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\ntrace:\n" << SerializeTrace(MakeTrace(seed));
  }
}

// --- The columnar lane (§5.13): row-pipeline twin under fuzzing. ---
//
// Same traces, same seeds, two executors. The contract is strictly stronger
// than the oracle comparison: projected results must be byte-identical (rows
// in the same order with the same values), because the columnar executor
// guarantees the row pipeline's enumeration order — chunk by chunk, row by
// row, neighbors in adjacency order — so the fork-join serialization format
// and DeltaCache contribution keys stay unchanged.
TEST(ColumnarDifferentialTest, RowTwinMatchesColumnarAcrossSeeds) {
  uint64_t seeds = 200;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RunConfig cfg = ConfigForSeed(seed);
    cfg.row_twin = true;
    Status st = RunTrace(cfg, MakeTrace(seed));
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\ntrace:\n" << SerializeTrace(MakeTrace(seed));
  }
}

// --- The adaptive lane (§5.14): cost-based re-planning under fuzzing. ---
//
// Same differential contract as SeedsMatchOracle — oracle match, consistency
// audits, per-trigger delta/cold parity, metrics sweep — with re-planning
// armed on the primary, a statically-planned twin demanding bag equality on
// every delivery, a deterministic mid-run rate step per seed so drift
// genuinely fires, a zero-dup WindowDedup audit across cutovers, and the
// end-of-trace cutover audit (version bump ⇒ cache re-keyed + gated install).
// The aggregate counters prove the lane exercised the machinery rather than
// idling past it.
TEST(AdaptiveReplanDifferentialTest, SeedsMatchOracle) {
  uint64_t seeds = 200;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  Cluster::ReplanStats total;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    RunConfig cfg = ConfigForSeed(seed);
    cfg.adaptive = true;
    cfg.replan_out = &total;
    // Every fourth seed layers live reconfiguration on top: plan cutovers and
    // ownership-epoch cutovers interleave, and both audits must still hold.
    if (seed % 4 == 0) {
      cfg.nodes = 3;
      cfg.migrate = true;
    }
    Status st = RunTrace(cfg, MakeAdaptiveTrace(seed));
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString()
                         << "\ntrace:\n"
                         << SerializeTrace(MakeAdaptiveTrace(seed));
  }
  EXPECT_GT(total.checks, 0u) << "no trigger ever reached the drift detector";
  EXPECT_GT(total.drift_triggers, 0u)
      << "the rate step never registered as drift";
  EXPECT_GT(total.cutovers, 0u)
      << "no seed ever cut over to a re-synthesized plan";
}

TEST(DifferentialTest, TraceGenerationIsDeterministic) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    EXPECT_EQ(SerializeTrace(MakeTrace(seed)), SerializeTrace(MakeTrace(seed)));
    EXPECT_EQ(SerializeTrace(MakeAdaptiveTrace(seed)),
              SerializeTrace(MakeAdaptiveTrace(seed)));
  }
}

// --- Planted mutations: the harness must catch both defect classes. ---

uint64_t FirstFailingSeed(uint64_t max_seed) {
  for (uint64_t seed = 1; seed <= max_seed; ++seed) {
    if (!RunSeed(seed).ok()) {
      return seed;
    }
  }
  return 0;
}

TEST(DifferentialMutationTest, PlantedOffByOneWindowIsCaught) {
  test_hooks::ScopedMutation plant(&test_hooks::off_by_one_window);
  EXPECT_NE(FirstFailingSeed(20), 0u)
      << "off-by-one window boundary survived 20 differential seeds";
}

TEST(DifferentialMutationTest, PlantedStaleSnReadIsCaught) {
  test_hooks::ScopedMutation plant(&test_hooks::stale_sn_read);
  EXPECT_NE(FirstFailingSeed(20), 0u)
      << "stale Stable_SN read survived 20 differential seeds";
}

// First seed the *columnar* lane (row twin armed) fails on, or 0.
uint64_t FirstFailingTwinSeed(uint64_t max_seed) {
  for (uint64_t seed = 1; seed <= max_seed; ++seed) {
    RunConfig cfg = ConfigForSeed(seed);
    cfg.row_twin = true;
    if (!RunTrace(cfg, MakeTrace(seed)).ok()) {
      return seed;
    }
  }
  return 0;
}

// The two planted columnar defects (§5.13) must both be observable through
// the twin lane: a selection vector that is computed but never stored leaves
// FILTER-dropped rows active in the columnar result only, and an arena
// recycled while the DeltaCache still references its chunks corrupts cached
// contributions the row twin rebuilds correctly.
TEST(ColumnarDifferentialTest, PlantedSkipSelectionCompactIsCaught) {
  test_hooks::ScopedMutation plant(&test_hooks::skip_selection_compact);
  EXPECT_NE(FirstFailingTwinSeed(20), 0u)
      << "uncompacted selection vector survived 20 columnar twin seeds";
}

TEST(ColumnarDifferentialTest, PlantedStaleArenaReuseIsCaught) {
  test_hooks::ScopedMutation plant(&test_hooks::stale_arena_reuse);
  EXPECT_NE(FirstFailingTwinSeed(20), 0u)
      << "stale arena reuse survived 20 columnar twin seeds";
}

TEST(DifferentialMutationTest, FailingTraceMinimizesAndReplaysByteIdentically) {
  test_hooks::ScopedMutation plant(&test_hooks::off_by_one_window);
  uint64_t seed = FirstFailingSeed(20);
  ASSERT_NE(seed, 0u);
  RunConfig cfg = ConfigForSeed(seed);
  std::vector<Event> trace = MakeTrace(seed);
  Status original = RunTrace(cfg, trace);
  ASSERT_FALSE(original.ok());

  std::vector<Event> minimized = MinimizeTrace(cfg, trace);
  EXPECT_LE(minimized.size(), trace.size());
  Status first = RunTrace(cfg, minimized);
  Status second = RunTrace(cfg, minimized);
  ASSERT_FALSE(first.ok());
  // Byte-identical replay: same trace serialization, same failure, twice.
  EXPECT_EQ(first.ToString(), second.ToString());
  EXPECT_EQ(SerializeTrace(minimized), SerializeTrace(minimized));
  // The minimized trace still names the defect the seed found.
  EXPECT_FALSE(second.ok());
}

// --- Schedule controller semantics. ---

TEST(ScheduleControllerTest, PermutationPreservesPerStreamOrder) {
  ScheduleController schedule(7);
  std::vector<StreamBatch> batches;
  for (StreamId s = 0; s < 3; ++s) {
    for (BatchSeq b = 0; b < 5; ++b) {
      batches.push_back({s, b, {}});
    }
  }
  schedule.PermuteBatchOrder(&batches);
  ASSERT_EQ(batches.size(), 15u);
  std::vector<BatchSeq> next(3, 0);
  for (const StreamBatch& b : batches) {
    EXPECT_EQ(b.seq, next[b.stream]) << "stream " << b.stream;
    ++next[b.stream];
  }
  EXPECT_GT(schedule.decisions(), 0u);
}

TEST(ScheduleControllerTest, SameSeedSamePermutation) {
  auto permute = [](uint64_t seed) {
    ScheduleController schedule(seed);
    std::vector<StreamBatch> batches;
    for (StreamId s = 0; s < 4; ++s) {
      for (BatchSeq b = 0; b < 4; ++b) {
        batches.push_back({s, b, {}});
      }
    }
    schedule.PermuteBatchOrder(&batches);
    std::vector<std::pair<StreamId, BatchSeq>> order;
    for (const StreamBatch& b : batches) {
      order.emplace_back(b.stream, b.seq);
    }
    return order;
  };
  EXPECT_EQ(permute(11), permute(11));
  EXPECT_NE(permute(11), permute(12));  // 16 batches: collision ~ never.
}

TEST(ScheduleControllerTest, JitterAndPicksStayInRange) {
  ScheduleController schedule(3);
  for (int i = 0; i < 100; ++i) {
    auto j = schedule.MaintenanceJitter(std::chrono::milliseconds(50));
    EXPECT_GE(j.count(), 0);
    EXPECT_LE(j.count(), 50);
    size_t pick = schedule.PickIndex(7);
    EXPECT_LT(pick, 7u);
  }
  EXPECT_EQ(schedule.PickIndex(1), 0u);
}

// --- Shedding lane: "correct modulo declared loss". ---
//
// Overload is configured so only *door* shedding can fire (whole-tuple suffix
// drops; the transient budget stays unbounded so no asymmetric injector
// loss). The oracle is fed post-door-shed batches via the batch logger, so
// engine and oracle must still agree exactly, while the shed ledger accounts
// for every dropped tuple.
TEST(DifferentialShedTest, DoorShedResultsMatchOracleModuloDeclaredLoss) {
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = kInterval;
  config.batches_per_sn = 2;
  config.overload.enabled = true;
  config.overload.shed_timing = true;
  config.overload.max_plan_extensions = 1;
  config.overload.pending_queue_capacity = 16;
  config.overload.shed.start_pressure = 0.05;
  config.overload.shed.min_keep_fraction = 0.0;
  obs::MetricsRegistry registry;
  config.metrics = &registry;
  Cluster cluster(config);
  StringServer* strings = cluster.strings();
  StreamId s0 = *cluster.DefineStream("S0", {"tg"});
  ASSERT_TRUE(cluster.DefineStream("S1").ok());

  ReferenceOracle oracle(strings, kInterval, config.batches_per_sn);
  oracle.DefineStream("S0");
  oracle.DefineStream("S1");
  cluster.SetBatchLogger([&oracle](const StreamBatch& b) {
    oracle.AddBatch(b.stream, b.seq, b.tuples);
  });

  // S0 runs 8 batches ahead while S1 is silent: Stable_SN stalls, the plan
  // cap parks S0 batches at the door, occupancy drives the shed policy.
  StreamTupleVec burst;
  for (BatchSeq b = 0; b < 8; ++b) {
    for (int i = 0; i < 6; ++i) {
      burst.push_back({{strings->InternVertex("e" + std::to_string(i)),
                        strings->InternPredicate("tg"),
                        strings->InternVertex(std::to_string(i))},
                       b * kInterval + 10 + static_cast<StreamTime>(i),
                       TupleKind::kTimeless});
    }
  }
  ASSERT_TRUE(cluster.FeedStream(s0, burst).ok());
  cluster.AdvanceStreams(9 * kInterval);  // S1 empty batches release the SNs.

  const OverloadStats stats = cluster.overload_stats();
  ASSERT_GT(stats.door_shed_tuples, 0u) << "lane failed to provoke door shedding";
  EXPECT_EQ(stats.injector_shed_edges, 0u) << "injector loss would be asymmetric";
  EXPECT_EQ(stats.timing_edges_lost, 0u);

  // Ledger audit: per-batch records cover exactly the global counter, and no
  // batch sheds more than it admitted.
  uint64_t ledger_shed = 0;
  for (BatchSeq b = 0; b < 9; ++b) {
    Cluster::ShedInfo info = cluster.ShedInfoFor(s0, b);
    EXPECT_LE(info.door_shed_tuples, info.timing_tuples) << "batch " << b;
    ledger_shed += info.door_shed_tuples;
  }
  EXPECT_EQ(ledger_shed, stats.door_shed_tuples);
  // Registry counters are bumped at the shed sites themselves; they must
  // agree with both the OverloadStats mirror and the per-batch ledger
  // (unless the obs layer was compiled out entirely).
  if (obs::kCompiledIn) {
    EXPECT_EQ(registry.GetCounter("wukongs_door_shed_tuples_total")->value(),
              stats.door_shed_tuples);
    EXPECT_EQ(registry.GetCounter("wukongs_injector_shed_edges_total")->value(),
              0u);
    EXPECT_EQ(registry.GetCounter("wukongs_timing_edges_lost_total")->value(),
              0u);
  }

  // Differential check over the shed window: the oracle saw post-shed
  // batches, so results agree exactly — correct modulo declared loss.
  auto handle = cluster.RegisterContinuous(
      "REGISTER QUERY shed AS SELECT ?X ?G FROM STREAM <S0> "
      "[RANGE 400ms STEP 100ms] WHERE { GRAPH <S0> { ?X tg ?G } }");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const StreamTime end = 8 * kInterval;
  ASSERT_TRUE(cluster.WindowReady(*handle, end));
  VectorTimestamp stable = cluster.coordinator()->StableVts();
  auto exec = cluster.ExecuteContinuousAt(*handle, end);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  SnapshotChecker checker(config.batches_per_sn);
  SnapshotNum sn = checker.RecomputeStableSn(stable, 2);
  auto want = oracle.Evaluate(cluster.ContinuousQueryOf(*handle), sn, stable, end);
  ASSERT_TRUE(want.ok()) << want.status().ToString();
  EXPECT_EQ(CanonicalBag(exec->result), CanonicalBag(*want));
  EXPECT_GT(exec->shed_fraction, 0.0);  // The loss is declared, not hidden.

  // The absolute loss count must equal the ledger-derived truth for exactly
  // the window's batches ([RANGE 400ms] ending at 800ms = batches 4..7), in
  // edge units (1 door tuple = 2 dispatched edges).
  uint64_t window_total = 0;
  uint64_t window_lost = 0;
  for (BatchSeq b = 4; b <= 7; ++b) {
    Cluster::ShedInfo info = cluster.ShedInfoFor(s0, b);
    window_total += 2 * info.timing_tuples;
    window_lost += 2 * info.door_shed_tuples + info.injector_lost_edges;
  }
  EXPECT_EQ(exec->timing_edges_lost, window_lost);
  ASSERT_GT(window_total, 0u);
  EXPECT_DOUBLE_EQ(exec->shed_fraction,
                   static_cast<double>(window_lost) /
                       static_cast<double>(window_total));
}

// The fork-join merge path must thread the loss accounting through to the
// client exactly like the in-place path: a UNION query (which always takes
// ExecuteUnion's merge step) over the same shed window reports the same
// shed_fraction and timing_edges_lost as the single-branch execution above.
TEST(DifferentialShedTest, ForkJoinMergeThreadsLossAccounting) {
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = kInterval;
  config.batches_per_sn = 2;
  config.force_fork_join = true;  // Every branch takes the merge path.
  config.overload.enabled = true;
  config.overload.shed_timing = true;
  config.overload.max_plan_extensions = 1;
  config.overload.pending_queue_capacity = 16;
  config.overload.shed.start_pressure = 0.05;
  config.overload.shed.min_keep_fraction = 0.0;
  Cluster cluster(config);
  StringServer* strings = cluster.strings();
  StreamId s0 = *cluster.DefineStream("S0", {"tg"});
  ASSERT_TRUE(cluster.DefineStream("S1").ok());

  StreamTupleVec burst;
  for (BatchSeq b = 0; b < 8; ++b) {
    for (int i = 0; i < 6; ++i) {
      burst.push_back({{strings->InternVertex("e" + std::to_string(i)),
                        strings->InternPredicate("tg"),
                        strings->InternVertex(std::to_string(i))},
                       b * kInterval + 10 + static_cast<StreamTime>(i),
                       TupleKind::kTimeless});
    }
  }
  ASSERT_TRUE(cluster.FeedStream(s0, burst).ok());
  cluster.AdvanceStreams(9 * kInterval);
  ASSERT_GT(cluster.overload_stats().door_shed_tuples, 0u);

  auto handle = cluster.RegisterContinuous(
      "REGISTER QUERY shedu AS SELECT ?X ?G FROM STREAM <S0> "
      "[RANGE 400ms STEP 100ms] WHERE { { GRAPH <S0> { ?X tg ?G } } UNION "
      "{ GRAPH <S0> { ?X tg ?G } } }");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  const StreamTime end = 8 * kInterval;
  ASSERT_TRUE(cluster.WindowReady(*handle, end));
  auto exec = cluster.ExecuteContinuousAt(*handle, end);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  uint64_t window_total = 0;
  uint64_t window_lost = 0;
  for (BatchSeq b = 4; b <= 7; ++b) {
    Cluster::ShedInfo info = cluster.ShedInfoFor(s0, b);
    window_total += 2 * info.timing_tuples;
    window_lost += 2 * info.door_shed_tuples + info.injector_lost_edges;
  }
  ASSERT_GT(window_lost, 0u);
  EXPECT_EQ(exec->timing_edges_lost, window_lost)
      << "fork-join merge dropped the loss accounting";
  EXPECT_DOUBLE_EQ(exec->shed_fraction,
                   static_cast<double>(window_lost) /
                       static_cast<double>(window_total));
}

// --- Threaded lane: the controller's hooks under real concurrency. ---
//
// Exercises MaintenanceDaemon jitter and WorkerPool dequeue picking with a
// live schedule controller while queries run; primarily a TSan target (the
// CI matrix builds this binary with -fsanitize=thread).
TEST(DifferentialThreadedTest, ScheduleControllerUnderConcurrency) {
  ScheduleController schedule(99);
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = kInterval;
  config.schedule = &schedule;
  Cluster cluster(config);
  StringServer* strings = cluster.strings();
  StreamId s0 = *cluster.DefineStream("S0");
  std::vector<Triple> base;
  for (int i = 0; i < 50; ++i) {
    base.push_back({strings->InternVertex("e" + std::to_string(i % 8)),
                    strings->InternPredicate("p0"),
                    strings->InternVertex("e" + std::to_string((i + 1) % 8))});
  }
  cluster.LoadBase(base);

  MaintenanceDaemon daemon(
      &cluster, [] { return StreamTime{0}; }, std::chrono::milliseconds(2),
      &schedule);
  WorkerPool pool(&cluster, 3, &schedule);
  std::vector<std::future<StatusOr<QueryExecution>>> futures;
  for (int i = 0; i < 24; ++i) {
    auto q = ParseQuery("SELECT ?X ?Y WHERE { ?X p0 ?Y }", strings);
    ASSERT_TRUE(q.ok());
    futures.push_back(pool.SubmitOneShot(*q));
    if (i % 6 == 0) {
      StreamTupleVec tuples = {{{strings->InternVertex("e1"),
                                 strings->InternPredicate("p0"),
                                 strings->InternVertex("e2")},
                                static_cast<StreamTime>(i / 6) * kInterval + 5,
                                TupleKind::kTimeless}};
      ASSERT_TRUE(cluster.FeedStream(s0, tuples).ok());
    }
    if (i % 8 == 0) {
      daemon.Kick();
    }
  }
  pool.Drain();
  for (auto& f : futures) {
    auto exec = f.get();
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    // Concurrent feeds advance the snapshot mid-run, so later one-shots may
    // also see the injected p0 edges (up to 4 of them) on top of the base 50.
    EXPECT_GE(exec->result.rows.size(), 50u);
    EXPECT_LE(exec->result.rows.size(), 54u);
  }
  EXPECT_EQ(pool.executed(), 24u);
  EXPECT_GT(schedule.decisions(), 0u);
}

}  // namespace
}  // namespace wukongs::testkit
