// Unit tests for the SPARQL / C-SPARQL parser.

#include <gtest/gtest.h>

#include "src/sparql/parser.h"

namespace wukongs {
namespace {

TEST(ParserTest, OneShotQueryFromPaper) {
  // Paper Fig. 2(a).
  StringServer s;
  auto q = ParseQuery(R"(
      SELECT ?X
      FROM X-Lab
      WHERE {
        Logan po ?X .
        ?X ht #sosp17 .
        Erik li ?X
      })",
                      &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_FALSE(q->continuous);
  EXPECT_EQ(q->select.size(), 1u);
  EXPECT_EQ(q->patterns.size(), 3u);
  EXPECT_TRUE(q->windows.empty());
  // All three patterns hit the stored graph.
  for (const TriplePattern& p : q->patterns) {
    EXPECT_EQ(p.graph, kGraphStored);
  }
  // Logan and Erik were interned as constants.
  EXPECT_TRUE(s.FindVertex("Logan").has_value());
  EXPECT_TRUE(s.FindVertex("#sosp17").has_value());
  EXPECT_TRUE(s.FindPredicate("po").has_value());
}

TEST(ParserTest, ContinuousQueryFromPaper) {
  // Paper Fig. 2(b).
  StringServer s;
  auto q = ParseQuery(R"(
      REGISTER QUERY QC AS
      SELECT ?X ?Y ?Z
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
      FROM <X-Lab>
      WHERE {
        GRAPH <Tweet_Stream> { ?X po ?Z }
        GRAPH <X-Lab>        { ?X fo ?Y }
        GRAPH <Like_Stream>  { ?Y li ?Z }
      })",
                      &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->continuous);
  EXPECT_EQ(q->name, "QC");
  ASSERT_EQ(q->windows.size(), 2u);
  EXPECT_EQ(q->windows[0].stream_name, "Tweet_Stream");
  EXPECT_EQ(q->windows[0].range_ms, 10000u);
  EXPECT_EQ(q->windows[0].step_ms, 1000u);
  EXPECT_EQ(q->windows[1].range_ms, 5000u);
  ASSERT_EQ(q->patterns.size(), 3u);
  EXPECT_EQ(q->patterns[0].graph, 0);  // Tweet_Stream window.
  EXPECT_EQ(q->patterns[1].graph, kGraphStored);
  EXPECT_EQ(q->patterns[2].graph, 1);  // Like_Stream window.
  EXPECT_EQ(q->MaxRangeMs(), 10000u);
}

TEST(ParserTest, SharedVariablesGetSameSlot) {
  StringServer s;
  auto q = ParseQuery("SELECT ?X WHERE { ?X a ?Y . ?Y b ?X }", &s);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->var_names.size(), 2u);
  EXPECT_EQ(q->patterns[0].subject.var, q->patterns[1].object.var);
}

TEST(ParserTest, MillisecondWindows) {
  StringServer s;
  auto q = ParseQuery(
      "REGISTER QUERY q AS SELECT ?X FROM STREAM S1 [RANGE 100ms STEP 100ms] "
      "WHERE { GRAPH S1 { ?X p c } }",
      &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->windows[0].range_ms, 100u);
  EXPECT_EQ(q->windows[0].step_ms, 100u);
}

TEST(ParserTest, FilterNumeric) {
  StringServer s;
  auto q = ParseQuery("SELECT ?X WHERE { ?X level ?L . FILTER (?L > 30) }", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 1u);
  EXPECT_TRUE(q->filters[0].numeric);
  EXPECT_EQ(q->filters[0].op, FilterExpr::Op::kGt);
  EXPECT_DOUBLE_EQ(q->filters[0].number, 30.0);
}

TEST(ParserTest, FilterEquality) {
  StringServer s;
  auto q = ParseQuery("SELECT ?X WHERE { ?X ty ?T . FILTER (?T = Post) }", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->filters.size(), 1u);
  EXPECT_FALSE(q->filters[0].numeric);
  EXPECT_EQ(q->filters[0].constant, *s.FindVertex("Post"));
}

TEST(ParserTest, Aggregates) {
  StringServer s;
  auto q = ParseQuery(
      "SELECT ?S (AVG(?V) AS ?avg) WHERE { ?S val ?V } GROUP BY ?S", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->select.size(), 2u);
  EXPECT_EQ(q->select[0].agg, AggKind::kNone);
  EXPECT_EQ(q->select[1].agg, AggKind::kAvg);
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_TRUE(q->has_aggregates());
}

TEST(ParserTest, CountWithoutGroupBy) {
  StringServer s;
  auto q = ParseQuery("SELECT COUNT(?X) WHERE { ?X po ?Y }", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->select[0].agg, AggKind::kCount);
  EXPECT_TRUE(q->group_by.empty());
}

TEST(ParserTest, RejectsEmptySelect) {
  StringServer s;
  EXPECT_FALSE(ParseQuery("SELECT WHERE { ?X a b }", &s).ok());
}

TEST(ParserTest, RejectsUnterminatedBrace) {
  StringServer s;
  EXPECT_FALSE(ParseQuery("SELECT ?X WHERE { ?X a b", &s).ok());
}

TEST(ParserTest, RejectsUnusedSelectVariable) {
  StringServer s;
  EXPECT_FALSE(ParseQuery("SELECT ?Z WHERE { ?X a b }", &s).ok());
}

TEST(ParserTest, RejectsContinuousWithoutStreams) {
  StringServer s;
  EXPECT_FALSE(
      ParseQuery("REGISTER QUERY q AS SELECT ?X WHERE { ?X a b }", &s).ok());
}

TEST(ParserTest, RejectsTrailingGarbage) {
  StringServer s;
  EXPECT_FALSE(ParseQuery("SELECT ?X WHERE { ?X a b } garbage {", &s).ok());
}

TEST(ParserTest, GraphClauseWithUnknownNameIsStoredGraph) {
  StringServer s;
  auto q = ParseQuery("SELECT ?X WHERE { GRAPH <X-Lab> { ?X a b } }", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->patterns[0].graph, kGraphStored);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  StringServer s;
  auto q = ParseQuery("select ?X where { ?X a b }", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
}

TEST(ParserTest, ConstantsWithSpecialCharacters) {
  StringServer s;
  auto q = ParseQuery("SELECT ?X WHERE { ?X ga 31,121 . T-15 ht #sosp17 }", &s);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(s.FindVertex("31,121").has_value());
  EXPECT_TRUE(s.FindVertex("T-15").has_value());
}

}  // namespace
}  // namespace wukongs
