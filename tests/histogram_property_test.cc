// Property tests for the HDR-style BucketHistogram (DESIGN.md §5.8): exact
// merge algebra (associative, commutative, order-independent), quantile
// monotonicity, the advertised relative-error bound, and overflow handling.
// These are the properties the cluster-wide metrics merge and the bench
// artifacts rely on, so they are checked over seeded random inputs, not
// hand-picked examples.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "src/common/histogram.h"

namespace wukongs {
namespace {

std::vector<double> RandomSamples(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  // Log-uniform across most of the tracked range, the hostile case for
  // bucketing schemes (every octave gets traffic).
  std::uniform_real_distribution<double> exponent(-15.0, 28.0);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::ldexp(1.0 + 0.7 * std::generate_canonical<double, 53>(rng),
                             static_cast<int>(exponent(rng))));
  }
  return out;
}

// Integer-valued samples with log-uniform magnitude (some past the tracked
// range, exercising overflow). Integer sums stay exact in a double, so the
// merge-algebra assertions can demand bitwise equality on `sum` instead of
// tolerating float reassociation noise.
std::vector<double> RandomIntSamples(uint64_t seed, size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> exponent(0, 35);
  std::vector<double> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double v = std::floor(
        std::ldexp(1.0 + 0.9 * std::generate_canonical<double, 53>(rng),
                   exponent(rng)));
    out.push_back(std::max(v, 1.0));
  }
  return out;
}

BucketHistogram FromSamples(const std::vector<double>& samples) {
  BucketHistogram h;
  for (double v : samples) {
    h.Add(v);
  }
  return h;
}

BucketHistogram MergeOf(const BucketHistogram& a, const BucketHistogram& b) {
  BucketHistogram out = a;
  out.Merge(b);
  return out;
}

TEST(BucketHistogramPropertyTest, MergeIsAssociativeAndCommutative) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    std::vector<double> samples = RandomIntSamples(seed, 300);
    BucketHistogram a = FromSamples({samples.begin(), samples.begin() + 100});
    BucketHistogram b = FromSamples({samples.begin() + 100, samples.begin() + 200});
    BucketHistogram c = FromSamples({samples.begin() + 200, samples.end()});

    BucketHistogram left = MergeOf(MergeOf(a, b), c);
    BucketHistogram right = MergeOf(a, MergeOf(b, c));
    EXPECT_EQ(left, right) << "seed " << seed;
    EXPECT_EQ(left.Encode(), right.Encode()) << "seed " << seed;

    BucketHistogram ab = MergeOf(a, b);
    BucketHistogram ba = MergeOf(b, a);
    EXPECT_EQ(ab, ba) << "seed " << seed;
    EXPECT_EQ(ab.Encode(), ba.Encode()) << "seed " << seed;
  }
}

TEST(BucketHistogramPropertyTest, MergeEqualsSingleFeedInAnyOrder) {
  for (uint64_t seed = 21; seed <= 30; ++seed) {
    std::vector<double> samples = RandomIntSamples(seed, 256);
    BucketHistogram whole = FromSamples(samples);

    std::vector<double> shuffled = samples;
    std::mt19937_64 rng(seed ^ 0xfeedULL);
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    BucketHistogram parts;
    for (size_t i = 0; i < shuffled.size(); i += 64) {
      size_t hi = std::min(shuffled.size(), i + 64);
      parts.Merge(FromSamples({shuffled.begin() + static_cast<ptrdiff_t>(i),
                               shuffled.begin() + static_cast<ptrdiff_t>(hi)}));
    }
    EXPECT_EQ(whole.count(), parts.count());
    EXPECT_EQ(whole.Encode(), parts.Encode()) << "seed " << seed;
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
      EXPECT_DOUBLE_EQ(whole.Percentile(p), parts.Percentile(p))
          << "seed " << seed << " p" << p;
    }
  }
}

TEST(BucketHistogramPropertyTest, QuantilesAreMonotone) {
  for (uint64_t seed = 31; seed <= 45; ++seed) {
    BucketHistogram h = FromSamples(RandomSamples(seed, 500));
    double prev = 0.0;
    for (double p = 0.0; p <= 100.0; p += 0.5) {
      double q = h.Percentile(p);
      EXPECT_GE(q, prev) << "seed " << seed << ": quantiles regressed at p" << p;
      prev = q;
    }
    EXPECT_DOUBLE_EQ(h.Percentile(100.0), h.Max());
  }
}

TEST(BucketHistogramPropertyTest, RelativeErrorIsBounded) {
  const double bound = BucketHistogram::MaxRelativeError();
  for (uint64_t seed = 46; seed <= 55; ++seed) {
    std::vector<double> samples = RandomSamples(seed, 200);
    // Per-value bound: a histogram of one sample must report it within the
    // advertised error at every quantile.
    for (size_t i = 0; i < samples.size(); i += 17) {
      BucketHistogram single;
      single.Add(samples[i]);
      for (double p : {1.0, 50.0, 99.0}) {
        EXPECT_NEAR(single.Percentile(p), samples[i], samples[i] * bound)
            << "seed " << seed << " value " << samples[i];
      }
    }
    // Aggregate bound: each estimated quantile is within the bound of the
    // exact nearest-rank quantile of the raw samples.
    BucketHistogram h = FromSamples(samples);
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {5.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
      size_t rank = static_cast<size_t>(
          std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
      rank = std::max<size_t>(rank, 1);
      double exact = sorted[rank - 1];
      EXPECT_NEAR(h.Percentile(p), exact, exact * bound)
          << "seed " << seed << " p" << p;
    }
  }
}

TEST(BucketHistogramPropertyTest, OverflowBucketTracksExactMax) {
  BucketHistogram h;
  h.Add(1.0);
  h.Add(2.5);
  EXPECT_EQ(h.overflow_count(), 0u);
  const double huge = BucketHistogram::MaxTracked() * 1000.0;
  h.Add(huge);
  h.Add(huge * 2.0);
  EXPECT_EQ(h.overflow_count(), 2u);
  EXPECT_EQ(h.count(), 4u);
  // The overflow bucket's representative is the exact running max, so the
  // top quantiles stay truthful even off the tracked range.
  EXPECT_DOUBLE_EQ(h.Max(), huge * 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100.0), huge * 2.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99.0), huge * 2.0);
  // Merging overflow histograms keeps counts and the max exact.
  BucketHistogram other;
  other.Add(huge * 4.0);
  h.Merge(other);
  EXPECT_EQ(h.overflow_count(), 3u);
  EXPECT_DOUBLE_EQ(h.Max(), huge * 4.0);
}

TEST(BucketHistogramPropertyTest, MergePreservesCountSumMax) {
  for (uint64_t seed = 56; seed <= 65; ++seed) {
    std::vector<double> samples = RandomIntSamples(seed, 128);
    BucketHistogram a = FromSamples({samples.begin(), samples.begin() + 64});
    BucketHistogram b = FromSamples({samples.begin() + 64, samples.end()});
    BucketHistogram merged = MergeOf(a, b);
    EXPECT_EQ(merged.count(), a.count() + b.count());
    EXPECT_DOUBLE_EQ(merged.Sum(), a.Sum() + b.Sum());
    EXPECT_DOUBLE_EQ(merged.Max(), std::max(a.Max(), b.Max()));
  }
}

TEST(BucketHistogramPropertyTest, BelowRangeClampsToMinTracked) {
  BucketHistogram h;
  h.Add(BucketHistogram::MinTracked() / 100.0);
  h.Add(0.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.overflow_count(), 0u);
  EXPECT_LE(h.Percentile(50.0), BucketHistogram::MinTracked());
}

}  // namespace
}  // namespace wukongs
