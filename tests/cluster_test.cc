// Integration tests: the full Wukong+S data path on the paper's running
// example (Figs. 1-2) — hybrid store, stream index, VTS trigger, snapshot
// scalarization, one-shot/continuous coexistence, RDMA vs TCP modes.

#include <gtest/gtest.h>

#include <set>

#include "src/cluster/cluster.h"

namespace wukongs {
namespace {

constexpr char kQc[] = R"(
    REGISTER QUERY QC AS
    SELECT ?X ?Y ?Z
    FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
    FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
    FROM <X-Lab>
    WHERE {
      GRAPH <Tweet_Stream> { ?X po ?Z }
      GRAPH <X-Lab>        { ?X fo ?Y }
      GRAPH <Like_Stream>  { ?Y li ?Z }
    })";

constexpr char kQs[] =
    "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }";

class ClusterTest : public ::testing::Test {
 protected:
  void Init(uint32_t nodes, uint64_t interval_ms = 1000) {
    ClusterConfig config;
    config.nodes = nodes;
    config.batch_interval_ms = interval_ms;
    cluster_ = std::make_unique<Cluster>(config);

    tweet_ = *cluster_->DefineStream("Tweet_Stream", {"ga"});
    like_ = *cluster_->DefineStream("Like_Stream");

    // Initially stored data (paper Fig. 1, X-Lab).
    StringServer* s = cluster_->strings();
    auto triple = [&](const char* su, const char* p, const char* o) {
      return Triple{s->InternVertex(su), s->InternPredicate(p),
                    s->InternVertex(o)};
    };
    std::vector<Triple> base = {
        triple("Logan", "fo", "Erik"),   triple("Erik", "fo", "Logan"),
        triple("Logan", "po", "T-13"),   triple("Logan", "po", "T-14"),
        triple("Erik", "po", "T-12"),    triple("T-12", "ht", "#sosp17"),
        triple("T-13", "ht", "#sosp17"), triple("Erik", "li", "T-13"),
        triple("Logan", "li", "T-12"),
    };
    cluster_->LoadBase(base);
  }

  StreamTuple Tuple(const char* su, const char* p, const char* o, StreamTime ts) {
    StringServer* s = cluster_->strings();
    return StreamTuple{{s->InternVertex(su), s->InternPredicate(p),
                        s->InternVertex(o)},
                       ts,
                       TupleKind::kTimeless};
  }

  // Feeds the paper's Fig. 1 stream sample; "0802" -> t=2000ms etc.
  void FeedPaperStreams() {
    ASSERT_TRUE(cluster_
                    ->FeedStream(tweet_, {Tuple("Logan", "po", "T-15", 2000),
                                          Tuple("T-15", "ga", "31,121", 2000),
                                          Tuple("T-15", "ht", "#sosp17", 2000),
                                          Tuple("Erik", "po", "T-16", 5000),
                                          Tuple("T-16", "ga", "41,-74", 5000),
                                          Tuple("Logan", "po", "T-17", 8000),
                                          Tuple("T-17", "ga", "31,121", 8000)})
                    .ok());
    ASSERT_TRUE(cluster_
                    ->FeedStream(like_, {Tuple("Erik", "li", "T-15", 6000),
                                         Tuple("Tony", "li", "T-15", 6000),
                                         Tuple("Bruce", "li", "T-15", 6000)})
                    .ok());
    cluster_->AdvanceStreams(10000);
  }

  std::string Name(const ResultValue& v) {
    return *cluster_->strings()->VertexString(v.vid);
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId tweet_ = 0;
  StreamId like_ = 0;
};

TEST_F(ClusterTest, OneShotOnStoredDataOnly) {
  Init(2);
  auto exec = cluster_->OneShot(kQs);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 1u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "T-13");
  EXPECT_GT(exec->latency_ms(), 0.0);
}

TEST_F(ClusterTest, ContinuousQueryPaperExample) {
  Init(2);
  auto handle = cluster_->RegisterContinuous(kQc);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  FeedPaperStreams();

  ASSERT_TRUE(cluster_->WindowReady(*handle, 10000));
  auto exec = cluster_->ExecuteContinuousAt(*handle, 10000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // Paper: "the first execution result at 0810 includes Logan Erik T-15".
  ASSERT_EQ(exec->result.rows.size(), 1u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "Logan");
  EXPECT_EQ(Name(exec->result.rows[0][1]), "Erik");
  EXPECT_EQ(Name(exec->result.rows[0][2]), "T-15");
}

TEST_F(ClusterTest, TriggerWaitsForAllNodes) {
  Init(2);
  auto handle = cluster_->RegisterContinuous(kQc);
  ASSERT_TRUE(handle.ok());
  // No data fed: windows cannot be ready.
  EXPECT_FALSE(cluster_->WindowReady(*handle, 10000));
  auto exec = cluster_->ExecuteContinuousAt(*handle, 10000);
  EXPECT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClusterTest, WindowSlidesExcludeExpiredData) {
  Init(2);
  auto handle = cluster_->RegisterContinuous(kQc);
  ASSERT_TRUE(handle.ok());
  FeedPaperStreams();
  cluster_->AdvanceStreams(13000);

  // At 0813 the like window is (0808, 0813]: Erik's like at 0806 expired.
  auto exec = cluster_->ExecuteContinuousAt(*handle, 13000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->result.rows.empty());
}

TEST_F(ClusterTest, TimelessDataBecomesVisibleToOneShot) {
  Init(2);
  FeedPaperStreams();
  // T-15 (from the stream) now matches QS alongside the stored T-13.
  auto exec = cluster_->OneShot(kQs);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  std::set<std::string> results;
  for (const auto& row : exec->result.rows) {
    results.insert(Name(row[0]));
  }
  EXPECT_EQ(results, (std::set<std::string>{"T-13", "T-15"}));
}

TEST_F(ClusterTest, TimingDataStaysOutOfPersistentStore) {
  Init(2);
  FeedPaperStreams();
  // GPS (ga) is timing data: invisible to one-shot queries.
  auto exec = cluster_->OneShot("SELECT ?X WHERE { T-15 ga ?X }");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->result.rows.empty());
}

TEST_F(ClusterTest, TimingDataVisibleInWindows) {
  Init(2);
  auto handle = cluster_->RegisterContinuous(R"(
      REGISTER QUERY gps AS
      SELECT ?X ?G
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      WHERE { GRAPH <Tweet_Stream> { ?X ga ?G } })");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  FeedPaperStreams();
  auto exec = cluster_->ExecuteContinuousAt(*handle, 10000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), 3u);  // T-15, T-16, T-17 positions.
}

TEST_F(ClusterTest, OneShotRejectsStreamQueries) {
  Init(1);
  auto exec = cluster_->OneShot(kQc);
  EXPECT_FALSE(exec.ok());
}

TEST_F(ClusterTest, RegisterRejectsUnknownStream) {
  Init(1);
  auto handle = cluster_->RegisterContinuous(R"(
      REGISTER QUERY q AS
      SELECT ?X
      FROM STREAM <Nope_Stream> [RANGE 1s STEP 1s]
      WHERE { GRAPH <Nope_Stream> { ?X po ?Y } })");
  EXPECT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kNotFound);
}

TEST_F(ClusterTest, SnapshotIsolationHidesInflightBatches) {
  Init(2);
  FeedPaperStreams();
  SnapshotNum sn_before = cluster_->coordinator()->StableSn();
  EXPECT_GT(sn_before, 0u);

  // Read the store at the stable snapshot, then inject more data; a reader
  // at the old snapshot must not see the new appends.
  VertexId logan = *cluster_->strings()->FindVertex("Logan");
  PredicateId po = *cluster_->strings()->FindPredicate("po");
  Key k(logan, po, Dir::kOut);
  GStore* shard = cluster_->store(cluster_->OwnerOf(logan));
  size_t visible_before = shard->EdgeCount(k, sn_before);

  ASSERT_TRUE(
      cluster_->FeedStream(tweet_, {Tuple("Logan", "po", "T-99", 10500)}).ok());
  cluster_->AdvanceStreams(11000);

  EXPECT_EQ(shard->EdgeCount(k, sn_before), visible_before);
  SnapshotNum sn_after = cluster_->coordinator()->StableSn();
  EXPECT_GT(sn_after, sn_before);
  EXPECT_EQ(shard->EdgeCount(k, sn_after), visible_before + 1);
}

TEST_F(ClusterTest, ResultsIdenticalAcrossNodeCounts) {
  for (uint32_t nodes : {1u, 3u, 8u}) {
    Init(nodes);
    auto handle = cluster_->RegisterContinuous(kQc);
    ASSERT_TRUE(handle.ok());
    FeedPaperStreams();
    auto exec = cluster_->ExecuteContinuousAt(*handle, 10000);
    ASSERT_TRUE(exec.ok()) << "nodes=" << nodes;
    ASSERT_EQ(exec->result.rows.size(), 1u) << "nodes=" << nodes;
    EXPECT_EQ(Name(exec->result.rows[0][2]), "T-15");
  }
}

TEST_F(ClusterTest, TcpModeIsSlowForDistributedQueries) {
  // Non-selective query over 8 nodes: the TCP (fork-join) configuration must
  // model higher latency than RDMA (paper Table 5 direction).
  auto run = [&](Transport transport, bool force_fork_join) {
    ClusterConfig config;
    config.nodes = 8;
    config.batch_interval_ms = 1000;
    config.transport = transport;
    config.force_fork_join = force_fork_join;
    Cluster cluster(config);
    StringServer* s = cluster.strings();
    std::vector<Triple> base;
    for (int i = 0; i < 2000; ++i) {
      base.push_back({s->InternVertex("u" + std::to_string(i)),
                      s->InternPredicate("po"),
                      s->InternVertex("t" + std::to_string(i))});
    }
    cluster.LoadBase(base);
    auto exec = cluster.OneShot("SELECT ?X ?Y WHERE { ?X po ?Y }");
    EXPECT_TRUE(exec.ok());
    EXPECT_EQ(exec->result.rows.size(), 2000u);
    EXPECT_TRUE(exec->fork_join);
    return exec->net_ms;
  };
  double rdma_net = run(Transport::kRdma, false);
  double tcp_net = run(Transport::kTcp, true);
  EXPECT_GT(tcp_net, rdma_net);
}

TEST_F(ClusterTest, MaintenanceEvictsExpiredState) {
  Init(2);
  auto handle = cluster_->RegisterContinuous(kQc);
  ASSERT_TRUE(handle.ok());
  FeedPaperStreams();
  cluster_->AdvanceStreams(20000);

  auto before = cluster_->Memory();
  // Nothing needs batches before t=10s (max range is 10s, now=20s).
  cluster_->RunMaintenance(10000);
  auto after = cluster_->Memory();
  EXPECT_LE(after.stream_index_bytes, before.stream_index_bytes);
  EXPECT_LE(after.transient_bytes, before.transient_bytes);
  EXPECT_LT(after.transient_bytes, before.transient_bytes);
}

TEST_F(ClusterTest, InjectionProfileAccumulates) {
  Init(2);
  FeedPaperStreams();
  auto profile = cluster_->injection_profile(tweet_);
  EXPECT_EQ(profile.tuples, 7u);
  EXPECT_EQ(profile.batches, 10u);  // Batches 0..9.
  EXPECT_GT(profile.inject_ms, 0.0);
  EXPECT_GT(profile.index_ms, 0.0);
}

TEST_F(ClusterTest, MemoryReportCountsStreamState) {
  Init(2);
  auto handle = cluster_->RegisterContinuous(kQc);
  ASSERT_TRUE(handle.ok());
  FeedPaperStreams();
  auto mem = cluster_->Memory();
  EXPECT_GT(mem.store_bytes, 0u);
  EXPECT_GT(mem.stream_index_bytes, 0u);
  EXPECT_GT(mem.transient_bytes, 0u);
  EXPECT_GT(mem.stream_appended_edges, 0u);
  EXPECT_GE(mem.stream_index_replicas, 2u);  // QC subscribes two streams.
}

}  // namespace
}  // namespace wukongs
