// Unit tests for the continuous persistent store: key/value layout, index
// vertices, snapshot-segmented values and bounded collapse (paper Fig. 6/11).

#include <gtest/gtest.h>

#include <thread>

#include "src/store/gstore.h"

namespace wukongs {
namespace {

constexpr PredicateId kPo = 4;  // "post", matching paper Fig. 6 ids.
constexpr SnapshotNum kInf = GStore::kSnapshotInfinity;

TEST(GStoreTest, LoadAndLookupBothDirections) {
  GStore store(0);
  // Fig. 6: Logan(1) po(4) T-13(5), T-14(6).
  store.LoadTriple({1, kPo, 5});
  store.LoadTriple({1, kPo, 6});

  EXPECT_EQ(store.GetEdges(Key(1, kPo, Dir::kOut), kInf),
            (std::vector<VertexId>{5, 6}));
  EXPECT_EQ(store.GetEdges(Key(5, kPo, Dir::kIn), kInf), (std::vector<VertexId>{1}));
}

TEST(GStoreTest, IndexVertexListsAllEndpoints) {
  GStore store(0);
  store.LoadTriple({1, kPo, 5});
  store.LoadTriple({2, kPo, 6});
  // [0|po|in]: vertices with an incoming po edge = posts (Fig. 6: 4,5,6...).
  EXPECT_EQ(store.GetEdges(Key(kIndexVertex, kPo, Dir::kIn), kInf),
            (std::vector<VertexId>{5, 6}));
  // [0|po|out]: vertices that posted.
  EXPECT_EQ(store.GetEdges(Key(kIndexVertex, kPo, Dir::kOut), kInf),
            (std::vector<VertexId>{1, 2}));
}

TEST(GStoreTest, IndexVertexNotDuplicated) {
  GStore store(0);
  store.LoadTriple({1, kPo, 5});
  store.LoadTriple({1, kPo, 6});  // Same subject posts again.
  EXPECT_EQ(store.GetEdges(Key(kIndexVertex, kPo, Dir::kOut), kInf),
            (std::vector<VertexId>{1}));
}

TEST(GStoreTest, MissingKeyIsEmpty) {
  GStore store(0);
  EXPECT_TRUE(store.GetEdges(Key(99, kPo, Dir::kOut), kInf).empty());
  EXPECT_EQ(store.EdgeCount(Key(99, kPo, Dir::kOut), kInf), 0u);
}

TEST(GStoreTest, HasEdge) {
  GStore store(0);
  store.LoadTriple({1, kPo, 5});
  EXPECT_TRUE(store.HasEdge(Key(1, kPo, Dir::kOut), 5, kInf));
  EXPECT_FALSE(store.HasEdge(Key(1, kPo, Dir::kOut), 6, kInf));
}

TEST(GStoreTest, SnapshotVisibility) {
  GStore store(0);
  store.LoadTriple({1, kPo, 5});  // Base.
  std::vector<AppendSpan> spans;
  store.InjectTriple({1, kPo, 7}, /*sn=*/1, &spans);
  store.InjectTriple({1, kPo, 8}, /*sn=*/2, &spans);

  Key k(1, kPo, Dir::kOut);
  // Snapshot 0 (base): only the loaded edge.
  EXPECT_EQ(store.GetEdges(k, 0), (std::vector<VertexId>{5}));
  // Snapshot 1: base + sn1.
  EXPECT_EQ(store.GetEdges(k, 1), (std::vector<VertexId>{5, 7}));
  // Snapshot 2 and beyond: everything.
  EXPECT_EQ(store.GetEdges(k, 2), (std::vector<VertexId>{5, 7, 8}));
  EXPECT_EQ(store.GetEdges(k, kInf), (std::vector<VertexId>{5, 7, 8}));
}

TEST(GStoreTest, SnapshotsConsecutiveInValue) {
  // All appends of one SN occupy one contiguous interval (§4.3: "all stream
  // batches with the same snapshot number are consecutively stored").
  GStore store(0);
  std::vector<AppendSpan> spans;
  store.InjectEdge(Key(1, kPo, Dir::kOut), 10, 1, &spans);
  store.InjectEdge(Key(1, kPo, Dir::kOut), 11, 1, &spans);
  store.InjectEdge(Key(1, kPo, Dir::kOut), 12, 2, &spans);
  EXPECT_EQ(store.GetEdges(Key(1, kPo, Dir::kOut), 1),
            (std::vector<VertexId>{10, 11}));
}

TEST(GStoreTest, InjectReportsSpans) {
  GStore store(0);
  std::vector<AppendSpan> spans;
  store.InjectTriple({1, kPo, 7}, 1, &spans);
  // Out edge, in edge, plus index appends for the new keys.
  ASSERT_GE(spans.size(), 2u);
  bool saw_out = false;
  bool saw_in = false;
  for (const AppendSpan& s : spans) {
    if (s.key == Key(1, kPo, Dir::kOut)) {
      saw_out = true;
      EXPECT_EQ(s.count, 1u);
    }
    if (s.key == Key(7, kPo, Dir::kIn)) {
      saw_in = true;
    }
  }
  EXPECT_TRUE(saw_out);
  EXPECT_TRUE(saw_in);
}

TEST(GStoreTest, InjectReportsIndexSpans) {
  GStore store(0);
  std::vector<AppendSpan> spans;
  store.InjectEdge(Key(1, kPo, Dir::kOut), 7, 1, &spans);
  bool saw_index = false;
  for (const AppendSpan& s : spans) {
    if (s.key == Key(kIndexVertex, kPo, Dir::kOut)) {
      saw_index = true;
    }
  }
  EXPECT_TRUE(saw_index);
}

TEST(GStoreTest, SpanReadsExactRange) {
  GStore store(0);
  std::vector<AppendSpan> spans;
  for (VertexId v = 10; v < 20; ++v) {
    store.InjectEdge(Key(1, kPo, Dir::kOut), v, 1, nullptr);
  }
  std::vector<VertexId> out;
  store.GetSpanInto(Key(1, kPo, Dir::kOut), 3, 4, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{13, 14, 15, 16}));
}

TEST(GStoreTest, SpanReadClampsToSize) {
  GStore store(0);
  store.InjectEdge(Key(1, kPo, Dir::kOut), 10, 1, nullptr);
  std::vector<VertexId> out;
  store.GetSpanInto(Key(1, kPo, Dir::kOut), 0, 100, &out);
  EXPECT_EQ(out, (std::vector<VertexId>{10}));
  out.clear();
  store.GetSpanInto(Key(1, kPo, Dir::kOut), 5, 2, &out);
  EXPECT_TRUE(out.empty());
}

TEST(GStoreTest, CollapseBoundsMarkerCount) {
  GStore store(0);
  Key k(1, kPo, Dir::kOut);
  for (SnapshotNum sn = 1; sn <= 10; ++sn) {
    store.InjectEdge(k, 100 + sn, sn, nullptr);
  }
  size_t meta_before = store.SnapshotMetadataBytes();
  store.CollapseBelow(9);
  // Collapse is lazy: touch the key to fold markers.
  EXPECT_EQ(store.GetEdges(k, kInf).size(), 10u);
  size_t meta_after = store.SnapshotMetadataBytes();
  EXPECT_LT(meta_after, meta_before);
  // Reads at or above the floor still see everything folded into base.
  EXPECT_EQ(store.GetEdges(k, 9).size(), 9u);
  EXPECT_EQ(store.GetEdges(k, 10).size(), 10u);
  // Reads below the floor are forfeited (collapsed into base): by contract
  // the Coordinator never hands out SNs below the floor.
  EXPECT_EQ(store.GetEdges(k, 0).size(), 9u);
}

TEST(GStoreTest, CountersTrackLoadAndInjection) {
  GStore store(0);
  store.LoadTriple({1, kPo, 5});
  EXPECT_EQ(store.StreamAppendedEdges(), 0u);
  store.InjectTriple({1, kPo, 7}, 1, nullptr);
  EXPECT_EQ(store.StreamAppendedEdges(), 2u);
  EXPECT_GT(store.EdgeCountTotal(), 2u);  // Includes index edges.
  EXPECT_GT(store.KeyCount(), 0u);
  EXPECT_GT(store.MemoryBytes(), 0u);
}

TEST(GStoreTest, ConcurrentReadersDuringInjection) {
  GStore store(0);
  Key k(1, kPo, Dir::kOut);
  store.InjectEdge(k, 1, 1, nullptr);

  std::atomic<bool> stop{false};
  std::thread reader([&] {
    std::vector<VertexId> out;
    while (!stop.load()) {
      store.GetEdgesInto(k, kInf, &out);
      ASSERT_FALSE(out.empty());
      // Values are appended in order starting from 1.
      for (size_t i = 0; i < out.size(); ++i) {
        ASSERT_EQ(out[i], i + 1);
      }
    }
  });
  for (VertexId v = 2; v <= 2000; ++v) {
    store.InjectEdge(k, v, 1, nullptr);
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(store.GetEdges(k, kInf).size(), 2000u);
}

}  // namespace
}  // namespace wukongs
