// Multi-query optimization tests (DESIGN.md §5.12): template canonicalization,
// group lifecycle under register/unregister churn, shared-probe evaluation
// with per-member fan-out, the per-group DeltaCache, and the grouped-vs-
// independent differential lane (twin clusters, one with MQO disabled, must
// return bag-identical results per registration across a seed sweep that
// includes reconfiguration moves and gray-failure hedging).
//
// The lane also proves it has teeth: two planted mutations — a fan-out that
// skips the hash partition (cross-user leak) and an unregister that leaves
// the member grouped (stale membership) — must each be caught.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/test_hooks.h"
#include "src/fault/fault_injector.h"
#include "src/fault/recovery_manager.h"
#include "src/obs/metrics.h"
#include "src/sparql/parser.h"
#include "src/sparql/template.h"

namespace wukongs {
namespace {

constexpr uint64_t kIntervalMs = 100;

// Bag canonicalization (same contract as the delta lane): grouped fan-out and
// independent evaluation must agree as multisets; row order is not part of it.
std::multiset<std::string> Canon(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) {
    std::string key;
    for (const ResultValue& v : row) {
      key += v.is_number ? "n" + std::to_string(v.number)
                         : "v" + std::to_string(v.vid);
      key += "|";
    }
    out.insert(key);
  }
  return out;
}

// Template A: per-user follower activity — the hole is the user constant in
// the stored-graph pattern. Every instantiation shares one probe.
std::string FollowerQuery(const std::string& name, const std::string& user) {
  return "REGISTER QUERY " + name +
         " AS SELECT ?y ?w FROM STREAM <S> [RANGE 300ms STEP 100ms] "
         "FROM <Base> WHERE { GRAPH <Base> { " + user +
         " fo ?y } GRAPH <S> { ?y at ?w } }";
}

// Template B: per-entity ping log — the hole sits in the window pattern.
std::string PingQuery(const std::string& name, const std::string& who) {
  return "REGISTER QUERY " + name +
         " AS SELECT ?w FROM STREAM <S> [RANGE 300ms STEP 100ms] "
         "WHERE { GRAPH <S> { " + who + " at ?w } }";
}

// ---------------------------------------------------------------------------
// TemplateCanonTest: CanonicalizeTemplate in isolation.
// ---------------------------------------------------------------------------

TEST(TemplateCanonTest, AlphaRenamedInstantiationsShareAKey) {
  StringServer s;
  auto a = ParseQuery(FollowerQuery("qa", "u0"), &s);
  // Same shape, different variable names, different constant.
  auto b = ParseQuery(
      "REGISTER QUERY qb AS SELECT ?p ?loc FROM STREAM <S> "
      "[RANGE 300ms STEP 100ms] FROM <Base> WHERE { GRAPH <Base> "
      "{ u1 fo ?p } GRAPH <S> { ?p at ?loc } }",
      &s);
  ASSERT_TRUE(a.ok() && b.ok());
  TemplateSignature sa = CanonicalizeTemplate(*a);
  TemplateSignature sb = CanonicalizeTemplate(*b);
  ASSERT_TRUE(sa.eligible) << sa.reason;
  ASSERT_TRUE(sb.eligible) << sb.reason;
  EXPECT_EQ(sa.key, sb.key);
  EXPECT_NE(sa.hole_constant, sb.hole_constant);
  EXPECT_EQ(sa.hole_constant, s.InternVertex("u0"));
  EXPECT_EQ(sb.hole_constant, s.InternVertex("u1"));
  EXPECT_EQ(sa.canon_vars, 2);
  EXPECT_EQ(sa.hole_var, 2);
  // Probe selects every canonical variable plus the hole, plain.
  ASSERT_EQ(sa.probe.select.size(), 3u);
  for (const SelectItem& item : sa.probe.select) {
    EXPECT_EQ(item.agg, AggKind::kNone);
  }
  EXPECT_TRUE(sa.probe.continuous);
  EXPECT_TRUE(sa.probe.order_by.empty());
  EXPECT_EQ(sa.probe.limit, 0u);
}

TEST(TemplateCanonTest, MemberModifiersDoNotSplitGroups) {
  StringServer s;
  auto plain = ParseQuery(FollowerQuery("qa", "u0"), &s);
  // DISTINCT, a different SELECT list and ORDER BY are all per-member: they
  // re-run at fan-out, so they must not fracture the group.
  auto fancy = ParseQuery(
      "REGISTER QUERY qb AS SELECT DISTINCT ?w FROM STREAM <S> "
      "[RANGE 300ms STEP 100ms] FROM <Base> WHERE { GRAPH <Base> "
      "{ u1 fo ?y } GRAPH <S> { ?y at ?w } } ORDER BY ?w",
      &s);
  ASSERT_TRUE(plain.ok() && fancy.ok());
  TemplateSignature sp = CanonicalizeTemplate(*plain);
  TemplateSignature sf = CanonicalizeTemplate(*fancy);
  ASSERT_TRUE(sp.eligible && sf.eligible) << sp.reason << " / " << sf.reason;
  EXPECT_EQ(sp.key, sf.key);
}

TEST(TemplateCanonTest, DifferentShapesAndWindowsSplitGroups) {
  StringServer s;
  auto base = ParseQuery(FollowerQuery("qa", "u0"), &s);
  auto other = ParseQuery(PingQuery("qb", "u1"), &s);
  auto wider = ParseQuery(
      "REGISTER QUERY qc AS SELECT ?y ?w FROM STREAM <S> "
      "[RANGE 500ms STEP 100ms] FROM <Base> WHERE { GRAPH <Base> "
      "{ u2 fo ?y } GRAPH <S> { ?y at ?w } }",
      &s);
  ASSERT_TRUE(base.ok() && other.ok() && wider.ok());
  TemplateSignature sb = CanonicalizeTemplate(*base);
  TemplateSignature so = CanonicalizeTemplate(*other);
  TemplateSignature sw = CanonicalizeTemplate(*wider);
  ASSERT_TRUE(sb.eligible && so.eligible && sw.eligible);
  EXPECT_NE(sb.key, so.key);  // Different pattern shape.
  EXPECT_NE(sb.key, sw.key);  // Same shape, different window range.
}

TEST(TemplateCanonTest, FilterConstantsArePartOfTheKey) {
  StringServer s;
  auto eq_erik = ParseQuery(
      "REGISTER QUERY qa AS SELECT ?y ?w FROM STREAM <S> "
      "[RANGE 300ms STEP 100ms] FROM <Base> WHERE { GRAPH <Base> "
      "{ u0 fo ?y } GRAPH <S> { ?y at ?w } . FILTER (?y = Erik) }",
      &s);
  auto eq_tony = ParseQuery(
      "REGISTER QUERY qb AS SELECT ?y ?w FROM STREAM <S> "
      "[RANGE 300ms STEP 100ms] FROM <Base> WHERE { GRAPH <Base> "
      "{ u1 fo ?y } GRAPH <S> { ?y at ?w } . FILTER (?y = Erik) }",
      &s);
  auto eq_other = ParseQuery(
      "REGISTER QUERY qc AS SELECT ?y ?w FROM STREAM <S> "
      "[RANGE 300ms STEP 100ms] FROM <Base> WHERE { GRAPH <Base> "
      "{ u2 fo ?y } GRAPH <S> { ?y at ?w } . FILTER (?y = Tony) }",
      &s);
  ASSERT_TRUE(eq_erik.ok() && eq_tony.ok() && eq_other.ok());
  TemplateSignature sa = CanonicalizeTemplate(*eq_erik);
  TemplateSignature sb = CanonicalizeTemplate(*eq_tony);
  TemplateSignature sc = CanonicalizeTemplate(*eq_other);
  ASSERT_TRUE(sa.eligible && sb.eligible && sc.eligible)
      << sa.reason << "/" << sb.reason << "/" << sc.reason;
  EXPECT_EQ(sa.key, sb.key);  // Filters ran in the probe: same constant groups.
  EXPECT_NE(sa.key, sc.key);  // A different filter constant is a new template.
}

TEST(TemplateCanonTest, IneligibleShapesFallBackWithAReason) {
  StringServer s;
  auto parsed = ParseQuery(FollowerQuery("qa", "u0"), &s);
  ASSERT_TRUE(parsed.ok());
  const Query& base = *parsed;

  Query oneshot = base;
  oneshot.continuous = false;
  oneshot.windows.clear();
  EXPECT_FALSE(CanonicalizeTemplate(oneshot).eligible);

  Query unioned = base;
  unioned.unions.push_back(unioned.patterns);
  unioned.patterns.clear();
  EXPECT_FALSE(CanonicalizeTemplate(unioned).eligible);

  Query limited = base;
  limited.limit = 5;
  EXPECT_FALSE(CanonicalizeTemplate(limited).eligible);

  Query absolute = base;
  absolute.windows[0].absolute = true;
  EXPECT_FALSE(CanonicalizeTemplate(absolute).eligible);

  // A window-scoped pattern inside an OPTIONAL breaks per-group delta scoping.
  Query windowed_opt = base;
  windowed_opt.optionals.push_back({windowed_opt.patterns[1]});
  windowed_opt.patterns.pop_back();
  EXPECT_FALSE(CanonicalizeTemplate(windowed_opt).eligible);

  // Zero constants: nothing to designate as the hole.
  Query no_hole = base;
  no_hole.patterns[0].subject = Term::Variable(0);
  EXPECT_FALSE(CanonicalizeTemplate(no_hole).eligible);

  // Two constants: the hole would be ambiguous.
  Query two_holes = base;
  two_holes.patterns[1].subject = Term::Constant(s.InternVertex("Erik"));
  EXPECT_FALSE(CanonicalizeTemplate(two_holes).eligible);

  // The only constant sits inside an OPTIONAL: fan-out would lose rows where
  // this member's constant fails to match but a sibling's succeeds.
  Query opt_hole = base;
  opt_hole.patterns[0].subject = Term::Variable(0);
  opt_hole.optionals.push_back(
      {TriplePattern{Term::Constant(s.InternVertex("u0")),
                     s.InternPredicate("fo"), Term::Variable(0),
                     kGraphStored}});
  EXPECT_FALSE(CanonicalizeTemplate(opt_hole).eligible);
}

TEST(MqoPartitionTest, PartitionRowsByColumnGroupsRowIndices) {
  QueryResult r;
  r.columns = {"a", "b"};
  auto row = [](VertexId a, VertexId b) {
    return std::vector<ResultValue>{ResultValue::Vertex(a),
                                    ResultValue::Vertex(b)};
  };
  r.rows = {row(1, 10), row(2, 20), row(1, 30), row(2, 40), row(3, 50)};
  auto parts = PartitionRowsByColumn(r, 0);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], (std::vector<size_t>{0, 2}));
  EXPECT_EQ(parts[2], (std::vector<size_t>{1, 3}));
  EXPECT_EQ(parts[3], (std::vector<size_t>{4}));
}

// ---------------------------------------------------------------------------
// MqoClusterTest: grouping, shared evaluation and fan-out through the cluster.
// ---------------------------------------------------------------------------

class MqoClusterTest : public ::testing::Test {
 protected:
  void Init(uint32_t nodes, bool mqo_enabled = true, bool columnar = true) {
    ClusterConfig config;
    config.nodes = nodes;
    config.batch_interval_ms = kIntervalMs;
    config.mqo.enabled = mqo_enabled;
    config.columnar_executor = columnar;
    if constexpr (obs::kCompiledIn) {
      config.metrics = &registry_;
    }
    cluster_ = std::make_unique<Cluster>(config);
    stream_ = *cluster_->DefineStream("S", {"at"});

    StringServer* s = cluster_->strings();
    auto triple = [&](const char* su, const char* p, const char* o) {
      return Triple{s->InternVertex(su), s->InternPredicate(p),
                    s->InternVertex(o)};
    };
    // Disjoint follow sets so distinct users have distinct answers — the
    // cross-user-leak mutation must actually change some member's bag.
    std::vector<Triple> base = {
        triple("u0", "fo", "Erik"), triple("u0", "fo", "Tony"),
        triple("u1", "fo", "Logan"), triple("u2", "fo", "Tony")};
    cluster_->LoadBase(base);
  }

  // One ping per person per slice so every window has bindings.
  void FeedRound(StreamTime upto_ms) {
    StringServer* s = cluster_->strings();
    StreamTupleVec tuples;
    for (const char* who : {"Erik", "Tony", "Logan"}) {
      tuples.push_back({{s->InternVertex(who), s->InternPredicate("at"),
                         s->InternVertex("L" + std::to_string(upto_ms))},
                        upto_ms - 50,
                        TupleKind::kTiming});
    }
    ASSERT_TRUE(cluster_->FeedStream(stream_, tuples).ok());
    cluster_->AdvanceStreams(upto_ms);
  }

  Cluster::ContinuousHandle Register(const std::string& text) {
    auto h = cluster_->RegisterContinuous(text);
    EXPECT_TRUE(h.ok()) << h.status().ToString();
    return h.ok() ? *h : 0;
  }

  obs::MetricsRegistry registry_;
  std::unique_ptr<Cluster> cluster_;
  StreamId stream_ = 0;
};

TEST_F(MqoClusterTest, InstantiationsOfOneTemplateFormAGroup) {
  Init(2);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  auto c = Register(FollowerQuery("qc", "u2"));
  auto other = Register(PingQuery("qp", "Erik"));

  EXPECT_EQ(cluster_->MqoGroupOf(a), cluster_->MqoGroupOf(b));
  EXPECT_EQ(cluster_->MqoGroupOf(a), cluster_->MqoGroupOf(c));
  EXPECT_NE(cluster_->MqoGroupOf(a), cluster_->MqoGroupOf(other));
  EXPECT_EQ(cluster_->MqoGroupSizeOf(a), 3u);
  EXPECT_EQ(cluster_->MqoGroupSizeOf(other), 1u);
  EXPECT_EQ(cluster_->MqoLiveGroups(), 2u);

  Cluster::MqoStats stats = cluster_->mqo_stats();
  EXPECT_EQ(stats.grouped_registrations, 4u);
  EXPECT_EQ(stats.groups_formed, 2u);
  EXPECT_EQ(stats.groups_dissolved, 0u);
}

TEST_F(MqoClusterTest, DisabledConfigLeavesEverythingUngrouped) {
  Init(1, /*mqo_enabled=*/false);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  EXPECT_EQ(cluster_->MqoGroupOf(a), -1);
  EXPECT_EQ(cluster_->MqoGroupOf(b), -1);
  EXPECT_EQ(cluster_->MqoLiveGroups(), 0u);
  FeedRound(300);
  auto exec = cluster_->ExecuteContinuousAt(a, 300);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(cluster_->mqo_stats().shared_evals, 0u);
}

TEST_F(MqoClusterTest, SharedEvalOncePerTriggerAndFanoutMatchesCold) {
  Init(2);
  std::vector<Cluster::ContinuousHandle> members = {
      Register(FollowerQuery("qa", "u0")), Register(FollowerQuery("qb", "u1")),
      Register(FollowerQuery("qc", "u2"))};
  FeedRound(100);
  FeedRound(200);
  FeedRound(300);

  for (Cluster::ContinuousHandle h : members) {
    ASSERT_TRUE(cluster_->WindowReady(h, 300));
    auto exec = cluster_->ExecuteContinuousAt(h, 300);
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    auto cold = cluster_->ExecuteContinuousColdAt(h, 300);
    ASSERT_TRUE(cold.ok()) << cold.status().ToString();
    EXPECT_EQ(Canon(exec->result), Canon(cold->result));
    EXPECT_FALSE(exec->result.rows.empty());
  }
  Cluster::MqoStats stats = cluster_->mqo_stats();
  EXPECT_EQ(stats.shared_evals, 1u);   // One probe for three member triggers.
  EXPECT_EQ(stats.fanout_served, 2u);  // The payer is not memo-served.

  // The next window slides: exactly one more shared evaluation.
  FeedRound(400);
  for (Cluster::ContinuousHandle h : members) {
    auto exec = cluster_->ExecuteContinuousAt(h, 400);
    ASSERT_TRUE(exec.ok());
    auto cold = cluster_->ExecuteContinuousColdAt(h, 400);
    ASSERT_TRUE(cold.ok());
    EXPECT_EQ(Canon(exec->result), Canon(cold->result));
  }
  stats = cluster_->mqo_stats();
  EXPECT_EQ(stats.shared_evals, 2u);
  EXPECT_EQ(stats.fanout_served, 4u);
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(registry_.GetCounter("wukongs_mqo_shared_evals_total")->value(),
              2u);
    EXPECT_EQ(registry_.GetCounter("wukongs_mqo_fanout_served_total")->value(),
              4u);
  }
}

TEST_F(MqoClusterTest, ColumnarSharedEvalFanoutMatchesColdInBothModes) {
  // §5.13 parity regression: the shared template probe now runs on columnar
  // chunks and the fan-out hash-partitions the probe result column-wise.
  // Every member's fanout-served bag must stay identical to its own cold
  // recompute under both executor pipelines, and the two pipelines must
  // deliver the same bags (the partition keys are column values, which the
  // row-view adapter preserves exactly).
  std::vector<std::vector<std::multiset<std::string>>> per_mode;
  for (bool columnar : {true, false}) {
    Init(2, /*mqo_enabled=*/true, columnar);
    std::vector<Cluster::ContinuousHandle> members = {
        Register(FollowerQuery("qa", "u0")), Register(FollowerQuery("qb", "u1")),
        Register(FollowerQuery("qc", "u2"))};
    FeedRound(100);
    FeedRound(200);
    FeedRound(300);
    std::vector<std::multiset<std::string>> bags;
    for (Cluster::ContinuousHandle h : members) {
      ASSERT_TRUE(cluster_->WindowReady(h, 300));
      auto exec = cluster_->ExecuteContinuousAt(h, 300);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      auto cold = cluster_->ExecuteContinuousColdAt(h, 300);
      ASSERT_TRUE(cold.ok()) << cold.status().ToString();
      EXPECT_EQ(Canon(exec->result), Canon(cold->result))
          << "columnar=" << columnar << ": fan-out diverged from cold";
      bags.push_back(Canon(exec->result));
    }
    // The shared probe actually ran once (members 2 and 3 were memo-served),
    // so the parity above covered the fan-out path, not three solo runs.
    EXPECT_EQ(cluster_->mqo_stats().shared_evals, 1u)
        << "columnar=" << columnar;
    EXPECT_EQ(cluster_->mqo_stats().fanout_served, 2u)
        << "columnar=" << columnar;
    per_mode.push_back(std::move(bags));
  }
  EXPECT_EQ(per_mode[0], per_mode[1])
      << "columnar and row MQO fan-out delivered different member bags";
}

TEST_F(MqoClusterTest, SingletonGroupRunsIndependently) {
  Init(1);
  auto a = Register(FollowerQuery("qa", "u0"));
  FeedRound(300);
  auto exec = cluster_->ExecuteContinuousAt(a, 300);
  ASSERT_TRUE(exec.ok());
  // Below min_group_size the member runs exactly as without MQO.
  EXPECT_EQ(cluster_->mqo_stats().shared_evals, 0u);
  EXPECT_EQ(cluster_->mqo_stats().fanout_served, 0u);
}

TEST_F(MqoClusterTest, UnregisterShrinksAndLastMemberDissolves) {
  Init(1);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  ASSERT_EQ(cluster_->MqoGroupSizeOf(a), 2u);

  ASSERT_TRUE(cluster_->UnregisterContinuous(b).ok());
  EXPECT_FALSE(cluster_->ContinuousActive(b));
  EXPECT_TRUE(cluster_->ContinuousActive(a));
  EXPECT_EQ(cluster_->MqoGroupOf(b), -1);
  EXPECT_EQ(cluster_->MqoGroupSizeOf(a), 1u);
  EXPECT_EQ(cluster_->MqoLiveGroups(), 1u);

  // Unregistered triggers are rejected; double unregister too.
  FeedRound(300);
  EXPECT_FALSE(cluster_->ExecuteContinuousAt(b, 300).ok());
  EXPECT_FALSE(cluster_->UnregisterContinuous(b).ok());

  // The survivor still answers, now independently (singleton).
  auto exec = cluster_->ExecuteContinuousAt(a, 300);
  ASSERT_TRUE(exec.ok());
  auto cold = cluster_->ExecuteContinuousColdAt(a, 300);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Canon(exec->result), Canon(cold->result));

  ASSERT_TRUE(cluster_->UnregisterContinuous(a).ok());
  EXPECT_EQ(cluster_->MqoLiveGroups(), 0u);
  EXPECT_EQ(cluster_->mqo_stats().groups_dissolved, 1u);

  // Re-registering the template re-forms a fresh group.
  auto c = Register(FollowerQuery("qc", "u2"));
  auto d = Register(FollowerQuery("qd", "u0"));
  EXPECT_EQ(cluster_->MqoGroupOf(c), cluster_->MqoGroupOf(d));
  EXPECT_EQ(cluster_->MqoLiveGroups(), 1u);
  EXPECT_EQ(cluster_->mqo_stats().groups_formed, 2u);
}

TEST_F(MqoClusterTest, GroupCarriesADeltaCacheAndSurvivesMaintenance) {
  Init(2);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  EXPECT_TRUE(cluster_->MqoGroupHasDeltaCache(a));

  for (StreamTime end = 100; end <= 600; end += 100) {
    FeedRound(end);
  }
  for (StreamTime end = 300; end <= 600; end += 100) {
    for (auto h : {a, b}) {
      auto exec = cluster_->ExecuteContinuousAt(h, end);
      ASSERT_TRUE(exec.ok());
      auto cold = cluster_->ExecuteContinuousColdAt(h, end);
      ASSERT_TRUE(cold.ok());
      EXPECT_EQ(Canon(exec->result), Canon(cold->result)) << "end=" << end;
    }
    // GC between triggers: the memo generation bumps, the probe's cache
    // invalidates via the eviction listeners, and parity must hold after.
    cluster_->RunMaintenance(end > 400 ? end - 400 : 0);
  }
  EXPECT_EQ(cluster_->mqo_stats().shared_evals, 4u);

  // Probe's cache dissolves with the group.
  ASSERT_TRUE(cluster_->UnregisterContinuous(a).ok());
  ASSERT_TRUE(cluster_->UnregisterContinuous(b).ok());
  EXPECT_FALSE(cluster_->MqoGroupHasDeltaCache(a));
}

TEST_F(MqoClusterTest, DegradedClusterSplitsTheGroupForTheTrigger) {
  Init(2);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  FeedRound(300);

  cluster_->fabric()->SetNodeServing(1, false);
  auto exec_a = cluster_->ExecuteContinuousAt(a, 300);
  auto exec_b = cluster_->ExecuteContinuousAt(b, 300);
  ASSERT_TRUE(exec_a.ok() && exec_b.ok());
  Cluster::MqoStats stats = cluster_->mqo_stats();
  EXPECT_EQ(stats.shared_evals, 0u);  // Degraded: no shared probe ran.
  EXPECT_GE(stats.independent_fallbacks, 2u);

  // Back to healthy: grouped execution resumes and matches cold.
  cluster_->fabric()->SetNodeServing(1, true);
  FeedRound(400);
  auto exec = cluster_->ExecuteContinuousAt(a, 400);
  ASSERT_TRUE(exec.ok());
  auto cold = cluster_->ExecuteContinuousColdAt(a, 400);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(Canon(exec->result), Canon(cold->result));
  EXPECT_EQ(cluster_->mqo_stats().shared_evals, 1u);
}

// ---------------------------------------------------------------------------
// MqoMutationTest: the lane must catch both planted defects.
// ---------------------------------------------------------------------------

TEST_F(MqoClusterTest, SkipFanoutPartitionMutationIsCaught) {
  Init(2);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  FeedRound(300);

  {
    test_hooks::ScopedMutation leak(&test_hooks::skip_fanout_partition);
    auto grouped = cluster_->ExecuteContinuousAt(a, 300);
    auto cold = cluster_->ExecuteContinuousColdAt(a, 300);
    ASSERT_TRUE(grouped.ok() && cold.ok());
    // u1's bindings leak into u0's answer: the differential check fires.
    EXPECT_NE(Canon(grouped->result), Canon(cold->result));
    EXPECT_GT(grouped->result.rows.size(), cold->result.rows.size());
  }

  // Disarmed, the same trigger is clean again (fresh window so the poisoned
  // memo from the mutated round is not reused).
  FeedRound(400);
  auto grouped = cluster_->ExecuteContinuousAt(b, 400);
  auto cold = cluster_->ExecuteContinuousColdAt(b, 400);
  ASSERT_TRUE(grouped.ok() && cold.ok());
  EXPECT_EQ(Canon(grouped->result), Canon(cold->result));
}

TEST_F(MqoClusterTest, StaleGroupMembershipMutationIsCaught) {
  Init(2);
  auto a = Register(FollowerQuery("qa", "u0"));
  auto b = Register(FollowerQuery("qb", "u1"));
  FeedRound(300);

  {
    test_hooks::ScopedMutation stale(&test_hooks::stale_group_membership);
    ASSERT_TRUE(cluster_->UnregisterContinuous(b).ok());
    EXPECT_FALSE(cluster_->ContinuousActive(b));
    // The defect: the group kept the member, so the unregistered handle is
    // still served. The audit — inactive handle answering — catches it.
    EXPECT_EQ(cluster_->MqoGroupSizeOf(a), 2u);
    auto exec = cluster_->ExecuteContinuousAt(b, 300);
    EXPECT_TRUE(exec.ok());
  }

  // Without the mutation the same sequence rejects the dead handle.
  Init(2);
  a = Register(FollowerQuery("qa", "u0"));
  b = Register(FollowerQuery("qb", "u1"));
  FeedRound(300);
  ASSERT_TRUE(cluster_->UnregisterContinuous(b).ok());
  EXPECT_EQ(cluster_->MqoGroupSizeOf(a), 1u);
  auto exec = cluster_->ExecuteContinuousAt(b, 300);
  EXPECT_FALSE(exec.ok());
  auto sibling = cluster_->ExecuteContinuousAt(a, 300);
  EXPECT_TRUE(sibling.ok());
}

// ---------------------------------------------------------------------------
// MqoDifferentialTest: twin clusters (MQO on vs off) across a seed sweep,
// with registration churn, reconfiguration moves and gray-failure hedging.
// ---------------------------------------------------------------------------

struct MqoSeedOutcome {
  uint64_t shared_evals = 0;
  uint64_t triggers = 0;
  uint64_t churn_events = 0;
  uint64_t reconfig_events = 0;
  uint64_t gray_seeds = 0;
};

MqoSeedOutcome RunMqoSeed(uint64_t seed) {
  MqoSeedOutcome outcome;
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 17);
  const uint32_t nodes = static_cast<uint32_t>(2 + rng.Uniform(0, 1));
  const bool gray = rng.Bernoulli(0.3);
  const bool reconfig = rng.Bernoulli(0.3);

  // Gray failures, jitter, hedging and demotion are cost-model-only: arming
  // them on the grouped twin must not move a single result row.
  FaultSchedule schedule;
  schedule.seed = seed;
  if (gray) {
    GrayFailureEvent ev;
    ev.node = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
    ev.from_ms = 100;
    ev.until_ms = 5000;
    ev.slow_factor = 4.0 + static_cast<double>(rng.Uniform(0, 8));
    schedule.gray_failures.push_back(ev);
    schedule.message_jitter_rate = 0.3;
    schedule.message_jitter_ns = 20000.0;
    ++outcome.gray_seeds;
  }
  FaultInjector injector(schedule);

  StringServer strings;
  ClusterConfig grouped_config;
  grouped_config.nodes = nodes;
  grouped_config.batch_interval_ms = kIntervalMs;
  if (gray) {
    grouped_config.transport = Transport::kTcp;
    grouped_config.fault_injector = &injector;
    grouped_config.hedge.enabled = true;
    grouped_config.hedge.min_samples = 4;
    grouped_config.straggler.enabled = true;
    grouped_config.straggler.min_samples = 4;
  }
  Cluster grouped(grouped_config, &strings);

  ClusterConfig indep_config;
  indep_config.nodes = nodes;
  indep_config.batch_interval_ms = kIntervalMs;
  indep_config.mqo.enabled = false;  // The oracle: every trigger independent.
  Cluster indep(indep_config, &strings);

  // Random follow graph over a small user/person universe.
  auto user = [&](uint64_t i) {
    return strings.InternVertex("u" + std::to_string(i));
  };
  auto person = [&](uint64_t i) {
    return strings.InternVertex("e" + std::to_string(i));
  };
  const uint64_t n_users = 3 + rng.Uniform(0, 3);
  std::vector<Triple> base;
  for (uint64_t u = 0; u < n_users; ++u) {
    size_t follows = rng.Uniform(0, 3);  // Some users follow nobody.
    for (size_t f = 0; f < follows; ++f) {
      base.push_back({user(u), strings.InternPredicate("fo"),
                      person(rng.Uniform(0, 5))});
    }
  }
  grouped.LoadBase(base);
  indep.LoadBase(base);
  StreamId gs = *grouped.DefineStream("S", {"at"});
  StreamId is = *indep.DefineStream("S", {"at"});

  // Registrations: several instantiations of each template, same handles on
  // both clusters (registration order is identical).
  struct Pair {
    Cluster::ContinuousHandle grouped;
    Cluster::ContinuousHandle indep;
    bool live = true;
  };
  std::vector<Pair> regs;
  int name = 0;
  auto register_pair = [&](const std::string& text) {
    auto hg = grouped.RegisterContinuous(text);
    auto hi = indep.RegisterContinuous(text);
    ASSERT_TRUE(hg.ok() && hi.ok()) << text;
    regs.push_back({*hg, *hi, true});
  };
  const uint64_t t0_members = 2 + rng.Uniform(0, 2);
  for (uint64_t i = 0; i < t0_members; ++i) {
    register_pair(
        FollowerQuery("q" + std::to_string(name++),
                      "u" + std::to_string(rng.Uniform(0, n_users - 1))));
  }
  const uint64_t t1_members = 2 + rng.Uniform(0, 2);
  for (uint64_t i = 0; i < t1_members; ++i) {
    register_pair(PingQuery("q" + std::to_string(name++),
                            "e" + std::to_string(rng.Uniform(0, 5))));
  }
  if (rng.Bernoulli(0.5)) {
    // A filtered template: the filter runs in the probe; members whose
    // partition comes back empty fall back to independent execution.
    for (int i = 0; i < 2; ++i) {
      register_pair(
          "REGISTER QUERY q" + std::to_string(name++) +
          " AS SELECT ?y ?w FROM STREAM <S> [RANGE 300ms STEP 100ms] "
          "FROM <Base> WHERE { GRAPH <Base> { u" +
          std::to_string(rng.Uniform(0, n_users - 1)) +
          " fo ?y } GRAPH <S> { ?y at ?w } . FILTER (?y = e0) }");
    }
  }
  if (::testing::Test::HasFatalFailure()) {
    return outcome;
  }

  for (StreamTime round = 0; round < 7; ++round) {
    const StreamTime end = (round + 1) * kIntervalMs;
    // Identical tuple feed on both twins.
    StreamTupleVec tuples;
    size_t count = 1 + rng.Uniform(0, 3);
    std::vector<StreamTime> stamps;
    for (size_t i = 0; i < count; ++i) {
      stamps.push_back(round * kIntervalMs + 1 + rng.Uniform(0, kIntervalMs - 2));
    }
    std::sort(stamps.begin(), stamps.end());
    for (size_t i = 0; i < count; ++i) {
      tuples.push_back(
          {{person(rng.Uniform(0, 5)), strings.InternPredicate("at"),
            strings.InternVertex("L" + std::to_string(end * 10 + i))},
           stamps[i],
           TupleKind::kTiming});
    }
    Status fg = grouped.FeedStream(gs, tuples);
    Status fi = indep.FeedStream(is, tuples);
    EXPECT_TRUE(fg.ok()) << fg.ToString();
    EXPECT_TRUE(fi.ok()) << fi.ToString();
    grouped.AdvanceStreams(end);
    indep.AdvanceStreams(end);

    // Churn: unregister a random live member on both twins.
    if (round == 3 && rng.Bernoulli(0.5)) {
      size_t idx = rng.Uniform(0, regs.size() - 1);
      if (regs[idx].live) {
        EXPECT_TRUE(grouped.UnregisterContinuous(regs[idx].grouped).ok());
        EXPECT_TRUE(indep.UnregisterContinuous(regs[idx].indep).ok());
        regs[idx].live = false;
        ++outcome.churn_events;
      }
    }
    // Reconfiguration on the grouped twin only: drain re-homes members and
    // probes; growing the cluster bumps the memo generation. Results must
    // not move.
    if (reconfig && round == 4) {
      if (rng.Bernoulli(0.5)) {
        if (grouped.BeginDrain(static_cast<NodeId>(rng.Uniform(0, nodes - 1)))
                .ok()) {
          ++outcome.reconfig_events;
        }
      } else if (grouped.AddNode().ok()) {
        ++outcome.reconfig_events;
      }
    }

    for (size_t i = 0; i < regs.size(); ++i) {
      SCOPED_TRACE("round=" + std::to_string(round) +
                   " reg=" + std::to_string(i));
      if (!regs[i].live) {
        EXPECT_FALSE(grouped.ExecuteContinuousAt(regs[i].grouped, end).ok());
        EXPECT_FALSE(indep.ExecuteContinuousAt(regs[i].indep, end).ok());
        continue;
      }
      if (!grouped.WindowReady(regs[i].grouped, end)) {
        continue;
      }
      auto g = grouped.ExecuteContinuousAt(regs[i].grouped, end);
      auto r = indep.ExecuteContinuousAt(regs[i].indep, end);
      EXPECT_TRUE(g.ok()) << g.status().ToString();
      EXPECT_TRUE(r.ok()) << r.status().ToString();
      if (!g.ok() || !r.ok()) {
        continue;
      }
      EXPECT_EQ(Canon(g->result), Canon(r->result));
      ++outcome.triggers;
    }
  }
  outcome.shared_evals = grouped.mqo_stats().shared_evals;
  // Sharing actually happened: far fewer probe runs than member triggers.
  EXPECT_LT(outcome.shared_evals, outcome.triggers);
  return outcome;
}

TEST(MqoDifferentialTest, GroupedMatchesIndependentAcrossSeeds) {
  uint64_t seeds = 200;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  MqoSeedOutcome total;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    MqoSeedOutcome o = RunMqoSeed(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    total.shared_evals += o.shared_evals;
    total.triggers += o.triggers;
    total.churn_events += o.churn_events;
    total.reconfig_events += o.reconfig_events;
    total.gray_seeds += o.gray_seeds;
  }
  // The sweep must exercise every mechanism, or it proves nothing.
  EXPECT_GT(total.shared_evals, 0u);
  EXPECT_GT(total.triggers, total.shared_evals);
  if (seeds >= 50) {
    EXPECT_GT(total.churn_events, 0u);
    EXPECT_GT(total.reconfig_events, 0u);
    EXPECT_GT(total.gray_seeds, 0u);
  }
}

// ---------------------------------------------------------------------------
// MqoChurnFuzzTest: seeded register/unregister interleavings with triggers
// and maintenance; the WindowDedup audit proves no lost or duplicate
// deliveries and no divergent re-delivery.
// ---------------------------------------------------------------------------

TEST(MqoChurnFuzzTest, RandomChurnKeepsDeliveriesExactlyOnce) {
  uint64_t seeds = 60;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::max<uint64_t>(1, std::strtoull(env, nullptr, 10) / 4);
  }
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed * 0x2545f4914f6cdd1dull + 3);

    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = kIntervalMs;
    Cluster cluster(config);
    StringServer* s = cluster.strings();
    std::vector<Triple> base;
    for (uint64_t u = 0; u < 4; ++u) {
      base.push_back({s->InternVertex("u" + std::to_string(u)),
                      s->InternPredicate("fo"),
                      s->InternVertex("e" + std::to_string(u % 3))});
    }
    cluster.LoadBase(base);
    StreamId stream = *cluster.DefineStream("S", {"at"});

    WindowDedup dedup;
    std::vector<Cluster::ContinuousHandle> live;
    std::vector<Cluster::ContinuousHandle> dead;
    std::set<std::pair<uint64_t, StreamTime>> delivered;
    int name = 0;
    StreamTime now = 0;

    auto feed_round = [&]() {
      now += kIntervalMs;
      StreamTupleVec tuples;
      const uint64_t count = 1 + rng.Uniform(0, 2);
      std::vector<StreamTime> stamps;
      for (uint64_t i = 0; i < count; ++i) {
        stamps.push_back(now - kIntervalMs + 1 + rng.Uniform(0, kIntervalMs - 2));
      }
      std::sort(stamps.begin(), stamps.end());
      for (uint64_t i = 0; i < count; ++i) {
        tuples.push_back(
            {{s->InternVertex("e" + std::to_string(rng.Uniform(0, 2))),
              s->InternPredicate("at"),
              s->InternVertex("L" + std::to_string(now * 10 + i))},
             stamps[i],
             TupleKind::kTiming});
      }
      ASSERT_TRUE(cluster.FeedStream(stream, tuples).ok());
      cluster.AdvanceStreams(now);
    };
    feed_round();
    feed_round();
    feed_round();

    for (int op = 0; op < 24 && !::testing::Test::HasFatalFailure(); ++op) {
      uint64_t dice = rng.Uniform(0, 9);
      if (dice < 3 || live.empty()) {  // Register a fresh instantiation.
        auto h = cluster.RegisterContinuous(
            FollowerQuery("q" + std::to_string(name++),
                          "u" + std::to_string(rng.Uniform(0, 3))));
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        live.push_back(*h);
      } else if (dice < 5 && live.size() > 1) {  // Unregister a random member.
        size_t idx = rng.Uniform(0, live.size() - 1);
        ASSERT_TRUE(cluster.UnregisterContinuous(live[idx]).ok());
        dead.push_back(live[idx]);
        live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
      } else if (dice < 6) {  // Maintenance GC under live groups.
        cluster.RunMaintenance(now > 600 ? now - 600 : 0);
      } else if (dice < 7) {
        feed_round();
      } else {  // Trigger every live member at the current frontier.
        for (Cluster::ContinuousHandle h : live) {
          if (!cluster.WindowReady(h, now)) {
            continue;
          }
          auto exec = cluster.ExecuteContinuousAt(h, now);
          ASSERT_TRUE(exec.ok()) << exec.status().ToString();
          std::string digest = ResultDigest(exec->result);
          bool first = delivered.insert({h, now}).second;
          if (!first) {
            // Re-delivery of a window must be byte-identical, and the
            // client-side dedup must suppress it.
            const std::string* seen = dedup.Find(h, now);
            ASSERT_NE(seen, nullptr);
            EXPECT_EQ(*seen, digest) << "divergent re-delivery";
            EXPECT_FALSE(dedup.Accept(h, now, exec->partial, digest));
          } else {
            EXPECT_TRUE(dedup.Accept(h, now, exec->partial, digest));
          }
        }
        // Dead handles must stay dead through churn and grouping.
        for (Cluster::ContinuousHandle h : dead) {
          EXPECT_FALSE(cluster.ExecuteContinuousAt(h, now).ok());
          EXPECT_FALSE(cluster.ContinuousActive(h));
        }
      }
    }
    // No lost deliveries: every accepted (member, window) pair is present
    // and canonical; no partials were ever upgraded.
    EXPECT_EQ(dedup.size(), delivered.size());
    EXPECT_EQ(dedup.upgrades(), 0u);
    for (const auto& [h, end] : delivered) {
      EXPECT_NE(dedup.Find(h, end), nullptr);
    }
  }
}

}  // namespace
}  // namespace wukongs
