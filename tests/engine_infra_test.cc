// Tests for the engine-infrastructure layer: the worker pool (per-core task
// queues, paper §3), the background maintenance daemon (§4.1's GC thread),
// and the stored-procedure plan cache.

#include <gtest/gtest.h>

#include <chrono>

#include "src/cluster/maintenance_daemon.h"
#include "src/cluster/worker_pool.h"
#include "src/sparql/parser.h"

namespace wukongs {
namespace {

class EngineInfraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = 100;
    cluster_ = std::make_unique<Cluster>(config);
    stream_ = *cluster_->DefineStream("S");
    StringServer* s = cluster_->strings();
    po_ = s->InternPredicate("po");
    StreamTupleVec tuples;
    for (int i = 0; i < 500; ++i) {
      tuples.push_back(StreamTuple{{s->InternVertex("u" + std::to_string(i % 20)),
                                    po_,
                                    s->InternVertex("p" + std::to_string(i))},
                                   static_cast<StreamTime>(i * 2),
                                   TupleKind::kTimeless});
    }
    EXPECT_TRUE(cluster_->FeedStream(stream_, tuples).ok());
    cluster_->AdvanceStreams(1000);
  }

  Cluster::ContinuousHandle RegisterWindowQuery() {
    auto handle = cluster_->RegisterContinuous(R"(
        REGISTER QUERY q AS
        SELECT ?U ?P
        FROM STREAM <S> [RANGE 500ms STEP 100ms]
        WHERE { GRAPH <S> { ?U po ?P } })");
    EXPECT_TRUE(handle.ok());
    return *handle;
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId stream_ = 0;
  PredicateId po_ = 0;
};

TEST_F(EngineInfraTest, WorkerPoolExecutesSubmissions) {
  auto handle = RegisterWindowQuery();
  WorkerPool pool(cluster_.get(), 4);

  std::vector<std::future<StatusOr<QueryExecution>>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.SubmitContinuous(handle, 1000));
  }
  Query one_shot = *ParseQuery("SELECT COUNT(?P) WHERE { ?U po ?P }",
                               cluster_->strings());
  auto oneshot_future = pool.SubmitOneShot(one_shot);

  for (auto& f : futures) {
    auto exec = f.get();
    ASSERT_TRUE(exec.ok()) << exec.status().ToString();
    // 500ms window over 2ms-spaced tuples = 250 rows.
    EXPECT_EQ(exec->result.rows.size(), 250u);
  }
  auto oneshot = oneshot_future.get();
  ASSERT_TRUE(oneshot.ok());
  EXPECT_DOUBLE_EQ(oneshot->result.rows[0][0].number, 500.0);
  // A future resolves inside task(); the executed counter bumps just after,
  // so synchronize on the pool before reading it.
  pool.Drain();
  EXPECT_EQ(pool.executed(), 21u);
}

TEST_F(EngineInfraTest, WorkerPoolDrainWaitsForCompletion) {
  auto handle = RegisterWindowQuery();
  WorkerPool pool(cluster_.get(), 2);
  for (int i = 0; i < 50; ++i) {
    (void)pool.SubmitContinuous(handle, 1000);
  }
  pool.Drain();
  EXPECT_EQ(pool.Pending(), 0u);
  EXPECT_EQ(pool.executed(), 50u);
}

TEST_F(EngineInfraTest, WorkerPoolDestructsWithQueuedWork) {
  auto handle = RegisterWindowQuery();
  // Destruction with queued work must not hang or crash; queued tasks either
  // run or their futures break.
  std::vector<std::future<StatusOr<QueryExecution>>> futures;
  {
    WorkerPool pool(cluster_.get(), 1);
    for (int i = 0; i < 10; ++i) {
      futures.push_back(pool.SubmitContinuous(handle, 1000));
    }
  }
  size_t completed = 0;
  for (auto& f : futures) {
    try {
      auto exec = f.get();
      if (exec.ok()) {
        ++completed;
      }
    } catch (const std::future_error&) {
      // Task dropped at shutdown: acceptable.
    }
  }
  EXPECT_GT(completed, 0u);
}

TEST_F(EngineInfraTest, PlanCacheReusedAcrossExecutions) {
  auto handle = RegisterWindowQuery();
  auto first = cluster_->ExecuteContinuousAt(handle, 1000);
  ASSERT_TRUE(first.ok());
  // Subsequent executions reuse the cached plan and stay correct across
  // different window ends.
  for (StreamTime end : {700u, 800u, 1000u}) {
    auto exec = cluster_->ExecuteContinuousAt(handle, end);
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(exec->result.rows.size(), 250u);
  }
}

TEST_F(EngineInfraTest, MaintenanceDaemonRunsPeriodically) {
  auto handle = RegisterWindowQuery();
  (void)handle;
  size_t slices_before = cluster_->Memory().stream_index_bytes;
  (void)slices_before;
  std::atomic<StreamTime> horizon{500};
  MaintenanceDaemon daemon(
      cluster_.get(), [&] { return horizon.load(); },
      std::chrono::milliseconds(5));
  daemon.RunOnce();
  EXPECT_GE(daemon.passes(), 1u);
  // Batches before 500ms are gone; the live window still answers.
  auto exec = cluster_->ExecuteContinuousAt(handle, 1000);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->result.rows.size(), 250u);

  // Let the periodic loop tick at least once more.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(daemon.passes(), 2u);
}

TEST_F(EngineInfraTest, MaintenanceDaemonStopsCleanly) {
  auto daemon = std::make_unique<MaintenanceDaemon>(
      cluster_.get(), [] { return StreamTime{0}; }, std::chrono::milliseconds(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  daemon.reset();  // Must join without deadlock.
  SUCCEED();
}

}  // namespace
}  // namespace wukongs
