// Tests for the baseline systems: relational primitives, CSPARQL-engine,
// Storm+Wukong, Spark-like engines, Wukong/Ext — including cross-checks that
// every baseline computes the same answers as the integrated engine.

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/csparql_engine.h"
#include "src/baselines/spark_like.h"
#include "src/baselines/storm_wukong.h"
#include "src/baselines/wukong_ext.h"
#include "src/sparql/parser.h"

namespace wukongs {
namespace {

// --- Relational primitives ---

TEST(RelationalTest, ScanMatchesConstants) {
  StringServer s;
  TripleTable t;
  VertexId logan = s.InternVertex("Logan");
  VertexId erik = s.InternVertex("Erik");
  PredicateId fo = s.InternPredicate("fo");
  t.Add({logan, fo, erik});
  t.Add({erik, fo, logan});

  Query q = *ParseQuery("SELECT ?X WHERE { ?X fo Logan }", &s);
  size_t scanned = 0;
  RelTable r = ScanPattern(t, q.patterns[0], &scanned);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], erik);
  EXPECT_EQ(scanned, 2u);
}

TEST(RelationalTest, ScanSameVariableTwice) {
  StringServer s;
  TripleTable t;
  VertexId a = s.InternVertex("a");
  VertexId b = s.InternVertex("b");
  PredicateId p = s.InternPredicate("p");
  t.Add({a, p, a});  // Self loop.
  t.Add({a, p, b});
  Query q = *ParseQuery("SELECT ?X WHERE { ?X p ?X }", &s);
  RelTable r = ScanPattern(t, q.patterns[0]);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.rows[0][0], a);
}

TEST(RelationalTest, HashJoinOnSharedVariable) {
  RelTable a;
  a.vars = {0};
  a.rows = {{1}, {2}, {3}};
  RelTable b;
  b.vars = {0, 1};
  b.rows = {{2, 20}, {3, 30}, {4, 40}};
  size_t intermediate = 0;
  RelTable j = HashJoin(a, b, &intermediate);
  ASSERT_EQ(j.size(), 2u);
  EXPECT_EQ(j.vars, (std::vector<int>{0, 1}));
  EXPECT_EQ(intermediate, 2u);
}

TEST(RelationalTest, HashJoinCartesianWhenNoSharedVars) {
  RelTable a;
  a.vars = {0};
  a.rows = {{1}, {2}};
  RelTable b;
  b.vars = {1};
  b.rows = {{10}, {20}, {30}};
  RelTable j = HashJoin(a, b);
  EXPECT_EQ(j.size(), 6u);  // The join bomb in miniature.
}

TEST(RelationalTest, FilterNumeric) {
  StringServer s;
  RelTable t;
  t.vars = {0};
  t.rows = {{s.InternVertex("10")}, {s.InternVertex("50")}, {s.InternVertex("x")}};
  FilterExpr f;
  f.var = 0;
  f.op = FilterExpr::Op::kGt;
  f.numeric = true;
  f.number = 20;
  RelTable out = ApplyRelFilter(t, f, s);
  ASSERT_EQ(out.size(), 1u);
}

// --- Cross-system fixture: same data into Wukong+S and every baseline. ---

class BaselineParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = 1000;
    cluster_ = std::make_unique<Cluster>(config);
    tweet_ = *cluster_->DefineStream("Tweet_Stream");
    like_ = *cluster_->DefineStream("Like_Stream");

    StringServer* s = cluster_->strings();
    auto triple = [&](const char* a, const char* p, const char* b) {
      return Triple{s->InternVertex(a), s->InternPredicate(p), s->InternVertex(b)};
    };
    base_ = {triple("Logan", "fo", "Erik"), triple("Erik", "fo", "Logan"),
             triple("Tony", "fo", "Logan"), triple("Logan", "po", "T-13")};
    cluster_->LoadBase(base_);

    auto tu = [&](const char* a, const char* p, const char* b, StreamTime ts) {
      return StreamTuple{{s->InternVertex(a), s->InternPredicate(p),
                          s->InternVertex(b)},
                         ts,
                         TupleKind::kTimeless};
    };
    tweets_ = {tu("Logan", "po", "T-15", 2000), tu("Erik", "po", "T-16", 5000)};
    likes_ = {tu("Erik", "li", "T-15", 6000), tu("Tony", "li", "T-15", 6500)};
    ASSERT_TRUE(cluster_->FeedStream(tweet_, tweets_).ok());
    ASSERT_TRUE(cluster_->FeedStream(like_, likes_).ok());
    cluster_->AdvanceStreams(10000);

    query_ = *ParseQuery(R"(
        REGISTER QUERY QC AS
        SELECT ?X ?Y ?Z
        FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
        FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
        WHERE {
          GRAPH <Tweet_Stream> { ?X po ?Z }
          GRAPH <X-Lab>        { ?Y fo ?X }
          GRAPH <Like_Stream>  { ?Y li ?Z }
        })",
                         cluster_->strings());
  }

  // Canonical row set for comparison across engines.
  std::set<std::vector<VertexId>> RowSet(const QueryResult& r) {
    std::set<std::vector<VertexId>> out;
    for (const auto& row : r.rows) {
      std::vector<VertexId> ids;
      for (const ResultValue& v : row) {
        ids.push_back(v.vid);
      }
      out.insert(ids);
    }
    return out;
  }

  std::set<std::vector<VertexId>> Reference() {
    auto handle = cluster_->RegisterContinuousParsed(query_);
    EXPECT_TRUE(handle.ok());
    auto exec = cluster_->ExecuteContinuousAt(*handle, 10000);
    EXPECT_TRUE(exec.ok()) << exec.status().ToString();
    EXPECT_FALSE(exec->result.rows.empty());
    return RowSet(exec->result);
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId tweet_ = 0, like_ = 0;
  TripleVec base_;
  StreamTupleVec tweets_, likes_;
  Query query_;
};

TEST_F(BaselineParityTest, CsparqlEngineMatchesIntegrated) {
  CsparqlEngine engine(cluster_->strings());
  engine.LoadStored(base_);
  ASSERT_TRUE(engine.streams()->Define("Tweet_Stream").ok());
  ASSERT_TRUE(engine.streams()->Define("Like_Stream").ok());
  ASSERT_TRUE(engine.streams()->Feed(0, tweets_).ok());
  ASSERT_TRUE(engine.streams()->Feed(1, likes_).ok());

  auto exec = engine.ExecuteContinuous(query_, 10000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(RowSet(exec->result), Reference());
  // Composite overhead must show up in the modeled time.
  EXPECT_GT(exec->net_ms, 25.0);
}

TEST_F(BaselineParityTest, StormWukongMatchesIntegrated) {
  StormWukong engine(cluster_.get());
  ASSERT_TRUE(engine.streams()->Define("Tweet_Stream").ok());
  ASSERT_TRUE(engine.streams()->Define("Like_Stream").ok());
  ASSERT_TRUE(engine.streams()->Feed(0, tweets_).ok());
  ASSERT_TRUE(engine.streams()->Feed(1, likes_).ok());

  CompositeBreakdown bd;
  auto exec = engine.ExecuteContinuous(query_, 10000, &bd);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(RowSet(exec->result), Reference());
  EXPECT_GT(bd.cross_ms, 0.0);
  EXPECT_GT(bd.store_ms, 0.0);
  EXPECT_GT(bd.stream_ms, 0.0);
  // The stored sub-query returned unpruned results (sub-optimal plan): it
  // must ship at least as many tuples as the final answer.
  EXPECT_GE(bd.store_tuples, bd.final_tuples);
}

TEST_F(BaselineParityTest, StormWukongPlanStylesAgree) {
  for (CompositePlan plan :
       {CompositePlan::kStreamThenStore, CompositePlan::kStreamJoinFirst}) {
    StormWukongConfig config;
    config.plan = plan;
    StormWukong engine(cluster_.get(), config);
    ASSERT_TRUE(engine.streams()->Define("Tweet_Stream").ok());
    ASSERT_TRUE(engine.streams()->Define("Like_Stream").ok());
    ASSERT_TRUE(engine.streams()->Feed(0, tweets_).ok());
    ASSERT_TRUE(engine.streams()->Feed(1, likes_).ok());
    auto exec = engine.ExecuteContinuous(query_, 10000);
    ASSERT_TRUE(exec.ok());
    EXPECT_EQ(RowSet(exec->result), Reference());
  }
}

TEST_F(BaselineParityTest, SparkStreamingMatchesIntegrated) {
  SparkEngine engine(cluster_->strings());
  engine.LoadStored(base_);
  ASSERT_TRUE(engine.streams()->Define("Tweet_Stream").ok());
  ASSERT_TRUE(engine.streams()->Define("Like_Stream").ok());
  ASSERT_TRUE(engine.streams()->Feed(0, tweets_).ok());
  ASSERT_TRUE(engine.streams()->Feed(1, likes_).ok());

  auto exec = engine.ExecuteContinuous(query_, 10000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(RowSet(exec->result), Reference());
  // The micro-batch floor dominates (paper: hundreds of ms).
  EXPECT_GT(exec->latency_ms(), 100.0);
}

TEST_F(BaselineParityTest, StructuredStreamingRejectsUnanchoredJoins) {
  SparkConfig config;
  config.structured = true;
  SparkEngine engine(cluster_->strings(), config);
  engine.LoadStored(base_);
  ASSERT_TRUE(engine.streams()->Define("Tweet_Stream").ok());
  ASSERT_TRUE(engine.streams()->Feed(0, tweets_).ok());

  // query_ has no constant anchor: unsupported, like L4-L6 in the paper.
  auto exec = engine.ExecuteContinuous(query_, 10000);
  EXPECT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kUnimplemented);

  // An anchored query runs (like L1-L3).
  Query anchored = *ParseQuery(R"(
      REGISTER QUERY A AS
      SELECT ?Z
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      WHERE { GRAPH <Tweet_Stream> { Logan po ?Z } })",
                               cluster_->strings());
  auto exec2 = engine.ExecuteContinuous(anchored, 10000);
  ASSERT_TRUE(exec2.ok()) << exec2.status().ToString();
  EXPECT_EQ(exec2->result.rows.size(), 1u);
}

TEST_F(BaselineParityTest, WukongExtMatchesIntegrated) {
  WukongExt ext(cluster_->strings());
  ext.LoadStored(base_);
  ext.Inject(tweets_);
  ext.Inject(likes_);

  // Wukong/Ext cannot tell streams apart; with both windows >= the data span
  // it matches the reference.
  Query q = query_;
  q.windows[1].range_ms = 10000;  // Align the like window with the data.
  auto exec = ext.ExecuteContinuous(q, 10000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();

  auto handle = cluster_->RegisterContinuousParsed(q);
  ASSERT_TRUE(handle.ok());
  auto ref = cluster_->ExecuteContinuousAt(*handle, 10000);
  ASSERT_TRUE(ref.ok());
  EXPECT_EQ(RowSet(exec->result), RowSet(ref->result));
}

TEST_F(BaselineParityTest, WukongExtWindowsFilterByTime) {
  WukongExt ext(cluster_->strings());
  ext.LoadStored(base_);
  ext.Inject(tweets_);
  ext.Inject(likes_);
  // A 1-second window at t=3s sees only the first tweet.
  Query q = *ParseQuery(R"(
      REGISTER QUERY W AS
      SELECT ?X ?Z
      FROM STREAM <Tweet_Stream> [RANGE 1s STEP 1s]
      WHERE { GRAPH <Tweet_Stream> { ?X po ?Z } })",
                        cluster_->strings());
  auto exec = ext.ExecuteContinuous(q, 3000);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->result.rows.size(), 1u);
  ASSERT_TRUE(ext.MemoryBytes() > 0);
}

TEST_F(BaselineParityTest, WukongExtMemoryGrowsWithoutGc) {
  WukongExt ext(cluster_->strings());
  ext.LoadStored(base_);
  size_t before = ext.MemoryBytes();
  StringServer* s = cluster_->strings();
  StreamTupleVec bulk;
  for (int i = 0; i < 1000; ++i) {
    bulk.push_back(StreamTuple{{s->InternVertex("u" + std::to_string(i)),
                                s->InternPredicate("ga"),
                                s->InternVertex("pos" + std::to_string(i))},
                               static_cast<StreamTime>(i),
                               TupleKind::kTiming});
  }
  ext.Inject(bulk);
  EXPECT_GT(ext.MemoryBytes(), before + 1000 * sizeof(VertexId));
}

}  // namespace
}  // namespace wukongs
