// Fault-tolerance tests: batch logging, replay, and full cluster recovery
// (paper §5 "Fault tolerance": reload initial data, replay checkpoints,
// re-register continuous queries, at-least-once semantics).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "src/cluster/cluster.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace {

class CheckpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wukongs_ckpt_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

StreamBatch MakeBatch(StreamId stream, BatchSeq seq, size_t tuples) {
  StreamBatch b;
  b.stream = stream;
  b.seq = seq;
  for (size_t i = 0; i < tuples; ++i) {
    b.tuples.push_back(StreamTuple{{seq * 100 + i + 1, 4, seq * 100 + i + 2},
                                   seq * 100 + i,
                                   i % 2 == 0 ? TupleKind::kTimeless
                                              : TupleKind::kTiming});
  }
  return b;
}

TEST_F(CheckpointTest, LogRoundTrip) {
  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  StreamBatch b0 = MakeBatch(0, 0, 3);
  StreamBatch b1 = MakeBatch(1, 0, 0);
  StreamBatch b2 = MakeBatch(0, 1, 5);
  ASSERT_TRUE(log->Append(b0).ok());
  ASSERT_TRUE(log->Append(b1).ok());
  ASSERT_TRUE(log->Append(b2).ok());
  ASSERT_TRUE(log->Sync().ok());
  EXPECT_EQ(log->appended_batches(), 3u);

  auto read = ReadCheckpointLog(Path("batches.log"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 3u);
  EXPECT_EQ((*read)[0].tuples, b0.tuples);
  EXPECT_EQ((*read)[1].stream, 1u);
  EXPECT_TRUE((*read)[1].tuples.empty());
  EXPECT_EQ((*read)[2].tuples.size(), 5u);
  EXPECT_EQ((*read)[2].tuples[1].kind, TupleKind::kTiming);
}

TEST_F(CheckpointTest, MissingLogIsNotFound) {
  auto read = ReadCheckpointLog(Path("nope.log"));
  EXPECT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, TornTailIsDropped) {
  {
    auto log = CheckpointLog::Create(Path("torn.log"));
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeBatch(0, 0, 2)).ok());
  }
  // Append garbage simulating a torn record.
  {
    std::FILE* f = std::fopen(Path("torn.log").c_str(), "ab");
    ASSERT_NE(f, nullptr);
    uint32_t stream = 0;
    uint64_t seq = 1;
    uint64_t count = 10;  // Claims 10 tuples but writes none.
    std::fwrite(&stream, 4, 1, f);
    std::fwrite(&seq, 8, 1, f);
    std::fwrite(&count, 8, 1, f);
    std::fclose(f);
  }
  auto read = ReadCheckpointLog(Path("torn.log"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 1u);  // Only the intact record survives.
}

TEST_F(CheckpointTest, CorruptedTailIsDropped) {
  // A flipped byte (not a truncation) in the last record must be caught by
  // the CRC32 footer and the record dropped, keeping the clean prefix.
  {
    auto log = CheckpointLog::Create(Path("corrupt.log"));
    ASSERT_TRUE(log.ok());
    ASSERT_TRUE(log->Append(MakeBatch(0, 0, 2)).ok());
    ASSERT_TRUE(log->Append(MakeBatch(0, 1, 3)).ok());
  }
  auto size = std::filesystem::file_size(Path("corrupt.log"));
  {
    std::FILE* f = std::fopen(Path("corrupt.log").c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    // Flip a byte inside the last record's payload (before its CRC footer).
    ASSERT_EQ(std::fseek(f, static_cast<long>(size) - 12, SEEK_SET), 0);
    int c = std::fgetc(f);
    ASSERT_NE(c, EOF);
    ASSERT_EQ(std::fseek(f, static_cast<long>(size) - 12, SEEK_SET), 0);
    std::fputc(c ^ 0xFF, f);
    std::fclose(f);
  }
  auto read = ReadCheckpointLog(Path("corrupt.log"));
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->size(), 1u);
  EXPECT_EQ((*read)[0].seq, 0u);
}

TEST_F(CheckpointTest, TruncationAtEveryByteOffsetYieldsLongestCleanPrefix) {
  // Property: however the log is torn, reading it (a) never errors, (b) never
  // surfaces a partial batch, and (c) returns exactly the records whose last
  // byte survived — the longest clean prefix.
  std::vector<StreamBatch> originals = {MakeBatch(0, 0, 3), MakeBatch(1, 0, 0),
                                        MakeBatch(0, 1, 5), MakeBatch(1, 1, 1),
                                        MakeBatch(0, 2, 7)};
  std::string full = Path("full.log");
  std::vector<uintmax_t> boundaries;  // File size after each append.
  {
    auto log = CheckpointLog::Create(full);
    ASSERT_TRUE(log.ok());
    for (const StreamBatch& b : originals) {
      ASSERT_TRUE(log->Append(b).ok());  // Append flushes per record.
      boundaries.push_back(std::filesystem::file_size(full));
    }
    ASSERT_TRUE(log->Sync().ok());
  }
  uintmax_t size = std::filesystem::file_size(full);
  ASSERT_EQ(size, boundaries.back());

  size_t prev_count = 0;
  for (uintmax_t len = 0; len <= size; ++len) {
    std::string torn = Path("torn.log");
    std::filesystem::copy_file(full, torn,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(torn, len);

    auto read = ReadCheckpointLog(torn);
    ASSERT_TRUE(read.ok()) << "len " << len << ": " << read.status().ToString();

    // Expected count: records fully contained in the first `len` bytes.
    size_t expect = 0;
    while (expect < boundaries.size() && boundaries[expect] <= len) {
      ++expect;
    }
    ASSERT_EQ(read->size(), expect) << "len " << len;
    for (size_t i = 0; i < expect; ++i) {
      // No partial batch, ever: each surviving record is byte-exact.
      ASSERT_EQ((*read)[i].stream, originals[i].stream) << "len " << len;
      ASSERT_EQ((*read)[i].seq, originals[i].seq) << "len " << len;
      ASSERT_EQ((*read)[i].tuples, originals[i].tuples) << "len " << len;
    }
    ASSERT_GE(read->size(), prev_count);  // Monotone in surviving bytes.
    prev_count = read->size();
  }
  EXPECT_EQ(prev_count, originals.size());  // Untorn file reads fully.
}

TEST_F(CheckpointTest, QueryRegistryRoundTrip) {
  std::vector<RegisteredQueryRecord> queries = {
      {"REGISTER QUERY a AS SELECT ?X ...", 0},
      {"REGISTER QUERY b AS SELECT ?Y ...", 3},
  };
  ASSERT_TRUE(WriteQueryRegistry(Path("reg.bin"), queries).ok());
  auto read = ReadQueryRegistry(Path("reg.bin"));
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0].text, queries[0].text);
  EXPECT_EQ((*read)[1].home, 3u);
}

TEST_F(CheckpointTest, ClusterRecoveryReproducesState) {
  // Build a live cluster with logging enabled, run streams through it, then
  // rebuild a second cluster from the log and check both answer the same.
  ClusterConfig config;
  config.nodes = 2;
  config.batch_interval_ms = 100;

  auto build_base = [](Cluster* c) {
    StringServer* s = c->strings();
    std::vector<Triple> base;
    for (int i = 0; i < 50; ++i) {
      base.push_back({s->InternVertex("user" + std::to_string(i)),
                      s->InternPredicate("fo"),
                      s->InternVertex("user" + std::to_string((i + 1) % 50))});
    }
    c->LoadBase(base);
  };

  std::string one_shot = "SELECT ?X ?Y WHERE { ?X po ?Y }";

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  size_t live_rows = 0;
  {
    Cluster live(config);
    StreamId posts = *live.DefineStream("Post_Stream", {"ga"});
    build_base(&live);
    live.SetBatchLogger([&](const StreamBatch& b) {
      ASSERT_TRUE(log->Append(b).ok());
    });
    StringServer* s = live.strings();
    StreamTupleVec tuples;
    for (int i = 0; i < 200; ++i) {
      tuples.push_back(StreamTuple{{s->InternVertex("user" + std::to_string(i % 50)),
                                    s->InternPredicate("po"),
                                    s->InternVertex("post" + std::to_string(i))},
                                   static_cast<StreamTime>(i * 10),
                                   TupleKind::kTimeless});
    }
    ASSERT_TRUE(live.FeedStream(posts, tuples).ok());
    live.AdvanceStreams(2000);
    auto exec = live.OneShot(one_shot);
    ASSERT_TRUE(exec.ok());
    live_rows = exec->result.rows.size();
    EXPECT_EQ(live_rows, 200u);
  }

  // Recovery: fresh cluster, reload initial data, replay the checkpoint log.
  Cluster recovered(config);
  StreamId posts = *recovered.DefineStream("Post_Stream", {"ga"});
  (void)posts;
  build_base(&recovered);
  auto batches = ReadCheckpointLog(Path("batches.log"));
  ASSERT_TRUE(batches.ok());
  ASSERT_GT(batches->size(), 0u);
  for (const StreamBatch& b : *batches) {
    ASSERT_TRUE(recovered.ReplayBatch(b).ok());
  }
  auto exec = recovered.OneShot(one_shot);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), live_rows);

  // Live feeding resumes cleanly after replay (at-least-once, no gaps).
  StringServer* s = recovered.strings();
  ASSERT_TRUE(recovered
                  .FeedStream(posts, {StreamTuple{{s->InternVertex("user0"),
                                                   s->InternPredicate("po"),
                                                   s->InternVertex("post-new")},
                                                  2500,
                                                  TupleKind::kTimeless}})
                  .ok());
  recovered.AdvanceStreams(3000);
  auto exec2 = recovered.OneShot(one_shot);
  ASSERT_TRUE(exec2.ok());
  EXPECT_EQ(exec2->result.rows.size(), live_rows + 1);
}

TEST_F(CheckpointTest, RecoveryRestoresRegisteredQueries) {
  // Queries are persisted as text and re-registered after recovery (§5).
  std::string qc = R"(
      REGISTER QUERY QC AS
      SELECT ?X ?Y
      FROM STREAM <S> [RANGE 1s STEP 1s]
      WHERE { GRAPH <S> { ?X po ?Y } })";
  ASSERT_TRUE(WriteQueryRegistry(Path("reg.bin"),
                                 {{qc, /*home=*/1}})
                  .ok());

  ClusterConfig config;
  config.nodes = 2;
  Cluster recovered(config);
  ASSERT_TRUE(recovered.DefineStream("S").ok());
  auto registry = ReadQueryRegistry(Path("reg.bin"));
  ASSERT_TRUE(registry.ok());
  for (const RegisteredQueryRecord& rec : *registry) {
    auto handle = recovered.RegisterContinuous(rec.text, rec.home);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    EXPECT_EQ(recovered.ContinuousQueryOf(*handle).name, "QC");
  }
}

}  // namespace
}  // namespace wukongs
