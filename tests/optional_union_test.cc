// Tests for OPTIONAL (left-join) and UNION (alternation) — the SPARQL
// features beyond the paper's prototype — on stored data, stream windows,
// and in combination with filters and solution modifiers.

#include <gtest/gtest.h>

#include <set>

#include "src/cluster/cluster.h"
#include "src/sparql/parser.h"

namespace wukongs {
namespace {

class OptionalUnionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = 100;
    cluster_ = std::make_unique<Cluster>(config);
    stream_ = *cluster_->DefineStream("S");

    StringServer* s = cluster_->strings();
    auto triple = [&](const char* a, const char* p, const char* o) {
      return Triple{s->InternVertex(a), s->InternPredicate(p), s->InternVertex(o)};
    };
    // alice and bob have emails; carol does not. alice follows bob & carol.
    cluster_->LoadBase(std::vector<Triple>{
        triple("alice", "fo", "bob"), triple("alice", "fo", "carol"),
        triple("bob", "fo", "carol"), triple("alice", "email", "a@x"),
        triple("bob", "email", "b@x"), triple("alice", "age", "30"),
        triple("bob", "age", "40")});

    auto tuple = [&](const char* a, const char* p, const char* o, StreamTime ts) {
      return StreamTuple{{s->InternVertex(a), s->InternPredicate(p),
                          s->InternVertex(o)},
                         ts,
                         TupleKind::kTimeless};
    };
    ASSERT_TRUE(cluster_
                    ->FeedStream(stream_, {tuple("alice", "po", "p1", 100),
                                           tuple("carol", "po", "p2", 300)})
                    .ok());
    cluster_->AdvanceStreams(1000);
  }

  std::string Name(const ResultValue& v) {
    if (v.vid == kUnboundBinding) {
      return "";
    }
    return *cluster_->strings()->VertexString(v.vid);
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId stream_ = 0;
};

TEST_F(OptionalUnionTest, OptionalKeepsUnmatchedRows) {
  // Everyone alice follows, with email if they have one.
  auto exec = cluster_->OneShot(R"(
      SELECT ?F ?E WHERE {
        alice fo ?F
        OPTIONAL { ?F email ?E }
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 2u);
  std::set<std::pair<std::string, std::string>> rows;
  for (const auto& row : exec->result.rows) {
    rows.emplace(Name(row[0]), Name(row[1]));
  }
  EXPECT_TRUE(rows.count({"bob", "b@x"}));
  EXPECT_TRUE(rows.count({"carol", ""}));  // carol has no email: unbound.
}

TEST_F(OptionalUnionTest, OptionalWithMultipleMatchesExpands) {
  // bob is followed by alice; carol by alice and bob.
  auto exec = cluster_->OneShot(R"(
      SELECT ?F ?W WHERE {
        alice fo ?F
        OPTIONAL { ?W fo ?F }
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // bob: 1 follower (alice); carol: 2 followers -> 3 rows total.
  EXPECT_EQ(exec->result.rows.size(), 3u);
}

TEST_F(OptionalUnionTest, TwoOptionalGroupsAreIndependent) {
  auto exec = cluster_->OneShot(R"(
      SELECT ?F ?E ?A WHERE {
        alice fo ?F
        OPTIONAL { ?F email ?E }
        OPTIONAL { ?F age ?A }
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 2u);
  for (const auto& row : exec->result.rows) {
    if (Name(row[0]) == "carol") {
      EXPECT_EQ(Name(row[1]), "");
      EXPECT_EQ(Name(row[2]), "");
    } else {
      EXPECT_EQ(Name(row[1]), "b@x");
      EXPECT_EQ(Name(row[2]), "40");
    }
  }
}

TEST_F(OptionalUnionTest, OptionalOverStreamWindow) {
  // Followees of alice, with their fresh posts if any.
  auto handle = cluster_->RegisterContinuous(R"(
      REGISTER QUERY q AS
      SELECT ?F ?P
      FROM STREAM <S> [RANGE 1s STEP 100ms]
      WHERE {
        alice fo ?F
        OPTIONAL { GRAPH <S> { ?F po ?P } }
      })");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto exec = cluster_->ExecuteContinuousAt(*handle, 1000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  std::set<std::pair<std::string, std::string>> rows;
  for (const auto& row : exec->result.rows) {
    rows.emplace(Name(row[0]), Name(row[1]));
  }
  EXPECT_TRUE(rows.count({"carol", "p2"}));  // Posted in the window.
  EXPECT_TRUE(rows.count({"bob", ""}));      // Did not.
}

TEST_F(OptionalUnionTest, UnionConcatenatesBranches) {
  auto exec = cluster_->OneShot(R"(
      SELECT ?X WHERE {
        { alice fo ?X } UNION { ?X email b@x }
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // Branch 1: bob, carol. Branch 2: bob. Bag union: 3 rows.
  EXPECT_EQ(exec->result.rows.size(), 3u);
}

TEST_F(OptionalUnionTest, UnionWithDistinctDeduplicates) {
  auto exec = cluster_->OneShot(R"(
      SELECT DISTINCT ?X WHERE {
        { alice fo ?X } UNION { ?X email b@x }
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), 2u);  // bob, carol.
}

TEST_F(OptionalUnionTest, UnionAcrossGraphs) {
  // People who follow carol (stored) or posted in the window (stream).
  auto handle = cluster_->RegisterContinuous(R"(
      REGISTER QUERY q AS
      SELECT DISTINCT ?X
      FROM STREAM <S> [RANGE 1s STEP 100ms]
      WHERE {
        { ?X fo carol } UNION { GRAPH <S> { ?X po ?P } }
      })");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  auto exec = cluster_->ExecuteContinuousAt(*handle, 1000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  std::set<std::string> names;
  for (const auto& row : exec->result.rows) {
    names.insert(Name(row[0]));
  }
  EXPECT_EQ(names, (std::set<std::string>{"alice", "bob", "carol"}));
}

TEST_F(OptionalUnionTest, UnionThreeBranches) {
  auto exec = cluster_->OneShot(R"(
      SELECT ?X WHERE {
        { ?X email a@x } UNION { ?X email b@x } UNION { ?X age 30 }
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), 3u);
}

TEST_F(OptionalUnionTest, FilterAppliesToUnionBranches) {
  auto exec = cluster_->OneShot(R"(
      SELECT ?X ?A WHERE {
        { ?X age ?A } UNION { alice fo ?X . ?X age ?A }
        FILTER (?A > 35)
      })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // Branch 1: bob(40). Branch 2: bob(40). alice(30) filtered in both.
  EXPECT_EQ(exec->result.rows.size(), 2u);
  for (const auto& row : exec->result.rows) {
    EXPECT_EQ(Name(row[0]), "bob");
  }
}

TEST_F(OptionalUnionTest, ParserRejectsSingleBracedGroup) {
  StringServer s;
  EXPECT_FALSE(ParseQuery("SELECT ?X WHERE { { ?X a b } }", &s).ok());
}

TEST_F(OptionalUnionTest, ParserRejectsAggregateOverUnion) {
  StringServer s;
  EXPECT_FALSE(ParseQuery(
                   "SELECT COUNT(?X) WHERE { { ?X a b } UNION { ?X c d } }", &s)
                   .ok());
}

TEST_F(OptionalUnionTest, ParserRejectsNestedOptional) {
  StringServer s;
  EXPECT_FALSE(ParseQuery(
                   "SELECT ?X WHERE { ?X a b OPTIONAL { ?X c ?Y OPTIONAL "
                   "{ ?Y e ?Z } } }",
                   &s)
                   .ok());
}

TEST_F(OptionalUnionTest, OrderByOverUnion) {
  auto exec = cluster_->OneShot(R"(
      SELECT ?X WHERE {
        { ?X email a@x } UNION { ?X email b@x }
      } ORDER BY DESC(?X) LIMIT 1)");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 1u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "bob");
}

}  // namespace
}  // namespace wukongs
