// Unit tests for the graph-exploration executor and planner, using a local
// in-memory NeighborSource (no cluster machinery).

#include <gtest/gtest.h>

#include <map>

#include "src/engine/executor.h"
#include "src/sparql/parser.h"
#include "src/store/gstore.h"
#include "src/store/planner.h"

namespace wukongs {
namespace {

// Adapts a single GStore shard as a NeighborSource.
class LocalSource : public NeighborSource {
 public:
  explicit LocalSource(const GStore* store) : store_(store) {}

  void GetNeighbors(Key key, std::vector<VertexId>* out) const override {
    store_->GetEdgesInto(key, GStore::kSnapshotInfinity, &tmp_);
    out->insert(out->end(), tmp_.begin(), tmp_.end());
  }
  size_t EstimateCount(Key key) const override {
    return store_->EdgeCount(key, GStore::kSnapshotInfinity);
  }

 private:
  const GStore* store_;
  mutable std::vector<VertexId> tmp_;
};

// Builds the paper's Fig. 1 stored graph (X-Lab).
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto load = [&](const char* s, const char* p, const char* o) {
      store_.LoadTriple({strings_.InternVertex(s), strings_.InternPredicate(p),
                         strings_.InternVertex(o)});
    };
    load("Logan", "fo", "Erik");
    load("Erik", "fo", "Logan");
    load("Logan", "po", "T-13");
    load("Logan", "po", "T-14");
    load("Erik", "po", "T-12");
    load("T-12", "ht", "#sosp17");
    load("T-13", "ht", "#sosp17");
    load("Erik", "li", "T-13");
    load("Logan", "li", "T-12");

    source_ = std::make_unique<LocalSource>(&store_);
    ctx_.sources = {source_.get()};
    ctx_.strings = &strings_;
  }

  QueryResult Run(const std::string& text) {
    auto q = ParseQuery(text, &strings_);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    std::vector<int> plan = PlanQuery(*q, ctx_);
    auto result = ExecuteQuery(*q, plan, ctx_);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return std::move(*result);
  }

  std::string VertexName(const ResultValue& v) {
    return *strings_.VertexString(v.vid);
  }

  StringServer strings_;
  GStore store_{0};
  std::unique_ptr<LocalSource> source_;
  ExecContext ctx_;
};

TEST_F(ExecutorTest, OneShotQueryFromPaper) {
  // Paper Fig. 2(a): posts by Logan, tagged #sosp17, liked by Erik -> T-13.
  QueryResult r = Run(
      "SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 . Erik li ?X }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(VertexName(r.rows[0][0]), "T-13");
}

TEST_F(ExecutorTest, ConstantToVariableExpansion) {
  QueryResult r = Run("SELECT ?X WHERE { Logan po ?X }");
  ASSERT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, BackwardExpansion) {
  QueryResult r = Run("SELECT ?X WHERE { ?X ht #sosp17 }");
  ASSERT_EQ(r.rows.size(), 2u);  // T-12, T-13.
}

TEST_F(ExecutorTest, UnboundPatternUsesIndexVertex) {
  QueryResult r = Run("SELECT ?X ?Y WHERE { ?X po ?Y }");
  ASSERT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, JoinAcrossPatterns) {
  // Who follows someone who liked T-13? Erik li T-13, Logan fo Erik.
  QueryResult r = Run("SELECT ?X WHERE { ?X fo ?Y . ?Y li T-13 }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(VertexName(r.rows[0][0]), "Logan");
}

TEST_F(ExecutorTest, ExistenceCheckPrunesRows) {
  // Mutual follow keeps both; requiring po T-12 keeps only Erik.
  QueryResult r = Run("SELECT ?X WHERE { ?X fo ?Y . ?X po T-12 }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(VertexName(r.rows[0][0]), "Erik");
}

TEST_F(ExecutorTest, EmptyResultOnNoMatch) {
  QueryResult r = Run("SELECT ?X WHERE { Thor po ?X }");
  EXPECT_TRUE(r.rows.empty());
}

TEST_F(ExecutorTest, ConstantOnlyPatternGatesResults) {
  // "Logan fo Erik" holds, so the other pattern's bindings survive.
  QueryResult r = Run("SELECT ?X WHERE { Logan fo Erik . Logan po ?X }");
  EXPECT_EQ(r.rows.size(), 2u);
  // "Logan fo Thor" fails: nothing survives.
  QueryResult r2 = Run("SELECT ?X WHERE { Logan po ?X . Logan fo Thor }");
  EXPECT_TRUE(r2.rows.empty());
}

TEST_F(ExecutorTest, CountAggregate) {
  QueryResult r = Run("SELECT COUNT(?X) WHERE { ?X ht #sosp17 }");
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_TRUE(r.rows[0][0].is_number);
  EXPECT_DOUBLE_EQ(r.rows[0][0].number, 2.0);
}

TEST_F(ExecutorTest, GroupByCounts) {
  QueryResult r = Run(
      "SELECT ?X COUNT(?Y) WHERE { ?X po ?Y } GROUP BY ?X");
  ASSERT_EQ(r.rows.size(), 2u);  // Logan (2 posts), Erik (1 post).
  std::map<std::string, double> counts;
  for (const auto& row : r.rows) {
    counts[VertexName(row[0])] = row[1].number;
  }
  EXPECT_DOUBLE_EQ(counts["Logan"], 2.0);
  EXPECT_DOUBLE_EQ(counts["Erik"], 1.0);
}

TEST_F(ExecutorTest, FilterEqualityOnVertex) {
  QueryResult r = Run("SELECT ?X ?Y WHERE { ?X po ?Y . FILTER (?X = Logan) }");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, NumericAggregates) {
  // Numeric literals as objects.
  auto load = [&](const char* s, const char* p, const char* o) {
    store_.LoadTriple({strings_.InternVertex(s), strings_.InternPredicate(p),
                       strings_.InternVertex(o)});
  };
  load("sensor1", "val", "10");
  load("sensor1", "val", "20");
  load("sensor2", "val", "5");
  QueryResult r = Run(
      "SELECT ?S (AVG(?V) AS ?a) (MAX(?V) AS ?m) WHERE { ?S val ?V } GROUP BY ?S");
  ASSERT_EQ(r.rows.size(), 2u);
  std::map<std::string, std::pair<double, double>> by_sensor;
  for (const auto& row : r.rows) {
    by_sensor[VertexName(row[0])] = {row[1].number, row[2].number};
  }
  EXPECT_DOUBLE_EQ(by_sensor["sensor1"].first, 15.0);
  EXPECT_DOUBLE_EQ(by_sensor["sensor1"].second, 20.0);
  EXPECT_DOUBLE_EQ(by_sensor["sensor2"].first, 5.0);
}

TEST_F(ExecutorTest, NumericFilter) {
  auto load = [&](const char* s, const char* p, const char* o) {
    store_.LoadTriple({strings_.InternVertex(s), strings_.InternPredicate(p),
                       strings_.InternVertex(o)});
  };
  load("sensor1", "val", "10");
  load("sensor2", "val", "50");
  QueryResult r = Run("SELECT ?S WHERE { ?S val ?V . FILTER (?V > 30) }");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(VertexName(r.rows[0][0]), "sensor2");
}

TEST_F(ExecutorTest, PlannerStartsFromConstant) {
  auto q = ParseQuery("SELECT ?X ?Y WHERE { ?X fo ?Y . Logan po ?Z . ?Z ht ?W }",
                      &strings_);
  ASSERT_TRUE(q.ok());
  std::vector<int> plan = PlanQuery(*q, ctx_);
  // First step must be the constant-rooted pattern (Logan po ?Z).
  EXPECT_EQ(plan[0], 1);
}

TEST_F(ExecutorTest, PlannerPrefersConnectedPatterns) {
  auto q = ParseQuery("SELECT ?X WHERE { Erik li ?X . ?X ht ?T . ?A fo ?B }",
                      &strings_);
  ASSERT_TRUE(q.ok());
  std::vector<int> plan = PlanQuery(*q, ctx_);
  EXPECT_EQ(plan[0], 0);  // Constant seed.
  EXPECT_EQ(plan[1], 1);  // Connected via ?X, before the disconnected ?A fo ?B.
}

TEST_F(ExecutorTest, StepHookObservesEveryStep) {
  auto q = ParseQuery("SELECT ?X WHERE { Logan po ?X . ?X ht #sosp17 }", &strings_);
  ASSERT_TRUE(q.ok());
  std::vector<int> plan = PlanQuery(*q, ctx_);
  size_t steps = 0;
  auto table = ExecutePatterns(*q, plan, ctx_,
                               [&](const TriplePattern&, size_t, size_t, size_t) {
                                 ++steps;
                               });
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(steps, 2u);
}

}  // namespace
}  // namespace wukongs
