// Tail robustness (DESIGN.md §5.11): end-to-end latency budgets, hedged
// fork-join sub-queries, gray-failure (straggler) demotion, and the
// deadline-aware admission door.
//
// The lane is sliced three ways in tests/CMakeLists.txt: Hedge*/Straggler*/
// Deadline* suites form the `hedge` ctest label; RetryJitterPropertyTest
// rides the existing `property` lane. HedgeDifferentialTest is the
// seed-sweeped twin-cluster audit (gray failures, jitter, hedging and
// demotion are all cost-model-only, so a perturbed cluster must return
// byte-identical bags to a clean one — and a budgeted run must return a
// sound subset with a truthful declared completeness).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/client.h"
#include "src/cluster/cluster.h"
#include "src/cluster/hedge.h"
#include "src/cluster/worker_pool.h"
#include "src/common/deadline.h"
#include "src/common/retry.h"
#include "src/common/rng.h"
#include "src/fault/fault_injector.h"
#include "src/obs/metrics.h"
#include "src/overload/admission_controller.h"
#include "src/overload/phi_accrual.h"
#include "src/overload/straggler_detector.h"
#include "src/sparql/parser.h"
#include "src/testkit/reference_oracle.h"

namespace wukongs {
namespace {

using testkit::CanonicalBag;

// Non-selective two-hop join (all-variable patterns, so IsSelective is
// false and a forced fork-join runs the full scatter/gather hook).
constexpr char kJoin[] = "SELECT ?X ?Y ?Z WHERE { ?X p0 ?Y . ?Y p1 ?Z }";
constexpr char kScan[] = "SELECT ?X ?Y WHERE { ?X p0 ?Y }";

// Seeded base graph: dense enough that the two-hop join ships >64-row
// binding tables (the large-step branch of the fork-join cost hook).
std::vector<Triple> MakeBase(StringServer* s, uint64_t seed, int triples) {
  Rng rng(seed ^ 0x5eed5eedull);
  auto ent = [&](uint64_t i) {
    return s->InternVertex("e" + std::to_string(i));
  };
  std::vector<Triple> base;
  base.reserve(static_cast<size_t>(triples));
  for (int i = 0; i < triples; ++i) {
    base.push_back({ent(rng.Uniform(0, 29)),
                    s->InternPredicate(i % 2 == 0 ? "p0" : "p1"),
                    ent(rng.Uniform(0, 29))});
  }
  return base;
}

// True when `sub` (a CanonicalBag) is a sub-bag of `full`.
bool IsSubBag(const std::vector<std::string>& sub,
              const std::vector<std::string>& full) {
  return std::includes(full.begin(), full.end(), sub.begin(), sub.end());
}

// --- HedgeDedup: exactly-once merging of primary/backup responses. ---

TEST(HedgeDedupTest, FirstResponseWinsAndLoserIsSuppressed) {
  HedgeDedup dedup;
  EXPECT_TRUE(dedup.Accept(1, "a"));
  EXPECT_FALSE(dedup.Accept(1, "a"));  // Loser of the pair: dropped.
  EXPECT_TRUE(dedup.Accept(2, "b"));   // Distinct sub-request: fresh slot.
  EXPECT_EQ(dedup.accepted(), 2u);
  EXPECT_EQ(dedup.duplicates(), 1u);
  EXPECT_EQ(dedup.mismatches(), 0u);
}

TEST(HedgeDedupTest, DivergentDuplicateIsFlaggedAsMismatch) {
  HedgeDedup dedup;
  EXPECT_TRUE(dedup.Accept(7, "rows=3"));
  EXPECT_FALSE(dedup.Accept(7, "rows=4"));  // Still dropped — but flagged.
  EXPECT_EQ(dedup.mismatches(), 1u);
}

// --- Deadline / DeadlineScope over the SimCost clock. ---

TEST(DeadlineScopeTest, InactiveByDefaultAndOnZeroBudget) {
  EXPECT_FALSE(Deadline::Active());
  EXPECT_FALSE(Deadline::ExpiredNow());
  EXPECT_EQ(Deadline::RemainingNs(), 0.0);
  DeadlineScope none(0.0);
  EXPECT_FALSE(Deadline::Active());
  DeadlineScope negative(-1.0);
  EXPECT_FALSE(Deadline::Active());
}

TEST(DeadlineScopeTest, ExpiresWhenModeledCostCrossesBudget) {
  DeadlineScope scope(0.001);  // 1000 modeled ns.
  ASSERT_TRUE(Deadline::Active());
  EXPECT_FALSE(Deadline::ExpiredNow());
  SimCost::Add(999.0);
  EXPECT_FALSE(Deadline::ExpiredNow());
  EXPECT_NEAR(Deadline::RemainingNs(), 1.0, 1e-9);
  SimCost::Add(1.0);
  EXPECT_TRUE(Deadline::ExpiredNow());
  EXPECT_EQ(Deadline::RemainingNs(), 0.0);
}

TEST(DeadlineScopeTest, ScopeRestoresPreviousState) {
  {
    DeadlineScope scope(1.0);
    EXPECT_TRUE(Deadline::Active());
  }
  EXPECT_FALSE(Deadline::Active());
}

TEST(DeadlineScopeTest, NestedScopeKeepsTighterBudget) {
  DeadlineScope outer(0.01);  // 10000 ns.
  {
    DeadlineScope inner(0.002);  // Tighter: 2000 ns.
    EXPECT_LE(Deadline::RemainingNs(), 2000.0);
  }
  // Outer budget restored (nothing was spent).
  EXPECT_NEAR(Deadline::RemainingNs(), 10000.0, 1e-6);
  SimCost::Add(9500.0);
  {
    // Inner asks for more than the outer has left: clamped to the outer
    // remainder — a sub-operation can never outlive its query's budget.
    DeadlineScope inner(1.0);
    EXPECT_LE(Deadline::RemainingNs(), 500.0);
  }
}

// --- Deadline enforcement through the cluster. ---

TEST(DeadlineClusterTest, EnforceOffIgnoresBudget) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 1, 120));
  auto exec = cluster.OneShot(kJoin, 0, 0.0001);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_FALSE(exec->deadline_expired);
  EXPECT_EQ(exec->completeness, 1.0);
}

TEST(DeadlineClusterTest, ForkJoinBudgetCancelsStepsButStaysSound) {
  obs::MetricsRegistry registry;
  ClusterConfig config;
  config.nodes = 4;
  config.transport = Transport::kTcp;
  config.force_fork_join = true;
  config.deadline.enforce = true;
  config.metrics = &registry;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 2, 200));

  auto full = cluster.OneShot(kJoin);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_FALSE(full->deadline_expired);
  EXPECT_EQ(full->completeness, 1.0);

  // 500 modeled ns cannot cover even one TCP fork-join round.
  auto budgeted = cluster.OneShot(kJoin, 0, 0.0005);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_TRUE(budgeted->deadline_expired);
  EXPECT_TRUE(budgeted->partial);
  EXPECT_LT(budgeted->completeness, 1.0);
  EXPECT_GT(budgeted->completeness, 0.0);
  // Cancelled rounds skip shipping, not local evaluation: the result is a
  // sound subset of the full answer.
  EXPECT_TRUE(IsSubBag(CanonicalBag(budgeted->result), CanonicalBag(full->result)));
  // Budget beats cost: the expired run charged less modeled network time.
  EXPECT_LT(budgeted->net_ms, full->net_ms);
  if constexpr (obs::kCompiledIn) {
    EXPECT_GE(registry.GetCounter("wukongs_deadline_expired_total")->value(), 1u);
    EXPECT_GE(
        registry.GetCounter("wukongs_deadline_cancelled_steps_total")->value(),
        1u);
  }
}

TEST(DeadlineClusterTest, InPlaceBudgetSkipsRemoteReads) {
  obs::MetricsRegistry registry;
  ClusterConfig config;
  config.nodes = 4;
  config.force_in_place = true;
  config.deadline.enforce = true;
  config.metrics = &registry;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 3, 200));

  auto full = cluster.OneShot(kJoin);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_FALSE(full->result.rows.empty());

  auto budgeted = cluster.OneShot(kJoin, 0, 0.0005);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_TRUE(budgeted->deadline_expired);
  EXPECT_TRUE(budgeted->partial);
  EXPECT_GE(budgeted->deadline_skipped_reads, 1u);
  EXPECT_LT(budgeted->completeness, 1.0);
  EXPECT_TRUE(IsSubBag(CanonicalBag(budgeted->result), CanonicalBag(full->result)));
  if constexpr (obs::kCompiledIn) {
    EXPECT_GE(
        registry.GetCounter("wukongs_deadline_skipped_reads_total")->value(),
        1u);
  }
}

TEST(DeadlineClusterTest, DefaultBudgetAppliesWhenCallerPassesNone) {
  ClusterConfig config;
  config.nodes = 4;
  config.force_in_place = true;
  config.deadline.enforce = true;
  config.deadline.default_budget_ms = 0.0005;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 4, 200));
  auto exec = cluster.OneShot(kJoin);  // No explicit deadline.
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->deadline_expired);
  EXPECT_LT(exec->completeness, 1.0);
}

TEST(DeadlineClusterTest, GenerousBudgetCompletesExactly) {
  ClusterConfig config;
  config.nodes = 4;
  config.transport = Transport::kTcp;
  config.force_fork_join = true;
  config.deadline.enforce = true;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 5, 200));
  auto full = cluster.OneShot(kJoin);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  auto budgeted = cluster.OneShot(kJoin, 0, 1e6);
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  EXPECT_FALSE(budgeted->deadline_expired);
  EXPECT_EQ(budgeted->completeness, 1.0);
  EXPECT_EQ(CanonicalBag(budgeted->result), CanonicalBag(full->result));
}

TEST(DeadlineClusterTest, ClientSurfacesExpiry) {
  ClusterConfig config;
  config.nodes = 4;
  config.force_in_place = true;
  config.deadline.enforce = true;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 6, 200));
  Client client(&cluster);
  auto ok = client.Submit(kJoin);
  ASSERT_TRUE(ok.ok());
  auto expired = client.Submit(kJoin, 0.0005);
  ASSERT_TRUE(expired.ok());
  EXPECT_TRUE(expired->deadline_expired);
  EXPECT_EQ(client.stats().deadline_expired, 1u);
}

// --- Deadline-aware admission (satellite: rejection split + retry hint). ---

TEST(DeadlineAdmissionTest, UnmeetableDeadlineRejectedWithRetryHint) {
  AdmissionConfig config;
  config.initial_service_ms = 5.0;
  config.workers = 1;
  AdmissionController admission(config);
  AdmissionRejection rejection;
  Status verdict = admission.Admit(1.0, &rejection);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(rejection.reason, AdmissionRejection::Reason::kDeadline);
  // Predicted latency (no queue + 5ms service) overshoots the 1ms deadline
  // by 4ms — that is exactly how long the caller should back off.
  EXPECT_NEAR(rejection.retry_after_ms, 4.0, 1e-9);
  EXPECT_NEAR(AdmissionController::ParseRetryAfterMs(verdict),
              rejection.retry_after_ms, 1e-6);
  EXPECT_EQ(admission.stats().rejected_deadline, 1u);
  // A generous deadline sails through.
  EXPECT_TRUE(admission.Admit(100.0).ok());
  admission.Complete(2.0);
}

TEST(DeadlineAdmissionTest, ConcurrencyCapRejectsWithQueueDrainHint) {
  AdmissionConfig config;
  config.max_concurrent = 1;
  config.initial_service_ms = 5.0;
  AdmissionController admission(config);
  ASSERT_TRUE(admission.Admit().ok());
  AdmissionRejection rejection;
  Status verdict = admission.Admit(0.0, &rejection);
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(rejection.reason, AdmissionRejection::Reason::kConcurrency);
  EXPECT_GT(rejection.retry_after_ms, 0.0);
  EXPECT_NEAR(AdmissionController::ParseRetryAfterMs(verdict),
              rejection.retry_after_ms, 1e-6);
  EXPECT_EQ(admission.stats().rejected_capacity, 1u);
  admission.Complete(1.0);
  EXPECT_TRUE(admission.Admit().ok());
  admission.Complete(1.0);
}

TEST(DeadlineAdmissionTest, ParseRetryAfterMsIgnoresForeignStatuses) {
  EXPECT_EQ(AdmissionController::ParseRetryAfterMs(Status::Ok()), 0.0);
  EXPECT_EQ(AdmissionController::ParseRetryAfterMs(
                Status::Unavailable("no hint here")),
            0.0);
}

TEST(DeadlineAdmissionTest, PoolSplitsRejectionCountersByReason) {
  obs::MetricsRegistry registry;
  ClusterConfig config;
  config.nodes = 1;
  config.metrics = &registry;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 7, 40));
  AdmissionConfig ac;
  ac.initial_service_ms = 5.0;
  AdmissionController admission(ac);
  WorkerPool pool(&cluster, 1);
  pool.SetAdmissionController(&admission);
  auto q = ParseQuery(kScan, cluster.strings());
  ASSERT_TRUE(q.ok());

  auto rejected = pool.SubmitOneShot(*q, 0, 1.0).get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_GT(AdmissionController::ParseRetryAfterMs(rejected.status()), 0.0);
  auto accepted = pool.SubmitOneShot(*q, 0, 0.0).get();
  ASSERT_TRUE(accepted.ok()) << accepted.status().ToString();
  pool.Drain();
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(registry.GetCounter("wukongs_query_rejections_total")->value(),
              1u);
    EXPECT_EQ(registry
                  .GetCounter(obs::MetricsRegistry::Labeled(
                      "wukongs_query_rejections_by_reason_total",
                      {{"reason", "deadline"}}))
                  ->value(),
              1u);
    EXPECT_EQ(registry
                  .GetCounter(obs::MetricsRegistry::Labeled(
                      "wukongs_query_rejections_by_reason_total",
                      {{"reason", "concurrency"}}))
                  ->value(),
              0u);
  }
}

// --- StragglerDetector unit behavior. ---

StragglerConfig FastStragglerConfig() {
  StragglerConfig config;
  config.enabled = true;
  config.ewma_alpha = 1.0;  // EWMA == last sample: exact arithmetic below.
  config.min_samples = 2;
  config.demote_after = 2;
  config.promote_after = 2;
  return config;
}

TEST(StragglerDetectorTest, MinSamplesGateBlocksEarlyJudgement) {
  StragglerConfig config = FastStragglerConfig();
  config.min_samples = 4;
  StragglerDetector detector(2, config);
  for (int i = 0; i < 3; ++i) {
    detector.Observe(0, 100000.0);
    detector.Observe(1, 1000.0);
  }
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kNone);
  EXPECT_FALSE(detector.slow(0));
}

TEST(StragglerDetectorTest, DemoteAfterStreakThenPromoteOnRecovery) {
  StragglerDetector detector(3, FastStragglerConfig());
  for (int i = 0; i < 2; ++i) {
    detector.Observe(0, 10000.0);
    detector.Observe(1, 1000.0);
    detector.Observe(2, 1000.0);
  }
  // Peer median for node 0 is 1000ns; 10000 > 3x1000 — outlier, but one
  // evaluation is not a demotion yet (hysteresis).
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kNone);
  EXPECT_FALSE(detector.slow(0));
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kDemote);
  EXPECT_TRUE(detector.slow(0));
  EXPECT_EQ(detector.slow_count(), 1u);
  EXPECT_EQ(detector.stats().demotions, 1u);

  // Recovery: EWMA (alpha=1) drops back to the peer level.
  detector.Observe(0, 1000.0);
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kNone);
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kPromote);
  EXPECT_FALSE(detector.slow(0));
  EXPECT_EQ(detector.stats().promotions, 1u);
}

TEST(StragglerDetectorTest, SelfIsExcludedFromPeerMedian) {
  // With only one peer, a straggler judged against a self-including median
  // would never look slow (median would sit halfway to its own EWMA).
  StragglerDetector detector(2, FastStragglerConfig());
  for (int i = 0; i < 2; ++i) {
    detector.Observe(0, 10000.0);
    detector.Observe(1, 1000.0);
  }
  detector.Evaluate(0);
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kDemote);
}

TEST(StragglerDetectorTest, ResetForgetsHistoryAndState) {
  StragglerDetector detector(2, FastStragglerConfig());
  for (int i = 0; i < 2; ++i) {
    detector.Observe(0, 10000.0);
    detector.Observe(1, 1000.0);
  }
  detector.Evaluate(0);
  detector.Evaluate(0);
  ASSERT_TRUE(detector.slow(0));
  detector.Reset(0);
  EXPECT_FALSE(detector.slow(0));
  EXPECT_EQ(detector.samples(0), 0u);
  EXPECT_EQ(detector.Evaluate(0), StragglerAction::kNone);  // Gate re-armed.
}

// --- Phi-accrual hysteresis (satellite: no-flap regression). ---

// A node hovering right at the quarantine threshold must not flap: phi
// oscillating just below quarantine_phi never quarantines, and while
// quarantined, phi between reactivate_phi and quarantine_phi never
// reactivates. Only a decisive crossing moves the state, exactly once.
TEST(StragglerPhiHysteresisTest, NearThresholdOscillationDoesNotFlap) {
  PhiAccrualConfig config;  // Defaults: quarantine 3.0 / reactivate 0.5 / 3 beats.
  FailureDetector detector(1, config);
  StreamTime now = 0;
  for (int i = 0; i < 16; ++i) {
    now += 100;
    detector.Heartbeat(0, now);
  }
  // Smallest silence that reaches `target` suspicion, found by probing the
  // pure phi estimate (Phi is const: probing does not advance state).
  auto gap_reaching = [&](double target) {
    StreamTime gap = 1;
    while (detector.Phi(0, now + gap) < target) {
      ++gap;
    }
    return gap;
  };

  for (int round = 0; round < 5; ++round) {
    StreamTime probe = now + gap_reaching(config.quarantine_phi) - 2;
    ASSERT_LT(detector.Phi(0, probe), config.quarantine_phi);
    detector.Evaluate(0, probe, /*caught_up=*/true);
    EXPECT_FALSE(detector.quarantined(0)) << "flapped on round " << round;
    now = probe;
    detector.Heartbeat(0, now);  // The late beat arrives; mean inflates.
  }
  EXPECT_EQ(detector.stats().quarantines, 0u);

  // One decisive silence: exactly one quarantine.
  now += gap_reaching(config.quarantine_phi);
  EXPECT_EQ(detector.Evaluate(0, now, true), HealthAction::kQuarantine);
  ASSERT_TRUE(detector.quarantined(0));
  EXPECT_EQ(detector.stats().quarantines, 1u);

  // Suspicion between the two thresholds: recovery must NOT begin (the
  // hysteresis band), no matter how many evaluations run.
  for (int round = 0; round < 4; ++round) {
    detector.Heartbeat(0, now);
    StreamTime probe = now + gap_reaching(config.reactivate_phi + 0.2);
    ASSERT_LT(detector.Phi(0, probe), config.quarantine_phi);
    EXPECT_EQ(detector.Evaluate(0, probe, true), HealthAction::kNone);
    EXPECT_TRUE(detector.quarantined(0));
    now = probe;
  }
  EXPECT_EQ(detector.stats().reactivations, 0u);

  // Tight healthy beats: reactivation needs `hysteresis_beats` consecutive
  // healthy evaluations — and fires exactly once.
  int reactivations = 0;
  for (int beat = 0; beat < 6; ++beat) {
    now += 10;
    detector.Heartbeat(0, now);
    if (detector.Evaluate(0, now + 1, true) == HealthAction::kReactivate) {
      ++reactivations;
      break;
    }
    EXPECT_LT(beat, 5) << "healthy streak never reactivated";
  }
  EXPECT_EQ(reactivations, 1);
  EXPECT_FALSE(detector.quarantined(0));
  EXPECT_EQ(detector.stats().quarantines, 1u);
  EXPECT_EQ(detector.stats().reactivations, 1u);
}

TEST(StragglerPhiHysteresisTest, CatchUpGatesReactivation) {
  PhiAccrualConfig config;
  config.hysteresis_beats = 2;
  FailureDetector detector(1, config);
  StreamTime now = 0;
  for (int i = 0; i < 8; ++i) {
    now += 100;
    detector.Heartbeat(0, now);
  }
  // Silence long past the threshold quarantines.
  now += 100000;
  ASSERT_EQ(detector.Evaluate(0, now, true), HealthAction::kQuarantine);
  // Healthy beats with a backlog (caught_up=false) must not reactivate.
  for (int beat = 0; beat < 4; ++beat) {
    now += 10;
    detector.Heartbeat(0, now);
    EXPECT_EQ(detector.Evaluate(0, now + 1, /*caught_up=*/false),
              HealthAction::kNone);
  }
  EXPECT_TRUE(detector.quarantined(0));
  // Once caught up, the streak completes and the node comes back.
  HealthAction last = HealthAction::kNone;
  for (int beat = 0; beat < 4 && last != HealthAction::kReactivate; ++beat) {
    now += 10;
    detector.Heartbeat(0, now);
    last = detector.Evaluate(0, now + 1, true);
  }
  EXPECT_EQ(last, HealthAction::kReactivate);
  EXPECT_FALSE(detector.quarantined(0));
}

// --- Straggler demotion through the cluster (gray-failure windows). ---

TEST(StragglerClusterTest, GrayWindowDemotesThenWindowEndPromotes) {
  FaultSchedule schedule;
  schedule.gray_failures.push_back({/*node=*/1, /*from_ms=*/100,
                                    /*until_ms=*/500, /*slow_factor=*/10.0});
  FaultInjector injector(schedule);
  obs::MetricsRegistry registry;
  ClusterConfig config;
  config.nodes = 3;
  config.fault_injector = &injector;
  config.metrics = &registry;
  config.straggler.enabled = true;
  config.straggler.min_samples = 4;
  config.straggler.demote_after = 2;
  config.straggler.promote_after = 2;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 8, 60));

  for (StreamTime t = 10; t <= 90; t += 10) {
    cluster.TickHealth(t);  // Warm-up: every node probes at the base cost.
  }
  EXPECT_FALSE(cluster.StragglerSlow(1));

  for (StreamTime t = 110; t <= 200; t += 10) {
    cluster.TickHealth(t);  // Gray window: node 1 serves 10x slower.
  }
  EXPECT_TRUE(cluster.StragglerSlow(1));
  EXPECT_GE(cluster.straggler_detector()->stats().demotions, 1u);
  EXPECT_FALSE(cluster.StragglerSlow(0));
  EXPECT_FALSE(cluster.StragglerSlow(2));

  // A demoted home is rerouted (the node still serves — gray, not down —
  // but new queries should not land on it).
  uint64_t reroutes_before = cluster.fault_stats().reroutes;
  auto exec = cluster.OneShot(kScan, /*home=*/1);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_GT(cluster.fault_stats().reroutes, reroutes_before);

  for (StreamTime t = 510; t <= 700; t += 10) {
    cluster.TickHealth(t);  // Window over: EWMA decays, promotion streak.
  }
  EXPECT_FALSE(cluster.StragglerSlow(1));
  EXPECT_GE(cluster.straggler_detector()->stats().promotions, 1u);
  if constexpr (obs::kCompiledIn) {
    EXPECT_GE(registry.GetCounter("wukongs_straggler_demotions_total")->value(),
              1u);
    EXPECT_GE(
        registry.GetCounter("wukongs_straggler_promotions_total")->value(),
        1u);
  }
}

TEST(StragglerClusterTest, LastHealthyFanoutMemberIsNeverDemoted) {
  FaultSchedule schedule;
  // Both nodes degrade (staggered); demoting both would leave no healthy
  // fan-out member, so the guard must keep at least one serving fast.
  schedule.gray_failures.push_back({0, 100, 1000, 10.0});
  schedule.gray_failures.push_back({1, 300, 1000, 100.0});
  FaultInjector injector(schedule);
  ClusterConfig config;
  config.nodes = 2;
  config.fault_injector = &injector;
  config.straggler.enabled = true;
  config.straggler.min_samples = 2;
  config.straggler.demote_after = 1;
  config.straggler.promote_after = 1;
  Cluster cluster(config);
  for (StreamTime t = 10; t <= 990; t += 10) {
    cluster.TickHealth(t);
    EXPECT_LE(cluster.straggler_detector()->slow_count(), 1u)
        << "both fan-out members demoted at t=" << t;
  }
}

// --- Hedged fork-join sub-queries. ---

TEST(HedgeClusterTest, DelayStaysDisarmedUntilHistogramsWarm) {
  ClusterConfig config;
  config.nodes = 3;
  config.hedge.enabled = true;
  config.hedge.min_samples = 4;
  config.straggler.enabled = true;  // TickHealth probes feed the histograms.
  Cluster cluster(config);
  EXPECT_EQ(cluster.HedgeDelayNs(), 0.0);
  for (StreamTime t = 10; t <= 30; t += 10) {
    cluster.TickHealth(t);
  }
  EXPECT_EQ(cluster.HedgeDelayNs(), 0.0);  // 3 samples < min_samples.
  for (StreamTime t = 40; t <= 80; t += 10) {
    cluster.TickHealth(t);
  }
  // Armed: p95 of 1000ns probes x margin, floored at min_delay_ns.
  EXPECT_GE(cluster.HedgeDelayNs(), config.hedge.min_delay_ns);
}

TEST(HedgeClusterTest, GrayNodeTriggersHedgesAndResultsStayExact) {
  FaultSchedule schedule;
  schedule.gray_failures.push_back({2, 100, 100000, 10.0});
  FaultInjector injector(schedule);
  obs::MetricsRegistry registry;
  StringServer strings;

  ClusterConfig config;
  config.nodes = 4;
  config.transport = Transport::kTcp;
  config.force_fork_join = true;
  config.fault_injector = &injector;
  config.metrics = &registry;
  config.hedge.enabled = true;
  config.hedge.min_samples = 4;
  config.straggler.enabled = true;
  config.straggler.demote_after = 1000;  // Keep the gray node in the fan-out.
  Cluster hedged(config, &strings);

  ClusterConfig clean_config;
  clean_config.nodes = 4;
  Cluster clean(clean_config, &strings);

  std::vector<Triple> base = MakeBase(&strings, 9, 200);
  hedged.LoadBase(base);
  clean.LoadBase(base);

  for (StreamTime t = 10; t <= 60; t += 10) {
    hedged.TickHealth(t);  // Warm histograms before the gray window bites.
  }
  hedged.TickHealth(200);  // Inside the gray window now.

  auto exec = hedged.OneShot(kJoin);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_GT(exec->hedges_issued, 0u);
  EXPECT_GE(exec->hedges_issued, exec->hedges_won);
  EXPECT_GE(exec->hedges_won, 1u);  // Backup via a healthy node beats 10x.

  auto reference = clean.OneShot(kJoin);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(CanonicalBag(exec->result), CanonicalBag(reference->result));

  if constexpr (obs::kCompiledIn) {
    uint64_t issued = registry.GetCounter("wukongs_hedge_issued_total")->value();
    EXPECT_EQ(issued, exec->hedges_issued);
    // Exactly-once: every hedge produced one losing response, every loser
    // was cancelled and suppressed by the dedup gate.
    EXPECT_EQ(registry.GetCounter("wukongs_hedge_cancelled_total")->value(),
              issued);
    EXPECT_EQ(
        registry.GetCounter("wukongs_hedge_duplicates_suppressed_total")->value(),
        issued);
    EXPECT_LE(registry.GetCounter("wukongs_hedge_backup_wins_total")->value(),
              issued);
  }
}

TEST(HedgeClusterTest, HedgingNeedsASpreadBetweenBestAndWorst) {
  // Every fan-out member equally gray: no healthy backup target exists, so
  // no hedge may fire (a backup to an equally slow node cannot win).
  FaultSchedule schedule;
  for (NodeId n = 0; n < 3; ++n) {
    schedule.gray_failures.push_back({n, 100, 100000, 10.0});
  }
  FaultInjector injector(schedule);
  ClusterConfig config;
  config.nodes = 3;
  config.transport = Transport::kTcp;
  config.force_fork_join = true;
  config.fault_injector = &injector;
  config.hedge.enabled = true;
  config.hedge.min_samples = 4;
  config.straggler.enabled = true;
  config.straggler.demote_after = 1000;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings(), 10, 120));
  for (StreamTime t = 10; t <= 60; t += 10) {
    cluster.TickHealth(t);
  }
  cluster.TickHealth(200);
  auto exec = cluster.OneShot(kJoin);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->hedges_issued, 0u);
}

// --- Retry jitter (satellite: property tests; rides the `property` lane). ---

double LegacyBackoff(const RetryPolicy& policy, int attempt) {
  double wait = policy.initial_backoff_ns *
                std::pow(policy.backoff_multiplier, attempt - 1);
  if (!(wait < policy.max_backoff_ns)) {  // Catches overflow to inf.
    wait = policy.max_backoff_ns;
  }
  return wait;
}

TEST(RetryJitterPropertyTest, JitterOnlyShrinksAndCeilingAlwaysHolds) {
  for (uint64_t seed : {1ull, 7ull, 1234567ull}) {
    for (double jf : {0.0, 0.3, 1.0}) {
      RetryPolicy policy;
      policy.jitter_fraction = jf;
      policy.jitter_seed = seed;
      for (int attempt = 1; attempt <= 1000; ++attempt) {
        double base = LegacyBackoff(policy, attempt);
        double wait = policy.BackoffNs(attempt);
        EXPECT_LE(wait, policy.max_backoff_ns);
        EXPECT_LE(wait, base + 1e-9);
        EXPECT_GE(wait, (1.0 - jf) * base - 1e-9)
            << "seed=" << seed << " jf=" << jf << " attempt=" << attempt;
      }
    }
  }
}

TEST(RetryJitterPropertyTest, ZeroJitterIsByteIdenticalToLegacyPolicy) {
  RetryPolicy policy;  // jitter_fraction = 0 by default.
  for (int attempt = 1; attempt <= 64; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.BackoffNs(attempt), LegacyBackoff(policy, attempt));
  }
}

TEST(RetryJitterPropertyTest, DeterministicPerSeedAndDecorrelatedAcrossSeeds) {
  RetryPolicy a;
  a.jitter_fraction = 1.0;
  a.jitter_seed = 42;
  RetryPolicy b = a;
  bool diverged = false;
  RetryPolicy c = a;
  c.jitter_seed = 43;
  for (int attempt = 1; attempt <= 64; ++attempt) {
    EXPECT_DOUBLE_EQ(a.BackoffNs(attempt), b.BackoffNs(attempt));
    diverged = diverged || a.BackoffNs(attempt) != c.BackoffNs(attempt);
  }
  EXPECT_TRUE(diverged);  // Different salts decorrelate the draws.
}

// --- Twin-cluster straggler differential (200 seeds; nightly 2000). ---
//
// Gray-failure factors, per-message jitter, hedging and straggler demotion
// are all cost-model-only perturbations: a perturbed cluster MUST return
// bags byte-identical to a clean cluster over the same data (zero loss,
// zero duplicates), and a budget-expired query must return a sound subset
// with completeness < 1. Aggregates assert the lane actually exercised
// hedges and expirations — a sweep that never fires them proves nothing.

struct SeedOutcome {
  uint64_t hedges_issued = 0;
  uint64_t expirations = 0;
};

SeedOutcome RunStragglerSeed(uint64_t seed) {
  SeedOutcome outcome;
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 11);
  const uint32_t nodes = static_cast<uint32_t>(3 + rng.Uniform(0, 1));
  const bool in_place = rng.Bernoulli(0.3);  // Else forced fork-join.

  FaultSchedule schedule;
  schedule.seed = seed;
  GrayFailureEvent gray;
  gray.node = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
  gray.from_ms = 100;
  gray.until_ms = 2000;  // Outlives the trace: queries run inside it.
  gray.slow_factor = 4.0 + static_cast<double>(rng.Uniform(0, 12));
  schedule.gray_failures.push_back(gray);
  schedule.message_jitter_rate = 0.3;
  schedule.message_jitter_ns = 20000.0;
  FaultInjector injector(schedule);

  StringServer strings;
  obs::MetricsRegistry registry;
  ClusterConfig faulted_config;
  faulted_config.nodes = nodes;
  faulted_config.transport = Transport::kTcp;
  faulted_config.force_fork_join = !in_place;
  faulted_config.force_in_place = in_place;
  faulted_config.fault_injector = &injector;
  faulted_config.metrics = &registry;
  faulted_config.hedge.enabled = true;
  faulted_config.hedge.min_samples = 4;
  faulted_config.straggler.enabled = true;
  faulted_config.straggler.min_samples = 4;
  // Half the seeds let the detector demote the gray node (quarantine path);
  // the other half keep it in the fan-out so hedges race it (hedge path).
  faulted_config.straggler.demote_after = rng.Bernoulli(0.5) ? 2 : 1000;
  faulted_config.straggler.promote_after = 2;
  faulted_config.deadline.enforce = true;
  Cluster faulted(faulted_config, &strings);

  ClusterConfig clean_config;
  clean_config.nodes = nodes;
  Cluster clean(clean_config, &strings);

  std::vector<Triple> base = MakeBase(&strings, seed, 80);
  faulted.LoadBase(base);
  clean.LoadBase(base);

  StreamId faulted_stream = *faulted.DefineStream("S0", {"tg"});
  StreamId clean_stream = *clean.DefineStream("S0", {"tg"});
  constexpr char kContinuous[] = R"(
      REGISTER QUERY qw AS
      SELECT ?X ?G
      FROM STREAM <S0> [RANGE 200ms STEP 100ms]
      WHERE { GRAPH <S0> { ?X tg ?G } })";
  auto faulted_handle = faulted.RegisterContinuous(kContinuous);
  auto clean_handle = clean.RegisterContinuous(kContinuous);
  EXPECT_TRUE(faulted_handle.ok() && clean_handle.ok());

  auto ent = [&](uint64_t i) {
    return strings.InternVertex("e" + std::to_string(i));
  };
  for (StreamTime round = 0; round < 8; ++round) {
    StreamTupleVec tuples;
    size_t count = 2 + rng.Uniform(0, 3);
    std::vector<StreamTime> stamps;
    for (size_t i = 0; i < count; ++i) {
      stamps.push_back(round * 100 + 1 + rng.Uniform(0, 98));
    }
    std::sort(stamps.begin(), stamps.end());
    for (StreamTime ts : stamps) {
      bool timing = rng.Bernoulli(0.5);
      tuples.push_back({{ent(rng.Uniform(0, 9)),
                         strings.InternPredicate(timing ? "tg" : "p0"),
                         ent(rng.Uniform(0, 9))},
                        ts,
                        timing ? TupleKind::kTiming : TupleKind::kTimeless});
    }
    EXPECT_TRUE(faulted.FeedStream(faulted_stream, tuples).ok());
    EXPECT_TRUE(clean.FeedStream(clean_stream, tuples).ok());
    faulted.AdvanceStreams((round + 1) * 100);
    clean.AdvanceStreams((round + 1) * 100);
  }

  // Unbudgeted one-shots: zero loss, zero duplicates under gray + jitter.
  const char* pool[] = {kScan, kJoin};
  for (int i = 0; i < 2; ++i) {
    const char* text = pool[rng.Uniform(0, 1)];
    NodeId home = static_cast<NodeId>(rng.Uniform(0, nodes - 1));
    auto perturbed = faulted.OneShot(text, home);
    auto reference = clean.OneShot(text, 0);
    EXPECT_TRUE(perturbed.ok() && reference.ok());
    if (perturbed.ok() && reference.ok()) {
      EXPECT_EQ(CanonicalBag(perturbed->result), CanonicalBag(reference->result));
      EXPECT_FALSE(perturbed->deadline_expired);
      EXPECT_EQ(perturbed->completeness, 1.0);
      outcome.hedges_issued += perturbed->hedges_issued;
    }
  }

  // Budgeted one-shot: either it completes exactly, or it declares a
  // truthful partial result (sound subset, completeness < 1).
  const double budgets[] = {0.0005, 0.002, 0.01, 1e6};
  double budget = budgets[rng.Uniform(0, 3)];
  auto budgeted = faulted.OneShot(kJoin, 0, budget);
  auto reference = clean.OneShot(kJoin, 0);
  EXPECT_TRUE(budgeted.ok() && reference.ok());
  if (budgeted.ok() && reference.ok()) {
    outcome.hedges_issued += budgeted->hedges_issued;
    if (budgeted->deadline_expired) {
      ++outcome.expirations;
      EXPECT_TRUE(budgeted->partial);
      EXPECT_LT(budgeted->completeness, 1.0);
      EXPECT_TRUE(IsSubBag(CanonicalBag(budgeted->result),
                           CanonicalBag(reference->result)));
    } else {
      EXPECT_EQ(budgeted->completeness, 1.0);
      EXPECT_EQ(CanonicalBag(budgeted->result), CanonicalBag(reference->result));
    }
  }

  // Continuous trigger at the same frontier on both clusters.
  if (faulted_handle.ok() && clean_handle.ok()) {
    auto perturbed = faulted.ExecuteContinuousAt(*faulted_handle, 600);
    auto reference = clean.ExecuteContinuousAt(*clean_handle, 600);
    EXPECT_TRUE(perturbed.ok() && reference.ok());
    if (perturbed.ok() && reference.ok()) {
      EXPECT_EQ(CanonicalBag(perturbed->result), CanonicalBag(reference->result));
    }
  }

  // Exactly-once audit: every hedge's losing response was suppressed.
  if constexpr (obs::kCompiledIn) {
    EXPECT_EQ(
        registry.GetCounter("wukongs_hedge_duplicates_suppressed_total")->value(),
        registry.GetCounter("wukongs_hedge_issued_total")->value());
  }
  return outcome;
}

TEST(HedgeDifferentialTest, GrayClusterMatchesCleanClusterAcrossSeeds) {
  uint64_t seeds = 200;
  if (const char* env = std::getenv("WUKONGS_DIFF_SEEDS")) {
    seeds = std::strtoull(env, nullptr, 10);
  }
  SeedOutcome total;
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    SeedOutcome outcome = RunStragglerSeed(seed);
    total.hedges_issued += outcome.hedges_issued;
    total.expirations += outcome.expirations;
  }
  // The sweep must actually exercise both mechanisms, or it proves nothing.
  EXPECT_GT(total.hedges_issued, 0u);
  EXPECT_GT(total.expirations, 0u);
}

}  // namespace
}  // namespace wukongs
