// Overload-protection properties (robustness tentpole, PR 2).
//
// The invariants under test:
//   * shedding only ever drops batch suffixes (door: timing-tuple suffix;
//     injector: edge suffix) and never touches timeless data;
//   * Stable_VTS stays monotone under arbitrary overload + shed schedules —
//     backpressure and shedding change *how much* data a window sees, never
//     the consistency machinery underneath;
//   * with shedding disabled (and memory unbounded) the overload machinery —
//     credits, pending queues, slow-node backlogs, phi-accrual quarantine and
//     reactivation — is result-invisible: window digests are byte-identical
//     to a fault-free golden run;
//   * the phi-accrual detector is deterministic, quarantines a silent node,
//     and only reactivates after hysteresis + catch-up.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/maintenance_daemon.h"
#include "src/cluster/worker_pool.h"
#include "src/fault/fault_injector.h"
#include "src/fault/recovery_manager.h"
#include "src/overload/admission_controller.h"
#include "src/overload/load_shedder.h"
#include "src/overload/phi_accrual.h"
#include "src/stream/adaptor.h"
#include "src/stream/transient_store.h"

namespace wukongs {
namespace {

constexpr StreamTime kStepMs = 100;

// --- Suffix-only shedding at the door. ---

StreamBatch RandomBatch(std::mt19937* rng, size_t tuples) {
  StreamBatch batch;
  batch.stream = 0;
  batch.seq = 7;
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<VertexId> vid(1, 50);
  for (size_t i = 0; i < tuples; ++i) {
    StreamTuple t;
    t.triple = Triple{vid(*rng), 1, vid(*rng)};
    t.timestamp = 700 + static_cast<StreamTime>(i);  // Non-decreasing.
    t.kind = coin(*rng) == 0 ? TupleKind::kTiming : TupleKind::kTimeless;
    batch.tuples.push_back(t);
  }
  return batch;
}

TEST(ShedTimingSuffixTest, DropsOnlyTimingSuffixAndPreservesOrder) {
  for (uint32_t seed : {1u, 2u, 3u, 4u, 5u}) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<size_t> size(0, 40);
    for (int round = 0; round < 50; ++round) {
      StreamBatch original = RandomBatch(&rng, size(rng));
      const size_t timing_before = CountTimingTuples(original);
      std::uniform_int_distribution<size_t> keep_dist(0, timing_before + 2);
      const size_t max_keep = keep_dist(rng);

      StreamBatch batch = original;
      const size_t shed = ShedTimingSuffix(&batch, max_keep);

      ASSERT_EQ(shed, timing_before - std::min(timing_before, max_keep));
      ASSERT_EQ(CountTimingTuples(batch), std::min(timing_before, max_keep));

      // The survivor must be exactly the original with the timing
      // subsequence truncated after its first `max_keep` elements: walk the
      // original, keeping all timeless tuples and the first-k timing ones.
      StreamTupleVec expected;
      size_t timing_seen = 0;
      for (const StreamTuple& t : original.tuples) {
        if (t.kind == TupleKind::kTiming) {
          if (timing_seen++ >= max_keep) {
            continue;
          }
        }
        expected.push_back(t);
      }
      ASSERT_EQ(batch.tuples.size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_TRUE(batch.tuples[i] == expected[i]) << "index " << i;
      }
    }
  }
}

// --- Suffix-only shedding at the injector (transient memory budget). ---

TEST(TransientStorePrefixTest, KeepsLargestFittingPrefixAndStaysDense) {
  for (uint32_t seed : {11u, 22u, 33u}) {
    std::mt19937 rng(seed);
    TransientStore tight(/*memory_budget_bytes=*/600);
    std::uniform_int_distribution<VertexId> vid(1, 30);
    std::uniform_int_distribution<size_t> count(0, 25);
    for (BatchSeq seq = 0; seq < 12; ++seq) {
      std::vector<std::pair<Key, VertexId>> edges;
      const size_t n = count(rng);
      for (size_t i = 0; i < n; ++i) {
        edges.emplace_back(Key(vid(rng), 1, Dir::kOut), vid(rng));
      }
      const size_t kept = tight.AppendSlicePrefix(seq, edges);
      ASSERT_LE(kept, edges.size());
      // Batches stay dense: the slice exists even when nothing fit.
      ASSERT_EQ(tight.NewestSeq(), seq);

      // Exactly the first `kept` edges are readable (a prefix, no middle
      // gaps): per-key edge counts must match the kept prefix and nothing
      // from the shed suffix may appear.
      std::unordered_map<Key, size_t, KeyHash> expected;
      for (size_t i = 0; i < kept; ++i) {
        ++expected[edges[i].first];
      }
      std::unordered_map<Key, size_t, KeyHash> distinct;
      for (const auto& [key, value] : edges) {
        distinct[key] = 0;
      }
      for (const auto& [key, unused] : distinct) {
        auto it = expected.find(key);
        ASSERT_EQ(tight.EdgeCount(seq, key),
                  it == expected.end() ? 0u : it->second);
      }
    }
  }
}

// --- Phi-accrual detector. ---

TEST(TransientStorePrefixTest, InjectorShedIsFullyAccountedInLedger) {
  // A starved transient budget forces AppendSlicePrefix at the injector; the
  // loss must land in the per-batch shed ledger and the global counter, and
  // the two views must agree edge-for-edge.
  ClusterConfig config;
  config.nodes = 1;
  config.transient_budget_bytes = 256;  // A handful of edges, then starvation.
  config.overload.enabled = true;
  config.overload.shed_timing = true;
  Cluster cluster(config);
  StringServer* strings = cluster.strings();
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  const VertexId ga = strings->InternPredicate("ga");

  StreamTupleVec tuples;
  for (StreamTime t = 0; t < 400; ++t) {
    tuples.push_back({{strings->InternVertex("u" + std::to_string(t % 40)), ga,
                       strings->InternVertex(std::to_string(t % 9))},
                      t,
                      TupleKind::kTiming});
  }
  ASSERT_TRUE(cluster.FeedStream(stream, tuples).ok());
  cluster.AdvanceStreams(400);

  const OverloadStats stats = cluster.overload_stats();
  ASSERT_GT(stats.injector_shed_edges, 0u) << "budget failed to starve";
  EXPECT_EQ(stats.timing_edges_lost, 0u);  // Shedding on => declared, not lost.
  uint64_t ledger = 0;
  for (BatchSeq b = 0; b < 4; ++b) {
    Cluster::ShedInfo info = cluster.ShedInfoFor(stream, b);
    ledger += info.injector_lost_edges;
  }
  EXPECT_EQ(ledger, stats.injector_shed_edges);
}

TEST(PhiAccrualTest, DeterministicAndGrowsWithSilence) {
  PhiAccrualConfig config;
  PhiAccrualDetector a(2, config);
  PhiAccrualDetector b(2, config);
  for (StreamTime t = 100; t <= 1000; t += 100) {
    a.Heartbeat(0, t);
    b.Heartbeat(0, t);
  }
  double prev = 0.0;
  for (StreamTime t = 1100; t <= 2500; t += 100) {
    const double phi = a.Phi(0, t);
    EXPECT_DOUBLE_EQ(phi, b.Phi(0, t));  // Same inputs, same suspicion.
    EXPECT_GE(phi, prev);                // Silence only raises suspicion.
    prev = phi;
  }
  // A healthy cadence keeps phi low at one-interval gaps.
  EXPECT_LT(a.Phi(0, 1100), 1.0);
  EXPECT_GT(a.Phi(0, 2500), 3.0);
}

TEST(FailureDetectorTest, QuarantineThenReactivateRequiresHysteresisAndCatchUp) {
  PhiAccrualConfig config;
  config.hysteresis_beats = 3;
  FailureDetector detector(2, config);
  for (StreamTime t = 100; t <= 1000; t += 100) {
    detector.Heartbeat(1, t);
    EXPECT_EQ(detector.Evaluate(1, t, true), HealthAction::kNone);
  }
  // Silence: suspicion accrues until the quarantine threshold.
  StreamTime t = 1000;
  HealthAction action = HealthAction::kNone;
  while (action == HealthAction::kNone && t < 10000) {
    t += kStepMs;
    action = detector.Evaluate(1, t, true);
  }
  ASSERT_EQ(action, HealthAction::kQuarantine);
  EXPECT_TRUE(detector.quarantined(1));
  EXPECT_EQ(detector.stats().quarantines, 1u);

  // Heartbeats resume but the node lags: the catch-up gate alone blocks
  // reactivation no matter how healthy phi looks — a lagging replica must
  // not regress Stable_VTS.
  for (int beat = 0; beat < 10; ++beat) {
    t += kStepMs;
    detector.Heartbeat(1, t);
    EXPECT_EQ(detector.Evaluate(1, t, /*caught_up=*/false), HealthAction::kNone)
        << "reactivated while behind";
  }
  EXPECT_TRUE(detector.quarantined(1));

  // The phi streak is already satisfied, so the first caught-up evaluation
  // lets it back in.
  t += kStepMs;
  detector.Heartbeat(1, t);
  EXPECT_EQ(detector.Evaluate(1, t, /*caught_up=*/true),
            HealthAction::kReactivate);
  EXPECT_FALSE(detector.quarantined(1));
  EXPECT_EQ(detector.stats().reactivations, 1u);
}

TEST(FailureDetectorTest, ReactivationWaitsForTheFullHealthyStreak) {
  PhiAccrualConfig config;
  config.hysteresis_beats = 3;
  FailureDetector detector(1, config);
  for (StreamTime t = 100; t <= 800; t += 100) {
    detector.Heartbeat(0, t);
  }
  // Silence until quarantine; these evaluations keep the healthy streak at
  // zero, so recovery below starts from scratch.
  StreamTime t = 800;
  HealthAction action = HealthAction::kNone;
  while (action == HealthAction::kNone && t < 10000) {
    t += kStepMs;
    action = detector.Evaluate(0, t, true);
  }
  ASSERT_EQ(action, HealthAction::kQuarantine);

  // Caught up from the first beat: reactivation still waits for exactly
  // hysteresis_beats consecutive healthy evaluations (flap damping).
  int beats = 0;
  action = HealthAction::kNone;
  while (action == HealthAction::kNone && beats < 20) {
    t += kStepMs;
    detector.Heartbeat(0, t);
    action = detector.Evaluate(0, t, /*caught_up=*/true);
    ++beats;
  }
  EXPECT_EQ(action, HealthAction::kReactivate);
  EXPECT_EQ(beats, 3);
}

// --- Admission control. ---

TEST(AdmissionControllerTest, RejectsOnCapacityAndDeadline) {
  AdmissionConfig config;
  config.max_concurrent = 2;
  config.initial_service_ms = 5.0;
  AdmissionController admission(config);

  EXPECT_TRUE(admission.Admit().ok());
  EXPECT_TRUE(admission.Admit().ok());
  Status full = admission.Admit();
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);

  admission.Complete(10.0);
  EXPECT_EQ(admission.in_flight(), 1u);
  // Deadline gate: estimated wait + service clearly exceeds 1 ms.
  Status late = admission.Admit(/*deadline_ms=*/1.0);
  EXPECT_EQ(late.code(), StatusCode::kResourceExhausted);
  // A generous deadline is admitted.
  EXPECT_TRUE(admission.Admit(/*deadline_ms=*/10000.0).ok());

  const auto stats = admission.stats();
  EXPECT_EQ(stats.admitted, 3u);
  EXPECT_EQ(stats.rejected_capacity, 1u);
  EXPECT_EQ(stats.rejected_deadline, 1u);
}

TEST(WorkerPoolAdmissionTest, SaturatedPoolRejectsFastWithReadyFuture) {
  ClusterConfig config;
  config.nodes = 1;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.DefineStream("S").ok());
  WorkerPool pool(&cluster, 1);

  AdmissionConfig aconfig;
  aconfig.initial_service_ms = 50.0;  // Pessimistic estimator.
  AdmissionController admission(aconfig);
  pool.SetAdmissionController(&admission);

  Query q;  // Empty pattern set: executes trivially when admitted.
  auto rejected = pool.SubmitOneShot(q, 0, /*deadline_ms=*/0.001);
  ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);  // Ready before any worker ran it.
  auto verdict = rejected.get();
  ASSERT_FALSE(verdict.ok());
  EXPECT_EQ(verdict.status().code(), StatusCode::kResourceExhausted);

  auto admitted = pool.SubmitOneShot(q, 0, /*deadline_ms=*/0.0);
  EXPECT_TRUE(admitted.get().ok());
  pool.Drain();
  EXPECT_EQ(admission.stats().rejected_deadline, 1u);
  EXPECT_EQ(admission.in_flight(), 0u);
}

// --- Maintenance daemon kick (pressure hook). ---

TEST(MaintenanceDaemonTest, KickRunsAPassWithoutWaitingForThePeriod) {
  ClusterConfig config;
  config.nodes = 1;
  Cluster cluster(config);
  MaintenanceDaemon daemon(
      &cluster, [] { return StreamTime{0}; },
      std::chrono::milliseconds(60000));  // Period far beyond the test.
  daemon.Kick();
  for (int i = 0; i < 200 && daemon.passes() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(daemon.passes(), 1u);
  EXPECT_GE(daemon.kicks(), 1u);
}

// --- End-to-end backpressure: plan cap + credits stall the feeder; ---
// --- quarantining the straggler releases the pipeline.               ---

StreamTupleVec TimingBurst(StringServer* strings, StreamTime from, StreamTime to,
                           int per_ms) {
  StreamTupleVec tuples;
  for (StreamTime t = from; t < to; t += 10) {
    for (int i = 0; i < per_ms; ++i) {
      tuples.push_back(StreamTuple{
          {strings->InternVertex("v" + std::to_string((t + i) % 40)),
           strings->InternPredicate("ga"),
           strings->InternVertex("loc" + std::to_string(i % 5))},
          t,
          TupleKind::kTiming});
    }
  }
  return tuples;
}

TEST(OverloadBackpressureTest, StalledStragglerBouncesFeederUntilQuarantined) {
  FaultSchedule schedule;
  // Node 1 never recovers on its own: the only way out is quarantine.
  schedule.slow_nodes = {SlowNodeEvent{1, 200, 1u << 30, 1000.0}};
  FaultInjector injector(schedule);

  ClusterConfig config;
  config.nodes = 2;
  config.fault_injector = &injector;
  config.overload.enabled = true;
  config.overload.credits_per_stream = 3;
  config.overload.pending_queue_capacity = 2;
  config.overload.max_plan_extensions = 4;
  Cluster cluster(config);
  StreamId stream = *cluster.DefineStream("S", {"ga"});

  bool bounced = false;
  StreamTime t = kStepMs;
  for (; t <= 5000; t += kStepMs) {
    Status s = cluster.FeedStream(
        stream, TimingBurst(cluster.strings(), t - kStepMs, t, 2));
    if (!s.ok()) {
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted);
      bounced = true;
      break;
    }
    cluster.AdvanceStreams(t);
  }
  ASSERT_TRUE(bounced) << "a stalled node must backpressure the feeder";
  const OverloadStats stalled = cluster.overload_stats();
  EXPECT_GT(stalled.feed_rejections, 0u);
  EXPECT_GT(stalled.credit_stalls + stalled.plan_stalls, 0u);
  EXPECT_GT(stalled.backlog_deferred, 0u);
  // The plan frontier stayed bounded instead of growing with the backlog.
  EXPECT_LE(cluster.coordinator()->plan_extensions(),
            config.overload.max_plan_extensions + 1);
  BatchSeq stable_before = cluster.coordinator()->StableVts().Get(stream);

  // Operator (or the failure detector) quarantines the straggler: the
  // stable frontier advances over the survivor and the pipeline un-stalls.
  cluster.coordinator()->SetNodeActive(1, false);
  cluster.fabric()->SetNodeServing(1, false);
  cluster.TickHealth(t);
  ASSERT_TRUE(cluster
                  .FeedStream(stream,
                              TimingBurst(cluster.strings(), t - kStepMs, t, 2))
                  .ok())
      << "quarantine must release the backpressure";
  cluster.AdvanceStreams(t);
  BatchSeq stable_after = cluster.coordinator()->StableVts().Get(stream);
  EXPECT_TRUE(stable_before == kNoBatch || stable_after > stable_before);
  EXPECT_EQ(cluster.PendingBatches(stream), 0u);
}

// --- System property: Stable_VTS monotone under random overload. ---

const char* kWindowQuery = R"(
    REGISTER QUERY QWin AS
    SELECT ?X ?Y
    FROM STREAM <S> [RANGE 500ms STEP 100ms]
    WHERE { GRAPH <S> { ?X po ?Y } })";

StreamTupleVec MixedInterval(StringServer* strings, StreamTime from,
                             StreamTime to, int timing_per_10ms) {
  StreamTupleVec tuples;
  for (StreamTime t = from; t < to; t += 10) {
    tuples.push_back(StreamTuple{
        {strings->InternVertex("user" + std::to_string((t / 10) % 20)),
         strings->InternPredicate("po"),
         strings->InternVertex("post" + std::to_string(t / 10))},
        t,
        TupleKind::kTimeless});
    for (int i = 0; i < timing_per_10ms; ++i) {
      tuples.push_back(StreamTuple{
          {strings->InternVertex("user" + std::to_string((t / 10 + i) % 20)),
           strings->InternPredicate("ga"),
           strings->InternVertex("loc" + std::to_string(i % 7))},
          t,
          TupleKind::kTiming});
    }
  }
  return tuples;
}

TEST(OverloadSystemTest, StableVtsMonotoneUnderRandomOverloadAndShedding) {
  for (uint32_t seed : {17u, 18u, 19u}) {
    std::mt19937 rng(seed);
    FaultSchedule schedule;
    schedule.seed = seed;
    std::uniform_int_distribution<StreamTime> start(300, 1200);
    StreamTime from = start(rng);
    schedule.slow_nodes = {SlowNodeEvent{2, from, from + 800, 2000.0}};
    FaultInjector injector(schedule);

    ClusterConfig config;
    config.nodes = 3;
    config.fault_injector = &injector;
    config.transient_budget_bytes = 4096;  // Tight: forces injector pressure.
    config.overload.enabled = true;
    config.overload.credits_per_stream = 6;
    config.overload.pending_queue_capacity = 4;
    config.overload.max_plan_extensions = 8;
    config.overload.shed_timing = true;
    config.overload.shed.start_pressure = 0.2;
    config.overload.failure_detector = true;
    Cluster cluster(config);
    StreamId stream = *cluster.DefineStream("S", {"ga"});
    auto handle = cluster.RegisterContinuous(kWindowQuery, 0);
    ASSERT_TRUE(handle.ok());

    std::deque<StreamTupleVec> carry;
    VectorTimestamp prev = cluster.coordinator()->StableVts();
    std::uniform_int_distribution<int> rate(1, 12);  // Varying overload.
    size_t executed = 0;
    for (StreamTime t = kStepMs; t <= 4000; t += kStepMs) {
      carry.push_back(MixedInterval(cluster.strings(), t - kStepMs, t, rate(rng)));
      while (!carry.empty()) {
        Status s = cluster.FeedStream(stream, carry.front());
        if (!s.ok()) {
          ASSERT_EQ(s.code(), StatusCode::kResourceExhausted);
          break;
        }
        carry.pop_front();
      }
      if (carry.empty()) {
        cluster.AdvanceStreams(t);
      } else {
        // Feeder stalled: the adaptor clock holds, but wall-clock health
        // (heartbeats, quarantine, backlog drain) keeps moving.
        cluster.TickHealth(t);
      }

      VectorTimestamp stable = cluster.coordinator()->StableVts();
      ASSERT_TRUE(stable.Covers(prev))
          << "Stable_VTS regressed at t=" << t << " (seed " << seed << ")";
      prev = stable;

      if (cluster.WindowReady(*handle, t)) {
        auto exec = cluster.ExecuteContinuousAt(*handle, t);
        ASSERT_TRUE(exec.ok()) << exec.status().ToString();
        EXPECT_GE(exec->shed_fraction, 0.0);
        EXPECT_LE(exec->shed_fraction, 1.0);
        ++executed;
      }
    }
    EXPECT_GT(executed, 0u) << "seed " << seed;

    const OverloadStats stats = cluster.overload_stats();
    // The schedule genuinely overloaded the cluster...
    EXPECT_GT(stats.append_pressure_events + stats.door_shed_tuples +
                  stats.feed_rejections + stats.backlog_deferred,
              0u)
        << "seed " << seed;
    // ...and the detector noticed the straggler, then let it back in.
    EXPECT_GE(stats.quarantines, 1u) << "seed " << seed;
    EXPECT_GE(stats.reactivations, 1u) << "seed " << seed;
    EXPECT_GT(stats.heartbeats, 0u);
    EXPECT_EQ(stats.backlog_drained, stats.backlog_deferred);
  }
}

// --- Result invisibility: shedding off => digests identical to golden. ---

TEST(OverloadSystemTest, DigestsMatchGoldenRunWithSheddingDisabled) {
  StringServer strings;
  constexpr StreamTime kEndMs = 4000;
  constexpr StreamTime kFirstWindowMs = 500;

  // Golden: no faults, no overload machinery.
  std::map<StreamTime, std::string> golden;
  {
    ClusterConfig config;
    config.nodes = 3;
    Cluster cluster(config, &strings);
    StreamId stream = *cluster.DefineStream("S", {"ga"});
    auto handle = cluster.RegisterContinuous(kWindowQuery, 0);
    ASSERT_TRUE(handle.ok());
    for (StreamTime t = kStepMs; t <= kEndMs; t += kStepMs) {
      ASSERT_TRUE(
          cluster.FeedStream(stream, MixedInterval(&strings, t - kStepMs, t, 3))
              .ok());
      cluster.AdvanceStreams(t);
      if (t < kFirstWindowMs) {
        continue;
      }
      auto exec = cluster.ExecuteContinuousAt(*handle, t);
      ASSERT_TRUE(exec.ok());
      EXPECT_DOUBLE_EQ(exec->shed_fraction, 0.0);
      golden[t] = ResultDigest(exec->result);
    }
  }

  // Same workload through the full overload pipeline: credits, pending
  // queues, a slow node, quarantine and reactivation — but shedding off and
  // memory unbounded, so nothing may be lost.
  FaultSchedule schedule;
  schedule.slow_nodes = {SlowNodeEvent{2, 500, 2000, 1500.0}};
  FaultInjector injector(schedule);
  ClusterConfig config;
  config.nodes = 3;
  config.fault_injector = &injector;
  config.overload.enabled = true;
  config.overload.credits_per_stream = 8;
  config.overload.pending_queue_capacity = 6;
  config.overload.failure_detector = true;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto handle = cluster.RegisterContinuous(kWindowQuery, 0);
  ASSERT_TRUE(handle.ok());

  WindowDedup dedup;
  std::deque<StreamTupleVec> carry;
  for (StreamTime t = kStepMs; t <= kEndMs; t += kStepMs) {
    carry.push_back(MixedInterval(&strings, t - kStepMs, t, 3));
    while (!carry.empty()) {
      Status s = cluster.FeedStream(stream, carry.front());
      if (!s.ok()) {
        ASSERT_EQ(s.code(), StatusCode::kResourceExhausted);
        break;
      }
      carry.pop_front();
    }
    if (carry.empty()) {
      cluster.AdvanceStreams(t);
    } else {
      cluster.TickHealth(t);
    }
    if (t >= kFirstWindowMs && cluster.WindowReady(*handle, t)) {
      auto exec = cluster.ExecuteContinuousAt(*handle, t);
      ASSERT_TRUE(exec.ok());
      EXPECT_DOUBLE_EQ(exec->shed_fraction, 0.0) << "t=" << t;
      dedup.Accept(*handle, t, exec->partial, ResultDigest(exec->result));
    }
  }
  const OverloadStats stats = cluster.overload_stats();
  EXPECT_GE(stats.quarantines, 1u);
  EXPECT_GE(stats.reactivations, 1u);
  EXPECT_EQ(stats.door_shed_tuples, 0u);
  EXPECT_EQ(stats.injector_shed_edges, 0u);
  EXPECT_EQ(stats.timing_edges_lost, 0u);

  // Every window re-executes complete after reactivation; partial results
  // taken during the quarantine upgrade via the client-side dedup.
  for (StreamTime t = kFirstWindowMs; t <= kEndMs; t += kStepMs) {
    ASSERT_TRUE(cluster.WindowReady(*handle, t));
    auto exec = cluster.ExecuteContinuousAt(*handle, t);
    ASSERT_TRUE(exec.ok());
    EXPECT_FALSE(exec->partial) << "t=" << t;
    EXPECT_DOUBLE_EQ(exec->shed_fraction, 0.0);
    dedup.Accept(*handle, t, exec->partial, ResultDigest(exec->result));
  }
  ASSERT_EQ(dedup.size(), golden.size());
  for (const auto& [t, want] : golden) {
    const std::string* got = dedup.Find(*handle, t);
    ASSERT_NE(got, nullptr) << "window " << t;
    EXPECT_EQ(*got, want) << "window " << t;
    EXPECT_FALSE(dedup.IsPartial(*handle, t));
  }
}

// --- Surfaced loss: the pre-overload silent drop now shows up. ---

TEST(OverloadSystemTest, BudgetLossSurfacesAsShedFractionWithSheddingOff) {
  ClusterConfig config;
  config.nodes = 1;
  config.transient_budget_bytes = 512;  // Far below one batch's timing data.
  Cluster cluster(config);  // Overload machinery entirely off.
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto handle = cluster.RegisterContinuous(kWindowQuery, 0);
  ASSERT_TRUE(handle.ok());
  for (StreamTime t = kStepMs; t <= 1000; t += kStepMs) {
    ASSERT_TRUE(cluster
                    .FeedStream(stream,
                                MixedInterval(cluster.strings(), t - kStepMs, t, 10))
                    .ok());
    cluster.AdvanceStreams(t);
  }
  const OverloadStats stats = cluster.overload_stats();
  EXPECT_GT(stats.timing_edges_lost, 0u) << "budget loss went unrecorded";
  EXPECT_GT(stats.append_pressure_events, 0u);
  auto exec = cluster.ExecuteContinuousAt(*handle, 1000);
  ASSERT_TRUE(exec.ok());
  EXPECT_GT(exec->shed_fraction, 0.0) << "loss must be visible on the result";
  EXPECT_LE(exec->shed_fraction, 1.0);
}

}  // namespace
}  // namespace wukongs
