// Tests for the LSBench and CityBench workload generators and query catalogs.

#include <gtest/gtest.h>

#include "src/workloads/citybench.h"
#include "src/workloads/lsbench.h"

namespace wukongs {
namespace {

LsBenchConfig SmallLsConfig() {
  LsBenchConfig config;
  config.users = 200;
  config.avg_follows = 5;
  config.initial_posts_per_user = 3;
  config.initial_photos_per_user = 1;
  return config;
}

TEST(LsBenchTest, SetupLoadsGraphAndStreams) {
  ClusterConfig cc;
  cc.nodes = 2;
  Cluster cluster(cc);
  LsBench bench(&cluster, SmallLsConfig());
  ASSERT_TRUE(bench.Setup().ok());
  EXPECT_GT(bench.initial_triples(), 200u * 5u);
  // Five streams defined.
  EXPECT_TRUE(cluster.FindStream("PO_Stream").ok());
  EXPECT_TRUE(cluster.FindStream("GPS_Stream").ok());
  EXPECT_GT(cluster.store(0)->EdgeCountTotal(), 0u);
}

TEST(LsBenchTest, FeedingAdvancesAllStreams) {
  ClusterConfig cc;
  cc.nodes = 2;
  Cluster cluster(cc);
  LsBench bench(&cluster, SmallLsConfig());
  ASSERT_TRUE(bench.Setup().ok());
  ASSERT_TRUE(bench.FeedInterval(0, 2000).ok());
  VectorTimestamp stable = cluster.coordinator()->StableVts();
  for (StreamId s = 0; s < 5; ++s) {
    EXPECT_EQ(stable.Get(s), 2000 / cc.batch_interval_ms - 1) << "stream " << s;
  }
  EXPECT_GT(cluster.injection_profile(bench.po_stream()).tuples, 0u);
  EXPECT_GT(cluster.injection_profile(bench.gps_stream()).tuples, 0u);
}

TEST(LsBenchTest, AllContinuousQueriesParseAndRun) {
  ClusterConfig cc;
  cc.nodes = 2;
  Cluster cluster(cc);
  LsBench bench(&cluster, SmallLsConfig());
  ASSERT_TRUE(bench.Setup().ok());

  std::vector<Cluster::ContinuousHandle> handles;
  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    auto handle = cluster.RegisterContinuous(bench.ContinuousQueryText(i));
    ASSERT_TRUE(handle.ok()) << "L" << i << ": " << handle.status().ToString();
    handles.push_back(*handle);
  }
  ASSERT_TRUE(bench.FeedInterval(0, 2000).ok());
  for (int i = 0; i < LsBench::kNumContinuous; ++i) {
    auto exec = cluster.ExecuteContinuousAt(handles[static_cast<size_t>(i)], 2000);
    ASSERT_TRUE(exec.ok()) << "L" << (i + 1) << ": " << exec.status().ToString();
    EXPECT_GT(exec->latency_ms(), 0.0);
  }
}

TEST(LsBenchTest, GroupTwoQueriesProduceMoreThanGroupOne) {
  // Group (II) queries enumerate windows; with enough stream volume they
  // produce (far) larger results than the selective group (I) queries.
  ClusterConfig cc;
  cc.nodes = 2;
  Cluster cluster(cc);
  LsBenchConfig config = SmallLsConfig();
  config.rate_scale = 4.0;
  LsBench bench(&cluster, config);
  ASSERT_TRUE(bench.Setup().ok());
  auto h1 = *cluster.RegisterContinuous(bench.ContinuousQueryText(1));
  auto h4 = *cluster.RegisterContinuous(bench.ContinuousQueryText(4));
  ASSERT_TRUE(bench.FeedInterval(0, 2000).ok());
  auto e1 = cluster.ExecuteContinuousAt(h1, 2000);
  auto e4 = cluster.ExecuteContinuousAt(h4, 2000);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e4.ok());
  EXPECT_GT(e4->result.rows.size(), e1->result.rows.size());
  EXPECT_GT(e4->result.rows.size(), 50u);  // All photos in the window.
}

TEST(LsBenchTest, OneShotQueriesParseAndRun) {
  ClusterConfig cc;
  cc.nodes = 2;
  Cluster cluster(cc);
  LsBench bench(&cluster, SmallLsConfig());
  ASSERT_TRUE(bench.Setup().ok());
  for (int i = 1; i <= LsBench::kNumOneShot; ++i) {
    auto exec = cluster.OneShot(bench.OneShotQueryText(i));
    ASSERT_TRUE(exec.ok()) << "S" << i << ": " << exec.status().ToString();
  }
}

TEST(LsBenchTest, RandomizedQueriesVaryStartVertex) {
  ClusterConfig cc;
  cc.nodes = 1;
  Cluster cluster(cc);
  LsBench bench(&cluster, SmallLsConfig());
  ASSERT_TRUE(bench.Setup().ok());
  Rng rng(1);
  std::set<std::string> variants;
  for (int i = 0; i < 20; ++i) {
    variants.insert(bench.ContinuousQueryText(1, &rng));
  }
  EXPECT_GT(variants.size(), 3u);
}

TEST(LsBenchTest, DeterministicAcrossRuns) {
  auto run = [] {
    ClusterConfig cc;
    cc.nodes = 2;
    Cluster cluster(cc);
    LsBench bench(&cluster, SmallLsConfig());
    EXPECT_TRUE(bench.Setup().ok());
    EXPECT_TRUE(bench.FeedInterval(0, 1000).ok());
    return cluster.store(0)->EdgeCountTotal();
  };
  EXPECT_EQ(run(), run());
}

CityBenchConfig SmallCityConfig() {
  CityBenchConfig config;
  config.roads = 40;
  config.traffic_sensors = 20;
  config.parking_lots = 10;
  config.pollution_sensors = 15;
  return config;
}

TEST(CityBenchTest, SetupLoadsMetadataAndStreams) {
  ClusterConfig cc;
  cc.nodes = 1;
  Cluster cluster(cc);
  CityBench bench(&cluster, SmallCityConfig());
  ASSERT_TRUE(bench.Setup().ok());
  EXPECT_GT(bench.initial_triples(), 40u);
  EXPECT_TRUE(cluster.FindStream("VT1").ok());
  EXPECT_TRUE(cluster.FindStream("PL5").ok());
}

TEST(CityBenchTest, AllQueriesParseAndRun) {
  ClusterConfig cc;
  cc.nodes = 1;
  Cluster cluster(cc);
  CityBenchConfig config = SmallCityConfig();
  config.rate_scale = 10.0;  // Make sure every stream has data.
  CityBench bench(&cluster, config);
  ASSERT_TRUE(bench.Setup().ok());

  std::vector<Cluster::ContinuousHandle> handles;
  for (int i = 1; i <= CityBench::kNumContinuous; ++i) {
    auto handle = cluster.RegisterContinuous(bench.ContinuousQueryText(i));
    ASSERT_TRUE(handle.ok()) << "C" << i << ": " << handle.status().ToString();
    handles.push_back(*handle);
  }
  ASSERT_TRUE(bench.FeedInterval(0, 4000).ok());
  for (int i = 0; i < CityBench::kNumContinuous; ++i) {
    auto exec = cluster.ExecuteContinuousAt(handles[static_cast<size_t>(i)], 4000);
    ASSERT_TRUE(exec.ok()) << "C" << (i + 1) << ": " << exec.status().ToString();
  }
}

TEST(CityBenchTest, ObservationsAreTimingData) {
  // Sensor observations must live in the transient store only: the
  // persistent store should hold no congestion edges after feeding.
  ClusterConfig cc;
  cc.nodes = 1;
  Cluster cluster(cc);
  CityBench bench(&cluster, SmallCityConfig());
  ASSERT_TRUE(bench.Setup().ok());
  size_t persistent_before = cluster.store(0)->EdgeCountTotal();
  ASSERT_TRUE(bench.FeedInterval(0, 3000).ok());
  // User locations (UL) are timing too; only string interning grew. Allow
  // zero growth of persistent edges.
  EXPECT_EQ(cluster.store(0)->EdgeCountTotal(), persistent_before);
  auto mem = cluster.Memory();
  EXPECT_GT(mem.transient_bytes, 0u);
}

TEST(CityBenchTest, FilterQueriesRespectThresholds) {
  ClusterConfig cc;
  cc.nodes = 1;
  Cluster cluster(cc);
  CityBenchConfig config = SmallCityConfig();
  config.rate_scale = 20.0;
  CityBench bench(&cluster, config);
  ASSERT_TRUE(bench.Setup().ok());
  auto handle = cluster.RegisterContinuous(bench.ContinuousQueryText(11));
  ASSERT_TRUE(handle.ok());
  ASSERT_TRUE(bench.FeedInterval(0, 4000).ok());
  auto exec = cluster.ExecuteContinuousAt(*handle, 4000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  // C11 filters pollutionLevel >= 8 on values drawn from 0..10.
  StringServer* s = cluster.strings();
  for (const auto& row : exec->result.rows) {
    double level = std::stod(*s->VertexString(row[1].vid));
    EXPECT_GE(level, 8.0);
  }
}

}  // namespace
}  // namespace wukongs
