// Online elastic reconfiguration tests (DESIGN.md §5.10).
//
// The acceptance property: a live shard handoff — Begin, base copy,
// checkpoint-log replay, dual-apply of in-flight batches, epoch-bump cutover
// — produces byte-identical continuous-query results vs a reconfiguration-
// free golden run, for every window before, during and after the move; an
// aborted or crashed migration rolls back without losing or duplicating a
// single result.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/cluster/reconfig.h"
#include "src/fault/recovery_manager.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace {

constexpr StreamTime kEndMs = 2000;
constexpr StreamTime kStepMs = 100;
constexpr StreamTime kFirstWindowMs = 500;
constexpr int kUsers = 24;

const char* kMoveQuery = R"(
    REGISTER QUERY QMove AS
    SELECT ?X ?Y
    FROM STREAM <S> [RANGE 500ms STEP 100ms]
    WHERE { GRAPH <S> { ?X po ?Y } })";

// --- ShardMap unit surface. ---

TEST(ReconfigShardMapTest, IdentityViewMatchesLegacyHashPartitioning) {
  ShardMap map(3);
  EXPECT_EQ(map.epoch(), 0u);
  EXPECT_EQ(map.shard_count(), 3 * kShardsPerNode);
  EXPECT_EQ(map.node_count(), 3u);
  auto view = map.View();
  ASSERT_NE(view, nullptr);
  EXPECT_TRUE(view->identity);
  for (VertexId v = 1; v <= 500; ++v) {
    // assign[shard] = shard % nodes makes the two-level map bit-identical to
    // the seed's one-level hash partitioning.
    EXPECT_EQ(view->OwnerOfV(v), OwnerOfVertex(v, 3));
    EXPECT_EQ(map.OwnerOfShard(view->ShardOfVertex(v)), OwnerOfVertex(v, 3));
  }
}

TEST(ReconfigShardMapTest, MarkDirtyForcesFilteringWithoutEpochBump) {
  ShardMap map(3);
  map.MarkDirty();
  auto view = map.View();
  EXPECT_FALSE(view->identity);
  EXPECT_EQ(map.epoch(), 0u);  // Dirty is not a cutover.
  for (VertexId v = 1; v <= 200; ++v) {
    EXPECT_EQ(view->OwnerOfV(v), OwnerOfVertex(v, 3));
  }
  map.MarkDirty();
  EXPECT_EQ(map.epoch(), 0u);
  EXPECT_FALSE(map.View()->identity);
}

TEST(ReconfigShardMapTest, CommitMoveBumpsEpochAndOldViewsStayImmutable) {
  ShardMap map(3);
  auto before = map.View();
  const uint32_t shard = 7;
  NodeId old_owner = map.OwnerOfShard(shard);
  NodeId target = (old_owner + 1) % 3;
  ASSERT_TRUE(map.CommitMove(shard, target).ok());
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_EQ(map.OwnerOfShard(shard), target);

  VertexId probe = 0;
  for (VertexId v = 1; v < 5000; ++v) {
    if (before->ShardOfVertex(v) == shard) {
      probe = v;
      break;
    }
  }
  ASSERT_NE(probe, 0u);
  auto after = map.View();
  EXPECT_EQ(after->epoch, 1u);
  EXPECT_FALSE(after->identity);
  EXPECT_EQ(after->OwnerOfV(probe), target);
  // The pre-commit snapshot keeps routing to the old owner: executions
  // admitted under epoch 0 are not redirected mid-flight.
  EXPECT_EQ(before->epoch, 0u);
  EXPECT_EQ(before->OwnerOfV(probe), old_owner);
}

TEST(ReconfigShardMapTest, AddNodeGrowsMembershipWithoutOwningShards) {
  ShardMap map(2);
  EXPECT_EQ(map.shard_count(), 2 * kShardsPerNode);
  NodeId added = map.AddNode();
  EXPECT_EQ(added, 2u);
  EXPECT_EQ(map.node_count(), 3u);
  EXPECT_EQ(map.epoch(), 1u);
  EXPECT_TRUE(map.ShardsOwnedBy(added).empty());
  // The vertex -> shard hash is fixed at construction; membership growth
  // never reshuffles it.
  EXPECT_EQ(map.shard_count(), 2 * kShardsPerNode);
}

// --- Live-cluster integration surface. ---

class ReconfigTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wukongs_reconfig_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::vector<Triple> BaseTriples(StringServer* s) {
    std::vector<Triple> base;
    for (int i = 0; i < kUsers; ++i) {
      base.push_back({s->InternVertex("user" + std::to_string(i)),
                      s->InternPredicate("fo"),
                      s->InternVertex("user" + std::to_string((i + 1) % kUsers))});
    }
    return base;
  }

  // Tuples of [from, to): a post edge every 5 ms plus a timing reading every
  // 20 ms, so every migration moves both timeless and timing window data.
  StreamTupleVec IntervalTuples(StringServer* s, StreamTime from, StreamTime to) {
    StreamTupleVec tuples;
    for (StreamTime t = from; t < to; t += 5) {
      tuples.push_back(
          StreamTuple{{s->InternVertex("user" + std::to_string((t / 5) % kUsers)),
                       s->InternPredicate("po"),
                       s->InternVertex("post" + std::to_string(t / 5))},
                      t,
                      TupleKind::kTimeless});
      if (t % 20 == 0) {
        tuples.push_back(
            StreamTuple{{s->InternVertex("user" + std::to_string((t / 20) % kUsers)),
                         s->InternPredicate("ga"),
                         s->InternVertex("loc" + std::to_string(t % 7))},
                        t,
                        TupleKind::kTiming});
      }
    }
    return tuples;
  }

  // Reconfiguration-free reference: every window's canonical digest.
  std::map<StreamTime, std::string> GoldenDigests(StringServer* strings,
                                                  uint32_t nodes) {
    ClusterConfig config;
    config.nodes = nodes;
    Cluster cluster(config, strings);
    StreamId stream = *cluster.DefineStream("S", {"ga"});
    cluster.LoadBase(BaseTriples(strings));
    auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
    EXPECT_TRUE(h.ok());
    std::map<StreamTime, std::string> golden;
    for (StreamTime t = kStepMs; t <= kEndMs; t += kStepMs) {
      EXPECT_TRUE(
          cluster.FeedStream(stream, IntervalTuples(strings, t - kStepMs, t)).ok());
      cluster.AdvanceStreams(t);
      if (t < kFirstWindowMs) {
        continue;
      }
      auto exec = cluster.ExecuteContinuousAt(*h, t);
      EXPECT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_FALSE(exec->partial);
      golden[t] = ResultDigest(exec->result);
    }
    EXPECT_FALSE(golden.empty());
    return golden;
  }

  // Feeds intervals (from, to] and checks every ready window against the
  // golden digests and the expected ownership epoch.
  void FeedAndCheck(Cluster* c, StringServer* strings, StreamId stream,
                    uint64_t h, StreamTime from_exclusive, StreamTime to,
                    const std::map<StreamTime, std::string>& golden,
                    uint64_t want_epoch) {
    for (StreamTime t = from_exclusive + kStepMs; t <= to; t += kStepMs) {
      ASSERT_TRUE(
          c->FeedStream(stream, IntervalTuples(strings, t - kStepMs, t)).ok());
      c->AdvanceStreams(t);
      if (t < kFirstWindowMs) {
        continue;
      }
      ASSERT_TRUE(c->WindowReady(h, t));
      auto exec = c->ExecuteContinuousAt(h, t);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_FALSE(exec->partial) << "window " << t;
      EXPECT_EQ(exec->ownership_epoch, want_epoch) << "window " << t;
      ASSERT_EQ(golden.count(t), 1u) << "window " << t;
      EXPECT_EQ(ResultDigest(exec->result), golden.at(t)) << "window " << t;
    }
  }

  // Replays the whole checkpoint log into the pending shard transfer.
  void ReplayLogForShard(Cluster* c, const std::string& log_path) {
    auto batches = ReadCheckpointLog(log_path);
    ASSERT_TRUE(batches.ok()) << batches.status().ToString();
    for (const StreamBatch& b : *batches) {
      ASSERT_TRUE(c->ReplayBatchForShard(b).ok());
    }
  }

  std::filesystem::path dir_;
};

// The tentpole property end to end, driven step by step: a shard moves while
// the stream keeps flowing and windows keep firing. Every window digest —
// before Begin, during the transfer (dual-apply era), and after the cutover —
// matches the golden run, and the epoch of each execution records which map
// it was admitted under.
TEST_F(ReconfigTest, LiveMoveShardPreservesEveryWindowResult) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 3);

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  // Phase 1: steady state under the identity map.
  FeedAndCheck(&cluster, &strings, stream, *h, 0, 800, golden, /*epoch=*/0);

  // Pin the migration: user5's shard moves off its hash-assigned owner.
  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user5"));
  NodeId source = cluster.ShardOwner(shard);
  NodeId target = (source + 1) % 3;
  ASSERT_TRUE(cluster.BeginShardMove(shard, target).ok());
  EXPECT_TRUE(cluster.MigrationPending());
  EXPECT_EQ(cluster.OwnershipEpoch(), 0u);  // Begin is not a cutover.
  ASSERT_TRUE(cluster.LoadBaseForShard(base).ok());

  // Phase 2: the stream keeps flowing mid-transfer. New batches dual-apply
  // to the target; executions still route by epoch 0 and read the source.
  FeedAndCheck(&cluster, &strings, stream, *h, 800, 1400, golden, /*epoch=*/0);
  EXPECT_GT(cluster.reconfig_stats().dual_applied_edges, 0u);

  // Replay the pre-Begin history into the target, then cut over.
  ASSERT_TRUE(log->Sync().ok());
  ReplayLogForShard(&cluster, Path("batches.log"));
  EXPECT_GT(cluster.reconfig_stats().batches_replayed, 0u);
  ASSERT_TRUE(cluster.FinishShardTransfer().ok());
  EXPECT_FALSE(cluster.MigrationPending());
  EXPECT_EQ(cluster.OwnershipEpoch(), 1u);
  EXPECT_EQ(cluster.ShardOwner(shard), target);
  EXPECT_EQ(cluster.reconfig_stats().moves_committed, 1u);
  EXPECT_EQ(cluster.reconfig_stats().moves_aborted, 0u);
  // Base copy + history replay, accounted at commit.
  EXPECT_GT(cluster.reconfig_stats().edges_copied, 0u);

  // Phase 3: post-cutover windows route by epoch 1 and stay byte-identical.
  FeedAndCheck(&cluster, &strings, stream, *h, 1400, kEndMs, golden, /*epoch=*/1);

  // The stored-graph base partition moved with the shard: a one-shot over
  // base edges still sees every fo edge exactly once.
  auto oneshot = cluster.OneShot("SELECT ?X ?Y WHERE { ?X fo ?Y }");
  ASSERT_TRUE(oneshot.ok()) << oneshot.status().ToString();
  EXPECT_EQ(oneshot->result.rows.size(), static_cast<size_t>(kUsers));
}

// Regression: a shard moving *back* to a former owner. The source keeps its
// copy at cutover (reclamation is deferred), so without the Begin-time purge
// the return transfer would duplicate every edge of the shard — windows and
// one-shots would double-count. The purge must scrub the persistent store,
// the stream indexes, and the transient slices of the stale holder.
TEST_F(ReconfigTest, MoveShardBackToFormerOwnerDoesNotDuplicate) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 3);

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  FeedAndCheck(&cluster, &strings, stream, *h, 0, 800, golden, /*epoch=*/0);
  ASSERT_TRUE(log->Sync().ok());

  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user5"));
  NodeId source = cluster.ShardOwner(shard);
  NodeId target = (source + 1) % 3;
  ReconfigManager mgr(Path("batches.log"));
  auto out = mgr.MoveShard(&cluster, shard, target, base);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(cluster.ShardOwner(shard), target);

  FeedAndCheck(&cluster, &strings, stream, *h, 800, 1400, golden, /*epoch=*/1);

  // Return trip: the original owner still holds its tenure-one copy, which
  // Begin must purge before rebuilding.
  ASSERT_TRUE(log->Sync().ok());
  auto back = mgr.MoveShard(&cluster, shard, source, base);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(cluster.ShardOwner(shard), source);
  EXPECT_EQ(cluster.OwnershipEpoch(), 2u);
  EXPECT_GT(cluster.reconfig_stats().stale_edges_purged, 0u);

  // Windows after the round trip stay byte-identical to the golden run, and
  // base edges are still seen exactly once — no duplicated shard data.
  FeedAndCheck(&cluster, &strings, stream, *h, 1400, kEndMs, golden, /*epoch=*/2);
  auto oneshot = cluster.OneShot("SELECT ?X ?Y WHERE { ?X fo ?Y }");
  ASSERT_TRUE(oneshot.ok()) << oneshot.status().ToString();
  EXPECT_EQ(oneshot->result.rows.size(), static_cast<size_t>(kUsers));
}

// The same handoff through the ReconfigManager driver: one call does
// Begin + base copy + log replay + finish, committing immediately when the
// cluster is healthy and the stable frontier covers everything delivered.
TEST_F(ReconfigTest, ReconfigManagerMoveShardCommitsEndToEnd) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 3);

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  FeedAndCheck(&cluster, &strings, stream, *h, 0, 1000, golden, /*epoch=*/0);
  ASSERT_TRUE(log->Sync().ok());

  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user7"));
  NodeId source = cluster.ShardOwner(shard);
  NodeId target = (source + 1) % 3;
  ReconfigManager mgr(Path("batches.log"));
  auto report = mgr.MoveShard(&cluster, shard, target, base);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->commit_pending);
  ASSERT_EQ(report->shards_moved.size(), 1u);
  EXPECT_EQ(report->shards_moved[0], shard);
  EXPECT_GT(report->batches_replayed, 0u);
  EXPECT_GT(report->edges_copied, 0u);
  EXPECT_EQ(cluster.ShardOwner(shard), target);
  EXPECT_EQ(cluster.OwnershipEpoch(), 1u);
  EXPECT_FALSE(cluster.MigrationPending());

  FeedAndCheck(&cluster, &strings, stream, *h, 1000, kEndMs, golden, /*epoch=*/1);
}

// Explicit abort: the epoch never moves, the partial target copy stays
// invisible behind ownership filtering, and the (shard, target) pair is
// tainted against a duplicating re-replay — while another target stays fine.
TEST_F(ReconfigTest, ExplicitAbortRollsBackAndTaintsTargetPair) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 3);

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  FeedAndCheck(&cluster, &strings, stream, *h, 0, 800, golden, /*epoch=*/0);

  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user5"));
  NodeId source = cluster.ShardOwner(shard);
  NodeId target = (source + 1) % 3;
  NodeId other = (source + 2) % 3;
  ASSERT_TRUE(cluster.BeginShardMove(shard, target).ok());
  ASSERT_TRUE(cluster.LoadBaseForShard(base).ok());
  // Let dual-apply land some live batches on the target before aborting.
  FeedAndCheck(&cluster, &strings, stream, *h, 800, 1000, golden, /*epoch=*/0);

  ASSERT_TRUE(cluster.AbortShardMove("operator abort").ok());
  EXPECT_FALSE(cluster.MigrationPending());
  EXPECT_EQ(cluster.OwnershipEpoch(), 0u);
  EXPECT_EQ(cluster.ShardOwner(shard), source);
  EXPECT_EQ(cluster.reconfig_stats().moves_aborted, 1u);

  // The stranded copy poisons this (shard, target) pair only.
  EXPECT_EQ(cluster.BeginShardMove(shard, target).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cluster.BeginShardMove(shard, other).ok());
  ASSERT_TRUE(cluster.AbortShardMove("cleanup").ok());
  EXPECT_EQ(cluster.reconfig_stats().moves_aborted, 2u);

  // Stranded copies on two nodes, and every window still byte-identical.
  FeedAndCheck(&cluster, &strings, stream, *h, 1000, kEndMs, golden, /*epoch=*/0);
}

// A crash of the migration target mid-transfer rolls back without a cutover;
// crashing wipes the target's stores, so its taints clear and the *same*
// (shard, target) pair can retry after restore — and then commits cleanly.
TEST_F(ReconfigTest, TargetCrashClearsTaintAndAllowsRetry) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 3);

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  FeedAndCheck(&cluster, &strings, stream, *h, 0, 800, golden, /*epoch=*/0);

  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user5"));
  NodeId source = cluster.ShardOwner(shard);
  NodeId target = (source + 1) % 3;
  ASSERT_TRUE(cluster.BeginShardMove(shard, target).ok());
  ASSERT_TRUE(cluster.LoadBaseForShard(base).ok());
  FeedAndCheck(&cluster, &strings, stream, *h, 800, 1000, golden, /*epoch=*/0);

  ASSERT_TRUE(cluster.CrashNode(target).ok());
  EXPECT_FALSE(cluster.MigrationPending());
  EXPECT_EQ(cluster.OwnershipEpoch(), 0u);
  EXPECT_EQ(cluster.reconfig_stats().moves_aborted, 1u);

  // Warm repair of the crashed target from the synced log.
  ASSERT_TRUE(log->Sync().ok());
  RecoveryManager manager(Path("batches.log"));
  auto restore = manager.RestoreNode(&cluster, target, base, nullptr);
  ASSERT_TRUE(restore.ok()) << restore.status().ToString();
  EXPECT_TRUE(cluster.NodeUp(target));

  // The crash reset the target's stores, so the stranded partial copy died
  // with it: the same pair is allowed again and the move completes.
  ASSERT_TRUE(cluster.BeginShardMove(shard, target).ok());
  ASSERT_TRUE(cluster.LoadBaseForShard(base).ok());
  ASSERT_TRUE(log->Sync().ok());
  ReplayLogForShard(&cluster, Path("batches.log"));
  ASSERT_TRUE(cluster.FinishShardTransfer().ok());
  EXPECT_FALSE(cluster.MigrationPending());
  EXPECT_EQ(cluster.OwnershipEpoch(), 1u);
  EXPECT_EQ(cluster.ShardOwner(shard), target);
  EXPECT_EQ(cluster.reconfig_stats().moves_committed, 1u);

  FeedAndCheck(&cluster, &strings, stream, *h, 1000, kEndMs, golden, /*epoch=*/1);
}

// Elastic scale-out: AddNode grows membership (VTS seeded at the delivered
// frontier, owning nothing), then a live move lands the first shard on it.
TEST_F(ReconfigTest, AddNodeThenMoveShardOntoIt) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 2);

  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  FeedAndCheck(&cluster, &strings, stream, *h, 0, 1000, golden, /*epoch=*/0);

  auto added = cluster.AddNode();
  ASSERT_TRUE(added.ok()) << added.status().ToString();
  EXPECT_EQ(*added, 2u);
  EXPECT_EQ(cluster.node_count(), 3u);
  EXPECT_EQ(cluster.OwnershipEpoch(), 1u);
  EXPECT_TRUE(cluster.ShardsOwnedBy(*added).empty());
  EXPECT_EQ(cluster.ShardCount(), 2 * kShardsPerNode);
  EXPECT_EQ(cluster.reconfig_stats().nodes_added, 1u);

  // The empty member's seeded VTS must not stall the stable frontier.
  FeedAndCheck(&cluster, &strings, stream, *h, 1000, 1200, golden, /*epoch=*/1);

  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user3"));
  ASSERT_TRUE(cluster.BeginShardMove(shard, *added).ok());
  // Membership changes are serialized against in-flight migrations.
  EXPECT_EQ(cluster.AddNode().status().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(cluster.LoadBaseForShard(base).ok());
  ASSERT_TRUE(log->Sync().ok());
  ReplayLogForShard(&cluster, Path("batches.log"));
  ASSERT_TRUE(cluster.FinishShardTransfer().ok());
  EXPECT_EQ(cluster.ShardOwner(shard), *added);
  EXPECT_EQ(cluster.ShardsOwnedBy(*added).size(), 1u);
  EXPECT_EQ(cluster.OwnershipEpoch(), 2u);

  FeedAndCheck(&cluster, &strings, stream, *h, 1200, kEndMs, golden, /*epoch=*/2);
}

// Scale-in: DrainNode re-homes the node's registered queries, then moves all
// of its shards off, one live migration at a time.
TEST_F(ReconfigTest, DrainNodeEmptiesOwnershipAndRehomesQueries) {
  StringServer strings;
  auto golden = GoldenDigests(&strings, 3);

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  // Registered on the node being drained: must be re-homed, not lost.
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/2);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  FeedAndCheck(&cluster, &strings, stream, *h, 0, 1000, golden, /*epoch=*/0);
  ASSERT_TRUE(log->Sync().ok());

  ReconfigManager mgr(Path("batches.log"));
  StreamTime t = 1000;
  auto report = mgr.DrainNode(&cluster, 2, base);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // A deferred commit pauses the drain; feed more batches (advancing the
  // stable frontier) and resume. Healthy clusters finish in one call.
  int rounds = 0;
  while (report->shards_remaining > 0 || report->commit_pending) {
    ASSERT_LT(++rounds, 20) << "drain did not converge";
    t += kStepMs;
    ASSERT_TRUE(
        cluster.FeedStream(stream, IntervalTuples(&strings, t - kStepMs, t)).ok());
    cluster.AdvanceStreams(t);
    ASSERT_TRUE(log->Sync().ok());
    report = mgr.DrainNode(&cluster, 2, base);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }
  EXPECT_TRUE(cluster.ShardsOwnedBy(2).empty());
  EXPECT_TRUE(cluster.IsDraining(2));
  EXPECT_EQ(cluster.reconfig_stats().drains_started, 1u);
  EXPECT_GE(cluster.reconfig_stats().rehomed_registrations, 1u);
  EXPECT_EQ(cluster.reconfig_stats().moves_committed,
            static_cast<uint64_t>(kShardsPerNode));
  EXPECT_EQ(cluster.OwnershipEpoch(), static_cast<uint64_t>(kShardsPerNode));

  FeedAndCheck(&cluster, &strings, stream, *h, t, kEndMs, golden,
               cluster.OwnershipEpoch());
}

// Satellite: at-least-once delivery means a window can fire on both sides of
// a cutover. The source-epoch and target-epoch executions must be
// byte-identical, and client-side WindowDedup collapses the duplicate.
TEST_F(ReconfigTest, DuplicateTriggersAcrossOwnershipChangeCollapse) {
  StringServer strings;

  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  auto base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h = cluster.RegisterContinuous(kMoveQuery, /*home=*/0);
  ASSERT_TRUE(h.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });

  for (StreamTime t = kStepMs; t <= 1000; t += kStepMs) {
    ASSERT_TRUE(
        cluster.FeedStream(stream, IntervalTuples(&strings, t - kStepMs, t)).ok());
    cluster.AdvanceStreams(t);
  }

  WindowDedup dedup;
  auto first = cluster.ExecuteContinuousAt(*h, 1000);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->ownership_epoch, 0u);
  std::string d0 = ResultDigest(first->result);
  EXPECT_TRUE(dedup.Accept(*h, 1000, first->partial, d0));

  ASSERT_TRUE(log->Sync().ok());
  uint32_t shard = cluster.ShardOfVertexId(strings.InternVertex("user5"));
  NodeId target = (cluster.ShardOwner(shard) + 1) % 3;
  ReconfigManager mgr(Path("batches.log"));
  auto report = mgr.MoveShard(&cluster, shard, target, base);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(cluster.OwnershipEpoch(), 1u);

  // Same window re-fires under the new epoch, now served by the target.
  auto second = cluster.ExecuteContinuousAt(*h, 1000);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->ownership_epoch, 1u);
  EXPECT_EQ(ResultDigest(second->result), d0);
  EXPECT_FALSE(dedup.Accept(*h, 1000, second->partial, ResultDigest(second->result)));
  EXPECT_EQ(dedup.duplicates_suppressed(), 1u);
}

// Satellite: CrashNode's delta-cache flush is scoped to streams whose window
// data actually touched the crashed node; caches fed entirely by other nodes
// keep their entries.
TEST(ReconfigDeltaTest, CrashFlushIsScopedToStreamsTouchingTheCrashedNode) {
  StringServer strings;
  ClusterConfig config;
  config.nodes = 3;
  // Keep the delta path available (fork-join bypasses it) without changing
  // what the queries compute.
  config.force_in_place = true;
  Cluster cluster(config, &strings);
  StreamId sa = *cluster.DefineStream("SA");
  StreamId sb = *cluster.DefineStream("SB");

  constexpr NodeId kVictim = 2;
  // SA's edges land only on the victim (both endpoints hash there); SB's
  // edges never touch it. Injection partitions by endpoint owner, so this
  // controls exactly which nodes absorb each stream's window data.
  auto pick = [&](const std::string& prefix, bool on_victim) {
    std::vector<VertexId> out;
    for (int i = 0; out.size() < 6 && i < 2000; ++i) {
      VertexId v = strings.InternVertex(prefix + std::to_string(i));
      if ((cluster.OwnerOf(v) == kVictim) == on_victim) {
        out.push_back(v);
      }
    }
    EXPECT_EQ(out.size(), 6u);
    return out;
  };
  auto va = pick("a", true);
  auto vb = pick("b", false);

  auto qa = cluster.RegisterContinuous(R"(
      REGISTER QUERY QA AS
      SELECT ?X ?Y
      FROM STREAM <SA> [RANGE 500ms STEP 100ms]
      WHERE { GRAPH <SA> { ?X pa ?Y } })");
  auto qb = cluster.RegisterContinuous(R"(
      REGISTER QUERY QB AS
      SELECT ?X ?Y
      FROM STREAM <SB> [RANGE 500ms STEP 100ms]
      WHERE { GRAPH <SB> { ?X pb ?Y } })");
  ASSERT_TRUE(qa.ok() && qb.ok());
  ASSERT_TRUE(cluster.HasDeltaCache(*qa));
  ASSERT_TRUE(cluster.HasDeltaCache(*qb));

  PredicateId pa = strings.InternPredicate("pa");
  PredicateId pb = strings.InternPredicate("pb");
  auto tuples_for = [&](const std::vector<VertexId>& v, PredicateId p,
                        StreamTime from) {
    StreamTupleVec tuples;
    for (size_t k = 0; k < v.size(); ++k) {
      tuples.push_back(StreamTuple{{v[k], p, v[(k + 1) % v.size()]},
                                   from + static_cast<StreamTime>(k * 15),
                                   TupleKind::kTimeless});
    }
    return tuples;
  };

  for (StreamTime t = kStepMs; t <= 1000; t += kStepMs) {
    ASSERT_TRUE(cluster.FeedStream(sa, tuples_for(va, pa, t - kStepMs)).ok());
    ASSERT_TRUE(cluster.FeedStream(sb, tuples_for(vb, pb, t - kStepMs)).ok());
    cluster.AdvanceStreams(t);
    if (t < kFirstWindowMs) {
      continue;
    }
    for (uint64_t h : {*qa, *qb}) {
      auto exec = cluster.ExecuteContinuousAt(h, t);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_FALSE(exec->result.rows.empty());
      if (t == 1000) {
        EXPECT_TRUE(exec->delta);
      }
    }
  }

  size_t entries_a = cluster.DeltaEntryCountOf(*qa);
  size_t entries_b = cluster.DeltaEntryCountOf(*qb);
  EXPECT_GT(entries_a, 0u);
  EXPECT_GT(entries_b, 0u);

  ASSERT_TRUE(cluster.CrashNode(kVictim).ok());
  // SA's window slices died with the victim: its cache flushes. SB never
  // stored an edge there: its cache survives intact.
  EXPECT_EQ(cluster.DeltaEntryCountOf(*qa), 0u);
  EXPECT_EQ(cluster.DeltaEntryCountOf(*qb), entries_b);
}

}  // namespace
}  // namespace wukongs
