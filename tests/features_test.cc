// Tests for the extension features: DISTINCT / ORDER BY / LIMIT solution
// modifiers, time-scoped one-shot queries over streams (the Time-ontology
// form, paper §4.2 footnote), the client library / proxy, and string-server
// persistence.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/cluster/client.h"
#include "src/cluster/cluster.h"
#include "src/sparql/parser.h"

namespace wukongs {
namespace {

class FeaturesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig config;
    config.nodes = 2;
    config.batch_interval_ms = 100;
    cluster_ = std::make_unique<Cluster>(config);
    posts_ = *cluster_->DefineStream("Post_Stream", {"ga"});

    StringServer* s = cluster_->strings();
    auto triple = [&](const char* a, const char* p, const char* o) {
      return Triple{s->InternVertex(a), s->InternPredicate(p), s->InternVertex(o)};
    };
    cluster_->LoadBase(std::vector<Triple>{
        triple("alice", "score", "30"), triple("bob", "score", "10"),
        triple("carol", "score", "20"), triple("alice", "fo", "bob"),
        triple("alice", "fo", "carol"), triple("bob", "fo", "carol")});
  }

  void FeedPosts() {
    StringServer* s = cluster_->strings();
    auto tuple = [&](const char* a, const char* o, StreamTime ts) {
      return StreamTuple{{s->InternVertex(a), s->InternPredicate("po"),
                          s->InternVertex(o)},
                         ts,
                         TupleKind::kTimeless};
    };
    ASSERT_TRUE(cluster_
                    ->FeedStream(posts_, {tuple("alice", "p1", 150),
                                          tuple("bob", "p2", 450),
                                          tuple("carol", "p3", 750),
                                          tuple("alice", "p4", 950)})
                    .ok());
    cluster_->AdvanceStreams(1000);
  }

  std::string Name(const ResultValue& v) {
    return *cluster_->strings()->VertexString(v.vid);
  }

  std::unique_ptr<Cluster> cluster_;
  StreamId posts_ = 0;
};

// --- Solution modifiers ---

TEST_F(FeaturesTest, OrderByAscending) {
  auto exec = cluster_->OneShot(
      "SELECT ?U ?S WHERE { ?U score ?S } ORDER BY ?S");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 3u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "bob");    // 10
  EXPECT_EQ(Name(exec->result.rows[1][0]), "carol");  // 20
  EXPECT_EQ(Name(exec->result.rows[2][0]), "alice");  // 30
}

TEST_F(FeaturesTest, OrderByDescending) {
  auto exec = cluster_->OneShot(
      "SELECT ?U ?S WHERE { ?U score ?S } ORDER BY DESC(?S)");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 3u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "alice");
}

TEST_F(FeaturesTest, Limit) {
  auto exec = cluster_->OneShot(
      "SELECT ?U ?S WHERE { ?U score ?S } ORDER BY DESC(?S) LIMIT 2");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 2u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "alice");
  EXPECT_EQ(Name(exec->result.rows[1][0]), "carol");
}

TEST_F(FeaturesTest, Distinct) {
  // ?Y ranges over people followed by anyone: carol appears twice without
  // DISTINCT, once with.
  auto plain = cluster_->OneShot("SELECT ?Y WHERE { ?X fo ?Y }");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->result.rows.size(), 3u);
  auto distinct = cluster_->OneShot("SELECT DISTINCT ?Y WHERE { ?X fo ?Y }");
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  EXPECT_EQ(distinct->result.rows.size(), 2u);
}

TEST_F(FeaturesTest, OrderByRequiresProjectedVariable) {
  auto exec = cluster_->OneShot("SELECT ?U WHERE { ?U score ?S } ORDER BY ?S");
  EXPECT_FALSE(exec.ok());
  EXPECT_EQ(exec.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(FeaturesTest, ParserRejectsZeroLimit) {
  StringServer s;
  EXPECT_FALSE(ParseQuery("SELECT ?U WHERE { ?U a b } LIMIT 0", &s).ok());
}

TEST_F(FeaturesTest, ModifiersOnAggregates) {
  FeedPosts();
  auto exec = cluster_->OneShot(
      "SELECT ?U (COUNT(?P) AS ?n) WHERE { ?U po ?P } GROUP BY ?U "
      "ORDER BY ?U LIMIT 2");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  ASSERT_EQ(exec->result.rows.size(), 2u);
  EXPECT_EQ(Name(exec->result.rows[0][0]), "alice");
  EXPECT_DOUBLE_EQ(exec->result.rows[0][1].number, 2.0);
}

// --- Time-scoped one-shot queries ---

TEST_F(FeaturesTest, AbsoluteWindowOneShot) {
  FeedPosts();
  // Posts in [0.1s, 0.8s): p1 (150), p2 (450), p3 (750) — not p4 (950).
  auto exec = cluster_->OneShot(R"(
      SELECT ?U ?P
      FROM STREAM <Post_Stream> [FROM 100ms TO 800ms]
      WHERE { GRAPH <Post_Stream> { ?U po ?P } })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), 3u);
}

TEST_F(FeaturesTest, AbsoluteWindowClampsToStablePrefix) {
  FeedPosts();
  // The scope extends past injected data; the read clamps to Stable_VTS.
  auto exec = cluster_->OneShot(R"(
      SELECT ?P
      FROM STREAM <Post_Stream> [FROM 0ms TO 60s]
      WHERE { GRAPH <Post_Stream> { alice po ?P } })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), 2u);  // p1 and p4.
}

TEST_F(FeaturesTest, AbsoluteWindowBeforeAnyDataIsEmpty) {
  auto exec = cluster_->OneShot(R"(
      SELECT ?P
      FROM STREAM <Post_Stream> [FROM 0ms TO 1s]
      WHERE { GRAPH <Post_Stream> { alice po ?P } })");
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_TRUE(exec->result.rows.empty());
}

TEST_F(FeaturesTest, ParserRejectsMixedWindowKinds) {
  StringServer s;
  // Continuous query with an absolute window.
  EXPECT_FALSE(ParseQuery(R"(
      REGISTER QUERY q AS SELECT ?P
      FROM STREAM <S> [FROM 1s TO 2s]
      WHERE { GRAPH <S> { a po ?P } })",
                          &s)
                   .ok());
  // One-shot query with a sliding window.
  EXPECT_FALSE(ParseQuery(R"(
      SELECT ?P
      FROM STREAM <S> [RANGE 1s STEP 1s]
      WHERE { GRAPH <S> { a po ?P } })",
                          &s)
                   .ok());
}

TEST_F(FeaturesTest, ParserRejectsInvertedAbsoluteWindow) {
  StringServer s;
  EXPECT_FALSE(ParseQuery(R"(
      SELECT ?P FROM STREAM <S> [FROM 2s TO 1s]
      WHERE { GRAPH <S> { a po ?P } })",
                          &s)
                   .ok());
}

// --- Client library / proxy ---

TEST_F(FeaturesTest, ClientCachesStoredProcedures) {
  Client client(cluster_.get());
  std::string text = "SELECT ?U ?S WHERE { ?U score ?S }";
  ASSERT_TRUE(client.Submit(text).ok());
  ASSERT_TRUE(client.Submit(text).ok());
  ASSERT_TRUE(client.Submit(text).ok());
  EXPECT_EQ(client.stats().one_shot_queries, 3u);
  EXPECT_EQ(client.stats().procedure_cache_hits, 2u);
  EXPECT_GT(client.stats().total_latency_ms, 0.0);
}

TEST_F(FeaturesTest, ClientRegisterAndPoll) {
  Client client(cluster_.get());
  auto handle = client.Register(R"(
      REGISTER QUERY q AS SELECT ?U ?P
      FROM STREAM <Post_Stream> [RANGE 1s STEP 100ms]
      WHERE { GRAPH <Post_Stream> { ?U po ?P } })");
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  FeedPosts();
  auto exec = client.Poll(*handle, 1000);
  ASSERT_TRUE(exec.ok()) << exec.status().ToString();
  EXPECT_EQ(exec->result.rows.size(), 4u);
  EXPECT_EQ(client.stats().polls, 1u);

  auto rendered = client.Render(exec->result);
  ASSERT_EQ(rendered.size(), 4u);
  EXPECT_EQ(rendered[0].size(), 2u);
}

TEST_F(FeaturesTest, ProxyBalancesClientsAcrossNodes) {
  Proxy proxy(cluster_.get());
  Client a = proxy.NewClient();
  Client b = proxy.NewClient();
  Client c = proxy.NewClient();
  EXPECT_EQ(a.home(), 0u);
  EXPECT_EQ(b.home(), 1u);
  EXPECT_EQ(c.home(), 0u);  // Wraps around 2 nodes.
}

TEST_F(FeaturesTest, ClientReportsParseErrors) {
  Client client(cluster_.get());
  auto exec = client.Submit("SELECT WHERE {}");
  EXPECT_FALSE(exec.ok());
}

// --- String-server persistence ---

TEST(StringServerPersistenceTest, SaveLoadRoundTrip) {
  auto path = std::filesystem::temp_directory_path() /
              ("wukongs_strings_" + std::to_string(::getpid()) + ".bin");
  StringServer a;
  VertexId logan = a.InternVertex("Logan");
  VertexId erik = a.InternVertex("Erik");
  PredicateId po = a.InternPredicate("po");
  ASSERT_TRUE(a.Save(path.string()).ok());

  StringServer b;
  ASSERT_TRUE(b.Load(path.string()).ok());
  EXPECT_EQ(b.vertex_count(), a.vertex_count());
  EXPECT_EQ(b.FindVertex("Logan"), logan);
  EXPECT_EQ(b.FindVertex("Erik"), erik);
  EXPECT_EQ(b.FindPredicate("po"), po);
  // Interning continues with consistent IDs.
  EXPECT_EQ(b.InternVertex("Logan"), logan);
  EXPECT_GT(b.InternVertex("Tony"), erik);
  std::filesystem::remove(path);
}

TEST(StringServerPersistenceTest, LoadRequiresFreshServer) {
  auto path = std::filesystem::temp_directory_path() /
              ("wukongs_strings2_" + std::to_string(::getpid()) + ".bin");
  StringServer a;
  a.InternVertex("x");
  ASSERT_TRUE(a.Save(path.string()).ok());
  StringServer b;
  b.InternVertex("y");
  EXPECT_FALSE(b.Load(path.string()).ok());
  std::filesystem::remove(path);
}

TEST(StringServerPersistenceTest, MissingFileIsNotFound) {
  StringServer s;
  EXPECT_EQ(s.Load("/nonexistent/strings.bin").code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace wukongs
