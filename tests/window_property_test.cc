// Randomized window-semantics property test.
//
// For random graphs, random streams, and randomly generated basic graph
// patterns spanning the stored graph and stream windows, the integrated
// engine must agree with a brute-force relational evaluation (scan + hash
// join over window-filtered tuple tables). This covers query shapes far
// beyond the fixed L/C catalogs: random constants, shared variables, varying
// window ranges and ends.

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/baseline_streams.h"
#include "src/baselines/relational.h"
#include "src/cluster/cluster.h"
#include "src/common/rng.h"

namespace wukongs {
namespace {

constexpr uint64_t kIntervalMs = 100;
constexpr size_t kEntities = 30;
constexpr int kPredicateCount = 3;

struct RandomWorld {
  std::unique_ptr<StringServer> strings;
  std::unique_ptr<Cluster> cluster;
  TripleVec base;
  StreamTupleVec stream_tuples;  // One stream, "S".
  StreamId stream = 0;
  std::vector<VertexId> entities;
  std::vector<PredicateId> predicates;
};

RandomWorld BuildWorld(Rng* rng, uint32_t nodes) {
  RandomWorld world;
  world.strings = std::make_unique<StringServer>();
  ClusterConfig config;
  config.nodes = nodes;
  config.batch_interval_ms = kIntervalMs;
  world.cluster = std::make_unique<Cluster>(config, world.strings.get());
  world.stream = *world.cluster->DefineStream("S");

  for (size_t i = 0; i < kEntities; ++i) {
    world.entities.push_back(
        world.strings->InternVertex("e" + std::to_string(i)));
  }
  for (int i = 0; i < kPredicateCount; ++i) {
    world.predicates.push_back(
        world.strings->InternPredicate("p" + std::to_string(i)));
  }

  auto entity = [&] {
    return world.entities[rng->Uniform(0, world.entities.size() - 1)];
  };
  auto pred = [&] {
    return world.predicates[rng->Uniform(0, world.predicates.size() - 1)];
  };

  // Random stored graph (as a set: duplicates dropped).
  std::set<std::tuple<VertexId, PredicateId, VertexId>> seen;
  size_t base_size = rng->Uniform(30, 80);
  while (world.base.size() < base_size) {
    Triple t{entity(), pred(), entity()};
    if (seen.emplace(t.subject, t.predicate, t.object).second) {
      world.base.push_back(t);
    }
  }
  world.cluster->LoadBase(world.base);

  // Random stream: tuples over 2 seconds.
  size_t tuple_count = rng->Uniform(40, 120);
  std::vector<StreamTime> times(tuple_count);
  for (auto& t : times) {
    t = rng->Uniform(0, 1999);
  }
  std::sort(times.begin(), times.end());
  for (StreamTime ts : times) {
    world.stream_tuples.push_back(
        StreamTuple{{entity(), pred(), entity()}, ts, TupleKind::kTimeless});
  }
  EXPECT_TRUE(world.cluster->FeedStream(world.stream, world.stream_tuples).ok());
  world.cluster->AdvanceStreams(2000);
  return world;
}

// Random BGP: 2-4 patterns over stored/stream graphs with shared variables.
Query RandomQuery(Rng* rng, const RandomWorld& world, uint64_t range_ms) {
  Query q;
  q.continuous = true;
  q.name = "rand";
  WindowSpec w;
  w.stream_name = "S";
  w.range_ms = range_ms;
  w.step_ms = kIntervalMs;
  q.windows.push_back(w);

  int num_patterns = static_cast<int>(rng->Uniform(2, 4));
  int num_vars = static_cast<int>(rng->Uniform(2, 4));
  for (int v = 0; v < num_vars; ++v) {
    q.var_names.push_back("v" + std::to_string(v));
  }
  auto term = [&]() -> Term {
    if (rng->Bernoulli(0.35)) {
      return Term::Constant(
          world.entities[rng->Uniform(0, world.entities.size() - 1)]);
    }
    return Term::Variable(static_cast<int>(rng->Uniform(0, num_vars - 1)));
  };
  for (int p = 0; p < num_patterns; ++p) {
    TriplePattern pattern;
    pattern.subject = term();
    pattern.predicate =
        world.predicates[rng->Uniform(0, world.predicates.size() - 1)];
    pattern.object = term();
    if (pattern.subject.is_var() && pattern.object.is_var() &&
        pattern.subject.var == pattern.object.var) {
      pattern.object = Term::Constant(
          world.entities[rng->Uniform(0, world.entities.size() - 1)]);
    }
    pattern.graph = rng->Bernoulli(0.5) ? 0 : kGraphStored;
    q.patterns.push_back(pattern);
  }
  // Select every variable that appears in some pattern.
  for (int v = 0; v < num_vars; ++v) {
    for (const TriplePattern& p : q.patterns) {
      if ((p.subject.is_var() && p.subject.var == v) ||
          (p.object.is_var() && p.object.var == v)) {
        q.select.push_back(SelectItem{v, AggKind::kNone});
        break;
      }
    }
  }
  if (q.select.empty()) {
    // All-constant degenerate pattern set; force one variable pattern.
    q.patterns[0].subject = Term::Variable(0);
    q.select.push_back(SelectItem{0, AggKind::kNone});
  }
  return q;
}

// Brute force: relational evaluation over the raw data.
std::multiset<std::vector<VertexId>> BruteForce(const RandomWorld& world,
                                                const Query& q,
                                                StreamTime end_ms) {
  TripleTable stored;
  stored.AddAll(world.base);
  // The integrated design absorbs timeless stream facts into the stored
  // graph: stored patterns see them at the stable snapshot (everything here,
  // since the whole stream is injected before querying).
  for (const StreamTuple& t : world.stream_tuples) {
    stored.Add(t.triple);
  }
  TripleTable window;
  StreamTime from = end_ms > q.windows[0].range_ms ? end_ms - q.windows[0].range_ms
                                                   : 0;
  // Window (end - range, end] in batch granularity: batches lo..hi.
  BatchRange r = WindowBatches(end_ms, q.windows[0].range_ms, kIntervalMs);
  (void)from;
  for (const StreamTuple& t : world.stream_tuples) {
    BatchSeq b = BatchOfTime(t.timestamp, kIntervalMs);
    if (!r.empty && b >= r.lo && b <= r.hi) {
      window.Add(t.triple);
    }
  }

  RelTable acc;
  bool first = true;
  for (const TriplePattern& p : q.patterns) {
    RelTable scanned =
        ScanPattern(p.graph == kGraphStored ? stored : window, p);
    if (first) {
      acc = std::move(scanned);
      first = false;
    } else {
      acc = HashJoin(acc, scanned);
    }
  }
  // Constant-only patterns with empty scan results kill everything; a
  // constant-only pattern that matches produces the neutral one-empty-row
  // table, which HashJoin treats as pass-through... ScanPattern already
  // returns zero-column rows for constant-only matches, handled by HashJoin
  // as a semi-join. Project the selected variables.
  std::multiset<std::vector<VertexId>> out;
  for (const auto& row : acc.rows) {
    std::vector<VertexId> projected;
    bool ok = true;
    for (const SelectItem& item : q.select) {
      int col = acc.ColumnOf(item.var);
      if (col < 0) {
        ok = false;
        break;
      }
      projected.push_back(row[static_cast<size_t>(col)]);
    }
    if (ok) {
      out.insert(std::move(projected));
    }
  }
  return out;
}

std::multiset<std::vector<VertexId>> ToBag(const QueryResult& r) {
  std::multiset<std::vector<VertexId>> out;
  for (const auto& row : r.rows) {
    std::vector<VertexId> ids;
    for (const ResultValue& v : row) {
      ids.push_back(v.vid);
    }
    out.insert(std::move(ids));
  }
  return out;
}

class WindowPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowPropertyTest, IntegratedMatchesBruteForce) {
  Rng rng(GetParam());
  for (uint32_t nodes : {1u, 3u}) {
    RandomWorld world = BuildWorld(&rng, nodes);
    for (int qn = 0; qn < 8; ++qn) {
      uint64_t range_ms = rng.Uniform(1, 15) * kIntervalMs;
      Query q = RandomQuery(&rng, world, range_ms);
      auto handle = world.cluster->RegisterContinuousParsed(q);
      ASSERT_TRUE(handle.ok());
      for (StreamTime end : {600u, 1300u, 2000u}) {
        auto exec = world.cluster->ExecuteContinuousAt(*handle, end);
        ASSERT_TRUE(exec.ok()) << exec.status().ToString();
        auto expected = BruteForce(world, q, end);
        ASSERT_EQ(ToBag(exec->result), expected)
            << "seed=" << GetParam() << " nodes=" << nodes << " query#" << qn
            << " range=" << range_ms << " end=" << end;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace wukongs
