// Fault injection + recovery tests (robustness tentpole).
//
// The acceptance property: a seeded fault schedule — node crash at batch k,
// torn checkpoint-log tail, probabilistic fabric failures — run through the
// RecoveryManager reproduces byte-identical continuous-query results vs a
// fault-free golden run, after client-side window dedup (paper §5's
// at-least-once + dedup-by-window-end contract).

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/latency_model.h"
#include "src/common/retry.h"
#include "src/fault/fault_injector.h"
#include "src/fault/recovery_manager.h"
#include "src/fault/upstream_buffer.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace {

constexpr StreamTime kEndMs = 2000;
constexpr StreamTime kStepMs = 100;
constexpr StreamTime kFirstWindowMs = 500;
constexpr int kUsers = 30;

const char* kJoinQuery = R"(
    REGISTER QUERY QJoin AS
    SELECT ?X ?Y
    FROM STREAM <S> [RANGE 500ms STEP 100ms]
    WHERE { GRAPH <S> { ?X po ?Y } })";

// Fixed subject -> selective -> in-place execution -> charged (fallible)
// one-sided reads, exercising the retry path.
const char* kPointQuery = R"(
    REGISTER QUERY QPoint AS
    SELECT ?Y
    FROM STREAM <S> [RANGE 500ms STEP 100ms]
    WHERE { GRAPH <S> { user5 po ?Y } })";

class FaultRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("wukongs_fault_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::vector<Triple> BaseTriples(StringServer* s) {
    std::vector<Triple> base;
    for (int i = 0; i < kUsers; ++i) {
      base.push_back({s->InternVertex("user" + std::to_string(i)),
                      s->InternPredicate("fo"),
                      s->InternVertex("user" + std::to_string((i + 1) % kUsers))});
    }
    return base;
  }

  // Tuples of the interval [from, to): a post edge every 5 ms plus a timing
  // (GPS-style) reading every 20 ms.
  StreamTupleVec IntervalTuples(StringServer* s, StreamTime from, StreamTime to) {
    StreamTupleVec tuples;
    for (StreamTime t = from; t < to; t += 5) {
      tuples.push_back(
          StreamTuple{{s->InternVertex("user" + std::to_string((t / 5) % kUsers)),
                       s->InternPredicate("po"),
                       s->InternVertex("post" + std::to_string(t / 5))},
                      t,
                      TupleKind::kTimeless});
      if (t % 20 == 0) {
        tuples.push_back(
            StreamTuple{{s->InternVertex("user" + std::to_string((t / 20) % kUsers)),
                         s->InternPredicate("ga"),
                         s->InternVertex("loc" + std::to_string(t % 7))},
                        t,
                        TupleKind::kTiming});
      }
    }
    return tuples;
  }

  // Fault-free reference: every window's canonical digest per query handle.
  std::map<std::pair<uint64_t, StreamTime>, std::string> GoldenDigests(
      StringServer* strings) {
    ClusterConfig config;
    config.nodes = 3;
    Cluster cluster(config, strings);
    StreamId stream = *cluster.DefineStream("S", {"ga"});
    cluster.LoadBase(BaseTriples(strings));
    auto h1 = cluster.RegisterContinuous(kJoinQuery, /*home=*/2);
    auto h2 = cluster.RegisterContinuous(kPointQuery, /*home=*/2);
    EXPECT_TRUE(h1.ok() && h2.ok());

    std::map<std::pair<uint64_t, StreamTime>, std::string> golden;
    for (StreamTime t = kStepMs; t <= kEndMs; t += kStepMs) {
      EXPECT_TRUE(
          cluster.FeedStream(stream, IntervalTuples(strings, t - kStepMs, t)).ok());
      cluster.AdvanceStreams(t);
      if (t < kFirstWindowMs) {
        continue;
      }
      for (uint64_t h : {*h1, *h2}) {
        EXPECT_TRUE(cluster.WindowReady(h, t));
        auto exec = cluster.ExecuteContinuousAt(h, t);
        EXPECT_TRUE(exec.ok()) << exec.status().ToString();
        EXPECT_FALSE(exec->partial);
        golden[{h, t}] = ResultDigest(exec->result);
      }
    }
    EXPECT_FALSE(golden.empty());
    return golden;
  }

  std::filesystem::path dir_;
};

// Full-cluster crash at batch k: the process dies mid-append (torn log
// tail), a fresh cluster recovers from the clean log prefix + the upstream
// backup's tail + the durable query registry, then the stream resumes.
// Every window — pre-crash, recovered, and post-resume — must be
// byte-identical to the golden run.
TEST_F(FaultRecoveryTest, ClusterRecoveryIsByteIdenticalUnderSeededSchedule) {
  StringServer strings;
  auto golden = GoldenDigests(&strings);

  FaultSchedule schedule;
  schedule.seed = 42;
  schedule.read_failure_rate = 0.01;
  schedule.message_failure_rate = 0.01;
  schedule.crashes = {CrashEvent{/*node=*/2, /*stream=*/0, /*at_seq=*/5,
                                 /*torn_tail_bytes=*/11}};
  FaultInjector injector(schedule);
  UpstreamBuffer upstream;
  ASSERT_TRUE(WriteQueryRegistry(Path("registry.bin"),
                                 {{kJoinQuery, 2}, {kPointQuery, 2}})
                  .ok());

  WindowDedup dedup;
  std::optional<CrashEvent> crash;
  StreamTime crashed_at = 0;
  {
    ClusterConfig config;
    config.nodes = 3;
    config.fault_injector = &injector;
    Cluster live(config, &strings);
    StreamId stream = *live.DefineStream("S", {"ga"});
    live.LoadBase(BaseTriples(&strings));
    auto h1 = live.RegisterContinuous(kJoinQuery, 2);
    auto h2 = live.RegisterContinuous(kPointQuery, 2);
    ASSERT_TRUE(h1.ok() && h2.ok());

    auto log = CheckpointLog::Create(Path("batches.log"));
    ASSERT_TRUE(log.ok());
    live.SetBatchLogger(
        [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });
    live.SetUpstreamBuffer(&upstream);
    // Models the whole process dying at the scheduled point: stop the run
    // and remember the event so the log tail can be torn afterwards.
    live.SetCrashHandler([&](const CrashEvent& e) { crash = e; });

    for (StreamTime t = kStepMs; t <= kEndMs; t += kStepMs) {
      ASSERT_TRUE(
          live.FeedStream(stream, IntervalTuples(&strings, t - kStepMs, t)).ok());
      live.AdvanceStreams(t);
      if (crash.has_value()) {
        crashed_at = t;
        break;
      }
      if (t < kFirstWindowMs) {
        continue;
      }
      for (uint64_t h : {*h1, *h2}) {
        auto exec = live.ExecuteContinuousAt(h, t);
        ASSERT_TRUE(exec.ok()) << exec.status().ToString();
        dedup.Accept(h, t, exec->partial, ResultDigest(exec->result));
      }
    }
    ASSERT_TRUE(crash.has_value());
    EXPECT_EQ(live.fault_stats().crashes, 1u);
    EXPECT_EQ(injector.stats().crashes_fired, 1u);
  }  // "Process" dies: log closed with the last record mid-flight.

  ASSERT_TRUE(
      FaultInjector::TearFileTail(Path("batches.log"), crash->torn_tail_bytes)
          .ok());

  // Recovery into a fresh cluster.
  ClusterConfig config;
  config.nodes = 3;
  Cluster recovered(config, &strings);
  StreamId stream = *recovered.DefineStream("S", {"ga"});
  recovered.LoadBase(BaseTriples(&strings));
  RecoveryManager manager(Path("batches.log"), Path("registry.bin"));
  auto report = manager.RecoverCluster(&recovered, &upstream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->queries_reregistered, 2u);
  // The torn tail dropped the in-flight record; the upstream backup
  // re-supplied at least that batch.
  EXPECT_GE(report->upstream_batches, 1u);
  EXPECT_GT(report->log_batches, 0u);

  // The stream resumes where the crash interrupted it (the interval ending
  // at `crashed_at` was already batched and recovered); every window — old
  // ones re-executed, new ones fresh — feeds the client-side dedup.
  for (StreamTime t = crashed_at + kStepMs; t <= kEndMs; t += kStepMs) {
    ASSERT_TRUE(
        recovered.FeedStream(stream, IntervalTuples(&strings, t - kStepMs, t))
            .ok());
    recovered.AdvanceStreams(t);
  }
  for (StreamTime t = kFirstWindowMs; t <= kEndMs; t += kStepMs) {
    for (uint64_t h : {0u, 1u}) {
      ASSERT_TRUE(recovered.WindowReady(h, t));
      auto exec = recovered.ExecuteContinuousAt(h, t);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_FALSE(exec->partial);
      dedup.Accept(h, t, exec->partial, ResultDigest(exec->result));
    }
  }

  // Byte-identical to the fault-free run, for every (query, window).
  ASSERT_EQ(dedup.size(), golden.size());
  for (const auto& [key, want] : golden) {
    const std::string* got = dedup.Find(key.first, key.second);
    ASSERT_NE(got, nullptr) << "query " << key.first << " window " << key.second;
    EXPECT_EQ(*got, want) << "query " << key.first << " window " << key.second;
    EXPECT_FALSE(dedup.IsPartial(key.first, key.second));
  }
  // Re-executed pre-crash windows were suppressed as duplicates.
  EXPECT_GT(dedup.duplicates_suppressed(), 0u);
}

// In-place node restore: the cluster rides through a crash degraded (partial
// results, reroutes, forced fork-join over survivors), the node is restored
// from log + upstream while the survivors stay live, and re-executed windows
// upgrade the partial results to byte-identical complete ones.
TEST_F(FaultRecoveryTest, NodeRestoreUpgradesDegradedWindows) {
  StringServer strings;
  auto golden = GoldenDigests(&strings);

  FaultSchedule schedule;
  schedule.seed = 7;
  schedule.read_failure_rate = 0.02;
  schedule.message_failure_rate = 0.02;
  schedule.batch_drop_rate = 0.25;
  schedule.batch_duplicate_rate = 0.25;
  schedule.batch_delay_rate = 0.2;
  schedule.crashes = {CrashEvent{/*node=*/2, /*stream=*/0, /*at_seq=*/8,
                                 /*torn_tail_bytes=*/0}};
  FaultInjector injector(schedule);
  UpstreamBuffer upstream;

  ClusterConfig config;
  config.nodes = 3;
  config.fault_injector = &injector;
  Cluster cluster(config, &strings);
  StreamId stream = *cluster.DefineStream("S", {"ga"});
  std::vector<Triple> base = BaseTriples(&strings);
  cluster.LoadBase(base);
  auto h1 = cluster.RegisterContinuous(kJoinQuery, 2);
  auto h2 = cluster.RegisterContinuous(kPointQuery, 2);
  ASSERT_TRUE(h1.ok() && h2.ok());

  auto log = CheckpointLog::Create(Path("batches.log"));
  ASSERT_TRUE(log.ok());
  cluster.SetBatchLogger(
      [&](const StreamBatch& b) { ASSERT_TRUE(log->Append(b).ok()); });
  cluster.SetUpstreamBuffer(&upstream);

  WindowDedup dedup;
  size_t partial_windows = 0;
  for (StreamTime t = kStepMs; t <= kEndMs; t += kStepMs) {
    ASSERT_TRUE(
        cluster.FeedStream(stream, IntervalTuples(&strings, t - kStepMs, t)).ok());
    cluster.AdvanceStreams(t);
    if (t < kFirstWindowMs) {
      continue;
    }
    for (uint64_t h : {*h1, *h2}) {
      ASSERT_TRUE(cluster.WindowReady(h, t))
          << "a crashed node must not stall surviving windows";
      auto exec = cluster.ExecuteContinuousAt(h, t);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      partial_windows += exec->partial ? 1 : 0;
      dedup.Accept(h, t, exec->partial, ResultDigest(exec->result));
    }
  }

  const auto& stats = cluster.fault_stats();
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_FALSE(cluster.NodeUp(2));
  EXPECT_EQ(cluster.UpNodeCount(), 2u);
  EXPECT_GT(partial_windows, 0u);          // Degraded, not crashed.
  EXPECT_GT(stats.degraded_executions, 0u);
  EXPECT_GT(stats.reroutes, 0u);           // Both queries' home was node 2.
  // The seeded schedule exercises every batch fate at these rates.
  EXPECT_GT(stats.batches_redelivered + stats.duplicates_suppressed +
                stats.batches_delayed,
            0u);

  // Restore the crashed node in place from the durable log + upstream tail.
  ASSERT_TRUE(log->Sync().ok());
  RecoveryManager manager(Path("batches.log"));
  auto report = manager.RestoreNode(&cluster, 2, base, &upstream);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->log_batches, 0u);
  EXPECT_TRUE(cluster.NodeUp(2));
  EXPECT_EQ(cluster.UpNodeCount(), 3u);

  // Re-execute every window: complete results upgrade the partial ones.
  for (StreamTime t = kFirstWindowMs; t <= kEndMs; t += kStepMs) {
    for (uint64_t h : {*h1, *h2}) {
      auto exec = cluster.ExecuteContinuousAt(h, t);
      ASSERT_TRUE(exec.ok()) << exec.status().ToString();
      EXPECT_FALSE(exec->partial);
      dedup.Accept(h, t, exec->partial, ResultDigest(exec->result));
    }
  }
  EXPECT_GT(dedup.upgrades(), 0u);

  ASSERT_EQ(dedup.size(), golden.size());
  for (const auto& [key, want] : golden) {
    const std::string* got = dedup.Find(key.first, key.second);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(*got, want) << "query " << key.first << " window " << key.second;
    EXPECT_FALSE(dedup.IsPartial(key.first, key.second));
  }
}

TEST(FaultInjectorTest, SameSeedSameSchedule) {
  FaultSchedule schedule;
  schedule.seed = 99;
  schedule.read_failure_rate = 0.3;
  schedule.batch_drop_rate = 0.2;
  schedule.batch_duplicate_rate = 0.2;
  schedule.batch_delay_rate = 0.2;
  FaultInjector a(schedule);
  FaultInjector b(schedule);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.FailRead(0, 1), b.FailRead(0, 1));
    EXPECT_EQ(a.FateOf(0, static_cast<BatchSeq>(i)),
              b.FateOf(0, static_cast<BatchSeq>(i)));
  }
}

TEST(FaultInjectorTest, CategoriesAreIndependentStreams) {
  // Enabling read failures must not shift the batch-fate sequence.
  FaultSchedule plain;
  plain.seed = 5;
  plain.batch_drop_rate = 0.2;
  plain.batch_duplicate_rate = 0.2;
  FaultSchedule with_reads = plain;
  with_reads.read_failure_rate = 0.5;

  FaultInjector a(plain);
  FaultInjector b(with_reads);
  for (int i = 0; i < 100; ++i) {
    (void)b.FailRead(0, 1);  // Interleave read draws; fates must not move.
    EXPECT_EQ(a.FateOf(0, static_cast<BatchSeq>(i)),
              b.FateOf(0, static_cast<BatchSeq>(i)));
  }
}

TEST(FaultInjectorTest, CrashFiresExactlyOnce) {
  FaultSchedule schedule;
  schedule.crashes = {CrashEvent{1, 0, 3, 16}};
  FaultInjector injector(schedule);
  EXPECT_FALSE(injector.TakeCrash(0, 2).has_value());
  auto c = injector.TakeCrash(0, 3);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->node, 1u);
  EXPECT_EQ(c->torn_tail_bytes, 16u);
  EXPECT_FALSE(injector.TakeCrash(0, 3).has_value());
}

TEST(RetryPolicyTest, BackoffGrowsAndIsCharged) {
  RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff_ns = 1000.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ns = 3000.0;
  EXPECT_DOUBLE_EQ(policy.BackoffNs(1), 1000.0);
  EXPECT_DOUBLE_EQ(policy.BackoffNs(2), 2000.0);
  EXPECT_DOUBLE_EQ(policy.BackoffNs(3), 3000.0);  // Capped.

  // Fails twice, then succeeds: two backoffs land in SimCost.
  int calls = 0;
  RetryStats stats;
  double before = SimCost::TotalNs();
  Status s = RunWithRetry(
      policy,
      [&] {
        ++calls;
        return calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
      },
      &stats);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_DOUBLE_EQ(SimCost::TotalNs() - before, 3000.0);

  // Non-retryable errors surface immediately.
  calls = 0;
  Status hard = RunWithRetry(policy, [&] {
    ++calls;
    return Status::Internal("bug");
  });
  EXPECT_EQ(hard.code(), StatusCode::kInternal);
  EXPECT_EQ(calls, 1);

  // Exhaustion: max_attempts calls, no backoff after the last.
  calls = 0;
  RetryStats exhausted;
  before = SimCost::TotalNs();
  Status gone = RunWithRetry(
      policy, [&] {
        ++calls;
        return Status::Unavailable("down");
      },
      &exhausted);
  EXPECT_EQ(gone.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 4);
  EXPECT_EQ(exhausted.exhausted, 1u);
  EXPECT_DOUBLE_EQ(SimCost::TotalNs() - before, 1000.0 + 2000.0 + 3000.0);
}

TEST(WindowDedupTest, CompleteUpgradesPartialAndSuppressesDuplicates) {
  WindowDedup dedup;
  EXPECT_TRUE(dedup.Accept(0, 100, /*partial=*/true, "half"));
  EXPECT_TRUE(dedup.IsPartial(0, 100));
  EXPECT_FALSE(dedup.Accept(0, 100, /*partial=*/true, "half"));  // Duplicate.
  EXPECT_TRUE(dedup.Accept(0, 100, /*partial=*/false, "full"));  // Upgrade.
  EXPECT_FALSE(dedup.IsPartial(0, 100));
  EXPECT_FALSE(dedup.Accept(0, 100, /*partial=*/false, "full"));
  EXPECT_FALSE(dedup.Accept(0, 100, /*partial=*/true, "late-partial"));
  EXPECT_EQ(*dedup.Find(0, 100), "full");
  EXPECT_EQ(dedup.size(), 1u);
  EXPECT_EQ(dedup.duplicates_suppressed(), 3u);
  EXPECT_EQ(dedup.upgrades(), 1u);
}

TEST(WindowDedupTest, EmptyWindowResultsAreFirstClassEntries) {
  // An empty window result is still a result: its digest must be recorded,
  // deduped, and upgradable exactly like a non-empty one.
  const std::string empty_digest = ResultDigest(QueryResult{});
  WindowDedup dedup;
  EXPECT_TRUE(dedup.Accept(3, 500, /*partial=*/false, empty_digest));
  EXPECT_FALSE(dedup.Accept(3, 500, /*partial=*/false, empty_digest));
  ASSERT_NE(dedup.Find(3, 500), nullptr);
  EXPECT_EQ(*dedup.Find(3, 500), empty_digest);
  // A *partial* empty result on a later window upgrades to a complete
  // non-empty one — emptiness must not be confused with absence.
  EXPECT_TRUE(dedup.Accept(3, 600, /*partial=*/true, empty_digest));
  EXPECT_TRUE(dedup.IsPartial(3, 600));
  EXPECT_TRUE(dedup.Accept(3, 600, /*partial=*/false, "rows"));
  EXPECT_EQ(*dedup.Find(3, 600), "rows");
  EXPECT_EQ(dedup.size(), 2u);
  EXPECT_EQ(dedup.upgrades(), 1u);
}

TEST(WindowDedupTest, RepeatedRecoveriesUpgradeAtMostOncePerWindow) {
  // At-least-once delivery means every recovery replays the window stream.
  // Simulate three recovery cycles, each re-delivering a partial result and
  // then the complete one: the complete result must win exactly once and
  // every replay after that must be suppressed without downgrading.
  WindowDedup dedup;
  EXPECT_TRUE(dedup.Accept(1, 100, /*partial=*/true, "degraded"));
  size_t accepted = 0;
  for (int cycle = 0; cycle < 3; ++cycle) {
    if (dedup.Accept(1, 100, /*partial=*/true, "degraded")) {
      ++accepted;
    }
    if (dedup.Accept(1, 100, /*partial=*/false, "complete")) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 1u);  // The first complete delivery, nothing else.
  EXPECT_EQ(dedup.upgrades(), 1u);
  EXPECT_FALSE(dedup.IsPartial(1, 100));
  EXPECT_EQ(*dedup.Find(1, 100), "complete");
  EXPECT_EQ(dedup.duplicates_suppressed(), 5u);
  // Windows and queries stay independent across the replays.
  EXPECT_TRUE(dedup.Accept(1, 200, /*partial=*/true, "next-window"));
  EXPECT_TRUE(dedup.Accept(2, 100, /*partial=*/false, "other-query"));
  EXPECT_EQ(dedup.size(), 3u);
}

TEST(FaultFabricTest, DownNodeFailsVerbsWithoutWireCharge) {
  Fabric fabric(2, NetworkModel{}, Transport::kRdma);
  EXPECT_TRUE(fabric.TryOneSidedRead(0, 1, 64).ok());
  fabric.SetNodeUp(1, false);
  double before = SimCost::TotalNs();
  Status s = fabric.TryOneSidedRead(0, 1, 64);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_DOUBLE_EQ(SimCost::TotalNs(), before);  // Fails fast, no wire time.
  EXPECT_EQ(fabric.up_count(), 1u);
  EXPECT_TRUE(fabric.AnyNodeDown());
  fabric.SetNodeUp(1, true);
  EXPECT_TRUE(fabric.TryMessage(0, 1, 64).ok());
}

TEST(FaultFabricTest, CannotCrashLastNode) {
  ClusterConfig config;
  config.nodes = 2;
  Cluster cluster(config);
  EXPECT_TRUE(cluster.CrashNode(0).ok());
  Status s = cluster.CrashNode(1);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(cluster.CrashNode(0).code(), StatusCode::kFailedPrecondition);
}

// Restoring a node that was never taken through CrashNode is a caller bug:
// its volatile state was never reset and the coordinator never forgot its
// progress, so the restore invariants are meaningless. It must surface as
// InvalidArgument, not a silent success.
TEST(FaultRestoreGateTest, FinishRestoreRejectsNodesNeverCrashMarked) {
  ClusterConfig config;
  config.nodes = 3;
  Cluster cluster(config);

  EXPECT_EQ(cluster.FinishNodeRestore(99).code(), StatusCode::kNotFound);
  // A live node is not restorable at all.
  EXPECT_EQ(cluster.FinishNodeRestore(0).code(),
            StatusCode::kFailedPrecondition);

  // Down via direct fabric manipulation, bypassing CrashNode: rejected.
  cluster.fabric()->SetNodeUp(1, false);
  EXPECT_EQ(cluster.FinishNodeRestore(1).code(), StatusCode::kInvalidArgument);
  cluster.fabric()->SetNodeUp(1, true);

  // The sanctioned path: CrashNode marks, FinishNodeRestore re-admits
  // (nothing was ever delivered, so there is no VTS lag to close).
  ASSERT_TRUE(cluster.CrashNode(1).ok());
  EXPECT_FALSE(cluster.NodeUp(1));
  ASSERT_TRUE(cluster.FinishNodeRestore(1).ok());
  EXPECT_TRUE(cluster.NodeUp(1));
  // Re-admission consumed the crash mark: a second restore is "already live".
  EXPECT_EQ(cluster.FinishNodeRestore(1).code(),
            StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace wukongs
