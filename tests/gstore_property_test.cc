// Property tests for the snapshot-segmented store: random operation
// sequences (bulk loads, snapshot-tagged injections, collapses, reads at
// arbitrary snapshots) are checked against a trivially-correct reference
// model, across seeds (parameterized).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/common/rng.h"
#include "src/store/gstore.h"

namespace wukongs {
namespace {

// Reference model: per key, an ordered list of (value, effective_sn).
// CollapseBelow(floor) folds entries with sn <= floor into the base (sn 0).
class ModelStore {
 public:
  void Append(Key key, VertexId value, SnapshotNum sn) {
    entries_[key].emplace_back(value, sn);
  }
  void CollapseBelow(SnapshotNum floor) {
    if (floor <= floor_) {
      return;
    }
    floor_ = floor;
    for (auto& [key, list] : entries_) {
      for (auto& [value, sn] : list) {
        if (sn <= floor) {
          sn = 0;
        }
      }
    }
  }
  std::vector<VertexId> Read(Key key, SnapshotNum sn) const {
    std::vector<VertexId> out;
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return out;
    }
    // Visibility is a prefix: entries are appended in non-decreasing sn
    // order, so cut at the first entry above sn.
    for (const auto& [value, esn] : it->second) {
      if (esn > sn) {
        break;
      }
      out.push_back(value);
    }
    return out;
  }

 private:
  std::map<Key, std::vector<std::pair<VertexId, SnapshotNum>>> entries_;
  SnapshotNum floor_ = 0;
};

class GStorePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GStorePropertyTest, RandomOpsMatchModel) {
  Rng rng(GetParam());
  GStore store(0);
  ModelStore model;

  constexpr size_t kVertices = 40;
  constexpr PredicateId kPredicates = 4;
  // Injection order is globally non-decreasing in SN, the invariant the
  // Cluster maintains by injecting batches in sequence order.
  std::set<uint64_t> touched;
  SnapshotNum global_sn = 1;
  SnapshotNum global_floor = 0;
  SnapshotNum max_sn = 1;

  auto random_key = [&] {
    return Key(rng.Uniform(1, kVertices), 1 + static_cast<PredicateId>(rng.Uniform(
                                                  0, kPredicates - 1)),
               rng.Bernoulli(0.5) ? Dir::kOut : Dir::kIn);
  };

  for (int op = 0; op < 3000; ++op) {
    double dice = rng.UniformReal(0, 1);
    if (dice < 0.55) {
      // Inject under a snapshot >= the global last snapshot and > floor.
      Key key = random_key();
      SnapshotNum lo = std::max({global_sn, global_floor + 1, SnapshotNum{1}});
      SnapshotNum sn = lo + rng.Uniform(0, 1);
      global_sn = sn;
      max_sn = std::max(max_sn, sn);
      touched.insert(key.packed());
      VertexId value = rng.Uniform(1, 1000000);
      store.InjectEdge(key, value, sn, nullptr);
      model.Append(key, value, sn);
      // Mirror the automatic index-vertex append on key creation: the model
      // sees it through reads of the index key, so replicate the rule.
      // (GStore appends key.vid() to [0|pid|dir] on first creation.)
      // We detect creation via the model: list size 1 after append.
      if (model.Read(key, ~SnapshotNum{0}).size() == 1) {
        model.Append(Key(kIndexVertex, key.pid(), key.dir()), key.vid(), sn);
      }
    } else if (dice < 0.6) {
      // Collapse: advance the floor a little.
      SnapshotNum floor = global_floor + rng.Uniform(0, 2);
      floor = std::min(floor, max_sn);
      global_floor = std::max(global_floor, floor);
      store.CollapseBelow(floor);
      model.CollapseBelow(floor);
    } else {
      // Read at a random snapshot at or above the floor (the contract: the
      // Coordinator never hands out snapshots below the collapse floor).
      Key key = rng.Bernoulli(0.2)
                    ? Key(kIndexVertex,
                          1 + static_cast<PredicateId>(rng.Uniform(0, kPredicates - 1)),
                          rng.Bernoulli(0.5) ? Dir::kOut : Dir::kIn)
                    : random_key();
      SnapshotNum sn = global_floor + rng.Uniform(0, max_sn - global_floor + 1);
      ASSERT_EQ(store.GetEdges(key, sn), model.Read(key, sn))
          << "op " << op << " key " << key.DebugString() << " sn " << sn;
    }
  }

  // Final sweep: every touched key matches at the newest snapshot.
  for (uint64_t packed : touched) {
    Key key = Key::FromPacked(packed);
    EXPECT_EQ(store.GetEdges(key, max_sn), model.Read(key, max_sn));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GStorePropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace wukongs
