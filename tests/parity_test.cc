// Cross-engine parity properties: on identical LSBench data, the integrated
// engine, CSPARQL-engine, Storm+Wukong (both plans) and Spark Streaming must
// produce identical result bags for every continuous query class, at several
// window ends. This is the strongest correctness check in the suite — the
// baselines execute through completely different machinery (relational scans
// and hash joins vs graph exploration).

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "src/baselines/csparql_engine.h"
#include "src/baselines/spark_like.h"
#include "src/baselines/storm_wukong.h"
#include "src/sparql/parser.h"
#include "src/workloads/lsbench.h"

namespace wukongs {
namespace {

using RowBag = std::multiset<std::vector<uint64_t>>;

RowBag ToBag(const QueryResult& r) {
  RowBag bag;
  for (const auto& row : r.rows) {
    std::vector<uint64_t> ids;
    for (const ResultValue& v : row) {
      // Aggregates compare by value; plain bindings by vertex id.
      ids.push_back(v.is_number ? static_cast<uint64_t>(v.number * 1000) : v.vid);
    }
    bag.insert(std::move(ids));
  }
  return bag;
}

class ParityTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    strings_ = new StringServer();
    ClusterConfig cc;
    cc.nodes = 3;
    cluster_ = new Cluster(cc, strings_);
    LsBenchConfig config;
    config.users = 500;
    config.avg_follows = 6;
    config.rate_scale = 1.0;
    bench_ = new LsBench(cluster_, config);
    captured_ = new std::map<std::string, StreamTupleVec>();
    bench_->SetTee([](const std::string& name, const StreamTupleVec& tuples) {
      auto& log = (*captured_)[name];
      log.insert(log.end(), tuples.begin(), tuples.end());
    });
    ASSERT_TRUE(bench_->Setup().ok());
    ASSERT_TRUE(bench_->FeedInterval(0, 3000).ok());

    static_store_ = new Cluster(cc, strings_);
    static_store_->LoadBase(bench_->initial_graph());
  }

  static void TearDownTestSuite() {
    delete static_store_;
    delete captured_;
    delete bench_;
    delete cluster_;
    delete strings_;
    static_store_ = nullptr;
    captured_ = nullptr;
    bench_ = nullptr;
    cluster_ = nullptr;
    strings_ = nullptr;
  }

  template <typename Engine>
  void FillStreams(Engine* engine) {
    for (const char* name :
         {"PO_Stream", "POL_Stream", "PH_Stream", "PHL_Stream", "GPS_Stream"}) {
      auto id = engine->streams()->Define(name);
      ASSERT_TRUE(id.ok());
      auto it = captured_->find(name);
      if (it != captured_->end()) {
        ASSERT_TRUE(engine->streams()->Feed(*id, it->second).ok());
      }
    }
  }

  static StringServer* strings_;
  static Cluster* cluster_;
  static Cluster* static_store_;
  static LsBench* bench_;
  static std::map<std::string, StreamTupleVec>* captured_;
};

StringServer* ParityTest::strings_ = nullptr;
Cluster* ParityTest::cluster_ = nullptr;
Cluster* ParityTest::static_store_ = nullptr;
LsBench* ParityTest::bench_ = nullptr;
std::map<std::string, StreamTupleVec>* ParityTest::captured_ = nullptr;

TEST_P(ParityTest, AllEnginesAgree) {
  const int number = GetParam();
  Query q = *ParseQuery(bench_->ContinuousQueryText(number), strings_);
  // GPS is timing data visible only to the integrated hybrid store; the L
  // queries never touch it, so baselines see equivalent data.

  CsparqlEngine csparql(strings_);
  csparql.LoadStored(bench_->initial_graph());
  FillStreams(&csparql);

  StormWukong storm_a(static_store_);
  FillStreams(&storm_a);
  StormWukongConfig plan_b;
  plan_b.plan = CompositePlan::kStreamJoinFirst;
  StormWukong storm_b(static_store_, plan_b);
  FillStreams(&storm_b);

  SparkEngine spark(strings_);
  spark.LoadStored(bench_->initial_graph());
  FillStreams(&spark);

  auto handle = cluster_->RegisterContinuousParsed(q);
  ASSERT_TRUE(handle.ok());

  for (StreamTime end : {1500u, 2000u, 2700u}) {
    auto reference = cluster_->ExecuteContinuousAt(*handle, end);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    RowBag expected = ToBag(reference->result);

    auto cs = csparql.ExecuteContinuous(q, end);
    ASSERT_TRUE(cs.ok()) << cs.status().ToString();
    EXPECT_EQ(ToBag(cs->result), expected) << "CSPARQL-engine, end=" << end;

    auto sa = storm_a.ExecuteContinuous(q, end);
    ASSERT_TRUE(sa.ok()) << sa.status().ToString();
    EXPECT_EQ(ToBag(sa->result), expected) << "Storm+Wukong(a), end=" << end;

    auto sb = storm_b.ExecuteContinuous(q, end);
    ASSERT_TRUE(sb.ok()) << sb.status().ToString();
    EXPECT_EQ(ToBag(sb->result), expected) << "Storm+Wukong(b), end=" << end;

    auto sp = spark.ExecuteContinuous(q, end);
    ASSERT_TRUE(sp.ok()) << sp.status().ToString();
    EXPECT_EQ(ToBag(sp->result), expected) << "Spark, end=" << end;
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueryClasses, ParityTest, ::testing::Range(1, 7),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "L" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace wukongs
