# Empty compiler generated dependencies file for wukongs_tests.
# This may be replaced when dependencies are built.
