
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/wukongs_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/checkpoint_test.cc" "tests/CMakeFiles/wukongs_tests.dir/checkpoint_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/checkpoint_test.cc.o.d"
  "/root/repo/tests/cluster_test.cc" "tests/CMakeFiles/wukongs_tests.dir/cluster_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/cluster_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/wukongs_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/concurrency_test.cc" "tests/CMakeFiles/wukongs_tests.dir/concurrency_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/concurrency_test.cc.o.d"
  "/root/repo/tests/engine_infra_test.cc" "tests/CMakeFiles/wukongs_tests.dir/engine_infra_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/engine_infra_test.cc.o.d"
  "/root/repo/tests/executor_test.cc" "tests/CMakeFiles/wukongs_tests.dir/executor_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/executor_test.cc.o.d"
  "/root/repo/tests/features_test.cc" "tests/CMakeFiles/wukongs_tests.dir/features_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/features_test.cc.o.d"
  "/root/repo/tests/gstore_property_test.cc" "tests/CMakeFiles/wukongs_tests.dir/gstore_property_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/gstore_property_test.cc.o.d"
  "/root/repo/tests/gstore_test.cc" "tests/CMakeFiles/wukongs_tests.dir/gstore_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/gstore_test.cc.o.d"
  "/root/repo/tests/optional_union_test.cc" "tests/CMakeFiles/wukongs_tests.dir/optional_union_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/optional_union_test.cc.o.d"
  "/root/repo/tests/parity_test.cc" "tests/CMakeFiles/wukongs_tests.dir/parity_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/parity_test.cc.o.d"
  "/root/repo/tests/parser_fuzz_test.cc" "tests/CMakeFiles/wukongs_tests.dir/parser_fuzz_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/parser_fuzz_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/wukongs_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/rdf_test.cc" "tests/CMakeFiles/wukongs_tests.dir/rdf_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/rdf_test.cc.o.d"
  "/root/repo/tests/serialization_test.cc" "tests/CMakeFiles/wukongs_tests.dir/serialization_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/serialization_test.cc.o.d"
  "/root/repo/tests/soak_test.cc" "tests/CMakeFiles/wukongs_tests.dir/soak_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/soak_test.cc.o.d"
  "/root/repo/tests/stream_test.cc" "tests/CMakeFiles/wukongs_tests.dir/stream_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/stream_test.cc.o.d"
  "/root/repo/tests/window_property_test.cc" "tests/CMakeFiles/wukongs_tests.dir/window_property_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/window_property_test.cc.o.d"
  "/root/repo/tests/workloads_test.cc" "tests/CMakeFiles/wukongs_tests.dir/workloads_test.cc.o" "gcc" "tests/CMakeFiles/wukongs_tests.dir/workloads_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wukongs.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wukongs_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/wukongs_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
