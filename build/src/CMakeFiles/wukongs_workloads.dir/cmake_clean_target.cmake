file(REMOVE_RECURSE
  "libwukongs_workloads.a"
)
