file(REMOVE_RECURSE
  "CMakeFiles/wukongs_workloads.dir/workloads/citybench.cc.o"
  "CMakeFiles/wukongs_workloads.dir/workloads/citybench.cc.o.d"
  "CMakeFiles/wukongs_workloads.dir/workloads/lsbench.cc.o"
  "CMakeFiles/wukongs_workloads.dir/workloads/lsbench.cc.o.d"
  "libwukongs_workloads.a"
  "libwukongs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wukongs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
