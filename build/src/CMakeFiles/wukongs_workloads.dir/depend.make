# Empty dependencies file for wukongs_workloads.
# This may be replaced when dependencies are built.
