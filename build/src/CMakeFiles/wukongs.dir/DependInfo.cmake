
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/client.cc" "src/CMakeFiles/wukongs.dir/cluster/client.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/cluster/client.cc.o.d"
  "/root/repo/src/cluster/cluster.cc" "src/CMakeFiles/wukongs.dir/cluster/cluster.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/cluster/cluster.cc.o.d"
  "/root/repo/src/cluster/maintenance_daemon.cc" "src/CMakeFiles/wukongs.dir/cluster/maintenance_daemon.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/cluster/maintenance_daemon.cc.o.d"
  "/root/repo/src/cluster/sources.cc" "src/CMakeFiles/wukongs.dir/cluster/sources.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/cluster/sources.cc.o.d"
  "/root/repo/src/cluster/worker_pool.cc" "src/CMakeFiles/wukongs.dir/cluster/worker_pool.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/cluster/worker_pool.cc.o.d"
  "/root/repo/src/common/histogram.cc" "src/CMakeFiles/wukongs.dir/common/histogram.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/common/histogram.cc.o.d"
  "/root/repo/src/common/ids.cc" "src/CMakeFiles/wukongs.dir/common/ids.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/common/ids.cc.o.d"
  "/root/repo/src/common/latency_model.cc" "src/CMakeFiles/wukongs.dir/common/latency_model.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/common/latency_model.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/wukongs.dir/common/status.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/common/status.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/CMakeFiles/wukongs.dir/common/table_printer.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/common/table_printer.cc.o.d"
  "/root/repo/src/engine/binding.cc" "src/CMakeFiles/wukongs.dir/engine/binding.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/engine/binding.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/CMakeFiles/wukongs.dir/engine/executor.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/engine/executor.cc.o.d"
  "/root/repo/src/rdf/dataset.cc" "src/CMakeFiles/wukongs.dir/rdf/dataset.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/rdf/dataset.cc.o.d"
  "/root/repo/src/rdf/string_server.cc" "src/CMakeFiles/wukongs.dir/rdf/string_server.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/rdf/string_server.cc.o.d"
  "/root/repo/src/rdma/fabric.cc" "src/CMakeFiles/wukongs.dir/rdma/fabric.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/rdma/fabric.cc.o.d"
  "/root/repo/src/sparql/parser.cc" "src/CMakeFiles/wukongs.dir/sparql/parser.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/sparql/parser.cc.o.d"
  "/root/repo/src/sparql/results_json.cc" "src/CMakeFiles/wukongs.dir/sparql/results_json.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/sparql/results_json.cc.o.d"
  "/root/repo/src/store/gstore.cc" "src/CMakeFiles/wukongs.dir/store/gstore.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/store/gstore.cc.o.d"
  "/root/repo/src/store/planner.cc" "src/CMakeFiles/wukongs.dir/store/planner.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/store/planner.cc.o.d"
  "/root/repo/src/stream/adaptor.cc" "src/CMakeFiles/wukongs.dir/stream/adaptor.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/stream/adaptor.cc.o.d"
  "/root/repo/src/stream/checkpoint.cc" "src/CMakeFiles/wukongs.dir/stream/checkpoint.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/stream/checkpoint.cc.o.d"
  "/root/repo/src/stream/coordinator.cc" "src/CMakeFiles/wukongs.dir/stream/coordinator.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/stream/coordinator.cc.o.d"
  "/root/repo/src/stream/stream_index.cc" "src/CMakeFiles/wukongs.dir/stream/stream_index.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/stream/stream_index.cc.o.d"
  "/root/repo/src/stream/transient_store.cc" "src/CMakeFiles/wukongs.dir/stream/transient_store.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/stream/transient_store.cc.o.d"
  "/root/repo/src/stream/vts.cc" "src/CMakeFiles/wukongs.dir/stream/vts.cc.o" "gcc" "src/CMakeFiles/wukongs.dir/stream/vts.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
