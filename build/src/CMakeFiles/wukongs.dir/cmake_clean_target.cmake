file(REMOVE_RECURSE
  "libwukongs.a"
)
