# Empty compiler generated dependencies file for wukongs.
# This may be replaced when dependencies are built.
