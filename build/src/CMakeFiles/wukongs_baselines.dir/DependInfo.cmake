
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baseline_streams.cc" "src/CMakeFiles/wukongs_baselines.dir/baselines/baseline_streams.cc.o" "gcc" "src/CMakeFiles/wukongs_baselines.dir/baselines/baseline_streams.cc.o.d"
  "/root/repo/src/baselines/csparql_engine.cc" "src/CMakeFiles/wukongs_baselines.dir/baselines/csparql_engine.cc.o" "gcc" "src/CMakeFiles/wukongs_baselines.dir/baselines/csparql_engine.cc.o.d"
  "/root/repo/src/baselines/relational.cc" "src/CMakeFiles/wukongs_baselines.dir/baselines/relational.cc.o" "gcc" "src/CMakeFiles/wukongs_baselines.dir/baselines/relational.cc.o.d"
  "/root/repo/src/baselines/spark_like.cc" "src/CMakeFiles/wukongs_baselines.dir/baselines/spark_like.cc.o" "gcc" "src/CMakeFiles/wukongs_baselines.dir/baselines/spark_like.cc.o.d"
  "/root/repo/src/baselines/storm_wukong.cc" "src/CMakeFiles/wukongs_baselines.dir/baselines/storm_wukong.cc.o" "gcc" "src/CMakeFiles/wukongs_baselines.dir/baselines/storm_wukong.cc.o.d"
  "/root/repo/src/baselines/wukong_ext.cc" "src/CMakeFiles/wukongs_baselines.dir/baselines/wukong_ext.cc.o" "gcc" "src/CMakeFiles/wukongs_baselines.dir/baselines/wukong_ext.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/wukongs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
