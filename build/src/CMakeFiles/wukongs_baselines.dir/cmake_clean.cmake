file(REMOVE_RECURSE
  "CMakeFiles/wukongs_baselines.dir/baselines/baseline_streams.cc.o"
  "CMakeFiles/wukongs_baselines.dir/baselines/baseline_streams.cc.o.d"
  "CMakeFiles/wukongs_baselines.dir/baselines/csparql_engine.cc.o"
  "CMakeFiles/wukongs_baselines.dir/baselines/csparql_engine.cc.o.d"
  "CMakeFiles/wukongs_baselines.dir/baselines/relational.cc.o"
  "CMakeFiles/wukongs_baselines.dir/baselines/relational.cc.o.d"
  "CMakeFiles/wukongs_baselines.dir/baselines/spark_like.cc.o"
  "CMakeFiles/wukongs_baselines.dir/baselines/spark_like.cc.o.d"
  "CMakeFiles/wukongs_baselines.dir/baselines/storm_wukong.cc.o"
  "CMakeFiles/wukongs_baselines.dir/baselines/storm_wukong.cc.o.d"
  "CMakeFiles/wukongs_baselines.dir/baselines/wukong_ext.cc.o"
  "CMakeFiles/wukongs_baselines.dir/baselines/wukong_ext.cc.o.d"
  "libwukongs_baselines.a"
  "libwukongs_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wukongs_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
