# Empty dependencies file for wukongs_baselines.
# This may be replaced when dependencies are built.
