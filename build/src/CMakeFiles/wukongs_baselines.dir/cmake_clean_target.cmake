file(REMOVE_RECURSE
  "libwukongs_baselines.a"
)
