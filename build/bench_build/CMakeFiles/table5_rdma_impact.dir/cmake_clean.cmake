file(REMOVE_RECURSE
  "../bench/table5_rdma_impact"
  "../bench/table5_rdma_impact.pdb"
  "CMakeFiles/table5_rdma_impact.dir/table5_rdma_impact.cc.o"
  "CMakeFiles/table5_rdma_impact.dir/table5_rdma_impact.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_rdma_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
