# Empty dependencies file for table5_rdma_impact.
# This may be replaced when dependencies are built.
