file(REMOVE_RECURSE
  "../bench/table2_latency_single"
  "../bench/table2_latency_single.pdb"
  "CMakeFiles/table2_latency_single.dir/table2_latency_single.cc.o"
  "CMakeFiles/table2_latency_single.dir/table2_latency_single.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_latency_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
