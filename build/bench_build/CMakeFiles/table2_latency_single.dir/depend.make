# Empty dependencies file for table2_latency_single.
# This may be replaced when dependencies are built.
