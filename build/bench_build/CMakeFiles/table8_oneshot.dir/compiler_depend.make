# Empty compiler generated dependencies file for table8_oneshot.
# This may be replaced when dependencies are built.
