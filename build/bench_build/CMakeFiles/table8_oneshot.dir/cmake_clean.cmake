file(REMOVE_RECURSE
  "../bench/table8_oneshot"
  "../bench/table8_oneshot.pdb"
  "CMakeFiles/table8_oneshot.dir/table8_oneshot.cc.o"
  "CMakeFiles/table8_oneshot.dir/table8_oneshot.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table8_oneshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
