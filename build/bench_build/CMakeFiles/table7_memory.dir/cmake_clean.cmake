file(REMOVE_RECURSE
  "../bench/table7_memory"
  "../bench/table7_memory.pdb"
  "CMakeFiles/table7_memory.dir/table7_memory.cc.o"
  "CMakeFiles/table7_memory.dir/table7_memory.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
