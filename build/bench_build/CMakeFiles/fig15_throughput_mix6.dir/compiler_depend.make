# Empty compiler generated dependencies file for fig15_throughput_mix6.
# This may be replaced when dependencies are built.
