file(REMOVE_RECURSE
  "../bench/fig15_throughput_mix6"
  "../bench/fig15_throughput_mix6.pdb"
  "CMakeFiles/fig15_throughput_mix6.dir/fig15_throughput_mix6.cc.o"
  "CMakeFiles/fig15_throughput_mix6.dir/fig15_throughput_mix6.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_throughput_mix6.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
