file(REMOVE_RECURSE
  "../bench/table9_citybench"
  "../bench/table9_citybench.pdb"
  "CMakeFiles/table9_citybench.dir/table9_citybench.cc.o"
  "CMakeFiles/table9_citybench.dir/table9_citybench.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table9_citybench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
