# Empty compiler generated dependencies file for table9_citybench.
# This may be replaced when dependencies are built.
