# Empty dependencies file for table3_latency_dist.
# This may be replaced when dependencies are built.
