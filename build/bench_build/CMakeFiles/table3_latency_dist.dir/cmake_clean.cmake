file(REMOVE_RECURSE
  "../bench/table3_latency_dist"
  "../bench/table3_latency_dist.pdb"
  "CMakeFiles/table3_latency_dist.dir/table3_latency_dist.cc.o"
  "CMakeFiles/table3_latency_dist.dir/table3_latency_dist.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_latency_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
