file(REMOVE_RECURSE
  "../bench/table4_more_baselines"
  "../bench/table4_more_baselines.pdb"
  "CMakeFiles/table4_more_baselines.dir/table4_more_baselines.cc.o"
  "CMakeFiles/table4_more_baselines.dir/table4_more_baselines.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_more_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
