# Empty dependencies file for table4_more_baselines.
# This may be replaced when dependencies are built.
