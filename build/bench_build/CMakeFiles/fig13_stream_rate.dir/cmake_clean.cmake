file(REMOVE_RECURSE
  "../bench/fig13_stream_rate"
  "../bench/fig13_stream_rate.pdb"
  "CMakeFiles/fig13_stream_rate.dir/fig13_stream_rate.cc.o"
  "CMakeFiles/fig13_stream_rate.dir/fig13_stream_rate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_stream_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
