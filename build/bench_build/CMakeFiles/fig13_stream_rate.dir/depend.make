# Empty dependencies file for fig13_stream_rate.
# This may be replaced when dependencies are built.
