# Empty dependencies file for micro_store_ops.
# This may be replaced when dependencies are built.
