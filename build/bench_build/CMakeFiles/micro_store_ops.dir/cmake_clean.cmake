file(REMOVE_RECURSE
  "../bench/micro_store_ops"
  "../bench/micro_store_ops.pdb"
  "CMakeFiles/micro_store_ops.dir/micro_store_ops.cc.o"
  "CMakeFiles/micro_store_ops.dir/micro_store_ops.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_store_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
