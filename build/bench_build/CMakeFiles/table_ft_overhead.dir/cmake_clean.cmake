file(REMOVE_RECURSE
  "../bench/table_ft_overhead"
  "../bench/table_ft_overhead.pdb"
  "CMakeFiles/table_ft_overhead.dir/table_ft_overhead.cc.o"
  "CMakeFiles/table_ft_overhead.dir/table_ft_overhead.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_ft_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
