# Empty dependencies file for table_ft_overhead.
# This may be replaced when dependencies are built.
