file(REMOVE_RECURSE
  "../bench/fig04_composite_breakdown"
  "../bench/fig04_composite_breakdown.pdb"
  "CMakeFiles/fig04_composite_breakdown.dir/fig04_composite_breakdown.cc.o"
  "CMakeFiles/fig04_composite_breakdown.dir/fig04_composite_breakdown.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_composite_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
