# Empty dependencies file for fig04_composite_breakdown.
# This may be replaced when dependencies are built.
