# Empty compiler generated dependencies file for table6_injection.
# This may be replaced when dependencies are built.
