file(REMOVE_RECURSE
  "../bench/table6_injection"
  "../bench/table6_injection.pdb"
  "CMakeFiles/table6_injection.dir/table6_injection.cc.o"
  "CMakeFiles/table6_injection.dir/table6_injection.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
