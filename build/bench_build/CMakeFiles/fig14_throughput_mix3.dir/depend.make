# Empty dependencies file for fig14_throughput_mix3.
# This may be replaced when dependencies are built.
