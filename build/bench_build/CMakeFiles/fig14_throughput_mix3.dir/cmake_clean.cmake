file(REMOVE_RECURSE
  "../bench/fig14_throughput_mix3"
  "../bench/fig14_throughput_mix3.pdb"
  "CMakeFiles/fig14_throughput_mix3.dir/fig14_throughput_mix3.cc.o"
  "CMakeFiles/fig14_throughput_mix3.dir/fig14_throughput_mix3.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_throughput_mix3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
