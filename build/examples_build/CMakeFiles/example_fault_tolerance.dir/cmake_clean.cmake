file(REMOVE_RECURSE
  "../examples/example_fault_tolerance"
  "../examples/example_fault_tolerance.pdb"
  "CMakeFiles/example_fault_tolerance.dir/fault_tolerance.cpp.o"
  "CMakeFiles/example_fault_tolerance.dir/fault_tolerance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_fault_tolerance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
