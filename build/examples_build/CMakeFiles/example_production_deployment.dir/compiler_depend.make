# Empty compiler generated dependencies file for example_production_deployment.
# This may be replaced when dependencies are built.
