file(REMOVE_RECURSE
  "../examples/example_production_deployment"
  "../examples/example_production_deployment.pdb"
  "CMakeFiles/example_production_deployment.dir/production_deployment.cpp.o"
  "CMakeFiles/example_production_deployment.dir/production_deployment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_production_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
