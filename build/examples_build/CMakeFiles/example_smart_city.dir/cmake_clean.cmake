file(REMOVE_RECURSE
  "../examples/example_smart_city"
  "../examples/example_smart_city.pdb"
  "CMakeFiles/example_smart_city.dir/smart_city.cpp.o"
  "CMakeFiles/example_smart_city.dir/smart_city.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_smart_city.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
