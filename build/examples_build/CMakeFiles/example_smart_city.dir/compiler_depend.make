# Empty compiler generated dependencies file for example_smart_city.
# This may be replaced when dependencies are built.
