# Empty compiler generated dependencies file for example_social_networking.
# This may be replaced when dependencies are built.
