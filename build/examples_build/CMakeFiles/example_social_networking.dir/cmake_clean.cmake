file(REMOVE_RECURSE
  "../examples/example_social_networking"
  "../examples/example_social_networking.pdb"
  "CMakeFiles/example_social_networking.dir/social_networking.cpp.o"
  "CMakeFiles/example_social_networking.dir/social_networking.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_social_networking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
