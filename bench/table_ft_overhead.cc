// §6.8: fault-tolerance overhead — logging/checkpointing enabled vs disabled
// on the L1-L3 mixed workload.
//
// Paper shape: per-batch logging delay ~0.3ms; throughput drops ~11% (1.07M
// -> 803K q/s); 99th percentile latency grows (0.15 -> 0.73ms) while the
// 90th percentile is largely unchanged.

#include <cstdio>
#include <filesystem>

#include "bench/throughput_common.h"
#include "src/fault/fault_injector.h"
#include "src/fault/recovery_manager.h"
#include "src/fault/upstream_buffer.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace bench {
namespace {

struct FtRun {
  double throughput = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double log_ms_per_batch = 0.0;
  uint64_t read_retries = 0;    // Fabric-read retries across the mix.
  uint64_t partial_windows = 0; // Executions answered from survivors only.
};

FtRun Measure(bool enable_logging, const std::string& log_path) {
  LsBenchConfig config;
  config.users = 4000;
  StringServer strings;
  ClusterConfig cluster_config;
  cluster_config.nodes = 8;
  Cluster cluster(cluster_config, &strings);
  LsBench bench(&cluster, config);

  std::unique_ptr<CheckpointLog> log;
  double log_ms = 0.0;
  size_t logged = 0;
  if (enable_logging) {
    auto created = CheckpointLog::Create(log_path);
    if (!created.ok()) {
      std::cerr << created.status().ToString() << "\n";
      std::abort();
    }
    log = std::make_unique<CheckpointLog>(std::move(*created));
    cluster.SetBatchLogger([&](const StreamBatch& b) {
      Stopwatch sw;
      Status s = log->Append(b);
      if (!s.ok()) {
        std::cerr << s.ToString() << "\n";
        std::abort();
      }
      log_ms += sw.ElapsedMs();
      ++logged;
    });
  }

  if (!bench.Setup().ok() || !bench.FeedInterval(0, 4000).ok()) {
    std::cerr << "setup/feed failed\n";
    std::abort();
  }

  Rng rng(3);
  Histogram latency;
  double occupancy_sum = 0.0;
  size_t samples = 0;
  // Interference: a query overlapping a batch's injection (and, with FT on,
  // its durable log write) is delayed by it. Five streams inject per 100ms
  // interval; the log write gates the batch's visibility.
  double inject_tail = 0.0;
  for (StreamId s = 0; s < 5; ++s) {
    auto profile = cluster.injection_profile(s);
    if (profile.batches > 0) {
      inject_tail +=
          (profile.inject_ms + profile.index_ms) / static_cast<double>(profile.batches);
    }
  }
  // The measured append hits the page cache; a durable log (the paper's
  // measured ~0.3ms/batch on its disks) pays the device sync too. Model an
  // NVMe-class sync so the run is not at the mercy of tmpfs caching.
  constexpr double kDurableSyncMs = 0.1;
  double log_tail =
      logged > 0
          ? (log_ms / static_cast<double>(logged) + kDurableSyncMs) * 5.0
          : 0.0;
  inject_tail += log_tail;
  double tail_p = std::min(1.0, inject_tail / 100.0);
  constexpr double kDispatchMs = 0.05;  // Same dispatch model as Figs. 14-15.

  for (int cls : {1, 2, 3}) {
    for (int v = 0; v < 6; ++v) {
      Query q = MustParse(bench.ContinuousQueryText(cls, &rng), &strings);
      auto handle = cluster.RegisterContinuousParsed(
          q, static_cast<NodeId>(rng.Uniform(0, 7)));
      for (int i = 0; i < 10; ++i) {
        auto exec =
            cluster.ExecuteContinuousAt(*handle, 2000 + static_cast<StreamTime>(i) * 100);
        if (!exec.ok()) {
          std::cerr << exec.status().ToString() << "\n";
          std::abort();
        }
        double lat = exec->latency_ms() + kDispatchMs;
        // Throughput accounting uses the expected interference (every query
        // has probability tail_p of overlapping a batch injection+log);
        // the latency CDF uses sampled hits so the tail is visible.
        occupancy_sum += lat + tail_p * inject_tail;
        if (rng.Bernoulli(tail_p)) {
          lat += inject_tail;
        }
        latency.Add(lat);
        ++samples;
      }
    }
  }

  FtRun out;
  out.throughput = (8.0 * 16.0) / (occupancy_sum / samples / 1000.0);
  out.p50 = latency.Median();
  out.p90 = latency.Percentile(90);
  out.p99 = latency.Percentile(99);
  out.log_ms_per_batch = logged > 0 ? log_ms / static_cast<double>(logged) : 0.0;
  return out;
}

// The price of actually *using* the fault tolerance: the same workload with a
// lossy fabric (1% failed reads/messages, retried with backoff), one node
// crashed mid-run (queries degrade to fork-join over the 7 survivors and are
// flagged partial), then restored in place from the checkpoint log + upstream
// tail. Reports degraded-mode latency, the recovery bill, and post-recovery
// latency back at the healthy baseline.
struct FaultedRun {
  FtRun degraded;
  FtRun recovered;
  RecoveryReport recovery;
  uint64_t reroutes = 0;
  uint64_t failed_reads = 0;
};

FtRun MeasureMix(Cluster* cluster, LsBench* bench, StringServer* strings,
                 uint64_t rng_seed) {
  FtRun out;
  Rng rng(rng_seed);
  Histogram latency;
  double occupancy_sum = 0.0;
  size_t samples = 0;
  constexpr double kDispatchMs = 0.05;
  for (int cls : {1, 2, 3}) {
    for (int v = 0; v < 6; ++v) {
      Query q = MustParse(bench->ContinuousQueryText(cls, &rng), strings);
      auto handle = cluster->RegisterContinuousParsed(
          q, static_cast<NodeId>(rng.Uniform(0, 7)));
      for (int i = 0; i < 10; ++i) {
        auto exec = cluster->ExecuteContinuousAt(
            *handle, 2000 + static_cast<StreamTime>(i) * 100);
        if (!exec.ok()) {
          std::cerr << exec.status().ToString() << "\n";
          std::abort();
        }
        double lat = exec->latency_ms() + kDispatchMs;
        occupancy_sum += lat;
        latency.Add(lat);
        out.read_retries += exec->fault_retries;
        out.partial_windows += exec->partial ? 1 : 0;
        ++samples;
      }
    }
  }
  out.throughput = (8.0 * 16.0) / (occupancy_sum / samples / 1000.0);
  out.p50 = latency.Median();
  out.p90 = latency.Percentile(90);
  out.p99 = latency.Percentile(99);
  return out;
}

FaultedRun MeasureFaulted(const std::string& log_path) {
  FaultSchedule schedule;
  schedule.seed = 68;  // §6.8.
  schedule.read_failure_rate = 0.01;
  schedule.message_failure_rate = 0.01;
  FaultInjector injector(schedule);
  UpstreamBuffer upstream;

  LsBenchConfig config;
  config.users = 4000;
  StringServer strings;
  ClusterConfig cluster_config;
  cluster_config.nodes = 8;
  cluster_config.fault_injector = &injector;
  Cluster cluster(cluster_config, &strings);
  LsBench bench(&cluster, config);

  auto created = CheckpointLog::Create(log_path);
  if (!created.ok()) {
    std::cerr << created.status().ToString() << "\n";
    std::abort();
  }
  auto log = std::make_unique<CheckpointLog>(std::move(*created));
  cluster.SetBatchLogger([&](const StreamBatch& b) {
    Status s = log->Append(b);
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      std::abort();
    }
  });
  cluster.SetUpstreamBuffer(&upstream);

  if (!bench.Setup().ok() || !bench.FeedInterval(0, 4000).ok()) {
    std::cerr << "setup/feed failed\n";
    std::abort();
  }

  FaultedRun out;
  constexpr NodeId kVictim = 5;
  if (Status s = cluster.CrashNode(kVictim); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::abort();
  }
  out.degraded = MeasureMix(&cluster, &bench, &strings, 3);
  out.reroutes = cluster.fault_stats().reroutes;

  if (Status s = log->Sync(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::abort();
  }
  RecoveryManager manager(log_path);
  auto report =
      manager.RestoreNode(&cluster, kVictim, bench.initial_graph(), &upstream);
  if (!report.ok()) {
    std::cerr << report.status().ToString() << "\n";
    std::abort();
  }
  out.recovery = *report;
  out.recovered = MeasureMix(&cluster, &bench, &strings, 3);
  out.failed_reads = injector.stats().failed_reads;
  return out;
}

void Run() {
  PrintHeader("SS 6.8: fault-tolerance overhead on the L1-L3 mix (8 nodes)",
              NetworkModel{});
  std::string path =
      (std::filesystem::temp_directory_path() / "wukongs_ft_bench.log").string();

  FtRun off = Measure(false, path);
  FtRun on = Measure(true, path);
  std::filesystem::remove(path);

  TablePrinter table({"config", "throughput (q/s)", "p50 (ms)", "p90 (ms)",
                      "p99 (ms)", "log delay/batch (ms)"});
  table.AddRow({"FT off", TablePrinter::Num(off.throughput, 0),
                TablePrinter::Num(off.p50, 3), TablePrinter::Num(off.p90, 3),
                TablePrinter::Num(off.p99, 3), "-"});
  table.AddRow({"FT on", TablePrinter::Num(on.throughput, 0),
                TablePrinter::Num(on.p50, 3), TablePrinter::Num(on.p90, 3),
                TablePrinter::Num(on.p99, 3),
                TablePrinter::Num(on.log_ms_per_batch, 3)});
  table.Print();
  char drop[32];
  std::snprintf(drop, sizeof(drop), "%+.1f",
                (1.0 - on.throughput / off.throughput) * 100);
  std::cout << "\nthroughput drop: " << drop
            << "% (paper: ~11.2%; small/negative values here mean the logging "
               "cost vanished into wall-clock noise)\n";

  std::string fault_path =
      (std::filesystem::temp_directory_path() / "wukongs_ft_fault_bench.log")
          .string();
  FaultedRun faulted = MeasureFaulted(fault_path);
  std::filesystem::remove(fault_path);

  std::cout << "\nwith injected faults (1% failed reads/messages, node 5 "
               "crashed, then restored from log + upstream tail):\n";
  TablePrinter faults({"config", "throughput (q/s)", "p50 (ms)", "p99 (ms)",
                       "partial windows", "read retries"});
  faults.AddRow({"degraded (7 of 8 up)",
                 TablePrinter::Num(faulted.degraded.throughput, 0),
                 TablePrinter::Num(faulted.degraded.p50, 3),
                 TablePrinter::Num(faulted.degraded.p99, 3),
                 TablePrinter::Num(static_cast<double>(
                     faulted.degraded.partial_windows), 0),
                 TablePrinter::Num(static_cast<double>(
                     faulted.degraded.read_retries), 0)});
  faults.AddRow({"recovered (8 of 8 up)",
                 TablePrinter::Num(faulted.recovered.throughput, 0),
                 TablePrinter::Num(faulted.recovered.p50, 3),
                 TablePrinter::Num(faulted.recovered.p99, 3),
                 TablePrinter::Num(static_cast<double>(
                     faulted.recovered.partial_windows), 0),
                 TablePrinter::Num(static_cast<double>(
                     faulted.recovered.read_retries), 0)});
  faults.Print();
  std::cout << "node restore: "
            << TablePrinter::Num(faulted.recovery.recovery_ms, 3) << " ms ("
            << faulted.recovery.log_batches << " batches from the log, "
            << faulted.recovery.upstream_batches
            << " from the upstream tail); degraded queries rerouted "
            << faulted.reroutes << " times off the dead home; injector failed "
            << faulted.failed_reads << " reads\n";
  std::cout << "(degraded throughput can exceed the healthy baseline: partial "
               "windows skip the dead shard's work entirely — the cost shows "
               "up as missing results, not latency)\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
