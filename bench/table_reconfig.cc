// §5.10: online elastic reconfiguration — query latency while a live shard
// handoff is in flight, vs steady state, vs after the epoch-bump cutover.
//
// The claim under test: the source keeps serving throughout the copy/replay
// and the cutover is a single atomic ownership-epoch bump, so continuous
// queries never see a stall — p99 during migration stays within a small
// multiple (acceptance: 3x) of the steady-state p99. The migration bill
// (base edges copied, history batches replayed, wall time of the transfer)
// is reported separately: that cost runs beside the read path, not in it.
//
// The same L1-L3 mixed workload as the fault-tolerance bench (table_ft), on
// 4 nodes, with the batch log wired before feeding so the moving shard's
// history is replayable.

#include <cstdio>
#include <filesystem>
#include <memory>

#include "bench/bench_common.h"
#include "src/cluster/reconfig.h"
#include "src/common/latency_model.h"
#include "src/common/rng.h"
#include "src/stream/checkpoint.h"

namespace wukongs {
namespace bench {
namespace {

struct PhaseStats {
  Histogram latency;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

PhaseStats MeasureMix(Cluster* cluster,
                      const std::vector<Cluster::ContinuousHandle>& handles) {
  PhaseStats out;
  for (Cluster::ContinuousHandle h : handles) {
    for (int i = 0; i < 10; ++i) {
      auto exec =
          cluster->ExecuteContinuousAt(h, 2000 + static_cast<StreamTime>(i) * 100);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      out.latency.Add(exec->latency_ms());
    }
  }
  out.p50 = out.latency.Median();
  out.p90 = out.latency.Percentile(90);
  out.p99 = out.latency.Percentile(99);
  return out;
}

void Run(int argc, char** argv) {
  PrintHeader("SS 5.10: query latency across a live shard handoff (4 nodes)",
              NetworkModel{});
  std::string log_path =
      (std::filesystem::temp_directory_path() / "wukongs_reconfig_bench.log")
          .string();
  std::filesystem::remove(log_path);

  LsBenchConfig config;
  config.users = 4000;
  StringServer strings;
  ClusterConfig cluster_config;
  cluster_config.nodes = 4;
  Cluster cluster(cluster_config, &strings);
  LsBench bench(&cluster, config);

  // The log must see every batch the moving shard will need replayed, so it
  // is wired before the first tuple is fed.
  auto created = CheckpointLog::Create(log_path);
  if (!created.ok()) {
    std::cerr << created.status().ToString() << "\n";
    std::abort();
  }
  auto log = std::make_unique<CheckpointLog>(std::move(*created));
  cluster.SetBatchLogger([&](const StreamBatch& b) {
    Status s = log->Append(b);
    if (!s.ok()) {
      std::cerr << s.ToString() << "\n";
      std::abort();
    }
  });

  if (!bench.Setup().ok() || !bench.FeedInterval(0, 4000).ok()) {
    std::cerr << "setup/feed failed\n";
    std::abort();
  }

  Rng rng(510);
  std::vector<Cluster::ContinuousHandle> handles;
  for (int cls : {1, 2, 3}) {
    for (int v = 0; v < 6; ++v) {
      Query q = MustParse(bench.ContinuousQueryText(cls, &rng), &strings);
      auto handle = cluster.RegisterContinuousParsed(
          q, static_cast<NodeId>(rng.Uniform(0, 3)));
      if (!handle.ok()) {
        std::cerr << handle.status().ToString() << "\n";
        std::abort();
      }
      handles.push_back(*handle);
    }
  }

  // Phase A: steady state. The same 18 queries x 10 window ends are
  // re-measured in every phase so the only variable is the migration.
  PhaseStats steady = MeasureMix(&cluster, handles);

  // Phase B: migration in flight. Begin the move and load the base copy,
  // then measure with the transfer pending — the source still owns the
  // shard and serves every read.
  constexpr uint32_t kShard = 0;
  NodeId source = cluster.ShardOwner(kShard);
  NodeId target = static_cast<NodeId>((source + 1) % 4);
  Stopwatch transfer_sw;
  if (Status s = cluster.BeginShardMove(kShard, target); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::abort();
  }
  if (Status s = cluster.LoadBaseForShard(bench.initial_graph()); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::abort();
  }
  double copy_ms = transfer_sw.ElapsedMs();
  PhaseStats migrating = MeasureMix(&cluster, handles);

  // Finish the transfer: replay the shard's logged history into the target,
  // then cut over (atomic epoch bump once Stable_SN covers the frontier —
  // immediate here, the cluster is healthy and fully delivered).
  Stopwatch replay_sw;
  if (Status s = log->Sync(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::abort();
  }
  auto batches = ReadCheckpointLog(log_path);
  if (!batches.ok()) {
    std::cerr << batches.status().ToString() << "\n";
    std::abort();
  }
  for (const StreamBatch& b : *batches) {
    if (Status s = cluster.ReplayBatchForShard(b); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      std::abort();
    }
  }
  if (Status s = cluster.FinishShardTransfer(); !s.ok()) {
    std::cerr << s.ToString() << "\n";
    std::abort();
  }
  double replay_ms = replay_sw.ElapsedMs();
  if (cluster.MigrationPending()) {
    std::cerr << "cutover did not commit\n";
    std::abort();
  }

  // Phase C: after the cutover, the target owns the shard.
  PhaseStats post = MeasureMix(&cluster, handles);

  std::filesystem::remove(log_path);

  const auto& rs = cluster.reconfig_stats();
  TablePrinter table({"phase", "p50 (ms)", "p90 (ms)", "p99 (ms)"});
  table.AddRow({"steady state", TablePrinter::Num(steady.p50, 3),
                TablePrinter::Num(steady.p90, 3),
                TablePrinter::Num(steady.p99, 3)});
  table.AddRow({"migration in flight", TablePrinter::Num(migrating.p50, 3),
                TablePrinter::Num(migrating.p90, 3),
                TablePrinter::Num(migrating.p99, 3)});
  table.AddRow({"post-cutover", TablePrinter::Num(post.p50, 3),
                TablePrinter::Num(post.p90, 3),
                TablePrinter::Num(post.p99, 3)});
  table.Print();

  double ratio = steady.p99 > 0.0 ? migrating.p99 / steady.p99 : 0.0;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f", ratio);
  std::cout << "\np99 during migration / steady-state p99: " << buf
            << "x (acceptance: <= 3x; reads stay on the source until the "
               "epoch bump)\n";
  std::cout << "migration bill (off the read path): shard " << kShard << " "
            << static_cast<int>(source) << "->" << static_cast<int>(target)
            << ", base copy " << TablePrinter::Num(copy_ms, 3)
            << " ms, history replay+cutover " << TablePrinter::Num(replay_ms, 3)
            << " ms, " << rs.edges_copied << " edges copied, "
            << rs.batches_replayed << " batches replayed, "
            << rs.moves_committed << " move(s) committed\n";

  BenchArtifact artifact("table_reconfig");
  artifact.RecordLatencies("bench_latency_ms", {{"phase", "steady"}},
                           steady.latency);
  artifact.RecordLatencies("bench_latency_ms", {{"phase", "migrating"}},
                           migrating.latency);
  artifact.RecordLatencies("bench_latency_ms", {{"phase", "post_cutover"}},
                           post.latency);
  artifact.SetValue("bench_reconfig_p99_ratio", {}, ratio);
  artifact.SetValue("bench_reconfig_base_copy_ms", {}, copy_ms);
  artifact.SetValue("bench_reconfig_replay_cutover_ms", {}, replay_ms);
  artifact.AddCount("bench_reconfig_edges_copied", {}, rs.edges_copied);
  artifact.AddCount("bench_reconfig_batches_replayed", {}, rs.batches_replayed);
  artifact.AddCount("bench_reconfig_moves_committed", {}, rs.moves_committed);
  artifact.Write(JsonOutPath(argc, argv));
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(argc, argv);
  return 0;
}
