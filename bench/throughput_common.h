// Shared machinery for the mixed-workload throughput benches (Figs. 14-15).
//
// The paper's setup: 4 emulated clients and 16 worker threads per node;
// clients register randomized instances of the query classes (same shape,
// random start vertex) until throughput saturates; the class mix follows the
// reciprocal of each class's average latency.
//
// The harness machine cannot run 8x24 hardware threads, so throughput is
// derived from measured per-query *worker occupancy*: an in-place query
// occupies one worker for its full latency; a fork-join query occupies the
// whole cluster for its (unscaled) compute time. Peak throughput =
// total workers / weighted mean occupancy. Latency CDFs are measured
// directly, with the injection-interference tail applied at the measured
// per-batch injection cost (paper §6.5-§6.6).

#ifndef BENCH_THROUGHPUT_COMMON_H_
#define BENCH_THROUGHPUT_COMMON_H_

#include <cmath>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/rng.h"

namespace wukongs {
namespace bench {

struct MixResult {
  double throughput_qps = 0.0;
  std::vector<Histogram> class_latency;  // Per query class, ms.
  Histogram all_latency;                 // Mix-weighted, ms.
};

// Measures the query classes `class_numbers` on a fresh LSBench deployment
// with `nodes` nodes, `variants` randomized instances per class.
inline MixResult MeasureMix(uint32_t nodes, const std::vector<int>& class_numbers,
                            int variants, int samples_per_variant,
                            uint64_t seed = 1) {
  LsBenchConfig config;
  config.users = 4000;
  LsEnvironment env = LsEnvironment::Create(nodes, config, /*feed_to_ms=*/4000);
  const uint32_t total_workers = nodes * env.cluster->config().workers_per_node;
  const double parallel_exp = env.cluster->config().fork_join_parallel_exponent;

  // Injection interference: a batch arrives every interval; queries that
  // overlap it are delayed by the injection cost (the CDF tail).
  double inject_ms_per_batch = 0.0;
  for (StreamId s = 0; s < 5; ++s) {
    auto profile = env.cluster->injection_profile(s);
    if (profile.batches > 0) {
      inject_ms_per_batch += (profile.inject_ms + profile.index_ms) /
                             static_cast<double>(profile.batches);
    }
  }
  double interval_ms =
      static_cast<double>(env.cluster->config().batch_interval_ms);
  double tail_probability = std::min(1.0, inject_ms_per_batch / interval_ms);

  // Every served query also pays dispatch overhead that our direct function
  // calls skip: the client->server message, task-queue scheduling onto a
  // worker, and the reply. The paper's end-to-end numbers include it (its
  // cheapest query class still reports ~0.1ms under load).
  constexpr double kDispatchMs = 0.05;

  Rng rng(seed);
  MixResult result;
  result.class_latency.resize(class_numbers.size());
  std::vector<double> class_occupancy_ms(class_numbers.size(), 0.0);
  std::vector<size_t> class_samples(class_numbers.size(), 0);

  for (size_t c = 0; c < class_numbers.size(); ++c) {
    for (int v = 0; v < variants; ++v) {
      Query q = MustParse(
          env.bench->ContinuousQueryText(class_numbers[c], &rng), env.strings.get());
      auto handle = env.cluster->RegisterContinuousParsed(
          q, static_cast<NodeId>(rng.Uniform(0, nodes - 1)));
      if (!handle.ok()) {
        std::cerr << handle.status().ToString() << "\n";
        std::abort();
      }
      for (int s = 0; s < samples_per_variant; ++s) {
        StreamTime end = 2000 + static_cast<StreamTime>(s) * 100;
        auto exec = env.cluster->ExecuteContinuousAt(*handle, end);
        if (!exec.ok()) {
          std::cerr << exec.status().ToString() << "\n";
          std::abort();
        }
        double latency = exec->latency_ms() + kDispatchMs;
        // Worker occupancy: what the query takes away from the pool, with
        // injection interference accounted in expectation (stable across
        // runs); the latency CDF uses sampled hits so the tail is visible.
        double occupancy =
            (exec->fork_join
                 ? exec->cpu_ms * std::pow(static_cast<double>(nodes), parallel_exp) +
                       exec->net_ms
                 : latency) +
            tail_probability * inject_ms_per_batch;
        class_occupancy_ms[c] += occupancy;
        ++class_samples[c];
        if (rng.Bernoulli(tail_probability)) {
          latency += inject_ms_per_batch;  // Overlapped an injection.
        }
        result.class_latency[c].Add(latency);
      }
    }
  }

  // Class mix follows the reciprocal of average latency (paper §6.6), i.e.
  // every class contributes the same total busy time.
  double weight_sum = 0.0;
  double weighted_occupancy = 0.0;
  std::vector<double> weights(class_numbers.size());
  for (size_t c = 0; c < class_numbers.size(); ++c) {
    double mean_latency = result.class_latency[c].Mean();
    double mean_occupancy =
        class_occupancy_ms[c] / static_cast<double>(class_samples[c]);
    weights[c] = 1.0 / std::max(mean_latency, 1e-6);
    weight_sum += weights[c];
    weighted_occupancy += weights[c] * mean_occupancy;
  }
  weighted_occupancy /= weight_sum;

  result.throughput_qps =
      static_cast<double>(total_workers) / (weighted_occupancy / 1000.0);
  for (size_t c = 0; c < class_numbers.size(); ++c) {
    // Mix-weighted CDF: sample each class proportionally to its weight.
    Histogram& h = result.class_latency[c];
    (void)h;
    result.all_latency.Merge(result.class_latency[c]);
  }
  return result;
}

inline void PrintThroughputTable(const std::vector<int>& classes,
                                 const char* title) {
  PrintHeader(title, NetworkModel{});
  TablePrinter table({"nodes", "throughput (q/s)", "p50 (ms)", "p99 (ms)"});
  double first = 0.0;
  double last = 0.0;
  MixResult at8;
  for (uint32_t nodes = 2; nodes <= 8; ++nodes) {
    MixResult mix = MeasureMix(nodes, classes, /*variants=*/6,
                               /*samples_per_variant=*/10);
    if (nodes == 2) {
      first = mix.throughput_qps;
    }
    if (nodes == 8) {
      last = mix.throughput_qps;
      at8 = mix;
    }
    table.AddRow({std::to_string(nodes), TablePrinter::Num(mix.throughput_qps, 0),
                  TablePrinter::Num(mix.all_latency.Median(), 3),
                  TablePrinter::Num(mix.all_latency.Percentile(99), 3)});
  }
  table.Print();
  std::cout << "\nscaling 2->8 nodes: " << TablePrinter::Num(last / first, 1)
            << "x\n\nlatency CDF per class on 8 nodes:\n";
  TablePrinter cdf_table({"class", "p10", "p30", "p50", "p70", "p90", "p99"});
  for (size_t c = 0; c < classes.size(); ++c) {
    const Histogram& h = at8.class_latency[c];
    cdf_table.AddRow({"L" + std::to_string(classes[c]),
                      TablePrinter::Num(h.Percentile(10), 3),
                      TablePrinter::Num(h.Percentile(30), 3),
                      TablePrinter::Num(h.Percentile(50), 3),
                      TablePrinter::Num(h.Percentile(70), 3),
                      TablePrinter::Num(h.Percentile(90), 3),
                      TablePrinter::Num(h.Percentile(99), 3)});
  }
  cdf_table.Print();
}

}  // namespace bench
}  // namespace wukongs

#endif  // BENCH_THROUGHPUT_COMMON_H_
