// Ablations of the design choices DESIGN.md calls out — each knob removed in
// isolation, measured on the LSBench queries:
//
//   (1) execution-mode selection (§5): force in-place for everything vs
//       force fork-join for everything vs the engine's choice;
//   (2) locality-aware stream-index partitioning (§4.2, Fig. 9): without
//       replication every remote window lookup pays an extra one-sided read;
//   (3) bounded snapshot scalarization interval (§4.3): batches_per_sn
//       trades one-shot staleness against injection flexibility.

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 15;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

std::vector<double> MeasureAll(const ClusterConfig& cluster_config) {
  LsBenchConfig config;
  config.users = 4000;
  LsEnvironment env = LsEnvironment::Create(8, config, kFeedTo, cluster_config);
  std::vector<double> medians;
  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
    auto handle = env.cluster->RegisterContinuousParsed(q);
    medians.push_back(
        MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep, kSamples)
            .Median());
  }
  return medians;
}

void ExecutionModeAblation() {
  std::cout << "--- (1) execution mode: engine choice vs forced modes ---\n";
  ClusterConfig engine_choice;
  ClusterConfig in_place;
  in_place.force_in_place = true;
  ClusterConfig fork_join;
  fork_join.force_fork_join = true;

  auto chosen = MeasureAll(engine_choice);
  auto inp = MeasureAll(in_place);
  auto fj = MeasureAll(fork_join);

  TablePrinter table({"query", "engine choice", "all in-place", "all fork-join"});
  for (size_t i = 0; i < chosen.size(); ++i) {
    table.AddRow({"L" + std::to_string(i + 1), TablePrinter::Num(chosen[i], 3),
                  TablePrinter::Num(inp[i], 3), TablePrinter::Num(fj[i], 3)});
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(chosen), 3),
                TablePrinter::Num(GeometricMeanOf(inp), 3),
                TablePrinter::Num(GeometricMeanOf(fj), 3)});
  table.Print();
  std::cout << "expected: in-place hurts group (II) (every remote edge is a "
               "round trip), fork-join adds overhead to group (I)\n\n";
}

void LocalityAblation() {
  std::cout << "--- (2) locality-aware stream-index replication on/off ---\n";
  ClusterConfig with;
  ClusterConfig without;
  without.locality_aware_index = false;

  auto on = MeasureAll(with);
  auto off = MeasureAll(without);
  TablePrinter table({"query", "replicated index", "remote index", "slowdown"});
  for (size_t i = 0; i < on.size(); ++i) {
    table.AddRow({"L" + std::to_string(i + 1), TablePrinter::Num(on[i], 3),
                  TablePrinter::Num(off[i], 3),
                  TablePrinter::Num(off[i] / on[i], 2) + "x"});
  }
  table.Print();
  std::cout << "expected: selective (group I) queries, which live off the "
               "index fast path, degrade most\n\n";
}

void SnapshotIntervalAblation() {
  std::cout << "--- (3) SN-VTS plan interval (batches_per_sn) ---\n";
  TablePrinter table({"batches/SN", "Stable_SN", "plans published",
                      "one-shot staleness (batches)"});
  for (uint64_t interval : {1u, 2u, 5u, 10u}) {
    ClusterConfig cluster_config;
    cluster_config.batches_per_sn = interval;
    LsBenchConfig config;
    config.users = 1000;
    LsEnvironment env = LsEnvironment::Create(4, config, kFeedTo, cluster_config);
    Coordinator* coord = env.cluster->coordinator();
    // Staleness: batches injected beyond what Stable_SN exposes.
    BatchSeq newest = coord->StableVts().Get(0);
    SnapshotNum sn = coord->StableSn();
    // The SN's target batch for stream 0 is sn * interval - 1.
    uint64_t exposed = sn * interval;
    uint64_t staleness = newest + 1 > exposed ? newest + 1 - exposed : 0;
    table.AddRow({std::to_string(interval), std::to_string(sn),
                  std::to_string(coord->plan_count()), std::to_string(staleness)});
  }
  table.Print();
  std::cout << "expected: larger intervals publish fewer plans (cheaper "
               "coordination, more injector freedom) but one-shot queries "
               "read a staler snapshot (paper SS4.3 trade-off)\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::PrintHeader(
      "Ablations: execution mode, locality-aware index, SN plan interval",
      wukongs::NetworkModel{});
  wukongs::bench::ExecutionModeAblation();
  wukongs::bench::LocalityAblation();
  wukongs::bench::SnapshotIntervalAblation();
  return 0;
}
