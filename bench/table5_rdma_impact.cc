// Table 5: performance impact of RDMA on Wukong+S (8 nodes).
//
// Non-RDMA = 10GbE TCP with purely fork-join execution forced over both
// streaming and stored data. Paper shape: selective queries (L1-L3) are
// insensitive (~1.0-1.1x); non-selective queries (L4-L6) slow down 1.8x-3.5x.

#include <vector>

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

std::vector<double> MeasureAll(Transport transport, bool force_fork_join) {
  ClusterConfig cluster_config;
  cluster_config.transport = transport;
  cluster_config.force_fork_join = force_fork_join;
  LsBenchConfig config;
  config.users = 4000;
  LsEnvironment env =
      LsEnvironment::Create(/*nodes=*/8, config, kFeedTo, cluster_config);
  std::vector<double> medians;
  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
    auto handle = env.cluster->RegisterContinuousParsed(q);
    medians.push_back(
        MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep, kSamples)
            .Median());
  }
  return medians;
}

void Run() {
  PrintHeader("Table 5: the performance impact of RDMA on Wukong+S (8 nodes)",
              NetworkModel{});
  std::cout << "non-RDMA = TCP transport + forced fork-join execution\n\n";

  std::vector<double> rdma = MeasureAll(Transport::kRdma, false);
  std::vector<double> tcp = MeasureAll(Transport::kTcp, true);

  TablePrinter table({"LSBench", "Wukong+S", "Non-RDMA", "Slowdown"});
  for (size_t i = 0; i < rdma.size(); ++i) {
    // Sub-microsecond baselines are wall-clock noise; a ratio there is
    // meaningless (the paper's cheapest query is ~100us).
    bool noise = rdma[i] < 0.002;
    table.AddRow({"L" + std::to_string(i + 1), TablePrinter::Num(rdma[i], 3),
                  TablePrinter::Num(tcp[i], 3),
                  noise ? "~1x (noise)"
                        : TablePrinter::Num(tcp[i] / rdma[i], 1) + "x"});
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(rdma), 3),
                TablePrinter::Num(GeometricMeanOf(tcp), 3),
                TablePrinter::Num(GeometricMeanOf(tcp) / GeometricMeanOf(rdma), 1) +
                    "x"});
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
