// Shared harness for the paper-reproduction benches.
//
// Every bench binary prints (a) the network/cost model in effect, (b) the
// workload scale, and (c) a table shaped like the paper's. Absolute numbers
// are not expected to match the paper (simulated fabric, scaled datasets);
// the shape — who wins, by roughly what factor — is the reproduction target.
// EXPERIMENTS.md records paper-vs-measured for every row.

#ifndef BENCH_BENCH_COMMON_H_
#define BENCH_BENCH_COMMON_H_

#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/baselines/baseline_streams.h"
#include "src/cluster/cluster.h"
#include "src/common/histogram.h"
#include "src/common/table_printer.h"
#include "src/obs/metrics.h"
#include "src/sparql/parser.h"
#include "src/workloads/lsbench.h"

namespace wukongs {
namespace bench {

// One LSBench deployment: a Wukong+S cluster fed with streams, plus the
// identical workload captured for baseline engines (initial graph + full
// per-stream tuple logs).
struct LsEnvironment {
  std::unique_ptr<StringServer> strings;
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<LsBench> bench;
  std::map<std::string, StreamTupleVec> captured;  // Stream name -> tuples.
  StreamTime fed_to_ms = 0;

  static LsEnvironment Create(uint32_t nodes, LsBenchConfig config,
                              StreamTime feed_to_ms,
                              ClusterConfig cluster_config = {}) {
    LsEnvironment env;
    env.strings = std::make_unique<StringServer>();
    cluster_config.nodes = nodes;
    env.cluster = std::make_unique<Cluster>(cluster_config, env.strings.get());
    env.bench = std::make_unique<LsBench>(env.cluster.get(), config);
    env.bench->SetTee([&env](const std::string& name, const StreamTupleVec& tuples) {
      auto& log = env.captured[name];
      log.insert(log.end(), tuples.begin(), tuples.end());
    });
    Status s = env.bench->Setup();
    if (!s.ok()) {
      std::cerr << "LSBench setup failed: " << s.ToString() << "\n";
      std::abort();
    }
    s = env.bench->FeedInterval(0, feed_to_ms);
    if (!s.ok()) {
      std::cerr << "LSBench feeding failed: " << s.ToString() << "\n";
      std::abort();
    }
    env.fed_to_ms = feed_to_ms;
    return env;
  }

  // Loads the captured workload into a BaselineStreams instance.
  void FillBaselineStreams(BaselineStreams* streams) const {
    for (const char* name :
         {"PO_Stream", "POL_Stream", "PH_Stream", "PHL_Stream", "GPS_Stream"}) {
      auto id = streams->Define(name);
      if (id.ok()) {
        auto it = captured.find(name);
        if (it != captured.end()) {
          Status s = streams->Feed(*id, it->second);
          if (!s.ok()) {
            std::cerr << "baseline feed failed: " << s.ToString() << "\n";
            std::abort();
          }
        }
      }
    }
  }
};

// Median latency of a continuous query executed at `samples` successive
// window ends (paper: median of one hundred runs).
inline Histogram MeasureContinuous(Cluster* cluster, Cluster::ContinuousHandle h,
                                   StreamTime first_end_ms, StreamTime step_ms,
                                   int samples) {
  Histogram hist;
  for (int i = 0; i < samples; ++i) {
    StreamTime end = first_end_ms + static_cast<StreamTime>(i) * step_ms;
    auto exec = cluster->ExecuteContinuousAt(h, end);
    if (!exec.ok()) {
      std::cerr << "continuous execution failed: " << exec.status().ToString()
                << "\n";
      std::abort();
    }
    hist.Add(exec->latency_ms());
  }
  return hist;
}

// Same measurement against any engine exposed as a callable
// (StreamTime end) -> StatusOr<QueryExecution>. Returns an empty histogram if
// the engine reports Unimplemented (rendered as "x" in tables).
template <typename Fn>
Histogram MeasureEngine(Fn&& execute, StreamTime first_end_ms, StreamTime step_ms,
                        int samples, bool* unsupported = nullptr) {
  Histogram hist;
  if (unsupported != nullptr) {
    *unsupported = false;
  }
  for (int i = 0; i < samples; ++i) {
    StreamTime end = first_end_ms + static_cast<StreamTime>(i) * step_ms;
    auto exec = execute(end);
    if (!exec.ok()) {
      if (exec.status().code() == StatusCode::kUnimplemented &&
          unsupported != nullptr) {
        *unsupported = true;
        return hist;
      }
      std::cerr << "engine execution failed: " << exec.status().ToString() << "\n";
      std::abort();
    }
    hist.Add(exec->latency_ms());
  }
  return hist;
}

// --- machine-readable artifacts (DESIGN.md §5.8) -------------------------
//
// Every bench accepts `--json <path>`; when given, the numbers behind the
// printed table are mirrored into a MetricsRegistry (full latency
// distributions as histograms, scalars as gauges/counters) and dumped as
// `{"bench": <name>, "metrics": <registry JSON>}` so CI can upload them and
// runs can be diffed without scraping stdout.

inline std::string JsonOutPath(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string(argv[i]) == "--json") {
      return argv[i + 1];
    }
  }
  return {};
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == flag) {
      return true;
    }
  }
  return false;
}

using MetricLabels = std::vector<std::pair<std::string, std::string>>;

class BenchArtifact {
 public:
  explicit BenchArtifact(std::string name) : name_(std::move(name)) {}

  // Replays a measured latency distribution into the registry so the JSON
  // carries p50/p90/p99/max, not just the one number the table printed.
  void RecordLatencies(const std::string& metric, const MetricLabels& labels,
                       const Histogram& hist) {
    obs::HistogramMetric* h =
        registry_.GetHistogram(obs::MetricsRegistry::Labeled(metric, labels));
    for (double v : hist.samples()) {
      h->Observe(v);
    }
  }

  void SetValue(const std::string& metric, const MetricLabels& labels,
                double value) {
    registry_.GetGauge(obs::MetricsRegistry::Labeled(metric, labels))
        ->Set(value);
  }

  // Direct Add (not obs::Bump): the artifact must fill even in a
  // -DWUKONGS_OBS=OFF build, where Bump compiles to a no-op.
  void AddCount(const std::string& metric, const MetricLabels& labels,
                uint64_t n) {
    registry_.GetCounter(obs::MetricsRegistry::Labeled(metric, labels))
        ->Add(n);
  }

  // Folds a live registry (e.g. the cluster's, when the bench ran with
  // observability attached) into the artifact.
  void MergeRegistry(const obs::MetricsRegistry& other) {
    registry_.MergeFrom(other);
  }

  // No-op when `path` is empty (bench invoked without --json).
  void Write(const std::string& path) const {
    if (path.empty()) {
      return;
    }
    std::ofstream out(path);
    if (!out) {
      std::cerr << "cannot write bench artifact to " << path << "\n";
      std::abort();
    }
    out << "{\"bench\":\"" << name_ << "\",\"metrics\":" << registry_.ToJson()
        << "}\n";
    std::cout << "\nartifact: " << path << "\n";
  }

 private:
  std::string name_;
  obs::MetricsRegistry registry_;
};

inline void PrintHeader(const std::string& title, const NetworkModel& model) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "cost model: " << model.DebugString() << "\n";
}

inline Query MustParse(const std::string& text, StringServer* strings) {
  auto q = ParseQuery(text, strings);
  if (!q.ok()) {
    std::cerr << "query parse failed: " << q.status().ToString() << "\nquery:\n"
              << text << "\n";
    std::abort();
  }
  return std::move(*q);
}

}  // namespace bench
}  // namespace wukongs

#endif  // BENCH_BENCH_COMMON_H_
