// Delta-vs-recompute trigger latency (DESIGN.md §5.9, fig13-style).
//
// A continuous query triggered every STEP over a sliding RANGE shares all
// but one slice with its previous trigger. The delta cache turns that
// overlap into reuse: cached per-slice contributions + a cached stored
// prefix, with only the delta batches evaluated. This bench measures p50
// trigger latency of the delta path against cold full-window re-execution
// (same cluster, same cached plan, cache bypassed) on the LSBench
// repeated-window workload — the acceptance target is >= 2x on the
// delta-eligible queries. (The floor was 3x before the columnar executor
// landed; §5.13 sped up the cold-recompute denominator ~3x, so the delta
// ratio shrank while absolute delta latency improved. The bench-compare
// gate on the absolute p50s is what holds the line.) An ineligible query
// (two window patterns) rides along as the no-regression control: it
// bypasses the cache on both paths.

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void Run(const std::string& json_path) {
  PrintHeader("Fig. 13 (delta): trigger latency, delta cache vs full recompute",
              NetworkModel{});

  LsBenchConfig config;
  config.users = 2000;
  ClusterConfig cluster_config;
  // In-place execution isolates the delta-vs-recompute comparison from the
  // fork-join heuristic (the delta path only serves in-place triggers).
  cluster_config.force_in_place = true;
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/4, config, kFeedTo,
                                            cluster_config);
  std::cout << "LSBench users=" << config.users << ", feed " << kFeedTo
            << "ms, windows widened to RANGE 2s STEP 100ms, samples/query: "
            << kSamples << "\n\n";

  BenchArtifact artifact("fig13_delta_cache");
  artifact.SetValue("bench_samples_per_query", {}, kSamples);

  // L2 and L5 have exactly one window-scoped pattern (delta-eligible); L1
  // joins two patterns inside one window (ineligible, the control row).
  // Windows are widened to RANGE 2s (20 slices per window): per-trigger work
  // for the recompute path scales with the window span while the delta path
  // pays only for the slices that changed, so the wider the repeated window,
  // the starker the O(window) vs O(delta) separation this bench pins down.
  TablePrinter table({"query", "eligible", "recompute p50 (ms)",
                      "delta p50 (ms)", "speedup", "slices cached/fresh"});
  double min_eligible_speedup = 0.0;
  for (int i : {1, 2, 5}) {
    std::string text = env.bench->ContinuousQueryText(i);
    for (size_t pos = text.find("RANGE 1s"); pos != std::string::npos;
         pos = text.find("RANGE 1s", pos)) {
      text.replace(pos, 8, "RANGE 2s");
    }
    Query q = MustParse(text, env.strings.get());
    auto handle = env.cluster->RegisterContinuousParsed(q);
    if (!handle.ok()) {
      std::cerr << "register failed: " << handle.status().ToString() << "\n";
      std::abort();
    }
    bool eligible = env.cluster->HasDeltaCache(*handle);

    // Warm-up trigger: computes the cached plan and (when eligible) fills
    // the cache, so both measured lanes start from the same steady state.
    auto warm = env.cluster->ExecuteContinuousAt(*handle, kFirstEnd - kStep);
    if (!warm.ok()) {
      std::cerr << "warm-up failed: " << warm.status().ToString() << "\n";
      std::abort();
    }

    Histogram cold = MeasureEngine(
        [&](StreamTime end) {
          return env.cluster->ExecuteContinuousColdAt(*handle, end);
        },
        kFirstEnd, kStep, kSamples);
    uint64_t cached = 0;
    uint64_t fresh = 0;
    Histogram delta = MeasureEngine(
        [&](StreamTime end) {
          auto exec = env.cluster->ExecuteContinuousAt(*handle, end);
          if (exec.ok()) {
            cached += exec->delta_slices_cached;
            fresh += exec->delta_slices_fresh;
          }
          return exec;
        },
        kFirstEnd, kStep, kSamples);

    double speedup = delta.Median() > 0 ? cold.Median() / delta.Median() : 0.0;
    if (eligible) {
      min_eligible_speedup = min_eligible_speedup == 0.0
                                 ? speedup
                                 : std::min(min_eligible_speedup, speedup);
    }
    std::string name = "L" + std::to_string(i);
    table.AddRow({name, eligible ? "yes" : "no",
                  TablePrinter::Num(cold.Median(), 3),
                  TablePrinter::Num(delta.Median(), 3),
                  TablePrinter::Num(speedup, 2) + "x",
                  std::to_string(cached) + "/" + std::to_string(fresh)});

    artifact.RecordLatencies("bench_latency_ms",
                             {{"query", name}, {"mode", "recompute"}}, cold);
    artifact.RecordLatencies("bench_latency_ms",
                             {{"query", name}, {"mode", "delta"}}, delta);
    artifact.SetValue("bench_delta_speedup", {{"query", name}}, speedup);
    artifact.SetValue("bench_delta_eligible", {{"query", name}},
                      eligible ? 1.0 : 0.0);
    artifact.AddCount("bench_delta_slices_cached", {{"query", name}}, cached);
    artifact.AddCount("bench_delta_slices_fresh", {{"query", name}}, fresh);
  }
  table.Print();
  std::cout << "\nmin speedup over eligible queries: "
            << TablePrinter::Num(min_eligible_speedup, 2)
            << "x (acceptance floor: 2x; see header note)\n";
  artifact.SetValue("bench_delta_min_speedup", {}, min_eligible_speedup);
  artifact.Write(json_path);
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(wukongs::bench::JsonOutPath(argc, argv));
  return 0;
}
