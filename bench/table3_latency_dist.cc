// Table 3: 8-node median latency (ms) of LSBench L1-L6 on Wukong+S vs
// Storm+Wukong vs Spark Streaming.
//
// Paper shape: Wukong+S wins by 2.3x-29x over Storm+Wukong and by three
// orders of magnitude over Spark Streaming (whose micro-batch floor keeps
// every query in the hundreds of milliseconds).

#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/spark_like.h"
#include "src/baselines/storm_wukong.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void Run() {
  LsBenchConfig config;
  config.users = 4000;  // The distributed setting runs the larger dataset.
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
  PrintHeader("Table 3: 8-node continuous query latency (ms), LSBench",
              env.cluster->config().network);
  std::cout << "initial triples: " << env.bench->initial_triples()
            << ", nodes: 8, samples/query: " << kSamples << "\n\n";

  ClusterConfig static_config;
  static_config.nodes = 8;
  Cluster static_store(static_config, env.strings.get());
  static_store.LoadBase(env.bench->initial_graph());

  StormWukong storm(&static_store);
  env.FillBaselineStreams(storm.streams());

  SparkEngine spark(env.strings.get());
  spark.LoadStored(env.bench->initial_graph());
  env.FillBaselineStreams(spark.streams());

  TablePrinter table({"LSBench", "Wukong+S", "Storm+Wukong All", "(Storm)",
                      "(Wukong)", "Spark Streaming"});
  std::vector<double> ws_all, sw_all, sp_all;

  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
    bool touches_store = false;
    for (const TriplePattern& p : q.patterns) {
      touches_store |= (p.graph == kGraphStored);
    }

    auto handle = env.cluster->RegisterContinuousParsed(q);
    Histogram ws =
        MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep, kSamples);

    Histogram sw, sw_stream, sw_store;
    for (int s = 0; s < kSamples; ++s) {
      StreamTime end = kFirstEnd + static_cast<StreamTime>(s) * kStep;
      CompositeBreakdown bd;
      auto exec = storm.ExecuteContinuous(q, end, &bd);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      sw.Add(exec->latency_ms());
      sw_stream.Add(bd.stream_ms);
      sw_store.Add(bd.store_ms);
    }

    Histogram sp = MeasureEngine(
        [&](StreamTime end) { return spark.ExecuteContinuous(q, end); }, kFirstEnd,
        kStep, kSamples);

    table.AddRow({"L" + std::to_string(i), TablePrinter::Num(ws.Median()),
                  TablePrinter::Num(sw.Median()),
                  TablePrinter::Num(sw_stream.Median()),
                  touches_store ? TablePrinter::Num(sw_store.Median()) : "-",
                  TablePrinter::Num(sp.Median(), 0)});
    ws_all.push_back(ws.Median());
    sw_all.push_back(sw.Median());
    sp_all.push_back(sp.Median());
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(ws_all)),
                TablePrinter::Num(GeometricMeanOf(sw_all)), "-", "-",
                TablePrinter::Num(GeometricMeanOf(sp_all), 0)});
  table.Print();
  std::cout << "\nspeedup (Geo.M): vs Storm+Wukong = "
            << TablePrinter::Num(GeometricMeanOf(sw_all) / GeometricMeanOf(ws_all), 1)
            << "x, vs Spark Streaming = "
            << TablePrinter::Num(GeometricMeanOf(sp_all) / GeometricMeanOf(ws_all), 0)
            << "x\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
