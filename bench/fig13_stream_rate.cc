// Fig. 13: latency of LSBench queries as the stream rate scales x1/4 .. x4,
// plus the adaptive re-planning gate (§5.14): a mid-run rate step where the
// statically-planned cluster cliffs and the adaptive one re-plans its way out.
//
// Part 1 (paper shape): group (I) (L1-L3) is flat — selective queries produce
// fixed-size results regardless of window volume; group (II) (L4-L6) grows
// with the rate since their result sizes track the window contents, yet
// stays low (< ~16ms at x4 in the paper).
//
// Part 2 (gate, run with --gate-only to skip part 1): twin clusters —
// identical LSBench feeds, one with adaptive re-planning enabled — register a
// planner-cliff query whose static first plan walks the sparse GPS window
// early (cheap at x1). After an x8 rate step the window expansion fans out
// ~x8 and every downstream join pays it; the adaptive cluster detects the
// rate drift, re-synthesizes the plan from observed fan-outs (stored
// expansions first, window last) behind the shadow parity gate, and holds
// p99. Self-gating: exits non-zero unless the static plan degrades >= 2x
// while adaptive p99 stays within 2x of its pre-step value, with at least
// one parity-gated cutover — the acceptance bar CI enforces.

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void RunSweep() {
  PrintHeader("Fig. 13: latency (ms) vs stream rate, LSBench on 8 nodes",
              NetworkModel{});

  std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<std::vector<double>> medians(LsBench::kNumContinuous);

  for (double scale : scales) {
    LsBenchConfig config;
    config.users = 4000;
    config.rate_scale = scale;
    LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
    for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
      Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
      auto handle = env.cluster->RegisterContinuousParsed(q);
      medians[static_cast<size_t>(i - 1)].push_back(
          MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep, kSamples)
              .Median());
    }
  }

  TablePrinter table(
      {"query", "x1/4", "x1/2", "x1", "x2", "x4", "growth x1/4 -> x4"});
  for (int i = 0; i < LsBench::kNumContinuous; ++i) {
    const auto& m = medians[static_cast<size_t>(i)];
    std::vector<std::string> row = {"L" + std::to_string(i + 1)};
    for (double v : m) {
      row.push_back(TablePrinter::Num(v, 3));
    }
    row.push_back(TablePrinter::Num(m.back() / m.front(), 2) + "x");
    table.AddRow(row);
  }
  table.Print();
  std::cout << "\nbase rate x1 = 1335 tuples/s across the five streams "
               "(PO:POL:PH:PHL:GPS = 10:86:10:7.5:20, as in the paper)\n";
}

// --- Part 2: the adaptive re-planning gate (§5.14). -----------------------

constexpr double kStepScale = 8.0;
constexpr int kGateSamples = 20;
constexpr int kWarmupTriggers = 5;
constexpr StreamTime kPreFeedTo = 3500;    // Phase A: x1 rates.
constexpr StreamTime kSettleFeedTo = 4500; // Drift detection + cutover room.
constexpr StreamTime kPostFeedTo = 6500;   // Phase B: x8 rates, measured.

LsBenchConfig GateConfig() {
  LsBenchConfig config;
  // Few users so the root's followees (Zipf celebrities) carry most of the
  // GPS window, and a heavy GPS rate so the window-early plan's per-trigger
  // work is dominated by window rows rather than fixed trigger overhead —
  // the x8 step must show up as ~x8 latency on the static cluster, not
  // disappear into measurement noise. The static window estimate ranks by
  // window *tuple count*, so the first plan only stays window-early while
  // the x1 window (gps_rate tuples over RANGE 1s) is smaller than the
  // stored ab seed population — that is what the inflated photo count buys.
  config.users = 256;
  config.avg_follows = 16;
  config.initial_photos_per_user = 32;
  config.gps_rate = 6000.0;
  return config;
}

// The planner-cliff query. Static estimates cap bound-variable expansions by
// source sparsity, so at x1 the GPS window (a couple hundred tuples) ranks
// cheaper than the `ab` expansion (hundreds of stored album edges) and the
// first plan walks the window right after the constant root — the ab scan
// downstream then runs over the window fan-out, which the rate step scales
// x8. The `?F ab ?A` expansion is what separates the plans: users are never
// subjects of ab edges (only photos are), so its *observed* fan-out is
// exactly zero and the re-synthesized candidate runs it before the window —
// post-cutover triggers expand the window over an empty table and the
// trigger cost goes rate-insensitive, while the static plan keeps paying x8.
// (Content chains like po/ht are useless here: streamed posts persist, so
// their observed stored fan-outs grow with the rate and never rank below the
// window.) The result is empty under both plans — the shadow parity check
// still has to prove that. The LIMIT keeps the registration delta-
// ineligible: it re-executes cold every trigger, which is exactly the regime
// where plan quality is paid in full (the delta cache would otherwise
// amortize the stored prefix and mask the cliff).
std::string CliffQuery(size_t users) {
  const std::string user = "User" + std::to_string(users - 1);
  return "REGISTER QUERY RATE_CLIFF AS SELECT ?F ?X ?A\n"
         "FROM STREAM <GPS_Stream> [RANGE 1s STEP 100ms]\n"
         "FROM <X-Lab>\n"
         "WHERE { GRAPH <X-Lab> { " + user + " fo ?F }\n"
         "        GRAPH <GPS_Stream> { ?F ga ?X }\n"
         "        GRAPH <X-Lab> { ?F ab ?A }\n"
         "} LIMIT 1000000";
}

struct GatePlans {
  LsEnvironment env;
  Cluster::ContinuousHandle handle = 0;
  Histogram pre, post;
};

GatePlans MakeGateCluster(bool adaptive) {
  ClusterConfig cc;
  if (adaptive) {
    cc.replan.enabled = true;
    // Drift is one-shot per shift: a same-order candidate adopts the fresh
    // snapshot as the new baseline. Firing the instant the trailing rate
    // crosses 2x would re-plan from fan-out EWMAs still trained on x1
    // windows and synthesize the same order, burning the trigger. 6x is
    // reached ~350ms after the x8 step — three to four mixed windows in,
    // when the observed window fan-out has decisively overtaken the stored
    // po fan-out and the candidate actually flips.
    cc.replan.drift_factor = 6.0;
    cc.replan.min_triggers_between = 2;
    cc.replan.rate_window_ms = 500;
  }
  GatePlans g{LsEnvironment::Create(/*nodes=*/1, GateConfig(), kPreFeedTo, cc),
              /*handle=*/0, /*pre=*/{}, /*post=*/{}};
  Query q = MustParse(CliffQuery(GateConfig().users), g.env.strings.get());
  auto handle = g.env.cluster->RegisterContinuousParsed(q);
  if (!handle.ok()) {
    std::cerr << "cliff registration failed: " << handle.status().ToString()
              << "\n";
    std::abort();
  }
  g.handle = *handle;
  return g;
}

void FeedOrDie(LsEnvironment* env, StreamTime from, StreamTime to) {
  Status s = env->bench->FeedInterval(from, to);
  if (!s.ok()) {
    std::cerr << "feed failed: " << s.ToString() << "\n";
    std::abort();
  }
}

// Returns 0 when the gate clears.
int RunGate(const std::string& json_path) {
  PrintHeader(
      "Fig. 13 addendum: adaptive re-planning vs a mid-run x8 rate step",
      NetworkModel{});

  GatePlans plans[2] = {MakeGateCluster(/*adaptive=*/false),
                        MakeGateCluster(/*adaptive=*/true)};
  const char* names[2] = {"static", "adaptive"};

  for (GatePlans& g : plans) {
    // Warmup (discarded): first triggers pay plan synthesis and cold-cache
    // costs that would otherwise inflate the pre-step p99 tail.
    MeasureContinuous(g.env.cluster.get(), g.handle,
                      kPreFeedTo - (kGateSamples + kWarmupTriggers) * kStep +
                          kStep,
                      kStep, kWarmupTriggers);
    // Phase A (x1): measured pre-step triggers; on the adaptive cluster these
    // also train the fan-out EWMAs the candidate plan will be built from.
    g.pre = MeasureContinuous(g.env.cluster.get(), g.handle,
                              kPreFeedTo - kGateSamples * kStep + kStep, kStep,
                              kGateSamples);
    // Rate step + settle: drift is detected and the cutover happens inside
    // the settle triggers, so neither the shadow parity executions nor the
    // mixed-rate boundary windows land in the measured phase B.
    g.env.bench->SetRateScale(kStepScale);
    FeedOrDie(&g.env, kPreFeedTo, kSettleFeedTo);
    MeasureContinuous(g.env.cluster.get(), g.handle, kPreFeedTo + kStep, kStep,
                      static_cast<int>((kSettleFeedTo - kPreFeedTo) / kStep));
    // Phase B (x8): measured post-step triggers.
    FeedOrDie(&g.env, kSettleFeedTo, kPostFeedTo);
    g.post = MeasureContinuous(g.env.cluster.get(), g.handle,
                               kSettleFeedTo + kStep, kStep,
                               static_cast<int>((kPostFeedTo - kSettleFeedTo) / kStep));
  }

  const double static_deg =
      plans[0].post.Percentile(99) / plans[0].pre.Percentile(99);
  const double adaptive_hold =
      plans[1].post.Percentile(99) / plans[1].pre.Percentile(99);
  const Cluster::ReplanStats rs = plans[1].env.cluster->replan_stats();

  TablePrinter table({"plan", "pre p50", "pre p99", "post p50", "post p99",
                      "post/pre p99"});
  for (int i = 0; i < 2; ++i) {
    table.AddRow({names[i], TablePrinter::Num(plans[i].pre.Median(), 4),
                  TablePrinter::Num(plans[i].pre.Percentile(99), 4),
                  TablePrinter::Num(plans[i].post.Median(), 4),
                  TablePrinter::Num(plans[i].post.Percentile(99), 4),
                  TablePrinter::Num(
                      plans[i].post.Percentile(99) / plans[i].pre.Percentile(99),
                      2) + "x"});
  }
  table.Print();
  for (int i = 0; i < 2; ++i) {
    std::cout << "\n" << names[i] << " final plan (pattern order, v"
              << plans[i].env.cluster->PlanVersionOf(plans[i].handle) << "):";
    for (int p : plans[i].env.cluster->ContinuousPlanOf(plans[i].handle)) {
      std::cout << " " << p;
    }
  }
  std::cout << "\nreplan counters (adaptive): checks=" << rs.checks
            << " drift_triggers=" << rs.drift_triggers
            << " cutovers=" << rs.cutovers
            << " parity_failures=" << rs.parity_failures
            << " budget_overruns=" << rs.budget_overruns << "\n";

  BenchArtifact artifact("fig13_stream_rate");
  for (int i = 0; i < 2; ++i) {
    artifact.RecordLatencies("bench_latency_ms",
                             {{"plan", names[i]}, {"phase", "pre"}},
                             plans[i].pre);
    artifact.RecordLatencies("bench_latency_ms",
                             {{"plan", names[i]}, {"phase", "post"}},
                             plans[i].post);
  }
  artifact.SetValue("bench_rate_step_scale", {}, kStepScale);
  artifact.SetValue("bench_static_p99_degradation", {}, static_deg);
  artifact.SetValue("bench_adaptive_p99_hold", {}, adaptive_hold);
  artifact.AddCount("bench_replan_checks", {}, rs.checks);
  artifact.AddCount("bench_replan_drift_triggers", {}, rs.drift_triggers);
  artifact.AddCount("bench_replan_cutovers", {}, rs.cutovers);
  artifact.AddCount("bench_replan_parity_failures", {}, rs.parity_failures);
  artifact.Write(json_path);

  int failures = 0;
  if (static_deg < 2.0) {
    std::cerr << "GATE: static plan degraded only "
              << TablePrinter::Num(static_deg, 2)
              << "x p99 after the step (need >= 2x for the cliff to be real)\n";
    ++failures;
  }
  if (adaptive_hold > 2.0) {
    std::cerr << "GATE: adaptive p99 moved " << TablePrinter::Num(adaptive_hold, 2)
              << "x after the step (must hold within 2x of pre-step)\n";
    ++failures;
  }
  if (rs.cutovers < 1) {
    std::cerr << "GATE: adaptive cluster never cut over (cutovers="
              << rs.cutovers << ")\n";
    ++failures;
  }
  if (rs.parity_failures > 0) {
    std::cerr << "GATE: parity failures during cutover: " << rs.parity_failures
              << "\n";
    ++failures;
  }
  if (failures == 0) {
    std::cout << "\ngate: PASS — static p99 x"
              << TablePrinter::Num(static_deg, 2) << ", adaptive p99 x"
              << TablePrinter::Num(adaptive_hold, 2) << " across the step, "
              << rs.cutovers << " parity-gated cutover(s)\n";
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  if (!wukongs::bench::HasFlag(argc, argv, "--gate-only")) {
    wukongs::bench::RunSweep();
    std::cout << "\n";
  }
  return wukongs::bench::RunGate(wukongs::bench::JsonOutPath(argc, argv));
}
