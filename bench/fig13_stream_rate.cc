// Fig. 13: latency of LSBench queries as the stream rate scales x1/4 .. x4.
//
// Paper shape: group (I) (L1-L3) is flat — selective queries produce
// fixed-size results regardless of window volume; group (II) (L4-L6) grows
// with the rate since their result sizes track the window contents, yet
// stays low (< ~16ms at x4 in the paper).

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void Run() {
  PrintHeader("Fig. 13: latency (ms) vs stream rate, LSBench on 8 nodes",
              NetworkModel{});

  std::vector<double> scales = {0.25, 0.5, 1.0, 2.0, 4.0};
  std::vector<std::vector<double>> medians(LsBench::kNumContinuous);

  for (double scale : scales) {
    LsBenchConfig config;
    config.users = 4000;
    config.rate_scale = scale;
    LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
    for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
      Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
      auto handle = env.cluster->RegisterContinuousParsed(q);
      medians[static_cast<size_t>(i - 1)].push_back(
          MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep, kSamples)
              .Median());
    }
  }

  TablePrinter table(
      {"query", "x1/4", "x1/2", "x1", "x2", "x4", "growth x1/4 -> x4"});
  for (int i = 0; i < LsBench::kNumContinuous; ++i) {
    const auto& m = medians[static_cast<size_t>(i)];
    std::vector<std::string> row = {"L" + std::to_string(i + 1)};
    for (double v : m) {
      row.push_back(TablePrinter::Num(v, 3));
    }
    row.push_back(TablePrinter::Num(m.back() / m.front(), 2) + "x");
    table.AddRow(row);
  }
  table.Print();
  std::cout << "\nbase rate x1 = 1335 tuples/s across the five streams "
               "(PO:POL:PH:PHL:GPS = 10:86:10:7.5:20, as in the paper)\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
