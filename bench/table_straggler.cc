// Tail robustness under gray failure (DESIGN.md §5.11): one node serving at
// 10x its normal latency — up, heartbeating, answering, just slowly — and
// what that does to fork-join one-shot tails.
//
// Four configurations over identical data and an identical query mix:
//   unloaded     no gray failure (the baseline tail),
//   unmitigated  gray node, no hedging, no straggler detection: every
//                fork-join round's barrier waits for the slowest member,
//                so the whole distribution shifts by the gray factor (the
//                cliff phi-accrual cannot see — heartbeats keep arriving),
//   hedge-only   service-time histograms arm a p95-based hedge delay; a
//                round blowing past it issues a backup sub-request to the
//                fastest member and the first response wins (exactly-once
//                via HedgeDedup),
//   mitigated    hedging + straggler detector: the EWMA-vs-peer-median
//                detector demotes the gray node out of the fan-out after a
//                short streak, so steady-state rounds never touch it.
//
// Acceptance (ISSUE): with one node at 10x, mitigated p99 stays <= 2.5x the
// unloaded p99 while unmitigated shows the cliff.

#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault_injector.h"

namespace wukongs {
namespace bench {
namespace {

constexpr uint32_t kNodes = 4;
constexpr NodeId kGrayNode = 2;
constexpr double kGrayFactor = 10.0;
constexpr int kSamples = 120;
constexpr double kAcceptanceRatio = 2.5;

const char* kQueryPool[] = {
    "SELECT ?X ?Y WHERE { ?X p0 ?Y }",
    "SELECT ?X ?Y ?Z WHERE { ?X p0 ?Y . ?Y p1 ?Z }",
    "SELECT ?X ?Z ?W WHERE { ?X p0 ?Y . ?Y p1 ?Z . ?Z p0 ?W }",
};

std::vector<Triple> MakeBase(StringServer* strings) {
  Rng rng(0x57a991e5ull);
  auto ent = [&](uint64_t i) {
    return strings->InternVertex("e" + std::to_string(i));
  };
  std::vector<Triple> base;
  for (int i = 0; i < 240; ++i) {
    base.push_back({ent(rng.Uniform(0, 29)),
                    strings->InternPredicate(i % 2 == 0 ? "p0" : "p1"),
                    ent(rng.Uniform(0, 29))});
  }
  return base;
}

struct ConfigResult {
  Histogram latency;
  uint64_t hedges_issued = 0;
  uint64_t hedges_won = 0;
  uint64_t demotions = 0;
  bool gray_demoted = false;
};

// Builds the cluster, warms the health loop through the gray window, and
// measures the one-shot mix. `injector` may be null (unloaded baseline).
ConfigResult MeasureConfig(FaultInjector* injector, bool hedge,
                           bool straggler) {
  ClusterConfig config;
  config.nodes = kNodes;
  config.transport = Transport::kTcp;  // Fork-join rounds pay message costs.
  config.force_fork_join = true;
  config.fault_injector = injector;
  config.hedge.enabled = hedge;
  config.hedge.min_samples = 4;
  config.straggler.enabled = hedge || straggler;  // Probes feed histograms.
  config.straggler.min_samples = 4;
  config.straggler.demote_after = straggler ? 2 : 1 << 20;
  config.straggler.promote_after = 3;
  Cluster cluster(config);
  cluster.LoadBase(MakeBase(cluster.strings()));

  // Health loop: histograms warm before the gray window opens at t=150,
  // then the detector (when armed) sees the slowdown and settles. Queries
  // run at t=400, inside the window — steady gray state.
  for (StreamTime t = 10; t <= 400; t += 10) {
    cluster.TickHealth(t);
  }

  ConfigResult result;
  for (int i = 0; i < kSamples; ++i) {
    const char* text = kQueryPool[i % 3];
    NodeId home = static_cast<NodeId>(i) % kNodes;
    auto exec = cluster.OneShot(text, home);
    if (!exec.ok()) {
      std::cerr << "one-shot failed: " << exec.status().ToString() << "\n";
      std::abort();
    }
    result.latency.Add(exec->latency_ms());
    result.hedges_issued += exec->hedges_issued;
    result.hedges_won += exec->hedges_won;
  }
  if (const StragglerDetector* detector = cluster.straggler_detector()) {
    result.demotions = detector->stats().demotions;
  }
  result.gray_demoted = cluster.StragglerSlow(kGrayNode);
  return result;
}

void Run(int argc, char** argv) {
  PrintHeader("Gray failure: hedged fork-join + straggler quarantine vs the tail cliff",
              NetworkModel{});
  std::cout << kNodes << " nodes (TCP fork-join), node " << kGrayNode
            << " serving at " << kGrayFactor << "x, " << kSamples
            << " one-shot queries per config\n\n";

  FaultSchedule schedule;
  schedule.gray_failures.push_back(
      {kGrayNode, /*from_ms=*/150, /*until_ms=*/100000000, kGrayFactor});

  struct Row {
    const char* name;
    ConfigResult result;
  };
  std::vector<Row> rows;
  rows.push_back({"unloaded", MeasureConfig(nullptr, false, false)});
  {
    FaultInjector injector(schedule);
    rows.push_back({"unmitigated", MeasureConfig(&injector, false, false)});
  }
  {
    FaultInjector injector(schedule);
    rows.push_back({"hedge-only", MeasureConfig(&injector, true, false)});
  }
  {
    FaultInjector injector(schedule);
    rows.push_back({"mitigated", MeasureConfig(&injector, true, true)});
  }

  const double unloaded_p99 = rows[0].result.latency.Percentile(99.0);
  BenchArtifact artifact("table_straggler");
  TablePrinter table({"config", "p50 (ms)", "p99 (ms)", "p99/unloaded",
                      "hedges", "hedge wins", "gray demoted"});
  for (const Row& row : rows) {
    const ConfigResult& r = row.result;
    double p99 = r.latency.Percentile(99.0);
    table.AddRow({row.name, TablePrinter::Num(r.latency.Median(), 4),
                  TablePrinter::Num(p99, 4),
                  TablePrinter::Num(p99 / unloaded_p99, 2),
                  std::to_string(r.hedges_issued),
                  std::to_string(r.hedges_won),
                  r.gray_demoted ? "yes" : "no"});
    MetricLabels labels = {{"config", row.name}};
    artifact.RecordLatencies("bench_oneshot_latency_ms", labels, r.latency);
    artifact.SetValue("bench_p99_over_unloaded", labels, p99 / unloaded_p99);
    artifact.AddCount("bench_hedges_issued", labels, r.hedges_issued);
    artifact.AddCount("bench_hedges_won", labels, r.hedges_won);
    artifact.AddCount("bench_straggler_demotions", labels, r.demotions);
  }
  table.Print();

  const double unmitigated_ratio =
      rows[1].result.latency.Percentile(99.0) / unloaded_p99;
  const double mitigated_ratio =
      rows[3].result.latency.Percentile(99.0) / unloaded_p99;
  artifact.SetValue("bench_acceptance_ratio", {}, mitigated_ratio);
  artifact.Write(JsonOutPath(argc, argv));

  std::cout << "\n(heartbeats keep flowing during a gray failure, so "
               "phi-accrual never fires; the service-time EWMA detector and "
               "the p95 hedge delay are what catch it)\n";
  std::cout << "acceptance: mitigated p99 = " << TablePrinter::Num(mitigated_ratio, 2)
            << "x unloaded (target <= " << kAcceptanceRatio
            << "x; unmitigated cliff = " << TablePrinter::Num(unmitigated_ratio, 2)
            << "x) -> "
            << (mitigated_ratio <= kAcceptanceRatio ? "PASS" : "FAIL") << "\n";
  if (mitigated_ratio > kAcceptanceRatio) {
    std::abort();
  }
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(argc, argv);
  return 0;
}
