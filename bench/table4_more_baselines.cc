// Table 4: further 8-node comparisons — Heron+Wukong (faster scheduler,
// same composite bottlenecks), Structured Streaming (unbounded tables;
// L4-L6 unsupported, printed as "x"), and Wukong/Ext (timestamps inline,
// no stream index, 1.6x-4.4x slower than Wukong+S).

#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/spark_like.h"
#include "src/baselines/storm_wukong.h"
#include "src/baselines/wukong_ext.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 8000;
constexpr StreamTime kFirstEnd = 6000;
constexpr StreamTime kStep = 100;

void Run() {
  LsBenchConfig config;
  config.users = 2000;
  // Deep per-user history magnifies what the stream index saves: extracting
  // a window in Wukong+S jumps to per-batch spans, while Wukong/Ext scans
  // whole values — historical edges and all — testing inline timestamps.
  config.initial_posts_per_user = 50;
  config.initial_photos_per_user = 20;
  config.rate_scale = 2.0;
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
  PrintHeader(
      "Table 4: further comparison (ms) on 8 nodes: Heron+Wukong, Structured "
      "Streaming, Wukong/Ext",
      env.cluster->config().network);
  std::cout << "samples/query: " << kSamples << "\n\n";

  ClusterConfig static_config;
  static_config.nodes = 8;
  Cluster static_store(static_config, env.strings.get());
  static_store.LoadBase(env.bench->initial_graph());

  StormWukongConfig heron_config;
  heron_config.sched_ns = heron_config.network.heron_sched_ns;
  StormWukong heron(&static_store, heron_config);
  env.FillBaselineStreams(heron.streams());

  SparkConfig ss_config;
  ss_config.structured = true;
  SparkEngine structured(env.strings.get(), ss_config);
  structured.LoadStored(env.bench->initial_graph());
  env.FillBaselineStreams(structured.streams());

  WukongExt ext(env.strings.get(), 8);
  ext.LoadStored(env.bench->initial_graph());
  for (const auto& [name, tuples] : env.captured) {
    ext.Inject(tuples);
  }

  TablePrinter table({"LSBench", "Wukong+S", "Heron+Wukong All", "(Heron)",
                      "(Wukong)", "Structured Streaming", "Wukong/Ext"});
  std::vector<double> ws_all, heron_all, ext_all;

  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
    bool touches_store = false;
    for (const TriplePattern& p : q.patterns) {
      touches_store |= (p.graph == kGraphStored);
    }

    auto handle = env.cluster->RegisterContinuousParsed(q);
    Histogram ws =
        MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep, kSamples);

    Histogram hn, hn_stream, hn_store;
    for (int s = 0; s < kSamples; ++s) {
      StreamTime end = kFirstEnd + static_cast<StreamTime>(s) * kStep;
      CompositeBreakdown bd;
      auto exec = heron.ExecuteContinuous(q, end, &bd);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      hn.Add(exec->latency_ms());
      hn_stream.Add(bd.stream_ms);
      hn_store.Add(bd.store_ms);
    }

    bool ss_unsupported = false;
    Histogram ss = MeasureEngine(
        [&](StreamTime end) { return structured.ExecuteContinuous(q, end); },
        kFirstEnd, kStep, kSamples, &ss_unsupported);

    Histogram ex = MeasureEngine(
        [&](StreamTime end) { return ext.ExecuteContinuous(q, end); }, kFirstEnd,
        kStep, kSamples);

    table.AddRow({"L" + std::to_string(i), TablePrinter::Num(ws.Median()),
                  TablePrinter::Num(hn.Median()),
                  TablePrinter::Num(hn_stream.Median()),
                  touches_store ? TablePrinter::Num(hn_store.Median()) : "-",
                  ss_unsupported ? "x" : TablePrinter::Num(ss.Median(), 0),
                  TablePrinter::Num(ex.Median())});
    ws_all.push_back(ws.Median());
    heron_all.push_back(hn.Median());
    ext_all.push_back(ex.Median());
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(ws_all)),
                TablePrinter::Num(GeometricMeanOf(heron_all)), "-", "-", "-",
                TablePrinter::Num(GeometricMeanOf(ext_all))});
  table.Print();
  std::cout << "\nWukong/Ext slowdown vs Wukong+S (Geo.M): "
            << TablePrinter::Num(GeometricMeanOf(ext_all) / GeometricMeanOf(ws_all),
                                 1)
            << "x\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
