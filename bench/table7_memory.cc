// Table 7 + §6.7: memory consumption.
//
// Part 1 (Table 7): per-stream memory of the stream index vs the raw
// streaming data per minute. Paper shape: the index costs ~9.5% of the raw
// data overall (more for streams with many distinct keys, ~1.6% for PO-L
// whose likes concentrate on few posts); GPS (timing) builds no stream index
// — its data lives in the transient store.
//
// Part 2 (§6.7): bounded snapshot scalarization. Per-key scalar snapshot
// markers vs the strawman that stamps every streamed edge with a full vector
// timestamp. Paper shape: scalarization keeps the footprint flat as streams
// and reserved snapshots grow; the strawman adds GBs.

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr StreamTime kFeedTo = 10000;  // 10s of streaming, scaled to MB/min.

void Run() {
  LsBenchConfig config;
  config.users = 4000;
  // Run at the paper's full rates (133K tuples/s aggregate) so a 100ms batch
  // carries 1K-8.6K tuples: the stream index coalesces the many appends a
  // batch makes to the same key into single spans, which is where its
  // memory advantage over raw data comes from.
  config.rate_scale = 100.0;
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
  PrintHeader("Table 7: stream-index memory vs raw streaming data (per minute)",
              env.cluster->config().network);

  struct Row {
    const char* label;
    StreamId stream;
  };
  std::vector<Row> rows = {
      {"PO", env.bench->po_stream()},   {"PO-L", env.bench->pol_stream()},
      {"PH", env.bench->ph_stream()},   {"PH-L", env.bench->phl_stream()},
      {"GPS", env.bench->gps_stream()},
  };

  TablePrinter table({"LSBench", "data (MB/min)", "index (MB/min)", "ratio"});
  double total_data = 0.0;
  double total_index = 0.0;
  // Raw streaming data arrives as serialized RDF text (subject, predicate,
  // object IRIs plus a timestamp) — ~80 bytes per tuple, which is what the
  // paper's MB/min accounting measures.
  constexpr double kTupleBytes = 80.0;
  for (const Row& row : rows) {
    auto profile = env.cluster->injection_profile(row.stream);
    double scale_to_minute = 60000.0 / static_cast<double>(kFeedTo);
    double data_mb =
        static_cast<double>(profile.tuples) * kTupleBytes / 1e6 * scale_to_minute;
    double index_mb = static_cast<double>(env.cluster->StreamIndexBytes(row.stream)) /
                      1e6 * scale_to_minute;
    bool timing_only = row.stream == env.bench->gps_stream();
    total_data += data_mb;
    total_index += index_mb;
    table.AddRow(
        {row.label, TablePrinter::Num(data_mb), TablePrinter::Num(index_mb),
         timing_only ? "- (transient)"
                     : TablePrinter::Num(index_mb / data_mb * 100, 1) + "%"});
  }
  table.AddRow({"Total", TablePrinter::Num(total_data),
                TablePrinter::Num(total_index),
                TablePrinter::Num(total_index / total_data * 100, 1) + "%"});
  table.Print();

  // --- Part 2: bounded snapshot scalarization (§6.7). ---
  std::cout << "\n--- bounded snapshot scalarization (SS 6.7) ---\n";
  auto mem = env.cluster->Memory();
  size_t streams = 5;
  // Strawman: every streamed edge carries a vector timestamp over the
  // registered streams plus a per-interval pointer.
  size_t vts_bytes_per_edge = streams * sizeof(BatchSeq) + 12;
  double with_mb = static_cast<double>(mem.store_bytes) / 1e6;
  double meta_mb = static_cast<double>(mem.snapshot_meta_bytes) / 1e6;
  double without_mb =
      with_mb + static_cast<double>(mem.stream_appended_edges * vts_bytes_per_edge) /
                    1e6;
  TablePrinter snap({"representation", "store (MB)", "snapshot metadata (MB)"});
  snap.AddRow({"bounded scalarization (2 reserved SNs)", TablePrinter::Num(with_mb),
               TablePrinter::Num(meta_mb, 3)});
  snap.AddRow({"per-edge vector timestamps (strawman)",
               TablePrinter::Num(without_mb),
               TablePrinter::Num(without_mb - with_mb)});
  snap.Print();
  std::cout << "\nscalarization saves "
            << TablePrinter::Num(without_mb - with_mb, 1) << " MB ("
            << TablePrinter::Num((without_mb - with_mb) / without_mb * 100, 1)
            << "% of the strawman footprint); registering more streams only "
               "widens plan entries at the Coordinator, not per-key state\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
