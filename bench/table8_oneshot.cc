// Table 8: one-shot (SPARQL) query performance — the evolving store must not
// slow down classic queries.
//
// Configurations, as in the paper:
//   * Wukong        — the base store, static data only;
//   * Wukong+S/Off  — streams enabled and absorbed, no continuous queries;
//   * Wukong+S/On   — additionally serving continuous queries concurrently.
// Paper shape: /Off loses <5% to Wukong (snapshot checks), /On another ~5%
// (shared store, separate cores).

#include <vector>

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;

std::vector<double> MeasureOneShots(Cluster* cluster, LsBench* bench,
                                    StringServer* strings,
                                    Cluster::ContinuousHandle* interfering,
                                    StreamTime interfere_end) {
  std::vector<double> medians;
  for (int i = 1; i <= LsBench::kNumOneShot; ++i) {
    Query q = MustParse(bench->OneShotQueryText(i), strings);
    Histogram h;
    for (int s = 0; s < kSamples; ++s) {
      if (interfering != nullptr) {
        // Continuous queries share the store with one-shot execution
        // (dedicated cores in the paper; interleaved here, which also
        // captures the cache interference).
        auto cexec = cluster->ExecuteContinuousAt(*interfering, interfere_end);
        if (!cexec.ok()) {
          std::cerr << cexec.status().ToString() << "\n";
          std::abort();
        }
      }
      auto exec = cluster->OneShotParsed(q);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      h.Add(exec->latency_ms());
    }
    medians.push_back(h.Median());
  }
  return medians;
}

void Run() {
  PrintHeader("Table 8: one-shot query latency (ms) on 8 nodes", NetworkModel{});

  LsBenchConfig config;
  config.users = 4000;

  // Wukong: static store, no streams ever.
  StringServer strings_a;
  ClusterConfig cc;
  cc.nodes = 8;
  Cluster wukong(cc, &strings_a);
  LsBench bench_a(&wukong, config);
  if (!bench_a.Setup().ok()) {
    std::abort();
  }
  std::vector<double> base =
      MeasureOneShots(&wukong, &bench_a, &strings_a, nullptr, 0);

  // Wukong+S with streams flowing (/Off), then with continuous load (/On).
  // One second of streaming: enough to exercise snapshots and injection, and
  // like the paper (100ms of stream vs a big base) it only slightly grows
  // the data the one-shot queries run over.
  LsEnvironment env = LsEnvironment::Create(8, config, /*feed_to_ms=*/1000);
  std::vector<double> off =
      MeasureOneShots(env.cluster.get(), env.bench.get(), env.strings.get(),
                      nullptr, 0);

  Query cq = MustParse(env.bench->ContinuousQueryText(3), env.strings.get());
  auto handle = env.cluster->RegisterContinuousParsed(cq);
  std::vector<double> on = MeasureOneShots(env.cluster.get(), env.bench.get(),
                                           env.strings.get(), &*handle, 1000);

  TablePrinter table(
      {"LSBench", "Wukong", "Wukong+S/Off", "Wukong+S/On", "/Off vs Wukong"});
  for (int i = 0; i < LsBench::kNumOneShot; ++i) {
    size_t idx = static_cast<size_t>(i);
    table.AddRow({"S" + std::to_string(i + 1), TablePrinter::Num(base[idx]),
                  TablePrinter::Num(off[idx]), TablePrinter::Num(on[idx]),
                  TablePrinter::Num(off[idx] / base[idx], 2) + "x"});
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(base)),
                TablePrinter::Num(GeometricMeanOf(off)),
                TablePrinter::Num(GeometricMeanOf(on)),
                TablePrinter::Num(GeometricMeanOf(off) / GeometricMeanOf(base), 2) +
                    "x"});
  table.Print();
  std::cout << "\nnote: /Off runs on *more* data than Wukong (the absorbed "
               "stream facts), so slight growth is expected; the paper bounds "
               "the overhead at ~5% per configuration\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
