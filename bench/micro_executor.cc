// Executor microbench (DESIGN.md §5.13): columnar vs row pipeline.
//
// Measures the full intra-query pipeline (patterns -> filters -> projection)
// over an in-memory neighbor source on the paper's group-II *non-selective*
// recompute shapes — L4/L5/L6 analogues whose first pattern binds nothing, so
// execution starts from an index scan and every later step is a bound
// expansion over tens of thousands of intermediate rows. This is exactly the
// regime the columnar refactor targets: the row pipeline pays a malloc'd
// vector append per intermediate row, the columnar one runs per-chunk batched
// gathers over arena-backed id columns.
//
// The bench is a gate, not just a report: it verifies byte-identical results
// between the two pipelines and fails unless the columnar recompute p50
// (patterns + filters — the per-window work of a continuous query) is at
// least 2x faster than the row pipeline's on every shape. Full-pipeline
// latencies (including the shared row-materializing projection) are recorded
// alongside for the regression gate. `--json <path>` writes the artifact
// consumed by scripts/bench_compare.py (p50 CI gate vs BENCH_baseline.json).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/bench_common.h"
#include "src/common/histogram.h"
#include "src/common/latency_model.h"
#include "src/engine/executor.h"

namespace wukongs {
namespace bench {
namespace {

constexpr PredicateId kP1 = 1;  // user -> post
constexpr PredicateId kP2 = 2;  // post -> tag
constexpr PredicateId kP3 = 3;  // tag -> category
constexpr PredicateId kP4 = 4;  // user -> location

// In-memory source with contiguous adjacency, exposing the zero-copy
// NeighborSpan fast path the columnar scan-join uses in production stores.
class SpanSource : public NeighborSource {
 public:
  void Add(VertexId s, PredicateId p, VertexId o) {
    map_[Key(s, p, Dir::kOut)].push_back(o);
    map_[Key(o, p, Dir::kIn)].push_back(s);
  }

  // Index values enumerate distinct endpoints, like the store's index vertex.
  void Finalize() {
    std::unordered_map<Key, std::vector<VertexId>, KeyHash> index;
    for (const auto& [key, vids] : map_) {
      if (!key.is_index()) {
        index[Key(kIndexVertex, key.pid(), key.dir())].push_back(key.vid());
      }
    }
    for (auto& [key, vids] : index) {
      std::sort(vids.begin(), vids.end());
      map_[key] = std::move(vids);
    }
  }

  void GetNeighbors(Key key, std::vector<VertexId>* out) const override {
    auto it = map_.find(key);
    if (it != map_.end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
    }
  }

  size_t EstimateCount(Key key) const override {
    auto it = map_.find(key);
    return it == map_.end() ? 0 : it->second.size();
  }

  const VertexId* NeighborSpan(Key key, size_t* n) const override {
    auto it = map_.find(key);
    if (it == map_.end()) {
      *n = 0;
      return nullptr;
    }
    *n = it->second.size();
    return it->second.data();
  }

 private:
  std::unordered_map<Key, std::vector<VertexId>, KeyHash> map_;
};

// Non-selective means fan-out: the group-II shapes start from an index scan
// and multiply through predicates whose average degree is high, so the join
// is dominated by emitting row blocks, not by anchor lookups.
constexpr VertexId kUsers = 400;
constexpr VertexId kPostsPerUser = 12;
constexpr VertexId kTagsPerPost = 8;
constexpr VertexId kTagPool = 500;

VertexId User(VertexId u) { return 1 + u; }
VertexId Post(VertexId u, VertexId j) {
  return 10'000 + u * kPostsPerUser + j;
}
VertexId Tag(VertexId t) { return 1'000'000 + t; }
VertexId Cat(VertexId c) { return 2'000'000 + c; }
VertexId Loc(VertexId l) { return 3'000'000 + l; }

void BuildGraph(SpanSource* src) {
  for (VertexId u = 0; u < kUsers; ++u) {
    for (VertexId j = 0; j < kPostsPerUser; ++j) {
      VertexId post = Post(u, j);
      src->Add(User(u), kP1, post);
      for (VertexId k = 0; k < kTagsPerPost; ++k) {
        src->Add(post, kP2, Tag((post * kTagsPerPost + k) % kTagPool));
      }
    }
    src->Add(User(u), kP4, Loc(u % 50));
  }
  for (VertexId t = 0; t < kTagPool; ++t) {
    src->Add(Tag(t), kP3, Cat(t % 20));
    src->Add(Tag(t), kP3, Cat(20 + t % 20));
  }
  src->Finalize();
}

TriplePattern Pat(int s, PredicateId p, int o) {
  TriplePattern t;
  t.subject = Term::Variable(s);
  t.predicate = p;
  t.object = Term::Variable(o);
  t.graph = kGraphStored;
  return t;
}

void SelectAll(Query* q) {
  for (size_t v = 0; v < q->var_names.size(); ++v) {
    SelectItem item;
    item.var = static_cast<int>(v);
    q->select.push_back(item);
  }
}

// L4 analogue: 2-hop chain from an unselective seed.
Query MakeL4() {
  Query q;
  q.var_names = {"a", "b", "c"};
  q.patterns = {Pat(0, kP1, 1), Pat(1, kP2, 2)};
  SelectAll(&q);
  return q;
}

// L5 analogue: 3-hop chain.
Query MakeL5() {
  Query q;
  q.var_names = {"a", "b", "c", "d"};
  q.patterns = {Pat(0, kP1, 1), Pat(1, kP2, 2), Pat(2, kP3, 3)};
  SelectAll(&q);
  return q;
}

// L6 analogue: chain plus a second expansion off the seed and a FILTER.
Query MakeL6() {
  Query q;
  q.var_names = {"a", "b", "c", "d"};
  q.patterns = {Pat(0, kP1, 1), Pat(1, kP2, 2), Pat(0, kP4, 3)};
  FilterExpr f;
  f.var = 3;
  f.op = FilterExpr::Op::kNe;
  f.constant = Loc(1);
  q.filters.push_back(f);
  SelectAll(&q);
  return q;
}

bool SameBytes(const QueryResult& a, const QueryResult& b) {
  if (a.rows.size() != b.rows.size()) {
    return false;
  }
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].size() != b.rows[i].size()) {
      return false;
    }
    for (size_t j = 0; j < a.rows[i].size(); ++j) {
      const ResultValue& x = a.rows[i][j];
      const ResultValue& y = b.rows[i][j];
      if (x.is_number != y.is_number ||
          (x.is_number ? x.number != y.number : x.vid != y.vid)) {
        return false;
      }
    }
  }
  return true;
}

QueryResult MustRun(const Query& q, const std::vector<int>& plan,
                    const ExecContext& ctx) {
  auto result = ExecutePipeline(q, plan, ctx);
  if (!result.ok()) {
    std::cerr << "pipeline failed: " << result.status().ToString() << "\n";
    std::abort();
  }
  return std::move(*result);
}

// The gated section: patterns + FILTERs into the binding table. This is what
// a continuous query re-runs per window trigger (delta recompute unions
// cached chunks with freshly recomputed ones before a single projection), so
// it is where the columnar layout must earn its keep. `columnar` selects the
// pipeline; the run aborts if either leg fails.
double RecomputeOnce(const Query& q, const std::vector<int>& plan,
                     const ExecContext& ctx, bool columnar) {
  Stopwatch wall;
  if (columnar) {
    auto table = ExecutePatterns(q, plan, ctx);
    if (table.ok()) {
      Status s = ApplyFilters(q, ctx, &*table);
      if (s.ok()) {
        return wall.ElapsedMs();
      }
    }
  } else {
    auto table = ExecutePatternsRow(q, plan, ctx);
    if (table.ok()) {
      Status s = ApplyFilters(q, ctx, &*table);
      if (s.ok()) {
        return wall.ElapsedMs();
      }
    }
  }
  std::cerr << "recompute failed\n";
  std::abort();
}

struct Latencies {
  Histogram recompute;  // Gated: patterns + filters.
  Histogram pipeline;   // Reported: full query including projection.
};

Latencies Measure(const Query& q, const std::vector<int>& plan,
                  const ExecContext& ctx, int samples) {
  Latencies out;
  for (int i = -3; i < samples; ++i) {  // Three warmup runs.
    double ms = RecomputeOnce(q, plan, ctx, ctx.columnar);
    if (i >= 0) {
      out.recompute.Add(ms);
    }
  }
  for (int i = -3; i < samples; ++i) {
    Stopwatch wall;
    QueryResult r = MustRun(q, plan, ctx);
    double ms = wall.ElapsedMs();
    if (i >= 0) {
      out.pipeline.Add(ms);
    }
  }
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  using namespace wukongs;
  using namespace wukongs::bench;

  const std::string json_path = JsonOutPath(argc, argv);
  BenchArtifact artifact("micro_executor");

  SpanSource src;
  BuildGraph(&src);

  ExecContext row_ctx;
  row_ctx.sources = {&src};
  row_ctx.columnar = false;
  ExecContext col_ctx = row_ctx;
  col_ctx.columnar = true;

  struct Shape {
    const char* name;
    Query q;
  };
  std::vector<Shape> shapes = {
      {"L4", MakeL4()}, {"L5", MakeL5()}, {"L6", MakeL6()}};

  std::cout << "=== micro_executor: columnar vs row pipeline (§5.13) ===\n";
  std::cout << "graph: " << kUsers << " users x " << kPostsPerUser
            << " posts x " << kTagsPerPost
            << " tags; non-selective index-scan seeds\n\n";
  std::cout << "query   rows      recompute p50 row/col (ms)  speedup   "
               "pipeline p50 row/col (ms)\n";

  bool gate_ok = true;
  const int samples = 25;
  for (Shape& s : shapes) {
    // Pattern order is already seed-first; a fixed plan keeps the two
    // pipelines (and future baseline updates) on identical join orders.
    std::vector<int> plan;
    for (size_t i = 0; i < s.q.patterns.size(); ++i) {
      plan.push_back(static_cast<int>(i));
    }

    QueryResult row_result = MustRun(s.q, plan, row_ctx);
    QueryResult col_result = MustRun(s.q, plan, col_ctx);
    if (!SameBytes(row_result, col_result)) {
      std::cerr << s.name << ": columnar and row pipelines disagree ("
                << col_result.rows.size() << " vs " << row_result.rows.size()
                << " rows)\n";
      return 1;
    }

    Latencies row_lat = Measure(s.q, plan, row_ctx, samples);
    Latencies col_lat = Measure(s.q, plan, col_ctx, samples);
    const double row_p50 = row_lat.recompute.Median();
    const double col_p50 = col_lat.recompute.Median();
    const double speedup = col_p50 > 0 ? row_p50 / col_p50 : 0.0;

    std::printf("%-6s  %-8zu  %8.3f / %-8.3f          %5.2fx   %8.3f / %-8.3f\n",
                s.name, row_result.rows.size(), row_p50, col_p50, speedup,
                row_lat.pipeline.Median(), col_lat.pipeline.Median());

    artifact.RecordLatencies("bench_latency_ms",
                             {{"mode", "row"}, {"query", s.name}},
                             row_lat.recompute);
    artifact.RecordLatencies("bench_latency_ms",
                             {{"mode", "columnar"}, {"query", s.name}},
                             col_lat.recompute);
    artifact.RecordLatencies("bench_pipeline_latency_ms",
                             {{"mode", "row"}, {"query", s.name}},
                             row_lat.pipeline);
    artifact.RecordLatencies("bench_pipeline_latency_ms",
                             {{"mode", "columnar"}, {"query", s.name}},
                             col_lat.pipeline);
    artifact.SetValue("bench_speedup_p50", {{"query", s.name}}, speedup);
    artifact.AddCount("bench_result_rows", {{"query", s.name}},
                      row_result.rows.size());

    if (speedup < 2.0) {
      gate_ok = false;
      std::cerr << s.name << ": columnar speedup " << speedup
                << "x is below the 2x gate\n";
    }
  }

  artifact.Write(json_path);
  if (!gate_ok) {
    std::cerr << "FAIL: columnar executor missed the 2x p50 gate\n";
    return 1;
  }
  std::cout << "\nPASS: columnar >= 2x row p50 on every shape, results "
               "byte-identical\n";
  return 0;
}
