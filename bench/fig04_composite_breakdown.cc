// Fig. 4: execution-time breakdown of the running-example continuous query
// (QC) on Storm+Wukong under two query plans.
//
// Paper shape: (a) stream-parts-then-store costs ~100ms with ~39% of time in
// cross-system transfer; (b) joining the stream parts first is even slower
// (~2.4x) because the join lacks the stored data's pruning, and cross-system
// cost rises to ~47%. The integrated engine runs the same query orders of
// magnitude faster.

#include "bench/bench_common.h"
#include "src/baselines/storm_wukong.h"

namespace wukongs {
namespace bench {
namespace {

constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kEnd = 3000;

void Run() {
  LsBenchConfig config;
  config.users = 4000;
  config.rate_scale = 4.0;  // QC in Fig. 4 touches sizable windows.
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/1, config, kFeedTo);
  PrintHeader("Fig. 4: breakdown of QC on Storm+Wukong, two query plans",
              env.cluster->config().network);

  // QC: fresh posts (PO) by people a user follows (stored), liked now (POL).
  // The generic (non-user-rooted) form, like the paper's GP1/GP2/GP3.
  std::string qc_text =
      "REGISTER QUERY QC AS SELECT ?X ?Y ?Z\n"
      "FROM STREAM <PO_Stream> [RANGE 2s STEP 1s]\n"
      "FROM STREAM <POL_Stream> [RANGE 1s STEP 1s]\n"
      "FROM <X-Lab>\n"
      "WHERE { GRAPH <PO_Stream> { ?X po ?Z }\n"
      "        GRAPH <X-Lab> { ?X fo ?Y }\n"
      "        GRAPH <POL_Stream> { ?Y li ?Z } }";
  Query qc = MustParse(qc_text, env.strings.get());

  ClusterConfig static_config;
  static_config.nodes = 1;
  Cluster static_store(static_config, env.strings.get());
  static_store.LoadBase(env.bench->initial_graph());

  TablePrinter table({"plan", "total(ms)", "stream(ms)", "wukong(ms)", "cross(ms)",
                      "CC%", "GPstream tuples", "GPstore tuples", "final"});
  double totals[2] = {0, 0};
  int row = 0;
  for (CompositePlan plan :
       {CompositePlan::kStreamThenStore, CompositePlan::kStreamJoinFirst}) {
    StormWukongConfig sw_config;
    sw_config.plan = plan;
    StormWukong storm(&static_store, sw_config);
    env.FillBaselineStreams(storm.streams());

    CompositeBreakdown bd;
    auto exec = storm.ExecuteContinuous(qc, kEnd, &bd);
    if (!exec.ok()) {
      std::cerr << exec.status().ToString() << "\n";
      std::abort();
    }
    totals[row++] = bd.total_ms();
    table.AddRow({plan == CompositePlan::kStreamThenStore ? "(a) stream->store"
                                                          : "(b) stream-join first",
                  TablePrinter::Num(bd.total_ms()), TablePrinter::Num(bd.stream_ms),
                  TablePrinter::Num(bd.store_ms), TablePrinter::Num(bd.cross_ms),
                  TablePrinter::Num(bd.cross_fraction() * 100, 1),
                  std::to_string(bd.stream_tuples), std::to_string(bd.store_tuples),
                  std::to_string(bd.final_tuples)});
  }
  table.Print();

  // Reference: the integrated engine on the same query.
  auto handle = env.cluster->RegisterContinuousParsed(qc);
  auto exec = env.cluster->ExecuteContinuousAt(*handle, kEnd);
  if (!exec.ok()) {
    std::cerr << exec.status().ToString() << "\n";
    std::abort();
  }
  std::cout << "\nintegrated (Wukong+S) on the same query: "
            << TablePrinter::Num(exec->latency_ms()) << " ms ("
            << exec->result.rows.size() << " results); composite plan (b)/(a) = "
            << TablePrinter::Num(totals[1] / totals[0], 2) << "x\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
