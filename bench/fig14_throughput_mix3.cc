// Fig. 14: throughput of a mixed workload of query classes L1-L3 as the
// cluster grows, and the per-class latency CDF on 8 nodes.
//
// Paper shape: peak throughput ~1.08M q/s on 8 nodes, 4.2x over 2 nodes;
// median latency ~0.11ms, 99th percentile ~0.9ms (injection tail).

#include "bench/throughput_common.h"

int main() {
  wukongs::bench::PrintThroughputTable(
      {1, 2, 3},
      "Fig. 14: throughput of the L1-L3 mix vs nodes; latency CDF on 8 nodes");
  return 0;
}
