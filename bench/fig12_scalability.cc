// Fig. 12: latency of LSBench queries as the cluster grows from 2 to 8 nodes.
//
// Paper shape: group (I) (L1-L3, selective, in-place execution) stays flat —
// more machines neither help nor hurt; group (II) (L4-L6, fork-join) speeds
// up ~2.8x-3.2x from 2 to 8 nodes.

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void Run(int argc, char** argv) {
  PrintHeader("Fig. 12: latency (ms) vs number of machines, LSBench",
              NetworkModel{});
  BenchArtifact artifact("fig12_scalability");
  artifact.SetValue("bench_samples_per_query", {}, kSamples);

  std::vector<uint32_t> node_counts = {2, 4, 6, 8};
  // medians[q][n] for query L(q+1) at node_counts[n].
  std::vector<std::vector<double>> medians(LsBench::kNumContinuous);

  for (uint32_t nodes : node_counts) {
    LsBenchConfig config;
    config.users = 4000;
    LsEnvironment env = LsEnvironment::Create(nodes, config, kFeedTo);
    for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
      Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
      auto handle = env.cluster->RegisterContinuousParsed(q);
      Histogram hist = MeasureContinuous(env.cluster.get(), *handle, kFirstEnd,
                                         kStep, kSamples);
      medians[static_cast<size_t>(i - 1)].push_back(hist.Median());
      artifact.RecordLatencies("bench_latency_ms",
                               {{"query", "L" + std::to_string(i)},
                                {"nodes", std::to_string(nodes)}},
                               hist);
    }
  }

  TablePrinter table({"query", "2 nodes", "4 nodes", "6 nodes", "8 nodes",
                      "speedup 2->8"});
  for (int i = 0; i < LsBench::kNumContinuous; ++i) {
    const auto& m = medians[static_cast<size_t>(i)];
    std::vector<std::string> row = {"L" + std::to_string(i + 1)};
    for (double v : m) {
      row.push_back(TablePrinter::Num(v, 3));
    }
    row.push_back(TablePrinter::Num(m.front() / m.back(), 2) + "x");
    table.AddRow(row);
    artifact.SetValue("bench_speedup_2_to_8",
                      {{"query", "L" + std::to_string(i + 1)}},
                      m.front() / m.back());
  }
  table.Print();
  std::cout << "\ngroup (I) = L1-L3 (expected ~flat), group (II) = L4-L6 "
               "(expected ~3x speedup 2->8)\n";
  artifact.Write(JsonOutPath(argc, argv));
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(argc, argv);
  return 0;
}
