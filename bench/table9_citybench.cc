// Table 9: CityBench continuous queries C1-C11 on a single node — Wukong+S
// vs Storm+Wukong (with breakdown) vs Spark Streaming.
//
// Paper shape: Wukong+S wins 2.7x-18.3x over Storm+Wukong (cross-system cost
// dominates, 40-75% of composite latency) and by three orders of magnitude
// over Spark Streaming; C10/C11 touch only streams, so the composite's
// Wukong column is empty there.

#include <map>
#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/spark_like.h"
#include "src/baselines/storm_wukong.h"
#include "src/workloads/citybench.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 15;
constexpr StreamTime kFeedTo = 22000;
constexpr StreamTime kFirstEnd = 6000;
constexpr StreamTime kStep = 1000;

void Run() {
  StringServer strings;
  ClusterConfig cc;
  cc.nodes = 1;
  Cluster cluster(cc, &strings);
  CityBenchConfig config;
  // Default Aarhus rates (paper Table 1): 4-19 tuples/s per stream.
  CityBench bench(&cluster, config);

  std::map<std::string, StreamTupleVec> captured;
  bench.SetTee([&](const std::string& name, const StreamTupleVec& tuples) {
    auto& log = captured[name];
    log.insert(log.end(), tuples.begin(), tuples.end());
  });
  if (!bench.Setup().ok() || !bench.FeedInterval(0, kFeedTo).ok()) {
    std::cerr << "citybench setup failed\n";
    std::abort();
  }
  PrintHeader("Table 9: CityBench continuous query latency (ms), single node",
              cluster.config().network);
  std::cout << "initial triples: " << bench.initial_triples()
            << ", samples/query: " << kSamples << "\n\n";

  Cluster static_store(cc, &strings);
  static_store.LoadBase(bench.initial_graph());
  StormWukong storm(&static_store);
  SparkEngine spark(&strings);
  spark.LoadStored(bench.initial_graph());
  for (int i = 0; i < CityBench::kNumContinuous; ++i) {
    const char* name = CityBench::StreamName(i);
    auto id1 = storm.streams()->Define(name);
    auto id2 = spark.streams()->Define(name);
    auto it = captured.find(name);
    if (it != captured.end()) {
      if (!storm.streams()->Feed(*id1, it->second).ok() ||
          !spark.streams()->Feed(*id2, it->second).ok()) {
        std::cerr << "baseline feed failed\n";
        std::abort();
      }
    }
  }

  TablePrinter table({"CityBench", "Wukong+S", "Storm+Wukong", "(Storm)",
                      "(Wukong)", "Spark Streaming"});
  std::vector<double> ws_all, sw_all, sp_all;
  for (int i = 1; i <= CityBench::kNumContinuous; ++i) {
    Query q = MustParse(bench.ContinuousQueryText(i), &strings);
    bool touches_store = false;
    for (const TriplePattern& p : q.patterns) {
      touches_store |= (p.graph == kGraphStored);
    }

    auto handle = cluster.RegisterContinuousParsed(q);
    Histogram ws = MeasureContinuous(&cluster, *handle, kFirstEnd, kStep, kSamples);

    Histogram sw, sw_stream, sw_store;
    for (int s = 0; s < kSamples; ++s) {
      StreamTime end = kFirstEnd + static_cast<StreamTime>(s) * kStep;
      CompositeBreakdown bd;
      auto exec = storm.ExecuteContinuous(q, end, &bd);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      sw.Add(exec->latency_ms());
      sw_stream.Add(bd.stream_ms);
      sw_store.Add(bd.store_ms);
    }

    Histogram sp = MeasureEngine(
        [&](StreamTime end) { return spark.ExecuteContinuous(q, end); }, kFirstEnd,
        kStep, kSamples);

    table.AddRow({"C" + std::to_string(i), TablePrinter::Num(ws.Median()),
                  TablePrinter::Num(sw.Median()),
                  TablePrinter::Num(sw_stream.Median()),
                  touches_store ? TablePrinter::Num(sw_store.Median()) : "-",
                  TablePrinter::Num(sp.Median(), 0)});
    ws_all.push_back(ws.Median());
    sw_all.push_back(sw.Median());
    sp_all.push_back(sp.Median());
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(ws_all)),
                TablePrinter::Num(GeometricMeanOf(sw_all)), "-", "-",
                TablePrinter::Num(GeometricMeanOf(sp_all), 0)});
  table.Print();
  std::cout << "\nspeedup (Geo.M): vs Storm+Wukong = "
            << TablePrinter::Num(GeometricMeanOf(sw_all) / GeometricMeanOf(ws_all), 1)
            << "x, vs Spark Streaming = "
            << TablePrinter::Num(GeometricMeanOf(sp_all) / GeometricMeanOf(ws_all), 0)
            << "x\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
