// Micro-benchmarks (google-benchmark) for the hot paths underneath every
// table: store reads at a snapshot, streaming injection, stream-index window
// resolution, transient-store lookups, and the parser. These are ablation
// aids: e.g. BM_WindowRead vs BM_FullValueScanWindow quantifies what the
// stream index buys at a given history/window ratio (the Wukong/Ext gap).

#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/sparql/parser.h"
#include "src/store/gstore.h"
#include "src/stream/stream_index.h"
#include "src/stream/transient_store.h"

namespace wukongs {
namespace {

constexpr PredicateId kPo = 4;

void BM_StoreLoadTriple(benchmark::State& state) {
  GStore store(0);
  Rng rng(1);
  uint64_t i = 0;
  for (auto _ : state) {
    store.LoadTriple({rng.Uniform(1, 100000), kPo, 1000000 + (i++)});
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreLoadTriple);

void BM_StoreInjectEdge(benchmark::State& state) {
  GStore store(0);
  Rng rng(1);
  std::vector<AppendSpan> spans;
  uint64_t i = 0;
  for (auto _ : state) {
    spans.clear();
    ++i;
    store.InjectEdge(Key(rng.Uniform(1, 100000), kPo, Dir::kOut), 1000000 + i,
                     /*sn=*/1 + i / 1000, &spans);
    benchmark::DoNotOptimize(spans);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreInjectEdge);

void BM_StoreReadAtSnapshot(benchmark::State& state) {
  GStore store(0);
  const size_t degree = static_cast<size_t>(state.range(0));
  for (size_t v = 1; v <= 1000; ++v) {
    for (size_t e = 0; e < degree; ++e) {
      store.InjectEdge(Key(v, kPo, Dir::kOut), 1000000 + e, 1 + e / 8, nullptr);
    }
  }
  Rng rng(2);
  std::vector<VertexId> out;
  for (auto _ : state) {
    store.GetEdgesInto(Key(rng.Uniform(1, 1000), kPo, Dir::kOut), 5, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreReadAtSnapshot)->Arg(8)->Arg(64)->Arg(512);

// Window resolution through the stream index: jump straight to the spans of
// the window's batches.
void BM_WindowRead(benchmark::State& state) {
  const size_t history_batches = static_cast<size_t>(state.range(0));
  const size_t window_batches = 10;
  GStore store(0);
  StreamIndex index;
  Rng rng(3);
  for (size_t b = 0; b < history_batches; ++b) {
    std::vector<AppendSpan> spans;
    for (int t = 0; t < 20; ++t) {
      store.InjectEdge(Key(rng.Uniform(1, 200), kPo, Dir::kOut),
                       1000000 + b * 100 + static_cast<uint64_t>(t), 1 + b,
                       &spans);
    }
    index.AddBatch(b, spans);
  }
  std::vector<VertexId> out;
  std::vector<IndexSpan> spans;
  for (auto _ : state) {
    out.clear();
    Key key(rng.Uniform(1, 200), kPo, Dir::kOut);
    for (size_t b = history_batches - window_batches; b < history_batches; ++b) {
      spans.clear();
      if (index.GetSpans(b, key, &spans)) {
        for (const IndexSpan& s : spans) {
          store.GetSpanInto(key, s.start, s.count, &out);
        }
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WindowRead)->Arg(20)->Arg(100)->Arg(400);

// The Wukong/Ext strawman: scan the whole stamped value and filter by time.
void BM_FullValueScanWindow(benchmark::State& state) {
  const size_t history_batches = static_cast<size_t>(state.range(0));
  struct StampedEdge {
    VertexId vid;
    uint64_t ts;
  };
  std::unordered_map<Key, std::vector<StampedEdge>, KeyHash> values;
  Rng rng(3);
  for (size_t b = 0; b < history_batches; ++b) {
    for (int t = 0; t < 20; ++t) {
      values[Key(rng.Uniform(1, 200), kPo, Dir::kOut)].push_back(
          {1000000 + b * 100 + static_cast<uint64_t>(t), b * 100});
    }
  }
  const uint64_t from = (history_batches - 10) * 100;
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    auto it = values.find(Key(rng.Uniform(1, 200), kPo, Dir::kOut));
    if (it != values.end()) {
      for (const StampedEdge& e : it->second) {
        if (e.ts >= from) {
          out.push_back(e.vid);
        }
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FullValueScanWindow)->Arg(20)->Arg(100)->Arg(400);

void BM_TransientSliceLookup(benchmark::State& state) {
  TransientStore ts;
  Rng rng(4);
  for (BatchSeq b = 0; b < 100; ++b) {
    StreamTupleVec tuples;
    for (int i = 0; i < 20; ++i) {
      tuples.push_back(StreamTuple{{rng.Uniform(1, 200), 7, rng.Uniform(1, 1000)},
                                   b * 100,
                                   TupleKind::kTiming});
    }
    ts.AppendSlice(b, tuples);
  }
  std::vector<VertexId> out;
  for (auto _ : state) {
    out.clear();
    for (BatchSeq b = 90; b < 100; ++b) {
      ts.GetNeighbors(b, Key(rng.Uniform(1, 200), 7, Dir::kOut), &out);
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TransientSliceLookup);

void BM_ParseContinuousQuery(benchmark::State& state) {
  StringServer strings;
  const std::string text = R"(
      REGISTER QUERY QC AS
      SELECT ?X ?Y ?Z
      FROM STREAM <Tweet_Stream> [RANGE 10s STEP 1s]
      FROM STREAM <Like_Stream> [RANGE 5s STEP 1s]
      FROM <X-Lab>
      WHERE {
        GRAPH <Tweet_Stream> { ?X po ?Z }
        GRAPH <X-Lab>        { ?X fo ?Y }
        GRAPH <Like_Stream>  { ?Y li ?Z }
      })";
  for (auto _ : state) {
    auto q = ParseQuery(text, &strings);
    benchmark::DoNotOptimize(q);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseContinuousQuery);

}  // namespace
}  // namespace wukongs

BENCHMARK_MAIN();
