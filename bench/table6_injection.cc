// Table 6: data injection and stream-index construction cost per 100 ms
// mini-batch for the five LSBench streams at default rates.
//
// Paper shape: injection costs 0.37-2.20 ms per batch, dominated by the
// heaviest stream (PO-L); index construction adds 0.21-0.43 ms; GPS (timing
// data) builds no persistent-store index.

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr StreamTime kFeedTo = 10000;  // 100 batches per stream.

void Run() {
  LsBenchConfig config;
  config.users = 4000;
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
  PrintHeader(
      "Table 6: injection + indexing cost (ms) per 100ms mini-batch, per stream",
      env.cluster->config().network);
  std::cout << "batches per stream: "
            << kFeedTo / env.cluster->config().batch_interval_ms << "\n\n";

  struct Row {
    const char* label;
    StreamId stream;
    double rate;
  };
  std::vector<Row> rows = {
      {"PO", env.bench->po_stream(), config.po_rate},
      {"PO-L", env.bench->pol_stream(), config.pol_rate},
      {"PH", env.bench->ph_stream(), config.ph_rate},
      {"PH-L", env.bench->phl_stream(), config.phl_rate},
      {"GPS", env.bench->gps_stream(), config.gps_rate},
  };

  TablePrinter table({"LSBench", "rate (tuples/s)", "Injection", "Indexing",
                      "Total", "tuples/batch"});
  double total_inject = 0.0;
  double total_index = 0.0;
  for (const Row& row : rows) {
    auto profile = env.cluster->injection_profile(row.stream);
    double batches = static_cast<double>(profile.batches);
    double inject = profile.inject_ms / batches;
    double index = profile.index_ms / batches;
    total_inject += inject;
    total_index += index;
    table.AddRow({row.label, TablePrinter::Num(row.rate, 0),
                  TablePrinter::Num(inject, 4), TablePrinter::Num(index, 4),
                  TablePrinter::Num(inject + index, 4),
                  TablePrinter::Num(static_cast<double>(profile.tuples) / batches,
                                    1)});
  }
  table.AddRow({"all", TablePrinter::Num(env.bench->total_rate_tuples_per_sec(), 0),
                TablePrinter::Num(total_inject, 4), TablePrinter::Num(total_index, 4),
                TablePrinter::Num(total_inject + total_index, 4), ""});
  table.Print();
  std::cout << "\n(the injection delay bounds how much a batch can interfere "
               "with in-flight queries; see the CDF tails in Figs. 14-15)\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
