// Table 6: data injection and stream-index construction cost per 100 ms
// mini-batch for the five LSBench streams at default rates.
//
// Paper shape: injection costs 0.37-2.20 ms per batch, dominated by the
// heaviest stream (PO-L); index construction adds 0.21-0.43 ms; GPS (timing
// data) builds no persistent-store index.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/fault/fault_injector.h"

namespace wukongs {
namespace bench {
namespace {

constexpr StreamTime kFeedTo = 10000;  // 100 batches per stream.

// Same workload shipped through a lossy fabric: dropped batches force
// retransmission (backoff charged into the modeled clock), duplicates are
// caught by the dispatcher's sequence gate, delays add their modeled hold
// time. Shows what the injection path costs when delivery is at-least-once
// instead of perfect.
void RunLossy(double clean_total_ms) {
  FaultSchedule schedule;
  schedule.seed = 6;  // Table 6.
  schedule.batch_drop_rate = 0.05;
  schedule.batch_duplicate_rate = 0.05;
  schedule.batch_delay_rate = 0.05;
  schedule.message_failure_rate = 0.01;
  FaultInjector injector(schedule);
  ClusterConfig cluster_config;
  cluster_config.fault_injector = &injector;

  LsBenchConfig config;
  config.users = 4000;
  LsEnvironment env =
      LsEnvironment::Create(/*nodes=*/8, config, kFeedTo, cluster_config);

  double faulty_total_ms = 0.0;
  for (StreamId s = 0; s < 5; ++s) {
    auto profile = env.cluster->injection_profile(s);
    if (profile.batches > 0) {
      faulty_total_ms += (profile.inject_ms + profile.index_ms) /
                         static_cast<double>(profile.batches);
    }
  }

  const auto& fates = injector.stats();
  const auto& fs = env.cluster->fault_stats();
  std::cout << "\nsame workload, lossy fabric (drop/dup/delay 5% each, "
               "1% message loss, seed "
            << schedule.seed << "):\n";
  TablePrinter table({"fate", "batches", "handled by"});
  table.AddRow({"dropped", TablePrinter::Num(fates.dropped_batches, 0),
                "retransmit + backoff"});
  table.AddRow({"duplicated", TablePrinter::Num(fates.duplicated_batches, 0),
                "sequence gate"});
  table.AddRow({"delayed", TablePrinter::Num(fates.delayed_batches, 0),
                "modeled hold"});
  table.Print();
  std::cout << "duplicates suppressed at the gate: " << fs.duplicates_suppressed
            << "\n";
  std::cout << "dispatcher shipping retries: " << fs.delivery_retry.retries
            << " (" << TablePrinter::Num(fs.delivery_retry.backoff_ns / 1e6, 3)
            << " ms backoff charged, " << fs.delivery_retry.exhausted
            << " escalated to the reliable path)\n";
  char delta[32];
  std::snprintf(delta, sizeof(delta), "%+.1f",
                (faulty_total_ms / clean_total_ms - 1.0) * 100.0);
  std::cout << "per-batch injection+indexing: "
            << TablePrinter::Num(clean_total_ms, 4) << " ms clean -> "
            << TablePrinter::Num(faulty_total_ms, 4) << " ms lossy (" << delta
            << "% wall-clock; the retransmit backoff above is charged into "
               "the modeled clock, not measured here)\n";
}

void Run() {
  LsBenchConfig config;
  config.users = 4000;
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/8, config, kFeedTo);
  PrintHeader(
      "Table 6: injection + indexing cost (ms) per 100ms mini-batch, per stream",
      env.cluster->config().network);
  std::cout << "batches per stream: "
            << kFeedTo / env.cluster->config().batch_interval_ms << "\n\n";

  struct Row {
    const char* label;
    StreamId stream;
    double rate;
  };
  std::vector<Row> rows = {
      {"PO", env.bench->po_stream(), config.po_rate},
      {"PO-L", env.bench->pol_stream(), config.pol_rate},
      {"PH", env.bench->ph_stream(), config.ph_rate},
      {"PH-L", env.bench->phl_stream(), config.phl_rate},
      {"GPS", env.bench->gps_stream(), config.gps_rate},
  };

  TablePrinter table({"LSBench", "rate (tuples/s)", "Injection", "Indexing",
                      "Total", "tuples/batch"});
  double total_inject = 0.0;
  double total_index = 0.0;
  for (const Row& row : rows) {
    auto profile = env.cluster->injection_profile(row.stream);
    double batches = static_cast<double>(profile.batches);
    double inject = profile.inject_ms / batches;
    double index = profile.index_ms / batches;
    total_inject += inject;
    total_index += index;
    table.AddRow({row.label, TablePrinter::Num(row.rate, 0),
                  TablePrinter::Num(inject, 4), TablePrinter::Num(index, 4),
                  TablePrinter::Num(inject + index, 4),
                  TablePrinter::Num(static_cast<double>(profile.tuples) / batches,
                                    1)});
  }
  table.AddRow({"all", TablePrinter::Num(env.bench->total_rate_tuples_per_sec(), 0),
                TablePrinter::Num(total_inject, 4), TablePrinter::Num(total_index, 4),
                TablePrinter::Num(total_inject + total_index, 4), ""});
  table.Print();
  std::cout << "\n(the injection delay bounds how much a batch can interfere "
               "with in-flight queries; see the CDF tails in Figs. 14-15)\n";

  RunLossy(total_inject + total_index);
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
