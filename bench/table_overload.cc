// Overload protection (DESIGN.md §5.6): what saturation looks like with and
// without the protection stack.
//
// Part A — query door. An open-loop flood of LSBench one-shots (S1-S6) at
// m x the pool's saturation rate, m in {0.5, 1, 2, 3, 4}. Unprotected, every
// arrival queues: past m=1 the backlog grows for the whole run and the
// sojourn p99 explodes linearly with the flood (the queueing cliff).
// Protected, the admission controller bounds admitted-but-unfinished work at
// a small multiple of the worker count and rejects the rest in microseconds
// with kResourceExhausted: goodput holds at saturation, admitted p99 stays
// within a small factor of the unloaded p99, and the overload is surfaced as
// an explicit rejection rate instead of latency.
//
// Part B — stream door. The GPS (timing) stream fed at m x its base rate
// into deliberately tight transient rings. Unprotected, a full ring drops
// whole slices on the floor: the loss is silent (pre-overload bug, now
// surfaced by the shed ledger as `timing edges lost`) and total once the
// ring saturates. Protected, the append failure raises the pressure gauge,
// kicks a forced maintenance pass, and the door sheds timing *suffixes* by
// priority while AppendSlicePrefix keeps the largest fitting prefix — the
// loss becomes deliberate, bounded, and visible as `shed_fraction` on every
// window result.
//
// Acceptance (ISSUE): protected p99 at m=2 within 3x of unloaded p99 with a
// smooth goodput curve; unprotected shows the cliff.

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cluster/worker_pool.h"
#include "src/overload/admission_controller.h"

namespace wukongs {
namespace bench {
namespace {

constexpr uint32_t kNodes = 4;
constexpr uint32_t kWorkers = 2;
constexpr double kMultipliers[] = {0.5, 1.0, 2.0, 3.0, 4.0};
constexpr double kFloodSeconds = 0.2;

// ---------------------------------------------------------------------------
// Part A: one-shot flood through the worker pool.

// Saturation throughput of the actual pool: burst-submit a batch and time
// the drain. Solo service times would under-estimate (two workers contend on
// the shared store), so the capacity the multipliers scale against must be
// measured through the same concurrent path the flood uses.
double CalibrateSaturationQps(Cluster* cluster, const std::vector<Query>& mix) {
  WorkerPool pool(cluster, kWorkers);
  constexpr size_t kBurst = 240;
  Rng rng(11);
  std::vector<std::future<StatusOr<QueryExecution>>> futures;
  futures.reserve(kBurst);
  Stopwatch sw;
  for (size_t i = 0; i < kBurst; ++i) {
    futures.push_back(pool.SubmitOneShot(
        mix[i % mix.size()], static_cast<NodeId>(rng.Uniform(0, kNodes - 1)),
        0.0));
  }
  pool.Drain();
  double elapsed_s = sw.ElapsedMs() / 1000.0;
  for (auto& f : futures) {
    if (!f.get().ok()) {
      std::abort();
    }
  }
  return static_cast<double>(kBurst) / elapsed_s;
}

struct FloodResult {
  double offered_qps = 0.0;
  double goodput_qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  uint64_t rejected = 0;
  size_t total = 0;
  Histogram sojourn;  // Full distribution, for the JSON artifact.
};

FloodResult Flood(Cluster* cluster, const std::vector<Query>& mix,
                  double rate_qps, AdmissionController* admission,
                  double deadline_ms) {
  using Clock = std::chrono::steady_clock;
  WorkerPool pool(cluster, kWorkers);
  if (admission != nullptr) {
    pool.SetAdmissionController(admission);
  }
  size_t n = std::max<size_t>(100, static_cast<size_t>(rate_qps * kFloodSeconds));
  std::vector<std::future<StatusOr<QueryExecution>>> futures(n);
  std::vector<Clock::time_point> submitted(n);
  std::vector<Clock::time_point> completed(n);
  std::atomic<size_t> handed_off{0};

  // Completion times must be observed *while* submission is still running —
  // collecting after the submit loop would charge early queries for the
  // whole submission phase. Workers drain FIFO, so waiting in submit order
  // timestamps each future to within a scheduling quantum.
  std::thread collector([&] {
    for (size_t i = 0; i < n; ++i) {
      while (handed_off.load(std::memory_order_acquire) <= i) {
        std::this_thread::yield();
      }
      futures[i].wait();
      completed[i] = Clock::now();
    }
  });

  Rng rng(7);
  Clock::time_point start = Clock::now();
  for (size_t i = 0; i < n; ++i) {
    // Open-loop arrivals: submit at the scheduled instant regardless of how
    // far behind the pool is. A closed loop would self-throttle and hide the
    // overload entirely.
    Clock::time_point due =
        start + std::chrono::nanoseconds(
                    static_cast<int64_t>(1e9 * static_cast<double>(i) / rate_qps));
    std::this_thread::sleep_until(due);
    submitted[i] = Clock::now();
    futures[i] = pool.SubmitOneShot(
        mix[i % mix.size()],
        static_cast<NodeId>(rng.Uniform(0, kNodes - 1)), deadline_ms);
    handed_off.store(i + 1, std::memory_order_release);
  }
  Clock::time_point last_submit = Clock::now();
  collector.join();

  FloodResult out;
  out.total = n;
  Histogram& sojourn = out.sojourn;
  size_t ok = 0;
  Clock::time_point last_done = start;
  for (size_t i = 0; i < n; ++i) {
    auto exec = futures[i].get();
    if (exec.ok()) {
      sojourn.Add(
          std::chrono::duration<double, std::milli>(completed[i] - submitted[i])
              .count());
      if (completed[i] > last_done) {
        last_done = completed[i];
      }
      ++ok;
    } else {
      ++out.rejected;
    }
  }
  double submit_s = std::chrono::duration<double>(last_submit - start).count();
  double run_s = std::chrono::duration<double>(last_done - start).count();
  out.offered_qps = static_cast<double>(n) / std::max(submit_s, 1e-9);
  out.goodput_qps = static_cast<double>(ok) / std::max(run_s, 1e-9);
  out.p50_ms = sojourn.Median();
  out.p99_ms = sojourn.Percentile(99);
  return out;
}

void RunQueryFlood(BenchArtifact* artifact) {
  LsBenchConfig config;
  config.users = 2000;
  LsEnvironment env = LsEnvironment::Create(kNodes, config, /*feed_to_ms=*/1000);

  std::vector<Query> mix;
  for (int i = 1; i <= LsBench::kNumOneShot; ++i) {
    mix.push_back(MustParse(env.bench->OneShotQueryText(i), env.strings.get()));
  }
  // Warm caches once through the pool, then calibrate.
  CalibrateSaturationQps(env.cluster.get(), mix);
  double saturation_qps = CalibrateSaturationQps(env.cluster.get(), mix);
  double mean_service_ms = 1000.0 * kWorkers / saturation_qps;

  // "Unloaded": same open-loop path at a rate low enough that the queue
  // stays empty — the latency floor every loaded p99 is compared against.
  FloodResult base =
      Flood(env.cluster.get(), mix, 0.2 * saturation_qps, nullptr, 0.0);
  std::cout << "\nPart A: one-shot flood, " << kWorkers
            << " workers; saturation ~" << TablePrinter::Num(saturation_qps, 0)
            << " q/s (mean service " << TablePrinter::Num(mean_service_ms, 3)
            << " ms under contention); unloaded (0.2x) p50 "
            << TablePrinter::Num(base.p50_ms, 3) << " ms, p99 "
            << TablePrinter::Num(base.p99_ms, 3) << " ms\n";

  artifact->SetValue("bench_saturation_qps", {}, saturation_qps);
  artifact->RecordLatencies("bench_sojourn_ms", {{"load", "unloaded"}},
                            base.sojourn);

  TablePrinter table({"load", "offered (q/s)", "goodput (q/s)", "p50 (ms)",
                      "p99 (ms)", "p99 vs unloaded", "rejected"});
  double on_p99_at_2x = 0.0;
  double off_p99_at_2x = 0.0;
  for (double m : kMultipliers) {
    FloodResult off = Flood(env.cluster.get(), mix, m * saturation_qps,
                            nullptr, 0.0);
    AdmissionConfig ac;
    ac.max_concurrent = kWorkers * 2;
    ac.workers = kWorkers;
    ac.initial_service_ms = mean_service_ms;
    AdmissionController admission(ac);
    FloodResult on = Flood(env.cluster.get(), mix, m * saturation_qps,
                           &admission, 3.0 * base.p99_ms);
    if (m == 2.0) {
      off_p99_at_2x = off.p99_ms;
      on_p99_at_2x = on.p99_ms;
    }
    char label[32];
    std::snprintf(label, sizeof(label), "%.1fx off", m);
    table.AddRow({label, TablePrinter::Num(off.offered_qps, 0),
                  TablePrinter::Num(off.goodput_qps, 0),
                  TablePrinter::Num(off.p50_ms, 3),
                  TablePrinter::Num(off.p99_ms, 3),
                  TablePrinter::Num(off.p99_ms / base.p99_ms, 1) + "x", "0"});
    std::snprintf(label, sizeof(label), "%.1fx ON", m);
    table.AddRow({label, TablePrinter::Num(on.offered_qps, 0),
                  TablePrinter::Num(on.goodput_qps, 0),
                  TablePrinter::Num(on.p50_ms, 3),
                  TablePrinter::Num(on.p99_ms, 3),
                  TablePrinter::Num(on.p99_ms / base.p99_ms, 1) + "x",
                  TablePrinter::Num(static_cast<double>(on.rejected), 0) + "/" +
                      TablePrinter::Num(static_cast<double>(on.total), 0)});

    char load[16];
    std::snprintf(load, sizeof(load), "%.1fx", m);
    for (const auto& [protect, r] :
         {std::pair<const char*, const FloodResult*>{"off", &off},
          {"on", &on}}) {
      MetricLabels labels = {{"load", load}, {"protect", protect}};
      artifact->RecordLatencies("bench_sojourn_ms", labels, r->sojourn);
      artifact->SetValue("bench_goodput_qps", labels, r->goodput_qps);
      artifact->SetValue("bench_offered_qps", labels, r->offered_qps);
      artifact->AddCount("bench_rejected_total", labels, r->rejected);
    }
  }
  table.Print();
  std::cout << "acceptance: at 2x saturation, protected p99 = "
            << TablePrinter::Num(on_p99_at_2x / base.p99_ms, 1)
            << "x unloaded (target <= 3x); unprotected p99 = "
            << TablePrinter::Num(off_p99_at_2x / base.p99_ms, 1)
            << "x (the cliff)\n";
}

// ---------------------------------------------------------------------------
// Part B: GPS timing stream against a tight transient ring.

const char* kGpsWindowQuery = R"(
REGISTER QUERY GPS AS SELECT ?U ?C
FROM STREAM <GPS_Stream> [RANGE 1s STEP 100ms]
WHERE { GRAPH <GPS_Stream> { ?U ga ?C } }
)";

constexpr size_t kTransientBudgetBytes = 16 * 1024;  // Per node; ~1x rate fits.
constexpr StreamTime kFeedToMs = 3000;

struct ShedRun {
  uint64_t gps_tuples = 0;        // Timing tuples offered at the door.
  OverloadStats stats;
  double window_shed_fraction = 0.0;
  double window_latency_ms = 0.0;
  size_t window_rows = 0;
};

ShedRun FeedAtRate(double scale, bool protect) {
  LsBenchConfig config;
  config.users = 2000;
  config.rate_scale = scale;
  StringServer strings;
  ClusterConfig cc;
  cc.nodes = kNodes;
  cc.transient_budget_bytes = kTransientBudgetBytes;
  if (protect) {
    cc.overload.enabled = true;
    cc.overload.shed_timing = true;
    cc.overload.shed.start_pressure = 0.3;
    cc.overload.append_failure_pressure = 0.6;
    cc.overload.pressure_decay = 0.5;
  }
  Cluster cluster(cc, &strings);
  LsBench bench(&cluster, config);

  ShedRun out;
  bench.SetTee([&out](const std::string& name, const StreamTupleVec& tuples) {
    if (name == "GPS_Stream") {
      out.gps_tuples += tuples.size();
    }
  });
  StreamTime feed_now = 0;
  if (protect) {
    // The pressure hook: an append failure forces a maintenance pass *now*
    // (the bench stands in for MaintenanceDaemon::Kick with a synchronous
    // call), trimming dead batches so the retry can land.
    cluster.SetPressureListener([&cluster, &feed_now](StreamId, NodeId) {
      cluster.RunMaintenance(feed_now > 1000 ? feed_now - 1000 : 0);
    });
  }
  if (!bench.Setup().ok()) {
    std::abort();
  }
  for (StreamTime t = 0; t < kFeedToMs; t += 100) {
    feed_now = t + 100;
    if (Status s = bench.FeedInterval(t, t + 100); !s.ok()) {
      std::cerr << s.ToString() << "\n";
      std::abort();
    }
    // Routine GC on the same cadence for both runs (retention 1.5s > the 1s
    // window): the unprotected run is not starved of maintenance, it just
    // cannot trigger it on demand.
    if (t % 500 == 400) {
      cluster.RunMaintenance(t > 1500 ? t - 1500 : 0);
    }
  }
  auto handle = cluster.RegisterContinuous(kGpsWindowQuery, 0);
  if (!handle.ok()) {
    std::cerr << handle.status().ToString() << "\n";
    std::abort();
  }
  auto exec = cluster.ExecuteContinuousAt(*handle, kFeedToMs);
  if (!exec.ok()) {
    std::cerr << exec.status().ToString() << "\n";
    std::abort();
  }
  out.window_shed_fraction = exec->shed_fraction;
  out.window_latency_ms = exec->latency_ms();
  out.window_rows = exec->result.rows.size();
  out.stats = cluster.overload_stats();
  return out;
}

void RunStreamPressure(BenchArtifact* artifact) {
  std::cout << "\nPart B: GPS timing stream at m x base rate (200 t/s), "
            << TablePrinter::Num(kTransientBudgetBytes / 1024.0, 0)
            << " KB transient ring per node, " << kFeedToMs / 1000 << "s feed\n";
  TablePrinter table({"load", "timing edges", "shed@door", "shed@store",
                      "lost (silent)", "delivered", "window shed_frac",
                      "window rows"});
  for (double m : kMultipliers) {
    for (bool protect : {false, true}) {
      ShedRun r = FeedAtRate(m, protect);
      double total = 2.0 * static_cast<double>(r.gps_tuples);
      double door = 2.0 * static_cast<double>(r.stats.door_shed_tuples);
      double store = static_cast<double>(r.stats.injector_shed_edges);
      double lost = static_cast<double>(r.stats.timing_edges_lost);
      double delivered = total > 0.0 ? (total - door - store - lost) / total : 1.0;
      char label[32];
      std::snprintf(label, sizeof(label), "%.1fx %s", m, protect ? "ON" : "off");
      table.AddRow(
          {label, TablePrinter::Num(total, 0),
           TablePrinter::Num(door, 0), TablePrinter::Num(store, 0),
           TablePrinter::Num(lost, 0),
           TablePrinter::Num(100.0 * delivered, 1) + "%",
           TablePrinter::Num(r.window_shed_fraction, 3),
           TablePrinter::Num(static_cast<double>(r.window_rows), 0)});

      char load[16];
      std::snprintf(load, sizeof(load), "%.1fx", m);
      MetricLabels labels = {{"load", load}, {"protect", protect ? "on" : "off"}};
      artifact->AddCount("bench_timing_edges_total", labels,
                         static_cast<uint64_t>(total));
      artifact->AddCount("bench_door_shed_edges_total", labels,
                         static_cast<uint64_t>(door));
      artifact->AddCount("bench_silent_lost_edges_total", labels,
                         static_cast<uint64_t>(lost));
      artifact->SetValue("bench_delivered_fraction", labels, delivered);
      artifact->SetValue("bench_window_shed_fraction", labels,
                         r.window_shed_fraction);
    }
  }
  table.Print();
  std::cout << "('lost' is the pre-overload silent drop, now surfaced by the "
               "shed ledger; protection converts it into prioritized "
               "suffix-shedding at the door plus largest-fitting-prefix keeps "
               "at the store, and every window result carries the fraction)\n";
}

void Run(int argc, char** argv) {
  PrintHeader("Overload protection: admission control + load shedding vs the cliff",
              NetworkModel{});
  BenchArtifact artifact("table_overload");
  RunQueryFlood(&artifact);
  RunStreamPressure(&artifact);
  artifact.Write(JsonOutPath(argc, argv));
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(argc, argv);
  return 0;
}
