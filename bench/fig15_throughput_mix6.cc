// Fig. 15: throughput of a mixed workload of all six query classes L1-L6 as
// the cluster grows, and the per-class latency CDF on 8 nodes.
//
// Paper shape: peak throughput ~802K q/s on 8 nodes (the heavier group (II)
// classes lower the ceiling vs Fig. 14), 5.0x over 2 nodes; L4's median at
// peak ~2.3ms, 99th ~4.1ms.

#include "bench/throughput_common.h"

int main() {
  wukongs::bench::PrintThroughputTable(
      {1, 2, 3, 4, 5, 6},
      "Fig. 15: throughput of the L1-L6 mix vs nodes; latency CDF on 8 nodes");
  return 0;
}
