// Table 2: single-node median latency (ms) of LSBench continuous queries
// L1-L6 on Wukong+S vs Storm+Wukong (with Storm/Wukong breakdown) vs
// CSPARQL-engine.
//
// Paper shape: Wukong+S beats Storm+Wukong by 1.6x-30x and CSPARQL-engine by
// ~3 orders of magnitude; cross-system cost dominates the composite design.

#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/csparql_engine.h"
#include "src/baselines/storm_wukong.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void Run() {
  LsBenchConfig config;
  LsEnvironment env = LsEnvironment::Create(/*nodes=*/1, config, kFeedTo);
  PrintHeader("Table 2: single-node continuous query latency (ms), LSBench",
              env.cluster->config().network);
  std::cout << "initial triples: " << env.bench->initial_triples()
            << ", stream rate: " << env.bench->total_rate_tuples_per_sec()
            << " tuples/s, samples/query: " << kSamples << "\n\n";

  // Composite baselines run against a *static* copy of the stored data.
  ClusterConfig static_config;
  static_config.nodes = 1;
  Cluster static_store(static_config, env.strings.get());
  static_store.LoadBase(env.bench->initial_graph());

  StormWukong storm(&static_store);
  env.FillBaselineStreams(storm.streams());

  CsparqlEngine csparql(env.strings.get());
  csparql.LoadStored(env.bench->initial_graph());
  env.FillBaselineStreams(csparql.streams());

  TablePrinter table({"LSBench", "Wukong+S", "Storm+Wukong All", "(Storm)",
                      "(Wukong)", "CSPARQL-engine"});
  std::vector<double> ws_all, sw_all, cs_all;

  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
    bool touches_store = false;
    for (const TriplePattern& p : q.patterns) {
      touches_store |= (p.graph == kGraphStored);
    }

    auto handle = env.cluster->RegisterContinuousParsed(q);
    Histogram ws = MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep,
                                     kSamples);

    Histogram sw;
    Histogram sw_stream;
    Histogram sw_store;
    for (int s = 0; s < kSamples; ++s) {
      StreamTime end = kFirstEnd + static_cast<StreamTime>(s) * kStep;
      CompositeBreakdown bd;
      auto exec = storm.ExecuteContinuous(q, end, &bd);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      sw.Add(exec->latency_ms());
      sw_stream.Add(bd.stream_ms);
      sw_store.Add(bd.store_ms);
    }

    Histogram cs = MeasureEngine(
        [&](StreamTime end) { return csparql.ExecuteContinuous(q, end); },
        kFirstEnd, kStep, kSamples);

    table.AddRow({"L" + std::to_string(i), TablePrinter::Num(ws.Median()),
                  TablePrinter::Num(sw.Median()),
                  TablePrinter::Num(sw_stream.Median()),
                  touches_store ? TablePrinter::Num(sw_store.Median()) : "-",
                  TablePrinter::Num(cs.Median(), 1)});
    ws_all.push_back(ws.Median());
    sw_all.push_back(sw.Median());
    cs_all.push_back(cs.Median());
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(ws_all)),
                TablePrinter::Num(GeometricMeanOf(sw_all)), "-", "-",
                TablePrinter::Num(GeometricMeanOf(cs_all), 1)});
  table.Print();

  std::cout << "\nspeedup (Geo.M): Wukong+S vs Storm+Wukong = "
            << TablePrinter::Num(GeometricMeanOf(sw_all) / GeometricMeanOf(ws_all), 1)
            << "x, vs CSPARQL-engine = "
            << TablePrinter::Num(GeometricMeanOf(cs_all) / GeometricMeanOf(ws_all), 0)
            << "x\n";
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main() {
  wukongs::bench::Run();
  return 0;
}
