// Table 2: single-node median latency (ms) of LSBench continuous queries
// L1-L6 on Wukong+S vs Storm+Wukong (with Storm/Wukong breakdown) vs
// CSPARQL-engine.
//
// Paper shape: Wukong+S beats Storm+Wukong by 1.6x-30x and CSPARQL-engine by
// ~3 orders of magnitude; cross-system cost dominates the composite design.

#include <vector>

#include "bench/bench_common.h"
#include "src/baselines/csparql_engine.h"
#include "src/baselines/storm_wukong.h"
#include "src/obs/trace.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kSamples = 20;
constexpr StreamTime kFeedTo = 4000;
constexpr StreamTime kFirstEnd = 2000;
constexpr StreamTime kStep = 100;

void Run(int argc, char** argv) {
  // --obs attaches the live observability layer to the measured cluster —
  // the configuration the EXPERIMENTS.md overhead row compares against the
  // default (runtime-disabled) run.
  const bool with_obs = HasFlag(argc, argv, "--obs");
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  ClusterConfig cluster_config;
  if (with_obs) {
    cluster_config.metrics = &registry;
    cluster_config.tracer = &tracer;
  }

  LsBenchConfig config;
  LsEnvironment env =
      LsEnvironment::Create(/*nodes=*/1, config, kFeedTo, cluster_config);
  PrintHeader("Table 2: single-node continuous query latency (ms), LSBench",
              env.cluster->config().network);
  if (with_obs) {
    std::cout << "observability: ENABLED (metrics registry + tracer attached)\n";
  }
  std::cout << "initial triples: " << env.bench->initial_triples()
            << ", stream rate: " << env.bench->total_rate_tuples_per_sec()
            << " tuples/s, samples/query: " << kSamples << "\n\n";

  // Composite baselines run against a *static* copy of the stored data.
  ClusterConfig static_config;
  static_config.nodes = 1;
  Cluster static_store(static_config, env.strings.get());
  static_store.LoadBase(env.bench->initial_graph());

  StormWukong storm(&static_store);
  env.FillBaselineStreams(storm.streams());

  CsparqlEngine csparql(env.strings.get());
  csparql.LoadStored(env.bench->initial_graph());
  env.FillBaselineStreams(csparql.streams());

  TablePrinter table({"LSBench", "Wukong+S", "Storm+Wukong All", "(Storm)",
                      "(Wukong)", "CSPARQL-engine"});
  std::vector<double> ws_all, sw_all, cs_all;
  BenchArtifact artifact("table2_latency_single");
  artifact.SetValue("bench_obs_enabled", {}, with_obs ? 1.0 : 0.0);
  artifact.SetValue("bench_samples_per_query", {}, kSamples);

  for (int i = 1; i <= LsBench::kNumContinuous; ++i) {
    Query q = MustParse(env.bench->ContinuousQueryText(i), env.strings.get());
    bool touches_store = false;
    for (const TriplePattern& p : q.patterns) {
      touches_store |= (p.graph == kGraphStored);
    }

    auto handle = env.cluster->RegisterContinuousParsed(q);
    Histogram ws = MeasureContinuous(env.cluster.get(), *handle, kFirstEnd, kStep,
                                     kSamples);

    Histogram sw;
    Histogram sw_stream;
    Histogram sw_store;
    for (int s = 0; s < kSamples; ++s) {
      StreamTime end = kFirstEnd + static_cast<StreamTime>(s) * kStep;
      CompositeBreakdown bd;
      auto exec = storm.ExecuteContinuous(q, end, &bd);
      if (!exec.ok()) {
        std::cerr << exec.status().ToString() << "\n";
        std::abort();
      }
      sw.Add(exec->latency_ms());
      sw_stream.Add(bd.stream_ms);
      sw_store.Add(bd.store_ms);
    }

    Histogram cs = MeasureEngine(
        [&](StreamTime end) { return csparql.ExecuteContinuous(q, end); },
        kFirstEnd, kStep, kSamples);

    table.AddRow({"L" + std::to_string(i), TablePrinter::Num(ws.Median()),
                  TablePrinter::Num(sw.Median()),
                  TablePrinter::Num(sw_stream.Median()),
                  touches_store ? TablePrinter::Num(sw_store.Median()) : "-",
                  TablePrinter::Num(cs.Median(), 1)});
    ws_all.push_back(ws.Median());
    sw_all.push_back(sw.Median());
    cs_all.push_back(cs.Median());

    const std::string query = "L" + std::to_string(i);
    artifact.RecordLatencies("bench_latency_ms",
                             {{"query", query}, {"engine", "wukongs"}}, ws);
    artifact.RecordLatencies("bench_latency_ms",
                             {{"query", query}, {"engine", "storm_wukong"}}, sw);
    artifact.RecordLatencies("bench_latency_ms",
                             {{"query", query}, {"engine", "csparql"}}, cs);
  }
  table.AddRow({"Geo.M", TablePrinter::Num(GeometricMeanOf(ws_all)),
                TablePrinter::Num(GeometricMeanOf(sw_all)), "-", "-",
                TablePrinter::Num(GeometricMeanOf(cs_all), 1)});
  table.Print();

  std::cout << "\nspeedup (Geo.M): Wukong+S vs Storm+Wukong = "
            << TablePrinter::Num(GeometricMeanOf(sw_all) / GeometricMeanOf(ws_all), 1)
            << "x, vs CSPARQL-engine = "
            << TablePrinter::Num(GeometricMeanOf(cs_all) / GeometricMeanOf(ws_all), 0)
            << "x\n";

  artifact.SetValue("bench_geomean_ms", {{"engine", "wukongs"}},
                    GeometricMeanOf(ws_all));
  artifact.SetValue("bench_geomean_ms", {{"engine", "storm_wukong"}},
                    GeometricMeanOf(sw_all));
  artifact.SetValue("bench_geomean_ms", {{"engine", "csparql"}},
                    GeometricMeanOf(cs_all));
  artifact.SetValue("bench_speedup", {{"vs", "storm_wukong"}},
                    GeometricMeanOf(sw_all) / GeometricMeanOf(ws_all));
  artifact.SetValue("bench_speedup", {{"vs", "csparql"}},
                    GeometricMeanOf(cs_all) / GeometricMeanOf(ws_all));
  if (with_obs) {
    // Fold the cluster's live counters (ingest, index, query lifecycle) into
    // the artifact so the JSON also proves what the run did.
    env.cluster->UpdateScrapedMetrics();
    artifact.MergeRegistry(registry);
    artifact.SetValue("bench_trace_events", {},
                      static_cast<double>(tracer.size()));
  }
  artifact.Write(JsonOutPath(argc, argv));
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(argc, argv);
  return 0;
}
