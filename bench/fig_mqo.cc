// Shared template-group evaluation: per-trigger latency, grouped vs
// independent (DESIGN.md §5.12).
//
// A deployment registers thousands of continuous queries that are alpha-
// renamed instantiations of a handful of templates (per-user follower
// feeds, per-device monitors, ...). MQO canonicalizes each registration
// into a template signature, evaluates one shared probe per group per
// trigger, and fans the probe rows out per member via a hash partition on
// the hole column. This bench registers 8 templates x 1024 instantiations
// on twin clusters — grouped (MQO on, the default) vs independent (MQO
// off) — feeds both the identical stream, and measures the total simulated
// latency to serve ALL registrations at each trigger. Acceptance: >= 5x
// per-trigger speedup, and exactly #groups x #triggers shared evaluations
// (every sibling after the payer is memo-served).

#include <cstdint>
#include <map>
#include <set>

#include "bench/bench_common.h"

namespace wukongs {
namespace bench {
namespace {

constexpr int kTemplates = 8;
constexpr int kMembersPerTemplate = 1024;
constexpr int kEntities = 64;      // Size of each hop's entity pool.
constexpr int kEdgesPerMember = 2;  // Follow edges per user per template.
constexpr StreamTime kStep = 100;
constexpr StreamTime kWarmEnd = 600;  // First full RANGE 600ms window.
constexpr int kSamples = 10;

std::string MemberQuery(int tmpl, int member) {
  // Template t is a 4-pattern chain: the member's user constant (the hole)
  // reaches entities over p<t>, two shared stored hops (q, r) extend the
  // chain, and the tail joins the window. All 1024 instantiations of one
  // p<t> canonicalize to the same key; the shared probe evaluates the whole
  // chain once per trigger, so grouping amortizes three join steps and
  // leaves each member only the final-row fan-out.
  std::string name = "q" + std::to_string(tmpl) + "_" + std::to_string(member);
  return "REGISTER QUERY " + name +
         " AS SELECT ?c ?w ?v FROM STREAM <S> [RANGE 600ms STEP 100ms] "
         "FROM <Base> WHERE { GRAPH <Base> { u" + std::to_string(member) +
         " p" + std::to_string(tmpl) +
         " ?a . ?a q ?b . ?b r ?c } GRAPH <S> { ?c at ?w . ?c sig ?v } }";
}

struct Twin {
  std::unique_ptr<Cluster> cluster;
  StreamId stream = 0;
  std::vector<Cluster::ContinuousHandle> handles;
};

Twin MakeTwin(StringServer* strings, bool mqo_enabled) {
  Twin t;
  ClusterConfig config;
  config.nodes = 4;
  config.batch_interval_ms = kStep;
  config.mqo.enabled = mqo_enabled;
  t.cluster = std::make_unique<Cluster>(config, strings);
  t.stream = *t.cluster->DefineStream("S", {"at", "sig"});

  std::vector<Triple> base;
  base.reserve(kTemplates * kMembersPerTemplate * kEdgesPerMember +
               2 * kEntities);
  for (int tmpl = 0; tmpl < kTemplates; ++tmpl) {
    PredicateId pred = strings->InternPredicate("p" + std::to_string(tmpl));
    for (int m = 0; m < kMembersPerTemplate; ++m) {
      VertexId user = strings->InternVertex("u" + std::to_string(m));
      for (int e = 0; e < kEdgesPerMember; ++e) {
        VertexId entity = strings->InternVertex(
            "a" + std::to_string((m * kEdgesPerMember + e + tmpl) % kEntities));
        base.push_back(Triple{user, pred, entity});
      }
    }
  }
  // The shared chain hops: a_i -q-> b_i -r-> c_i (one edge each, so the
  // chain extends join depth without inflating per-member result rows).
  PredicateId q_pred = strings->InternPredicate("q");
  PredicateId r_pred = strings->InternPredicate("r");
  for (int e = 0; e < kEntities; ++e) {
    base.push_back(Triple{strings->InternVertex("a" + std::to_string(e)),
                          q_pred,
                          strings->InternVertex("b" + std::to_string(e))});
    base.push_back(Triple{strings->InternVertex("b" + std::to_string(e)),
                          r_pred,
                          strings->InternVertex("c" + std::to_string(e))});
  }
  t.cluster->LoadBase(base);

  t.handles.reserve(kTemplates * kMembersPerTemplate);
  for (int tmpl = 0; tmpl < kTemplates; ++tmpl) {
    for (int m = 0; m < kMembersPerTemplate; ++m) {
      auto h = t.cluster->RegisterContinuous(MemberQuery(tmpl, m));
      if (!h.ok()) {
        std::cerr << "register failed: " << h.status().ToString() << "\n";
        std::abort();
      }
      t.handles.push_back(*h);
    }
  }
  return t;
}

// One ping per tail entity per slice so every member has window bindings.
void Feed(Twin* t, StringServer* strings, StreamTime last_end) {
  for (StreamTime upto = kStep; upto <= last_end; upto += kStep) {
    StreamTupleVec tuples;
    tuples.reserve(kEntities + 8);
    for (int e = 0; e < kEntities; ++e) {
      tuples.push_back({{strings->InternVertex("c" + std::to_string(e)),
                         strings->InternPredicate("at"),
                         strings->InternVertex("L" + std::to_string(upto))},
                        upto - 50,
                        TupleKind::kTiming});
    }
    // Signals are sparse — a rotating eighth of the tail entities per slice —
    // so the two-pattern window join stays selective per member.
    int slice = static_cast<int>(upto / kStep);
    for (int i = 0; i < 8; ++i) {
      int e = (slice * 8 + i) % kEntities;
      tuples.push_back({{strings->InternVertex("c" + std::to_string(e)),
                         strings->InternPredicate("sig"),
                         strings->InternVertex("V" + std::to_string(upto))},
                        upto - 40,
                        TupleKind::kTiming});
    }
    Status s = t->cluster->FeedStream(t->stream, tuples);
    if (!s.ok()) {
      std::cerr << "feed failed: " << s.ToString() << "\n";
      std::abort();
    }
  }
  t->cluster->AdvanceStreams(last_end);
}

// Total simulated latency to serve every registration at one trigger.
double TriggerAll(Twin* t, StreamTime end) {
  double total_ms = 0.0;
  for (Cluster::ContinuousHandle h : t->handles) {
    auto exec = t->cluster->ExecuteContinuousAt(h, end);
    if (!exec.ok()) {
      std::cerr << "trigger failed: " << exec.status().ToString() << "\n";
      std::abort();
    }
    total_ms += exec->latency_ms();
  }
  return total_ms;
}

std::multiset<std::string> Canon(const QueryResult& r) {
  std::multiset<std::string> out;
  for (const auto& row : r.rows) {
    std::string key;
    for (const ResultValue& v : row) {
      key += v.is_number ? "n" + std::to_string(v.number)
                         : "v" + std::to_string(v.vid);
      key += "|";
    }
    out.insert(key);
  }
  return out;
}

// Lockstep trigger of both twins with per-registration bag comparison — the
// bench-scale cousin of the mqo differential lane; a drift here means the
// speedup would be measured over wrong answers.
uint64_t TriggerBothVerified(Twin* grouped, Twin* indep, StreamTime end) {
  uint64_t rows = 0;
  for (size_t i = 0; i < grouped->handles.size(); ++i) {
    auto g = grouped->cluster->ExecuteContinuousAt(grouped->handles[i], end);
    auto ind = indep->cluster->ExecuteContinuousAt(indep->handles[i], end);
    if (!g.ok() || !ind.ok()) {
      std::cerr << "verified trigger failed\n";
      std::abort();
    }
    if (Canon(g->result) != Canon(ind->result)) {
      std::cerr << "grouped/independent result divergence at registration " << i
                << "\n";
      std::abort();
    }
    rows += g->result.rows.size();
  }
  return rows;
}

void Run(const std::string& json_path) {
  PrintHeader("Fig. MQO: per-trigger latency, grouped vs independent",
              NetworkModel{});
  std::cout << kTemplates << " templates x " << kMembersPerTemplate
            << " instantiations (" << kTemplates * kMembersPerTemplate
            << " continuous queries per cluster), RANGE 600ms STEP 100ms, "
            << kSamples << " measured triggers\n\n";

  StringServer strings;
  Twin grouped = MakeTwin(&strings, /*mqo_enabled=*/true);
  Twin indep = MakeTwin(&strings, /*mqo_enabled=*/false);
  if (grouped.cluster->MqoLiveGroups() != kTemplates) {
    std::cerr << "expected " << kTemplates << " template groups, got "
              << grouped.cluster->MqoLiveGroups() << "\n";
    std::abort();
  }

  StreamTime last_end = kWarmEnd + static_cast<StreamTime>(kSamples) * kStep;
  Feed(&grouped, &strings, last_end);
  Feed(&indep, &strings, last_end);

  // Warm-up trigger: caches the plans (and the group probes) so both lanes
  // measure steady-state sliding, not first-window setup. Doubles as the
  // correctness gate: every member's bag must match its independent twin.
  uint64_t rows = TriggerBothVerified(&grouped, &indep, kWarmEnd);
  if (rows == 0) {
    std::cerr << "warm-up produced no rows; workload is degenerate\n";
    std::abort();
  }

  Histogram grouped_hist;
  Histogram indep_hist;
  for (int i = 1; i <= kSamples; ++i) {
    StreamTime end = kWarmEnd + static_cast<StreamTime>(i) * kStep;
    grouped_hist.Add(TriggerAll(&grouped, end));
    indep_hist.Add(TriggerAll(&indep, end));
  }

  // Counter identity: one shared probe per group per trigger (warm-up
  // included), every sibling after the payer memo-served.
  Cluster::MqoStats stats = grouped.cluster->mqo_stats();
  uint64_t triggers = static_cast<uint64_t>(kSamples) + 1;
  uint64_t want_shared = static_cast<uint64_t>(kTemplates) * triggers;
  uint64_t want_fanout =
      static_cast<uint64_t>(kTemplates) * (kMembersPerTemplate - 1) * triggers;
  if (stats.shared_evals != want_shared || stats.fanout_served != want_fanout) {
    std::cerr << "MQO counter identity violated: shared_evals="
              << stats.shared_evals << " (want " << want_shared
              << "), fanout_served=" << stats.fanout_served << " (want "
              << want_fanout << ")\n";
    std::abort();
  }
  if (indep.cluster->mqo_stats().shared_evals != 0) {
    std::cerr << "independent twin ran a shared eval\n";
    std::abort();
  }

  double speedup = grouped_hist.Median() > 0
                       ? indep_hist.Median() / grouped_hist.Median()
                       : 0.0;
  TablePrinter table({"templates", "members", "independent p50 (ms)",
                      "grouped p50 (ms)", "speedup", "shared evals"});
  table.AddRow({std::to_string(kTemplates), std::to_string(kMembersPerTemplate),
                TablePrinter::Num(indep_hist.Median(), 3),
                TablePrinter::Num(grouped_hist.Median(), 3),
                TablePrinter::Num(speedup, 2) + "x",
                std::to_string(stats.shared_evals) + "/" +
                    std::to_string(want_shared)});
  table.Print();
  std::cout << "\nper-trigger speedup: " << TablePrinter::Num(speedup, 2)
            << "x (acceptance floor: 5x)\n";

  BenchArtifact artifact("fig_mqo");
  artifact.RecordLatencies("bench_latency_ms", {{"mode", "independent"}},
                           indep_hist);
  artifact.RecordLatencies("bench_latency_ms", {{"mode", "grouped"}},
                           grouped_hist);
  artifact.SetValue("bench_mqo_speedup", {}, speedup);
  artifact.SetValue("bench_mqo_templates", {}, kTemplates);
  artifact.SetValue("bench_mqo_members_per_template", {}, kMembersPerTemplate);
  artifact.AddCount("bench_mqo_shared_evals", {}, stats.shared_evals);
  artifact.AddCount("bench_mqo_fanout_served", {}, stats.fanout_served);
  artifact.Write(json_path);
}

}  // namespace
}  // namespace bench
}  // namespace wukongs

int main(int argc, char** argv) {
  wukongs::bench::Run(wukongs::bench::JsonOutPath(argc, argv));
  return 0;
}
