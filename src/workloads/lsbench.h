// LSBench-style social-network workload (paper §6.1, Table 1).
//
// The paper evaluates on LSBench (Linked Stream Benchmark): a social graph
// as initially stored data (profiles, friendships, historical posts) plus
// five RDF streams — post (PO), post-like (PO-L), photo (PH), photo-like
// (PH-L) and GPS (GPS, timing data). This module is a from-scratch generator
// with the same schema and stream-rate *ratios* (PO:PO-L:PH:PH-L:GPS =
// 10:86:10:7.5:20), scaled to laptop size, and the six continuous queries
// L1-L6 plus six one-shot queries S1-S6 in the same selectivity classes:
//   group (I)  L1-L3: selective, constant-rooted, fixed-size results;
//   group (II) L4-L6: non-selective, result size grows with data.

#ifndef SRC_WORKLOADS_LSBENCH_H_
#define SRC_WORKLOADS_LSBENCH_H_

#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

namespace wukongs {

struct LsBenchConfig {
  size_t users = 2000;
  size_t avg_follows = 10;
  size_t initial_posts_per_user = 5;
  size_t initial_photos_per_user = 2;
  size_t hashtags = 200;
  size_t albums = 100;
  uint64_t seed = 42;

  // Stream rates in tuples/second, preserving the paper's ratios at 1/100
  // scale (paper totals 133K tuples/s across the five streams).
  double po_rate = 100.0;
  double pol_rate = 860.0;
  double ph_rate = 100.0;
  double phl_rate = 75.0;
  double gps_rate = 200.0;
  double rate_scale = 1.0;  // Multiplies every rate (Fig. 13 sweeps this).
};

class LsBench {
 public:
  static constexpr int kNumContinuous = 6;  // L1..L6.
  static constexpr int kNumOneShot = 6;     // S1..S6.

  LsBench(Cluster* cluster, LsBenchConfig config);

  // Declares the five streams (GPS carries timing data) and loads the
  // initial social graph. Call once, before feeding.
  Status Setup();

  // Generates and feeds stream tuples covering [from_ms, to_ms) at the
  // configured rates, then advances stream clocks to to_ms.
  Status FeedInterval(StreamTime from_ms, StreamTime to_ms);

  // Continuous query L1..L6 (1-based); group (I) = L1-L3, group (II) = L4-L6.
  // Window settings follow the paper: RANGE 1s, STEP 100ms.
  std::string ContinuousQueryText(int number) const;
  // Same query shape with a randomized constant start vertex, for the mixed
  // throughput workloads of Figs. 14-15.
  std::string ContinuousQueryText(int number, Rng* rng) const;

  // One-shot query S1..S6 (1-based).
  std::string OneShotQueryText(int number) const;

  // Mirrors every generated batch of stream tuples to an external consumer
  // (used by benches to feed the same workload into baseline engines).
  using Tee = std::function<void(const std::string& stream_name,
                                 const StreamTupleVec& tuples)>;
  void SetTee(Tee tee) { tee_ = std::move(tee); }

  // The initial graph, retained so baselines can load identical data.
  const TripleVec& initial_graph() const { return initial_graph_; }

  StreamId po_stream() const { return po_; }
  StreamId pol_stream() const { return pol_; }
  StreamId ph_stream() const { return ph_; }
  StreamId phl_stream() const { return phl_; }
  StreamId gps_stream() const { return gps_; }

  size_t total_rate_tuples_per_sec() const;
  size_t initial_triples() const { return initial_triples_; }

  // Mid-run rate mutation (bench/fig13_stream_rate, planner drift tests):
  // rescales every stream's rate from the next FeedInterval on. The schema
  // and tuple shapes are unchanged — only the per-interval tuple counts move.
  void SetRateScale(double scale) { config_.rate_scale = scale; }
  double rate_scale() const { return config_.rate_scale; }

 private:
  std::string User(size_t i) const { return "User" + std::to_string(i); }
  std::string Tag(size_t i) const { return "Tag" + std::to_string(i); }
  std::string Album(size_t i) const { return "Album" + std::to_string(i); }

  VertexId Vid(const std::string& s) { return cluster_->strings()->InternVertex(s); }

  StreamTuple Tuple(VertexId s, PredicateId p, VertexId o, StreamTime ts) {
    return StreamTuple{{s, p, o}, ts, TupleKind::kTimeless};
  }

  Cluster* cluster_;
  LsBenchConfig config_;
  Rng rng_;

  StreamId po_ = 0, pol_ = 0, ph_ = 0, phl_ = 0, gps_ = 0;
  PredicateId p_ty_ = 0, p_fo_ = 0, p_po_ = 0, p_ht_ = 0, p_li_ = 0, p_ph_ = 0,
              p_ab_ = 0, p_pl_ = 0, p_ga_ = 0;
  VertexId v_user_type_ = 0;

  Tee tee_;
  TripleVec initial_graph_;
  size_t next_post_ = 0;
  size_t next_photo_ = 0;
  std::deque<VertexId> recent_posts_;   // Like targets.
  std::deque<VertexId> recent_photos_;  // Photo-like targets.
  size_t initial_triples_ = 0;
  bool setup_done_ = false;
};

}  // namespace wukongs

#endif  // SRC_WORKLOADS_LSBENCH_H_
