#include "src/workloads/citybench.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace wukongs {

CityBench::CityBench(Cluster* cluster, CityBenchConfig config)
    : cluster_(cluster), config_(config), rng_(config.seed) {}

Status CityBench::Setup() {
  assert(!setup_done_);
  StringServer* s = cluster_->strings();
  p_congestion_ = s->InternPredicate("congestion");
  p_speed_ = s->InternPredicate("avgSpeed");
  p_temp_ = s->InternPredicate("temperature");
  p_humidity_ = s->InternPredicate("humidity");
  p_at_ = s->InternPredicate("at");
  p_vacancies_ = s->InternPredicate("vacancies");
  p_pollution_ = s->InternPredicate("pollutionLevel");
  p_on_road_ = s->InternPredicate("onRoad");
  p_connects_ = s->InternPredicate("connectsTo");
  p_located_ = s->InternPredicate("locatedOn");
  p_monitors_ = s->InternPredicate("monitors");
  p_near_ = s->InternPredicate("nearRoad");

  // Observation predicates are timing data.
  vt1_ = *cluster_->DefineStream("VT1", {"congestion", "avgSpeed"});
  vt2_ = *cluster_->DefineStream("VT2", {"congestion", "avgSpeed"});
  wt_ = *cluster_->DefineStream("WT", {"temperature", "humidity"});
  ul_ = *cluster_->DefineStream("UL", {"at"});
  pk1_ = *cluster_->DefineStream("PK1", {"vacancies"});
  pk2_ = *cluster_->DefineStream("PK2", {"vacancies"});
  for (int i = 1; i <= 5; ++i) {
    pl_.push_back(*cluster_->DefineStream("PL" + std::to_string(i),
                                          {"pollutionLevel"}));
  }

  // --- Stored metadata graph. ---
  TripleVec base;
  std::vector<VertexId> roads(config_.roads);
  for (size_t r = 0; r < config_.roads; ++r) {
    roads[r] = Vid(Road(r));
  }
  for (size_t r = 0; r < config_.roads; ++r) {
    // A sparse road network: each road connects to 2-4 others (as a set of
    // triples — duplicate picks are discarded).
    size_t degree = rng_.Uniform(2, 4);
    std::unordered_set<size_t> picked;
    for (size_t d = 0; d < degree; ++d) {
      size_t to = rng_.Uniform(0, config_.roads - 1);
      if (to != r && picked.insert(to).second) {
        base.push_back({roads[r], p_connects_, roads[to]});
      }
    }
  }
  for (size_t i = 0; i < config_.traffic_sensors; ++i) {
    VertexId sensor = Vid(TrafficSensor(i));
    base.push_back({sensor, p_on_road_, roads[rng_.Uniform(0, config_.roads - 1)]});
    (i % 2 == 0 ? vt1_sensors_ : vt2_sensors_).push_back(sensor);
  }
  for (size_t i = 0; i < config_.parking_lots; ++i) {
    VertexId lot = Vid(ParkingLot(i));
    base.push_back({lot, p_located_, roads[rng_.Uniform(0, config_.roads - 1)]});
    (i % 2 == 0 ? pk1_lots_ : pk2_lots_).push_back(lot);
  }
  pl_sensors_.resize(5);
  for (size_t i = 0; i < config_.pollution_sensors; ++i) {
    VertexId sensor = Vid(PollutionSensor(i));
    base.push_back({sensor, p_near_, roads[rng_.Uniform(0, config_.roads - 1)]});
    pl_sensors_[i % 5].push_back(sensor);
  }
  for (size_t i = 0; i < config_.weather_stations; ++i) {
    VertexId station = Vid(Station(i));
    // Each station monitors a contiguous run of roads.
    size_t span = config_.roads / config_.weather_stations;
    for (size_t r = i * span; r < (i + 1) * span && r < config_.roads; ++r) {
      base.push_back({station, p_monitors_, roads[r]});
    }
    stations_.push_back(station);
  }
  for (size_t i = 0; i < config_.users; ++i) {
    users_.push_back(Vid(CityUser(i)));
  }
  cluster_->LoadBase(base);
  initial_triples_ = base.size();
  initial_graph_ = std::move(base);
  setup_done_ = true;
  return Status::Ok();
}

const char* CityBench::StreamName(int index) {
  static const char* kNames[] = {"VT1", "VT2", "WT",  "UL",  "PK1", "PK2",
                                 "PL1", "PL2", "PL3", "PL4", "PL5"};
  return kNames[index];
}

Status CityBench::FeedObservations(StreamId stream, const char* stream_name,
                                   const std::vector<ObsSpec>& specs,
                                   StreamTime from_ms, StreamTime to_ms) {
  const double dt_sec = static_cast<double>(to_ms - from_ms) / 1000.0;
  StreamTupleVec tuples;
  for (const ObsSpec& spec : specs) {
    size_t n = static_cast<size_t>(spec.rate * config_.rate_scale * dt_sec);
    for (size_t i = 0; i < n; ++i) {
      StreamTime ts = from_ms + rng_.Uniform(0, to_ms - from_ms - 1);
      VertexId source = (*spec.sources)[rng_.Uniform(0, spec.sources->size() - 1)];
      VertexId value = Vid(std::to_string(rng_.Uniform(spec.lo, spec.hi)));
      tuples.push_back(
          StreamTuple{{source, spec.pred, value}, ts, TupleKind::kTimeless});
    }
  }
  std::sort(tuples.begin(), tuples.end(),
            [](const StreamTuple& a, const StreamTuple& b) {
              return a.timestamp < b.timestamp;
            });
  if (tee_) {
    tee_(stream_name, tuples);
  }
  return cluster_->FeedStream(stream, tuples);
}

Status CityBench::FeedInterval(StreamTime from_ms, StreamTime to_ms) {
  assert(setup_done_);
  double half_vt = config_.vt_rate / 2;
  double half_wt = config_.wt_rate / 2;
  Status s = FeedObservations(
      vt1_, "VT1",
      {{p_congestion_, &vt1_sensors_, half_vt, 0, 100},
       {p_speed_, &vt1_sensors_, half_vt, 5, 130}},
      from_ms, to_ms);
  if (!s.ok()) {
    return s;
  }
  s = FeedObservations(vt2_, "VT2",
                       {{p_congestion_, &vt2_sensors_, half_vt, 0, 100},
                        {p_speed_, &vt2_sensors_, half_vt, 5, 130}},
                       from_ms, to_ms);
  if (!s.ok()) {
    return s;
  }
  s = FeedObservations(wt_, "WT",
                       {{p_temp_, &stations_, half_wt, 0, 40},
                        {p_humidity_, &stations_, half_wt, 20, 100}},
                       from_ms, to_ms);
  if (!s.ok()) {
    return s;
  }
  // User locations reference roads (graph-valued observation).
  {
    const double dt_sec = static_cast<double>(to_ms - from_ms) / 1000.0;
    size_t n = static_cast<size_t>(config_.ul_rate * config_.rate_scale * dt_sec);
    std::vector<StreamTime> times(n);
    for (size_t i = 0; i < n; ++i) {
      times[i] = from_ms + rng_.Uniform(0, to_ms - from_ms - 1);
    }
    std::sort(times.begin(), times.end());
    StreamTupleVec tuples;
    for (StreamTime ts : times) {
      VertexId user = users_[rng_.Uniform(0, users_.size() - 1)];
      VertexId road = Vid(Road(rng_.Uniform(0, config_.roads - 1)));
      tuples.push_back(StreamTuple{{user, p_at_, road}, ts, TupleKind::kTimeless});
    }
    if (tee_) {
      tee_("UL", tuples);
    }
    s = cluster_->FeedStream(ul_, tuples);
    if (!s.ok()) {
      return s;
    }
  }
  s = FeedObservations(pk1_, "PK1", {{p_vacancies_, &pk1_lots_, config_.pk_rate, 0, 500}},
                       from_ms, to_ms);
  if (!s.ok()) {
    return s;
  }
  s = FeedObservations(pk2_, "PK2", {{p_vacancies_, &pk2_lots_, config_.pk_rate, 0, 500}},
                       from_ms, to_ms);
  if (!s.ok()) {
    return s;
  }
  for (size_t i = 0; i < pl_.size(); ++i) {
    s = FeedObservations(pl_[i], StreamName(static_cast<int>(6 + i)),
                         {{p_pollution_, &pl_sensors_[i], config_.pl_rate, 0, 10}},
                         from_ms, to_ms);
    if (!s.ok()) {
      return s;
    }
  }
  cluster_->AdvanceStreams(to_ms);
  return Status::Ok();
}

std::string CityBench::ContinuousQueryText(int number) const {
  auto win = [](const char* stream) {
    return std::string("FROM STREAM <") + stream + "> [RANGE 3s STEP 1s]\n";
  };
  switch (number) {
    case 1:
      // VT1+VT2: congestion on both sensor sets for connected roads.
      return "REGISTER QUERY C1 AS SELECT ?R1 ?R2 ?C1 ?C2\n" + win("VT1") +
             win("VT2") +
             "FROM <City>\n"
             "WHERE { GRAPH <VT1> { ?S1 congestion ?C1 }\n"
             "        GRAPH <City> { ?S1 onRoad ?R1 . ?R1 connectsTo ?R2 . "
             "?S2 onRoad ?R2 }\n"
             "        GRAPH <VT2> { ?S2 congestion ?C2 } }";
    case 2:
      // VT1+VT2+WT+UL: traffic + weather where a user currently is.
      return "REGISTER QUERY C2 AS SELECT ?U ?R ?C ?T\n" + win("VT1") + win("WT") +
             win("UL") +
             "FROM <City>\n"
             "WHERE { GRAPH <UL> { ?U at ?R }\n"
             "        GRAPH <City> { ?S onRoad ?R . ?W monitors ?R }\n"
             "        GRAPH <VT1> { ?S congestion ?C }\n"
             "        GRAPH <WT> { ?W temperature ?T } }";
    case 3:
      // VT2 aggregate: average congestion per road.
      return "REGISTER QUERY C3 AS SELECT ?R (AVG(?C) AS ?avg)\n" + win("VT2") +
             "FROM <City>\n"
             "WHERE { GRAPH <VT2> { ?S congestion ?C }\n"
             "        GRAPH <City> { ?S onRoad ?R } }\n"
             "GROUP BY ?R";
    case 4:
      // PK1+PK2: lots with vacancies above a threshold.
      return "REGISTER QUERY C4 AS SELECT ?L ?V\n" + win("PK1") + win("PK2") +
             "WHERE { GRAPH <PK1> { ?L vacancies ?V }\n"
             "        FILTER (?V > 250) }";
    case 5:
      // PK + VT: parking on roads that are currently uncongested.
      return "REGISTER QUERY C5 AS SELECT ?L ?V ?C\n" + win("PK1") + win("VT1") +
             "FROM <City>\n"
             "WHERE { GRAPH <PK1> { ?L vacancies ?V }\n"
             "        GRAPH <City> { ?L locatedOn ?R . ?S onRoad ?R }\n"
             "        GRAPH <VT1> { ?S congestion ?C }\n"
             "        FILTER (?C < 40) }";
    case 6:
      // WT: hot and humid stations.
      return "REGISTER QUERY C6 AS SELECT ?W ?T ?H\n" + win("WT") +
             "WHERE { GRAPH <WT> { ?W temperature ?T . ?W humidity ?H }\n"
             "        FILTER (?T > 25) }";
    case 7:
      // UL+VT: congestion where each user is.
      return "REGISTER QUERY C7 AS SELECT ?U ?R ?C\n" + win("UL") + win("VT1") +
             "FROM <City>\n"
             "WHERE { GRAPH <UL> { ?U at ?R }\n"
             "        GRAPH <City> { ?S onRoad ?R }\n"
             "        GRAPH <VT1> { ?S congestion ?C } }";
    case 8:
      // UL+PK: vacancies near each user.
      return "REGISTER QUERY C8 AS SELECT ?U ?L ?V\n" + win("UL") + win("PK2") +
             "FROM <City>\n"
             "WHERE { GRAPH <UL> { ?U at ?R }\n"
             "        GRAPH <City> { ?L locatedOn ?R }\n"
             "        GRAPH <PK2> { ?L vacancies ?V } }";
    case 9:
      // PL+VT: pollution vs congestion per road.
      return "REGISTER QUERY C9 AS SELECT ?R ?P ?C\n" + win("PL1") + win("VT1") +
             "FROM <City>\n"
             "WHERE { GRAPH <PL1> { ?X pollutionLevel ?P }\n"
             "        GRAPH <City> { ?X nearRoad ?R . ?S onRoad ?R }\n"
             "        GRAPH <VT1> { ?S congestion ?C } }";
    case 10:
      // PL multi-stream aggregate: max level across two pollution streams.
      return "REGISTER QUERY C10 AS SELECT (MAX(?P) AS ?m) (COUNT(?X) AS ?n)\n" +
             win("PL2") + win("PL3") +
             "WHERE { GRAPH <PL2> { ?X pollutionLevel ?P } }";
    case 11:
      // PL single-stream filter: alert on high pollution.
      return "REGISTER QUERY C11 AS SELECT ?X ?P\n" + win("PL4") +
             "WHERE { GRAPH <PL4> { ?X pollutionLevel ?P }\n"
             "        FILTER (?P >= 8) }";
    default:
      assert(false && "CityBench query number must be 1..11");
      return "";
  }
}

}  // namespace wukongs
