// CityBench-style smart-city workload (paper §6.10, Tables 1 and 9).
//
// CityBench replays IoT sensor streams from the city of Aarhus: vehicle
// traffic (VT1-2), weather (WT), user location (UL), parking (PK1-2) and
// pollution (PL1-5), over a small stored graph of sensor/road/parking-lot
// metadata (139K triples in the paper; scaled here). Observations are
// *timing* data — they only matter inside windows — while the metadata is
// stored. Queries C1-C11 combine streams per the paper's usage matrix, with
// FILTERs and aggregates typical of RSP benchmarks. Paper settings: window
// RANGE 3s, STEP 1s; stream rates 4-19 tuples/s.

#ifndef SRC_WORKLOADS_CITYBENCH_H_
#define SRC_WORKLOADS_CITYBENCH_H_

#include <functional>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"

namespace wukongs {

struct CityBenchConfig {
  size_t roads = 120;
  size_t traffic_sensors = 60;   // Split between VT1 and VT2.
  size_t parking_lots = 30;      // Split between PK1 and PK2.
  size_t pollution_sensors = 50; // Split across PL1..PL5.
  size_t weather_stations = 6;
  size_t users = 40;
  uint64_t seed = 7;

  // Tuples/second, paper Table 1 defaults.
  double vt_rate = 19.0;
  double wt_rate = 12.0;
  double ul_rate = 7.0;
  double pk_rate = 4.0;
  double pl_rate = 4.0;
  double rate_scale = 1.0;
};

class CityBench {
 public:
  static constexpr int kNumContinuous = 11;  // C1..C11.

  CityBench(Cluster* cluster, CityBenchConfig config);

  // Declares the 11 streams and loads the sensor metadata graph.
  Status Setup();

  // Generates and feeds observations covering [from_ms, to_ms).
  Status FeedInterval(StreamTime from_ms, StreamTime to_ms);

  // Continuous query C1..C11 (1-based), window RANGE 3s STEP 1s.
  std::string ContinuousQueryText(int number) const;

  // Mirrors generated tuples to an external consumer (for baseline feeds).
  using Tee = std::function<void(const std::string& stream_name,
                                 const StreamTupleVec& tuples)>;
  void SetTee(Tee tee) { tee_ = std::move(tee); }
  const TripleVec& initial_graph() const { return initial_graph_; }

  static const char* StreamName(int index);  // 0..10 -> VT1..PL5.

  size_t initial_triples() const { return initial_triples_; }

 private:
  std::string Road(size_t i) const { return "Road" + std::to_string(i); }
  std::string TrafficSensor(size_t i) const { return "TSensor" + std::to_string(i); }
  std::string ParkingLot(size_t i) const { return "Lot" + std::to_string(i); }
  std::string PollutionSensor(size_t i) const { return "PSensor" + std::to_string(i); }
  std::string Station(size_t i) const { return "Station" + std::to_string(i); }
  std::string CityUser(size_t i) const { return "CUser" + std::to_string(i); }

  VertexId Vid(const std::string& s) { return cluster_->strings()->InternVertex(s); }

  // One observation kind within a stream: predicate, emitting sources, rate
  // and the value range (values are quantized integers).
  struct ObsSpec {
    PredicateId pred;
    const std::vector<VertexId>* sources;
    double rate;
    uint64_t lo;
    uint64_t hi;
  };
  // Generates all kinds for one stream, merges them in timestamp order and
  // feeds them in a single call (streams require monotone timestamps).
  Status FeedObservations(StreamId stream, const char* stream_name,
                          const std::vector<ObsSpec>& specs, StreamTime from_ms,
                          StreamTime to_ms);

  Cluster* cluster_;
  CityBenchConfig config_;
  Rng rng_;

  // Streams: VT1, VT2, WT, UL, PK1, PK2, PL1..PL5.
  StreamId vt1_ = 0, vt2_ = 0, wt_ = 0, ul_ = 0, pk1_ = 0, pk2_ = 0;
  std::vector<StreamId> pl_;

  PredicateId p_congestion_ = 0, p_speed_ = 0, p_temp_ = 0, p_humidity_ = 0,
              p_at_ = 0, p_vacancies_ = 0, p_pollution_ = 0;
  PredicateId p_on_road_ = 0, p_connects_ = 0, p_located_ = 0, p_monitors_ = 0,
              p_near_ = 0;

  std::vector<VertexId> vt1_sensors_, vt2_sensors_, pk1_lots_, pk2_lots_,
      stations_, users_;
  std::vector<std::vector<VertexId>> pl_sensors_;

  Tee tee_;
  TripleVec initial_graph_;
  size_t initial_triples_ = 0;
  bool setup_done_ = false;
};

}  // namespace wukongs

#endif  // SRC_WORKLOADS_CITYBENCH_H_
