#include "src/workloads/lsbench.h"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace wukongs {
namespace {

// Keep enough recent posts/photos around for likes to reference.
constexpr size_t kRecentPoolSize = 4096;

}  // namespace

LsBench::LsBench(Cluster* cluster, LsBenchConfig config)
    : cluster_(cluster), config_(config), rng_(config.seed) {}

Status LsBench::Setup() {
  assert(!setup_done_);
  StringServer* s = cluster_->strings();
  p_ty_ = s->InternPredicate("ty");
  p_fo_ = s->InternPredicate("fo");
  p_po_ = s->InternPredicate("po");
  p_ht_ = s->InternPredicate("ht");
  p_li_ = s->InternPredicate("li");
  p_ph_ = s->InternPredicate("ph");
  p_ab_ = s->InternPredicate("ab");
  p_pl_ = s->InternPredicate("pl");
  p_ga_ = s->InternPredicate("ga");
  v_user_type_ = Vid("UserType");

  auto po = cluster_->DefineStream("PO_Stream");
  if (!po.ok()) {
    return po.status();
  }
  po_ = *po;
  pol_ = *cluster_->DefineStream("POL_Stream");
  ph_ = *cluster_->DefineStream("PH_Stream");
  phl_ = *cluster_->DefineStream("PHL_Stream");
  gps_ = *cluster_->DefineStream("GPS_Stream", {"ga"});

  // --- Initial social graph. ---
  TripleVec base;
  std::vector<VertexId> users(config_.users);
  for (size_t u = 0; u < config_.users; ++u) {
    users[u] = Vid(User(u));
    base.push_back({users[u], p_ty_, v_user_type_});
  }
  // Follows: preferential attachment via Zipf over user ranks, so a few
  // celebrities have large followings (matches social-graph skew). An RDF
  // graph is a set of triples, so repeated picks are deduplicated.
  for (size_t u = 0; u < config_.users; ++u) {
    std::unordered_set<VertexId> picked;
    for (size_t f = 0; f < config_.avg_follows; ++f) {
      size_t target = rng_.Zipf(config_.users);
      if (target != u && picked.insert(users[target]).second) {
        base.push_back({users[u], p_fo_, users[target]});
      }
    }
  }
  // Historical posts with hashtags and likes.
  for (size_t u = 0; u < config_.users; ++u) {
    for (size_t p = 0; p < config_.initial_posts_per_user; ++p) {
      VertexId post = Vid("Post" + std::to_string(next_post_++));
      base.push_back({users[u], p_po_, post});
      base.push_back({post, p_ht_, Vid(Tag(rng_.Zipf(config_.hashtags)))});
      size_t likes = rng_.Uniform(0, 3);
      std::unordered_set<VertexId> likers;
      for (size_t l = 0; l < likes; ++l) {
        VertexId liker = users[rng_.Zipf(config_.users)];
        if (likers.insert(liker).second) {
          base.push_back({liker, p_li_, post});
        }
      }
      recent_posts_.push_back(post);
    }
  }
  // Historical photos in albums.
  for (size_t u = 0; u < config_.users; ++u) {
    for (size_t p = 0; p < config_.initial_photos_per_user; ++p) {
      VertexId photo = Vid("Photo" + std::to_string(next_photo_++));
      base.push_back({users[u], p_ph_, photo});
      base.push_back({photo, p_ab_, Vid(Album(rng_.Zipf(config_.albums)))});
      recent_photos_.push_back(photo);
    }
  }
  cluster_->LoadBase(base);
  initial_triples_ = base.size();
  initial_graph_ = std::move(base);
  while (recent_posts_.size() > kRecentPoolSize) {
    recent_posts_.pop_front();
  }
  while (recent_photos_.size() > kRecentPoolSize) {
    recent_photos_.pop_front();
  }
  setup_done_ = true;
  return Status::Ok();
}

Status LsBench::FeedInterval(StreamTime from_ms, StreamTime to_ms) {
  assert(setup_done_);
  assert(to_ms > from_ms);
  const double dt_sec = static_cast<double>(to_ms - from_ms) / 1000.0;
  auto count_of = [&](double rate) {
    return static_cast<size_t>(rate * config_.rate_scale * dt_sec);
  };
  auto times_of = [&](size_t n) {
    std::vector<StreamTime> t(n);
    for (size_t i = 0; i < n; ++i) {
      t[i] = from_ms + rng_.Uniform(0, to_ms - from_ms - 1);
    }
    std::sort(t.begin(), t.end());
    return t;
  };
  auto user_vid = [&] { return Vid(User(rng_.Zipf(config_.users))); };

  // PO: a new post with its hashtag (two tuples per event).
  {
    size_t n = count_of(config_.po_rate) / 2;
    StreamTupleVec tuples;
    tuples.reserve(n * 2);
    for (StreamTime ts : times_of(n)) {
      VertexId post = Vid("SPost" + std::to_string(next_post_++));
      tuples.push_back(Tuple(user_vid(), p_po_, post, ts));
      tuples.push_back(Tuple(post, p_ht_, Vid(Tag(rng_.Zipf(config_.hashtags))), ts));
      recent_posts_.push_back(post);
      if (recent_posts_.size() > kRecentPoolSize) {
        recent_posts_.pop_front();
      }
    }
    if (tee_) {
      tee_("PO_Stream", tuples);
    }
    Status s = cluster_->FeedStream(po_, tuples);
    if (!s.ok()) {
      return s;
    }
  }
  // PO-L: likes on recent posts (the heaviest stream, as in the paper).
  {
    size_t n = count_of(config_.pol_rate);
    StreamTupleVec tuples;
    tuples.reserve(n);
    for (StreamTime ts : times_of(n)) {
      // Likes concentrate on viral recent posts (Zipf over recency), which is
      // what lets the stream index coalesce many likes into few spans.
      size_t back = rng_.Zipf(recent_posts_.size());
      VertexId post = recent_posts_[recent_posts_.size() - 1 - back];
      tuples.push_back(Tuple(user_vid(), p_li_, post, ts));
    }
    if (tee_) {
      tee_("POL_Stream", tuples);
    }
    Status s = cluster_->FeedStream(pol_, tuples);
    if (!s.ok()) {
      return s;
    }
  }
  // PH: new photos with albums.
  {
    size_t n = count_of(config_.ph_rate) / 2;
    StreamTupleVec tuples;
    tuples.reserve(n * 2);
    for (StreamTime ts : times_of(n)) {
      VertexId photo = Vid("SPhoto" + std::to_string(next_photo_++));
      tuples.push_back(Tuple(user_vid(), p_ph_, photo, ts));
      tuples.push_back(Tuple(photo, p_ab_, Vid(Album(rng_.Zipf(config_.albums))), ts));
      recent_photos_.push_back(photo);
      if (recent_photos_.size() > kRecentPoolSize) {
        recent_photos_.pop_front();
      }
    }
    if (tee_) {
      tee_("PH_Stream", tuples);
    }
    Status s = cluster_->FeedStream(ph_, tuples);
    if (!s.ok()) {
      return s;
    }
  }
  // PH-L: photo likes.
  {
    size_t n = count_of(config_.phl_rate);
    StreamTupleVec tuples;
    tuples.reserve(n);
    for (StreamTime ts : times_of(n)) {
      size_t back = rng_.Zipf(recent_photos_.size());
      VertexId photo = recent_photos_[recent_photos_.size() - 1 - back];
      tuples.push_back(Tuple(user_vid(), p_pl_, photo, ts));
    }
    if (tee_) {
      tee_("PHL_Stream", tuples);
    }
    Status s = cluster_->FeedStream(phl_, tuples);
    if (!s.ok()) {
      return s;
    }
  }
  // GPS: timing data — user positions, quantized to a coarse grid.
  {
    size_t n = count_of(config_.gps_rate);
    StreamTupleVec tuples;
    tuples.reserve(n);
    for (StreamTime ts : times_of(n)) {
      std::string pos = std::to_string(rng_.Uniform(0, 99)) + "," +
                        std::to_string(rng_.Uniform(0, 99));
      tuples.push_back(Tuple(user_vid(), p_ga_, Vid(pos), ts));
    }
    if (tee_) {
      tee_("GPS_Stream", tuples);
    }
    Status s = cluster_->FeedStream(gps_, tuples);
    if (!s.ok()) {
      return s;
    }
  }
  cluster_->AdvanceStreams(to_ms);
  return Status::Ok();
}

std::string LsBench::ContinuousQueryText(int number) const {
  Rng fixed(config_.seed + static_cast<uint64_t>(number));
  return ContinuousQueryText(number, &fixed);
}

std::string LsBench::ContinuousQueryText(int number, Rng* rng) const {
  // Group (I) queries anchor on a typical user (uniform over the non-celebrity
  // tail): their personal activity inside a window is small and stays roughly
  // constant as the global stream rate grows — which is what makes these
  // queries produce "quite fixed-size results regardless of the total data
  // size" (paper §6.3).
  std::string user = User(rng->Uniform(config_.users / 10, config_.users - 1));
  // Paper setting: every window RANGE 1s STEP 100ms.
  const std::string po_win = "FROM STREAM <PO_Stream> [RANGE 1s STEP 100ms]\n";
  const std::string pol_win = "FROM STREAM <POL_Stream> [RANGE 1s STEP 100ms]\n";
  const std::string ph_win = "FROM STREAM <PH_Stream> [RANGE 1s STEP 100ms]\n";
  const std::string phl_win = "FROM STREAM <PHL_Stream> [RANGE 1s STEP 100ms]\n";
  switch (number) {
    case 1:
      // Group (I): posts by one user in the window, with hashtags.
      return "REGISTER QUERY L1 AS SELECT ?P ?T\n" + po_win +
             "WHERE { GRAPH <PO_Stream> { " + user + " po ?P . ?P ht ?T } }";
    case 2:
      // Group (I): fresh posts by people this user follows.
      return "REGISTER QUERY L2 AS SELECT ?F ?P\n" + po_win +
             "FROM <X-Lab>\n"
             "WHERE { GRAPH <X-Lab> { " +
             user +
             " fo ?F }\n"
             "        GRAPH <PO_Stream> { ?F po ?P } }";
    case 3:
      // Group (I): who liked fresh posts of people this user follows.
      return "REGISTER QUERY L3 AS SELECT ?F ?P ?W\n" + po_win + pol_win +
             "FROM <X-Lab>\n"
             "WHERE { GRAPH <X-Lab> { " +
             user +
             " fo ?F }\n"
             "        GRAPH <PO_Stream> { ?F po ?P }\n"
             "        GRAPH <POL_Stream> { ?W li ?P } }";
    case 4:
      // Group (II): every photo in the window with its album.
      return "REGISTER QUERY L4 AS SELECT ?U ?P ?A\n" + ph_win +
             "WHERE { GRAPH <PH_Stream> { ?U ph ?P . ?P ab ?A } }";
    case 5:
      // Group (II): every fresh post joined with the poster's followers.
      return "REGISTER QUERY L5 AS SELECT ?U ?P ?F\n" + po_win +
             "FROM <X-Lab>\n"
             "WHERE { GRAPH <PO_Stream> { ?U po ?P }\n"
             "        GRAPH <X-Lab> { ?F fo ?U } }";
    case 6:
      // Group (II): posters in the window whose followees like photos now.
      return "REGISTER QUERY L6 AS SELECT ?U ?P ?Q\n" + po_win + phl_win +
             "FROM <X-Lab>\n"
             "WHERE { GRAPH <PO_Stream> { ?U po ?P }\n"
             "        GRAPH <X-Lab> { ?U fo ?F }\n"
             "        GRAPH <PHL_Stream> { ?F pl ?Q } }";
    default:
      assert(false && "LSBench continuous query number must be 1..6");
      return "";
  }
}

std::string LsBench::OneShotQueryText(int number) const {
  Rng fixed(config_.seed + 100 + static_cast<uint64_t>(number));
  // Anchor on a typical user (see ContinuousQueryText): celebrity anchors
  // would absorb a disproportionate share of streamed facts and skew the
  // static-vs-evolving comparison of Table 8.
  std::string user = User(fixed.Uniform(config_.users / 10, config_.users - 1));
  std::string tag = Tag(fixed.Zipf(config_.hashtags));
  std::string post = "Post" + std::to_string(fixed.Uniform(
                                  0, config_.users * config_.initial_posts_per_user -
                                         1));
  switch (number) {
    case 1:
      // Medium: followers of a user and what they post under one tag.
      return "SELECT ?F ?P WHERE { ?F fo " + user + " . ?F po ?P . ?P ht " + tag +
             " }";
    case 2:
      // Selective: one user's posts and hashtags.
      return "SELECT ?P ?T WHERE { " + user + " po ?P . ?P ht ?T }";
    case 3:
      // Selective: posts of followees.
      return "SELECT ?F ?P WHERE { " + user + " fo ?F . ?F po ?P }";
    case 4:
      // Non-selective: everything tagged with a popular tag.
      return "SELECT ?U ?P WHERE { ?U po ?P . ?P ht " + tag + " }";
    case 5:
      // Selective: who liked one post, and whom they follow.
      return "SELECT ?U ?F WHERE { ?U li " + post + " . ?U fo ?F }";
    case 6:
      // Non-selective: the full two-hop follow/post/hashtag join.
      return "SELECT ?U ?F ?P WHERE { ?U fo ?F . ?F po ?P . ?P ht ?T }";
    default:
      assert(false && "LSBench one-shot query number must be 1..6");
      return "";
  }
}

size_t LsBench::total_rate_tuples_per_sec() const {
  return static_cast<size_t>((config_.po_rate + config_.pol_rate + config_.ph_rate +
                              config_.phl_rate + config_.gps_rate) *
                             config_.rate_scale);
}

}  // namespace wukongs
