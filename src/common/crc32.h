// CRC32 (IEEE 802.3 polynomial, reflected) for record checksums.
//
// Used by the checkpoint log to distinguish a *torn* tail (crash mid-write,
// expected, tolerated) from a *corrupted* one (bit rot / overwrite, detected
// and dropped). Software table implementation; the log is not on the query
// hot path, so portability beats hardware CRC instructions here.

#ifndef SRC_COMMON_CRC32_H_
#define SRC_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace wukongs {

// Incremental update: pass the previous return value as `crc` to continue a
// running checksum; start from kCrc32Init and the final value is the CRC.
inline constexpr uint32_t kCrc32Init = 0;

uint32_t Crc32(const void* data, size_t len, uint32_t crc = kCrc32Init);

}  // namespace wukongs

#endif  // SRC_COMMON_CRC32_H_
