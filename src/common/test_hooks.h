// Runtime-switchable planted defects for the differential test harness.
//
// The harness (tests/differential_test.cc) must prove it has teeth: with a
// deliberately wrong engine it must report a mismatch against the reference
// oracle. These flags are the two canonical stream-engine bugs the RSP
// literature documents engines silently disagreeing on — a window boundary
// off by one batch, and a one-shot read at a stale snapshot number. Both
// default to off; production behavior is bit-identical unless a test flips
// them, and the atomics are relaxed because the flag is only ever toggled
// while the cluster is quiescent.

#ifndef SRC_COMMON_TEST_HOOKS_H_
#define SRC_COMMON_TEST_HOOKS_H_

#include <atomic>

namespace wukongs::test_hooks {

// WindowBatches extends every relative window by one future batch.
extern std::atomic<bool> off_by_one_window;

// Cluster::OneShotParsed reads one snapshot behind the scalarized Stable_SN.
extern std::atomic<bool> stale_sn_read;

// obs::Tracer swaps adjacent span emissions — the planted mutation the
// golden-trace determinism test must catch via a digest change.
extern std::atomic<bool> reorder_trace_spans;

// TransientStore/StreamIndex skip notifying eviction listeners on GC, so
// registered DeltaCaches keep serving binding rows sourced from reclaimed
// slices — the planted mutation the delta parity lane must catch.
extern std::atomic<bool> skip_delta_invalidation;

// Template-group fan-out (§5.12) skips the hash partition and hands every
// member the whole probe result — one user's bindings leak into sibling
// registrations. The grouped-vs-independent differential lane must catch it.
extern std::atomic<bool> skip_fanout_partition;

// UnregisterContinuous leaves the registration inside its template group and
// keeps serving its triggers — an unregistered query still receiving results.
extern std::atomic<bool> stale_group_membership;

// Columnar FILTER evaluation (§5.13) computes the per-chunk selection vector
// but never stores it — rows the predicate dropped stay active. The
// columnar-vs-row differential twin must catch the divergence.
extern std::atomic<bool> skip_selection_compact;

// The delta path recycles a contribution's column arena right after handing
// the chunks to the DeltaCache — simulating an arena reset while cached
// chunks still point into it, the lifetime bug the arena ownership rules in
// DESIGN.md §5.13 forbid. The delta/cold parity lane must catch it.
extern std::atomic<bool> stale_arena_reuse;

// The adaptive re-planner (§5.14) evaluates drift against the statistics
// snapshot frozen into the current plan instead of a fresh collector read —
// rates can shift arbitrarily and the drift detector never sees it, so
// re-planning silently never fires. The planner-stats lane must catch it.
extern std::atomic<bool> stale_stats_snapshot;

// The adaptive cutover (§5.14) hot-swaps the candidate plan without the
// shadow parity check or the coherent DeltaCache/MQO re-keying that rides on
// the gated path — cached prefix tables and per-slice contributions computed
// under the old plan keep being served under the new one. The planner lane's
// cutover audit must catch it: a plan-version bump on a delta-cached query
// with zero cache plan_flushes and zero cutover/pin counts is exactly this
// mutation's signature. (The delta/cold parity oracle stays green today only
// because fresh contributions inherit the cached prefix's column order — an
// accident of prefix anchoring the audit does not rely on.)
extern std::atomic<bool> skip_parity_gate;

// RAII toggle so a throwing test cannot leave a mutation armed for the rest
// of the suite.
class ScopedMutation {
 public:
  explicit ScopedMutation(std::atomic<bool>* flag) : flag_(flag) {
    flag_->store(true, std::memory_order_relaxed);
  }
  ~ScopedMutation() { flag_->store(false, std::memory_order_relaxed); }

  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  std::atomic<bool>* flag_;
};

}  // namespace wukongs::test_hooks

#endif  // SRC_COMMON_TEST_HOOKS_H_
