#include "src/common/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <sstream>

namespace wukongs {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double v, int digits) {
  if (v < 0) {
    return "-";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c];
      os << std::string(widths[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };

  emit_row(headers_);
  for (size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return os.str();
}

void TablePrinter::Print() const { std::cout << ToString() << std::flush; }

}  // namespace wukongs
