// Lightweight status / status-or types for recoverable errors.
//
// The engine reports malformed queries, unknown strings, capacity limits etc.
// through Status rather than exceptions, following the surrounding systems
// style (errors are values; invariant violations use assertions).

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace wukongs {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnimplemented,
  kInternal,
  kUnavailable,   // Transient fault (lost message, failed read); retryable.
  kDataLoss,      // Unrecoverable corruption (e.g. checksum mismatch).
  kDeadlineExceeded,  // Latency budget exhausted; not retryable (the budget
                      // is gone, backing off cannot bring it back).
};

const char* StatusCodeName(StatusCode code);

class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// Minimal StatusOr: either an Ok status with a value, or a non-Ok status.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok() && "StatusOr constructed from Ok status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace wukongs

#endif  // SRC_COMMON_STATUS_H_
