// Simulated network / cross-system cost model.
//
// The paper evaluates on an 8-node InfiniBand cluster. This reproduction runs
// the full distributed data path inside one process: every simulated node owns
// a real store shard, and remote operations touch the target shard's memory
// directly. What the single machine cannot give us is the *time* a network
// round trip, an RDMA read, or a cross-system tuple transformation costs — so
// those are modeled: each simulated remote op deposits a calibrated cost into
// a thread-local accumulator, and a query's reported latency is
//
//     measured CPU time + accumulated modeled network/cross-system time.
//
// The constants below are taken from the hardware class the paper uses
// (ConnectX-3 56Gb IB, 10GbE fallback) and from the paper's own measurements
// of composite-design overheads (Fig. 4). Every benchmark prints the model so
// results are reproducible and auditable.

#ifndef SRC_COMMON_LATENCY_MODEL_H_
#define SRC_COMMON_LATENCY_MODEL_H_

#include <cstdint>
#include <string>

namespace wukongs {

// All costs in nanoseconds (per-op) or nanoseconds-per-byte (bandwidth terms).
struct NetworkModel {
  // One-sided RDMA read: ~2us base latency on ConnectX-3 class hardware,
  // insensitive to payload up to a few KB (paper §5 "Leveraging RDMA").
  double rdma_read_base_ns = 2000.0;
  double rdma_read_per_byte_ns = 0.02;  // ~56Gbps line rate.

  // Two-sided RDMA message (send/recv): slightly above a one-sided read.
  double rdma_msg_base_ns = 3000.0;
  double rdma_msg_per_byte_ns = 0.02;

  // TCP/IP over 10GbE: tens-of-microseconds RTT through the kernel stack.
  double tcp_msg_base_ns = 75000.0;
  double tcp_msg_per_byte_ns = 0.8;  // ~10Gbps line rate.

  // Cross-system cost of composite designs (paper §2.3, Fig. 4): every tuple
  // crossing the stream-processor / store boundary pays serialization plus
  // format transformation; every crossing also pays one messaging RTT.
  double cross_system_per_tuple_ns = 900.0;

  // Scheduling overhead of heavyweight stream processors per operator
  // activation (Storm) and for the improved scheduler (Heron).
  double storm_sched_ns = 150000.0;
  double heron_sched_ns = 40000.0;

  // Micro-batch fixed overhead of Spark-style engines per triggered batch
  // (job scheduling, stage launch). Spark Streaming's documented floor is
  // tens-to-hundreds of milliseconds.
  double spark_batch_overhead_ns = 120000000.0;

  std::string DebugString() const;
};

// Per-thread accumulator for modeled cost. Engines reset it at query start and
// read it at query end; all simulated fabric ops deposit into it.
class SimCost {
 public:
  static void Reset();
  static void Add(double ns);
  static double TotalNs();

  // RAII scope: captures the accumulator on entry, restores on exit, exposing
  // the cost accrued inside the scope. Used by nested measurements.
  class Scope {
   public:
    Scope();
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    double AccruedNs() const;

   private:
    double saved_;
  };
};

// Wall-clock stopwatch (monotonic).
class Stopwatch {
 public:
  Stopwatch();
  void Reset();
  double ElapsedNs() const;
  double ElapsedUs() const { return ElapsedNs() / 1e3; }
  double ElapsedMs() const { return ElapsedNs() / 1e6; }

 private:
  uint64_t start_ns_;
};

// Combined measurement: wall CPU time of the scope plus modeled cost deposited
// during the scope. This is the "query latency" every engine reports.
class LatencyProbe {
 public:
  LatencyProbe();
  double FinishNs() const;
  double FinishMs() const { return FinishNs() / 1e6; }

 private:
  Stopwatch wall_;
  double sim_at_start_;
};

}  // namespace wukongs

#endif  // SRC_COMMON_LATENCY_MODEL_H_
