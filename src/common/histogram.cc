#include "src/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace wukongs {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Min() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double Histogram::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  assert(!samples_.empty());
  return Sum() / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::GeometricMean() const {
  assert(!samples_.empty());
  double log_sum = 0.0;
  for (double v : samples_) {
    log_sum += std::log(std::max(v, 1e-12));
  }
  return std::exp(log_sum / static_cast<double>(samples_.size()));
}

std::vector<std::pair<double, double>> Histogram::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(Percentile(frac * 100.0), frac);
  }
  return out;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  if (samples_.empty()) {
    return "{empty}";
  }
  os << "{n=" << samples_.size() << " p50=" << Median() << " p90=" << Percentile(90)
     << " p99=" << Percentile(99) << " max=" << Max() << "}";
  return os.str();
}

double GeometricMeanOf(const std::vector<double>& values) {
  assert(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(std::max(v, 1e-12));
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace wukongs
