#include "src/common/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace wukongs {

void Histogram::Add(double value) {
  samples_.push_back(value);
  sorted_ = false;
}

void Histogram::Merge(const Histogram& other) {
  samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
  sorted_ = false;
}

void Histogram::Clear() {
  samples_.clear();
  sorted_ = true;
}

void Histogram::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Histogram::Min() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.front();
}

double Histogram::Max() const {
  assert(!samples_.empty());
  EnsureSorted();
  return samples_.back();
}

double Histogram::Sum() const {
  return std::accumulate(samples_.begin(), samples_.end(), 0.0);
}

double Histogram::Mean() const {
  assert(!samples_.empty());
  return Sum() / static_cast<double>(samples_.size());
}

double Histogram::Percentile(double p) const {
  assert(!samples_.empty());
  assert(p >= 0.0 && p <= 100.0);
  EnsureSorted();
  if (samples_.size() == 1) {
    return samples_[0];
  }
  double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, samples_.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Histogram::GeometricMean() const {
  assert(!samples_.empty());
  double log_sum = 0.0;
  for (double v : samples_) {
    log_sum += std::log(std::max(v, 1e-12));
  }
  return std::exp(log_sum / static_cast<double>(samples_.size()));
}

std::vector<std::pair<double, double>> Histogram::Cdf(size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) {
    return out;
  }
  EnsureSorted();
  out.reserve(points);
  for (size_t i = 1; i <= points; ++i) {
    double frac = static_cast<double>(i) / static_cast<double>(points);
    out.emplace_back(Percentile(frac * 100.0), frac);
  }
  return out;
}

std::string Histogram::Summary() const {
  std::ostringstream os;
  if (samples_.empty()) {
    return "{empty}";
  }
  os << "{n=" << samples_.size() << " p50=" << Median() << " p90=" << Percentile(90)
     << " p99=" << Percentile(99) << " max=" << Max() << "}";
  return os.str();
}

double BucketHistogram::MinTracked() {
  return std::ldexp(1.0, kMinExponent);
}

double BucketHistogram::MaxTracked() {
  return std::ldexp(1.0, kMaxExponent);
}

int BucketHistogram::BucketIndex(double value) {
  if (!(value > 0.0)) {  // Also catches NaN; clamp to the smallest bucket.
    return 0;
  }
  if (value >= MaxTracked()) {
    return kNumBuckets - 1;
  }
  int exp = 0;
  double frac = std::frexp(value, &exp);  // value = frac * 2^exp, frac in [0.5,1).
  if (exp - 1 < kMinExponent) {
    return 0;
  }
  int octave = (exp - 1) - kMinExponent;
  int sub = static_cast<int>((frac - 0.5) * 2.0 * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return octave * kSubBuckets + sub;
}

double BucketHistogram::BucketMidpoint(int index) {
  if (index >= kNumBuckets - 1) {
    return MaxTracked();
  }
  int octave = index / kSubBuckets;
  int sub = index % kSubBuckets;
  double lo = std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets,
                         kMinExponent + octave);
  double hi = std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                         kMinExponent + octave);
  return 0.5 * (lo + hi);
}

void BucketHistogram::AddCount(double value, uint64_t n) {
  if (n == 0) {
    return;
  }
  if (buckets_.empty()) {
    buckets_.assign(kNumBuckets, 0);
  }
  buckets_[static_cast<size_t>(BucketIndex(value))] += n;
  count_ += n;
  sum_ += value * static_cast<double>(n);
  max_ = std::max(max_, value);
}

void BucketHistogram::Merge(const BucketHistogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (buckets_.empty()) {
    buckets_.assign(kNumBuckets, 0);
  }
  for (size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  max_ = std::max(max_, other.max_);
}

void BucketHistogram::Clear() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0.0;
  max_ = 0.0;
}

uint64_t BucketHistogram::overflow_count() const {
  return buckets_.empty() ? 0 : buckets_[kNumBuckets - 1];
}

double BucketHistogram::Mean() const {
  assert(count_ > 0);
  return sum_ / static_cast<double>(count_);
}

double BucketHistogram::Percentile(double p) const {
  assert(count_ > 0);
  assert(p >= 0.0 && p <= 100.0);
  // Nearest-rank on the cumulative bucket counts; rank is 1-based.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil((p / 100.0) * static_cast<double>(count_)));
  rank = std::max<uint64_t>(rank, 1);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (seen >= rank) {
      // The top of the distribution is tracked exactly: if this bucket holds
      // the maximum sample, the max itself is the better representative.
      if (seen == count_ && i == BucketIndex(max_)) {
        return max_;
      }
      return BucketMidpoint(i);
    }
  }
  return max_;
}

std::string BucketHistogram::Summary() const {
  if (count_ == 0) {
    return "{empty}";
  }
  std::ostringstream os;
  os << "{n=" << count_ << " p50=" << Median() << " p90=" << Percentile(90)
     << " p99=" << Percentile(99) << " max=" << max_ << "}";
  return os.str();
}

std::string BucketHistogram::Encode() const {
  std::ostringstream os;
  os << "count=" << count_ << " sum=" << sum_ << " max=" << max_ << " buckets=";
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      os << i << ":" << buckets_[i] << ",";
    }
  }
  return os.str();
}

double GeometricMeanOf(const std::vector<double>& values) {
  assert(!values.empty());
  double log_sum = 0.0;
  for (double v : values) {
    log_sum += std::log(std::max(v, 1e-12));
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace wukongs
