#include "src/common/ids.h"

#include <sstream>

namespace wukongs {

std::string Key::DebugString() const {
  std::ostringstream os;
  os << "[" << vid() << "|" << pid() << "|" << (dir() == Dir::kOut ? 1 : 0) << "]";
  return os.str();
}

}  // namespace wukongs
