// Deterministic pseudo-random helpers for workload generators and tests.
// All generators take explicit seeds so every benchmark run is reproducible.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cassert>
#include <cstdint>
#include <random>

namespace wukongs {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform integer in [lo, hi] inclusive.
  uint64_t Uniform(uint64_t lo, uint64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<uint64_t>(lo, hi)(engine_);
  }

  double UniformReal(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  bool Bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  // Zipfian-ish skew via inverse power sampling; rank in [0, n).
  uint64_t Zipf(uint64_t n, double skew = 0.8) {
    assert(n > 0);
    double u = UniformReal(1e-9, 1.0);
    double rank = std::pow(u, 1.0 / (1.0 - skew)) * static_cast<double>(n);
    uint64_t r = static_cast<uint64_t>(rank);
    return r >= n ? n - 1 : r;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace wukongs

#endif  // SRC_COMMON_RNG_H_
