#include "src/common/test_hooks.h"

namespace wukongs::test_hooks {

std::atomic<bool> off_by_one_window{false};
std::atomic<bool> stale_sn_read{false};
std::atomic<bool> reorder_trace_spans{false};
std::atomic<bool> skip_delta_invalidation{false};
std::atomic<bool> skip_fanout_partition{false};
std::atomic<bool> stale_group_membership{false};
std::atomic<bool> skip_selection_compact{false};
std::atomic<bool> stale_arena_reuse{false};
std::atomic<bool> stale_stats_snapshot{false};
std::atomic<bool> skip_parity_gate{false};

}  // namespace wukongs::test_hooks
