// Fixed-width ASCII table printer used by the benchmark harness to emit rows
// shaped like the paper's tables.

#ifndef SRC_COMMON_TABLE_PRINTER_H_
#define SRC_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace wukongs {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Convenience for numeric cells; `digits` = fixed decimal places, and
  // negative values render as "-" (the paper's "unsupported" marker is "x").
  static std::string Num(double v, int digits = 2);

  // Render to stdout with column alignment and a separator under the header.
  void Print() const;
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wukongs

#endif  // SRC_COMMON_TABLE_PRINTER_H_
