// Retry with exponential backoff over the simulated clock.
//
// Transient fabric faults (lost messages, failed one-sided reads) surface as
// kUnavailable. RetryPolicy bounds how hard a caller fights back: each failed
// attempt charges an exponentially growing backoff into the thread-local
// SimCost accumulator, so degraded-mode latency is *measured* by the same
// model that prices healthy traffic (issue: "per-operation budgets charged
// into SimCost"). Non-retryable codes (anything but kUnavailable) abort the
// loop immediately.

#ifndef SRC_COMMON_RETRY_H_
#define SRC_COMMON_RETRY_H_

#include <cstdint>
#include <string>

#include "src/common/latency_model.h"
#include "src/common/status.h"

namespace wukongs {

struct RetryPolicy {
  // Total tries including the first; <=1 means fail on first fault.
  int max_attempts = 5;
  double initial_backoff_ns = 4000.0;  // ~2 RDMA reads: cheap first nudge.
  double backoff_multiplier = 2.0;
  double max_backoff_ns = 1.0e6;  // 1 ms cap keeps tails bounded.

  // Fraction of the (capped) exponential term that jitter may shave off,
  // in [0, 1]. 0 = no jitter (byte-identical to the historical policy).
  // Jitter only ever *shrinks* the wait, so the max_backoff_ns ceiling
  // holds at every attempt count — jitter can never push a backoff above
  // the cap, no matter how large `attempt` grows.
  double jitter_fraction = 0.0;
  // Salt for the deterministic per-attempt jitter draw; two policies with
  // different salts decorrelate without any shared RNG state.
  uint64_t jitter_seed = 0;

  // Backoff charged after the `attempt`-th failure (attempt is 1-based).
  // Always in [(1 - jitter_fraction) * cap, cap] once the exponential term
  // saturates, and always <= max_backoff_ns.
  double BackoffNs(int attempt) const;

  std::string DebugString() const;
};

struct RetryStats {
  uint64_t attempts = 0;    // Total operation invocations.
  uint64_t retries = 0;     // Invocations after a fault (attempts - ops).
  uint64_t exhausted = 0;   // Operations that failed every attempt.
  double backoff_ns = 0.0;  // Total backoff charged into SimCost.

  void Merge(const RetryStats& other);
};

// Runs `op` until it returns Ok, a non-retryable code, or the attempt budget
// is exhausted. Backoff between attempts is charged into SimCost (and tallied
// in `stats` when provided). Returns the last status.
template <typename Fn>
Status RunWithRetry(const RetryPolicy& policy, Fn&& op,
                    RetryStats* stats = nullptr) {
  int budget = policy.max_attempts < 1 ? 1 : policy.max_attempts;
  Status last;
  for (int attempt = 1; attempt <= budget; ++attempt) {
    if (stats != nullptr) {
      ++stats->attempts;
    }
    last = op();
    if (last.ok() || last.code() != StatusCode::kUnavailable) {
      return last;
    }
    if (attempt == budget) {
      break;  // Budget exhausted: no backoff after the final failure.
    }
    double wait = policy.BackoffNs(attempt);
    SimCost::Add(wait);
    if (stats != nullptr) {
      ++stats->retries;
      stats->backoff_ns += wait;
    }
  }
  if (stats != nullptr) {
    ++stats->exhausted;
  }
  return last;
}

}  // namespace wukongs

#endif  // SRC_COMMON_RETRY_H_
