// Identifier types and packed store keys.
//
// Wukong+S addresses every entity (vertex) and predicate (edge label) by a
// compact integer ID minted by the string server (§3, "string server"). The
// paper uses 46-bit vertex IDs; we pack a key as [vid:48 | pid:15 | dir:1]
// which matches the paper's [vid|eid|d] layout (Fig. 6) and leaves the same
// headroom (> 70 trillion vertices).

#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <string>

namespace wukongs {

using VertexId = uint64_t;
using PredicateId = uint32_t;
using StreamId = uint32_t;
using NodeId = uint32_t;
using BatchSeq = uint64_t;     // Monotone batch number within one stream.
using SnapshotNum = uint64_t;  // Scalarized snapshot number (§4.3).

// Vertex ID 0 is reserved for the index vertex: key [0|pid|dir] maps to every
// vertex that has an in/out edge labeled `pid` (paper Fig. 6, "INDEX").
inline constexpr VertexId kIndexVertex = 0;

inline constexpr int kVidBits = 48;
inline constexpr int kPidBits = 15;
inline constexpr VertexId kMaxVertexId = (VertexId{1} << kVidBits) - 1;
inline constexpr PredicateId kMaxPredicateId = (PredicateId{1} << kPidBits) - 1;

// Edge direction relative to the vertex in the key.
enum class Dir : uint8_t {
  kIn = 0,
  kOut = 1,
};

inline Dir Reverse(Dir d) { return d == Dir::kIn ? Dir::kOut : Dir::kIn; }

// Packed store key [vid:48 | pid:15 | dir:1].
class Key {
 public:
  constexpr Key() : packed_(0) {}
  constexpr Key(VertexId vid, PredicateId pid, Dir dir)
      : packed_((vid << (kPidBits + 1)) | (uint64_t{pid} << 1) |
                static_cast<uint64_t>(dir)) {}

  static constexpr Key FromPacked(uint64_t packed) {
    Key k;
    k.packed_ = packed;
    return k;
  }

  constexpr VertexId vid() const { return packed_ >> (kPidBits + 1); }
  constexpr PredicateId pid() const {
    return static_cast<PredicateId>((packed_ >> 1) & kMaxPredicateId);
  }
  constexpr Dir dir() const { return static_cast<Dir>(packed_ & 1); }
  constexpr uint64_t packed() const { return packed_; }
  constexpr bool is_index() const { return vid() == kIndexVertex; }

  friend constexpr bool operator==(Key a, Key b) { return a.packed_ == b.packed_; }
  friend constexpr bool operator!=(Key a, Key b) { return a.packed_ != b.packed_; }
  friend constexpr bool operator<(Key a, Key b) { return a.packed_ < b.packed_; }

  std::string DebugString() const;

 private:
  uint64_t packed_;
};

struct KeyHash {
  size_t operator()(Key k) const {
    // SplitMix64 finalizer; cheap and well distributed for packed keys.
    uint64_t x = k.packed();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

}  // namespace wukongs

template <>
struct std::hash<wukongs::Key> {
  size_t operator()(wukongs::Key k) const { return wukongs::KeyHash{}(k); }
};

#endif  // SRC_COMMON_IDS_H_
