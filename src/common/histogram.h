// Latency histogram with percentile extraction; used by benches to report
// median / 90th / 99th percentile latency and CDFs as in paper Figs. 14-15.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wukongs {

class Histogram {
 public:
  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const;
  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // Geometric mean; the paper reports "Geo. M" rows for latency tables.
  double GeometricMean() const;

  // CDF sampled at `points` evenly spaced quantiles, as (value, cum_frac).
  std::vector<std::pair<double, double>> Cdf(size_t points = 20) const;

  // Raw samples, sorted; lets benches replay a measurement into a registry
  // HistogramMetric for the machine-readable JSON artifact.
  const std::vector<double>& samples() const {
    EnsureSorted();
    return samples_;
  }

  std::string Summary() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Geometric mean over an arbitrary value list (helper for table "Geo. M" rows).
double GeometricMeanOf(const std::vector<double>& values);

// HDR-style log-linear bucketed histogram: constant memory, exact merge.
//
// The plain Histogram above keeps every sample, which makes Merge a
// concatenation — fine for a bench run, unusable as a long-lived metric. This
// variant buckets non-negative values into `kSubBuckets` linear sub-buckets
// per power-of-two octave, which bounds the relative quantization error at
// 1/kSubBuckets (~1.6%) for any value inside the tracked range
// [kMinTracked, kMaxTracked). Values below the range land in bucket 0
// (reported as kMinTracked at worst), values at or above it land in a
// dedicated overflow bucket whose representative is the exact running max.
//
// Merge adds bucket counts, so it is exactly associative and commutative —
// the property the cluster-wide metrics merge relies on. All state is plain
// integers plus two doubles (sum, max), so two runs that feed identical
// samples in any order produce identical quantiles and counts.
class BucketHistogram {
 public:
  static constexpr int kSubBuckets = 64;       // 2^6 linear steps per octave.
  static constexpr int kMinExponent = -20;     // kMinTracked ~ 9.5e-7.
  static constexpr int kMaxExponent = 31;      // kMaxTracked ~ 2.1e9.
  static constexpr int kOctaves = kMaxExponent - kMinExponent;
  static constexpr int kNumBuckets = kOctaves * kSubBuckets + 1;  // +overflow.

  static double MinTracked();
  static double MaxTracked();
  // Upper bound on |reported - true| / true for in-range values.
  static double MaxRelativeError() { return 1.0 / kSubBuckets; }

  void Add(double value) { AddCount(value, 1); }
  void AddCount(double value, uint64_t n);
  void Merge(const BucketHistogram& other);
  void Clear();

  uint64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  uint64_t overflow_count() const;
  double Sum() const { return sum_; }
  double Mean() const;
  double Max() const { return max_; }
  // p in [0, 100]; returns the representative (midpoint) of the bucket that
  // contains the requested rank. Exact for Max via the overflow/max track.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  std::string Summary() const;

  // Stable textual form ("idx:count,..." plus count/sum/max) used by metric
  // dumps and the determinism tests; equal histograms encode equally.
  std::string Encode() const;

  friend bool operator==(const BucketHistogram&, const BucketHistogram&) =
      default;

 private:
  static int BucketIndex(double value);
  static double BucketMidpoint(int index);

  std::vector<uint64_t> buckets_;  // Sized lazily on first Add.
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wukongs

#endif  // SRC_COMMON_HISTOGRAM_H_
