// Latency histogram with percentile extraction; used by benches to report
// median / 90th / 99th percentile latency and CDFs as in paper Figs. 14-15.

#ifndef SRC_COMMON_HISTOGRAM_H_
#define SRC_COMMON_HISTOGRAM_H_

#include <cstddef>
#include <string>
#include <vector>

namespace wukongs {

class Histogram {
 public:
  void Add(double value);
  void Merge(const Histogram& other);
  void Clear();

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const;
  // p in [0, 100]; linear interpolation between closest ranks.
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // Geometric mean; the paper reports "Geo. M" rows for latency tables.
  double GeometricMean() const;

  // CDF sampled at `points` evenly spaced quantiles, as (value, cum_frac).
  std::vector<std::pair<double, double>> Cdf(size_t points = 20) const;

  std::string Summary() const;

 private:
  void EnsureSorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

// Geometric mean over an arbitrary value list (helper for table "Geo. M" rows).
double GeometricMeanOf(const std::vector<double>& values);

}  // namespace wukongs

#endif  // SRC_COMMON_HISTOGRAM_H_
