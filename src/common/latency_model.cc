#include "src/common/latency_model.h"

#include <time.h>

#include <sstream>

namespace wukongs {
namespace {

thread_local double g_sim_cost_ns = 0.0;

uint64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<uint64_t>(ts.tv_nsec);
}

}  // namespace

std::string NetworkModel::DebugString() const {
  std::ostringstream os;
  os << "NetworkModel{rdma_read=" << rdma_read_base_ns / 1e3 << "us"
     << ", rdma_msg=" << rdma_msg_base_ns / 1e3 << "us"
     << ", tcp_msg=" << tcp_msg_base_ns / 1e3 << "us"
     << ", cross_system_per_tuple=" << cross_system_per_tuple_ns / 1e3 << "us"
     << ", storm_sched=" << storm_sched_ns / 1e6 << "ms"
     << ", heron_sched=" << heron_sched_ns / 1e6 << "ms"
     << ", spark_batch_overhead=" << spark_batch_overhead_ns / 1e6 << "ms}";
  return os.str();
}

void SimCost::Reset() { g_sim_cost_ns = 0.0; }

void SimCost::Add(double ns) { g_sim_cost_ns += ns; }

double SimCost::TotalNs() { return g_sim_cost_ns; }

SimCost::Scope::Scope() : saved_(g_sim_cost_ns) { g_sim_cost_ns = 0.0; }

SimCost::Scope::~Scope() { g_sim_cost_ns += saved_; }

double SimCost::Scope::AccruedNs() const { return g_sim_cost_ns; }

Stopwatch::Stopwatch() : start_ns_(MonotonicNowNs()) {}

void Stopwatch::Reset() { start_ns_ = MonotonicNowNs(); }

double Stopwatch::ElapsedNs() const {
  return static_cast<double>(MonotonicNowNs() - start_ns_);
}

LatencyProbe::LatencyProbe() : sim_at_start_(SimCost::TotalNs()) {}

double LatencyProbe::FinishNs() const {
  return wall_.ElapsedNs() + (SimCost::TotalNs() - sim_at_start_);
}

}  // namespace wukongs
