#include "src/common/retry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wukongs {

double RetryPolicy::BackoffNs(int attempt) const {
  if (attempt < 1) {
    attempt = 1;
  }
  double wait = initial_backoff_ns *
                std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  return std::min(wait, max_backoff_ns);
}

std::string RetryPolicy::DebugString() const {
  std::ostringstream os;
  os << "RetryPolicy{attempts=" << max_attempts
     << ", backoff=" << initial_backoff_ns << "ns x" << backoff_multiplier
     << " cap " << max_backoff_ns << "ns}";
  return os.str();
}

void RetryStats::Merge(const RetryStats& other) {
  attempts += other.attempts;
  retries += other.retries;
  exhausted += other.exhausted;
  backoff_ns += other.backoff_ns;
}

}  // namespace wukongs
