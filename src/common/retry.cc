#include "src/common/retry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wukongs {

namespace {

// splitmix64 finalizer: decorrelates consecutive attempt numbers into an
// independent-looking uniform draw without carrying RNG state in the policy.
uint64_t MixBits(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

double RetryPolicy::BackoffNs(int attempt) const {
  if (attempt < 1) {
    attempt = 1;
  }
  // Cap the exponential term *before* jittering: at high attempt counts
  // pow() runs away (eventually to inf), and jitter applied to an uncapped
  // base would be unbounded too. After the cap, jitter can only shrink.
  double wait = initial_backoff_ns *
                std::pow(backoff_multiplier, static_cast<double>(attempt - 1));
  if (!(wait < max_backoff_ns)) {  // Also catches NaN/inf from pow overflow.
    wait = max_backoff_ns;
  }
  double jf = std::clamp(jitter_fraction, 0.0, 1.0);
  if (jf > 0.0) {
    uint64_t bits = MixBits(jitter_seed ^ (static_cast<uint64_t>(attempt) *
                                           0xD6E8FEB86659FD93ull));
    double u = static_cast<double>(bits >> 11) * 0x1.0p-53;  // [0, 1)
    wait *= 1.0 - jf * u;  // Shrink-only: stays within [.., cap].
  }
  return std::min(wait, max_backoff_ns);
}

std::string RetryPolicy::DebugString() const {
  std::ostringstream os;
  os << "RetryPolicy{attempts=" << max_attempts
     << ", backoff=" << initial_backoff_ns << "ns x" << backoff_multiplier
     << " cap " << max_backoff_ns << "ns";
  if (jitter_fraction > 0.0) {
    os << ", jitter " << jitter_fraction;
  }
  os << "}";
  return os.str();
}

void RetryStats::Merge(const RetryStats& other) {
  attempts += other.attempts;
  retries += other.retries;
  exhausted += other.exhausted;
  backoff_ns += other.backoff_ns;
}

}  // namespace wukongs
