// End-to-end latency budgets over the simulated clock (DESIGN.md §5.11).
//
// A Deadline is a budget of modeled nanoseconds granted to one query
// execution. It is measured against the thread-local SimCost accumulator —
// the same deterministic clock that prices every fabric hop, retry backoff
// and fork-join round — so budget enforcement is reproducible bit-for-bit
// across runs and auditable by the differential harness. Each hop that
// deposits cost into SimCost implicitly charges the active deadline; fabric
// verbs and remote reads consult Deadline::ExpiredNow() before issuing work
// and short-circuit with kDeadlineExceeded once the budget is gone.
// kDeadlineExceeded is deliberately non-retryable: RunWithRetry only retries
// kUnavailable, so an expired budget aborts a retry loop immediately instead
// of burning backoff it can no longer afford.

#ifndef SRC_COMMON_DEADLINE_H_
#define SRC_COMMON_DEADLINE_H_

#include "src/common/latency_model.h"

namespace wukongs {

// Thread-local active deadline. At most one is active per thread at a time
// (query executions do not nest); DeadlineScope enforces stacking discipline
// by saving and restoring the previous state, so an inner scope (e.g. a
// nested union branch) shares the outer budget rather than resetting it.
class Deadline {
 public:
  // True when a budget is active on this thread.
  static bool Active() { return tls_.active; }

  // Modeled nanoseconds left; 0 when exhausted or no deadline is active
  // (callers must check Active() to distinguish).
  static double RemainingNs() {
    if (!tls_.active) {
      return 0.0;
    }
    double spent = SimCost::TotalNs() - tls_.start_ns;
    double left = tls_.budget_ns - spent;
    return left > 0.0 ? left : 0.0;
  }

  // True when a deadline is active and its budget is exhausted.
  static bool ExpiredNow() {
    return tls_.active && SimCost::TotalNs() - tls_.start_ns >= tls_.budget_ns;
  }

 private:
  friend class DeadlineScope;
  struct State {
    bool active = false;
    double start_ns = 0.0;   // SimCost::TotalNs() when the scope opened.
    double budget_ns = 0.0;  // Modeled ns granted to the execution.
  };
  static thread_local State tls_;
};

inline thread_local Deadline::State Deadline::tls_;

// RAII activation. `budget_ms <= 0` opens a no-op scope (no deadline), so
// call sites can pass a caller-supplied budget through unconditionally.
// If a deadline is already active (outer scope), the inner scope keeps the
// *tighter* of the two budgets — a sub-operation can never out-live the
// budget of the query that issued it.
class DeadlineScope {
 public:
  explicit DeadlineScope(double budget_ms) : saved_(Deadline::tls_) {
    if (budget_ms > 0.0) {
      double budget_ns = budget_ms * 1e6;
      double now = SimCost::TotalNs();
      if (saved_.active) {
        double outer_left = saved_.budget_ns - (now - saved_.start_ns);
        if (outer_left < budget_ns) {
          budget_ns = outer_left > 0.0 ? outer_left : 0.0;
        }
      }
      Deadline::tls_.active = true;
      Deadline::tls_.start_ns = now;
      Deadline::tls_.budget_ns = budget_ns;
    }
  }
  ~DeadlineScope() { Deadline::tls_ = saved_; }

  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  Deadline::State saved_;
};

}  // namespace wukongs

#endif  // SRC_COMMON_DEADLINE_H_
