// Simulated RDMA fabric.
//
// The real system issues one-sided RDMA READs to pull remote key/value spans
// and two-sided messages for fork-join sub-queries. In this reproduction all
// simulated nodes share an address space, so a "remote" access is a direct
// memory read of the target shard — functionally identical to a completed
// RDMA READ — and the fabric's job is (a) to charge the calibrated time cost
// of each verb into the thread-local SimCost accumulator and (b) to count
// operations so benches can report traffic. Switching the transport to kTcp
// models the paper's non-RDMA (10GbE fork-join) configuration (Table 5).
//
// Failure surface: TryOneSidedRead / TryMessage consult the attached
// FaultInjector and per-node liveness, returning kUnavailable on a lost
// verb (the attempt's wire time is still charged — a failed read burns the
// round trip before the requester notices). The legacy void entry points
// remain the infallible fast path for callers that model a healthy fabric.

#ifndef SRC_RDMA_FABRIC_H_
#define SRC_RDMA_FABRIC_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <string>

#include "src/common/ids.h"
#include "src/common/latency_model.h"
#include "src/common/status.h"

namespace wukongs {

class FaultInjector;

enum class Transport {
  kRdma = 0,  // One-sided verbs available; in-place execution is cheap.
  kTcp = 1,   // Kernel TCP; every remote touch pays a full RTT.
};

const char* TransportName(Transport t);

struct FabricStats {
  uint64_t one_sided_reads = 0;
  uint64_t one_sided_read_bytes = 0;
  uint64_t messages = 0;
  uint64_t message_bytes = 0;
  uint64_t cross_system_tuples = 0;
  uint64_t failed_reads = 0;     // Injected one-sided read failures.
  uint64_t failed_messages = 0;  // Injected message failures + down targets.
  uint64_t heartbeats = 0;       // Failure-detector beats carried.
  uint64_t deadline_cancelled = 0;  // Verbs short-circuited: budget exhausted.
};

class Fabric {
 public:
  Fabric(uint32_t node_count, NetworkModel model, Transport transport);

  uint32_t node_count() const {
    return node_count_.load(std::memory_order_acquire);
  }

  // Elastic membership (online reconfiguration, DESIGN.md §5.10): brings one
  // more node onto the fabric, up and serving. Liveness slots are
  // preallocated with headroom at construction; returns -1 when the headroom
  // is exhausted. Publishing the count with release order after the slots
  // are initialized keeps concurrent readers race-free.
  int AddNode();

  uint32_t node_capacity() const { return capacity_; }
  Transport transport() const { return transport_; }
  const NetworkModel& model() const { return model_; }
  void set_transport(Transport t) { transport_ = t; }

  // Fault injection: `injector` (optional, non-owning, must outlive the
  // fabric) makes Try* calls fallible. The void entry points never consult it.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* fault_injector() const { return injector_; }

  // Node liveness (quarantine). Verbs targeting (or issued by) a down node
  // fail with kUnavailable until the node is marked up again.
  void SetNodeUp(NodeId node, bool up);
  bool node_up(NodeId node) const;
  uint32_t up_count() const;
  bool AnyNodeDown() const { return up_count() < node_count(); }

  // Serving state (overload quarantine): a sick-but-alive node is marked
  // non-serving — queries skip its shards (partial results, like a crash)
  // while injection keeps feeding it so it can catch up and rejoin. A down
  // node is never serving.
  void SetNodeServing(NodeId node, bool serving);
  bool node_serving(NodeId node) const;
  uint32_t serving_count() const;
  bool AnyNodeNotServing() const { return serving_count() < node_count(); }

  // One-sided read of `bytes` from `to` issued by `from`. Local access is
  // free. Under TCP there are no one-sided verbs, so the cost is a full
  // message round trip.
  void OneSidedRead(NodeId from, NodeId to, size_t bytes);

  // Two-sided message (request or response) of `bytes` from `from` to `to`.
  void Message(NodeId from, NodeId to, size_t bytes);

  // Failure-detector heartbeat: a tiny message counted separately so health
  // traffic does not distort the benches' message statistics. Dropped (not
  // an error) when either endpoint is down.
  void Heartbeat(NodeId from, NodeId to);

  // Fallible variants: charge the attempt's wire time, then fail with
  // kUnavailable if either endpoint is down or the injector lost the verb.
  // Callers wrap these in RunWithRetry to model timeout + retransmission.
  // When the thread's latency budget (Deadline) is already exhausted, the
  // verb is never issued: kDeadlineExceeded, no wire time charged. The code
  // is non-retryable, so the surrounding retry loop aborts immediately.
  Status TryOneSidedRead(NodeId from, NodeId to, size_t bytes);
  Status TryMessage(NodeId from, NodeId to, size_t bytes);

  // Service-time multiplier of the target node under an injected gray
  // failure (1.0 when healthy / no injector). Remote verbs scale their wire
  // time by this: a gray node is slow to *serve*, while its heartbeats keep
  // arriving on time — invisible to the liveness detector by construction.
  double ServiceFactor(NodeId node) const;

  // Composite-design boundary crossing: `tuples` tuples are transformed
  // between the stream processor's format and the store's format and shipped
  // across (paper §2.3 Issue#1). Charged regardless of co-location, plus one
  // messaging RTT for the crossing itself.
  void CrossSystemTransfer(size_t tuples, size_t bytes_per_tuple = 32);

  FabricStats stats() const;
  void ResetStats();

  std::string DebugString() const;

 private:
  void ChargeRead(size_t bytes, double factor);
  void ChargeMessage(size_t bytes, double factor);

  std::atomic<uint32_t> node_count_;
  const uint32_t capacity_;  // Preallocated liveness slots (growth headroom).
  NetworkModel model_;
  Transport transport_;
  FaultInjector* injector_ = nullptr;
  std::unique_ptr<std::atomic<bool>[]> node_up_;
  std::unique_ptr<std::atomic<bool>[]> node_serving_;

  std::atomic<uint64_t> one_sided_reads_{0};
  std::atomic<uint64_t> one_sided_read_bytes_{0};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> message_bytes_{0};
  std::atomic<uint64_t> cross_system_tuples_{0};
  std::atomic<uint64_t> failed_reads_{0};
  std::atomic<uint64_t> failed_messages_{0};
  std::atomic<uint64_t> heartbeats_{0};
  std::atomic<uint64_t> deadline_cancelled_{0};
};

}  // namespace wukongs

#endif  // SRC_RDMA_FABRIC_H_
