// Simulated RDMA fabric.
//
// The real system issues one-sided RDMA READs to pull remote key/value spans
// and two-sided messages for fork-join sub-queries. In this reproduction all
// simulated nodes share an address space, so a "remote" access is a direct
// memory read of the target shard — functionally identical to a completed
// RDMA READ — and the fabric's job is (a) to charge the calibrated time cost
// of each verb into the thread-local SimCost accumulator and (b) to count
// operations so benches can report traffic. Switching the transport to kTcp
// models the paper's non-RDMA (10GbE fork-join) configuration (Table 5).

#ifndef SRC_RDMA_FABRIC_H_
#define SRC_RDMA_FABRIC_H_

#include <atomic>
#include <cstddef>
#include <string>

#include "src/common/ids.h"
#include "src/common/latency_model.h"

namespace wukongs {

enum class Transport {
  kRdma = 0,  // One-sided verbs available; in-place execution is cheap.
  kTcp = 1,   // Kernel TCP; every remote touch pays a full RTT.
};

const char* TransportName(Transport t);

struct FabricStats {
  uint64_t one_sided_reads = 0;
  uint64_t one_sided_read_bytes = 0;
  uint64_t messages = 0;
  uint64_t message_bytes = 0;
  uint64_t cross_system_tuples = 0;
};

class Fabric {
 public:
  Fabric(uint32_t node_count, NetworkModel model, Transport transport);

  uint32_t node_count() const { return node_count_; }
  Transport transport() const { return transport_; }
  const NetworkModel& model() const { return model_; }
  void set_transport(Transport t) { transport_ = t; }

  // One-sided read of `bytes` from `to` issued by `from`. Local access is
  // free. Under TCP there are no one-sided verbs, so the cost is a full
  // message round trip.
  void OneSidedRead(NodeId from, NodeId to, size_t bytes);

  // Two-sided message (request or response) of `bytes` from `from` to `to`.
  void Message(NodeId from, NodeId to, size_t bytes);

  // Composite-design boundary crossing: `tuples` tuples are transformed
  // between the stream processor's format and the store's format and shipped
  // across (paper §2.3 Issue#1). Charged regardless of co-location, plus one
  // messaging RTT for the crossing itself.
  void CrossSystemTransfer(size_t tuples, size_t bytes_per_tuple = 32);

  FabricStats stats() const;
  void ResetStats();

  std::string DebugString() const;

 private:
  const uint32_t node_count_;
  NetworkModel model_;
  Transport transport_;

  std::atomic<uint64_t> one_sided_reads_{0};
  std::atomic<uint64_t> one_sided_read_bytes_{0};
  std::atomic<uint64_t> messages_{0};
  std::atomic<uint64_t> message_bytes_{0};
  std::atomic<uint64_t> cross_system_tuples_{0};
};

}  // namespace wukongs

#endif  // SRC_RDMA_FABRIC_H_
