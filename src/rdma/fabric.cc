#include "src/rdma/fabric.h"

#include <sstream>

#include "src/common/deadline.h"
#include "src/fault/fault_injector.h"

namespace wukongs {

const char* TransportName(Transport t) {
  switch (t) {
    case Transport::kRdma:
      return "RDMA";
    case Transport::kTcp:
      return "TCP";
  }
  return "UNKNOWN";
}

Fabric::Fabric(uint32_t node_count, NetworkModel model, Transport transport)
    : node_count_(node_count),
      capacity_(node_count * 2 + 8),
      model_(model),
      transport_(transport),
      node_up_(new std::atomic<bool>[capacity_]),
      node_serving_(new std::atomic<bool>[capacity_]) {
  // Every slot — including growth headroom — starts up+serving, so AddNode
  // only has to publish the count; readers never see an uninitialized slot.
  for (uint32_t n = 0; n < capacity_; ++n) {
    node_up_[n].store(true, std::memory_order_relaxed);
    node_serving_[n].store(true, std::memory_order_relaxed);
  }
}

int Fabric::AddNode() {
  uint32_t count = node_count_.load(std::memory_order_relaxed);
  if (count >= capacity_) {
    return -1;
  }
  node_up_[count].store(true, std::memory_order_relaxed);
  node_serving_[count].store(true, std::memory_order_relaxed);
  node_count_.store(count + 1, std::memory_order_release);
  return static_cast<int>(count);
}

void Fabric::SetNodeUp(NodeId node, bool up) {
  if (node < node_count()) {
    node_up_[node].store(up, std::memory_order_relaxed);
  }
}

bool Fabric::node_up(NodeId node) const {
  return node < node_count() && node_up_[node].load(std::memory_order_relaxed);
}

uint32_t Fabric::up_count() const {
  uint32_t count = node_count();
  uint32_t up = 0;
  for (uint32_t n = 0; n < count; ++n) {
    if (node_up_[n].load(std::memory_order_relaxed)) {
      ++up;
    }
  }
  return up;
}

void Fabric::SetNodeServing(NodeId node, bool serving) {
  if (node < node_count()) {
    node_serving_[node].store(serving, std::memory_order_relaxed);
  }
}

bool Fabric::node_serving(NodeId node) const {
  return node_up(node) && node_serving_[node].load(std::memory_order_relaxed);
}

uint32_t Fabric::serving_count() const {
  uint32_t count = node_count();
  uint32_t serving = 0;
  for (uint32_t n = 0; n < count; ++n) {
    if (node_serving(static_cast<NodeId>(n))) {
      ++serving;
    }
  }
  return serving;
}

double Fabric::ServiceFactor(NodeId node) const {
  if (injector_ == nullptr || !injector_->HasGrayFailures()) {
    return 1.0;
  }
  return injector_->ServiceFactorNow(node);
}

void Fabric::ChargeRead(size_t bytes, double factor) {
  one_sided_reads_.fetch_add(1, std::memory_order_relaxed);
  one_sided_read_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (transport_ == Transport::kRdma) {
    SimCost::Add(factor *
                 (model_.rdma_read_base_ns +
                  model_.rdma_read_per_byte_ns * static_cast<double>(bytes)));
  } else {
    // No one-sided verbs over TCP: pulling remote data costs an RPC.
    SimCost::Add(factor *
                 (model_.tcp_msg_base_ns +
                  model_.tcp_msg_per_byte_ns * static_cast<double>(bytes)));
  }
}

void Fabric::ChargeMessage(size_t bytes, double factor) {
  messages_.fetch_add(1, std::memory_order_relaxed);
  message_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  if (transport_ == Transport::kRdma) {
    SimCost::Add(factor *
                 (model_.rdma_msg_base_ns +
                  model_.rdma_msg_per_byte_ns * static_cast<double>(bytes)));
  } else {
    SimCost::Add(factor *
                 (model_.tcp_msg_base_ns +
                  model_.tcp_msg_per_byte_ns * static_cast<double>(bytes)));
  }
}

void Fabric::OneSidedRead(NodeId from, NodeId to, size_t bytes) {
  if (from == to) {
    return;  // Local shard access: plain memory read, no network cost.
  }
  ChargeRead(bytes, ServiceFactor(to));
}

void Fabric::Message(NodeId from, NodeId to, size_t bytes) {
  if (from == to) {
    return;
  }
  ChargeMessage(bytes, ServiceFactor(to));
  if (injector_ != nullptr) {
    SimCost::Add(injector_->MessageJitterNs(from, to));
  }
}

void Fabric::Heartbeat(NodeId from, NodeId to) {
  if (!node_up(from) || !node_up(to)) {
    return;  // A dead endpoint simply misses the beat.
  }
  heartbeats_.fetch_add(1, std::memory_order_relaxed);
  if (from == to) {
    return;
  }
  // A beat is a minimal two-sided send; charged so health traffic is not
  // magically free, but counted apart from data messages.
  constexpr size_t kBeatBytes = 16;
  if (transport_ == Transport::kRdma) {
    SimCost::Add(model_.rdma_msg_base_ns +
                 model_.rdma_msg_per_byte_ns * static_cast<double>(kBeatBytes));
  } else {
    SimCost::Add(model_.tcp_msg_base_ns +
                 model_.tcp_msg_per_byte_ns * static_cast<double>(kBeatBytes));
  }
}

Status Fabric::TryOneSidedRead(NodeId from, NodeId to, size_t bytes) {
  if (from == to) {
    return Status::Ok();
  }
  if (Deadline::ExpiredNow()) {
    // Cancelled before issue: the budget is gone, so the verb never hits
    // the wire — no cost charged, and the non-retryable code stops the
    // caller's retry loop from burning backoff it cannot afford.
    deadline_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("one-sided read: budget exhausted");
  }
  if (!node_up(to) || !node_up(from)) {
    // No wire time: the requester's QP to a dead peer errors out instantly.
    failed_reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("one-sided read: node down");
  }
  ChargeRead(bytes, ServiceFactor(to));
  if (injector_ != nullptr && injector_->FailRead(from, to)) {
    failed_reads_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("one-sided read lost");
  }
  return Status::Ok();
}

Status Fabric::TryMessage(NodeId from, NodeId to, size_t bytes) {
  if (from == to) {
    return Status::Ok();
  }
  if (Deadline::ExpiredNow()) {
    deadline_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return Status::DeadlineExceeded("message: budget exhausted");
  }
  if (!node_up(to) || !node_up(from)) {
    failed_messages_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("message: node down");
  }
  ChargeMessage(bytes, ServiceFactor(to));
  if (injector_ != nullptr) {
    SimCost::Add(injector_->MessageJitterNs(from, to));
  }
  if (injector_ != nullptr && injector_->FailMessage(from, to)) {
    failed_messages_.fetch_add(1, std::memory_order_relaxed);
    return Status::Unavailable("message lost");
  }
  return Status::Ok();
}

void Fabric::CrossSystemTransfer(size_t tuples, size_t bytes_per_tuple) {
  cross_system_tuples_.fetch_add(tuples, std::memory_order_relaxed);
  SimCost::Add(model_.cross_system_per_tuple_ns * static_cast<double>(tuples));
  // The crossing itself is a message between the two systems' processes.
  size_t bytes = tuples * bytes_per_tuple;
  messages_.fetch_add(1, std::memory_order_relaxed);
  message_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  SimCost::Add(model_.tcp_msg_base_ns +
               model_.tcp_msg_per_byte_ns * static_cast<double>(bytes));
}

FabricStats Fabric::stats() const {
  FabricStats s;
  s.one_sided_reads = one_sided_reads_.load(std::memory_order_relaxed);
  s.one_sided_read_bytes = one_sided_read_bytes_.load(std::memory_order_relaxed);
  s.messages = messages_.load(std::memory_order_relaxed);
  s.message_bytes = message_bytes_.load(std::memory_order_relaxed);
  s.cross_system_tuples = cross_system_tuples_.load(std::memory_order_relaxed);
  s.failed_reads = failed_reads_.load(std::memory_order_relaxed);
  s.failed_messages = failed_messages_.load(std::memory_order_relaxed);
  s.heartbeats = heartbeats_.load(std::memory_order_relaxed);
  s.deadline_cancelled = deadline_cancelled_.load(std::memory_order_relaxed);
  return s;
}

void Fabric::ResetStats() {
  one_sided_reads_.store(0, std::memory_order_relaxed);
  one_sided_read_bytes_.store(0, std::memory_order_relaxed);
  messages_.store(0, std::memory_order_relaxed);
  message_bytes_.store(0, std::memory_order_relaxed);
  cross_system_tuples_.store(0, std::memory_order_relaxed);
  failed_reads_.store(0, std::memory_order_relaxed);
  failed_messages_.store(0, std::memory_order_relaxed);
  heartbeats_.store(0, std::memory_order_relaxed);
  deadline_cancelled_.store(0, std::memory_order_relaxed);
}

std::string Fabric::DebugString() const {
  FabricStats s = stats();
  std::ostringstream os;
  os << "Fabric{nodes=" << up_count() << "/" << node_count()
     << " up, transport=" << TransportName(transport_)
     << ", reads=" << s.one_sided_reads << " (" << s.one_sided_read_bytes << "B)"
     << ", msgs=" << s.messages << " (" << s.message_bytes << "B)"
     << ", failed_reads=" << s.failed_reads
     << ", failed_msgs=" << s.failed_messages
     << ", cross_system_tuples=" << s.cross_system_tuples << "}";
  return os.str();
}

}  // namespace wukongs
