// Overload-protection configuration and observability surface.
//
// The control loop this configures (DESIGN.md §5.6):
//
//   transient budget full ──> pressure gauge + GC kick ──> load shedding
//   Stable_SN stalls ──> plan-extension cap ──> credits withheld
//   credits withheld ──> per-stream pending queue fills ──> FeedStream
//       returns kResourceExhausted (backpressure to the feeder)
//   missing heartbeats ──> phi-accrual quarantine ──> Stable_VTS advances
//       over the survivors ──> credits release ──> queues drain
//
// Everything defaults to *off* / unbounded: a cluster that does not opt in
// behaves exactly like the pre-overload seed, which is what keeps the
// original latency benches and golden-digest tests bit-stable.

#ifndef SRC_OVERLOAD_OVERLOAD_CONFIG_H_
#define SRC_OVERLOAD_OVERLOAD_CONFIG_H_

#include <cstdint>

#include "src/overload/load_shedder.h"
#include "src/overload/phi_accrual.h"

namespace wukongs {

struct OverloadConfig {
  // Master switch for credit flow control, pending queues and shedding.
  bool enabled = false;

  // Credit-based flow control: max batches of one stream past the stable
  // frontier (injected-but-unstable + queued). 0 = unbounded (seed behavior).
  size_t credits_per_stream = 0;
  // Dispatcher-side pending queue per stream; when full, FeedStream bounces
  // the feeder with kResourceExhausted instead of buffering unboundedly.
  size_t pending_queue_capacity = 8;

  // Cap on Coordinator plan extensions past Stable_SN. Past it, batches wait
  // in the pending queue (the injector "stalls" as §4.3 prescribes) instead
  // of the plan growing forever. 0 = unbounded (seed behavior).
  size_t max_plan_extensions = 0;

  // Load shedding of timing tuples (timeless data is never shed).
  bool shed_timing = false;
  ShedPolicy shed;
  // Pressure added per transient-append failure, and the per-advance decay
  // multiplier that relaxes shedding once the burst passes.
  double append_failure_pressure = 0.5;
  double pressure_decay = 0.5;

  // Phi-accrual failure detection over fabric heartbeats.
  bool failure_detector = false;
  PhiAccrualConfig phi;
};

// Aggregate counters for the whole overload subsystem, surfaced by
// Cluster::overload_stats(). Monotone; cheap enough to read in bench loops.
struct OverloadStats {
  uint64_t feed_rejections = 0;       // FeedStream bounced (queue full).
  uint64_t credit_stalls = 0;         // Pump paused: no credits.
  uint64_t plan_stalls = 0;           // Pump paused: plan-extension cap.
  uint64_t door_shed_tuples = 0;      // Timing tuples shed at the adaptor.
  uint64_t injector_shed_edges = 0;   // Timing edges shed at AppendSlice.
  uint64_t timing_edges_lost = 0;     // Budget loss with shedding off
                                      // (pre-overload silent-drop, surfaced).
  uint64_t append_pressure_events = 0;
  uint64_t backlog_deferred = 0;      // Batches deferred on a slow node.
  uint64_t backlog_drained = 0;
  uint64_t heartbeats = 0;
  uint64_t quarantines = 0;
  uint64_t reactivations = 0;
};

}  // namespace wukongs

#endif  // SRC_OVERLOAD_OVERLOAD_CONFIG_H_
