#include "src/overload/phi_accrual.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace wukongs {
namespace {

// phi = -log10(P(gap >= t)) with exponentially distributed inter-arrivals:
// P(gap >= t) = exp(-t / mean), so phi = t / (mean * ln 10).
constexpr double kLn10 = 2.302585092994046;

}  // namespace

PhiAccrualDetector::PhiAccrualDetector(uint32_t node_count,
                                       const PhiAccrualConfig& config)
    : config_(config), nodes_(node_count) {}

void PhiAccrualDetector::Heartbeat(NodeId node, StreamTime now_ms) {
  std::lock_guard lock(mu_);
  assert(node < nodes_.size());
  NodeHistory& h = nodes_[node];
  if (h.seen && now_ms >= h.last_ms) {
    h.intervals.push_back(static_cast<double>(now_ms - h.last_ms));
    while (h.intervals.size() > config_.history) {
      h.intervals.pop_front();
    }
  }
  h.seen = true;
  h.last_ms = now_ms;
  ++heartbeats_;
}

double PhiAccrualDetector::MeanIntervalLocked(const NodeHistory& h) const {
  if (h.intervals.empty()) {
    return std::max(config_.expected_interval_ms, config_.min_mean_interval_ms);
  }
  double sum = 0.0;
  for (double v : h.intervals) {
    sum += v;
  }
  return std::max(sum / static_cast<double>(h.intervals.size()),
                  config_.min_mean_interval_ms);
}

double PhiAccrualDetector::Phi(NodeId node, StreamTime now_ms) const {
  std::lock_guard lock(mu_);
  assert(node < nodes_.size());
  const NodeHistory& h = nodes_[node];
  if (!h.seen || now_ms <= h.last_ms) {
    return 0.0;
  }
  double gap = static_cast<double>(now_ms - h.last_ms);
  return gap / (MeanIntervalLocked(h) * kLn10);
}

void PhiAccrualDetector::Reset(NodeId node, StreamTime now_ms) {
  std::lock_guard lock(mu_);
  assert(node < nodes_.size());
  nodes_[node] = NodeHistory{};
  nodes_[node].seen = true;
  nodes_[node].last_ms = now_ms;
}

uint64_t PhiAccrualDetector::heartbeats() const {
  std::lock_guard lock(mu_);
  return heartbeats_;
}

FailureDetector::FailureDetector(uint32_t node_count,
                                 const PhiAccrualConfig& config)
    : config_(config),
      phi_(node_count, config),
      quarantined_(node_count, false),
      healthy_streak_(node_count, 0) {}

void FailureDetector::Heartbeat(NodeId node, StreamTime now_ms) {
  phi_.Heartbeat(node, now_ms);
}

double FailureDetector::Phi(NodeId node, StreamTime now_ms) const {
  return phi_.Phi(node, now_ms);
}

HealthAction FailureDetector::Evaluate(NodeId node, StreamTime now_ms,
                                       bool caught_up) {
  double phi = phi_.Phi(node, now_ms);
  std::lock_guard lock(mu_);
  assert(node < quarantined_.size());
  if (!quarantined_[node]) {
    if (phi >= config_.quarantine_phi) {
      quarantined_[node] = true;
      healthy_streak_[node] = 0;
      ++quarantines_;
      return HealthAction::kQuarantine;
    }
    return HealthAction::kNone;
  }
  // Quarantined: recover only after a streak of low-suspicion evaluations
  // (hysteresis against flapping) and a confirmed catch-up, so reactivation
  // can never regress Stable_VTS.
  if (phi < config_.reactivate_phi) {
    ++healthy_streak_[node];
  } else {
    healthy_streak_[node] = 0;
  }
  if (healthy_streak_[node] >= config_.hysteresis_beats && caught_up) {
    quarantined_[node] = false;
    healthy_streak_[node] = 0;
    ++reactivations_;
    return HealthAction::kReactivate;
  }
  return HealthAction::kNone;
}

bool FailureDetector::quarantined(NodeId node) const {
  std::lock_guard lock(mu_);
  return node < quarantined_.size() && quarantined_[node];
}

void FailureDetector::Reset(NodeId node, StreamTime now_ms) {
  phi_.Reset(node, now_ms);
  std::lock_guard lock(mu_);
  assert(node < quarantined_.size());
  quarantined_[node] = false;
  healthy_streak_[node] = 0;
}

FailureDetector::Stats FailureDetector::stats() const {
  Stats s;
  s.heartbeats = phi_.heartbeats();
  std::lock_guard lock(mu_);
  s.quarantines = quarantines_;
  s.reactivations = reactivations_;
  return s;
}

}  // namespace wukongs
