// Gray-failure (straggler) detection (DESIGN.md §5.11).
//
// Phi-accrual catches nodes that stop heartbeating. A gray-failed node is
// worse: it heartbeats on time, applies batches, answers queries — just 10x
// slower than its peers, silently dragging every fork-join barrier (and so
// every p99) with it. The only evidence is *relative service latency*, so
// the detector keeps a per-node EWMA of observed per-operation service time
// and scores each node against the median of its peers' EWMAs: a node whose
// EWMA exceeds `slow_factor` times the peer median is an outlier.
//
// A hysteresis state machine turns outlier scores into a kSlow demotion —
// distinct from phi-accrual's quarantine: a demoted node stays up and
// serving on the fabric (its shards remain readable and it keeps ingesting),
// it is only removed from latency-critical *fan-out* (fork-join parallel
// sub-queries and home-node selection). Demotion requires `demote_after`
// consecutive outlier evaluations, promotion back `promote_after` healthy
// ones, and the last healthy fan-out participant is never demoted (the
// caller enforces that cluster-level invariant).
//
// Determinism: observations come from the SimCost model, evaluations from
// the logical health tick — no wall clock, so demotion points are exactly
// reproducible for a given seed/schedule.

#ifndef SRC_OVERLOAD_STRAGGLER_DETECTOR_H_
#define SRC_OVERLOAD_STRAGGLER_DETECTOR_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/ids.h"

namespace wukongs {

struct StragglerConfig {
  bool enabled = false;      // Off by default: zero behavior change.
  double ewma_alpha = 0.3;   // Service-time EWMA smoothing.
  double slow_factor = 3.0;  // Outlier when EWMA > factor * peer median.
  size_t min_samples = 8;    // Observations before a node can be judged.
  size_t demote_after = 2;   // Consecutive outlier evaluations to demote.
  size_t promote_after = 3;  // Consecutive healthy evaluations to promote.
};

// What one evaluation decided; the caller (Cluster) applies the action.
enum class StragglerAction {
  kNone = 0,
  kDemote,   // Node became kSlow: drop from fork-join fan-out.
  kPromote,  // Node recovered: restore to fan-out.
};

class StragglerDetector {
 public:
  StragglerDetector(uint32_t node_count, const StragglerConfig& config);

  // Records one modeled service-time sample (ns) for `node`.
  void Observe(NodeId node, double service_ns);

  // One evaluation step for `node`. Scores the node's EWMA against the
  // median EWMA of its peers (peers with enough samples; the node itself is
  // excluded so a straggler cannot inflate its own threshold).
  StragglerAction Evaluate(NodeId node);

  // Is the node currently demoted (kSlow)?
  bool slow(NodeId node) const;
  uint32_t slow_count() const;

  double ewma_ns(NodeId node) const;
  uint64_t samples(NodeId node) const;

  // Forget a node's history and state (post-crash restore / reconfig: old
  // latency is not evidence about the rebuilt node).
  void Reset(NodeId node);

  struct Stats {
    uint64_t observations = 0;
    uint64_t demotions = 0;
    uint64_t promotions = 0;
  };
  Stats stats() const;

 private:
  double PeerMedianLocked(NodeId node) const;

  const StragglerConfig config_;
  mutable std::mutex mu_;
  struct NodeState {
    double ewma_ns = 0.0;
    uint64_t samples = 0;
    bool slow = false;
    size_t outlier_streak = 0;
    size_t healthy_streak = 0;
  };
  std::vector<NodeState> nodes_;
  uint64_t observations_ = 0;
  uint64_t demotions_ = 0;
  uint64_t promotions_ = 0;
};

}  // namespace wukongs

#endif  // SRC_OVERLOAD_STRAGGLER_DETECTOR_H_
