// Phi-accrual failure detection (Hayashibara et al., SRDS'04), as deployed
// in Cassandra/Akka: instead of a binary alive/dead timeout, the detector
// outputs a continuous suspicion level phi derived from the observed
// heartbeat inter-arrival distribution. phi = 1 means "if the node were
// healthy, a gap this long would happen one time in 10"; phi = 3 one time in
// 1000. Quarantine triggers when phi crosses a threshold, which adapts
// automatically to each node's own heartbeat cadence — a node that always
// beats every 100 ms is suspected after a much shorter silence than one that
// beats erratically.
//
// FailureDetector layers a hysteresis state machine on top: a quarantined
// node is only reactivated after (a) phi has dropped back below a (lower)
// reactivation threshold for several consecutive evaluations AND (b) the
// caller confirms it has caught up (its Local_VTS covers the survivors'
// Stable_VTS and its injection backlog is drained). The dual thresholds plus
// the streak requirement prevent flapping; the catch-up gate prevents a
// reactivation from regressing Stable_VTS.
//
// Time is the caller's logical stream time (deterministic, replayable); the
// detector never reads a wall clock.

#ifndef SRC_OVERLOAD_PHI_ACCRUAL_H_
#define SRC_OVERLOAD_PHI_ACCRUAL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "src/common/ids.h"
#include "src/rdf/triple.h"

namespace wukongs {

struct PhiAccrualConfig {
  // Assumed inter-arrival before any history exists (the first gap is judged
  // against this, so detection works from the first missed beat).
  double expected_interval_ms = 100.0;
  size_t history = 16;               // Sliding window of inter-arrival times.
  double min_mean_interval_ms = 1.0; // Floor against a burst collapsing the mean.
  double quarantine_phi = 3.0;       // Suspicion level that quarantines.
  double reactivate_phi = 0.5;       // Must drop below this to start recovery.
  size_t hysteresis_beats = 3;       // Consecutive healthy evaluations required.
};

// Pure phi estimator: per-node heartbeat history -> suspicion level.
// Thread-safe; time only moves through the caller's now_ms arguments.
class PhiAccrualDetector {
 public:
  PhiAccrualDetector(uint32_t node_count, const PhiAccrualConfig& config);

  void Heartbeat(NodeId node, StreamTime now_ms);
  // Suspicion level now. Uses the exponential inter-arrival model:
  // phi = (now - last_arrival) / (mean_interval * ln 10).
  double Phi(NodeId node, StreamTime now_ms) const;
  // Forget a node's history (post-crash restore: old silence is not evidence).
  void Reset(NodeId node, StreamTime now_ms);

  uint64_t heartbeats() const;

 private:
  struct NodeHistory {
    bool seen = false;
    StreamTime last_ms = 0;
    std::deque<double> intervals;
  };

  double MeanIntervalLocked(const NodeHistory& h) const;

  const PhiAccrualConfig config_;
  mutable std::mutex mu_;
  std::vector<NodeHistory> nodes_;
  uint64_t heartbeats_ = 0;
};

enum class HealthAction {
  kNone = 0,
  kQuarantine,  // Caller should exclude the node (Coordinator::SetNodeActive).
  kReactivate,  // Caller should re-admit it.
};

// Phi detector + quarantine/reactivation state machine with hysteresis.
// The detector only *decides*; the caller applies the action, so this layer
// stays free of cluster dependencies.
class FailureDetector {
 public:
  FailureDetector(uint32_t node_count, const PhiAccrualConfig& config);

  void Heartbeat(NodeId node, StreamTime now_ms);
  double Phi(NodeId node, StreamTime now_ms) const;

  // One evaluation step for `node` at `now_ms`. `caught_up` gates
  // reactivation (Local_VTS covers Stable_VTS and no pending backlog).
  HealthAction Evaluate(NodeId node, StreamTime now_ms, bool caught_up);

  bool quarantined(NodeId node) const;
  void Reset(NodeId node, StreamTime now_ms);

  struct Stats {
    uint64_t heartbeats = 0;
    uint64_t quarantines = 0;
    uint64_t reactivations = 0;
  };
  Stats stats() const;

 private:
  const PhiAccrualConfig config_;
  PhiAccrualDetector phi_;
  mutable std::mutex mu_;
  std::vector<bool> quarantined_;
  std::vector<size_t> healthy_streak_;
  uint64_t quarantines_ = 0;
  uint64_t reactivations_ = 0;
};

}  // namespace wukongs

#endif  // SRC_OVERLOAD_PHI_ACCRUAL_H_
