#include "src/overload/admission_controller.h"

#include <algorithm>
#include <cstdlib>
#include <string>

namespace wukongs {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config), ewma_service_ms_(config.initial_service_ms) {}

double AdmissionController::EstimatedWaitMsLocked() const {
  uint32_t workers = std::max(config_.workers, 1u);
  double queued = static_cast<double>(in_flight_) / static_cast<double>(workers);
  return queued * ewma_service_ms_;
}

Status AdmissionController::Admit(double deadline_ms,
                                  AdmissionRejection* rejection) {
  std::lock_guard lock(mu_);
  if (config_.max_concurrent != 0 && in_flight_ >= config_.max_concurrent) {
    ++stats_.rejected_capacity;
    // Retry once one queue "slot" of work has drained.
    double hint = std::max(ewma_service_ms_, 0.0);
    if (rejection != nullptr) {
      rejection->reason = AdmissionRejection::Reason::kConcurrency;
      rejection->retry_after_ms = hint;
    }
    return Status::ResourceExhausted(
        "admission limit reached (" + std::to_string(in_flight_) +
        " in flight); retry_after_ms=" + std::to_string(hint));
  }
  if (deadline_ms > 0.0) {
    double wait = EstimatedWaitMsLocked();
    double predicted = wait + ewma_service_ms_;
    if (predicted > deadline_ms) {
      ++stats_.rejected_deadline;
      // Retry once the backlog ahead of the arrival has drained enough for
      // the prediction to fit the same budget again.
      double hint = std::max(predicted - deadline_ms, 0.0);
      if (rejection != nullptr) {
        rejection->reason = AdmissionRejection::Reason::kDeadline;
        rejection->retry_after_ms = hint;
      }
      return Status::ResourceExhausted(
          "deadline unmeetable: predicted " + std::to_string(predicted) +
          " ms > budget " + std::to_string(deadline_ms) +
          " ms; retry_after_ms=" + std::to_string(hint));
    }
  }
  ++in_flight_;
  ++stats_.admitted;
  return Status::Ok();
}

double AdmissionController::ParseRetryAfterMs(const Status& status) {
  static constexpr char kKey[] = "retry_after_ms=";
  const std::string& msg = status.message();
  size_t pos = msg.find(kKey);
  if (pos == std::string::npos) {
    return 0.0;
  }
  return std::atof(msg.c_str() + pos + sizeof(kKey) - 1);
}

void AdmissionController::Complete(double service_ms) {
  std::lock_guard lock(mu_);
  if (in_flight_ > 0) {
    --in_flight_;
  }
  if (service_ms > 0.0) {
    double a = std::clamp(config_.ewma_alpha, 0.0, 1.0);
    ewma_service_ms_ = (1.0 - a) * ewma_service_ms_ + a * service_ms;
  }
}

size_t AdmissionController::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

double AdmissionController::estimated_service_ms() const {
  std::lock_guard lock(mu_);
  return ewma_service_ms_;
}

double AdmissionController::EstimatedWaitMs() const {
  std::lock_guard lock(mu_);
  return EstimatedWaitMsLocked();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace wukongs
