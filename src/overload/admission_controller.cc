#include "src/overload/admission_controller.h"

#include <algorithm>
#include <string>

namespace wukongs {

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config), ewma_service_ms_(config.initial_service_ms) {}

double AdmissionController::EstimatedWaitMsLocked() const {
  uint32_t workers = std::max(config_.workers, 1u);
  double queued = static_cast<double>(in_flight_) / static_cast<double>(workers);
  return queued * ewma_service_ms_;
}

Status AdmissionController::Admit(double deadline_ms) {
  std::lock_guard lock(mu_);
  if (config_.max_concurrent != 0 && in_flight_ >= config_.max_concurrent) {
    ++stats_.rejected_capacity;
    return Status::ResourceExhausted(
        "admission limit reached (" + std::to_string(in_flight_) + " in flight)");
  }
  if (deadline_ms > 0.0) {
    double predicted = EstimatedWaitMsLocked() + ewma_service_ms_;
    if (predicted > deadline_ms) {
      ++stats_.rejected_deadline;
      return Status::ResourceExhausted(
          "deadline unmeetable: predicted " + std::to_string(predicted) +
          " ms > budget " + std::to_string(deadline_ms) + " ms");
    }
  }
  ++in_flight_;
  ++stats_.admitted;
  return Status::Ok();
}

void AdmissionController::Complete(double service_ms) {
  std::lock_guard lock(mu_);
  if (in_flight_ > 0) {
    --in_flight_;
  }
  if (service_ms > 0.0) {
    double a = std::clamp(config_.ewma_alpha, 0.0, 1.0);
    ewma_service_ms_ = (1.0 - a) * ewma_service_ms_ + a * service_ms;
  }
}

size_t AdmissionController::in_flight() const {
  std::lock_guard lock(mu_);
  return in_flight_;
}

double AdmissionController::estimated_service_ms() const {
  std::lock_guard lock(mu_);
  return ewma_service_ms_;
}

double AdmissionController::EstimatedWaitMs() const {
  std::lock_guard lock(mu_);
  return EstimatedWaitMsLocked();
}

AdmissionController::Stats AdmissionController::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace wukongs
