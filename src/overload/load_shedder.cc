#include "src/overload/load_shedder.h"

#include <algorithm>

namespace wukongs {

void PressureGauge::Raise(double amount) {
  level_ = std::clamp(level_ + amount, 0.0, 1.0);
}

void PressureGauge::Decay(double factor) {
  level_ *= std::clamp(factor, 0.0, 1.0);
  if (level_ < 1e-6) {
    level_ = 0.0;
  }
}

double LoadShedder::KeepFraction(double pressure, int priority) const {
  double onset = policy_.start_pressure +
                 policy_.priority_step * static_cast<double>(std::max(priority, 0));
  if (pressure <= onset || onset >= 1.0) {
    return 1.0;
  }
  // Linear ramp from "keep all" at the onset to min_keep at full pressure.
  double span = 1.0 - onset;
  double keep = 1.0 - (pressure - onset) / span;
  return std::clamp(keep, std::clamp(policy_.min_keep_fraction, 0.0, 1.0), 1.0);
}

}  // namespace wukongs
