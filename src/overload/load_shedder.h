// Load shedding policy (overload tentpole, piece 2).
//
// When the transient ring buffers or the injection pipeline saturate, the
// system sheds *timing* tuples — the data the paper itself classifies as
// disposable outside live windows — rather than stalling or dying. Two
// invariants make shedding safe for the consistency machinery:
//
//   * only whole batch *suffixes* are dropped, never middles, so every
//     surviving batch is a timestamp-ordered prefix and Stable_VTS semantics
//     (batch seq == progress) are untouched;
//   * timeless tuples are never shed — the persistent store stays complete.
//
// The policy is priority-aware: each stream carries a shed priority, and
// higher-priority streams start shedding at higher pressure and shed less.
// PressureGauge is the decaying input signal (append failures, queue
// occupancy); LoadShedder maps (pressure, priority) -> keep fraction.

#ifndef SRC_OVERLOAD_LOAD_SHEDDER_H_
#define SRC_OVERLOAD_LOAD_SHEDDER_H_

#include <cstdint>

namespace wukongs {

struct ShedPolicy {
  // Pressure below which a priority-0 stream sheds nothing.
  double start_pressure = 0.5;
  // Each priority level postpones the shed onset by this much pressure.
  double priority_step = 0.15;
  // Keep at least this fraction even at pressure 1.0 (a trickle preserves
  // result continuity; 0 = allowed to shed a batch's entire timing suffix).
  double min_keep_fraction = 0.0;
};

// A decaying overload signal in [0, 1]. Raised by discrete pressure events
// (transient append failure, credit stall); decayed once per advance tick so
// shedding relaxes when the burst passes.
class PressureGauge {
 public:
  void Raise(double amount);
  void Decay(double factor);
  double level() const { return level_; }

 private:
  double level_ = 0.0;
};

class LoadShedder {
 public:
  explicit LoadShedder(const ShedPolicy& policy) : policy_(policy) {}

  // Fraction of a stream's timing tuples to keep under `pressure` for a
  // stream of `priority`. 1.0 = shed nothing. Deterministic: same inputs,
  // same answer — the property tests rely on replayability.
  double KeepFraction(double pressure, int priority) const;

  const ShedPolicy& policy() const { return policy_; }

 private:
  ShedPolicy policy_;
};

}  // namespace wukongs

#endif  // SRC_OVERLOAD_LOAD_SHEDDER_H_
