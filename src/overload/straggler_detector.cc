#include "src/overload/straggler_detector.h"

#include <algorithm>
#include <cassert>

namespace wukongs {

StragglerDetector::StragglerDetector(uint32_t node_count,
                                     const StragglerConfig& config)
    : config_(config), nodes_(node_count) {}

void StragglerDetector::Observe(NodeId node, double service_ns) {
  if (!config_.enabled || service_ns <= 0.0) {
    return;
  }
  std::lock_guard lock(mu_);
  assert(node < nodes_.size());
  NodeState& s = nodes_[node];
  if (s.samples == 0) {
    s.ewma_ns = service_ns;
  } else {
    double a = std::clamp(config_.ewma_alpha, 0.0, 1.0);
    s.ewma_ns = (1.0 - a) * s.ewma_ns + a * service_ns;
  }
  ++s.samples;
  ++observations_;
}

double StragglerDetector::PeerMedianLocked(NodeId node) const {
  std::vector<double> peers;
  peers.reserve(nodes_.size());
  for (size_t n = 0; n < nodes_.size(); ++n) {
    if (n != node && nodes_[n].samples >= config_.min_samples) {
      peers.push_back(nodes_[n].ewma_ns);
    }
  }
  if (peers.empty()) {
    return 0.0;
  }
  size_t mid = peers.size() / 2;
  std::nth_element(peers.begin(), peers.begin() + mid, peers.end());
  return peers[mid];
}

StragglerAction StragglerDetector::Evaluate(NodeId node) {
  if (!config_.enabled) {
    return StragglerAction::kNone;
  }
  std::lock_guard lock(mu_);
  assert(node < nodes_.size());
  NodeState& s = nodes_[node];
  if (s.samples < config_.min_samples) {
    return StragglerAction::kNone;  // Not enough evidence either way.
  }
  double median = PeerMedianLocked(node);
  if (median <= 0.0) {
    return StragglerAction::kNone;  // No judged peers to compare against.
  }
  bool outlier = s.ewma_ns > config_.slow_factor * median;
  if (outlier) {
    ++s.outlier_streak;
    s.healthy_streak = 0;
  } else {
    ++s.healthy_streak;
    s.outlier_streak = 0;
  }
  if (!s.slow && s.outlier_streak >= std::max<size_t>(config_.demote_after, 1)) {
    s.slow = true;
    s.outlier_streak = 0;
    ++demotions_;
    return StragglerAction::kDemote;
  }
  if (s.slow && s.healthy_streak >= std::max<size_t>(config_.promote_after, 1)) {
    s.slow = false;
    s.healthy_streak = 0;
    ++promotions_;
    return StragglerAction::kPromote;
  }
  return StragglerAction::kNone;
}

bool StragglerDetector::slow(NodeId node) const {
  std::lock_guard lock(mu_);
  return node < nodes_.size() && nodes_[node].slow;
}

uint32_t StragglerDetector::slow_count() const {
  std::lock_guard lock(mu_);
  uint32_t count = 0;
  for (const NodeState& s : nodes_) {
    if (s.slow) {
      ++count;
    }
  }
  return count;
}

double StragglerDetector::ewma_ns(NodeId node) const {
  std::lock_guard lock(mu_);
  return node < nodes_.size() ? nodes_[node].ewma_ns : 0.0;
}

uint64_t StragglerDetector::samples(NodeId node) const {
  std::lock_guard lock(mu_);
  return node < nodes_.size() ? nodes_[node].samples : 0;
}

void StragglerDetector::Reset(NodeId node) {
  std::lock_guard lock(mu_);
  assert(node < nodes_.size());
  nodes_[node] = NodeState{};
}

StragglerDetector::Stats StragglerDetector::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.observations = observations_;
  s.demotions = demotions_;
  s.promotions = promotions_;
  return s;
}

}  // namespace wukongs
