// Admission control at the query door (overload tentpole, piece 3).
//
// A one-shot query that cannot meet its deadline — or that would push the
// worker pool past its concurrency budget — is rejected immediately with
// kResourceExhausted instead of queueing. Rejection costs microseconds;
// queueing a doomed query costs a worker slot, memory, and (worse) the
// latency of every request behind it. The wait estimate is
// in_flight / workers * EWMA(service time): the standard M/M/c shortcut,
// good enough to separate "will clearly blow the deadline" from "admit".

#ifndef SRC_OVERLOAD_ADMISSION_CONTROLLER_H_
#define SRC_OVERLOAD_ADMISSION_CONTROLLER_H_

#include <cstdint>
#include <mutex>

#include "src/common/status.h"

namespace wukongs {

struct AdmissionConfig {
  size_t max_concurrent = 0;  // Admitted-but-unfinished cap; 0 = unlimited.
  uint32_t workers = 1;       // Drain parallelism the wait estimate assumes.
  double ewma_alpha = 0.2;    // Service-time estimator smoothing.
  double initial_service_ms = 0.5;  // Estimate before the first completion.
};

// Why a rejection happened, plus how long the rejected caller should wait
// before retrying. The hint is the EWMA-based queue-drain estimate — far
// better than blind exponential backoff, which either hammers a saturated
// door or oversleeps a briefly-full one.
struct AdmissionRejection {
  enum class Reason { kNone = 0, kConcurrency, kDeadline };
  Reason reason = Reason::kNone;
  double retry_after_ms = 0.0;
};

class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionConfig& config);

  // Decides admission for a query with `deadline_ms` of latency budget
  // (0 = no deadline; only the concurrency cap applies). On Ok the caller
  // MUST later call Complete() exactly once. On rejection, `rejection`
  // (optional) carries the reason and a retry-after hint; the hint is also
  // embedded in the status message as "retry_after_ms=<x>" for callers that
  // only see the Status (parse it back with ParseRetryAfterMs).
  Status Admit(double deadline_ms = 0.0, AdmissionRejection* rejection = nullptr);

  // Recovers the retry-after hint from a rejection status message; returns
  // 0 when the message carries none.
  static double ParseRetryAfterMs(const Status& status);
  // Reports a completed (or failed) admitted query and its service time.
  void Complete(double service_ms);

  size_t in_flight() const;
  double estimated_service_ms() const;
  // Predicted queue wait for a new arrival, before its own service time.
  double EstimatedWaitMs() const;

  struct Stats {
    uint64_t admitted = 0;
    uint64_t rejected_capacity = 0;
    uint64_t rejected_deadline = 0;
  };
  Stats stats() const;

 private:
  double EstimatedWaitMsLocked() const;

  const AdmissionConfig config_;
  mutable std::mutex mu_;
  size_t in_flight_ = 0;
  double ewma_service_ms_;
  Stats stats_;
};

}  // namespace wukongs

#endif  // SRC_OVERLOAD_ADMISSION_CONTROLLER_H_
