// CSPARQL-engine baseline (paper §2.3, §6.1): the de-facto composite design,
// Esper (relational stream windows) + Apache Jena (static triple store) on a
// single node.
//
// Execution of a continuous query (paper Fig. 3(a)):
//   1. split the pattern by GRAPH clause into stream part and stored part;
//   2. Esper side: per-window scans + joins over window tables;
//   3. Jena side: scans + joins over the *static* stored table (one-shot
//      queries run here directly and never see streamed facts — the
//      composite design "is still not completely stateful");
//   4. join the two halves and project.
// Costs: real compute plus modeled JVM per-tuple overhead, per-execution
// framework overhead, and cross-system transform/transfer for every tuple
// crossing the Esper/Jena boundary.

#ifndef SRC_BASELINES_CSPARQL_ENGINE_H_
#define SRC_BASELINES_CSPARQL_ENGINE_H_

#include <string>

#include "src/baselines/baseline_streams.h"
#include "src/baselines/relational.h"
#include "src/cluster/cluster.h"  // For QueryExecution and NetworkModel.
#include "src/rdf/string_server.h"
#include "src/sparql/ast.h"

namespace wukongs {

struct CsparqlConfig {
  // Fixed per-execution overhead of the Esper/Jena integration layer
  // (query translation, result marshalling; the engine is JVM-based).
  double fixed_overhead_ms = 25.0;
  // Modeled per-tuple cost of scans/joins in the JVM engines (object churn,
  // reflective bindings) on top of our measured native compute.
  double per_tuple_ns = 1500.0;
  NetworkModel network;
};

class CsparqlEngine {
 public:
  CsparqlEngine(StringServer* strings, CsparqlConfig config = {});

  void LoadStored(const TripleVec& triples);
  BaselineStreams* streams() { return &streams_; }

  // Continuous query with windows ending at `end_ms`.
  StatusOr<QueryExecution> ExecuteContinuous(const Query& q, StreamTime end_ms);
  // One-shot query over the static stored data only.
  StatusOr<QueryExecution> ExecuteOneShot(const Query& q);

 private:
  StatusOr<RelTable> EvalPatterns(const Query& q, StreamTime end_ms, bool stream_part,
                                  size_t* work_tuples);

  StringServer* strings_;
  CsparqlConfig config_;
  TripleTable stored_;
  BaselineStreams streams_;
};

}  // namespace wukongs

#endif  // SRC_BASELINES_CSPARQL_ENGINE_H_
