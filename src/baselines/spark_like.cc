#include "src/baselines/spark_like.h"

namespace wukongs {
namespace {

bool HasConstantAnchor(const Query& q) {
  for (const TriplePattern& p : q.patterns) {
    if (!p.subject.is_var() || !p.object.is_var()) {
      return true;
    }
  }
  return false;
}

}  // namespace

SparkEngine::SparkEngine(StringServer* strings, SparkConfig config)
    : strings_(strings), config_(config) {}

void SparkEngine::LoadStored(const TripleVec& triples) { stored_.AddAll(triples); }

StatusOr<QueryExecution> SparkEngine::ExecuteContinuous(const Query& q,
                                                        StreamTime end_ms) {
  if (config_.structured && !HasConstantAnchor(q)) {
    return Status::Unimplemented(
        "Structured Streaming: stream-stream join without a selective anchor "
        "is unsupported");
  }
  double sim_before = SimCost::TotalNs();
  Stopwatch wall;

  // Materialize the DataFrames this micro-batch reads.
  size_t work = 0;
  std::vector<TripleTable> windows;
  windows.reserve(q.windows.size());
  for (const WindowSpec& w : q.windows) {
    auto sid = streams_.Find(w.stream_name);
    if (!sid.ok()) {
      return sid.status();
    }
    // Structured Streaming scans the unbounded table and discards rows
    // outside the window with a watermark filter afterwards: the *cost* is
    // the full scan, the *matches* are the window's. Spark Streaming scans
    // just the window's RDDs.
    if (config_.structured) {
      streams_.Unbounded(*sid, end_ms, &work);
      size_t ignored = 0;
      windows.push_back(streams_.Window(*sid, end_ms, w.range_ms, &ignored));
    } else {
      windows.push_back(streams_.Window(*sid, end_ms, w.range_ms, &work));
    }
  }

  // One relational plan over everything: scan per pattern, join in order.
  RelTable acc;
  bool first = true;
  for (const TriplePattern& p : q.patterns) {
    const TripleTable& table =
        p.graph == kGraphStored ? stored_ : windows[static_cast<size_t>(p.graph)];
    RelTable scanned = ScanPattern(table, p, &work);
    if (first) {
      acc = std::move(scanned);
      first = false;
    } else {
      acc = HashJoin(acc, scanned, &work);
    }
  }
  if (first) {
    acc.rows.push_back({});
  }
  for (const FilterExpr& f : q.filters) {
    acc = ApplyRelFilter(acc, f, *strings_);
  }
  auto result = ProjectRelation(q, acc, *strings_);
  if (!result.ok()) {
    return result.status();
  }

  SimCost::Add(config_.per_tuple_ns * static_cast<double>(work));
  SimCost::Add(config_.batch_overhead_ms * 1e6);

  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = wall.ElapsedMs();
  exec.net_ms = (SimCost::TotalNs() - sim_before) / 1e6;
  exec.window_end_ms = end_ms;
  return exec;
}

}  // namespace wukongs
