#include "src/baselines/baseline_streams.h"

#include <algorithm>

namespace wukongs {

StatusOr<StreamId> BaselineStreams::Define(const std::string& name) {
  if (names_.count(name) > 0) {
    return Status::AlreadyExists("stream " + name + " already defined");
  }
  StreamId id = static_cast<StreamId>(logs_.size());
  logs_.emplace_back();
  names_.emplace(name, id);
  return id;
}

StatusOr<StreamId> BaselineStreams::Find(const std::string& name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return Status::NotFound("unknown stream " + name);
  }
  return it->second;
}

Status BaselineStreams::Feed(StreamId stream, const StreamTupleVec& tuples) {
  if (stream >= logs_.size()) {
    return Status::NotFound("unknown stream id");
  }
  auto& log = logs_[stream];
  for (const StreamTuple& t : tuples) {
    if (!log.empty() && t.timestamp < log.back().timestamp) {
      return Status::InvalidArgument("stream timestamps must be non-decreasing");
    }
    log.push_back(t);
  }
  return Status::Ok();
}

TripleTable BaselineStreams::Window(StreamId stream, StreamTime end_ms,
                                    uint64_t range_ms, size_t* scanned) const {
  TripleTable out;
  if (stream >= logs_.size()) {
    return out;
  }
  const auto& log = logs_[stream];
  StreamTime from = end_ms > range_ms ? end_ms - range_ms : 0;
  auto lo = std::lower_bound(log.begin(), log.end(), from,
                             [](const StreamTuple& t, StreamTime v) {
                               return t.timestamp < v;
                             });
  for (auto it = lo; it != log.end() && it->timestamp < end_ms; ++it) {
    out.Add(it->triple);
    if (scanned != nullptr) {
      ++*scanned;
    }
  }
  return out;
}

TripleTable BaselineStreams::Unbounded(StreamId stream, StreamTime end_ms,
                                       size_t* scanned) const {
  return Window(stream, end_ms, end_ms, scanned);
}

size_t BaselineStreams::TotalTuples() const {
  size_t n = 0;
  for (const auto& log : logs_) {
    n += log.size();
  }
  return n;
}

size_t BaselineStreams::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& log : logs_) {
    bytes += log.capacity() * sizeof(StreamTuple);
  }
  return bytes;
}

}  // namespace wukongs
