#include "src/baselines/relational.h"

#include <algorithm>
#include <cstdlib>

#include "src/engine/executor.h"

namespace wukongs {

int RelTable::ColumnOf(int var) const {
  for (size_t i = 0; i < vars.size(); ++i) {
    if (vars[i] == var) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

void TripleTable::Add(const Triple& t) {
  by_predicate_[t.predicate].push_back(t);
  ++total_;
}

void TripleTable::AddAll(const TripleVec& triples) {
  for (const Triple& t : triples) {
    Add(t);
  }
}

const TripleVec& TripleTable::WithPredicate(PredicateId p) const {
  auto it = by_predicate_.find(p);
  return it == by_predicate_.end() ? empty_ : it->second;
}

size_t TripleTable::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [p, triples] : by_predicate_) {
    bytes += 64 + triples.capacity() * sizeof(Triple);
  }
  return bytes;
}

RelTable ScanPattern(const TripleTable& table, const TriplePattern& p,
                     size_t* scanned) {
  RelTable out;
  bool s_var = p.subject.is_var();
  bool o_var = p.object.is_var();
  if (s_var) {
    out.vars.push_back(p.subject.var);
  }
  if (o_var && (!s_var || p.object.var != p.subject.var)) {
    out.vars.push_back(p.object.var);
  }
  const TripleVec& candidates = table.WithPredicate(p.predicate);
  if (scanned != nullptr) {
    *scanned += candidates.size();
  }
  for (const Triple& t : candidates) {
    if (!s_var && t.subject != p.subject.constant) {
      continue;
    }
    if (!o_var && t.object != p.object.constant) {
      continue;
    }
    if (s_var && o_var && p.subject.var == p.object.var && t.subject != t.object) {
      continue;
    }
    std::vector<VertexId> row;
    if (s_var) {
      row.push_back(t.subject);
    }
    if (o_var && (!s_var || p.object.var != p.subject.var)) {
      row.push_back(t.object);
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

RelTable HashJoin(const RelTable& a, const RelTable& b, size_t* intermediate) {
  // Shared variables become the join key.
  std::vector<std::pair<int, int>> shared;  // (col in a, col in b)
  for (size_t i = 0; i < a.vars.size(); ++i) {
    int bc = b.ColumnOf(a.vars[i]);
    if (bc >= 0) {
      shared.emplace_back(static_cast<int>(i), bc);
    }
  }
  RelTable out;
  out.vars = a.vars;
  std::vector<int> b_extra_cols;
  for (size_t i = 0; i < b.vars.size(); ++i) {
    if (a.ColumnOf(b.vars[i]) < 0) {
      out.vars.push_back(b.vars[i]);
      b_extra_cols.push_back(static_cast<int>(i));
    }
  }

  auto key_of = [&shared](const std::vector<VertexId>& row, bool left) {
    // FNV-style combine of the join columns.
    uint64_t h = 1469598103934665603ULL;
    for (const auto& [ac, bc] : shared) {
      uint64_t v = row[static_cast<size_t>(left ? ac : bc)];
      h = (h ^ v) * 1099511628211ULL;
    }
    return h;
  };
  auto rows_match = [&shared](const std::vector<VertexId>& ra,
                              const std::vector<VertexId>& rb) {
    for (const auto& [ac, bc] : shared) {
      if (ra[static_cast<size_t>(ac)] != rb[static_cast<size_t>(bc)]) {
        return false;
      }
    }
    return true;
  };

  // Build on the smaller side.
  std::unordered_multimap<uint64_t, const std::vector<VertexId>*> hash;
  hash.reserve(b.rows.size());
  for (const auto& row : b.rows) {
    hash.emplace(key_of(row, /*left=*/false), &row);
  }
  for (const auto& ra : a.rows) {
    auto [lo, hi] = hash.equal_range(key_of(ra, /*left=*/true));
    for (auto it = lo; it != hi; ++it) {
      const auto& rb = *it->second;
      if (!rows_match(ra, rb)) {
        continue;
      }
      std::vector<VertexId> row = ra;
      for (int bc : b_extra_cols) {
        row.push_back(rb[static_cast<size_t>(bc)]);
      }
      out.rows.push_back(std::move(row));
    }
  }
  if (intermediate != nullptr) {
    *intermediate += out.rows.size();
  }
  return out;
}

RelTable ApplyRelFilter(const RelTable& in, const FilterExpr& f,
                        const StringServer& strings) {
  RelTable out;
  out.vars = in.vars;
  int col = in.ColumnOf(f.var);
  if (col < 0) {
    return out;  // Unbound filter variable: nothing matches.
  }
  for (const auto& row : in.rows) {
    VertexId v = row[static_cast<size_t>(col)];
    bool keep = false;
    if (f.numeric) {
      auto str = strings.VertexString(v);
      if (!str.ok()) {
        continue;
      }
      char* end = nullptr;
      double num = std::strtod(str->c_str(), &end);
      if (end == str->c_str()) {
        continue;
      }
      switch (f.op) {
        case FilterExpr::Op::kLt:
          keep = num < f.number;
          break;
        case FilterExpr::Op::kLe:
          keep = num <= f.number;
          break;
        case FilterExpr::Op::kGt:
          keep = num > f.number;
          break;
        case FilterExpr::Op::kGe:
          keep = num >= f.number;
          break;
        case FilterExpr::Op::kEq:
          keep = num == f.number;
          break;
        case FilterExpr::Op::kNe:
          keep = num != f.number;
          break;
      }
    } else {
      bool eq = v == f.constant;
      keep = f.op == FilterExpr::Op::kEq   ? eq
             : f.op == FilterExpr::Op::kNe ? !eq
                                           : false;
    }
    if (keep) {
      out.rows.push_back(row);
    }
  }
  return out;
}

StatusOr<QueryResult> ProjectRelation(const Query& q, const RelTable& table,
                                      const StringServer& strings) {
  // Reuse the integrated engine's projection/aggregation via BindingTable.
  BindingTable bt;
  for (int v : table.vars) {
    bt.AddColumn(v);
  }
  for (const auto& row : table.rows) {
    bt.AppendRow(row.data());
  }
  if (table.vars.empty() && table.rows.empty()) {
    bt.FailUnit();
  }
  ExecContext ctx;
  ctx.strings = &strings;
  auto result = ProjectResult(q, ctx, bt);
  if (!result.ok()) {
    return result;
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  return result;
}

}  // namespace wukongs
