// Spark Streaming / Structured Streaming baselines (paper §6.1-§6.2).
//
// Spark Streaming: both streaming and stored data are DataFrames; every
// micro-batch runs the query as relational joins over the full stored table
// plus the window tables, paying a fixed job-scheduling overhead per batch
// (the "hundreds of milliseconds" floor the paper observes).
//
// Structured Streaming: streams become *unbounded tables* — pattern scans
// walk the stream from time zero, not just the window — and several
// operations are unsupported: following the paper (which could only run
// L1-L3), queries whose plan has no constant-rooted pattern (a stream-side
// self/stream-stream join with no selective anchor) return Unimplemented,
// rendered as "x" in the tables.

#ifndef SRC_BASELINES_SPARK_LIKE_H_
#define SRC_BASELINES_SPARK_LIKE_H_

#include "src/baselines/baseline_streams.h"
#include "src/baselines/relational.h"
#include "src/cluster/cluster.h"
#include "src/rdf/string_server.h"
#include "src/sparql/ast.h"

namespace wukongs {

struct SparkConfig {
  bool structured = false;        // Structured Streaming variant.
  double batch_overhead_ms = 120.0;  // Job scheduling per triggered batch.
  double per_tuple_ns = 800.0;       // JVM/RDD per-tuple overhead.
};

class SparkEngine {
 public:
  SparkEngine(StringServer* strings, SparkConfig config = {});

  void LoadStored(const TripleVec& triples);
  BaselineStreams* streams() { return &streams_; }

  StatusOr<QueryExecution> ExecuteContinuous(const Query& q, StreamTime end_ms);

 private:
  StringServer* strings_;
  SparkConfig config_;
  TripleTable stored_;
  BaselineStreams streams_;
};

}  // namespace wukongs

#endif  // SRC_BASELINES_SPARK_LIKE_H_
