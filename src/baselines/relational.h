// Relational query primitives used by the baseline systems.
//
// CSPARQL-engine (Esper+Jena), Storm/Heron bolts and Spark SQL all evaluate
// basic graph patterns relationally: scan a triple table per pattern, then
// join the per-pattern binding tables on shared variables. This is exactly
// the execution style the paper contrasts with graph exploration — scans
// produce large intermediates and joins multiply them (the "join bomb",
// §2.2/§7) — so the baselines here execute it for real.

#ifndef SRC_BASELINES_RELATIONAL_H_
#define SRC_BASELINES_RELATIONAL_H_

#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/engine/binding.h"
#include "src/rdf/string_server.h"
#include "src/rdf/triple.h"
#include "src/sparql/ast.h"

namespace wukongs {

// A materialized binding relation: columns are variable slots.
struct RelTable {
  std::vector<int> vars;
  std::vector<std::vector<VertexId>> rows;

  int ColumnOf(int var) const;
  size_t size() const { return rows.size(); }
};

// Triple bag with a per-predicate index (Jena keeps SPO/POS/OSP B-trees; a
// predicate bucket is the moral equivalent for our constant-predicate
// patterns).
class TripleTable {
 public:
  void Add(const Triple& t);
  void AddAll(const TripleVec& triples);
  size_t size() const { return total_; }

  // All triples with this predicate (empty vector if none).
  const TripleVec& WithPredicate(PredicateId p) const;

  size_t MemoryBytes() const;

 private:
  std::unordered_map<PredicateId, TripleVec> by_predicate_;
  TripleVec empty_;
  size_t total_ = 0;
};

// Scans `table` for matches of `p`, producing a relation over the pattern's
// variables. `scanned` (optional) accumulates the number of triples touched,
// for cost accounting.
RelTable ScanPattern(const TripleTable& table, const TriplePattern& p,
                     size_t* scanned = nullptr);

// Hash join on all shared variables (cartesian product when none).
// `intermediate` (optional) accumulates output cardinality.
RelTable HashJoin(const RelTable& a, const RelTable& b, size_t* intermediate = nullptr);

// Applies a FILTER; non-numeric bindings never match numeric filters.
RelTable ApplyRelFilter(const RelTable& in, const FilterExpr& f,
                        const StringServer& strings);

// Projects/aggregates a relation into the engine-wide QueryResult, using the
// same SELECT semantics as the integrated engine.
StatusOr<QueryResult> ProjectRelation(const Query& q, const RelTable& table,
                                      const StringServer& strings);

}  // namespace wukongs

#endif  // SRC_BASELINES_RELATIONAL_H_
