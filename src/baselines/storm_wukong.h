// Storm+Wukong / Heron+Wukong composite baseline (paper §2.3, Fig. 4).
//
// The better-performing composite the paper builds itself: a Storm-style
// bolt pipeline evaluates the stream part of each continuous query over
// window tables, a real Wukong cluster (our integrated store with streaming
// disabled) answers the stored part, and the results are joined back in
// Storm. This reproduces the paper's two issues by construction:
//   * Issue#1, cross-system cost — every tuple crossing the Storm/Wukong
//     boundary pays transformation plus a transfer;
//   * Issue#2, sub-optimal plans — the stored sub-query runs without the
//     stream-side bindings (no global plan), so Wukong computes and returns
//     far more tuples than an integrated plan would touch.
// Two plan styles mirror Fig. 4(a)/(b); Heron is the same pipeline with a
// cheaper scheduler.

#ifndef SRC_BASELINES_STORM_WUKONG_H_
#define SRC_BASELINES_STORM_WUKONG_H_

#include "src/baselines/baseline_streams.h"
#include "src/baselines/relational.h"
#include "src/cluster/cluster.h"
#include "src/sparql/ast.h"

namespace wukongs {

enum class CompositePlan {
  kStreamThenStore,  // Fig. 4(a): eval stream parts, consult Wukong, join.
  kStreamJoinFirst,  // Fig. 4(b): join all stream parts first, then Wukong.
};

struct StormWukongConfig {
  // Per-bolt activation overhead; Storm ~0.15 ms, Heron ~0.04 ms (paper §6.2
  // shows Heron only helps stream-only queries).
  double sched_ns = 150000.0;
  CompositePlan plan = CompositePlan::kStreamThenStore;
  NetworkModel network;
};

// Per-execution breakdown, for the Fig. 4 reproduction.
struct CompositeBreakdown {
  double stream_ms = 0.0;      // Time inside the stream processor.
  double store_ms = 0.0;       // Time inside Wukong.
  double cross_ms = 0.0;       // Cross-system transform + transfer.
  size_t stream_tuples = 0;    // Result sizes crossing the boundary.
  size_t store_tuples = 0;
  size_t final_tuples = 0;

  double total_ms() const { return stream_ms + store_ms + cross_ms; }
  double cross_fraction() const {
    double t = total_ms();
    return t > 0 ? cross_ms / t : 0.0;
  }
};

class StormWukong {
 public:
  // `wukong` must hold the stored data; this baseline never feeds streams
  // into it (the composite design leaves the store static).
  StormWukong(Cluster* wukong, StormWukongConfig config = {});

  BaselineStreams* streams() { return &streams_; }

  StatusOr<QueryExecution> ExecuteContinuous(const Query& q, StreamTime end_ms,
                                             CompositeBreakdown* breakdown = nullptr);

 private:
  Cluster* wukong_;
  StormWukongConfig config_;
  BaselineStreams streams_;
};

}  // namespace wukongs

#endif  // SRC_BASELINES_STORM_WUKONG_H_
