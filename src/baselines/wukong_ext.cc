#include "src/baselines/wukong_ext.h"

#include <algorithm>
#include <cmath>

#include "src/engine/executor.h"
#include "src/store/planner.h"

namespace wukongs {

// Window reads must scan whole values and test every inline timestamp —
// there is no per-batch span to jump to (the cost the stream index removes).
class WukongExt::TimeFilteredSource : public NeighborSource {
 public:
  TimeFilteredSource(const ValueMap& values, StreamTime from_ms, StreamTime to_ms,
                     uint32_t nodes, const NetworkModel& network, bool charge_reads)
      : values_(values),
        from_ms_(from_ms),
        to_ms_(to_ms),
        nodes_(nodes),
        network_(network),
        charge_reads_(charge_reads) {}

  void GetNeighbors(Key key, std::vector<VertexId>* out) const override {
    auto it = values_.find(key);
    if (it == values_.end()) {
      return;
    }
    ChargeRead(key, it->second.size());
    if (key.is_index()) {
      // Index values receive one stamped entry per absorbed edge (no GC, no
      // dedup at write time), so a window read scans the whole ever-growing
      // value, filters by timestamp and dedups — the cost the stream index
      // removes.
      std::vector<VertexId> raw;
      for (const StampedEdge& e : it->second) {
        if (e.ts >= from_ms_ && e.ts < to_ms_) {
          raw.push_back(e.vid);
        }
      }
      std::sort(raw.begin(), raw.end());
      raw.erase(std::unique(raw.begin(), raw.end()), raw.end());
      out->insert(out->end(), raw.begin(), raw.end());
      return;
    }
    for (const StampedEdge& e : it->second) {
      if (e.ts >= from_ms_ && e.ts < to_ms_) {
        out->push_back(e.vid);
      }
    }
  }

  size_t EstimateCount(Key key) const override {
    auto it = values_.find(key);
    return it == values_.end() ? 0 : it->second.size();
  }

 private:
  // Hash-sharded like Wukong: remote keys cost a one-sided read covering the
  // full stamped value. The home node is node 0, index keys live everywhere.
  void ChargeRead(Key key, size_t value_entries) const {
    if (nodes_ <= 1 || !charge_reads_) {
      return;
    }
    size_t bytes = value_entries * sizeof(StampedEdge) + 16;
    if (key.is_index()) {
      double frac = static_cast<double>(nodes_ - 1) / nodes_;
      SimCost::Add((nodes_ - 1) * network_.rdma_read_base_ns +
                   network_.rdma_read_per_byte_ns * bytes * frac);
      return;
    }
    if (KeyHash{}(key) % nodes_ != 0) {
      SimCost::Add(network_.rdma_read_base_ns +
                   network_.rdma_read_per_byte_ns * static_cast<double>(bytes));
    }
  }

  const ValueMap& values_;
  const StreamTime from_ms_;
  const StreamTime to_ms_;
  const uint32_t nodes_;
  const NetworkModel& network_;
  const bool charge_reads_;
};

WukongExt::WukongExt(StringServer* strings, uint32_t nodes, NetworkModel network)
    : strings_(strings), nodes_(nodes), network_(network) {}

void WukongExt::AddEdge(Key key, VertexId vid, StreamTime ts) {
  auto [it, created] = values_.try_emplace(key);
  (void)created;
  it->second.push_back(StampedEdge{vid, ts});
  ++edges_;
  if (!key.is_index()) {
    // One stamped index entry per edge: windows can filter the index by
    // time, at the price of values that grow with every tuple (no GC).
    AddEdge(Key(kIndexVertex, key.pid(), key.dir()), key.vid(), ts);
  }
}

void WukongExt::LoadStored(const TripleVec& triples) {
  for (const Triple& t : triples) {
    AddEdge(Key(t.subject, t.predicate, Dir::kOut), t.object, 0);
    AddEdge(Key(t.object, t.predicate, Dir::kIn), t.subject, 0);
  }
}

void WukongExt::Inject(const StreamTupleVec& tuples) {
  for (const StreamTuple& t : tuples) {
    AddEdge(Key(t.triple.subject, t.triple.predicate, Dir::kOut), t.triple.object,
            t.timestamp);
    AddEdge(Key(t.triple.object, t.triple.predicate, Dir::kIn), t.triple.subject,
            t.timestamp);
  }
}

StatusOr<QueryExecution> WukongExt::ExecuteContinuous(const Query& q,
                                                      StreamTime end_ms) {
  // Stored patterns see everything absorbed so far (like Wukong+S at the
  // newest snapshot); window patterns see their time slice via full-value
  // scans with per-edge timestamp tests. The extension inherits Wukong's
  // execution modes: in-place (per-read RDMA charges) for selective queries,
  // fork-join (parallel across nodes, per-step messaging) otherwise.
  auto build_ctx = [&](bool charge_reads,
                       std::vector<std::unique_ptr<TimeFilteredSource>>* holders) {
    ExecContext ctx;
    ctx.strings = strings_;
    holders->push_back(std::make_unique<TimeFilteredSource>(
        values_, 0, ~StreamTime{0}, nodes_, network_, charge_reads));
    ctx.sources.push_back(holders->back().get());
    for (const WindowSpec& w : q.windows) {
      StreamTime from = end_ms > w.range_ms ? end_ms - w.range_ms : 0;
      // The extension cannot tell streams apart either — all windows share
      // the store — so each window is just a time slice.
      holders->push_back(std::make_unique<TimeFilteredSource>(
          values_, from, end_ms, nodes_, network_, charge_reads));
      ctx.sources.push_back(holders->back().get());
    }
    return ctx;
  };

  std::vector<std::unique_ptr<TimeFilteredSource>> plan_holders;
  ExecContext plan_ctx = build_ctx(/*charge_reads=*/false, &plan_holders);
  // The extension predates the columnar executor: it plans with the legacy
  // row-count expansion estimate and runs the row pipeline below.
  PlanHints hints;
  hints.chunk_rows = 0;
  std::vector<int> plan = PlanQuery(q, plan_ctx, hints);
  bool selective = true;
  if (!plan.empty()) {
    const TriplePattern& first = q.patterns[static_cast<size_t>(plan.front())];
    selective = !first.subject.is_var() || !first.object.is_var();
  }
  bool fork_join = !selective && nodes_ > 1;

  double sim_before = SimCost::TotalNs();
  Stopwatch wall;
  std::vector<std::unique_ptr<TimeFilteredSource>> holders;
  ExecContext ctx = build_ctx(/*charge_reads=*/!fork_join, &holders);

  StepHook hook;
  if (fork_join) {
    hook = [&](const TriplePattern&, size_t rows_before, size_t cols_before,
               size_t /*rows_after*/) {
      if (rows_before > 64) {
        size_t bytes = rows_before * (cols_before + 1) * sizeof(VertexId) + 16;
        SimCost::Add(network_.rdma_msg_base_ns +
                     network_.rdma_msg_per_byte_ns * static_cast<double>(bytes));
      } else {
        SimCost::Add(1000.0);
      }
    };
  }
  auto table = ExecutePatternsRow(q, plan, ctx, hook);
  if (!table.ok()) {
    return table.status();
  }
  Status fs = ApplyFilters(q, ctx, &table.value());
  if (!fs.ok()) {
    return fs;
  }
  auto result = ProjectResult(q, ctx, table.value());
  if (!result.ok()) {
    return result.status();
  }
  double cpu_ns = wall.ElapsedNs();
  if (fork_join) {
    cpu_ns /= std::pow(static_cast<double>(nodes_), 0.8);
  }
  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = cpu_ns / 1e6;
  exec.net_ms = (SimCost::TotalNs() - sim_before) / 1e6;
  exec.fork_join = fork_join;
  exec.window_end_ms = end_ms;
  return exec;
}

StatusOr<QueryExecution> WukongExt::ExecuteOneShot(const Query& q) {
  if (!q.windows.empty()) {
    return Status::InvalidArgument("one-shot query must not reference streams");
  }
  return ExecuteContinuous(q, 0);
}

size_t WukongExt::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& [key, value] : values_) {
    bytes += sizeof(Key) + 48 + value.capacity() * sizeof(StampedEdge);
  }
  return bytes;
}

size_t WukongExt::EdgeCount() const { return edges_; }

}  // namespace wukongs
