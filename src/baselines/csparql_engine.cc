#include "src/baselines/csparql_engine.h"

namespace wukongs {

CsparqlEngine::CsparqlEngine(StringServer* strings, CsparqlConfig config)
    : strings_(strings), config_(config) {}

void CsparqlEngine::LoadStored(const TripleVec& triples) {
  stored_.AddAll(triples);
}

StatusOr<RelTable> CsparqlEngine::EvalPatterns(const Query& q, StreamTime end_ms,
                                               bool stream_part,
                                               size_t* work_tuples) {
  // Materialize window tables once per execution.
  std::vector<TripleTable> windows;
  if (stream_part) {
    windows.reserve(q.windows.size());
    for (const WindowSpec& w : q.windows) {
      auto sid = streams_.Find(w.stream_name);
      if (!sid.ok()) {
        return sid.status();
      }
      windows.push_back(streams_.Window(*sid, end_ms, w.range_ms, work_tuples));
    }
  }

  RelTable acc;
  bool first = true;
  for (const TriplePattern& p : q.patterns) {
    bool is_stream = p.graph != kGraphStored;
    if (is_stream != stream_part) {
      continue;
    }
    const TripleTable& table =
        is_stream ? windows[static_cast<size_t>(p.graph)] : stored_;
    RelTable scanned = ScanPattern(table, p, work_tuples);
    if (first) {
      acc = std::move(scanned);
      first = false;
    } else {
      acc = HashJoin(acc, scanned, work_tuples);
    }
  }
  if (first) {
    // No patterns on this side: the neutral element (one empty row).
    acc.rows.push_back({});
  }
  return acc;
}

StatusOr<QueryExecution> CsparqlEngine::ExecuteContinuous(const Query& q,
                                                          StreamTime end_ms) {
  double sim_before = SimCost::TotalNs();
  Stopwatch wall;

  size_t work = 0;
  auto stream_side = EvalPatterns(q, end_ms, /*stream_part=*/true, &work);
  if (!stream_side.ok()) {
    return stream_side.status();
  }
  auto stored_side = EvalPatterns(q, end_ms, /*stream_part=*/false, &work);
  if (!stored_side.ok()) {
    return stored_side.status();
  }

  // Cross-system boundary: Esper results are transformed into a Jena query
  // (or vice versa) and the answers come back (paper §2.3, Issue#1).
  size_t crossing = stream_side->size() + stored_side->size();
  SimCost::Add(config_.network.cross_system_per_tuple_ns *
               static_cast<double>(crossing));
  SimCost::Add(config_.network.tcp_msg_base_ns +
               config_.network.tcp_msg_per_byte_ns * static_cast<double>(crossing) *
                   24.0);

  RelTable joined = HashJoin(*stream_side, *stored_side, &work);
  for (const FilterExpr& f : q.filters) {
    joined = ApplyRelFilter(joined, f, *strings_);
  }
  auto result = ProjectRelation(q, joined, *strings_);
  if (!result.ok()) {
    return result.status();
  }

  SimCost::Add(config_.per_tuple_ns * static_cast<double>(work));
  SimCost::Add(config_.fixed_overhead_ms * 1e6);

  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = wall.ElapsedMs();
  exec.net_ms = (SimCost::TotalNs() - sim_before) / 1e6;
  exec.window_end_ms = end_ms;
  return exec;
}

StatusOr<QueryExecution> CsparqlEngine::ExecuteOneShot(const Query& q) {
  if (!q.windows.empty()) {
    return Status::InvalidArgument("one-shot query must not reference streams");
  }
  double sim_before = SimCost::TotalNs();
  Stopwatch wall;
  size_t work = 0;
  auto table = EvalPatterns(q, 0, /*stream_part=*/false, &work);
  if (!table.ok()) {
    return table.status();
  }
  RelTable filtered = *table;
  for (const FilterExpr& f : q.filters) {
    filtered = ApplyRelFilter(filtered, f, *strings_);
  }
  auto result = ProjectRelation(q, filtered, *strings_);
  if (!result.ok()) {
    return result.status();
  }
  SimCost::Add(config_.per_tuple_ns * static_cast<double>(work));
  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = wall.ElapsedMs();
  exec.net_ms = (SimCost::TotalNs() - sim_before) / 1e6;
  return exec;
}

}  // namespace wukongs
