// Stream-side state shared by the baseline engines.
//
// The composite baselines (CSPARQL-engine, Storm/Heron, Spark) keep streaming
// data as time-ordered tuple logs per stream and materialize a window as a
// triple table on every execution — there is no shared stream index, which is
// one of the things the paper's integrated design removes.

#ifndef SRC_BASELINES_BASELINE_STREAMS_H_
#define SRC_BASELINES_BASELINE_STREAMS_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "src/baselines/relational.h"
#include "src/common/status.h"
#include "src/rdf/triple.h"

namespace wukongs {

class BaselineStreams {
 public:
  StatusOr<StreamId> Define(const std::string& name);
  StatusOr<StreamId> Find(const std::string& name) const;

  // Appends tuples (must be in timestamp order per stream).
  Status Feed(StreamId stream, const StreamTupleVec& tuples);

  // Materializes the window (end - range, end] as a triple table. `scanned`
  // counts log entries touched (a binary search bounds the scan, as a real
  // ring buffer would).
  TripleTable Window(StreamId stream, StreamTime end_ms, uint64_t range_ms,
                     size_t* scanned = nullptr) const;

  // Structured-Streaming view: the unbounded table from time zero.
  TripleTable Unbounded(StreamId stream, StreamTime end_ms,
                        size_t* scanned = nullptr) const;

  size_t TotalTuples() const;
  size_t MemoryBytes() const;

 private:
  std::vector<std::vector<StreamTuple>> logs_;
  std::unordered_map<std::string, StreamId> names_;
};

}  // namespace wukongs

#endif  // SRC_BASELINES_BASELINE_STREAMS_H_
