// Wukong/Ext baseline (paper §6.1-§6.2, Table 4).
//
// The "intuitive extension" of a static RDF store for streaming: inject
// every stream tuple — timing data and timestamps included — straight into
// the store's values. Consequences the paper measures and this class
// reproduces by construction:
//   * no stream index: extracting a window walks entire values, filtering
//     each edge by its inline timestamp (1.6x-4.4x slower on L1-L6);
//   * no GC: timestamps and expired timing data are coupled with live data,
//     so memory grows monotonically with the stream.

#ifndef SRC_BASELINES_WUKONG_EXT_H_
#define SRC_BASELINES_WUKONG_EXT_H_

#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/engine/neighbor_source.h"
#include "src/rdf/string_server.h"
#include "src/rdf/triple.h"
#include "src/sparql/ast.h"

namespace wukongs {

class WukongExt {
 public:
  // `nodes` models the deployment the extension runs on: like Wukong, its
  // data is hash-sharded, so reads of remote keys pay one-sided RDMA reads
  // sized by the *whole* value (timestamps included — there is no span to
  // narrow the fetch to, unlike the stream index).
  explicit WukongExt(StringServer* strings, uint32_t nodes = 1,
                     NetworkModel network = {});

  void LoadStored(const TripleVec& triples);
  // Absorbs stream tuples (all kinds) with their timestamps.
  void Inject(const StreamTupleVec& tuples);

  StatusOr<QueryExecution> ExecuteContinuous(const Query& q, StreamTime end_ms);
  StatusOr<QueryExecution> ExecuteOneShot(const Query& q);

  size_t MemoryBytes() const;
  size_t EdgeCount() const;

 private:
  struct StampedEdge {
    VertexId vid;
    StreamTime ts;  // 0 for initially stored data.
  };
  using ValueMap = std::unordered_map<Key, std::vector<StampedEdge>, KeyHash>;

  class TimeFilteredSource;  // NeighborSource over a [from, to) time slice.

  void AddEdge(Key key, VertexId vid, StreamTime ts);

  StringServer* strings_;
  const uint32_t nodes_;
  const NetworkModel network_;
  ValueMap values_;
  size_t edges_ = 0;
};

}  // namespace wukongs

#endif  // SRC_BASELINES_WUKONG_EXT_H_
