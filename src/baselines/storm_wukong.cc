#include "src/baselines/storm_wukong.h"

namespace wukongs {
namespace {

// Builds the stored-part sub-query: the stored patterns, selecting every
// variable they bind (the composite design must ship whole bindings back).
Query StoredSubQuery(const Query& q) {
  Query sub;
  sub.var_names = q.var_names;
  std::vector<bool> selected(q.var_names.size(), false);
  for (const TriplePattern& p : q.patterns) {
    if (p.graph != kGraphStored) {
      continue;
    }
    sub.patterns.push_back(p);
    sub.patterns.back().graph = kGraphStored;
    for (const Term* t : {&p.subject, &p.object}) {
      if (t->is_var() && !selected[static_cast<size_t>(t->var)]) {
        selected[static_cast<size_t>(t->var)] = true;
        sub.select.push_back(SelectItem{t->var, AggKind::kNone});
      }
    }
  }
  return sub;
}

// Converts a Wukong QueryResult back into a relation (the "transform back"
// half of the cross-system cost).
RelTable ToRelation(const Query& sub, const QueryResult& result) {
  RelTable out;
  for (const SelectItem& item : sub.select) {
    out.vars.push_back(item.var);
  }
  out.rows.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::vector<VertexId> rel_row;
    rel_row.reserve(row.size());
    for (const ResultValue& v : row) {
      rel_row.push_back(v.vid);
    }
    out.rows.push_back(std::move(rel_row));
  }
  return out;
}

}  // namespace

StormWukong::StormWukong(Cluster* wukong, StormWukongConfig config)
    : wukong_(wukong), config_(config) {}

StatusOr<QueryExecution> StormWukong::ExecuteContinuous(
    const Query& q, StreamTime end_ms, CompositeBreakdown* breakdown) {
  CompositeBreakdown local;
  CompositeBreakdown* bd = breakdown != nullptr ? breakdown : &local;
  *bd = CompositeBreakdown{};

  // --- Stream part, inside Storm bolts. ---
  double stream_sim_before = SimCost::TotalNs();
  Stopwatch stream_wall;
  size_t bolts = 0;
  std::vector<RelTable> stream_tables;
  {
    // One spout+scan bolt per stream pattern, join bolts within each window.
    std::vector<TripleTable> windows;
    windows.reserve(q.windows.size());
    for (const WindowSpec& w : q.windows) {
      auto sid = streams_.Find(w.stream_name);
      if (!sid.ok()) {
        return sid.status();
      }
      windows.push_back(streams_.Window(*sid, end_ms, w.range_ms));
    }
    std::vector<RelTable> per_window(q.windows.size());
    std::vector<bool> seen(q.windows.size(), false);
    for (const TriplePattern& p : q.patterns) {
      if (p.graph == kGraphStored) {
        continue;
      }
      size_t w = static_cast<size_t>(p.graph);
      RelTable scanned = ScanPattern(windows[w], p);
      ++bolts;
      if (!seen[w]) {
        per_window[w] = std::move(scanned);
        seen[w] = true;
      } else {
        per_window[w] = HashJoin(per_window[w], scanned);
        ++bolts;
      }
    }
    for (size_t w = 0; w < per_window.size(); ++w) {
      if (seen[w]) {
        stream_tables.push_back(std::move(per_window[w]));
      }
    }
  }
  if (config_.plan == CompositePlan::kStreamJoinFirst && stream_tables.size() > 1) {
    // Fig. 4(b): join the stream parts before consulting the store — fewer
    // crossings, but the join lacks the stored data's pruning (may blow up).
    RelTable joined = stream_tables[0];
    for (size_t i = 1; i < stream_tables.size(); ++i) {
      joined = HashJoin(joined, stream_tables[i]);
      ++bolts;
    }
    stream_tables.assign(1, std::move(joined));
  }
  SimCost::Add(config_.sched_ns * static_cast<double>(bolts));
  bd->stream_ms +=
      stream_wall.ElapsedMs() + (SimCost::TotalNs() - stream_sim_before) / 1e6;
  for (const RelTable& t : stream_tables) {
    bd->stream_tuples += t.size();
  }

  // --- Cross to Wukong: ship stream bindings over, get stored part back. ---
  double cross_sim_before = SimCost::TotalNs();
  SimCost::Add(config_.network.cross_system_per_tuple_ns *
               static_cast<double>(bd->stream_tuples));
  SimCost::Add(config_.network.tcp_msg_base_ns +
               config_.network.tcp_msg_per_byte_ns *
                   static_cast<double>(bd->stream_tuples) * 24.0);
  bd->cross_ms += (SimCost::TotalNs() - cross_sim_before) / 1e6;

  // --- Stored part, inside Wukong (a real query on the real store). ---
  RelTable stored_table;
  bool has_stored = false;
  Query sub = StoredSubQuery(q);
  if (!sub.patterns.empty()) {
    has_stored = true;
    auto exec = wukong_->OneShotParsed(sub);
    if (!exec.ok()) {
      return exec.status();
    }
    bd->store_ms += exec->latency_ms();
    stored_table = ToRelation(sub, exec->result);
    bd->store_tuples = stored_table.size();

    // Results transform back into Storm's tuple format.
    cross_sim_before = SimCost::TotalNs();
    SimCost::Add(config_.network.cross_system_per_tuple_ns *
                 static_cast<double>(stored_table.size()));
    SimCost::Add(config_.network.tcp_msg_base_ns +
                 config_.network.tcp_msg_per_byte_ns *
                     static_cast<double>(stored_table.size()) * 24.0);
    bd->cross_ms += (SimCost::TotalNs() - cross_sim_before) / 1e6;
  }

  // --- Final join + projection, back in Storm. ---
  stream_sim_before = SimCost::TotalNs();
  Stopwatch join_wall;
  RelTable final_table;
  if (stream_tables.empty()) {
    final_table = std::move(stored_table);
  } else {
    final_table = stream_tables[0];
    for (size_t i = 1; i < stream_tables.size(); ++i) {
      final_table = HashJoin(final_table, stream_tables[i]);
    }
    if (has_stored) {
      final_table = HashJoin(final_table, stored_table);
    }
  }
  for (const FilterExpr& f : q.filters) {
    final_table = ApplyRelFilter(final_table, f, *wukong_->strings());
  }
  SimCost::Add(config_.sched_ns);  // The sink/join bolt.
  auto result = ProjectRelation(q, final_table, *wukong_->strings());
  if (!result.ok()) {
    return result.status();
  }
  bd->final_tuples = final_table.size();
  bd->stream_ms +=
      join_wall.ElapsedMs() + (SimCost::TotalNs() - stream_sim_before) / 1e6;

  // The composite's end-to-end latency is the sum of its phases: Storm
  // compute (incl. scheduling), the Wukong sub-query's own modeled latency,
  // and the boundary crossings. Phase deltas are disjoint by construction.
  QueryExecution exec;
  exec.result = std::move(*result);
  exec.cpu_ms = bd->stream_ms;
  exec.net_ms = bd->cross_ms + bd->store_ms;
  exec.window_end_ms = end_ms;
  return exec;
}

}  // namespace wukongs
