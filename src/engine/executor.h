// Graph-exploration executor shared by the one-shot and continuous engines.
//
// Executes a query's triple patterns in planner order against per-graph
// NeighborSources, then applies FILTERs, GROUP BY and aggregates. The same
// executor runs under both execution modes: distribution and its costs live
// inside the NeighborSource implementations (paper §5 "in-place execution"),
// so pattern evaluation here is pure exploration.
//
// Two pipelines share this interface (DESIGN.md §5.13). The primary pipeline
// carries bindings in column-major ColumnarTables — pattern expansion is a
// batched scan-join over arena-allocated id columns, and pruning steps only
// touch selection vectors. The legacy row-major pipeline (the *Row entry
// points) is kept bit-for-bit: the differential harness runs both on the same
// seeds and demands byte-identical projected results, and the composite
// baselines deliberately keep the row path to model the pre-refactor engine.

#ifndef SRC_ENGINE_EXECUTOR_H_
#define SRC_ENGINE_EXECUTOR_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/engine/binding.h"
#include "src/engine/columnar.h"
#include "src/engine/delta_cache.h"
#include "src/engine/neighbor_source.h"
#include "src/obs/trace.h"
#include "src/rdf/string_server.h"
#include "src/sparql/ast.h"

namespace wukongs {

struct ExecContext {
  // sources[0] answers stored-graph patterns; sources[1 + w] answers patterns
  // scoped to Query::windows[w].
  std::vector<const NeighborSource*> sources;
  const StringServer* strings = nullptr;  // Needed only when FILTERs compare numbers.
  // Per-stage span emission (exec/patterns, exec/filters, exec/project);
  // null = tracing off. `trace_node` is the executing node for the tid field.
  obs::Tracer* tracer = nullptr;
  uint32_t trace_node = 0;
  // Pipeline selector for the entry points that dispatch (ExecutePipeline,
  // ExecuteQuery, ExecuteDeltaPatterns). The row pipeline exists for the
  // columnar-vs-row differential twin and the composite baselines.
  bool columnar = true;
  // Passive per-step statistics observer (§5.14): invoked with the same
  // arguments as the caller's StepHook after every pattern step, regardless
  // of which engine (fork-join or in-place) supplied a hook. The cluster
  // points this at the live-stats collector for production executions only —
  // planning and shadow-parity contexts leave it unset so observation never
  // feeds back on itself.
  std::function<void(const TriplePattern& pattern, size_t rows_before,
                     size_t cols_before, size_t rows_after)>
      observe;
};

// Per-step observer: invoked after each pattern with the pattern, the table
// shape before the step, and the row count after. Fork-join engines use it to
// charge per-step shipping costs. Both pipelines report identical numbers.
using StepHook = std::function<void(const TriplePattern& pattern, size_t rows_before,
                                    size_t cols_before, size_t rows_after)>;

// --- Columnar pipeline (primary) -------------------------------------------

// Executes patterns in `plan` order (indices into q.patterns) and returns the
// columnar binding table before projection.
StatusOr<ColumnarTable> ExecutePatterns(const Query& q, const std::vector<int>& plan,
                                        const ExecContext& ctx,
                                        const StepHook& hook = {});

// Left-joins each of q.optionals onto `table`: rows extend with the group's
// bindings when the group matches, otherwise keep their bindings with the
// group's new variables set to kUnboundBinding.
Status ApplyOptionals(const Query& q, const ExecContext& ctx, ColumnarTable* table);

// Applies q.filters to `table` in place. Pure selection: dropped rows leave
// the column data untouched and only shrink the chunk selection vectors.
Status ApplyFilters(const Query& q, const ExecContext& ctx, ColumnarTable* table);

// Projects/aggregates `table` into the result (no solution modifiers).
StatusOr<QueryResult> ProjectResult(const Query& q, const ExecContext& ctx,
                                    const ColumnarTable& table);

// --- Row pipeline (legacy / baselines / differential twin) -----------------

StatusOr<BindingTable> ExecutePatternsRow(const Query& q, const std::vector<int>& plan,
                                          const ExecContext& ctx,
                                          const StepHook& hook = {});
Status ApplyOptionals(const Query& q, const ExecContext& ctx, BindingTable* table);
Status ApplyFilters(const Query& q, const ExecContext& ctx, BindingTable* table);
StatusOr<QueryResult> ProjectResult(const Query& q, const ExecContext& ctx,
                                    const BindingTable& table);

// --- Shared tail + dispatch ------------------------------------------------

// Applies the solution-sequence modifiers (DISTINCT, ORDER BY, LIMIT).
// Separate from ProjectResult so UNION branches can be projected first and
// modified once after concatenation.
Status FinalizeSolution(const Query& q, const ExecContext& ctx,
                        QueryResult* result);

// Runs patterns -> optionals -> filters -> projection on the pipeline
// selected by ctx.columnar. Solution modifiers are left to the caller (UNION
// branches concatenate first).
StatusOr<QueryResult> ExecutePipeline(const Query& q, const std::vector<int>& plan,
                                      const ExecContext& ctx,
                                      const StepHook& hook = {});

// Convenience: plan already chosen; ExecutePipeline + FinalizeSolution. Does
// not handle UNION (the Cluster plans and executes each branch, then
// concatenates and finalizes).
StatusOr<QueryResult> ExecuteQuery(const Query& q, const std::vector<int>& plan,
                                   const ExecContext& ctx);

// --- Shared template-group fan-out (DESIGN.md §5.12) -----------------------
//
// Projects one member registration's result out of the shared probe query's
// result. `probe` selected every canonical variable plain, `member_rows` is
// the member's hash partition (rows whose hole column equals its constant),
// and `var_to_probe_col[v]` gives the probe column holding member variable
// slot `v`. The member's own projection, aggregation and solution modifiers
// (SELECT/GROUP BY/DISTINCT/ORDER BY) run here, on the rebuilt binding
// table, so the fan-out output is bag-identical to evaluating the member's
// query independently.
StatusOr<QueryResult> ProjectMemberFromProbe(
    const Query& q, const ExecContext& ctx, const QueryResult& probe,
    const std::vector<size_t>& member_rows,
    const std::vector<int>& var_to_probe_col);

// --- Delta mode (DESIGN.md §5.9) ------------------------------------------
//
// Applies only to plans with exactly one window-scoped pattern (the caller's
// eligibility gate): the plan splits into a stored-graph prefix, the window
// pattern, and a stored-graph suffix. Each window slice's contribution —
// prefix ⋈ slice, then suffix patterns, OPTIONALs and FILTERs — is
// independent of every other slice, so the trigger's pre-projection table is
// the bag union of per-slice contributions, most of which the DeltaCache
// already holds from earlier triggers.
struct DeltaSpec {
  DeltaCache* cache = nullptr;
  // Position in `plan` (not in q.patterns) of the single window pattern.
  size_t window_pos = 0;
  // The trigger's window slice set, ascending. The new-slice delta is
  // whatever subset the cache does not hold; expired slices were already
  // retired by DeltaCache::BeginTrigger / the GC invalidation hooks.
  std::vector<BatchSeq> batches;
  // Source view of the window pattern's stream restricted to one slice.
  std::function<const NeighborSource*(BatchSeq)> slice_source;
};

struct DeltaTable {
  // Union of contributions, post OPTIONALs + FILTERs. Columnar in both
  // pipeline modes: the union adopts cached chunks without copying, and the
  // row pipeline converts through the row-view adapter at the cache boundary
  // (contribution keys and row order are unchanged).
  ColumnarTable table;
  // Union came out empty while the query carries FILTERs: the caller must
  // fall back to the cold path so early-exit error semantics (FILTER over a
  // variable the truncated table never bound) stay byte-identical.
  bool fallback = false;
  uint64_t slices_cached = 0;  // This trigger's cache hits.
  uint64_t slices_fresh = 0;   // Slices evaluated against the delta.
};

// Runs the delta pipeline under an "exec/delta" span. The caller has already
// called cache->BeginTrigger for this trigger's epoch and window range.
StatusOr<DeltaTable> ExecuteDeltaPatterns(const Query& q,
                                          const std::vector<int>& plan,
                                          const ExecContext& ctx,
                                          const DeltaSpec& spec);

}  // namespace wukongs

#endif  // SRC_ENGINE_EXECUTOR_H_
