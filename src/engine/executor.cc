#include "src/engine/executor.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <set>
#include <unordered_set>

#include "src/obs/metrics.h"

namespace wukongs {
namespace {

const NeighborSource* SourceFor(const ExecContext& ctx, int graph) {
  size_t idx = graph == kGraphStored ? 0 : static_cast<size_t>(graph) + 1;
  assert(idx < ctx.sources.size());
  return ctx.sources[idx];
}

// Per-stage executor span, inert when tracing is off or compiled out.
obs::Tracer::Span StageSpan(const ExecContext& ctx, const char* name) {
  if constexpr (obs::kCompiledIn) {
    if (ctx.tracer != nullptr) {
      return ctx.tracer->StartSpan("exec", name, ctx.trace_node);
    }
  }
  return {};
}

// Applies one triple pattern to `table`, producing the next table.
Status ApplyPattern(const TriplePattern& p, const NeighborSource& src,
                    BindingTable* table) {
  const bool s_var = p.subject.is_var();
  const bool o_var = p.object.is_var();
  const int s_col = s_var ? table->ColumnOf(p.subject.var) : -1;
  const int o_col = o_var ? table->ColumnOf(p.object.var) : -1;
  const bool s_known = !s_var || s_col >= 0;
  const bool o_known = !o_var || o_col >= 0;

  const size_t old_cols = table->num_cols();
  const size_t old_rows = table->num_rows();
  std::vector<VertexId> nbrs;

  auto subject_of = [&](size_t row) {
    return s_var ? table->At(row, s_col) : p.subject.constant;
  };
  auto object_of = [&](size_t row) {
    return o_var ? table->At(row, o_col) : p.object.constant;
  };

  if (s_known && o_known) {
    // Existence check per row. SPARQL has bag semantics: a row joins once
    // per matching edge, so multiplicity in the (stream) data is preserved.
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    if (old_cols == 0) {
      // Unit table: single check on the constant endpoints.
      nbrs.clear();
      src.GetNeighbors(Key(p.subject.constant, p.predicate, Dir::kOut), &nbrs);
      bool found = std::find(nbrs.begin(), nbrs.end(), p.object.constant) != nbrs.end();
      if (!found) {
        table->FailUnit();
      }
      return Status::Ok();
    }
    for (size_t r = 0; r < old_rows; ++r) {
      nbrs.clear();
      src.GetNeighbors(Key(subject_of(r), p.predicate, Dir::kOut), &nbrs);
      size_t multiplicity = static_cast<size_t>(
          std::count(nbrs.begin(), nbrs.end(), object_of(r)));
      for (size_t m = 0; m < multiplicity; ++m) {
        next.AppendRow(table->Row(r));
      }
    }
    *table = std::move(next);
    return Status::Ok();
  }

  if (s_known && !o_known) {
    // Expand forward: bind the object variable.
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    next.AddColumn(p.object.var);
    if (old_cols == 0) {
      nbrs.clear();
      src.GetNeighbors(Key(p.subject.constant, p.predicate, Dir::kOut), &nbrs);
      for (VertexId nb : nbrs) {
        next.AppendRowExtended(nullptr, 0, nb);
      }
    } else {
      for (size_t r = 0; r < old_rows; ++r) {
        nbrs.clear();
        src.GetNeighbors(Key(subject_of(r), p.predicate, Dir::kOut), &nbrs);
        for (VertexId nb : nbrs) {
          next.AppendRowExtended(table->Row(r), old_cols, nb);
        }
      }
    }
    *table = std::move(next);
    return Status::Ok();
  }

  if (!s_known && o_known) {
    // Expand backward over in-edges: bind the subject variable.
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    next.AddColumn(p.subject.var);
    if (old_cols == 0) {
      nbrs.clear();
      src.GetNeighbors(Key(p.object.constant, p.predicate, Dir::kIn), &nbrs);
      for (VertexId nb : nbrs) {
        next.AppendRowExtended(nullptr, 0, nb);
      }
    } else {
      for (size_t r = 0; r < old_rows; ++r) {
        nbrs.clear();
        src.GetNeighbors(Key(object_of(r), p.predicate, Dir::kIn), &nbrs);
        for (VertexId nb : nbrs) {
          next.AppendRowExtended(table->Row(r), old_cols, nb);
        }
      }
    }
    *table = std::move(next);
    return Status::Ok();
  }

  // Neither endpoint known: seed subjects from the index vertex (paper
  // Fig. 6: [0|pid|out] lists every vertex with an outgoing pid edge), then
  // expand to objects. Cartesian with any existing rows.
  std::vector<VertexId> subjects;
  src.GetNeighbors(Key(kIndexVertex, p.predicate, Dir::kOut), &subjects);

  BindingTable next;
  for (int v : table->vars()) {
    next.AddColumn(v);
  }
  int new_s_col = next.AddColumn(p.subject.var);
  (void)new_s_col;
  // Two-step build: first bind subjects, then expand objects, to reuse the
  // row machinery. Materialize intermediate rows directly.
  BindingTable mid = std::move(next);
  if (old_cols == 0) {
    for (VertexId s : subjects) {
      mid.AppendRowExtended(nullptr, 0, s);
    }
  } else {
    for (size_t r = 0; r < old_rows; ++r) {
      for (VertexId s : subjects) {
        mid.AppendRowExtended(table->Row(r), old_cols, s);
      }
    }
  }
  // Now expand objects from the bound subject column.
  BindingTable out;
  for (int v : mid.vars()) {
    out.AddColumn(v);
  }
  out.AddColumn(p.object.var);
  int mid_s_col = mid.ColumnOf(p.subject.var);
  for (size_t r = 0; r < mid.num_rows(); ++r) {
    nbrs.clear();
    src.GetNeighbors(Key(mid.At(r, mid_s_col), p.predicate, Dir::kOut), &nbrs);
    for (VertexId nb : nbrs) {
      out.AppendRowExtended(mid.Row(r), mid.num_cols(), nb);
    }
  }
  *table = std::move(out);
  return Status::Ok();
}

}  // namespace

StatusOr<BindingTable> ExecutePatterns(const Query& q, const std::vector<int>& plan,
                                       const ExecContext& ctx,
                                       const StepHook& hook) {
  if (plan.size() != q.patterns.size()) {
    return Status::Internal("plan does not cover all patterns");
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/patterns");
  span.Arg("patterns", static_cast<uint64_t>(plan.size()));
  BindingTable table;
  for (int idx : plan) {
    const TriplePattern& p = q.patterns[static_cast<size_t>(idx)];
    const NeighborSource* src = SourceFor(ctx, p.graph);
    size_t rows_before = table.num_rows();
    size_t cols_before = table.num_cols();
    Status s = ApplyPattern(p, *src, &table);
    if (!s.ok()) {
      return s;
    }
    if (hook) {
      hook(p, rows_before, cols_before, table.num_rows());
    }
    if (table.num_rows() == 0) {
      break;  // Early exit: no bindings survive (or a constant check failed).
    }
  }
  span.Arg("rows", static_cast<uint64_t>(table.num_rows()));
  return table;
}

Status ApplyFilters(const Query& q, const ExecContext& ctx, BindingTable* table) {
  if (q.filters.empty() || table->num_cols() == 0) {
    return Status::Ok();
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/filters");
  span.Arg("filters", static_cast<uint64_t>(q.filters.size()))
      .Arg("rows_in", static_cast<uint64_t>(table->num_rows()));
  for (const FilterExpr& f : q.filters) {
    int col = table->ColumnOf(f.var);
    if (col < 0) {
      return Status::InvalidArgument("FILTER references unbound variable ?" +
                                     q.var_names[static_cast<size_t>(f.var)]);
    }
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    for (size_t r = 0; r < table->num_rows(); ++r) {
      VertexId v = table->At(r, col);
      bool keep = false;
      if (f.numeric) {
        if (ctx.strings == nullptr) {
          return Status::FailedPrecondition("numeric FILTER needs a string server");
        }
        auto str = ctx.strings->VertexString(v);
        if (!str.ok()) {
          continue;
        }
        char* end = nullptr;
        double num = std::strtod(str->c_str(), &end);
        if (end == str->c_str()) {
          continue;  // Non-numeric binding never matches a numeric filter.
        }
        switch (f.op) {
          case FilterExpr::Op::kLt:
            keep = num < f.number;
            break;
          case FilterExpr::Op::kLe:
            keep = num <= f.number;
            break;
          case FilterExpr::Op::kGt:
            keep = num > f.number;
            break;
          case FilterExpr::Op::kGe:
            keep = num >= f.number;
            break;
          case FilterExpr::Op::kEq:
            keep = num == f.number;
            break;
          case FilterExpr::Op::kNe:
            keep = num != f.number;
            break;
        }
      } else {
        bool eq = (v == f.constant);
        keep = (f.op == FilterExpr::Op::kEq) ? eq
               : (f.op == FilterExpr::Op::kNe) ? !eq
                                               : false;
      }
      if (keep) {
        next.AppendRow(table->Row(r));
      }
    }
    *table = std::move(next);
  }
  return Status::Ok();
}

// Solution-sequence modifiers: DISTINCT, ORDER BY, LIMIT — applied in that
// order, after projection/aggregation.
Status FinalizeSolution(const Query& q, const ExecContext& ctx,
                        QueryResult* result) {
  if (q.distinct) {
    std::vector<std::vector<ResultValue>> unique;
    unique.reserve(result->rows.size());
    std::set<std::vector<std::pair<bool, uint64_t>>> seen;
    for (auto& row : result->rows) {
      std::vector<std::pair<bool, uint64_t>> key;
      key.reserve(row.size());
      for (const ResultValue& v : row) {
        key.emplace_back(v.is_number,
                         v.is_number ? static_cast<uint64_t>(v.number * 1e6) : v.vid);
      }
      if (seen.insert(std::move(key)).second) {
        unique.push_back(std::move(row));
      }
    }
    result->rows = std::move(unique);
  }

  if (!q.order_by.empty()) {
    // ORDER BY keys must be projected columns.
    std::vector<std::pair<size_t, bool>> keys;  // (column, descending)
    for (const OrderKey& key : q.order_by) {
      bool found = false;
      for (size_t c = 0; c < q.select.size(); ++c) {
        if (q.select[c].var == key.var && q.select[c].agg == AggKind::kNone) {
          keys.emplace_back(c, key.descending);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "ORDER BY variable must appear (un-aggregated) in SELECT");
      }
    }
    auto value_less = [&ctx](const ResultValue& a, const ResultValue& b) -> int {
      if (a.is_number != b.is_number) {
        return a.is_number ? -1 : 1;  // Numbers sort before IRIs.
      }
      if (a.is_number) {
        return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
      }
      if (ctx.strings != nullptr) {
        auto sa = ctx.strings->VertexString(a.vid);
        auto sb = ctx.strings->VertexString(b.vid);
        if (sa.ok() && sb.ok()) {
          return sa->compare(*sb) < 0 ? -1 : (*sa == *sb ? 0 : 1);
        }
      }
      return a.vid < b.vid ? -1 : (a.vid > b.vid ? 1 : 0);
    };
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const auto& ra, const auto& rb) {
                       for (const auto& [col, desc] : keys) {
                         int cmp = value_less(ra[col], rb[col]);
                         if (cmp != 0) {
                           return desc ? cmp > 0 : cmp < 0;
                         }
                       }
                       return false;
                     });
  }

  if (q.limit > 0 && result->rows.size() > q.limit) {
    result->rows.resize(q.limit);
  }
  return Status::Ok();
}

StatusOr<QueryResult> ProjectResult(const Query& q, const ExecContext& ctx,
                                    const BindingTable& table) {
  obs::Tracer::Span span = StageSpan(ctx, "exec/project");
  span.Arg("rows_in", static_cast<uint64_t>(table.num_rows()));
  QueryResult result;
  for (const SelectItem& item : q.select) {
    std::string name = q.var_names[static_cast<size_t>(item.var)];
    switch (item.agg) {
      case AggKind::kNone:
        break;
      case AggKind::kCount:
        name = "COUNT(" + name + ")";
        break;
      case AggKind::kSum:
        name = "SUM(" + name + ")";
        break;
      case AggKind::kAvg:
        name = "AVG(" + name + ")";
        break;
      case AggKind::kMin:
        name = "MIN(" + name + ")";
        break;
      case AggKind::kMax:
        name = "MAX(" + name + ")";
        break;
    }
    result.columns.push_back(std::move(name));
  }

  if (table.num_rows() == 0) {
    return result;  // Empty result; unbound select columns are moot.
  }

  if (!q.has_aggregates()) {
    result.rows.reserve(table.num_rows());
    std::vector<int> cols;
    for (const SelectItem& item : q.select) {
      int col = table.ColumnOf(item.var);
      if (col < 0) {
        return Status::InvalidArgument("selected variable is unbound");
      }
      cols.push_back(col);
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      std::vector<ResultValue> row;
      row.reserve(cols.size());
      for (int c : cols) {
        row.push_back(ResultValue::Vertex(table.At(r, c)));
      }
      result.rows.push_back(std::move(row));
    }
    return result;
  }

  // Aggregation path. Group rows by the GROUP BY columns (or one big group).
  std::vector<int> group_cols;
  for (int var : q.group_by) {
    int col = table.ColumnOf(var);
    if (col < 0) {
      return Status::InvalidArgument("GROUP BY variable is unbound");
    }
    group_cols.push_back(col);
  }

  struct AggState {
    size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    bool seen = false;
  };
  // Group key -> per-select-item state.
  std::map<std::vector<VertexId>, std::vector<AggState>> groups;

  auto numeric_value = [&](VertexId v, double* out) -> bool {
    if (ctx.strings == nullptr) {
      return false;
    }
    auto str = ctx.strings->VertexString(v);
    if (!str.ok()) {
      return false;
    }
    char* end = nullptr;
    double num = std::strtod(str->c_str(), &end);
    if (end == str->c_str()) {
      return false;
    }
    *out = num;
    return true;
  };

  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<VertexId> gkey;
    gkey.reserve(group_cols.size());
    for (int c : group_cols) {
      gkey.push_back(table.At(r, c));
    }
    auto& states = groups[gkey];
    states.resize(q.select.size());
    for (size_t i = 0; i < q.select.size(); ++i) {
      const SelectItem& item = q.select[i];
      if (item.agg == AggKind::kNone) {
        continue;
      }
      int col = table.ColumnOf(item.var);
      if (col < 0) {
        return Status::InvalidArgument("aggregated variable is unbound");
      }
      AggState& st = states[i];
      st.count += 1;
      if (item.agg != AggKind::kCount) {
        double num = 0.0;
        if (numeric_value(table.At(r, col), &num)) {
          st.sum += num;
          st.min = st.seen ? std::min(st.min, num) : num;
          st.max = st.seen ? std::max(st.max, num) : num;
          st.seen = true;
        }
      }
    }
  }

  for (const auto& [gkey, states] : groups) {
    std::vector<ResultValue> row;
    row.reserve(q.select.size());
    for (size_t i = 0; i < q.select.size(); ++i) {
      const SelectItem& item = q.select[i];
      if (item.agg == AggKind::kNone) {
        // Plain variable in an aggregate query must be a GROUP BY key.
        int col = table.ColumnOf(item.var);
        bool found = false;
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g] == col) {
            row.push_back(ResultValue::Vertex(gkey[g]));
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "non-aggregated select variable must appear in GROUP BY");
        }
        continue;
      }
      const AggState& st = states[i];
      switch (item.agg) {
        case AggKind::kCount:
          row.push_back(ResultValue::Number(static_cast<double>(st.count)));
          break;
        case AggKind::kSum:
          row.push_back(ResultValue::Number(st.sum));
          break;
        case AggKind::kAvg:
          row.push_back(ResultValue::Number(
              st.count > 0 && st.seen ? st.sum / static_cast<double>(st.count) : 0.0));
          break;
        case AggKind::kMin:
          row.push_back(ResultValue::Number(st.seen ? st.min : 0.0));
          break;
        case AggKind::kMax:
          row.push_back(ResultValue::Number(st.seen ? st.max : 0.0));
          break;
        case AggKind::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Status ApplyOptionals(const Query& q, const ExecContext& ctx, BindingTable* table) {
  for (const std::vector<TriplePattern>& group : q.optionals) {
    // Variables the group introduces on top of the current bindings.
    std::vector<int> new_vars;
    for (const TriplePattern& p : group) {
      for (const Term* t : {&p.subject, &p.object}) {
        if (t->is_var() && !table->IsBound(t->var) &&
            std::find(new_vars.begin(), new_vars.end(), t->var) == new_vars.end()) {
          new_vars.push_back(t->var);
        }
      }
    }
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    for (int v : new_vars) {
      next.AddColumn(v);
    }
    const size_t old_cols = table->num_cols();
    std::vector<VertexId> row_buffer(next.num_cols());
    for (size_t r = 0; r < table->num_rows(); ++r) {
      // Left join: execute the group seeded with this row's bindings.
      BindingTable seed;
      for (int v : table->vars()) {
        seed.AddColumn(v);
      }
      if (old_cols > 0) {
        seed.AppendRow(table->Row(r));
      }
      bool dead = false;
      for (const TriplePattern& p : group) {
        const NeighborSource* src = SourceFor(ctx, p.graph);
        Status s = ApplyPattern(p, *src, &seed);
        if (!s.ok()) {
          return s;
        }
        if (seed.num_rows() == 0) {
          dead = true;
          break;
        }
      }
      if (dead) {
        // No match: keep the row; the group's variables stay unbound.
        for (size_t c = 0; c < old_cols; ++c) {
          row_buffer[c] = table->At(r, static_cast<int>(c));
        }
        for (size_t c = old_cols; c < row_buffer.size(); ++c) {
          row_buffer[c] = kUnboundBinding;
        }
        next.AppendRow(row_buffer.data());
        continue;
      }
      for (size_t sr = 0; sr < seed.num_rows(); ++sr) {
        for (size_t c = 0; c < old_cols; ++c) {
          row_buffer[c] = table->At(r, static_cast<int>(c));
        }
        for (size_t c = 0; c < new_vars.size(); ++c) {
          int col = seed.ColumnOf(new_vars[c]);
          row_buffer[old_cols + c] = col >= 0 ? seed.At(sr, col) : kUnboundBinding;
        }
        next.AppendRow(row_buffer.data());
      }
    }
    *table = std::move(next);
  }
  return Status::Ok();
}

StatusOr<DeltaTable> ExecuteDeltaPatterns(const Query& q,
                                          const std::vector<int>& plan,
                                          const ExecContext& ctx,
                                          const DeltaSpec& spec) {
  if (plan.size() != q.patterns.size()) {
    return Status::Internal("plan does not cover all patterns");
  }
  if (spec.cache == nullptr || spec.window_pos >= plan.size() ||
      !spec.slice_source) {
    return Status::Internal("delta execution without a cache or window split");
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/delta");
  span.Arg("batches", static_cast<uint64_t>(spec.batches.size()))
      .Arg("patterns", static_cast<uint64_t>(plan.size()));

  // Stored-graph prefix: window-independent, so one table serves every slice
  // and every trigger until an epoch flush.
  BindingTable prefix;
  if (!spec.cache->GetPrefix(&prefix)) {
    for (size_t i = 0; i < spec.window_pos; ++i) {
      const TriplePattern& p = q.patterns[static_cast<size_t>(plan[i])];
      Status s = ApplyPattern(p, *SourceFor(ctx, p.graph), &prefix);
      if (!s.ok()) {
        return s;
      }
      if (prefix.num_rows() == 0) {
        break;
      }
    }
    spec.cache->PutPrefix(prefix);
  }

  DeltaTable out;
  const TriplePattern& wp =
      q.patterns[static_cast<size_t>(plan[spec.window_pos])];
  if (prefix.num_rows() > 0) {
    for (BatchSeq b : spec.batches) {
      BindingTable contrib;
      if (spec.cache->GetContribution(b, &contrib)) {
        ++out.slices_cached;
      } else {
        ++out.slices_fresh;
        contrib = prefix;
        Status s = ApplyPattern(wp, *spec.slice_source(b), &contrib);
        if (!s.ok()) {
          return s;
        }
        for (size_t i = spec.window_pos + 1;
             i < plan.size() && contrib.num_rows() > 0; ++i) {
          const TriplePattern& p = q.patterns[static_cast<size_t>(plan[i])];
          s = ApplyPattern(p, *SourceFor(ctx, p.graph), &contrib);
          if (!s.ok()) {
            return s;
          }
        }
        if (contrib.num_rows() > 0) {
          // OPTIONALs and FILTERs are row-local, so applying them per slice
          // and unioning equals applying them to the unioned table.
          Status os = ApplyOptionals(q, ctx, &contrib);
          if (!os.ok()) {
            return os;
          }
          Status fs = ApplyFilters(q, ctx, &contrib);
          if (!fs.ok()) {
            return fs;
          }
        }
        spec.cache->PutContribution(b, contrib);
      }
      if (contrib.num_rows() == 0) {
        continue;
      }
      if (contrib.num_cols() == 0) {
        // Degenerate all-constant plan: unit tables do not accumulate rows,
        // so bag union cannot be expressed here. Cold path handles it.
        out.fallback = true;
        return out;
      }
      if (out.table.num_cols() == 0) {
        for (int v : contrib.vars()) {
          out.table.AddColumn(v);
        }
      }
      assert(contrib.num_cols() == out.table.num_cols());
      for (size_t r = 0; r < contrib.num_rows(); ++r) {
        out.table.AppendRow(contrib.Row(r));
      }
    }
  }
  if (out.table.num_cols() == 0) {
    // No contribution produced rows; mark the unit table empty so projection
    // sees zero rows (matching the cold path's empty join).
    out.table.FailUnit();
    // With FILTERs present the cold path may instead fail on an unbound
    // column of its early-exited table — reproduce by re-running cold.
    out.fallback = !q.filters.empty();
  }
  span.Arg("cached", out.slices_cached)
      .Arg("fresh", out.slices_fresh)
      .Arg("rows", static_cast<uint64_t>(out.table.num_rows()));
  return out;
}

StatusOr<QueryResult> ExecuteQuery(const Query& q, const std::vector<int>& plan,
                                   const ExecContext& ctx) {
  auto table = ExecutePatterns(q, plan, ctx);
  if (!table.ok()) {
    return table.status();
  }
  Status os = ApplyOptionals(q, ctx, &table.value());
  if (!os.ok()) {
    return os;
  }
  Status fs = ApplyFilters(q, ctx, &table.value());
  if (!fs.ok()) {
    return fs;
  }
  auto result = ProjectResult(q, ctx, table.value());
  if (!result.ok()) {
    return result;
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  return result;
}

StatusOr<QueryResult> ProjectMemberFromProbe(
    const Query& q, const ExecContext& ctx, const QueryResult& probe,
    const std::vector<size_t>& member_rows,
    const std::vector<int>& var_to_probe_col) {
  obs::Tracer::Span span = StageSpan(ctx, "exec/fanout");
  span.Arg("rows_in", static_cast<uint64_t>(member_rows.size()));
  // Fast path for the dominant template shape — plain SELECT, no
  // aggregates/DISTINCT/ORDER/LIMIT: the probe values are already final
  // ResultValues, so project straight out of the partition rows and skip
  // the intermediate binding table (the fan-out stage runs once per member
  // per trigger; this copy is its whole cost).
  if (!q.has_aggregates() && !q.distinct && q.order_by.empty() &&
      q.limit == 0 && q.group_by.empty()) {
    QueryResult result;
    std::vector<size_t> cols;
    cols.reserve(q.select.size());
    for (const SelectItem& item : q.select) {
      int col = var_to_probe_col[static_cast<size_t>(item.var)];
      if (col < 0) {
        return Status::InvalidArgument("selected variable is unbound");
      }
      result.columns.push_back(q.var_names[static_cast<size_t>(item.var)]);
      cols.push_back(static_cast<size_t>(col));
    }
    result.rows.reserve(member_rows.size());
    for (size_t r : member_rows) {
      std::vector<ResultValue> row;
      row.reserve(cols.size());
      for (size_t c : cols) {
        row.push_back(probe.rows[r][c]);
      }
      result.rows.push_back(std::move(row));
    }
    span.Arg("rows_out", static_cast<uint64_t>(result.rows.size()));
    span.End();
    return result;
  }
  // Rebuild the member's pre-projection binding table from its partition:
  // column v (the member's variable slot) takes the probe column that bound
  // the same canonical variable. Unbound OPTIONAL markers round-trip as-is.
  BindingTable table;
  for (size_t v = 0; v < var_to_probe_col.size(); ++v) {
    table.AddColumn(static_cast<int>(v));
  }
  std::vector<VertexId> row(var_to_probe_col.size());
  for (size_t r : member_rows) {
    for (size_t v = 0; v < var_to_probe_col.size(); ++v) {
      row[v] = probe.rows[r][static_cast<size_t>(var_to_probe_col[v])].vid;
    }
    table.AppendRow(row.data());
  }
  auto result = ProjectResult(q, ctx, table);
  if (!result.ok()) {
    return result;
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  span.Arg("rows_out", static_cast<uint64_t>(result->rows.size()));
  span.End();
  return result;
}

}  // namespace wukongs
