#include "src/engine/executor.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <map>
#include <set>
#include <unordered_set>
#include <utility>

#include "src/common/test_hooks.h"
#include "src/obs/metrics.h"

namespace wukongs {
namespace {

const NeighborSource* SourceFor(const ExecContext& ctx, int graph) {
  size_t idx = graph == kGraphStored ? 0 : static_cast<size_t>(graph) + 1;
  assert(idx < ctx.sources.size());
  return ctx.sources[idx];
}

// Per-stage executor span, inert when tracing is off or compiled out.
obs::Tracer::Span StageSpan(const ExecContext& ctx, const char* name) {
  if constexpr (obs::kCompiledIn) {
    if (ctx.tracer != nullptr) {
      return ctx.tracer->StartSpan("exec", name, ctx.trace_node);
    }
  }
  return {};
}

// Adjacency fetch with a zero-copy fast path: sources that expose contiguous
// neighbor spans (in-memory stores) skip the per-key vector fill entirely;
// everything else lands in a reused scratch buffer. The returned span is only
// valid until the next Fetch.
class NeighborCursor {
 public:
  explicit NeighborCursor(const NeighborSource& src) : src_(src) {}

  const VertexId* Fetch(Key key, size_t* n) {
    const VertexId* span = src_.NeighborSpan(key, n);
    if (span != nullptr) {
      return span;
    }
    scratch_.clear();
    src_.GetNeighbors(key, &scratch_);
    *n = scratch_.size();
    return scratch_.data();
  }

 private:
  const NeighborSource& src_;
  std::vector<VertexId> scratch_;
};

// Columnar fetch path: cursor plus the per-pattern SpanCache (§5.13). A
// pattern fixes predicate and direction, so the cache keys on the anchor
// vertex alone. Non-selective expansions repeat anchors heavily (every row
// that came out of a fan-out shares its upstream bindings); each repeat
// becomes one flat L2-resident probe instead of a source hash lookup — or,
// on fabric-backed sources, a re-charged remote read.
class CachedCursor {
 public:
  CachedCursor(const NeighborSource& src, PredicateId pid, Dir dir)
      : src_(src), pid_(pid), dir_(dir) {}

  const VertexId* Fetch(VertexId anchor, size_t* n) {
    const VertexId* hit = nullptr;
    if (cache_.Lookup(anchor, &hit, n)) {
      return hit;
    }
    Key key(anchor, pid_, dir_);
    const VertexId* span = src_.NeighborSpan(key, n);
    if (span != nullptr) {
      cache_.Insert(anchor, span, *n);
      return span;
    }
    scratch_.clear();
    src_.GetNeighbors(key, &scratch_);
    *n = scratch_.size();
    return cache_.InsertCopy(anchor, scratch_.data(), scratch_.size());
  }

 private:
  const NeighborSource& src_;
  PredicateId pid_;
  Dir dir_;
  SpanCache cache_;
  std::vector<VertexId> scratch_;
};

// Shared FILTER predicate over one binding, identical across pipelines. Sets
// *keep; fails when a numeric comparison has no string server to consult.
Status EvalFilter(const FilterExpr& f, VertexId v, const StringServer* strings,
                  bool* keep) {
  *keep = false;
  if (!f.numeric) {
    *keep = f.MatchesVertex(v);
    return Status::Ok();
  }
  if (strings == nullptr) {
    return Status::FailedPrecondition("numeric FILTER needs a string server");
  }
  auto str = strings->VertexString(v);
  if (!str.ok()) {
    return Status::Ok();
  }
  char* end = nullptr;
  double num = std::strtod(str->c_str(), &end);
  if (end == str->c_str()) {
    return Status::Ok();  // Non-numeric binding never matches a numeric filter.
  }
  switch (f.op) {
    case FilterExpr::Op::kLt:
      *keep = num < f.number;
      break;
    case FilterExpr::Op::kLe:
      *keep = num <= f.number;
      break;
    case FilterExpr::Op::kGt:
      *keep = num > f.number;
      break;
    case FilterExpr::Op::kGe:
      *keep = num >= f.number;
      break;
    case FilterExpr::Op::kEq:
      *keep = num == f.number;
      break;
    case FilterExpr::Op::kNe:
      *keep = num != f.number;
      break;
  }
  return Status::Ok();
}

// Applies one triple pattern to a row-major `table`, producing the next table.
Status ApplyPatternRow(const TriplePattern& p, const NeighborSource& src,
                       BindingTable* table) {
  const bool s_var = p.subject.is_var();
  const bool o_var = p.object.is_var();
  const int s_col = s_var ? table->ColumnOf(p.subject.var) : -1;
  const int o_col = o_var ? table->ColumnOf(p.object.var) : -1;
  const bool s_known = !s_var || s_col >= 0;
  const bool o_known = !o_var || o_col >= 0;

  const size_t old_cols = table->num_cols();
  const size_t old_rows = table->num_rows();
  std::vector<VertexId> nbrs;

  auto subject_of = [&](size_t row) {
    return s_var ? table->At(row, s_col) : p.subject.constant;
  };
  auto object_of = [&](size_t row) {
    return o_var ? table->At(row, o_col) : p.object.constant;
  };

  if (s_known && o_known) {
    // Existence check per row. SPARQL has bag semantics: a row joins once
    // per matching edge, so multiplicity in the (stream) data is preserved.
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    if (old_cols == 0) {
      // Unit table: single check on the constant endpoints.
      nbrs.clear();
      src.GetNeighbors(Key(p.subject.constant, p.predicate, Dir::kOut), &nbrs);
      bool found = std::find(nbrs.begin(), nbrs.end(), p.object.constant) != nbrs.end();
      if (!found) {
        table->FailUnit();
      }
      return Status::Ok();
    }
    for (size_t r = 0; r < old_rows; ++r) {
      nbrs.clear();
      src.GetNeighbors(Key(subject_of(r), p.predicate, Dir::kOut), &nbrs);
      size_t multiplicity = static_cast<size_t>(
          std::count(nbrs.begin(), nbrs.end(), object_of(r)));
      for (size_t m = 0; m < multiplicity; ++m) {
        next.AppendRow(table->Row(r));
      }
    }
    *table = std::move(next);
    return Status::Ok();
  }

  if (s_known && !o_known) {
    // Expand forward: bind the object variable.
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    next.AddColumn(p.object.var);
    if (old_cols == 0) {
      nbrs.clear();
      src.GetNeighbors(Key(p.subject.constant, p.predicate, Dir::kOut), &nbrs);
      for (VertexId nb : nbrs) {
        next.AppendRowExtended(nullptr, 0, nb);
      }
    } else {
      for (size_t r = 0; r < old_rows; ++r) {
        nbrs.clear();
        src.GetNeighbors(Key(subject_of(r), p.predicate, Dir::kOut), &nbrs);
        for (VertexId nb : nbrs) {
          next.AppendRowExtended(table->Row(r), old_cols, nb);
        }
      }
    }
    *table = std::move(next);
    return Status::Ok();
  }

  if (!s_known && o_known) {
    // Expand backward over in-edges: bind the subject variable.
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    next.AddColumn(p.subject.var);
    if (old_cols == 0) {
      nbrs.clear();
      src.GetNeighbors(Key(p.object.constant, p.predicate, Dir::kIn), &nbrs);
      for (VertexId nb : nbrs) {
        next.AppendRowExtended(nullptr, 0, nb);
      }
    } else {
      for (size_t r = 0; r < old_rows; ++r) {
        nbrs.clear();
        src.GetNeighbors(Key(object_of(r), p.predicate, Dir::kIn), &nbrs);
        for (VertexId nb : nbrs) {
          next.AppendRowExtended(table->Row(r), old_cols, nb);
        }
      }
    }
    *table = std::move(next);
    return Status::Ok();
  }

  // Neither endpoint known: seed subjects from the index vertex (paper
  // Fig. 6: [0|pid|out] lists every vertex with an outgoing pid edge), then
  // expand to objects. Cartesian with any existing rows.
  std::vector<VertexId> subjects;
  src.GetNeighbors(Key(kIndexVertex, p.predicate, Dir::kOut), &subjects);

  BindingTable next;
  for (int v : table->vars()) {
    next.AddColumn(v);
  }
  int new_s_col = next.AddColumn(p.subject.var);
  (void)new_s_col;
  // Two-step build: first bind subjects, then expand objects, to reuse the
  // row machinery. Materialize intermediate rows directly.
  BindingTable mid = std::move(next);
  if (old_cols == 0) {
    for (VertexId s : subjects) {
      mid.AppendRowExtended(nullptr, 0, s);
    }
  } else {
    for (size_t r = 0; r < old_rows; ++r) {
      for (VertexId s : subjects) {
        mid.AppendRowExtended(table->Row(r), old_cols, s);
      }
    }
  }
  // Now expand objects from the bound subject column.
  BindingTable out;
  for (int v : mid.vars()) {
    out.AddColumn(v);
  }
  out.AddColumn(p.object.var);
  int mid_s_col = mid.ColumnOf(p.subject.var);
  for (size_t r = 0; r < mid.num_rows(); ++r) {
    nbrs.clear();
    src.GetNeighbors(Key(mid.At(r, mid_s_col), p.predicate, Dir::kOut), &nbrs);
    for (VertexId nb : nbrs) {
      out.AppendRowExtended(mid.Row(r), mid.num_cols(), nb);
    }
  }
  *table = std::move(out);
  return Status::Ok();
}

// --- Columnar scan-join (DESIGN.md §5.13) ----------------------------------
//
// Row enumeration order is the contract: every case below emits surviving
// rows in exactly the order the row pipeline would (chunks in order, rows in
// order, neighbors in order), so projected results stay byte-identical.

// Two-pass batched expansion of one chunk (§5.13). Pass one (the caller's
// scan) resolves each surviving row's adjacency span — through the pattern's
// SpanCache, so repeated anchors cost one flat probe — into parallel
// span/count/row arrays. Pass two here sizes the output chunk exactly and
// writes every column directly: carried columns as run-filled reads of the
// source column, the new binding as straight span copies. No staging of the
// cross product, no per-row allocation; each emitted value is written once.
//
// Span lifetime: entries come from the source's contiguous adjacency
// (stable until the source mutates) or from the SpanCache's copy pool
// (stable for the cache's lifetime, even across evictions), so holding them
// for the whole chunk is safe.
struct ExpansionScratch {
  std::vector<const VertexId*> spans;
  std::vector<uint32_t> counts;
  std::vector<uint32_t> rows;  // Physical source row per surviving entry.
  size_t total = 0;            // Sum of counts.

  void Clear(size_t expect = 0) {
    spans.clear();
    counts.clear();
    rows.clear();
    total = 0;
    if (expect > 0) {
      spans.reserve(expect);
      counts.reserve(expect);
      rows.reserve(expect);
    }
  }
  void Push(uint32_t row, const VertexId* nbrs, size_t n) {
    if (n == 0) {
      return;
    }
    spans.push_back(nbrs);
    counts.push_back(static_cast<uint32_t>(n));
    rows.push_back(row);
    total += n;
  }
};

void ExpandChunk(ColumnarTable* next, const ColumnarChunk& ch, size_t old_cols,
                 const ExpansionScratch& s) {
  if (s.total == 0) {
    return;
  }
  ColumnarChunk* out = next->StartChunk(s.total);
  if (s.total == s.rows.size()) {
    // Every surviving row matched exactly one edge (fanout-1 predicates,
    // e.g. functional properties): carried columns reduce to plain gathers
    // and the new binding to one dereference per row.
    for (size_t c = 0; c < old_cols; ++c) {
      GatherColumn(ch.cols[c], s.rows.data(), s.rows.size(), out->cols[c]);
    }
    VertexId* dst = out->cols[old_cols];
    for (size_t i = 0; i < s.spans.size(); ++i) {
      dst[i] = *s.spans[i];
    }
    out->size = s.total;
    return;
  }
  for (size_t c = 0; c < old_cols; ++c) {
    const VertexId* src_col = ch.cols[c];
    VertexId* dst = out->cols[c];
    size_t at = 0;
    for (size_t i = 0; i < s.rows.size(); ++i) {
      const VertexId v = src_col[s.rows[i]];
      const uint32_t run = s.counts[i];
      for (uint32_t k = 0; k < run; ++k) {
        dst[at + k] = v;
      }
      at += run;
    }
  }
  VertexId* dst = out->cols[old_cols];
  size_t at = 0;
  for (size_t i = 0; i < s.rows.size(); ++i) {
    std::copy(s.spans[i], s.spans[i] + s.counts[i], dst + at);
    at += s.counts[i];
  }
  out->size = s.total;
}

// Applies one triple pattern to a columnar `table`.
Status ApplyPatternColumnar(const TriplePattern& p, const NeighborSource& src,
                            ColumnarTable* table) {
  const bool s_var = p.subject.is_var();
  const bool o_var = p.object.is_var();
  const int s_col = s_var ? table->ColumnOf(p.subject.var) : -1;
  const int o_col = o_var ? table->ColumnOf(p.object.var) : -1;
  const bool s_known = !s_var || s_col >= 0;
  const bool o_known = !o_var || o_col >= 0;
  const size_t old_cols = table->num_cols();
  NeighborCursor cursor(src);

  if (s_known && o_known) {
    if (old_cols == 0) {
      // Unit table: single check on the constant endpoints.
      size_t n = 0;
      const VertexId* nbrs =
          cursor.Fetch(Key(p.subject.constant, p.predicate, Dir::kOut), &n);
      if (CountEqual(nbrs, n, p.object.constant) == 0) {
        table->FailUnit();
      }
      return Status::Ok();
    }
    // Existence check. The common case — every surviving row matched exactly
    // one edge — shrinks the chunk in place through its selection vector,
    // touching no column data. Only a duplicated edge (bag multiplicity > 1)
    // forces a materialized rebuild, reusing the multiplicities from the
    // scan so no neighbor list is fetched twice.
    size_t const_n = 0;
    const VertexId* const_nbrs = nullptr;
    if (!s_var) {
      const_nbrs =
          cursor.Fetch(Key(p.subject.constant, p.predicate, Dir::kOut), &const_n);
    }
    CachedCursor cached(src, p.predicate, Dir::kOut);
    std::vector<uint32_t> keep;
    std::vector<std::pair<uint32_t, uint32_t>> mults;  // (physical row, mult)
    for (ColumnarChunk& ch : table->chunks()) {
      keep.clear();
      mults.clear();
      bool has_dup = false;
      auto scan = [&](uint32_t r) {
        VertexId obj = o_var ? ch.cols[o_col][r] : p.object.constant;
        size_t n = const_n;
        const VertexId* nbrs = const_nbrs;
        if (s_var) {
          nbrs = cached.Fetch(ch.cols[s_col][r], &n);
        }
        size_t mult = CountEqual(nbrs, n, obj);
        if (mult > 0) {
          keep.push_back(r);
          mults.emplace_back(r, static_cast<uint32_t>(mult));
          has_dup = has_dup || mult > 1;
        }
      };
      if (ch.dense) {
        for (size_t r = 0; r < ch.size; ++r) {
          scan(static_cast<uint32_t>(r));
        }
      } else {
        for (uint32_t r : ch.sel) {
          scan(r);
        }
      }
      if (has_dup) {
        std::vector<uint32_t> idx;
        for (const auto& [r, m] : mults) {
          idx.insert(idx.end(), m, r);
        }
        ColumnarChunk next = table->MakeChunk(idx.size());
        for (size_t c = 0; c < old_cols; ++c) {
          GatherColumn(ch.cols[c], idx.data(), idx.size(), next.cols[c]);
        }
        next.size = idx.size();
        ch = std::move(next);
      } else if (keep.size() != ch.active()) {
        ch.sel = keep;
        ch.dense = false;
      }
    }
    return Status::Ok();
  }

  if (s_known != o_known) {
    // Expansion: forward over out-edges binds the object variable, backward
    // over in-edges binds the subject.
    const bool forward = s_known;
    const Dir dir = forward ? Dir::kOut : Dir::kIn;
    const Term& anchor = forward ? p.subject : p.object;
    const int anchor_col = forward ? s_col : o_col;
    const int new_var = forward ? p.object.var : p.subject.var;

    ColumnarTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    next.AddColumn(new_var);
    if (old_cols == 0) {
      size_t n = 0;
      const VertexId* nbrs = cursor.Fetch(Key(anchor.constant, p.predicate, dir), &n);
      if (n > 0) {
        ColumnarChunk* out = next.StartChunk(n);
        std::copy(nbrs, nbrs + n, out->cols[0]);
        out->size = n;
      }
      *table = std::move(next);
      return Status::Ok();
    }
    // A constant anchor means one adjacency list serves every row.
    size_t const_n = 0;
    const VertexId* const_nbrs = nullptr;
    if (!anchor.is_var()) {
      const_nbrs = cursor.Fetch(Key(anchor.constant, p.predicate, dir), &const_n);
    }
    CachedCursor cached(src, p.predicate, dir);
    ExpansionScratch scratch;
    for (const ColumnarChunk& ch : table->chunks()) {
      scratch.Clear(ch.active());
      auto expand = [&](uint32_t r) {
        size_t n = const_n;
        const VertexId* nbrs = const_nbrs;
        if (anchor.is_var()) {
          nbrs = cached.Fetch(ch.cols[anchor_col][r], &n);
        }
        scratch.Push(r, nbrs, n);
      };
      if (ch.dense) {
        for (size_t r = 0; r < ch.size; ++r) {
          expand(static_cast<uint32_t>(r));
        }
      } else {
        for (uint32_t r : ch.sel) {
          expand(r);
        }
      }
      ExpandChunk(&next, ch, old_cols, scratch);
    }
    *table = std::move(next);
    return Status::Ok();
  }

  // Neither endpoint known: seed subjects from the index vertex, cartesian
  // with existing rows, then expand objects from the bound subject column.
  std::vector<VertexId> subjects;
  src.GetNeighbors(Key(kIndexVertex, p.predicate, Dir::kOut), &subjects);

  ColumnarTable mid;
  for (int v : table->vars()) {
    mid.AddColumn(v);
  }
  mid.AddColumn(p.subject.var);
  if (old_cols == 0) {
    if (!subjects.empty()) {
      ColumnarChunk* out = mid.StartChunk(subjects.size());
      std::copy(subjects.begin(), subjects.end(), out->cols[0]);
      out->size = subjects.size();
    }
  } else {
    ExpansionScratch scratch;
    for (const ColumnarChunk& ch : table->chunks()) {
      scratch.Clear(ch.active());
      auto seed = [&](uint32_t r) {
        scratch.Push(r, subjects.data(), subjects.size());
      };
      if (ch.dense) {
        for (size_t r = 0; r < ch.size; ++r) {
          seed(static_cast<uint32_t>(r));
        }
      } else {
        for (uint32_t r : ch.sel) {
          seed(r);
        }
      }
      ExpandChunk(&mid, ch, old_cols, scratch);
    }
  }

  ColumnarTable out;
  for (int v : mid.vars()) {
    out.AddColumn(v);
  }
  out.AddColumn(p.object.var);
  const size_t mid_cols = mid.num_cols();
  const int mid_s_col = mid.ColumnOf(p.subject.var);
  CachedCursor cached(src, p.predicate, Dir::kOut);
  ExpansionScratch scratch;
  for (const ColumnarChunk& ch : mid.chunks()) {
    scratch.Clear(ch.size);
    for (size_t r = 0; r < ch.size; ++r) {  // mid chunks are always dense.
      size_t n = 0;
      const VertexId* nbrs = cached.Fetch(ch.cols[mid_s_col][r], &n);
      scratch.Push(static_cast<uint32_t>(r), nbrs, n);
    }
    ExpandChunk(&out, ch, mid_cols, scratch);
  }
  *table = std::move(out);
  return Status::Ok();
}

// Pattern loop shared by both pipelines (they differ only in table type).
template <typename Table, typename ApplyFn>
StatusOr<Table> RunPatternLoop(const Query& q, const std::vector<int>& plan,
                               const ExecContext& ctx, const StepHook& hook,
                               const ApplyFn& apply) {
  if (plan.size() != q.patterns.size()) {
    return Status::Internal("plan does not cover all patterns");
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/patterns");
  span.Arg("patterns", static_cast<uint64_t>(plan.size()));
  Table table;
  for (int idx : plan) {
    const TriplePattern& p = q.patterns[static_cast<size_t>(idx)];
    const NeighborSource* src = SourceFor(ctx, p.graph);
    size_t rows_before = table.num_rows();
    size_t cols_before = table.num_cols();
    Status s = apply(p, *src, &table);
    if (!s.ok()) {
      return s;
    }
    if (hook) {
      hook(p, rows_before, cols_before, table.num_rows());
    }
    if (ctx.observe) {
      ctx.observe(p, rows_before, cols_before, table.num_rows());
    }
    if (table.num_rows() == 0) {
      break;  // Early exit: no bindings survive (or a constant check failed).
    }
  }
  span.Arg("rows", static_cast<uint64_t>(table.num_rows()));
  return table;
}

}  // namespace

StatusOr<BindingTable> ExecutePatternsRow(const Query& q, const std::vector<int>& plan,
                                          const ExecContext& ctx,
                                          const StepHook& hook) {
  return RunPatternLoop<BindingTable>(q, plan, ctx, hook, ApplyPatternRow);
}

StatusOr<ColumnarTable> ExecutePatterns(const Query& q, const std::vector<int>& plan,
                                        const ExecContext& ctx,
                                        const StepHook& hook) {
  return RunPatternLoop<ColumnarTable>(q, plan, ctx, hook, ApplyPatternColumnar);
}

Status ApplyFilters(const Query& q, const ExecContext& ctx, BindingTable* table) {
  if (q.filters.empty() || table->num_cols() == 0) {
    return Status::Ok();
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/filters");
  span.Arg("filters", static_cast<uint64_t>(q.filters.size()))
      .Arg("rows_in", static_cast<uint64_t>(table->num_rows()));
  for (const FilterExpr& f : q.filters) {
    int col = table->ColumnOf(f.var);
    if (col < 0) {
      return Status::InvalidArgument("FILTER references unbound variable ?" +
                                     q.var_names[static_cast<size_t>(f.var)]);
    }
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    for (size_t r = 0; r < table->num_rows(); ++r) {
      bool keep = false;
      Status s = EvalFilter(f, table->At(r, col), ctx.strings, &keep);
      if (!s.ok()) {
        return s;
      }
      if (keep) {
        next.AppendRow(table->Row(r));
      }
    }
    *table = std::move(next);
  }
  return Status::Ok();
}

Status ApplyFilters(const Query& q, const ExecContext& ctx, ColumnarTable* table) {
  if (q.filters.empty() || table->num_cols() == 0) {
    return Status::Ok();
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/filters");
  span.Arg("filters", static_cast<uint64_t>(q.filters.size()))
      .Arg("rows_in", static_cast<uint64_t>(table->num_rows()));
  for (const FilterExpr& f : q.filters) {
    int col = table->ColumnOf(f.var);
    if (col < 0) {
      return Status::InvalidArgument("FILTER references unbound variable ?" +
                                     q.var_names[static_cast<size_t>(f.var)]);
    }
    std::vector<uint32_t> keep;
    for (ColumnarChunk& ch : table->chunks()) {
      keep.clear();
      Status err = Status::Ok();
      if (!f.numeric) {
        // Vertex-identity predicates cannot fail: evaluate them in a tight
        // loop over the id column instead of through the Status-returning
        // generic path (which costs more than the compare itself).
        const VertexId* vals = ch.cols[col];
        if (ch.dense) {
          for (size_t r = 0; r < ch.size; ++r) {
            if (f.MatchesVertex(vals[r])) {
              keep.push_back(static_cast<uint32_t>(r));
            }
          }
        } else {
          for (uint32_t r : ch.sel) {
            if (f.MatchesVertex(vals[r])) {
              keep.push_back(r);
            }
          }
        }
      } else {
        auto eval = [&](uint32_t r) -> bool {
          bool k = false;
          Status s = EvalFilter(f, ch.cols[col][r], ctx.strings, &k);
          if (!s.ok()) {
            err = s;
            return false;
          }
          if (k) {
            keep.push_back(r);
          }
          return true;
        };
        if (ch.dense) {
          for (size_t r = 0; r < ch.size; ++r) {
            if (!eval(static_cast<uint32_t>(r))) {
              break;
            }
          }
        } else {
          for (uint32_t r : ch.sel) {
            if (!eval(r)) {
              break;
            }
          }
        }
      }
      if (!err.ok()) {
        return err;
      }
      if (test_hooks::skip_selection_compact.load(std::memory_order_relaxed)) {
        continue;  // Planted defect: selection computed but never stored.
      }
      if (keep.size() != ch.active()) {
        ch.sel = keep;
        ch.dense = false;
      }
    }
  }
  return Status::Ok();
}

// Solution-sequence modifiers: DISTINCT, ORDER BY, LIMIT — applied in that
// order, after projection/aggregation.
Status FinalizeSolution(const Query& q, const ExecContext& ctx,
                        QueryResult* result) {
  if (q.distinct) {
    std::vector<std::vector<ResultValue>> unique;
    unique.reserve(result->rows.size());
    std::set<std::vector<std::pair<bool, uint64_t>>> seen;
    for (auto& row : result->rows) {
      std::vector<std::pair<bool, uint64_t>> key;
      key.reserve(row.size());
      for (const ResultValue& v : row) {
        key.emplace_back(v.is_number,
                         v.is_number ? static_cast<uint64_t>(v.number * 1e6) : v.vid);
      }
      if (seen.insert(std::move(key)).second) {
        unique.push_back(std::move(row));
      }
    }
    result->rows = std::move(unique);
  }

  if (!q.order_by.empty()) {
    // ORDER BY keys must be projected columns.
    std::vector<std::pair<size_t, bool>> keys;  // (column, descending)
    for (const OrderKey& key : q.order_by) {
      bool found = false;
      for (size_t c = 0; c < q.select.size(); ++c) {
        if (q.select[c].var == key.var && q.select[c].agg == AggKind::kNone) {
          keys.emplace_back(c, key.descending);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "ORDER BY variable must appear (un-aggregated) in SELECT");
      }
    }
    auto value_less = [&ctx](const ResultValue& a, const ResultValue& b) -> int {
      if (a.is_number != b.is_number) {
        return a.is_number ? -1 : 1;  // Numbers sort before IRIs.
      }
      if (a.is_number) {
        return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
      }
      if (ctx.strings != nullptr) {
        auto sa = ctx.strings->VertexString(a.vid);
        auto sb = ctx.strings->VertexString(b.vid);
        if (sa.ok() && sb.ok()) {
          return sa->compare(*sb) < 0 ? -1 : (*sa == *sb ? 0 : 1);
        }
      }
      return a.vid < b.vid ? -1 : (a.vid > b.vid ? 1 : 0);
    };
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const auto& ra, const auto& rb) {
                       for (const auto& [col, desc] : keys) {
                         int cmp = value_less(ra[col], rb[col]);
                         if (cmp != 0) {
                           return desc ? cmp > 0 : cmp < 0;
                         }
                       }
                       return false;
                     });
  }

  if (q.limit > 0 && result->rows.size() > q.limit) {
    result->rows.resize(q.limit);
  }
  return Status::Ok();
}

namespace {

// Result column names (COUNT(x), SUM(x), ... wrappers), shared by both
// projection implementations.
void ProjectColumnNames(const Query& q, QueryResult* result) {
  for (const SelectItem& item : q.select) {
    std::string name = q.var_names[static_cast<size_t>(item.var)];
    switch (item.agg) {
      case AggKind::kNone:
        break;
      case AggKind::kCount:
        name = "COUNT(" + name + ")";
        break;
      case AggKind::kSum:
        name = "SUM(" + name + ")";
        break;
      case AggKind::kAvg:
        name = "AVG(" + name + ")";
        break;
      case AggKind::kMin:
        name = "MIN(" + name + ")";
        break;
      case AggKind::kMax:
        name = "MAX(" + name + ")";
        break;
    }
    result->columns.push_back(std::move(name));
  }
}

}  // namespace

StatusOr<QueryResult> ProjectResult(const Query& q, const ExecContext& ctx,
                                    const BindingTable& table) {
  obs::Tracer::Span span = StageSpan(ctx, "exec/project");
  span.Arg("rows_in", static_cast<uint64_t>(table.num_rows()));
  QueryResult result;
  ProjectColumnNames(q, &result);

  if (table.num_rows() == 0) {
    return result;  // Empty result; unbound select columns are moot.
  }

  if (!q.has_aggregates()) {
    result.rows.reserve(table.num_rows());
    std::vector<int> cols;
    for (const SelectItem& item : q.select) {
      int col = table.ColumnOf(item.var);
      if (col < 0) {
        return Status::InvalidArgument("selected variable is unbound");
      }
      cols.push_back(col);
    }
    for (size_t r = 0; r < table.num_rows(); ++r) {
      std::vector<ResultValue> row;
      row.reserve(cols.size());
      for (int c : cols) {
        row.push_back(ResultValue::Vertex(table.At(r, c)));
      }
      result.rows.push_back(std::move(row));
    }
    return result;
  }

  // Aggregation path. Group rows by the GROUP BY columns (or one big group).
  std::vector<int> group_cols;
  for (int var : q.group_by) {
    int col = table.ColumnOf(var);
    if (col < 0) {
      return Status::InvalidArgument("GROUP BY variable is unbound");
    }
    group_cols.push_back(col);
  }

  struct AggState {
    size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    bool seen = false;
  };
  // Group key -> per-select-item state.
  std::map<std::vector<VertexId>, std::vector<AggState>> groups;

  auto numeric_value = [&](VertexId v, double* out) -> bool {
    if (ctx.strings == nullptr) {
      return false;
    }
    auto str = ctx.strings->VertexString(v);
    if (!str.ok()) {
      return false;
    }
    char* end = nullptr;
    double num = std::strtod(str->c_str(), &end);
    if (end == str->c_str()) {
      return false;
    }
    *out = num;
    return true;
  };

  for (size_t r = 0; r < table.num_rows(); ++r) {
    std::vector<VertexId> gkey;
    gkey.reserve(group_cols.size());
    for (int c : group_cols) {
      gkey.push_back(table.At(r, c));
    }
    auto& states = groups[gkey];
    states.resize(q.select.size());
    for (size_t i = 0; i < q.select.size(); ++i) {
      const SelectItem& item = q.select[i];
      if (item.agg == AggKind::kNone) {
        continue;
      }
      int col = table.ColumnOf(item.var);
      if (col < 0) {
        return Status::InvalidArgument("aggregated variable is unbound");
      }
      AggState& st = states[i];
      st.count += 1;
      if (item.agg != AggKind::kCount) {
        double num = 0.0;
        if (numeric_value(table.At(r, col), &num)) {
          st.sum += num;
          st.min = st.seen ? std::min(st.min, num) : num;
          st.max = st.seen ? std::max(st.max, num) : num;
          st.seen = true;
        }
      }
    }
  }

  for (const auto& [gkey, states] : groups) {
    std::vector<ResultValue> row;
    row.reserve(q.select.size());
    for (size_t i = 0; i < q.select.size(); ++i) {
      const SelectItem& item = q.select[i];
      if (item.agg == AggKind::kNone) {
        // Plain variable in an aggregate query must be a GROUP BY key.
        int col = table.ColumnOf(item.var);
        bool found = false;
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g] == col) {
            row.push_back(ResultValue::Vertex(gkey[g]));
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "non-aggregated select variable must appear in GROUP BY");
        }
        continue;
      }
      const AggState& st = states[i];
      switch (item.agg) {
        case AggKind::kCount:
          row.push_back(ResultValue::Number(static_cast<double>(st.count)));
          break;
        case AggKind::kSum:
          row.push_back(ResultValue::Number(st.sum));
          break;
        case AggKind::kAvg:
          row.push_back(ResultValue::Number(
              st.count > 0 && st.seen ? st.sum / static_cast<double>(st.count) : 0.0));
          break;
        case AggKind::kMin:
          row.push_back(ResultValue::Number(st.seen ? st.min : 0.0));
          break;
        case AggKind::kMax:
          row.push_back(ResultValue::Number(st.seen ? st.max : 0.0));
          break;
        case AggKind::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

StatusOr<QueryResult> ProjectResult(const Query& q, const ExecContext& ctx,
                                    const ColumnarTable& table) {
  if (q.has_aggregates()) {
    // Aggregation collapses the table to per-group scalar state, so the
    // per-row gather the columnar layout accelerates is not the cost here;
    // project through the (order-preserving) row view and keep one
    // implementation of the grouping semantics.
    return ProjectResult(q, ctx, table.ToRows());
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/project");
  span.Arg("rows_in", static_cast<uint64_t>(table.num_rows()));
  QueryResult result;
  ProjectColumnNames(q, &result);

  if (table.num_rows() == 0) {
    return result;  // Empty result; unbound select columns are moot.
  }

  result.rows.reserve(table.num_rows());
  std::vector<int> cols;
  for (const SelectItem& item : q.select) {
    int col = table.ColumnOf(item.var);
    if (col < 0) {
      return Status::InvalidArgument("selected variable is unbound");
    }
    cols.push_back(col);
  }
  table.ForEachActiveRow([&](const ColumnarChunk& ch, size_t r) {
    std::vector<ResultValue> row;
    row.reserve(cols.size());
    for (int c : cols) {
      row.push_back(ResultValue::Vertex(ch.cols[static_cast<size_t>(c)][r]));
    }
    result.rows.push_back(std::move(row));
  });
  return result;
}

namespace {

// OPTIONAL group evaluation for one left-hand row: runs the group's patterns
// seeded with the row's bindings and appends the joined (or unbound-padded)
// rows to `next`. Shared by both pipelines; the per-row seed tables are tiny,
// so the row machinery serves both.
Status OptionalJoinRow(const std::vector<TriplePattern>& group,
                       const ExecContext& ctx, const std::vector<int>& vars,
                       const std::vector<int>& new_vars, const VertexId* row,
                       size_t old_cols, std::vector<VertexId>* row_buffer,
                       const std::function<void(const VertexId*)>& emit) {
  BindingTable seed;
  for (int v : vars) {
    seed.AddColumn(v);
  }
  if (old_cols > 0) {
    seed.AppendRow(row);
  }
  bool dead = false;
  for (const TriplePattern& p : group) {
    const NeighborSource* src = SourceFor(ctx, p.graph);
    Status s = ApplyPatternRow(p, *src, &seed);
    if (!s.ok()) {
      return s;
    }
    if (seed.num_rows() == 0) {
      dead = true;
      break;
    }
  }
  if (dead) {
    // No match: keep the row; the group's variables stay unbound.
    for (size_t c = 0; c < old_cols; ++c) {
      (*row_buffer)[c] = row[c];
    }
    for (size_t c = old_cols; c < row_buffer->size(); ++c) {
      (*row_buffer)[c] = kUnboundBinding;
    }
    emit(row_buffer->data());
    return Status::Ok();
  }
  for (size_t sr = 0; sr < seed.num_rows(); ++sr) {
    for (size_t c = 0; c < old_cols; ++c) {
      (*row_buffer)[c] = row[c];
    }
    for (size_t c = 0; c < new_vars.size(); ++c) {
      int col = seed.ColumnOf(new_vars[c]);
      (*row_buffer)[old_cols + c] = col >= 0 ? seed.At(sr, col) : kUnboundBinding;
    }
    emit(row_buffer->data());
  }
  return Status::Ok();
}

// Variables an OPTIONAL group introduces on top of the current bindings.
template <typename Table>
std::vector<int> OptionalNewVars(const std::vector<TriplePattern>& group,
                                 const Table& table) {
  std::vector<int> new_vars;
  for (const TriplePattern& p : group) {
    for (const Term* t : {&p.subject, &p.object}) {
      if (t->is_var() && !table.IsBound(t->var) &&
          std::find(new_vars.begin(), new_vars.end(), t->var) == new_vars.end()) {
        new_vars.push_back(t->var);
      }
    }
  }
  return new_vars;
}

}  // namespace

Status ApplyOptionals(const Query& q, const ExecContext& ctx, BindingTable* table) {
  for (const std::vector<TriplePattern>& group : q.optionals) {
    std::vector<int> new_vars = OptionalNewVars(group, *table);
    BindingTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    for (int v : new_vars) {
      next.AddColumn(v);
    }
    const size_t old_cols = table->num_cols();
    std::vector<VertexId> row_buffer(next.num_cols());
    auto emit = [&](const VertexId* r) { next.AppendRow(r); };
    for (size_t r = 0; r < table->num_rows(); ++r) {
      const VertexId* row = old_cols > 0 ? table->Row(r) : nullptr;
      Status s = OptionalJoinRow(group, ctx, table->vars(), new_vars, row,
                                 old_cols, &row_buffer, emit);
      if (!s.ok()) {
        return s;
      }
    }
    *table = std::move(next);
  }
  return Status::Ok();
}

Status ApplyOptionals(const Query& q, const ExecContext& ctx, ColumnarTable* table) {
  for (const std::vector<TriplePattern>& group : q.optionals) {
    std::vector<int> new_vars = OptionalNewVars(group, *table);
    ColumnarTable next;
    for (int v : table->vars()) {
      next.AddColumn(v);
    }
    for (int v : new_vars) {
      next.AddColumn(v);
    }
    const size_t old_cols = table->num_cols();
    std::vector<VertexId> row_buffer(next.num_cols());
    std::vector<VertexId> left(old_cols);
    auto emit = [&](const VertexId* r) { next.AppendRow(r); };
    Status err = Status::Ok();
    if (old_cols == 0) {
      // Unit table: zero-column tables hold no chunks, so drive the single
      // implicit row (if it survived) directly.
      for (size_t r = 0; r < table->num_rows(); ++r) {
        err = OptionalJoinRow(group, ctx, table->vars(), new_vars, nullptr, 0,
                              &row_buffer, emit);
        if (!err.ok()) {
          return err;
        }
      }
    } else {
      table->ForEachActiveRow([&](const ColumnarChunk& ch, size_t r) -> bool {
        for (size_t c = 0; c < old_cols; ++c) {
          left[c] = ch.cols[c][r];
        }
        err = OptionalJoinRow(group, ctx, table->vars(), new_vars, left.data(),
                              old_cols, &row_buffer, emit);
        return err.ok();
      });
      if (!err.ok()) {
        return err;
      }
    }
    *table = std::move(next);
  }
  return Status::Ok();
}

StatusOr<QueryResult> ExecutePipeline(const Query& q, const std::vector<int>& plan,
                                      const ExecContext& ctx, const StepHook& hook) {
  if (ctx.columnar) {
    auto table = ExecutePatterns(q, plan, ctx, hook);
    if (!table.ok()) {
      return table.status();
    }
    Status os = ApplyOptionals(q, ctx, &table.value());
    if (!os.ok()) {
      return os;
    }
    Status fs = ApplyFilters(q, ctx, &table.value());
    if (!fs.ok()) {
      return fs;
    }
    return ProjectResult(q, ctx, table.value());
  }
  auto table = ExecutePatternsRow(q, plan, ctx, hook);
  if (!table.ok()) {
    return table.status();
  }
  Status os = ApplyOptionals(q, ctx, &table.value());
  if (!os.ok()) {
    return os;
  }
  Status fs = ApplyFilters(q, ctx, &table.value());
  if (!fs.ok()) {
    return fs;
  }
  return ProjectResult(q, ctx, table.value());
}

namespace {

StatusOr<DeltaTable> ExecuteDeltaPatternsColumnar(const Query& q,
                                                  const std::vector<int>& plan,
                                                  const ExecContext& ctx,
                                                  const DeltaSpec& spec,
                                                  obs::Tracer::Span& span) {
  // Stored-graph prefix: window-independent, so one table serves every slice
  // and every trigger until an epoch flush.
  ColumnarTable prefix;
  if (!spec.cache->GetPrefix(&prefix)) {
    for (size_t i = 0; i < spec.window_pos; ++i) {
      const TriplePattern& p = q.patterns[static_cast<size_t>(plan[i])];
      Status s = ApplyPatternColumnar(p, *SourceFor(ctx, p.graph), &prefix);
      if (!s.ok()) {
        return s;
      }
      if (prefix.num_rows() == 0) {
        break;
      }
    }
    prefix.Compact();
    spec.cache->PutPrefix(prefix);
  }

  DeltaTable out;
  const TriplePattern& wp =
      q.patterns[static_cast<size_t>(plan[spec.window_pos])];
  if (prefix.num_rows() > 0) {
    for (BatchSeq b : spec.batches) {
      ColumnarTable contrib;
      if (spec.cache->GetContribution(b, &contrib)) {
        ++out.slices_cached;
      } else {
        ++out.slices_fresh;
        contrib = prefix;
        Status s = ApplyPatternColumnar(wp, *spec.slice_source(b), &contrib);
        if (!s.ok()) {
          return s;
        }
        for (size_t i = spec.window_pos + 1;
             i < plan.size() && contrib.num_rows() > 0; ++i) {
          const TriplePattern& p = q.patterns[static_cast<size_t>(plan[i])];
          s = ApplyPatternColumnar(p, *SourceFor(ctx, p.graph), &contrib);
          if (!s.ok()) {
            return s;
          }
        }
        if (contrib.num_rows() > 0) {
          // OPTIONALs and FILTERs are row-local, so applying them per slice
          // and unioning equals applying them to the unioned table.
          Status os = ApplyOptionals(q, ctx, &contrib);
          if (!os.ok()) {
            return os;
          }
          Status fs = ApplyFilters(q, ctx, &contrib);
          if (!fs.ok()) {
            return fs;
          }
        }
        // Cache entries outlive this trigger: materialize selections so the
        // cached chunks hold only live rows.
        contrib.Compact();
        spec.cache->PutContribution(b, contrib);
        if (test_hooks::stale_arena_reuse.load(std::memory_order_relaxed)) {
          // Planted defect: "reset" the contribution's arenas for reuse right
          // after handing the chunks to the cache — the cached entry (and the
          // union below, which adopts the same chunks) now reads scribbled
          // column data.
          contrib.ScribbleArenasForTesting(static_cast<VertexId>(0xDEAD));
        }
      }
      if (contrib.num_rows() == 0) {
        continue;
      }
      if (contrib.num_cols() == 0) {
        // Degenerate all-constant plan: unit tables do not accumulate rows,
        // so bag union cannot be expressed here. Cold path handles it.
        out.fallback = true;
        return out;
      }
      if (out.table.num_cols() == 0) {
        for (int v : contrib.vars()) {
          out.table.AddColumn(v);
        }
      }
      assert(contrib.num_cols() == out.table.num_cols());
      out.table.AppendTable(contrib);  // Adopts chunks; no row copies.
    }
  }
  if (out.table.num_cols() == 0) {
    // No contribution produced rows; mark the unit table empty so projection
    // sees zero rows (matching the cold path's empty join).
    out.table.FailUnit();
    // With FILTERs present the cold path may instead fail on an unbound
    // column of its early-exited table — reproduce by re-running cold.
    out.fallback = !q.filters.empty();
  }
  span.Arg("cached", out.slices_cached)
      .Arg("fresh", out.slices_fresh)
      .Arg("rows", static_cast<uint64_t>(out.table.num_rows()));
  return out;
}

StatusOr<DeltaTable> ExecuteDeltaPatternsRow(const Query& q,
                                             const std::vector<int>& plan,
                                             const ExecContext& ctx,
                                             const DeltaSpec& spec,
                                             obs::Tracer::Span& span) {
  // Row twin of the delta pipeline. The cache stores columnar tables in both
  // modes (the DeltaCache value type is the chunk layout); the row view
  // adapter converts at the cache boundary with row order preserved.
  BindingTable prefix;
  ColumnarTable cached;
  if (spec.cache->GetPrefix(&cached)) {
    prefix = cached.ToRows();
  } else {
    for (size_t i = 0; i < spec.window_pos; ++i) {
      const TriplePattern& p = q.patterns[static_cast<size_t>(plan[i])];
      Status s = ApplyPatternRow(p, *SourceFor(ctx, p.graph), &prefix);
      if (!s.ok()) {
        return s;
      }
      if (prefix.num_rows() == 0) {
        break;
      }
    }
    spec.cache->PutPrefix(ColumnarTable::FromRows(prefix));
  }

  DeltaTable out;
  BindingTable union_rows;
  const TriplePattern& wp =
      q.patterns[static_cast<size_t>(plan[spec.window_pos])];
  if (prefix.num_rows() > 0) {
    for (BatchSeq b : spec.batches) {
      BindingTable contrib;
      if (spec.cache->GetContribution(b, &cached)) {
        ++out.slices_cached;
        contrib = cached.ToRows();
      } else {
        ++out.slices_fresh;
        contrib = prefix;
        Status s = ApplyPatternRow(wp, *spec.slice_source(b), &contrib);
        if (!s.ok()) {
          return s;
        }
        for (size_t i = spec.window_pos + 1;
             i < plan.size() && contrib.num_rows() > 0; ++i) {
          const TriplePattern& p = q.patterns[static_cast<size_t>(plan[i])];
          s = ApplyPatternRow(p, *SourceFor(ctx, p.graph), &contrib);
          if (!s.ok()) {
            return s;
          }
        }
        if (contrib.num_rows() > 0) {
          Status os = ApplyOptionals(q, ctx, &contrib);
          if (!os.ok()) {
            return os;
          }
          Status fs = ApplyFilters(q, ctx, &contrib);
          if (!fs.ok()) {
            return fs;
          }
        }
        spec.cache->PutContribution(b, ColumnarTable::FromRows(contrib));
      }
      if (contrib.num_rows() == 0) {
        continue;
      }
      if (contrib.num_cols() == 0) {
        out.fallback = true;
        return out;
      }
      if (union_rows.num_cols() == 0) {
        for (int v : contrib.vars()) {
          union_rows.AddColumn(v);
        }
      }
      assert(contrib.num_cols() == union_rows.num_cols());
      for (size_t r = 0; r < contrib.num_rows(); ++r) {
        union_rows.AppendRow(contrib.Row(r));
      }
    }
  }
  if (union_rows.num_cols() == 0) {
    union_rows.FailUnit();
    out.fallback = !q.filters.empty();
  }
  out.table = ColumnarTable::FromRows(union_rows);
  span.Arg("cached", out.slices_cached)
      .Arg("fresh", out.slices_fresh)
      .Arg("rows", static_cast<uint64_t>(out.table.num_rows()));
  return out;
}

}  // namespace

StatusOr<DeltaTable> ExecuteDeltaPatterns(const Query& q,
                                          const std::vector<int>& plan,
                                          const ExecContext& ctx,
                                          const DeltaSpec& spec) {
  if (plan.size() != q.patterns.size()) {
    return Status::Internal("plan does not cover all patterns");
  }
  if (spec.cache == nullptr || spec.window_pos >= plan.size() ||
      !spec.slice_source) {
    return Status::Internal("delta execution without a cache or window split");
  }
  obs::Tracer::Span span = StageSpan(ctx, "exec/delta");
  span.Arg("batches", static_cast<uint64_t>(spec.batches.size()))
      .Arg("patterns", static_cast<uint64_t>(plan.size()));
  if (ctx.columnar) {
    return ExecuteDeltaPatternsColumnar(q, plan, ctx, spec, span);
  }
  return ExecuteDeltaPatternsRow(q, plan, ctx, spec, span);
}

StatusOr<QueryResult> ExecuteQuery(const Query& q, const std::vector<int>& plan,
                                   const ExecContext& ctx) {
  auto result = ExecutePipeline(q, plan, ctx);
  if (!result.ok()) {
    return result;
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  return result;
}

StatusOr<QueryResult> ProjectMemberFromProbe(
    const Query& q, const ExecContext& ctx, const QueryResult& probe,
    const std::vector<size_t>& member_rows,
    const std::vector<int>& var_to_probe_col) {
  obs::Tracer::Span span = StageSpan(ctx, "exec/fanout");
  span.Arg("rows_in", static_cast<uint64_t>(member_rows.size()));
  // Fast path for the dominant template shape — plain SELECT, no
  // aggregates/DISTINCT/ORDER/LIMIT: the probe values are already final
  // ResultValues, so project straight out of the partition rows and skip
  // the intermediate binding table (the fan-out stage runs once per member
  // per trigger; this copy is its whole cost).
  if (!q.has_aggregates() && !q.distinct && q.order_by.empty() &&
      q.limit == 0 && q.group_by.empty()) {
    QueryResult result;
    std::vector<size_t> cols;
    cols.reserve(q.select.size());
    for (const SelectItem& item : q.select) {
      int col = var_to_probe_col[static_cast<size_t>(item.var)];
      if (col < 0) {
        return Status::InvalidArgument("selected variable is unbound");
      }
      result.columns.push_back(q.var_names[static_cast<size_t>(item.var)]);
      cols.push_back(static_cast<size_t>(col));
    }
    result.rows.reserve(member_rows.size());
    for (size_t r : member_rows) {
      std::vector<ResultValue> row;
      row.reserve(cols.size());
      for (size_t c : cols) {
        row.push_back(probe.rows[r][c]);
      }
      result.rows.push_back(std::move(row));
    }
    span.Arg("rows_out", static_cast<uint64_t>(result.rows.size()));
    span.End();
    return result;
  }
  // Rebuild the member's pre-projection binding table from its partition:
  // column v (the member's variable slot) takes the probe column that bound
  // the same canonical variable. Unbound OPTIONAL markers round-trip as-is.
  BindingTable table;
  for (size_t v = 0; v < var_to_probe_col.size(); ++v) {
    table.AddColumn(static_cast<int>(v));
  }
  std::vector<VertexId> row(var_to_probe_col.size());
  for (size_t r : member_rows) {
    for (size_t v = 0; v < var_to_probe_col.size(); ++v) {
      row[v] = probe.rows[r][static_cast<size_t>(var_to_probe_col[v])].vid;
    }
    table.AppendRow(row.data());
  }
  auto result = ProjectResult(q, ctx, table);
  if (!result.ok()) {
    return result;
  }
  Status fin = FinalizeSolution(q, ctx, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  span.Arg("rows_out", static_cast<uint64_t>(result->rows.size()));
  span.End();
  return result;
}

}  // namespace wukongs
