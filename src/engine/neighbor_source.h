// NeighborSource: the executor's view of "where edges come from".
//
// One implementation reads the distributed persistent store at a snapshot
// (one-shot queries and the stored-graph patterns of continuous queries);
// another reads a stream window through the stream index and transient store
// (§4.2). Both deposit modeled network cost as they touch remote shards, so
// the executor is oblivious to distribution.

#ifndef SRC_ENGINE_NEIGHBOR_SOURCE_H_
#define SRC_ENGINE_NEIGHBOR_SOURCE_H_

#include <vector>

#include "src/common/ids.h"

namespace wukongs {

class NeighborSource {
 public:
  virtual ~NeighborSource() = default;

  // Appends the neighbors of `key` to `out`. Index keys ([0|pid|dir])
  // enumerate every vertex with that predicate/direction.
  virtual void GetNeighbors(Key key, std::vector<VertexId>* out) const = 0;

  // Cheap cardinality estimate for the planner; needs no network round trip
  // in the real system because Wukong keeps per-predicate statistics.
  virtual size_t EstimateCount(Key key) const = 0;

  // Zero-copy variant for the columnar scan-join: returns a pointer to the
  // source's contiguous adjacency span for `key` (setting *n), or nullptr
  // when the source cannot expose one — callers then fall back to
  // GetNeighbors into a scratch vector. The span must stay valid until the
  // next mutating call on the source.
  virtual const VertexId* NeighborSpan(Key key, size_t* n) const {
    (void)key;
    *n = 0;
    return nullptr;
  }
};

}  // namespace wukongs

#endif  // SRC_ENGINE_NEIGHBOR_SOURCE_H_
