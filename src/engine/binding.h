// Intermediate binding tables for graph-exploration query execution.
//
// Wukong-style execution never materializes relational join inputs: it walks
// the graph, carrying a table of variable bindings that each exploration step
// extends or prunes (paper §2.3 contrasts this with the "join bomb" of
// relational plans). A BindingTable is row-major: `vars` names the variable
// slot of each column, `data` holds rows of vertex IDs.

#ifndef SRC_ENGINE_BINDING_H_
#define SRC_ENGINE_BINDING_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"

namespace wukongs {

// Sentinel for a variable left unbound by an unmatched OPTIONAL group.
inline constexpr VertexId kUnboundBinding = kMaxVertexId;

class BindingTable {
 public:
  BindingTable() = default;

  // Column handling.
  int ColumnOf(int var) const;  // -1 if unbound.
  bool IsBound(int var) const { return ColumnOf(var) >= 0; }
  size_t num_cols() const { return vars_.size(); }
  const std::vector<int>& vars() const { return vars_; }

  // Rows. A table with zero columns has one implicit "unit" row until it is
  // explicitly emptied (matching the algebra of an empty graph pattern).
  size_t num_rows() const;
  VertexId At(size_t row, int col) const { return data_[row * vars_.size() + col]; }
  const VertexId* Row(size_t row) const { return &data_[row * vars_.size()]; }

  // Marks the unit table as failed (a constant-only pattern found no match).
  void FailUnit() { unit_failed_ = true; }

  // Builders used by the executor. AppendRow* take the *existing* row layout;
  // extended variants append `extra` as a new final column added by
  // AddColumn().
  int AddColumn(int var);
  void AppendRow(const VertexId* row);
  void AppendRowExtended(const VertexId* row, size_t old_cols, VertexId extra);
  void Clear();

  size_t MemoryBytes() const {
    return data_.capacity() * sizeof(VertexId) + vars_.capacity() * sizeof(int);
  }

 private:
  std::vector<int> vars_;
  std::vector<VertexId> data_;
  bool unit_failed_ = false;
};

// Final query output. Plain variables bind vertex IDs; aggregate columns are
// numeric. The client resolves IDs back to strings via the string server.
struct ResultValue {
  bool is_number = false;
  VertexId vid = 0;
  double number = 0.0;

  static ResultValue Vertex(VertexId v) { return ResultValue{false, v, 0.0}; }
  static ResultValue Number(double n) { return ResultValue{true, 0, n}; }

  friend bool operator==(const ResultValue&, const ResultValue&) = default;
};

struct QueryResult {
  std::vector<std::string> columns;
  std::vector<std::vector<ResultValue>> rows;

  size_t size() const { return rows.size(); }
  bool empty() const { return rows.empty(); }
};

// Fan-out hash-partition stage for shared template-group evaluation
// (DESIGN.md §5.12): buckets `result`'s rows by the vertex bound in column
// `col` (the probe query's hole column). The map's value lists row indices,
// not copies — each member registration then projects only its own bucket.
std::unordered_map<VertexId, std::vector<size_t>> PartitionRowsByColumn(
    const QueryResult& result, size_t col);

}  // namespace wukongs

#endif  // SRC_ENGINE_BINDING_H_
