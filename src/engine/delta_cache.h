// Per-continuous-query delta cache (DESIGN.md §5.9).
//
// Consecutive triggers of a sliding-window continuous query share almost the
// whole window: only one batch slides in and one slides out per step. Window
// contents are organized per batch (transient slices, per-batch stream-index
// entries), which is exactly the granularity needed for delta evaluation —
// so the cache memoizes, per window slice, the binding-table *contribution*
// that slice makes to the query (the rows produced by joining the slice
// against the stored-graph prefix and running the remaining patterns,
// OPTIONALs and FILTERs). A trigger then unions cached contributions with
// freshly evaluated ones for the delta batches and only re-runs projection
// and solution modifiers, turning the hot path from O(window) to O(delta).
//
// Keying: one DeltaCache instance belongs to one registered query and one
// plan, so entries are keyed by (pattern-prefix epoch, window slice). The
// epoch covers everything a contribution reads outside its own slice — the
// stored graph — and any epoch change flushes the cache wholesale.
// Invalidation: the owning cluster retires entries when the TransientStore /
// StreamIndex GC a slice (eviction listeners) and when the window slides
// past a batch, so the cache never outlives the data it summarizes and its
// size stays bounded by the window span.
//
// Thread safety: triggers (worker pool) race with maintenance GC
// (invalidation listeners), so every method locks.

#ifndef SRC_ENGINE_DELTA_CACHE_H_
#define SRC_ENGINE_DELTA_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>

#include "src/common/ids.h"
#include "src/engine/columnar.h"

namespace wukongs {

class DeltaCache {
 public:
  struct Stats {
    uint64_t hits = 0;           // Contributions served from the cache.
    uint64_t misses = 0;         // Contributions evaluated fresh.
    uint64_t invalidations = 0;  // Entries retired (GC hooks + window slide).
    uint64_t epoch_flushes = 0;  // Wholesale flushes on stored-graph change.
    uint64_t plan_flushes = 0;   // Re-keying events on plan cutover (§5.14).
  };

  // Opens a trigger over window slices [lo, hi] at stored-graph `epoch`:
  // flushes everything if the epoch moved, then retires contributions the
  // window slid past. After this call the cache holds only entries inside
  // the window, bounding its size by the window span.
  void BeginTrigger(uint64_t epoch, BatchSeq lo, BatchSeq hi);

  // Re-keys the cache to a new plan version (§5.14). The prefix table and
  // every contribution are computed *under a plan* — prefix pattern
  // membership and binding column order both depend on the pattern order —
  // so a version change flushes the cache wholesale. The adaptive cutover
  // (and plan pinning) is the single owner of this call; the delta path
  // deliberately does not re-check at read time. A cutover that forgets to
  // re-key (skip_parity_gate planted mutation) is caught by the cutover
  // audit in the planner lane: a version bump on a delta-cached query must
  // leave plan_flushes >= 1 here and a cutover/pin count on the cluster —
  // the mutation advances the version while all three stay zero. (Results
  // happen not to corrupt today because fresh contributions are derived from
  // the cached prefix and inherit its column order, but that coherence is an
  // accident of prefix anchoring, not a contract.)
  void SetPlanVersion(uint64_t version);

  // Stored-graph prefix table (the window-independent plan prefix). Valid
  // until the next epoch flush; the window never invalidates it. Tables are
  // columnar: Get/Put share chunks (and their arenas) with the caller rather
  // than copying rows, per the §5.13 ownership rules. The row pipeline
  // converts through the row-view adapter at this boundary, so contribution
  // keys (BatchSeq) and row order are identical across pipelines.
  bool GetPrefix(ColumnarTable* out) const;
  void PutPrefix(const ColumnarTable& table);

  // Per-slice contribution. Get counts a hit or a miss; every miss is
  // expected to be followed by a Put once the slice is evaluated.
  bool GetContribution(BatchSeq seq, ColumnarTable* out);
  void PutContribution(BatchSeq seq, const ColumnarTable& table);

  // Invalidation hook fired when the transient store / stream index GC
  // slices below `min_live_seq`. Returns entries retired.
  uint64_t InvalidateBelow(BatchSeq min_live_seq);
  // Wholesale flush (node crash, degradation, epoch change). Returns entries
  // retired (prefix included).
  uint64_t InvalidateAll();

  Stats stats() const;
  size_t EntryCount() const;   // Cached contributions (prefix excluded).
  size_t MemoryBytes() const;

 private:
  uint64_t InvalidateAllLocked();

  mutable std::mutex mu_;
  uint64_t epoch_ = 0;
  bool epoch_set_ = false;
  uint64_t plan_version_ = 0;
  bool plan_version_set_ = false;
  bool prefix_valid_ = false;
  ColumnarTable prefix_;
  std::map<BatchSeq, ColumnarTable> contributions_;
  Stats stats_;
};

}  // namespace wukongs

#endif  // SRC_ENGINE_DELTA_CACHE_H_
