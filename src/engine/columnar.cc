#include "src/engine/columnar.h"

#include <algorithm>
#include <cassert>

namespace wukongs {

namespace {

// Thread-local freelist of recycled arena blocks (§5.13). Column arenas are
// query-lifetime: a window recompute allocates a few hundred KB of id
// columns and frees them microseconds later. Block-sized requests sit right
// at the allocator's mmap threshold, so without recycling every query pays
// munmap on teardown and first-touch page faults on the next — which
// dominates sub-millisecond recomputes. The pool keeps a bounded stack of
// freed blocks per thread and hands them to the next arena, first-fit by
// capacity.
struct BlockPool {
  struct Entry {
    std::unique_ptr<VertexId[]> data;
    size_t cap = 0;
  };
  static constexpr size_t kMaxPoolWords = 8 * 1024 * 1024;  // 64 MB.

  std::vector<Entry> entries;
  size_t pooled_words = 0;

  std::unique_ptr<VertexId[]> Take(size_t min_cap, size_t* cap) {
    for (size_t i = entries.size(); i-- > 0;) {
      if (entries[i].cap >= min_cap) {
        std::unique_ptr<VertexId[]> data = std::move(entries[i].data);
        *cap = entries[i].cap;
        pooled_words -= entries[i].cap;
        entries.erase(entries.begin() + static_cast<ptrdiff_t>(i));
        return data;
      }
    }
    return nullptr;
  }

  void Put(std::unique_ptr<VertexId[]> data, size_t cap) {
    if (pooled_words + cap > kMaxPoolWords) {
      return;  // Over budget: let the block free normally.
    }
    pooled_words += cap;
    entries.push_back(Entry{std::move(data), cap});
  }
};

BlockPool& Pool() {
  thread_local BlockPool pool;
  return pool;
}

}  // namespace

ColumnArena::~ColumnArena() {
  BlockPool& pool = Pool();
  for (Block& b : blocks_) {
    pool.Put(std::move(b.data), b.cap);
  }
}

VertexId* ColumnArena::Allocate(size_t n) {
  if (n == 0) {
    n = 1;  // Keep every column a distinct live span.
  }
  if (blocks_.empty() || blocks_.back().used + n > blocks_.back().cap) {
    Block b;
    b.data = Pool().Take(std::max(n, kBlockWords), &b.cap);
    if (b.data == nullptr) {
      b.cap = std::max(n, kBlockWords);
      // for_overwrite: columns are write-once and written before any read,
      // so zero-filling the block would be a wasted pass over it.
      b.data = std::make_unique_for_overwrite<VertexId[]>(b.cap);
    }
    blocks_.push_back(std::move(b));
  }
  Block& b = blocks_.back();
  VertexId* out = b.data.get() + b.used;
  b.used += n;
  allocated_words_ += n;
  return out;
}

void ColumnArena::ScribbleForTesting(VertexId value) {
  for (Block& b : blocks_) {
    std::fill(b.data.get(), b.data.get() + b.used, value);
  }
}

ColumnarTable::ColumnarTable(const ColumnarTable& other) { *this = other; }

ColumnarTable& ColumnarTable::operator=(const ColumnarTable& other) {
  if (this != &other) {
    vars_ = other.vars_;
    chunks_ = other.chunks_;
    own_ = other.own_;
    arenas_ = other.arenas_;
    open_capacity_ = 0;  // The trailing chunk belongs to `other`'s writer.
    unit_failed_ = other.unit_failed_;
  }
  return *this;
}

int ColumnarTable::ColumnOf(int var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t ColumnarTable::num_rows() const {
  if (vars_.empty()) {
    return unit_failed_ ? 0 : 1;
  }
  size_t n = 0;
  for (const ColumnarChunk& ch : chunks_) {
    n += ch.active();
  }
  return n;
}

int ColumnarTable::AddColumn(int var) {
  assert(ColumnOf(var) < 0);
  assert(chunks_.empty() && "AddColumn on a populated table; rebuild instead");
  vars_.push_back(var);
  return static_cast<int>(vars_.size() - 1);
}

ColumnArena* ColumnarTable::arena() {
  if (own_ == nullptr) {
    own_ = std::make_shared<ColumnArena>();
    arenas_.push_back(own_);
  }
  return own_.get();
}

ColumnarChunk ColumnarTable::MakeChunk(size_t cap) {
  ColumnarChunk ch;
  ch.cols.resize(vars_.size());
  ColumnArena* a = arena();
  for (size_t c = 0; c < vars_.size(); ++c) {
    ch.cols[c] = a->Allocate(cap);
  }
  return ch;
}

ColumnarChunk* ColumnarTable::StartChunk(size_t cap) {
  chunks_.push_back(MakeChunk(cap));
  open_capacity_ = cap;
  return &chunks_.back();
}

void ColumnarTable::AppendRow(const VertexId* row) {
  assert(!vars_.empty());
  if (chunks_.empty() || chunks_.back().size >= open_capacity_) {
    StartChunk(kColumnarChunkRows);
  }
  ColumnarChunk& ch = chunks_.back();
  for (size_t c = 0; c < vars_.size(); ++c) {
    ch.cols[c][ch.size] = row[c];
  }
  ++ch.size;
}

void ColumnarTable::AppendTable(const ColumnarTable& other) {
  assert(vars_ == other.vars_);
  for (const ColumnarChunk& ch : other.chunks_) {
    if (ch.active() > 0) {
      chunks_.push_back(ch);
    }
  }
  for (const auto& a : other.arenas_) {
    if (std::find(arenas_.begin(), arenas_.end(), a) == arenas_.end()) {
      arenas_.push_back(a);
    }
  }
  open_capacity_ = 0;  // The trailing chunk is adopted, hence immutable.
}

void ColumnarTable::Compact() {
  open_capacity_ = 0;
  for (ColumnarChunk& ch : chunks_) {
    if (ch.dense) {
      continue;
    }
    ColumnarChunk next = MakeChunk(ch.sel.size());
    for (size_t c = 0; c < vars_.size(); ++c) {
      GatherColumn(ch.cols[c], ch.sel.data(), ch.sel.size(), next.cols[c]);
    }
    next.size = ch.sel.size();
    ch = std::move(next);
  }
}

BindingTable ColumnarTable::ToRows() const {
  BindingTable rows;
  for (int v : vars_) {
    rows.AddColumn(v);
  }
  if (vars_.empty()) {
    if (unit_failed_) {
      rows.FailUnit();
    }
    return rows;
  }
  std::vector<VertexId> buf(vars_.size());
  ForEachActiveRow([&](const ColumnarChunk& ch, size_t r) {
    for (size_t c = 0; c < buf.size(); ++c) {
      buf[c] = ch.cols[c][r];
    }
    rows.AppendRow(buf.data());
  });
  return rows;
}

ColumnarTable ColumnarTable::FromRows(const BindingTable& rows) {
  ColumnarTable t;
  for (int v : rows.vars()) {
    t.AddColumn(v);
  }
  if (rows.num_cols() == 0) {
    if (rows.num_rows() == 0) {
      t.FailUnit();
    }
    return t;
  }
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    t.AppendRow(rows.Row(r));
  }
  return t;
}

size_t ColumnarTable::MemoryBytes() const {
  size_t bytes = vars_.capacity() * sizeof(int);
  for (const auto& a : arenas_) {
    bytes += a->bytes();
  }
  for (const ColumnarChunk& ch : chunks_) {
    bytes += ch.sel.capacity() * sizeof(uint32_t) +
             ch.cols.capacity() * sizeof(VertexId*);
  }
  return bytes;
}

void ColumnarTable::ScribbleArenasForTesting(VertexId value) {
  for (const auto& a : arenas_) {
    a->ScribbleForTesting(value);
  }
}

size_t CountEqual(const VertexId* data, size_t n, VertexId v) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += data[i] == v ? 1 : 0;
  }
  return count;
}

void GatherColumn(const VertexId* src, const uint32_t* idx, size_t n,
                  VertexId* dst) {
  for (size_t i = 0; i < n; ++i) {
    dst[i] = src[idx[i]];
  }
}

SpanCache::SpanCache(size_t log2_slots)
    : slots_(size_t{1} << log2_slots), probe_limit_(8) {}

void SpanCache::Insert(VertexId v, const VertexId* nbrs, size_t n) {
  size_t s = SlotFor(v);
  size_t victim = s;
  for (size_t i = 0; i < probe_limit_; ++i) {
    size_t at = (s + i) & (slots_.size() - 1);
    Slot& slot = slots_[at];
    if (!slot.used || slot.key == v) {
      victim = at;
      break;
    }
  }
  // Full probe run: overwrite the home slot (eviction, not growth).
  slots_[victim] = Slot{v, nbrs, n, true};
}

const VertexId* SpanCache::InsertCopy(VertexId v, const VertexId* nbrs,
                                      size_t n) {
  pool_.emplace_back(nbrs, nbrs + n);
  const VertexId* stable = pool_.back().data();
  Insert(v, stable, n);
  return stable;
}

}  // namespace wukongs
