#include "src/engine/delta_cache.h"

namespace wukongs {

uint64_t DeltaCache::InvalidateAllLocked() {
  uint64_t retired = contributions_.size() + (prefix_valid_ ? 1 : 0);
  contributions_.clear();
  prefix_valid_ = false;
  prefix_ = ColumnarTable();
  return retired;
}

void DeltaCache::BeginTrigger(uint64_t epoch, BatchSeq lo, BatchSeq hi) {
  std::lock_guard lock(mu_);
  if (!epoch_set_ || epoch != epoch_) {
    if (epoch_set_ && InvalidateAllLocked() > 0) {
      ++stats_.epoch_flushes;
    }
    epoch_ = epoch;
    epoch_set_ = true;
  }
  // Retire contributions the window slid past (and, defensively, anything
  // ahead of it — a regressing trigger time never serves future slices).
  for (auto it = contributions_.begin(); it != contributions_.end();) {
    if (it->first < lo || it->first > hi) {
      it = contributions_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

void DeltaCache::SetPlanVersion(uint64_t version) {
  std::lock_guard lock(mu_);
  // The first call is always a plan change: entries cached so far were built
  // under the registration's implicit first plan, which never announces
  // itself here. The counter records the re-keying *event*, not retired
  // entries (invalidations counts those) — the cutover audit needs "was the
  // cache re-keyed at this version bump" to hold even when the cache happened
  // to be empty at that instant.
  if (!plan_version_set_ || version != plan_version_) {
    ++stats_.plan_flushes;
    InvalidateAllLocked();
  }
  plan_version_ = version;
  plan_version_set_ = true;
}

bool DeltaCache::GetPrefix(ColumnarTable* out) const {
  std::lock_guard lock(mu_);
  if (!prefix_valid_) {
    return false;
  }
  *out = prefix_;
  return true;
}

void DeltaCache::PutPrefix(const ColumnarTable& table) {
  std::lock_guard lock(mu_);
  prefix_ = table;
  prefix_valid_ = true;
}

bool DeltaCache::GetContribution(BatchSeq seq, ColumnarTable* out) {
  std::lock_guard lock(mu_);
  auto it = contributions_.find(seq);
  if (it == contributions_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  *out = it->second;
  return true;
}

void DeltaCache::PutContribution(BatchSeq seq, const ColumnarTable& table) {
  std::lock_guard lock(mu_);
  contributions_[seq] = table;
}

uint64_t DeltaCache::InvalidateBelow(BatchSeq min_live_seq) {
  std::lock_guard lock(mu_);
  uint64_t retired = 0;
  auto it = contributions_.begin();
  while (it != contributions_.end() && it->first < min_live_seq) {
    it = contributions_.erase(it);
    ++retired;
  }
  stats_.invalidations += retired;
  return retired;
}

uint64_t DeltaCache::InvalidateAll() {
  std::lock_guard lock(mu_);
  uint64_t retired = InvalidateAllLocked();
  stats_.invalidations += retired;
  return retired;
}

DeltaCache::Stats DeltaCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

size_t DeltaCache::EntryCount() const {
  std::lock_guard lock(mu_);
  return contributions_.size();
}

size_t DeltaCache::MemoryBytes() const {
  std::lock_guard lock(mu_);
  size_t bytes = prefix_valid_ ? prefix_.MemoryBytes() : 0;
  for (const auto& [seq, table] : contributions_) {
    (void)seq;
    bytes += sizeof(BatchSeq) + table.MemoryBytes();
  }
  return bytes;
}

}  // namespace wukongs
