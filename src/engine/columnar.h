// Column-major (SoA) binding tables for graph-exploration execution
// (DESIGN.md §5.13).
//
// The executor's hot loops — pattern expansion, existence checks, FILTER
// evaluation — used to walk row-major BindingTables, paying a malloc'd
// vector insert per output row. A ColumnarTable instead stores bindings as
// fixed-capacity chunks of contiguous id columns carved out of a bump-
// allocated ColumnArena, with a per-chunk selection vector so pruning steps
// (existence checks, FILTERs) drop rows without copying anything. Pattern
// expansion becomes a batched scan-join: stage (source row, neighbor) pairs
// per chunk, then gather every column with a tight index loop the compiler
// can vectorize.
//
// Ownership rules:
//  - Column data is write-once: after a chunk is published into a table, its
//    id arrays are never mutated — only the (per-table-copy) selection
//    vector changes. Copying a table is therefore O(chunks), and the
//    DeltaCache can hand the same chunks to every trigger.
//  - Arenas are shared_ptr-owned by every table that adopted chunks from
//    them (AppendTable, copies, cache entries), so a chunk handed off
//    outlives the table that built it. Resetting or reusing an arena while
//    any table still references it is the lifetime bug the
//    `stale_arena_reuse` planted mutation simulates.
//  - The row view (ToRows/FromRows) is the compatibility contract: the
//    fork-join serialization format and DeltaCache keys predate the
//    columnar layout and are defined over rows; the adapter round-trips
//    tables with row order preserved.

#ifndef SRC_ENGINE_COLUMNAR_H_
#define SRC_ENGINE_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/common/ids.h"
#include "src/engine/binding.h"

namespace wukongs {

// Nominal rows per chunk. Build-side guideline, not an invariant: a single
// high-fanout expansion may emit a larger chunk rather than split a source
// row's neighbor list across chunks.
inline constexpr size_t kColumnarChunkRows = 1024;

// Bump allocator for id columns. Blocks are never recycled while the arena
// lives; allocation never moves existing spans.
class ColumnArena {
 public:
  ColumnArena() = default;
  ~ColumnArena();
  ColumnArena(const ColumnArena&) = delete;
  ColumnArena& operator=(const ColumnArena&) = delete;

  VertexId* Allocate(size_t n);
  size_t bytes() const { return allocated_words_ * sizeof(VertexId); }

  // Overwrites every allocated word, simulating the arena being reset and
  // reused while chunks still point into it (test_hooks::stale_arena_reuse).
  void ScribbleForTesting(VertexId value);

 private:
  static constexpr size_t kBlockWords = 16 * 1024;
  struct Block {
    std::unique_ptr<VertexId[]> data;
    size_t used = 0;
    size_t cap = 0;
  };
  std::vector<Block> blocks_;
  size_t allocated_words_ = 0;
};

// One chunk: `cols[c]` holds `size` ids for variable slot c (same order for
// every column — "column length agreement"). When `dense` is false, `sel`
// lists the active physical rows, strictly increasing.
struct ColumnarChunk {
  std::vector<VertexId*> cols;
  size_t size = 0;
  bool dense = true;
  std::vector<uint32_t> sel;

  size_t active() const { return dense ? size : sel.size(); }
};

class ColumnarTable {
 public:
  ColumnarTable() = default;
  ColumnarTable(ColumnarTable&&) = default;
  ColumnarTable& operator=(ColumnarTable&&) = default;
  // Copies share chunks and arenas (column data is write-once) but close the
  // batch writer: a copy never extends the original's trailing chunk.
  ColumnarTable(const ColumnarTable& other);
  ColumnarTable& operator=(const ColumnarTable& other);

  // Column handling, mirroring BindingTable.
  int ColumnOf(int var) const;
  bool IsBound(int var) const { return ColumnOf(var) >= 0; }
  size_t num_cols() const { return vars_.size(); }
  const std::vector<int>& vars() const { return vars_; }

  // Active rows across all chunks. A table with zero columns has one
  // implicit "unit" row until explicitly failed, like BindingTable.
  size_t num_rows() const;
  void FailUnit() { unit_failed_ = true; }
  bool unit_failed() const { return unit_failed_; }

  int AddColumn(int var);  // Only while the table holds no chunks.

  std::vector<ColumnarChunk>& chunks() { return chunks_; }
  const std::vector<ColumnarChunk>& chunks() const { return chunks_; }

  // Batch writer: appends a fresh chunk whose columns can hold `cap` rows
  // and returns it for the caller to fill (set chunk->size when done). The
  // pointer is valid until the next chunk is added.
  ColumnarChunk* StartChunk(size_t cap);
  // Same allocation, but the chunk is returned by value so the caller can
  // splice it into place (e.g. replacing chunk i during an existence check).
  ColumnarChunk MakeChunk(size_t cap);

  // Row-at-a-time writer used by the row-view adapter and OPTIONAL stitching.
  void AppendRow(const VertexId* row);

  // Bag union: adopts `other`'s chunks (and arena references) without
  // copying column data. Requires identical vars.
  void AppendTable(const ColumnarTable& other);

  // Materializes selections: rewrites non-dense chunks with only their
  // active rows, in order, into this table's own arena.
  void Compact();

  // Row-view adapter (§5.13). Round-trip preserves row order exactly.
  BindingTable ToRows() const;
  static ColumnarTable FromRows(const BindingTable& rows);

  size_t MemoryBytes() const;

  // Applies ColumnArena::ScribbleForTesting to every owned arena.
  void ScribbleArenasForTesting(VertexId value);

  // Iterates active rows in table order: fn(chunk, physical_row). Fn may
  // return void, or bool (false stops the walk).
  template <typename Fn>
  void ForEachActiveRow(Fn&& fn) const {
    auto call = [&](const ColumnarChunk& ch, size_t r) -> bool {
      if constexpr (std::is_void_v<decltype(fn(ch, r))>) {
        fn(ch, r);
        return true;
      } else {
        return fn(ch, r);
      }
    };
    for (const ColumnarChunk& ch : chunks_) {
      if (ch.dense) {
        for (size_t r = 0; r < ch.size; ++r) {
          if (!call(ch, r)) {
            return;
          }
        }
      } else {
        for (uint32_t r : ch.sel) {
          if (!call(ch, r)) {
            return;
          }
        }
      }
    }
  }

 private:
  ColumnArena* arena();

  std::vector<int> vars_;
  std::vector<ColumnarChunk> chunks_;
  // The arena this table allocates from (lazily created). Adopted arenas are
  // referenced via `arenas_` only — never allocated from.
  std::shared_ptr<ColumnArena> own_;
  // Every arena any chunk of this table points into (own_ included); see the
  // ownership rules in the header comment.
  std::vector<std::shared_ptr<ColumnArena>> arenas_;
  // Rows still writable in the trailing chunk (only chunks this table built
  // itself are ever written; adopted chunks are immutable).
  size_t open_capacity_ = 0;
  bool unit_failed_ = false;
};

// --- Vectorized kernels ----------------------------------------------------

// Occurrences of `v` in data[0..n). Tight branch-free-reducible loop.
size_t CountEqual(const VertexId* data, size_t n, VertexId v);

// dst[i] = src[idx[i]] for i in [0, n).
void GatherColumn(const VertexId* src, const uint32_t* idx, size_t n,
                  VertexId* dst);

// Flat adjacency-span cache for one pattern application, keyed by anchor
// vertex (the pattern fixes predicate and direction). After a non-selective
// expansion the anchor column repeats values heavily — every duplicate would
// re-probe the source's hash map (or re-pay a modeled remote read), so the
// chunk kernels consult this open-addressing table first. It is a cache, not
// a map: a full probe run evicts (overwrites) rather than growing, keeping
// probes O(1) and the footprint fixed. Spans inserted with Insert must
// outlive the cache's use (zero-copy sources); InsertCopy takes spans whose
// storage is transient (scratch buffers) and moves them into a pool the
// cache owns.
class SpanCache {
 public:
  // 2^log2_slots slots; the default (4K slots, 128 KB) keeps the probe table
  // L2-resident — anchor sets larger than that rarely repeat anyway.
  explicit SpanCache(size_t log2_slots = 12);

  // True on hit; *nbrs/*n are valid even for cached empty adjacency.
  // Inline: this probe sits on the per-row hot path of every expansion.
  bool Lookup(VertexId v, const VertexId** nbrs, size_t* n) const {
    size_t s = SlotFor(v);
    for (size_t i = 0; i < probe_limit_; ++i) {
      const Slot& slot = slots_[(s + i) & (slots_.size() - 1)];
      if (!slot.used) {
        return false;
      }
      if (slot.key == v) {
        *nbrs = slot.ptr;
        *n = slot.len;
        return true;
      }
    }
    return false;
  }

  // Caches [nbrs, nbrs+n) by reference. Caller guarantees span lifetime.
  void Insert(VertexId v, const VertexId* nbrs, size_t n);

  // Copies the span into cache-owned storage, caches it, and returns the
  // stable copy (valid for the cache's lifetime even if later evicted).
  const VertexId* InsertCopy(VertexId v, const VertexId* nbrs, size_t n);

 private:
  struct Slot {
    VertexId key = 0;
    const VertexId* ptr = nullptr;
    size_t len = 0;
    bool used = false;
  };
  size_t SlotFor(VertexId v) const {
    // SplitMix64 finalizer, same mixing as KeyHash.
    uint64_t x = v;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x) & (slots_.size() - 1);
  }

  std::vector<Slot> slots_;
  size_t probe_limit_;
  // Owned copies from InsertCopy; deque-like stability via one vector per
  // entry (entries are never reused, only appended).
  std::vector<std::vector<VertexId>> pool_;
};

}  // namespace wukongs

#endif  // SRC_ENGINE_COLUMNAR_H_
