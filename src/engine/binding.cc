#include "src/engine/binding.h"

#include <cassert>

namespace wukongs {

int BindingTable::ColumnOf(int var) const {
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i] == var) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

size_t BindingTable::num_rows() const {
  if (vars_.empty()) {
    return unit_failed_ ? 0 : 1;
  }
  return data_.size() / vars_.size();
}

int BindingTable::AddColumn(int var) {
  assert(ColumnOf(var) < 0);
  assert(data_.empty() && "AddColumn on a populated table; rebuild instead");
  vars_.push_back(var);
  return static_cast<int>(vars_.size() - 1);
}

void BindingTable::AppendRow(const VertexId* row) {
  data_.insert(data_.end(), row, row + vars_.size());
}

void BindingTable::AppendRowExtended(const VertexId* row, size_t old_cols,
                                     VertexId extra) {
  assert(old_cols + 1 == vars_.size());
  if (old_cols > 0) {
    data_.insert(data_.end(), row, row + old_cols);
  }
  data_.push_back(extra);
}

void BindingTable::Clear() {
  vars_.clear();
  data_.clear();
  unit_failed_ = false;
}

std::unordered_map<VertexId, std::vector<size_t>> PartitionRowsByColumn(
    const QueryResult& result, size_t col) {
  // Column-wise two-pass partition (DESIGN.md §5.13): gather the key column
  // into a flat id array first — one value per row instead of striding whole
  // ResultValue rows through the cache — then bucket over the contiguous
  // keys. Bucket contents stay in ascending row order either way.
  std::vector<VertexId> keys;
  keys.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    keys.push_back(row[col].vid);
  }
  std::unordered_map<VertexId, std::vector<size_t>> partitions;
  partitions.reserve(keys.size());
  for (size_t r = 0; r < keys.size(); ++r) {
    partitions[keys[r]].push_back(r);
  }
  return partitions;
}

}  // namespace wukongs
