// Random query generator for the differential harness.
//
// Generates query *text* and lets the production parser turn it into an AST,
// so the differential lane exercises the same front door clients use. The
// generated subset deliberately stays inside the oracle's supported fragment
// (see reference_oracle.h): chain-shaped BGPs over stored and window scopes,
// FILTER, DISTINCT, aggregates with GROUP BY, OPTIONAL, UNION — but no
// ORDER BY / LIMIT (results are compared as bags), no self-loop patterns and
// no constant-constant patterns.
//
// The vocabulary mirrors the data the harness feeds: `edge_predicates` link
// entities to entities, `value_predicates` link entities to numeric literals
// (so FILTER and SUM/AVG/MIN/MAX have something to chew on).

#ifndef SRC_TESTKIT_QUERY_GEN_H_
#define SRC_TESTKIT_QUERY_GEN_H_

#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/rdf/triple.h"

namespace wukongs::testkit {

struct GenVocab {
  std::vector<std::string> entities;
  std::vector<std::string> values;  // Strings that parse as numbers.
  std::vector<std::string> edge_predicates;
  std::vector<std::string> value_predicates;
  std::vector<std::string> streams;  // Declaration order == StreamId order.
};

class QueryGenerator {
 public:
  QueryGenerator(GenVocab vocab, uint64_t batch_interval_ms);

  // One-shot query text; absolute window bounds stay within
  // [min_ms, horizon_ms] — min_ms is the caller's GC horizon (windows must
  // not reach into evicted history). horizon_ms < min_ms + interval
  // generates stored-only queries.
  std::string OneShot(Rng* rng, StreamTime min_ms, StreamTime horizon_ms) const;

  // Continuous query text named `name`, with RANGE/STEP windows whose STEP is
  // a multiple of the batch interval (keeps harness-chosen window ends
  // aligned without loss of generality).
  std::string Continuous(Rng* rng, const std::string& name) const;

 private:
  // Shared body builder; fills `windows_out` with the indexes of
  // vocab.streams used by the generated body (FROM clauses must declare them).
  std::string Body(Rng* rng, bool continuous, size_t max_windows,
                   std::vector<size_t>* windows_out, bool* has_value_var,
                   std::vector<std::string>* vars_out) const;

  const GenVocab vocab_;
  const uint64_t interval_ms_;
};

}  // namespace wukongs::testkit

#endif  // SRC_TESTKIT_QUERY_GEN_H_
