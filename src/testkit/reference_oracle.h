// Reference oracle: a deliberately naive interpreter for the SPARQL /
// C-SPARQL subset, used as the executable specification the real engine is
// differentially tested against (DESIGN.md §5.7).
//
// The oracle shares only the parser and the AST with the production engine.
// It holds every fact — base triples plus timeless and timing stream tuples —
// in one flat vector and evaluates queries by brute force: each triple
// pattern is a bag join against the multiset of facts visible in its graph
// scope. No stores, no snapshot markers, no stream index, no vector
// timestamps — visibility is recomputed from first principles on every query:
//
//   * stored graph at snapshot SN:  base facts, plus every *timeless* stream
//     fact whose batch b satisfies b <= SN * batches_per_sn - 1 (the SN-VTS
//     plan assigns batch b of every stream to SN floor(b / batches_per_sn)+1;
//     SN 0 is the base snapshot and sees no stream data);
//   * relative window [RANGE r] ending at `end`: all facts (timeless and
//     timing) of the window's stream with batch in
//     [ floor(max(end - r, 0) / interval), floor((end - 1) / interval) ],
//     empty iff end == 0;
//   * absolute window [FROM a TO b): batches [ floor(a/interval),
//     floor((b-1)/interval) ] clamped to the stable frontier of the stream —
//     empty when the frontier has not reached the lower bound.
//
// Out of scope (the generator avoids them; see DESIGN.md §5.7): self-loop
// patterns (`?x p ?x` — the engine treats the two positions as independent
// columns), constant-constant patterns (their multiplicity depends on plan
// order), ORDER BY row order and LIMIT (results are compared as bags).

#ifndef SRC_TESTKIT_REFERENCE_ORACLE_H_
#define SRC_TESTKIT_REFERENCE_ORACLE_H_

#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/engine/binding.h"
#include "src/rdf/string_server.h"
#include "src/rdf/triple.h"
#include "src/sparql/ast.h"
#include "src/stream/vts.h"

namespace wukongs::testkit {

class ReferenceOracle {
 public:
  // `strings` resolves vertex IDs for numeric filters/aggregates and must be
  // the same server the engine interns against (IDs must agree).
  ReferenceOracle(const StringServer* strings, uint64_t batch_interval_ms,
                  uint64_t batches_per_sn);

  void LoadBase(std::span<const Triple> triples);
  // Streams must be defined in the same order as on the engine side so the
  // name -> id mapping agrees.
  StreamId DefineStream(const std::string& name);
  // Records one batch's content. Feed the *post-door-shed* batch (what
  // Cluster::SetBatchLogger delivers) so shedding runs check "correct modulo
  // declared loss" exactly.
  void AddBatch(StreamId stream, BatchSeq seq, const StreamTupleVec& tuples);

  // Evaluates `q` the way the engine claims to have evaluated it: stored
  // patterns at `snapshot`, relative windows ending at `end_ms`, absolute
  // windows clamped to `stable`. For one-shot queries pass end_ms = 0.
  StatusOr<QueryResult> Evaluate(const Query& q, SnapshotNum snapshot,
                                 const VectorTimestamp& stable,
                                 StreamTime end_ms) const;

  // True when the full pattern join of `q` (or of any UNION branch) is empty
  // under the same visibility. The engine exits its pattern loop early on an
  // empty intermediate table, leaving later variables unbound; a FILTER over
  // such a variable is then rejected with kInvalidArgument even though the
  // pure bag semantics would yield an empty result. Whether that happens
  // depends on the planner's pattern order, so the harness accepts an engine
  // kInvalidArgument iff the oracle rejects too or this returns true.
  StatusOr<bool> HasEmptyJoin(const Query& q, SnapshotNum snapshot,
                              const VectorTimestamp& stable,
                              StreamTime end_ms) const;

  size_t fact_count() const { return facts_.size(); }

 private:
  struct Fact {
    int32_t stream = -1;  // -1 = base (stored) fact.
    BatchSeq seq = 0;
    bool timing = false;
    Triple triple;
  };

  // Materializes the fact multiset of one graph scope (kGraphStored or a
  // window index of `q`).
  StatusOr<std::vector<Triple>> ScopeFacts(const Query& q, int graph,
                                           SnapshotNum snapshot,
                                           const VectorTimestamp& stable,
                                           StreamTime end_ms) const;

  const StringServer* strings_;
  const uint64_t interval_ms_;
  const uint64_t batches_per_sn_;
  std::vector<Fact> facts_;
  std::unordered_map<std::string, StreamId> stream_ids_;
};

// Canonical order-insensitive form of a result: one sorted line per row.
// Two results are bag-equal iff their canonical forms are equal; the joined
// string doubles as a human-readable diff in failure messages.
std::vector<std::string> CanonicalBag(const QueryResult& result);

}  // namespace wukongs::testkit

#endif  // SRC_TESTKIT_REFERENCE_ORACLE_H_
