#include "src/testkit/query_gen.h"

#include <algorithm>
#include <cstddef>
#include <set>

namespace wukongs::testkit {
namespace {

const std::string& Pick(const std::vector<std::string>& v, Rng* rng) {
  return v[rng->Uniform(0, v.size() - 1)];
}

std::string Ms(uint64_t ms) { return std::to_string(ms) + "ms"; }

struct Pattern {
  std::string subject;
  std::string predicate;
  std::string object;
  int scope = -1;  // -1 = stored, else index into GenVocab::streams.
};

struct BodySpec {
  std::vector<Pattern> patterns;
  std::vector<std::string> vars;  // Chain variables, all bound by patterns.
  bool has_value_var = false;     // ?num is bound by a value pattern.
  std::set<size_t> windows;       // Stream indexes used by the patterns.

  std::string Text(const GenVocab& vocab) const {
    std::string out;
    for (const Pattern& p : patterns) {
      if (p.scope < 0) {
        out += p.subject + " " + p.predicate + " " + p.object + " . ";
      }
    }
    for (size_t w : windows) {
      std::string inner;
      for (const Pattern& p : patterns) {
        if (p.scope == static_cast<int>(w)) {
          inner += p.subject + " " + p.predicate + " " + p.object + " . ";
        }
      }
      out += "GRAPH " + vocab.streams[w] + " { " + inner + "} ";
    }
    return out;
  }
};

}  // namespace

QueryGenerator::QueryGenerator(GenVocab vocab, uint64_t batch_interval_ms)
    : vocab_(std::move(vocab)), interval_ms_(batch_interval_ms) {}

// Builds a chain BGP ?v0 -> ?v1 -> ... with optional entity anchor and value
// leaf, then scatters the patterns over stored + window scopes. Chain shape
// guarantees the oracle-supported fragment: no self-loops (variables are
// distinct by construction) and no constant-constant patterns (every pattern
// keeps at least one variable).
static BodySpec MakeChain(const GenVocab& vocab, Rng* rng, size_t nvars,
                          size_t min_windows, size_t max_windows,
                          bool allow_value, bool force_value) {
  BodySpec spec;
  for (size_t i = 0; i < nvars; ++i) {
    spec.vars.push_back("v" + std::to_string(i));
  }
  for (size_t i = 0; i + 1 < nvars; ++i) {
    spec.patterns.push_back({"?" + spec.vars[i], Pick(vocab.edge_predicates, rng),
                             "?" + spec.vars[i + 1], -1});
  }
  if (rng->Bernoulli(0.35)) {
    spec.patterns.push_back({Pick(vocab.entities, rng),
                             Pick(vocab.edge_predicates, rng),
                             "?" + spec.vars[0], -1});
  }
  if (force_value || (allow_value && rng->Bernoulli(0.5))) {
    size_t k = rng->Uniform(0, nvars - 1);
    spec.patterns.push_back({"?" + spec.vars[k],
                             Pick(vocab.value_predicates, rng), "?num", -1});
    spec.has_value_var = true;
  }
  max_windows = std::min({max_windows, vocab.streams.size(), spec.patterns.size()});
  if (max_windows < min_windows) {
    return spec;  // Caller asked for windows the config cannot provide.
  }
  size_t wcount = rng->Uniform(min_windows, max_windows);
  if (wcount == 0) {
    return spec;
  }
  std::vector<size_t> pool(vocab.streams.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    pool[i] = i;
  }
  std::vector<size_t> chosen;
  for (size_t i = 0; i < wcount; ++i) {
    size_t j = rng->Uniform(0, pool.size() - 1);
    chosen.push_back(pool[j]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(j));
  }
  for (Pattern& p : spec.patterns) {
    uint64_t roll = rng->Uniform(0, chosen.size());  // 0 = stored.
    p.scope = roll == 0 ? -1 : static_cast<int>(chosen[roll - 1]);
  }
  // Every chosen window must scope at least one pattern, or its FROM clause
  // would declare a window the body never reads.
  for (size_t i = 0; i < chosen.size(); ++i) {
    bool used = false;
    for (const Pattern& p : spec.patterns) {
      used |= p.scope == static_cast<int>(chosen[i]);
    }
    if (!used && i < spec.patterns.size()) {
      spec.patterns[i].scope = static_cast<int>(chosen[i]);
    }
  }
  for (const Pattern& p : spec.patterns) {
    if (p.scope >= 0) {
      spec.windows.insert(static_cast<size_t>(p.scope));
    }
  }
  return spec;
}

static std::string SelectVars(const std::vector<std::string>& vars, Rng* rng,
                              std::vector<std::string>* picked) {
  std::vector<std::string> pool = vars;
  size_t n = rng->Uniform(1, std::min<size_t>(3, pool.size()));
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    size_t j = rng->Uniform(0, pool.size() - 1);
    out += "?" + pool[j] + " ";
    picked->push_back(pool[j]);
    pool.erase(pool.begin() + static_cast<ptrdiff_t>(j));
  }
  return out;
}

static std::string MakeFilter(const BodySpec& spec, const GenVocab& vocab,
                              Rng* rng, bool entity_ok) {
  static const char* kNumOps[] = {"<", "<=", ">", ">=", "=", "!="};
  if (spec.has_value_var && rng->Bernoulli(0.5)) {
    return "FILTER (?num " + std::string(kNumOps[rng->Uniform(0, 5)]) + " " +
           std::to_string(rng->Uniform(0, 15)) + ") ";
  }
  if (entity_ok && rng->Bernoulli(0.25)) {
    const std::string& var = spec.vars[rng->Uniform(0, spec.vars.size() - 1)];
    const char* op = rng->Bernoulli(0.5) ? "=" : "!=";
    return "FILTER (?" + var + " " + op + " " + Pick(vocab.entities, rng) + ") ";
  }
  return "";
}

std::string QueryGenerator::OneShot(Rng* rng, StreamTime min_ms,
                                    StreamTime horizon_ms) const {
  const uint64_t max_b = interval_ms_ > 0 ? horizon_ms / interval_ms_ : 0;
  const uint64_t min_b = interval_ms_ > 0 ? min_ms / interval_ms_ : 0;
  const size_t max_windows = max_b >= min_b + 1 ? 2 : 0;
  const uint64_t shape = rng->Uniform(0, 3);
  const size_t nvars = rng->Uniform(2, 4);

  BodySpec spec;
  std::string body;
  std::string select;
  std::string tail;  // GROUP BY etc.
  bool distinct = false;

  if (shape == 2) {
    // UNION: branches share the chain variables (same nvars => same names),
    // so every branch binds every selectable variable.
    const size_t branches = rng->Uniform(2, 3);
    std::set<size_t> used;
    for (size_t b = 0; b < branches; ++b) {
      BodySpec branch = MakeChain(vocab_, rng, nvars, 0, max_windows,
                                  /*allow_value=*/false, /*force_value=*/false);
      used.insert(branch.windows.begin(), branch.windows.end());
      body += (b == 0 ? "{ " : "UNION { ") + branch.Text(vocab_) + "} ";
      if (b == 0) {
        spec = branch;
      }
    }
    spec.windows = used;
    body += MakeFilter(spec, vocab_, rng, /*entity_ok=*/true);
    std::vector<std::string> picked;
    select = SelectVars(spec.vars, rng, &picked);
    distinct = rng->Bernoulli(0.3);
  } else {
    spec = MakeChain(vocab_, rng, nvars, 0, max_windows,
                     /*allow_value=*/true, /*force_value=*/shape == 1);
    body = spec.Text(vocab_);
    if (shape == 3 && spec.has_value_var) {
      // Rebuild with the value pattern inside an OPTIONAL group instead.
      std::string opt;
      std::vector<Pattern> keep;
      for (const Pattern& p : spec.patterns) {
        if (p.object == "?num") {
          opt = "OPTIONAL { " + p.subject + " " + p.predicate + " ?num . } ";
        } else {
          keep.push_back(p);
        }
      }
      BodySpec required = spec;
      required.patterns = std::move(keep);
      required.windows.clear();
      for (const Pattern& p : required.patterns) {
        if (p.scope >= 0) {
          required.windows.insert(static_cast<size_t>(p.scope));
        }
      }
      spec = required;
      body = spec.Text(vocab_) + opt;
      spec.has_value_var = true;
    }
    body += MakeFilter(spec, vocab_, rng, /*entity_ok=*/true);
    if (shape == 1 && spec.has_value_var) {
      static const char* kAggs[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
      std::string agg1 = kAggs[rng->Uniform(0, 4)];
      if (rng->Bernoulli(0.6)) {
        const std::string& g = spec.vars[rng->Uniform(0, spec.vars.size() - 1)];
        select = "?" + g + " " + agg1 + "(?num) ";
        tail = "GROUP BY ?" + g + " ";
      } else {
        select = agg1 + "(?num) ";
        if (rng->Bernoulli(0.5)) {
          select += std::string(kAggs[rng->Uniform(0, 4)]) + "(?num) ";
        }
      }
    } else {
      std::vector<std::string> vars = spec.vars;
      if (spec.has_value_var) {
        vars.push_back("num");  // In shape 3 this exercises unbound output.
      }
      std::vector<std::string> picked;
      select = SelectVars(vars, rng, &picked);
      distinct = rng->Bernoulli(0.3);
    }
  }

  std::string from;
  for (size_t w : spec.windows) {
    uint64_t a = interval_ms_ * rng->Uniform(min_b, max_b - 1);
    uint64_t b = interval_ms_ * rng->Uniform(a / interval_ms_ + 1, max_b);
    from += "FROM STREAM " + vocab_.streams[w] + " [FROM " + Ms(a) + " TO " +
            Ms(b) + "] ";
  }
  return "SELECT " + std::string(distinct ? "DISTINCT " : "") + select + from +
         "WHERE { " + body + "} " + tail;
}

std::string QueryGenerator::Continuous(Rng* rng, const std::string& name) const {
  const size_t nvars = rng->Uniform(2, 4);
  const uint64_t shape = rng->Uniform(0, 2);  // 0 plain, 1 aggregate, 2 union.

  BodySpec spec;
  std::string body;
  std::string select;
  std::string tail;
  bool distinct = false;

  if (shape == 2) {
    const size_t branches = 2;
    std::set<size_t> used;
    for (size_t b = 0; b < branches; ++b) {
      // First branch must hit a window: a continuous query with no stream
      // scope is rejected by the parser.
      BodySpec branch = MakeChain(vocab_, rng, nvars, b == 0 ? 1 : 0, 2,
                                  /*allow_value=*/false, /*force_value=*/false);
      used.insert(branch.windows.begin(), branch.windows.end());
      body += (b == 0 ? "{ " : "UNION { ") + branch.Text(vocab_) + "} ";
      if (b == 0) {
        spec = branch;
      }
    }
    spec.windows = used;
    body += MakeFilter(spec, vocab_, rng, /*entity_ok=*/true);
    std::vector<std::string> picked;
    select = SelectVars(spec.vars, rng, &picked);
    distinct = rng->Bernoulli(0.3);
  } else {
    spec = MakeChain(vocab_, rng, nvars, 1, 2,
                     /*allow_value=*/true, /*force_value=*/shape == 1);
    body = spec.Text(vocab_) + MakeFilter(spec, vocab_, rng, /*entity_ok=*/true);
    if (shape == 1 && spec.has_value_var) {
      static const char* kAggs[] = {"COUNT", "SUM", "AVG", "MIN", "MAX"};
      const std::string& g = spec.vars[rng->Uniform(0, spec.vars.size() - 1)];
      select = "?" + g + " " + kAggs[rng->Uniform(0, 4)] + "(?num) ";
      tail = "GROUP BY ?" + g + " ";
    } else {
      std::vector<std::string> vars = spec.vars;
      if (spec.has_value_var) {
        vars.push_back("num");
      }
      std::vector<std::string> picked;
      select = SelectVars(vars, rng, &picked);
      distinct = rng->Bernoulli(0.3);
    }
  }

  std::string from;
  for (size_t w : spec.windows) {
    uint64_t range = interval_ms_ * rng->Uniform(1, 4);
    uint64_t step = interval_ms_ * rng->Uniform(1, 2);
    from += "FROM STREAM " + vocab_.streams[w] + " [RANGE " + Ms(range) +
            " STEP " + Ms(step) + "] ";
  }
  return "REGISTER QUERY " + name + " AS SELECT " +
         std::string(distinct ? "DISTINCT " : "") + select + from + "WHERE { " +
         body + "} " + tail;
}

}  // namespace wukongs::testkit
