// Snapshot-consistency checker: audits what the engine *claims* about an
// execution against the coordinator protocol recomputed from first principles
// (DESIGN.md §5.7).
//
// The checker never looks inside the engine: it sees only the captured
// Stable_VTS (taken by the harness before the execution), the query, and the
// QueryExecution the engine returned. From the SN-VTS plan definition —
// snapshot k of every stream covers batches up to k * batches_per_sn - 1 —
// it independently derives the Stable_SN the execution was entitled to read,
// and verifies:
//
//   * one-shot:   exec.snapshot == recomputed Stable_SN, and snapshots never
//                 regress across successive one-shots (read monotonicity);
//   * continuous: window ends advance strictly per registration, every end is
//                 aligned to each window's STEP, and the final batch of every
//                 window is covered by the captured Stable_VTS (the trigger
//                 condition held for real, not just per the engine's word).
//
// The planted stale-SN mutation (test_hooks::stale_sn_read) is exactly the
// defect class the one-shot audit exists to catch.

#ifndef SRC_TESTKIT_SNAPSHOT_CHECKER_H_
#define SRC_TESTKIT_SNAPSHOT_CHECKER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/status.h"
#include "src/sparql/ast.h"
#include "src/stream/vts.h"

namespace wukongs::testkit {

class SnapshotChecker {
 public:
  explicit SnapshotChecker(uint64_t batches_per_sn);

  // Largest SN whose plan target is covered by `stable`, recomputed without
  // asking the Coordinator: min over streams of floor((stable_s + 1) /
  // batches_per_sn), 0 when any stream is still at kNoBatch.
  SnapshotNum RecomputeStableSn(const VectorTimestamp& stable,
                                size_t stream_count) const;

  Status CheckOneShot(const QueryExecution& exec,
                      const VectorTimestamp& stable, size_t stream_count);

  // `stream_ids` is parallel to q.windows (the registration's resolution).
  Status CheckContinuous(uint64_t handle, const Query& q,
                         const std::vector<StreamId>& stream_ids,
                         const QueryExecution& exec,
                         const VectorTimestamp& stable, uint64_t interval_ms);

 private:
  const uint64_t batches_per_sn_;
  SnapshotNum last_oneshot_sn_ = 0;
  std::unordered_map<uint64_t, StreamTime> last_end_;  // Per handle.
};

}  // namespace wukongs::testkit

#endif  // SRC_TESTKIT_SNAPSHOT_CHECKER_H_
