// Seeded schedule fuzzer (differential harness, DESIGN.md §5.7).
//
// A ScheduleController is a single source of scheduling nondeterminism that
// the production code consults at its decision points: cross-stream batch
// delivery order (Cluster::AdvanceStreams), maintenance-pass timing
// (MaintenanceDaemon) and worker dequeue order (WorkerPool). Every decision
// is drawn from one seeded Rng, so a given seed replays the same schedule —
// the harness turns "flaky under some interleaving" into "failing for
// seed N", which a developer can replay at will.
//
// The controller never invents schedules the real system could not produce:
// per-stream batch order is preserved (streams are in-order by contract),
// maintenance jitter only delays a pass within one period, and a worker may
// pop any queued task (the paper's pool makes no FIFO promise to clients).

#ifndef SRC_TESTKIT_SCHEDULE_CONTROLLER_H_
#define SRC_TESTKIT_SCHEDULE_CONTROLLER_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/rng.h"
#include "src/stream/batch.h"

namespace wukongs::testkit {

class ScheduleController {
 public:
  explicit ScheduleController(uint64_t seed) : rng_(seed) {}

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  // Permutes the cross-stream interleaving of `batches` while keeping each
  // stream's batches in ascending seq order (a random topological shuffle of
  // the per-stream chains).
  void PermuteBatchOrder(std::vector<StreamBatch>* batches);

  // Extra delay before the next periodic maintenance pass, in [0, period].
  std::chrono::milliseconds MaintenanceJitter(std::chrono::milliseconds period);

  // Index of the queued task the next worker should pop, in [0, queue_size).
  size_t PickIndex(size_t queue_size);

  // Scheduling decisions drawn so far (telemetry; also a cheap way for tests
  // to assert the hooks are actually reached).
  uint64_t decisions() const {
    std::lock_guard lock(mu_);
    return decisions_;
  }

 private:
  mutable std::mutex mu_;
  Rng rng_;
  uint64_t decisions_ = 0;
};

}  // namespace wukongs::testkit

#endif  // SRC_TESTKIT_SCHEDULE_CONTROLLER_H_
