#include "src/testkit/snapshot_checker.h"

#include <string>

namespace wukongs::testkit {

SnapshotChecker::SnapshotChecker(uint64_t batches_per_sn)
    : batches_per_sn_(batches_per_sn) {}

SnapshotNum SnapshotChecker::RecomputeStableSn(const VectorTimestamp& stable,
                                               size_t stream_count) const {
  if (stream_count == 0) {
    return 0;
  }
  SnapshotNum sn = ~SnapshotNum{0};
  for (size_t s = 0; s < stream_count; ++s) {
    BatchSeq have = stable.Get(static_cast<StreamId>(s));
    if (have == kNoBatch) {
      return 0;
    }
    // SN k needs batches up to k * batches_per_sn - 1, i.e. k <= (have+1)/bps.
    SnapshotNum covered = (have + 1) / batches_per_sn_;
    sn = covered < sn ? covered : sn;
  }
  return sn;
}

Status SnapshotChecker::CheckOneShot(const QueryExecution& exec,
                                     const VectorTimestamp& stable,
                                     size_t stream_count) {
  SnapshotNum expect = RecomputeStableSn(stable, stream_count);
  if (exec.snapshot != expect) {
    return Status::Internal(
        "snapshot audit: one-shot read SN " + std::to_string(exec.snapshot) +
        " but the captured Stable_VTS entitles SN " + std::to_string(expect));
  }
  if (exec.snapshot < last_oneshot_sn_) {
    return Status::Internal(
        "snapshot audit: one-shot SN regressed from " +
        std::to_string(last_oneshot_sn_) + " to " +
        std::to_string(exec.snapshot));
  }
  last_oneshot_sn_ = exec.snapshot;
  return Status::Ok();
}

Status SnapshotChecker::CheckContinuous(uint64_t handle, const Query& q,
                                        const std::vector<StreamId>& stream_ids,
                                        const QueryExecution& exec,
                                        const VectorTimestamp& stable,
                                        uint64_t interval_ms) {
  const StreamTime end = exec.window_end_ms;
  if (end == 0) {
    return Status::Internal("snapshot audit: continuous execution reported "
                            "window_end_ms == 0");
  }
  auto [it, fresh] = last_end_.try_emplace(handle, 0);
  if (!fresh && end <= it->second) {
    return Status::Internal(
        "snapshot audit: window end went from " + std::to_string(it->second) +
        " to " + std::to_string(end) + " (prefix integrity broken)");
  }
  for (size_t w = 0; w < q.windows.size(); ++w) {
    const WindowSpec& spec = q.windows[w];
    if (spec.step_ms != 0 && end % spec.step_ms != 0) {
      return Status::Internal(
          "snapshot audit: window end " + std::to_string(end) +
          " is not aligned to STEP " + std::to_string(spec.step_ms));
    }
    // Trigger condition, re-derived: the window's last batch must be covered
    // by the Stable_VTS captured before the execution.
    BatchSeq need = (end - 1) / interval_ms;
    BatchSeq have = stable.Get(stream_ids[w]);
    if (have == kNoBatch || have < need) {
      return Status::Internal(
          "snapshot audit: window over stream " + spec.stream_name +
          " ends at batch " + std::to_string(need) +
          " but Stable_VTS only covers " +
          (have == kNoBatch ? std::string("nothing") : std::to_string(have)));
    }
  }
  it->second = end;
  return Status::Ok();
}

}  // namespace wukongs::testkit
