#include "src/testkit/reference_oracle.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

namespace wukongs::testkit {
namespace {

// The oracle's working table. Mirrors the *semantics* of the engine's
// BindingTable (zero-column tables have one implicit unit row until failed)
// without sharing its code: rows are plain vectors, joins are nested loops.
struct Table {
  std::vector<int> vars;
  std::vector<std::vector<VertexId>> rows;
  bool unit_failed = false;

  int ColumnOf(int var) const {
    for (size_t c = 0; c < vars.size(); ++c) {
      if (vars[c] == var) {
        return static_cast<int>(c);
      }
    }
    return -1;
  }
  size_t NumRows() const {
    return vars.empty() ? (unit_failed ? 0 : 1) : rows.size();
  }
};

// One triple pattern = a bag join against `facts` (already scoped to the
// pattern's graph; predicate filtering happens here). Multiplicity in the
// data is preserved, exactly like SPARQL bag semantics.
void ApplyPattern(const TriplePattern& p, const std::vector<Triple>& facts,
                  Table* t) {
  const bool s_var = p.subject.is_var();
  const bool o_var = p.object.is_var();
  const int s_col = s_var ? t->ColumnOf(p.subject.var) : -1;
  const int o_col = o_var ? t->ColumnOf(p.object.var) : -1;
  const bool s_known = !s_var || s_col >= 0;
  const bool o_known = !o_var || o_col >= 0;
  const bool unit = t->vars.empty();
  const size_t old_rows = t->NumRows();

  auto subject_of = [&](size_t r) {
    return s_var ? t->rows[r][static_cast<size_t>(s_col)] : p.subject.constant;
  };
  auto object_of = [&](size_t r) {
    return o_var ? t->rows[r][static_cast<size_t>(o_col)] : p.object.constant;
  };

  if (s_known && o_known) {
    if (unit) {
      bool found = false;
      for (const Triple& f : facts) {
        if (f.predicate == p.predicate && f.subject == p.subject.constant &&
            f.object == p.object.constant) {
          found = true;
          break;
        }
      }
      if (!found) {
        t->unit_failed = true;
      }
      return;
    }
    std::vector<std::vector<VertexId>> next;
    for (size_t r = 0; r < old_rows; ++r) {
      size_t mult = 0;
      for (const Triple& f : facts) {
        if (f.predicate == p.predicate && f.subject == subject_of(r) &&
            f.object == object_of(r)) {
          ++mult;
        }
      }
      for (size_t m = 0; m < mult; ++m) {
        next.push_back(t->rows[r]);
      }
    }
    t->rows = std::move(next);
    return;
  }

  Table next;
  next.vars = t->vars;
  if (!s_known) {
    next.vars.push_back(p.subject.var);
  }
  if (!o_known) {
    next.vars.push_back(p.object.var);
  }
  auto emit = [&](size_t r, const Triple& f) {
    std::vector<VertexId> row =
        unit ? std::vector<VertexId>{} : t->rows[r];
    if (!s_known) {
      row.push_back(f.subject);
    }
    if (!o_known) {
      row.push_back(f.object);
    }
    next.rows.push_back(std::move(row));
  };
  for (size_t r = 0; r < old_rows; ++r) {
    for (const Triple& f : facts) {
      if (f.predicate != p.predicate) {
        continue;
      }
      if (s_known && f.subject != subject_of(r)) {
        continue;
      }
      if (o_known && f.object != object_of(r)) {
        continue;
      }
      emit(r, f);
    }
  }
  *t = std::move(next);
}

bool NumericValue(const StringServer* strings, VertexId v, double* out) {
  if (strings == nullptr) {
    return false;
  }
  auto str = strings->VertexString(v);
  if (!str.ok()) {
    return false;
  }
  char* end = nullptr;
  double num = std::strtod(str->c_str(), &end);
  if (end == str->c_str()) {
    return false;
  }
  *out = num;
  return true;
}

Status ApplyFilters(const Query& q, const StringServer* strings, Table* t) {
  if (q.filters.empty() || t->vars.empty()) {
    return Status::Ok();
  }
  for (const FilterExpr& f : q.filters) {
    int col = t->ColumnOf(f.var);
    if (col < 0) {
      return Status::InvalidArgument("FILTER references unbound variable ?" +
                                     q.var_names[static_cast<size_t>(f.var)]);
    }
    std::vector<std::vector<VertexId>> next;
    for (auto& row : t->rows) {
      VertexId v = row[static_cast<size_t>(col)];
      bool keep = false;
      if (f.numeric) {
        double num = 0.0;
        if (!NumericValue(strings, v, &num)) {
          continue;  // Non-numeric binding never matches a numeric filter.
        }
        switch (f.op) {
          case FilterExpr::Op::kLt: keep = num < f.number; break;
          case FilterExpr::Op::kLe: keep = num <= f.number; break;
          case FilterExpr::Op::kGt: keep = num > f.number; break;
          case FilterExpr::Op::kGe: keep = num >= f.number; break;
          case FilterExpr::Op::kEq: keep = num == f.number; break;
          case FilterExpr::Op::kNe: keep = num != f.number; break;
        }
      } else {
        bool eq = (v == f.constant);
        keep = (f.op == FilterExpr::Op::kEq) ? eq
               : (f.op == FilterExpr::Op::kNe) ? !eq
                                               : false;
      }
      if (keep) {
        next.push_back(std::move(row));
      }
    }
    t->rows = std::move(next);
  }
  return Status::Ok();
}

// OPTIONAL = per-row left join: the group runs seeded with the row's
// bindings; no match keeps the row with the group's variables unbound.
Status ApplyOptionals(const Query& q,
                      const std::vector<std::vector<Triple>>& scope_facts,
                      Table* t) {
  for (const std::vector<TriplePattern>& group : q.optionals) {
    std::vector<int> new_vars;
    for (const TriplePattern& p : group) {
      for (const Term* term : {&p.subject, &p.object}) {
        if (term->is_var() && t->ColumnOf(term->var) < 0 &&
            std::find(new_vars.begin(), new_vars.end(), term->var) ==
                new_vars.end()) {
          new_vars.push_back(term->var);
        }
      }
    }
    Table next;
    next.vars = t->vars;
    next.vars.insert(next.vars.end(), new_vars.begin(), new_vars.end());
    const size_t old_cols = t->vars.size();
    for (size_t r = 0; r < t->NumRows(); ++r) {
      Table seed;
      seed.vars = t->vars;
      if (old_cols > 0) {
        seed.rows.push_back(t->rows[r]);
      }
      bool dead = false;
      for (const TriplePattern& p : group) {
        size_t scope = p.graph == kGraphStored ? 0 : static_cast<size_t>(p.graph) + 1;
        ApplyPattern(p, scope_facts[scope], &seed);
        if (seed.NumRows() == 0) {
          dead = true;
          break;
        }
      }
      std::vector<VertexId> base =
          old_cols > 0 ? t->rows[r] : std::vector<VertexId>{};
      if (dead) {
        std::vector<VertexId> row = base;
        row.resize(old_cols + new_vars.size(), kUnboundBinding);
        next.rows.push_back(std::move(row));
        continue;
      }
      for (size_t sr = 0; sr < seed.NumRows(); ++sr) {
        std::vector<VertexId> row = base;
        row.resize(old_cols + new_vars.size(), kUnboundBinding);
        for (size_t c = 0; c < new_vars.size(); ++c) {
          int col = seed.ColumnOf(new_vars[c]);
          if (col >= 0) {
            row[old_cols + c] = seed.rows[sr][static_cast<size_t>(col)];
          }
        }
        next.rows.push_back(std::move(row));
      }
    }
    *t = std::move(next);
  }
  return Status::Ok();
}

StatusOr<QueryResult> Project(const Query& q, const StringServer* strings,
                              const Table& t) {
  QueryResult result;
  for (const SelectItem& item : q.select) {
    std::string name = q.var_names[static_cast<size_t>(item.var)];
    switch (item.agg) {
      case AggKind::kNone: break;
      case AggKind::kCount: name = "COUNT(" + name + ")"; break;
      case AggKind::kSum: name = "SUM(" + name + ")"; break;
      case AggKind::kAvg: name = "AVG(" + name + ")"; break;
      case AggKind::kMin: name = "MIN(" + name + ")"; break;
      case AggKind::kMax: name = "MAX(" + name + ")"; break;
    }
    result.columns.push_back(std::move(name));
  }
  if (t.NumRows() == 0) {
    return result;
  }

  if (!q.has_aggregates()) {
    std::vector<int> cols;
    for (const SelectItem& item : q.select) {
      int col = t.ColumnOf(item.var);
      if (col < 0) {
        return Status::InvalidArgument("selected variable is unbound");
      }
      cols.push_back(col);
    }
    for (const auto& row : t.rows) {
      std::vector<ResultValue> out;
      out.reserve(cols.size());
      for (int c : cols) {
        out.push_back(ResultValue::Vertex(row[static_cast<size_t>(c)]));
      }
      result.rows.push_back(std::move(out));
    }
    return result;
  }

  std::vector<int> group_cols;
  for (int var : q.group_by) {
    int col = t.ColumnOf(var);
    if (col < 0) {
      return Status::InvalidArgument("GROUP BY variable is unbound");
    }
    group_cols.push_back(col);
  }
  struct AggState {
    size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    bool seen = false;
  };
  // Ordered map: group output order matches the engine's std::map iteration.
  std::map<std::vector<VertexId>, std::vector<AggState>> groups;
  for (const auto& row : t.rows) {
    std::vector<VertexId> gkey;
    gkey.reserve(group_cols.size());
    for (int c : group_cols) {
      gkey.push_back(row[static_cast<size_t>(c)]);
    }
    auto& states = groups[gkey];
    states.resize(q.select.size());
    for (size_t i = 0; i < q.select.size(); ++i) {
      const SelectItem& item = q.select[i];
      if (item.agg == AggKind::kNone) {
        continue;
      }
      int col = t.ColumnOf(item.var);
      if (col < 0) {
        return Status::InvalidArgument("aggregated variable is unbound");
      }
      AggState& st = states[i];
      st.count += 1;
      if (item.agg != AggKind::kCount) {
        double num = 0.0;
        if (NumericValue(strings, row[static_cast<size_t>(col)], &num)) {
          st.sum += num;
          st.min = st.seen ? std::min(st.min, num) : num;
          st.max = st.seen ? std::max(st.max, num) : num;
          st.seen = true;
        }
      }
    }
  }
  for (const auto& [gkey, states] : groups) {
    std::vector<ResultValue> row;
    row.reserve(q.select.size());
    for (size_t i = 0; i < q.select.size(); ++i) {
      const SelectItem& item = q.select[i];
      if (item.agg == AggKind::kNone) {
        int col = t.ColumnOf(item.var);
        bool found = false;
        for (size_t g = 0; g < group_cols.size(); ++g) {
          if (group_cols[g] == col) {
            row.push_back(ResultValue::Vertex(gkey[g]));
            found = true;
            break;
          }
        }
        if (!found) {
          return Status::InvalidArgument(
              "non-aggregated select variable must appear in GROUP BY");
        }
        continue;
      }
      const AggState& st = states[i];
      switch (item.agg) {
        case AggKind::kCount:
          row.push_back(ResultValue::Number(static_cast<double>(st.count)));
          break;
        case AggKind::kSum:
          row.push_back(ResultValue::Number(st.sum));
          break;
        case AggKind::kAvg:
          row.push_back(ResultValue::Number(
              st.count > 0 && st.seen ? st.sum / static_cast<double>(st.count)
                                      : 0.0));
          break;
        case AggKind::kMin:
          row.push_back(ResultValue::Number(st.seen ? st.min : 0.0));
          break;
        case AggKind::kMax:
          row.push_back(ResultValue::Number(st.seen ? st.max : 0.0));
          break;
        case AggKind::kNone:
          break;
      }
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

Status Finalize(const Query& q, const StringServer* strings,
                QueryResult* result) {
  if (q.distinct) {
    std::vector<std::vector<ResultValue>> unique;
    std::set<std::vector<std::pair<bool, uint64_t>>> seen;
    for (auto& row : result->rows) {
      std::vector<std::pair<bool, uint64_t>> key;
      key.reserve(row.size());
      for (const ResultValue& v : row) {
        key.emplace_back(v.is_number,
                         v.is_number ? static_cast<uint64_t>(v.number * 1e6)
                                     : v.vid);
      }
      if (seen.insert(std::move(key)).second) {
        unique.push_back(std::move(row));
      }
    }
    result->rows = std::move(unique);
  }
  if (!q.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> keys;
    for (const OrderKey& key : q.order_by) {
      bool found = false;
      for (size_t c = 0; c < q.select.size(); ++c) {
        if (q.select[c].var == key.var && q.select[c].agg == AggKind::kNone) {
          keys.emplace_back(c, key.descending);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument(
            "ORDER BY variable must appear (un-aggregated) in SELECT");
      }
    }
    auto value_cmp = [strings](const ResultValue& a, const ResultValue& b) -> int {
      if (a.is_number != b.is_number) {
        return a.is_number ? -1 : 1;
      }
      if (a.is_number) {
        return a.number < b.number ? -1 : (a.number > b.number ? 1 : 0);
      }
      if (strings != nullptr) {
        auto sa = strings->VertexString(a.vid);
        auto sb = strings->VertexString(b.vid);
        if (sa.ok() && sb.ok()) {
          return sa->compare(*sb) < 0 ? -1 : (*sa == *sb ? 0 : 1);
        }
      }
      return a.vid < b.vid ? -1 : (a.vid > b.vid ? 1 : 0);
    };
    std::stable_sort(result->rows.begin(), result->rows.end(),
                     [&](const auto& ra, const auto& rb) {
                       for (const auto& [col, desc] : keys) {
                         int cmp = value_cmp(ra[col], rb[col]);
                         if (cmp != 0) {
                           return desc ? cmp > 0 : cmp < 0;
                         }
                       }
                       return false;
                     });
  }
  if (q.limit > 0 && result->rows.size() > q.limit) {
    result->rows.resize(q.limit);
  }
  return Status::Ok();
}

}  // namespace

ReferenceOracle::ReferenceOracle(const StringServer* strings,
                                 uint64_t batch_interval_ms,
                                 uint64_t batches_per_sn)
    : strings_(strings),
      interval_ms_(batch_interval_ms),
      batches_per_sn_(batches_per_sn) {}

void ReferenceOracle::LoadBase(std::span<const Triple> triples) {
  for (const Triple& t : triples) {
    facts_.push_back(Fact{-1, 0, false, t});
  }
}

StreamId ReferenceOracle::DefineStream(const std::string& name) {
  StreamId id = static_cast<StreamId>(stream_ids_.size());
  stream_ids_.emplace(name, id);
  return id;
}

void ReferenceOracle::AddBatch(StreamId stream, BatchSeq seq,
                               const StreamTupleVec& tuples) {
  for (const StreamTuple& t : tuples) {
    facts_.push_back(Fact{static_cast<int32_t>(stream), seq,
                          t.kind == TupleKind::kTiming, t.triple});
  }
}

StatusOr<std::vector<Triple>> ReferenceOracle::ScopeFacts(
    const Query& q, int graph, SnapshotNum snapshot,
    const VectorTimestamp& stable, StreamTime end_ms) const {
  std::vector<Triple> out;
  if (graph == kGraphStored) {
    // Base facts plus timeless stream facts whose batch the SN-VTS plan
    // assigns to a snapshot <= `snapshot` (b <= snapshot*batches_per_sn - 1).
    for (const Fact& f : facts_) {
      if (f.stream < 0) {
        out.push_back(f.triple);
      } else if (!f.timing && f.seq < snapshot * batches_per_sn_) {
        out.push_back(f.triple);
      }
    }
    return out;
  }
  const WindowSpec& w = q.windows[static_cast<size_t>(graph)];
  auto it = stream_ids_.find(w.stream_name);
  if (it == stream_ids_.end()) {
    return Status::NotFound("oracle: unknown stream " + w.stream_name);
  }
  const int32_t sid = static_cast<int32_t>(it->second);
  BatchSeq lo = 0;
  BatchSeq hi = 0;
  bool empty = false;
  if (w.absolute) {
    lo = w.from_ms / interval_ms_;
    hi = (w.to_ms - 1) / interval_ms_;
    BatchSeq have = stable.Get(it->second);
    if (have == kNoBatch || have < lo) {
      empty = true;
    } else if (hi > have) {
      hi = have;
    }
  } else {
    if (end_ms == 0) {
      empty = true;
    } else {
      StreamTime start = end_ms > w.range_ms ? end_ms - w.range_ms : 0;
      lo = start / interval_ms_;
      hi = (end_ms - 1) / interval_ms_;
    }
  }
  if (empty) {
    return out;
  }
  for (const Fact& f : facts_) {
    if (f.stream == sid && f.seq >= lo && f.seq <= hi) {
      out.push_back(f.triple);
    }
  }
  return out;
}

StatusOr<QueryResult> ReferenceOracle::Evaluate(const Query& q,
                                                SnapshotNum snapshot,
                                                const VectorTimestamp& stable,
                                                StreamTime end_ms) const {
  // Materialize every scope once: index 0 = stored, 1 + w = window w.
  std::vector<std::vector<Triple>> scopes;
  auto stored = ScopeFacts(q, kGraphStored, snapshot, stable, end_ms);
  if (!stored.ok()) {
    return stored.status();
  }
  scopes.push_back(std::move(*stored));
  for (size_t w = 0; w < q.windows.size(); ++w) {
    auto facts = ScopeFacts(q, static_cast<int>(w), snapshot, stable, end_ms);
    if (!facts.ok()) {
      return facts.status();
    }
    scopes.push_back(std::move(*facts));
  }

  // No early exit on an empty intermediate join: the engine breaks out of
  // its (planner-ordered) pattern loop, which makes its set of bound columns
  // — and hence "unbound FILTER variable" rejections — plan-order dependent.
  // The oracle instead evaluates every pattern (cheap: joins against a
  // zero-row table stay zero-row), so all pattern variables are always bound
  // and the result is the pure bag semantics. HasEmptyJoin() lets the
  // harness reconcile the engine's early-exit rejections.
  auto eval_patterns = [&](const std::vector<TriplePattern>& patterns) {
    Table t;
    for (const TriplePattern& p : patterns) {
      size_t scope = p.graph == kGraphStored ? 0 : static_cast<size_t>(p.graph) + 1;
      ApplyPattern(p, scopes[scope], &t);
    }
    return t;
  };

  if (!q.unions.empty()) {
    // Mirror Cluster::ExecuteUnion: each branch runs the full pipeline with
    // modifiers deferred, rows are concatenated, then DISTINCT / ORDER BY /
    // LIMIT apply once over the union.
    QueryResult total;
    for (const std::vector<TriplePattern>& branch : q.unions) {
      Query bq = q;
      bq.patterns = branch;
      bq.unions.clear();
      bq.distinct = false;
      bq.order_by.clear();
      bq.limit = 0;
      Table t = eval_patterns(branch);
      Status os = ApplyOptionals(bq, scopes, &t);
      if (!os.ok()) {
        return os;
      }
      Status fs = ApplyFilters(bq, strings_, &t);
      if (!fs.ok()) {
        return fs;
      }
      auto branch_result = Project(bq, strings_, t);
      if (!branch_result.ok()) {
        return branch_result.status();
      }
      if (total.columns.empty()) {
        total.columns = branch_result->columns;
      }
      for (auto& row : branch_result->rows) {
        total.rows.push_back(std::move(row));
      }
    }
    Status fin = Finalize(q, strings_, &total);
    if (!fin.ok()) {
      return fin;
    }
    return total;
  }

  Table t = eval_patterns(q.patterns);
  Status os = ApplyOptionals(q, scopes, &t);
  if (!os.ok()) {
    return os;
  }
  Status fs = ApplyFilters(q, strings_, &t);
  if (!fs.ok()) {
    return fs;
  }
  auto result = Project(q, strings_, t);
  if (!result.ok()) {
    return result;
  }
  Status fin = Finalize(q, strings_, &result.value());
  if (!fin.ok()) {
    return fin;
  }
  return result;
}

StatusOr<bool> ReferenceOracle::HasEmptyJoin(const Query& q,
                                             SnapshotNum snapshot,
                                             const VectorTimestamp& stable,
                                             StreamTime end_ms) const {
  std::vector<std::vector<Triple>> scopes;
  auto stored = ScopeFacts(q, kGraphStored, snapshot, stable, end_ms);
  if (!stored.ok()) {
    return stored.status();
  }
  scopes.push_back(std::move(*stored));
  for (size_t w = 0; w < q.windows.size(); ++w) {
    auto facts = ScopeFacts(q, static_cast<int>(w), snapshot, stable, end_ms);
    if (!facts.ok()) {
      return facts.status();
    }
    scopes.push_back(std::move(*facts));
  }
  auto join_empty = [&](const std::vector<TriplePattern>& patterns) {
    Table t;
    for (const TriplePattern& p : patterns) {
      size_t scope = p.graph == kGraphStored ? 0 : static_cast<size_t>(p.graph) + 1;
      ApplyPattern(p, scopes[scope], &t);
    }
    return t.NumRows() == 0;
  };
  if (q.unions.empty()) {
    return join_empty(q.patterns);
  }
  for (const std::vector<TriplePattern>& branch : q.unions) {
    if (join_empty(branch)) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> CanonicalBag(const QueryResult& result) {
  std::vector<std::string> lines;
  lines.reserve(result.rows.size());
  for (const auto& row : result.rows) {
    std::string line;
    for (const ResultValue& v : row) {
      if (!line.empty()) {
        line += '|';
      }
      if (v.is_number) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), "n:%.9g", v.number);
        line += buf;
      } else {
        line += "v:" + std::to_string(v.vid);
      }
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

}  // namespace wukongs::testkit
