#include "src/testkit/schedule_controller.h"

#include <utility>

namespace wukongs::testkit {

void ScheduleController::PermuteBatchOrder(std::vector<StreamBatch>* batches) {
  std::lock_guard lock(mu_);
  if (batches->size() < 2) {
    return;
  }
  // Stable-partition the flat list into per-stream chains (already seq-sorted
  // within a stream), then repeatedly pull the front of a random chain.
  std::vector<StreamId> stream_of;
  std::vector<std::vector<StreamBatch>> chains;
  for (StreamBatch& b : *batches) {
    size_t c = 0;
    for (; c < stream_of.size(); ++c) {
      if (stream_of[c] == b.stream) {
        break;
      }
    }
    if (c == stream_of.size()) {
      stream_of.push_back(b.stream);
      chains.emplace_back();
    }
    chains[c].push_back(std::move(b));
  }
  std::vector<size_t> heads(chains.size(), 0);
  batches->clear();
  std::vector<size_t> alive;
  for (size_t c = 0; c < chains.size(); ++c) {
    alive.push_back(c);
  }
  while (!alive.empty()) {
    size_t pick = alive.size() == 1
                      ? 0
                      : static_cast<size_t>(rng_.Uniform(0, alive.size() - 1));
    ++decisions_;
    size_t c = alive[pick];
    batches->push_back(std::move(chains[c][heads[c]]));
    if (++heads[c] == chains[c].size()) {
      alive.erase(alive.begin() + static_cast<ptrdiff_t>(pick));
    }
  }
}

std::chrono::milliseconds ScheduleController::MaintenanceJitter(
    std::chrono::milliseconds period) {
  std::lock_guard lock(mu_);
  ++decisions_;
  if (period.count() <= 0) {
    return std::chrono::milliseconds{0};
  }
  return std::chrono::milliseconds{
      static_cast<int64_t>(rng_.Uniform(0, static_cast<uint64_t>(period.count())))};
}

size_t ScheduleController::PickIndex(size_t queue_size) {
  std::lock_guard lock(mu_);
  ++decisions_;
  if (queue_size <= 1) {
    return 0;
  }
  return static_cast<size_t>(rng_.Uniform(0, queue_size - 1));
}

}  // namespace wukongs::testkit
