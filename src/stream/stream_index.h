// Stream index (paper §4.2, Fig. 8).
//
// After the persistent store absorbs a batch's timeless tuples, that data is
// scattered across the whole store; re-finding "what stream S added in batch
// b" through normal lookups would walk entire values and require keeping
// timestamps in the store. The stream index is the fast path: per (stream,
// batch) it maps each touched key to the spans the Injector appended, so a
// window resolves to a batch range and the engine reads exactly those spans.
// Indexes are created at the new end and dropped at the old end, mirroring
// the transient store; timestamps never pollute the persistent values.
//
// One StreamIndex instance holds one node's index for one stream. With
// locality-aware partitioning (Fig. 9) the per-batch maps are replicated to
// every node where a registered query consumes the stream — replication cost
// is charged by the caller at injection time.

#ifndef SRC_STREAM_STREAM_INDEX_H_
#define SRC_STREAM_STREAM_INDEX_H_

#include <deque>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/ids.h"
#include "src/store/gstore.h"
#include "src/stream/vts.h"

namespace wukongs {

// A span inside a persistent value: [start, start + count).
struct IndexSpan {
  uint32_t start = 0;
  uint32_t count = 0;
};

class StreamIndex {
 public:
  StreamIndex() = default;

  // Registers the spans the Injector produced for batch `seq`. Batches must
  // arrive in order. Empty span lists still create the (empty) batch entry so
  // window reads can distinguish "no data" from "not yet indexed".
  void AddBatch(BatchSeq seq, const std::vector<AppendSpan>& spans);

  // Migration merge (DESIGN.md §5.10): folds a moving shard's spans for
  // batch `seq` into this node's entry — used by dual-apply and history
  // replay. A batch this node never indexed (a node added after the batch
  // was delivered) is materialized in sequence order; a batch below the
  // eviction watermark returns false (a no-op — the GC horizon passed it, so
  // no live window can reach it and nothing is lost).
  bool MergeBatch(BatchSeq seq, const std::vector<AppendSpan>& spans);

  // Removes every batch's spans and seeds for vertices matched by `in_shard`
  // (DESIGN.md §5.10): the stale index entries a former owner kept after the
  // shard moved away. Called on a migration target before history replay so
  // MergeBatch re-adds exactly one span set and one seed per touched vertex.
  // Returns span lists removed.
  size_t PurgeShard(const std::function<bool(VertexId)>& in_shard);

  // Appends the spans of `key` in batch `seq` to `out`. Returns false if the
  // batch is not indexed (expired or not yet injected).
  bool GetSpans(BatchSeq seq, Key key, std::vector<IndexSpan>* out) const;

  // Sum of span counts of `key` in batch `seq` (selectivity estimation).
  size_t SpanEdgeCount(BatchSeq seq, Key key) const;

  // Seeds: the vertices that had (pid, dir) appends in batch `seq`. This is
  // the window analogue of the index vertex: patterns with no bound endpoint
  // enumerate "who touched this predicate inside the window" — including
  // vertices whose keys pre-existed in the base store and therefore created
  // no index-vertex append. Deduplicated within a batch, not across batches.
  bool GetSeeds(BatchSeq seq, PredicateId pid, Dir dir,
                std::vector<VertexId>* out) const;
  size_t SeedCount(BatchSeq seq, PredicateId pid, Dir dir) const;

  // Invoked after EvictBefore drops batches, with the minimum batch still
  // live; delta caches retire contributions below it (DESIGN.md §5.9).
  // Called outside the index's lock, so the listener may take its own locks.
  using EvictionListener = std::function<void(BatchSeq min_live_seq)>;
  void SetEvictionListener(EvictionListener listener);

  // Drops index entries for batches < min_live_seq (stale windows).
  size_t EvictBefore(BatchSeq min_live_seq);

  size_t BatchCount() const;
  size_t MemoryBytes() const;
  BatchSeq OldestSeq() const;
  BatchSeq NewestSeq() const;

  // Window-lookup outcome counters (GetSpans/GetSeeds): a miss means the
  // requested batch was expired or not yet indexed. Scraped into the metrics
  // registry; cumulative over the index lifetime.
  struct LookupStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };
  LookupStats lookup_stats() const;

 private:
  struct BatchIndex {
    BatchSeq seq = 0;
    std::unordered_map<Key, std::vector<IndexSpan>, KeyHash> spans;
    // Keyed by the packed index key [0|pid|dir].
    std::unordered_map<uint64_t, std::vector<VertexId>> seeds;
    size_t bytes = 0;
  };

  const BatchIndex* FindBatch(BatchSeq seq) const;

  mutable std::mutex mu_;
  std::deque<BatchIndex> batches_;
  // Eviction watermark: batches below it were dropped by GC (or were never
  // indexed and never will be queried). Lets MergeBatch tell "evicted" apart
  // from "never delivered here" on nodes added mid-stream.
  BatchSeq evicted_below_ = 0;
  size_t total_bytes_ = 0;
  mutable LookupStats lookups_;  // Guarded by mu_.
  EvictionListener listener_;    // Guarded by mu_; invoked after unlock.
};

}  // namespace wukongs

#endif  // SRC_STREAM_STREAM_INDEX_H_
